package edgeshed_test

// Facade tests: everything here uses only the public API, the way an
// external module would.

import (
	"math"
	"strings"
	"testing"

	"edgeshed"
)

func TestFacadeReduceRoundTrip(t *testing.T) {
	g := edgeshed.BarabasiAlbert(300, 3, 1)
	for _, r := range []edgeshed.Reducer{
		edgeshed.CRR{Seed: 1},
		edgeshed.BM2{},
		edgeshed.TargetedCRR{Seed: 1},
		edgeshed.Random{Seed: 2},
		edgeshed.ForestFire{Seed: 3},
		edgeshed.SpanningForest{Seed: 4},
		edgeshed.WeightedSample{Seed: 5},
		edgeshed.UDS{},
	} {
		res, err := r.Reduce(g, 0.5)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if res.Reduced.NumEdges() == 0 {
			t.Errorf("%s: empty reduction", r.Name())
		}
		if math.IsNaN(res.Delta()) {
			t.Errorf("%s: NaN delta", r.Name())
		}
	}
}

func TestFacadeBounds(t *testing.T) {
	g := edgeshed.BarabasiAlbert(200, 3, 2)
	res, err := (edgeshed.CRR{Seed: 1}).Reduce(g, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgDisPerNode() >= edgeshed.CRRBound(g, 0.4) {
		t.Error("facade bound check failed")
	}
	if edgeshed.BM2Bound(g, 0.4) <= 0 {
		t.Error("BM2 bound not positive")
	}
}

func TestFacadeIO(t *testing.T) {
	g, rm, err := edgeshed.ReadEdgeList(strings.NewReader("10 20\n20 30\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("parsed %v", g)
	}
	path := t.TempDir() + "/g.esg"
	if err := edgeshed.SaveFile(path, g, rm); err != nil {
		t.Fatal(err)
	}
	g2, _, err := edgeshed.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 2 {
		t.Errorf("round trip |E| = %d", g2.NumEdges())
	}
}

func TestFacadeBuilder(t *testing.T) {
	b := edgeshed.NewBuilder(3)
	b.TryAddEdge(0, 1)
	b.TryAddEdge(1, 2)
	g := b.Graph()
	if g.Degree(edgeshed.NodeID(1)) != 2 {
		t.Errorf("degree = %d", g.Degree(1))
	}
}

func TestFacadeAnalysis(t *testing.T) {
	g := edgeshed.HolmeKim(200, 3, 0.6, 3)
	pr := edgeshed.PageRank(g)
	var sum float64
	for _, s := range pr {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PageRank mass = %v", sum)
	}
	if cc := edgeshed.AverageClustering(g); cc <= 0 {
		t.Errorf("Holme-Kim clustering = %v, want > 0", cc)
	}
	dist := edgeshed.DegreeDistribution(g, 0)
	if len(dist) == 0 {
		t.Error("empty degree distribution")
	}
	bc := edgeshed.NodeBetweenness(g, edgeshed.CentralityOptions{Samples: 50, Seed: 1})
	if len(bc) != g.NumNodes() {
		t.Error("betweenness length mismatch")
	}
}

func TestFacadeDatasets(t *testing.T) {
	if len(edgeshed.Datasets()) != 4 {
		t.Error("catalog size != 4")
	}
	spec, err := edgeshed.DatasetByName("ca-GrQc")
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Build(64, spec.DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5242/64 {
		t.Errorf("|V| = %d", g.NumNodes())
	}
}

func TestFacadeStream(t *testing.T) {
	s, err := edgeshed.NewStreamShedder(edgeshed.StreamOptions{P: 0.5, Seed: 1, Nodes: 100})
	if err != nil {
		t.Fatal(err)
	}
	g := edgeshed.ErdosRenyi(100, 300, 2)
	for _, e := range g.Edges() {
		if err := s.Insert(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	if s.Kept() == 0 || s.Kept() > 150 {
		t.Errorf("kept = %d", s.Kept())
	}
}

func TestFacadeSuite(t *testing.T) {
	g := edgeshed.BarabasiAlbert(100, 3, 4)
	res, err := (edgeshed.BM2{}).Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	suite := edgeshed.TaskSuite{SkipEmbedding: true, Seed: 5}
	ms := suite.Evaluate(g, res.Reduced)
	if len(ms) == 0 {
		t.Fatal("no measurements")
	}
	var m edgeshed.TaskMeasurement = ms[0]
	if m.Task == "" {
		t.Error("unnamed measurement")
	}
}

func TestFacadePlantedPartition(t *testing.T) {
	g := edgeshed.PlantedPartition(3, 20, 0.4, 0.02, 6)
	if g.NumNodes() != 60 {
		t.Errorf("|V| = %d", g.NumNodes())
	}
}
