module edgeshed

go 1.22
