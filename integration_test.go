package edgeshed

// End-to-end integration tests: dataset stand-in → reduction → analysis
// tasks, crossing every package boundary the way cmd/experiments does.

import (
	"math"
	"testing"

	"edgeshed/internal/analysis"
	"edgeshed/internal/core"
	"edgeshed/internal/dataset"
	"edgeshed/internal/graph"
	"edgeshed/internal/stream"
	"edgeshed/internal/tasks"
	"edgeshed/internal/uds"
)

// buildSmall returns a laptop-instant ca-GrQc stand-in.
func buildSmall(t *testing.T) *graph.Graph {
	t.Helper()
	spec, err := dataset.ByName("ca-GrQc")
	if err != nil {
		t.Fatal(err)
	}
	return spec.MustBuild(32, spec.DefaultSeed)
}

// TestPipelineAllReducers runs every reducer through the full task suite
// and sanity-checks the paper's core quality ordering.
func TestPipelineAllReducers(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	g := buildSmall(t)
	suite := tasks.Suite{SkipEmbedding: true, MaxPairs: 5000, Seed: 3}
	reducers := []core.Reducer{
		core.CRR{Seed: 1},
		core.BM2{},
		core.Random{Seed: 2},
		core.ForestFire{Seed: 3},
		core.SpanningForest{Seed: 4},
		core.WeightedSample{Seed: 5},
		uds.Reducer{},
	}
	type outcome struct {
		name      string
		delta     float64
		degreeTVD float64
	}
	var outs []outcome
	for _, r := range reducers {
		res, err := r.Reduce(g, 0.4)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if err := res.Reduced.Validate(); err != nil {
			t.Fatalf("%s: invalid reduction: %v", r.Name(), err)
		}
		ms := suite.Evaluate(g, res.Reduced)
		var degTVD float64
		for _, m := range ms {
			if m.Task == "vertex degree" {
				degTVD = m.Value
			}
			if math.IsNaN(m.Value) || math.IsInf(m.Value, 0) {
				t.Errorf("%s/%s: non-finite measurement %v", r.Name(), m.Task, m.Value)
			}
		}
		outs = append(outs, outcome{r.Name(), res.Delta(), degTVD})
	}
	// The paper's core ordering: CRR and BM2 dominate every other method on
	// the degree-discrepancy objective.
	find := func(name string) outcome {
		for _, o := range outs {
			if o.name == name {
				return o
			}
		}
		t.Fatalf("missing outcome %q", name)
		return outcome{}
	}
	crr, bm2 := find("CRR"), find("BM2")
	for _, o := range outs {
		if o.name == "CRR" || o.name == "BM2" {
			continue
		}
		if crr.delta >= o.delta {
			t.Errorf("CRR Δ=%v not below %s Δ=%v", crr.delta, o.name, o.delta)
		}
		if bm2.delta >= o.delta {
			t.Errorf("BM2 Δ=%v not below %s Δ=%v", bm2.delta, o.name, o.delta)
		}
	}
}

// TestPipelineStreamingMatchesOffline checks the streaming extension
// end-to-end against offline BM2 on a dataset stand-in.
func TestPipelineStreamingMatchesOffline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	g := buildSmall(t)
	p := 0.4
	s, err := stream.NewShedder(stream.Options{P: p, Seed: 7, Nodes: g.NumNodes()})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if err := s.Insert(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	offline, err := (core.BM2{}).Reduce(g, p)
	if err != nil {
		t.Fatal(err)
	}
	// One-pass with bounded memory should stay within 2x of offline Δ.
	if s.Delta() > 2*offline.Delta() {
		t.Errorf("stream Δ=%v vs offline Δ=%v: more than 2x worse", s.Delta(), offline.Delta())
	}
}

// TestPipelineFileRoundTrip exercises the full I/O path: generate, save in
// both formats, reload, reduce, evaluate.
func TestPipelineFileRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	g := buildSmall(t)
	dir := t.TempDir()
	for _, name := range []string{"g.txt", "g.esg"} {
		path := dir + "/" + name
		if err := graph.SaveFile(path, g, nil); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		g2, _, err := graph.LoadFile(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		res, err := (core.BM2{}).Reduce(g2, 0.5)
		if err != nil {
			t.Fatalf("%s: reduce: %v", name, err)
		}
		if u := (tasks.TopKTask{}).Utility(g2, res.Reduced); u < 0.5 {
			t.Errorf("%s: top-k utility after round trip = %v, suspiciously low", name, u)
		}
	}
}

// TestPipelineDegreeDistributionPreservation verifies the Figure 5/6 claim
// end to end: the reduced degree distribution, rescaled by p, tracks the
// original's shape for the degree-preserving methods.
func TestPipelineDegreeDistributionPreservation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	spec, err := dataset.ByName("email-Enron")
	if err != nil {
		t.Fatal(err)
	}
	g := spec.MustBuild(32, spec.DefaultSeed)
	res, err := (core.BM2{}).Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Mean degree of the reduction should be ~p times the original's.
	origMean := g.AvgDegree()
	redMean := res.Reduced.AvgDegree()
	if ratio := redMean / origMean; ratio < 0.4 || ratio > 0.6 {
		t.Errorf("mean degree ratio = %v, want ~0.5", ratio)
	}
	// And the heavy tail survives: reduced max degree stays within a factor
	// ~2 of p times the original max.
	if float64(res.Reduced.MaxDegree()) < 0.25*float64(g.MaxDegree()) {
		t.Errorf("max degree collapsed: %d -> %d", g.MaxDegree(), res.Reduced.MaxDegree())
	}
	_ = analysis.DegreeDistribution(res.Reduced, 300) // exercised for completeness
}
