package edgeshed

// One benchmark per paper table and figure (DESIGN.md §3), plus the ablation
// benches of DESIGN.md §5. Each bench times the operation the corresponding
// artifact measures, on scaled dataset stand-ins built outside the timer.
//
// Run all:  go test -bench=. -benchmem
// Run one:  go test -bench=BenchmarkTable3 -benchmem

import (
	"fmt"
	"testing"

	"edgeshed/internal/analysis"
	"edgeshed/internal/centrality"
	"edgeshed/internal/core"
	"edgeshed/internal/dataset"
	"edgeshed/internal/embed"
	"edgeshed/internal/graph"
	"edgeshed/internal/matching"
	"edgeshed/internal/tasks"
	"edgeshed/internal/uds"
)

// benchScale keeps bench graphs laptop-instant; scale 1 would reproduce the
// paper's full sizes.
const benchScale = 32

func benchGraph(b *testing.B, name string) *graph.Graph {
	b.Helper()
	spec, err := dataset.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	scale := benchScale
	if name == "com-LiveJournal" {
		scale *= 16
	}
	g, err := spec.Build(scale, spec.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchReducers() []core.Reducer {
	return []core.Reducer{
		uds.Reducer{},
		core.CRR{Seed: 1},
		core.BM2{},
	}
}

// BenchmarkFig4StepsSweep regenerates Figure 4: CRR reduction at varying
// rewiring budgets x (steps = [x·P]) at p = 0.5 on ca-GrQc.
func BenchmarkFig4StepsSweep(b *testing.B) {
	g := benchGraph(b, "ca-GrQc")
	for _, x := range []float64{1, 4, 10, 14} {
		b.Run(fmt.Sprintf("x=%.0f", x), func(b *testing.B) {
			var avgDelta float64
			for i := 0; i < b.N; i++ {
				res, err := (core.CRR{Seed: 1, StepsFactor: x}).Reduce(g, 0.5)
				if err != nil {
					b.Fatal(err)
				}
				avgDelta = res.AvgDelta()
			}
			b.ReportMetric(avgDelta, "avg-delta")
		})
	}
}

// BenchmarkFig5ErrorBounds regenerates Figure 5(a)-(b): measured average
// discrepancy against the Theorem 1/2 bounds across p.
func BenchmarkFig5ErrorBounds(b *testing.B) {
	g := benchGraph(b, "ca-GrQc")
	for _, p := range []float64{0.9, 0.5, 0.1} {
		b.Run(fmt.Sprintf("p=%.1f", p), func(b *testing.B) {
			var crrErr, bm2Err float64
			for i := 0; i < b.N; i++ {
				crrRes, err := (core.CRR{Seed: 1}).Reduce(g, p)
				if err != nil {
					b.Fatal(err)
				}
				bm2Res, err := (core.BM2{}).Reduce(g, p)
				if err != nil {
					b.Fatal(err)
				}
				crrErr, bm2Err = crrRes.AvgDisPerNode(), bm2Res.AvgDisPerNode()
			}
			b.ReportMetric(crrErr/core.CRRBound(g, p), "crr-err/bound")
			b.ReportMetric(bm2Err/core.BM2Bound(g, p), "bm2-err/bound")
		})
	}
}

// BenchmarkFig6VertexDegree regenerates Figures 5(c)-(d)/6: degree
// distribution extraction and comparison on reduced email-Enron.
func BenchmarkFig6VertexDegree(b *testing.B) {
	g := benchGraph(b, "email-Enron")
	for _, r := range benchReducers() {
		res, err := r.Reduce(g, 0.3)
		if err != nil {
			b.Fatal(err)
		}
		orig := analysis.DegreeDistribution(g, 300)
		b.Run(r.Name(), func(b *testing.B) {
			var tvd float64
			for i := 0; i < b.N; i++ {
				tvd = tasks.TVD(orig, analysis.DegreeDistribution(res.Reduced, 300))
			}
			b.ReportMetric(tvd, "degree-tvd")
		})
	}
}

// BenchmarkFig7SPDistance regenerates Figure 7: shortest-path distance
// distribution of reduced graphs.
func BenchmarkFig7SPDistance(b *testing.B) {
	benchProfileTask(b, func(p *analysis.DistanceProfile) []float64 { return p.Distribution() })
}

// BenchmarkFig10HopPlot regenerates Figure 10: hop-plot of reduced graphs.
func BenchmarkFig10HopPlot(b *testing.B) {
	benchProfileTask(b, func(p *analysis.DistanceProfile) []float64 { return p.HopPlot() })
}

func benchProfileTask(b *testing.B, series func(*analysis.DistanceProfile) []float64) {
	b.Helper()
	g := benchGraph(b, "ca-GrQc")
	orig := series(analysis.NewDistanceProfile(g, analysis.ProfileOptions{}))
	for _, r := range benchReducers() {
		res, err := r.Reduce(g, 0.3)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(r.Name(), func(b *testing.B) {
			var tvd float64
			for i := 0; i < b.N; i++ {
				red := series(analysis.NewDistanceProfile(res.Reduced, analysis.ProfileOptions{}))
				tvd = tasks.TVD(orig, red)
			}
			b.ReportMetric(tvd, "tvd")
		})
	}
}

// BenchmarkFig8Betweenness regenerates Figure 8: betweenness centrality by
// degree on reduced graphs.
func BenchmarkFig8Betweenness(b *testing.B) {
	g := benchGraph(b, "ca-GrQc")
	for _, r := range benchReducers() {
		res, err := r.Reduce(g, 0.3)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(r.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				analysis.MeanByDegree(g, centrality.NodeBetweenness(res.Reduced, centrality.Options{}))
			}
		})
	}
}

// BenchmarkFig9Clustering regenerates Figure 9: clustering coefficient by
// degree on reduced graphs.
func BenchmarkFig9Clustering(b *testing.B) {
	g := benchGraph(b, "ca-HepPh")
	for _, r := range benchReducers() {
		res, err := r.Reduce(g, 0.3)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(r.Name(), func(b *testing.B) {
			var err float64
			for i := 0; i < b.N; i++ {
				err = (tasks.ClusteringTask{}).Error(g, res.Reduced)
			}
			b.ReportMetric(err, "cc-gap")
		})
	}
}

// BenchmarkTable3ReductionTime regenerates Table III: reduction time per
// method, dataset and p. This is the paper's headline efficiency claim:
// expect BM2 ≪ CRR ≪ UDS, with the UDS gap widening as p falls.
func BenchmarkTable3ReductionTime(b *testing.B) {
	for _, name := range []string{"ca-GrQc", "email-Enron"} {
		g := benchGraph(b, name)
		for _, r := range benchReducers() {
			for _, p := range []float64{0.9, 0.5, 0.1} {
				b.Run(fmt.Sprintf("%s/%s/p=%.1f", name, r.Name(), p), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := r.Reduce(g, p); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkTable4TotalTimeHeavy regenerates Table IV: reduction plus a heavy
// analysis task (betweenness) on ca-GrQc.
func BenchmarkTable4TotalTimeHeavy(b *testing.B) {
	g := benchGraph(b, "ca-GrQc")
	for _, r := range benchReducers() {
		b.Run(r.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := r.Reduce(g, 0.5)
				if err != nil {
					b.Fatal(err)
				}
				centrality.NodeBetweenness(res.Reduced, centrality.Options{})
			}
		})
	}
}

// BenchmarkTable5TotalTimeLight regenerates Table V: reduction plus a light
// analysis task (top-k PageRank) on ca-GrQc.
func BenchmarkTable5TotalTimeLight(b *testing.B) {
	g := benchGraph(b, "ca-GrQc")
	for _, r := range benchReducers() {
		b.Run(r.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := r.Reduce(g, 0.5)
				if err != nil {
					b.Fatal(err)
				}
				pr := analysis.PageRank(res.Reduced, analysis.PageRankOptions{})
				analysis.TopK(pr, g.NumNodes()/10)
			}
		})
	}
}

// BenchmarkTable6AnalysisHeavy regenerates Table VI: heavy analysis time on
// already-reduced email-Enron graphs (reduction excluded).
func BenchmarkTable6AnalysisHeavy(b *testing.B) {
	g := benchGraph(b, "email-Enron")
	for _, r := range benchReducers() {
		for _, p := range []float64{0.9, 0.1} {
			res, err := r.Reduce(g, p)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/p=%.1f", r.Name(), p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					analysis.NewDistanceProfile(res.Reduced, analysis.ProfileOptions{Sources: 256, Seed: 5})
				}
			})
		}
	}
}

// BenchmarkTable7AnalysisLight regenerates Table VII: light analysis time on
// already-reduced email-Enron graphs.
func BenchmarkTable7AnalysisLight(b *testing.B) {
	g := benchGraph(b, "email-Enron")
	for _, r := range benchReducers() {
		for _, p := range []float64{0.9, 0.1} {
			res, err := r.Reduce(g, p)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/p=%.1f", r.Name(), p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					analysis.LocalClustering(res.Reduced, 0)
				}
			})
		}
	}
}

// BenchmarkTable8TopK regenerates Table VIII: top-10% query utility on the
// collaboration stand-ins.
func BenchmarkTable8TopK(b *testing.B) {
	benchTopK(b, "ca-GrQc")
}

// BenchmarkTable9TopKLarge regenerates Table IX on the email stand-in (the
// com-LiveJournal column uses the harness, which scales it separately).
func BenchmarkTable9TopKLarge(b *testing.B) {
	benchTopK(b, "email-Enron")
}

func benchTopK(b *testing.B, name string) {
	b.Helper()
	g := benchGraph(b, name)
	task := tasks.TopKTask{}
	for _, r := range benchReducers() {
		for _, p := range []float64{0.9, 0.1} {
			res, err := r.Reduce(g, p)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/p=%.1f", r.Name(), p), func(b *testing.B) {
				var util float64
				for i := 0; i < b.N; i++ {
					util = task.Utility(g, res.Reduced)
				}
				b.ReportMetric(util, "utility")
			})
		}
	}
}

// BenchmarkTable10LinkPrediction regenerates Table X: link-prediction
// utility via node2vec + K-means on 2-hop pairs.
func BenchmarkTable10LinkPrediction(b *testing.B) {
	g := benchGraph(b, "ca-GrQc")
	task := tasks.LinkPredictionTask{
		Walk:     embed.WalkConfig{WalksPerNode: 5, WalkLength: 20, Seed: 8},
		SGNS:     embed.SGNSConfig{Dim: 32, Epochs: 1, Seed: 9},
		MaxPairs: 10000,
		Seed:     10,
	}
	for _, r := range benchReducers() {
		res, err := r.Reduce(g, 0.5)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(r.Name(), func(b *testing.B) {
			var util float64
			for i := 0; i < b.N; i++ {
				util = task.Utility(g, res.Reduced)
			}
			b.ReportMetric(util, "utility")
		})
	}
}

// BenchmarkAblationSampledBetweenness times CRR Phase 1 with exact vs
// sampled centrality (DESIGN.md §5.1).
func BenchmarkAblationSampledBetweenness(b *testing.B) {
	g := benchGraph(b, "email-Enron")
	for _, samples := range []int{0, 256, 64} {
		name := "exact"
		if samples > 0 {
			name = fmt.Sprintf("samples=%d", samples)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				crr := core.CRR{Seed: 1, Betweenness: centrality.Options{Samples: samples, Seed: 2}}
				if _, err := crr.Reduce(g, 0.3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBM2Rounding compares BM2's rounding rules (DESIGN.md
// §5.3).
func BenchmarkAblationBM2Rounding(b *testing.B) {
	g := benchGraph(b, "ca-GrQc")
	for _, v := range []struct {
		name string
		r    core.Rounding
	}{{"half-up", core.RoundHalfUp}, {"half-even", core.RoundHalfEven}} {
		b.Run(v.name, func(b *testing.B) {
			var delta float64
			for i := 0; i < b.N; i++ {
				res, err := (core.BM2{Rounding: v.r}).Reduce(g, 0.5)
				if err != nil {
					b.Fatal(err)
				}
				delta = res.Delta()
			}
			b.ReportMetric(delta, "delta")
		})
	}
}

// BenchmarkAblationZeroGain compares keeping vs dropping zero-gain bipartite
// edges in BM2 (DESIGN.md §5.4).
func BenchmarkAblationZeroGain(b *testing.B) {
	g := benchGraph(b, "ca-GrQc")
	for _, v := range []struct {
		name string
		drop bool
	}{{"keep", false}, {"drop", true}} {
		b.Run(v.name, func(b *testing.B) {
			var delta float64
			for i := 0; i < b.N; i++ {
				res, err := (core.BM2{DropZeroGain: v.drop}).Reduce(g, 0.5)
				if err != nil {
					b.Fatal(err)
				}
				delta = res.Delta()
			}
			b.ReportMetric(delta, "delta")
		})
	}
}

// BenchmarkAblationBMatchOrder compares BM2 Phase-1 edge scan orders
// (DESIGN.md §5.5).
func BenchmarkAblationBMatchOrder(b *testing.B) {
	g := benchGraph(b, "ca-GrQc")
	for _, o := range []matching.EdgeOrder{matching.InputOrder, matching.ScarceFirst, matching.DenseFirst} {
		b.Run(o.String(), func(b *testing.B) {
			var delta float64
			for i := 0; i < b.N; i++ {
				res, err := (core.BM2{Order: o}).Reduce(g, 0.5)
				if err != nil {
					b.Fatal(err)
				}
				delta = res.Delta()
			}
			b.ReportMetric(delta, "delta")
		})
	}
}
