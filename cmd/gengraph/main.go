// Command gengraph emits synthetic graphs as SNAP-style edge lists: either a
// catalog stand-in for one of the paper's datasets, or a raw random model.
//
// Usage:
//
//	gengraph -dataset ca-GrQc -scale 8 > grqc.txt
//	gengraph -model ba -n 10000 -m 3 > ba.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"edgeshed/internal/dataset"
	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
	"edgeshed/internal/obs"
)

func main() {
	var (
		ds    = flag.String("dataset", "", "catalog dataset: "+fmt.Sprint(dataset.Names()))
		scale = flag.Int("scale", 16, "dataset scale divisor (1 = paper size)")
		model = flag.String("model", "", "raw model: ba, hk, er, ws, sbm, powerlaw, rmat")
		n     = flag.Int("n", 1000, "node count (raw models)")
		m     = flag.Int("m", 3, "edges per node (ba/hk), total edges (er), ring degree (ws)")
		prob  = flag.Float64("prob", 0.3, "model probability (hk triad closure, ws rewire, sbm p_in)")
		k     = flag.Int("k", 4, "communities (sbm)")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("out", "", "output file; extension picks the format (.esc packed, .esg binary, else edge list; default: stdout text)")
	)
	cli := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	sess, err := cli.Start("gengraph")
	if err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
	runErr := obs.Run(sess, func() error { return run(*ds, *scale, *model, *n, *m, *prob, *k, *seed, *out, sess) })
	if cerr := sess.Close(); runErr == nil {
		runErr = cerr
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", runErr)
		os.Exit(1)
	}
}

func run(ds string, scale int, model string, n, m int, prob float64, k int, seed int64, out string, sess *obs.Session) error {
	gensp := sess.Root().Start("generate")
	g, err := generate(ds, scale, model, n, m, prob, k, seed)
	gensp.End()
	if err != nil {
		return err
	}
	sess.SetGraph(g.NumNodes(), g.NumEdges())
	sess.SetSeed(seed)
	sess.Logf("generated |V|=%d |E|=%d", g.NumNodes(), g.NumEdges())
	write := sess.Root().Start("write")
	defer write.End()
	if out != "" {
		// SaveFile dispatches on the extension, so -out graph.esc packs
		// directly to the mmap-able CSR format.
		return graph.SaveFile(out, g, nil)
	}
	return graph.WriteEdgeList(os.Stdout, g, nil)
}

// generate builds the requested graph from the catalog or a raw model.
func generate(ds string, scale int, model string, n, m int, prob float64, k int, seed int64) (*graph.Graph, error) {
	switch {
	case ds != "":
		spec, err := dataset.ByName(ds)
		if err != nil {
			return nil, err
		}
		return spec.Build(scale, seed)
	case model != "":
		switch model {
		case "ba":
			return gen.BarabasiAlbert(n, m, seed), nil
		case "hk":
			return gen.HolmeKim(n, m, prob, seed), nil
		case "er":
			return gen.ErdosRenyi(n, m, seed), nil
		case "ws":
			return gen.WattsStrogatz(n, m, prob, seed), nil
		case "sbm":
			return gen.PlantedPartition(k, n/k, prob, prob/20, seed), nil
		case "powerlaw":
			return gen.ConfigurationModel(gen.PowerLawDegrees(n, 2.1, 1, n/20, seed), seed+1), nil
		case "rmat":
			// n is rounded up to the next power of two; m edges per node.
			scale := 1
			for 1<<scale < n {
				scale++
			}
			return gen.RMAT(scale, n*m, 0.57, 0.19, 0.19, seed), nil
		default:
			return nil, fmt.Errorf("unknown model %q", model)
		}
	default:
		return nil, fmt.Errorf("one of -dataset or -model is required")
	}
}
