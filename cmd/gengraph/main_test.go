package main

import (
	"path/filepath"
	"testing"

	"edgeshed/internal/graph"
)

func TestRunDatasetMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "d.txt")
	if err := run("ca-GrQc", 64, "", 0, 0, 0, 0, 1, out, nil); err != nil {
		t.Fatalf("dataset mode: %v", err)
	}
	g, _, err := graph.ReadEdgeListFile(out)
	if err != nil {
		t.Fatalf("reading output: %v", err)
	}
	if g.NumNodes() == 0 || g.NumEdges() == 0 {
		t.Errorf("empty output graph: %v", g)
	}
}

func TestRunModelModes(t *testing.T) {
	for _, model := range []string{"ba", "hk", "er", "ws", "sbm", "powerlaw", "rmat"} {
		out := filepath.Join(t.TempDir(), model+".txt")
		m := 3
		if model == "er" {
			m = 100
		}
		if model == "ws" {
			m = 4
		}
		if err := run("", 0, model, 100, m, 0.3, 4, 1, out, nil); err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		g, _, err := graph.ReadEdgeListFile(out)
		if err != nil {
			t.Fatalf("%s: reading output: %v", model, err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: invalid graph: %v", model, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.txt")
	if err := run("", 0, "", 100, 3, 0.3, 4, 1, out, nil); err == nil {
		t.Error("neither dataset nor model rejected")
	}
	if err := run("", 0, "bogus", 100, 3, 0.3, 4, 1, out, nil); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run("bogus", 8, "", 0, 0, 0, 0, 1, out, nil); err == nil {
		t.Error("unknown dataset accepted")
	}
}
