package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunListMode(t *testing.T) {
	if err := run("", true, 16, 0, "", "", false, false, 0, 0, nil); err != nil {
		t.Fatalf("list mode: %v", err)
	}
}

func TestRunRequiresID(t *testing.T) {
	if err := run("", false, 16, 0, "", "", false, false, 0, 0, nil); err == nil {
		t.Error("missing -run accepted")
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := run("bogus", false, 16, 0, "", "", false, false, 0, 0, nil); err == nil {
		t.Error("unknown experiment id accepted")
	}
}

func TestRunBadPs(t *testing.T) {
	if err := run("t3", false, 128, 0, "0.5,abc", "", false, false, 0, 0, nil); err == nil {
		t.Error("malformed -ps accepted")
	}
}

func TestRunOneExperimentToFile(t *testing.T) {
	if testing.Short() {
		t.Skip("not short")
	}
	out := filepath.Join(t.TempDir(), "t3.txt")
	if err := run("t3", false, 128, 0, "0.5", out, true, false, 0, 0, nil); err != nil {
		t.Fatalf("run t3: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Table III") {
		t.Errorf("output missing Table III header:\n%s", data)
	}
}

func TestRunMarkdownMode(t *testing.T) {
	if testing.Short() {
		t.Skip("not short")
	}
	out := filepath.Join(t.TempDir(), "t3.md")
	if err := run("t3", false, 128, 0, "0.5", out, true, true, 0, 0, nil); err != nil {
		t.Fatalf("run t3 -md: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "| p") || !strings.Contains(string(data), "|---|") {
		t.Errorf("markdown table markers missing:\n%s", data)
	}
}
