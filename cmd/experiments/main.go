// Command experiments reproduces the paper's tables and figures on the
// synthetic SNAP stand-ins.
//
// Usage:
//
//	experiments -list
//	experiments -run t3 -scale 16
//	experiments -run all -scale 32 -out results.txt
//
// Long sweeps report per-cell progress lines under -v, and -run all
// carries span-level done/total counts, so a run with -debug-addr set can
// be watched live over HTTP (/progress, /metrics); see internal/obs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"edgeshed/internal/experiments"
	"edgeshed/internal/obs"
)

func main() {
	var (
		runID   = flag.String("run", "", "experiment id (fig4..fig10, t3..t10, ab1..ab5) or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		scale   = flag.Int("scale", 16, "dataset scale divisor (1 = paper sizes; larger = smaller graphs)")
		seed    = flag.Int64("seed", 0, "seed offset for replication")
		psFlag  = flag.String("ps", "", "comma-separated preservation ratios (default 0.9..0.1)")
		out     = flag.String("out", "", "output file (default: stdout)")
		skipUDS = flag.Bool("skip-uds", false, "skip the UDS comparator (it dominates runtime)")
		md      = flag.Bool("md", false, "render tables as GitHub-flavored Markdown")
		workers = flag.Int("workers", 0, "worker goroutines for parallel kernels (0 = GOMAXPROCS); measured values are identical at any count")
		batch   = flag.Int("batch", 0, "MS-BFS sources per centrality batch, 1..64 (0 or out of range = the full 64-wide word); measured values are identical at any width")
	)
	cli := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	sess, err := cli.Start("experiments")
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	runErr := obs.Run(sess, func() error {
		return run(*runID, *list, *scale, *seed, *psFlag, *out, *skipUDS, *md, *workers, *batch, sess)
	})
	if cerr := sess.Close(); runErr == nil {
		runErr = cerr
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "experiments:", runErr)
		os.Exit(1)
	}
}

func run(runID string, list bool, scale int, seed int64, psFlag, out string, skipUDS, md bool, workers, batch int, sess *obs.Session) error {
	if list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if runID == "" {
		return fmt.Errorf("-run or -list is required")
	}
	var ps []float64
	if psFlag != "" {
		for _, s := range strings.Split(psFlag, ",") {
			p, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("bad -ps entry %q: %v", s, err)
			}
			ps = append(ps, p)
		}
	}
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	cfg := experiments.Config{Out: w, Scale: scale, Seed: seed, Ps: ps, SkipUDS: skipUDS, Markdown: md, Workers: workers, Batch: batch,
		// Long sweeps print nothing until a table completes; under -v each
		// finished (dataset, p, method) cell logs a line instead.
		Progress: sess.Verbosef}
	fmt.Fprintf(w, "# edgeshed experiments: run=%s scale=%d seed=%d ps=%v skip-uds=%v (%s)\n\n",
		runID, scale, seed, cfg.PsOrDefault(), skipUDS, runtime.Version())

	sess.SetSeed(seed)
	sess.SetWorkers(workers)
	root := sess.Root()
	runOne := func(e experiments.Experiment) error {
		sess.Logf("== running %s: %s", e.ID, e.Title)
		var esp *obs.Span
		if root.Enabled() {
			esp = root.Start("exp:" + e.ID)
		}
		err := e.Run(cfg)
		esp.End()
		return err
	}
	if runID == "all" {
		all := experiments.All()
		root.SetTotal(int64(len(all)))
		for _, e := range all {
			if err := runOne(e); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			root.Done(1)
		}
		return nil
	}
	e, err := experiments.ByID(runID)
	if err != nil {
		return err
	}
	return runOne(e)
}
