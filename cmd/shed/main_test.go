package main

import (
	"math"
	"path/filepath"
	"testing"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

func writeTestGraph(t *testing.T) (string, *graph.Graph) {
	t.Helper()
	g := gen.BarabasiAlbert(80, 3, 9)
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := graph.WriteEdgeListFile(path, g, nil); err != nil {
		t.Fatal(err)
	}
	return path, g
}

func TestRunAllMethods(t *testing.T) {
	in, g := writeTestGraph(t)
	for _, method := range []string{"crr", "bm2", "random", "uds", "forestfire", "spanningforest", "weighted"} {
		out := filepath.Join(t.TempDir(), method+".txt")
		if err := run(in, out, method, "0.5", 0, 0, 0, 1); err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		red, _, err := graph.ReadEdgeListFile(out)
		if err != nil {
			t.Fatalf("%s: reading output: %v", method, err)
		}
		if red.NumEdges() == 0 {
			t.Errorf("%s: empty reduction", method)
		}
		// Exact-budget methods must hit [P]; UDS and BM2 land near it.
		want := int(math.Round(0.5 * float64(g.NumEdges())))
		switch method {
		case "crr", "random", "forestfire", "spanningforest", "weighted":
			if red.NumEdges() != want {
				t.Errorf("%s: |E'| = %d, want %d", method, red.NumEdges(), want)
			}
		}
	}
}

func TestRunMethodOptions(t *testing.T) {
	in, _ := writeTestGraph(t)
	out := filepath.Join(t.TempDir(), "r.txt")
	// Sampled betweenness and explicit steps for CRR.
	if err := run(in, out, "crr", "0.4", 50, 20, 2, 3); err != nil {
		t.Fatalf("crr with options: %v", err)
	}
	// Method name matching is case-insensitive.
	if err := run(in, out, "BM2", "0.4", 0, 0, 0, 3); err != nil {
		t.Fatalf("case-insensitive method: %v", err)
	}
}

func TestRunSweep(t *testing.T) {
	in, g := writeTestGraph(t)
	out := filepath.Join(t.TempDir(), "sweep.txt")
	if err := run(in, out, "crr", "0.8,0.4", 0, 0, 3, 1); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	for _, p := range []string{"0.80", "0.40"} {
		path := filepath.Join(filepath.Dir(out), "sweep.p"+p+".txt")
		red, _, err := graph.ReadEdgeListFile(path)
		if err != nil {
			t.Fatalf("p=%s: %v", p, err)
		}
		if red.NumEdges() == 0 || red.NumEdges() >= g.NumEdges() {
			t.Errorf("p=%s: |E'| = %d", p, red.NumEdges())
		}
	}
}

func TestRunBadPList(t *testing.T) {
	in, _ := writeTestGraph(t)
	if err := run(in, "", "crr", "0.5,abc", 0, 0, 0, 1); err == nil {
		t.Error("malformed -p list accepted")
	}
}

func TestRunErrors(t *testing.T) {
	in, _ := writeTestGraph(t)
	out := filepath.Join(t.TempDir(), "r.txt")
	if err := run("", out, "crr", "0.5", 0, 0, 0, 1); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run(in, out, "bogus", "0.5", 0, 0, 0, 1); err == nil {
		t.Error("unknown method accepted")
	}
	if err := run(in, out, "crr", "1.5", 0, 0, 0, 1); err == nil {
		t.Error("p > 1 accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "nope.txt"), out, "crr", "0.5", 0, 0, 0, 1); err == nil {
		t.Error("missing input file accepted")
	}
}
