package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
	"edgeshed/internal/obs"
)

func writeTestGraph(t *testing.T) (string, *graph.Graph) {
	t.Helper()
	g := gen.BarabasiAlbert(80, 3, 9)
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := graph.WriteEdgeListFile(path, g, nil); err != nil {
		t.Fatal(err)
	}
	return path, g
}

func TestRunAllMethods(t *testing.T) {
	in, g := writeTestGraph(t)
	for _, method := range []string{"crr", "bm2", "random", "uds", "forestfire", "spanningforest", "weighted"} {
		out := filepath.Join(t.TempDir(), method+".txt")
		if err := run(shedOpts{in: in, out: out, method: method, ps: "0.5", seed: 1}, nil); err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		red, _, err := graph.ReadEdgeListFile(out)
		if err != nil {
			t.Fatalf("%s: reading output: %v", method, err)
		}
		if red.NumEdges() == 0 {
			t.Errorf("%s: empty reduction", method)
		}
		// Exact-budget methods must hit [P]; UDS and BM2 land near it.
		want := int(math.Round(0.5 * float64(g.NumEdges())))
		switch method {
		case "crr", "random", "forestfire", "spanningforest", "weighted":
			if red.NumEdges() != want {
				t.Errorf("%s: |E'| = %d, want %d", method, red.NumEdges(), want)
			}
		}
	}
}

func TestRunMethodOptions(t *testing.T) {
	in, _ := writeTestGraph(t)
	out := filepath.Join(t.TempDir(), "r.txt")
	// Sampled betweenness and explicit steps for CRR.
	if err := run(shedOpts{in: in, out: out, method: "crr", ps: "0.4", steps: 50, samples: 20, workers: 2, seed: 3}, nil); err != nil {
		t.Fatalf("crr with options: %v", err)
	}
	// Method name matching is case-insensitive.
	if err := run(shedOpts{in: in, out: out, method: "BM2", ps: "0.4", seed: 3}, nil); err != nil {
		t.Fatalf("case-insensitive method: %v", err)
	}
}

func TestRunSweep(t *testing.T) {
	in, g := writeTestGraph(t)
	out := filepath.Join(t.TempDir(), "sweep.txt")
	if err := run(shedOpts{in: in, out: out, method: "crr", ps: "0.8,0.4", workers: 3, seed: 1}, nil); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	for _, p := range []string{"0.80", "0.40"} {
		path := filepath.Join(filepath.Dir(out), "sweep.p"+p+".txt")
		red, _, err := graph.ReadEdgeListFile(path)
		if err != nil {
			t.Fatalf("p=%s: %v", p, err)
		}
		if red.NumEdges() == 0 || red.NumEdges() >= g.NumEdges() {
			t.Errorf("p=%s: |E'| = %d", p, red.NumEdges())
		}
	}
}

func TestRunWritesManifest(t *testing.T) {
	in, g := writeTestGraph(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "r.txt")
	manifest := filepath.Join(dir, "run.json")

	// Drive the real flag path end to end: a fresh FlagSet with the shared
	// obs flags, parsed as a user would pass them.
	fs := flag.NewFlagSet("shed", flag.ContinueOnError)
	cli := obs.BindFlags(fs)
	if err := fs.Parse([]string{"-metrics", manifest, "-quiet"}); err != nil {
		t.Fatal(err)
	}
	sess, err := cli.Start("shed")
	if err != nil {
		t.Fatal(err)
	}
	runErr := run(shedOpts{in: in, out: out, method: "crr", ps: "0.5", steps: 50, workers: 2, seed: 1}, sess)
	if cerr := sess.Close(); runErr == nil {
		runErr = cerr
	}
	if runErr != nil {
		t.Fatal(runErr)
	}

	m, err := obs.ReadManifest(manifest)
	if err != nil {
		t.Fatalf("reading manifest: %v", err)
	}
	if m.Command != "shed" {
		t.Errorf("command = %q, want shed", m.Command)
	}
	if m.Graph == nil || m.Graph.Nodes != g.NumNodes() || m.Graph.Edges != g.NumEdges() {
		t.Errorf("graph info = %+v, want |V|=%d |E|=%d", m.Graph, g.NumNodes(), g.NumEdges())
	}
	if m.Seed != 1 || m.Workers != 2 {
		t.Errorf("seed=%d workers=%d, want 1 and 2", m.Seed, m.Workers)
	}
	if m.Spans == nil || len(m.Spans.Children) == 0 {
		t.Fatalf("manifest has no span tree: %+v", m.Spans)
	}
	names := map[string]bool{}
	for _, c := range m.Spans.Children {
		names[c.Name] = true
	}
	for _, want := range []string{"load", "crr.reduce", "write"} {
		if !names[want] {
			t.Errorf("span %q missing from manifest (have %v)", want, names)
		}
	}
	if m.Counters["betweenness.sources_done"] == 0 || m.Counters["crr.rewire.attempts"] == 0 {
		t.Errorf("kernel counters missing from manifest: %v", m.Counters)
	}
	if m.Mem == nil || len(m.RuntimeMetrics) == 0 {
		t.Errorf("mem/runtime metrics missing: mem=%+v metrics=%v", m.Mem, m.RuntimeMetrics)
	}
}

func TestRunStatsJSON(t *testing.T) {
	in, g := writeTestGraph(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "r.txt")
	statsPath := filepath.Join(dir, "stats.json")
	if err := run(shedOpts{in: in, out: out, method: "crr", ps: "0.6,0.3", seed: 1, statsJSON: statsPath}, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	var stats shedStats
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatalf("parsing -stats-json: %v", err)
	}
	if stats.Method != "CRR" || stats.Nodes != g.NumNodes() || stats.Edges != g.NumEdges() {
		t.Errorf("header = %+v, want CRR over |V|=%d |E|=%d", stats, g.NumNodes(), g.NumEdges())
	}
	if len(stats.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(stats.Rows))
	}
	for i, p := range []float64{0.6, 0.3} {
		row := stats.Rows[i]
		if row.P != p {
			t.Errorf("row %d: p = %v, want %v", i, row.P, p)
		}
		want := int(math.Round(p * float64(g.NumEdges())))
		if row.KeptEdges != want {
			t.Errorf("p=%v: kept_edges = %d, want %d", p, row.KeptEdges, want)
		}
		if row.BoundName != "theorem1" || row.Bound <= 0 {
			t.Errorf("p=%v: bound %q=%v, want positive theorem1", p, row.BoundName, row.Bound)
		}
		if row.AvgDisPerNode > row.Bound {
			t.Errorf("p=%v: avg |dis| %v exceeds Theorem 1 bound %v", p, row.AvgDisPerNode, row.Bound)
		}
	}
}

// TestStatsMatchManifestQuality pins the no-drift contract between the two
// quality outputs: every -stats-json row and the manifest's quality_timeline
// derive from the same core.QualityOf call on the same Result, so the final
// timeline point of each metric must equal the stats field bit-for-bit.
func TestStatsMatchManifestQuality(t *testing.T) {
	in, _ := writeTestGraph(t)
	for _, tc := range []struct {
		method, ps, prefix, bound string
	}{
		{"crr", "0.6,0.3", "crr.", "theorem1"},
		{"bm2", "0.5", "bm2.", "theorem2"},
	} {
		t.Run(tc.method, func(t *testing.T) {
			dir := t.TempDir()
			manifest := filepath.Join(dir, "run.json")
			statsPath := filepath.Join(dir, "stats.json")

			fs := flag.NewFlagSet("shed", flag.ContinueOnError)
			cli := obs.BindFlags(fs)
			if err := fs.Parse([]string{"-metrics", manifest, "-quiet"}); err != nil {
				t.Fatal(err)
			}
			sess, err := cli.Start("shed")
			if err != nil {
				t.Fatal(err)
			}
			opt := shedOpts{in: in, out: filepath.Join(dir, "r.txt"),
				method: tc.method, ps: tc.ps, seed: 1, statsJSON: statsPath}
			runErr := run(opt, sess)
			if cerr := sess.Close(); runErr == nil {
				runErr = cerr
			}
			if runErr != nil {
				t.Fatal(runErr)
			}

			m, err := obs.ReadManifest(manifest)
			if err != nil {
				t.Fatal(err)
			}
			if len(m.Quality) == 0 {
				t.Fatal("manifest quality_timeline is empty")
			}
			data, err := os.ReadFile(statsPath)
			if err != nil {
				t.Fatal(err)
			}
			var stats shedStats
			if err := json.Unmarshal(data, &stats); err != nil {
				t.Fatal(err)
			}

			// last returns the final timeline value for metric at ratio p;
			// the end-of-reduce record always lands after any mid-run folds.
			last := func(metric string, p float64) float64 {
				found := false
				var v float64
				for _, q := range m.Quality {
					if q.Metric == metric && q.Ratio == p {
						v, found = q.Value, true
					}
				}
				if !found {
					t.Fatalf("metric %q at p=%v missing from quality_timeline", metric, p)
				}
				return v
			}
			for _, row := range stats.Rows {
				if row.BoundName != tc.bound {
					t.Fatalf("p=%v: bound_name = %q, want %q", row.P, row.BoundName, tc.bound)
				}
				for _, f := range []struct {
					metric string
					want   float64
				}{
					{tc.prefix + "kept_edges", float64(row.KeptEdges)},
					{tc.prefix + "kept_fraction", row.KeptFraction},
					{tc.prefix + "delta", row.Delta},
					{tc.prefix + "avg_dis", row.AvgDisPerNode},
					{tc.prefix + "bound." + tc.bound, row.Bound},
					{tc.prefix + "headroom." + tc.bound, row.Headroom},
				} {
					if got := last(f.metric, row.P); got != f.want {
						t.Errorf("p=%v: %s = %v in manifest, %v in stats", row.P, f.metric, got, f.want)
					}
				}
				if row.Headroom != row.Bound-row.AvgDisPerNode {
					t.Errorf("p=%v: headroom %v != bound %v - avg_dis %v", row.P, row.Headroom, row.Bound, row.AvgDisPerNode)
				}
			}
		})
	}
}

func TestRunBadPList(t *testing.T) {
	in, _ := writeTestGraph(t)
	if err := run(shedOpts{in: in, method: "crr", ps: "0.5,abc", seed: 1}, nil); err == nil {
		t.Error("malformed -p list accepted")
	}
}

func TestRunErrors(t *testing.T) {
	in, _ := writeTestGraph(t)
	out := filepath.Join(t.TempDir(), "r.txt")
	if err := run(shedOpts{out: out, method: "crr", ps: "0.5", seed: 1}, nil); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run(shedOpts{in: in, out: out, method: "bogus", ps: "0.5", seed: 1}, nil); err == nil {
		t.Error("unknown method accepted")
	}
	if err := run(shedOpts{in: in, out: out, method: "crr", ps: "1.5", seed: 1}, nil); err == nil {
		t.Error("p > 1 accepted")
	}
	if err := run(shedOpts{in: filepath.Join(t.TempDir(), "nope.txt"), out: out, method: "crr", ps: "0.5", seed: 1}, nil); err == nil {
		t.Error("missing input file accepted")
	}
}

// TestRunBatchBitIdentical pins the -batch contract end to end: the MS-BFS
// batch width only regroups the Phase 1 betweenness traversals, so reduced
// outputs and stats must be byte-identical at every width — widths 1, 8 and
// the 64-wide default must all reproduce the -batch 0 bytes exactly.
func TestRunBatchBitIdentical(t *testing.T) {
	in, _ := writeTestGraph(t)
	dir := t.TempDir()
	read := func(batch int) ([]byte, []byte) {
		out := filepath.Join(dir, fmt.Sprintf("r%d.txt", batch))
		statsPath := filepath.Join(dir, fmt.Sprintf("s%d.json", batch))
		opt := shedOpts{in: in, out: out, method: "crr", ps: "0.5", seed: 4,
			workers: 2, batch: batch, statsJSON: statsPath}
		if err := run(opt, nil); err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		red, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := os.ReadFile(statsPath)
		if err != nil {
			t.Fatal(err)
		}
		return red, stats
	}
	wantRed, wantStats := read(0)
	for _, batch := range []int{1, 8, 64} {
		red, stats := read(batch)
		if !bytes.Equal(red, wantRed) {
			t.Errorf("-batch %d reduced output differs from -batch 0", batch)
		}
		if !bytes.Equal(stats, wantStats) {
			t.Errorf("-batch %d stats differ from -batch 0", batch)
		}
	}
}

// TestRunPackedInputBitIdentical pins the acceptance contract of the .esc
// format: shedding a packed graph must produce byte-identical outputs and
// stats to shedding the text edge list it was packed from — same dense
// ids, same edge ids, same seeded tie-breaks.
func TestRunPackedInputBitIdentical(t *testing.T) {
	dir := t.TempDir()
	g := gen.BarabasiAlbert(120, 3, 11)
	// Sparse external labels force a real (non-identity) remapper through
	// the whole pipeline.
	rm := graph.NewRemapper()
	for u := 0; u < g.NumNodes(); u++ {
		rm.ID(int64(u)*7 + 100)
	}
	txt := filepath.Join(dir, "g.txt")
	if err := graph.WriteEdgeListFile(txt, g, rm); err != nil {
		t.Fatal(err)
	}
	lg, lrm, err := graph.LoadFile(txt)
	if err != nil {
		t.Fatal(err)
	}
	esc := filepath.Join(dir, "g.esc")
	if err := graph.WritePackedFile(esc, lg, lrm, graph.PackWriteOptions{}); err != nil {
		t.Fatal(err)
	}

	outTxt := filepath.Join(dir, "red_txt.txt")
	outEsc := filepath.Join(dir, "red_esc.txt")
	statsTxt := filepath.Join(dir, "s_txt.json")
	statsEsc := filepath.Join(dir, "s_esc.json")
	if err := run(shedOpts{in: txt, out: outTxt, method: "crr", ps: "0.6,0.3", seed: 5, statsJSON: statsTxt}, nil); err != nil {
		t.Fatalf("shed from text: %v", err)
	}
	if err := run(shedOpts{in: esc, out: outEsc, method: "crr", ps: "0.6,0.3", seed: 5, statsJSON: statsEsc}, nil); err != nil {
		t.Fatalf("shed from packed: %v", err)
	}

	for _, p := range []string{"0.60", "0.30"} {
		a, err := os.ReadFile(filepath.Join(dir, "red_txt.p"+p+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir, "red_esc.p"+p+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("p=%s: reduced outputs differ between text and packed input", p)
		}
	}

	var sa, sb shedStats
	da, err := os.ReadFile(statsTxt)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(statsEsc)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(da, &sa); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(db, &sb); err != nil {
		t.Fatal(err)
	}
	sa.Input, sb.Input = "", ""
	if !reflect.DeepEqual(sa, sb) {
		t.Errorf("stats differ beyond the input path:\ntext:   %+v\npacked: %+v", sa, sb)
	}
}

// TestRunWritesTraceEvents drives the full -trace-events flag path: a real
// CRR run at workers=4 must produce a Perfetto-loadable Chrome trace with
// the span tree on the main track and at least `workers` named worker
// tracks, plus the manifest's flight/histogram sections.
func TestRunWritesTraceEvents(t *testing.T) {
	in, _ := writeTestGraph(t)
	dir := t.TempDir()
	out := filepath.Join(dir, "r.txt")
	manifest := filepath.Join(dir, "run.json")
	trace := filepath.Join(dir, "trace.json")

	fs := flag.NewFlagSet("shed", flag.ContinueOnError)
	cli := obs.BindFlags(fs)
	if err := fs.Parse([]string{"-metrics", manifest, "-trace-events", trace, "-quiet"}); err != nil {
		t.Fatal(err)
	}
	sess, err := cli.Start("shed")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	runErr := obs.Run(sess, func() error {
		return run(shedOpts{in: in, out: out, method: "crr", ps: "0.5", steps: 200, workers: workers, seed: 1}, sess)
	})
	if cerr := sess.Close(); runErr == nil {
		runErr = cerr
	}
	if runErr != nil {
		t.Fatal(runErr)
	}

	// The manifest carries the new PR-9 sections.
	m, err := obs.ReadManifest(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.FlightEvents) == 0 {
		t.Error("manifest has no flight events")
	}
	if m.Histograms["crr.delta_abs_micros"] == nil || m.Histograms["crr.delta_abs_micros"].Count == 0 {
		t.Errorf("manifest histograms missing crr.delta_abs_micros: %v", m.Histograms)
	}

	// The trace file parses as a Chrome trace-event document with balanced
	// B/E pairs and one named track per worker.
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			TS   float64                `json:"ts"`
			TID  int                    `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	depth := map[int]int{}
	workerTracks := map[int]bool{}
	var sawSpan bool
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "B":
			depth[e.TID]++
		case "E":
			depth[e.TID]--
			if depth[e.TID] < 0 {
				t.Fatalf("E without B on tid %d", e.TID)
			}
		case "X":
			if e.TID == 0 && e.Name == "crr.reduce" {
				sawSpan = true
			}
		case "M":
			if e.Name == "thread_name" && e.TID > 0 {
				workerTracks[e.TID] = true
			}
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Errorf("unbalanced B/E on tid %d: %d", tid, d)
		}
	}
	if !sawSpan {
		t.Error("crr.reduce span missing from the main track")
	}
	if len(workerTracks) < workers {
		t.Errorf("%d worker tracks, want >= %d", len(workerTracks), workers)
	}
}
