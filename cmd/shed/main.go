// Command shed reduces an edge-list graph with one of the paper's methods.
//
// Usage:
//
//	shed -in graph.txt -out reduced.txt -method crr -p 0.5
//
// The input is a SNAP-style whitespace edge list ('#' comments allowed), a
// .esg binary file, or a .esc packed-CSR file (see cmd/gpack) — packed
// input mmaps in without per-edge parsing and sheds bit-identically to the
// text path. The output preserves the original node labels. Reduction statistics (edge
// counts, Δ, the theorem bound) are printed to stderr, and -stats-json
// writes them machine-readable. The shared observability flags (-metrics,
// -profile, -trace, -quiet, -v, -log-json) capture a JSON run manifest,
// runtime profiles and execution traces; -debug-addr additionally serves
// the run's live counters, span progress and pprof handlers over HTTP for
// the run's duration, and -sample-interval records a runtime timeline
// into the manifest. See internal/obs and DESIGN.md §8.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"edgeshed/internal/centrality"
	"edgeshed/internal/core"
	"edgeshed/internal/graph"
	"edgeshed/internal/obs"
	"edgeshed/internal/uds"
)

// shedOpts carries the command's flag values into run.
type shedOpts struct {
	in        string
	out       string
	method    string
	ps        string
	steps     int
	samples   int
	workers   int
	batch     int
	seed      int64
	statsJSON string
}

func main() {
	var opt shedOpts
	flag.StringVar(&opt.in, "in", "", "input graph file: edge list, .esg binary, or .esc packed CSR (required)")
	flag.StringVar(&opt.out, "out", "", "output edge-list file (default: stdout); with multiple -p values a .pN.NN suffix is inserted")
	flag.StringVar(&opt.method, "method", "crr", "reduction method: crr, bm2, random, uds, forestfire, spanningforest, weighted")
	flag.StringVar(&opt.ps, "p", "0.5", "edge preservation ratio(s) in (0,1), comma-separated; CRR sweeps share one betweenness computation")
	flag.IntVar(&opt.steps, "steps", 0, "CRR rewiring steps (0 = paper default [10*P], <0 = off)")
	flag.IntVar(&opt.samples, "samples", 0, "betweenness source samples (0 = exact)")
	flag.Int64Var(&opt.seed, "seed", 1, "random seed")
	flag.IntVar(&opt.workers, "workers", 0, "worker goroutines for the betweenness kernel and CRR multi-ratio sweeps (0 = GOMAXPROCS); output is identical at any count")
	flag.IntVar(&opt.batch, "batch", 0, "MS-BFS sources per betweenness batch, 1..64 (0 or out of range = the full 64-wide word); output is identical at any width")
	flag.StringVar(&opt.statsJSON, "stats-json", "", "write reduction statistics (edge counts, Δ, theorem bounds) as JSON to this file")
	cli := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	sess, err := cli.Start("shed")
	if err != nil {
		fmt.Fprintln(os.Stderr, "shed:", err)
		os.Exit(1)
	}
	runErr := obs.Run(sess, func() error { return run(opt, sess) })
	if cerr := sess.Close(); runErr == nil {
		runErr = cerr
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "shed:", runErr)
		os.Exit(1)
	}
}

// shedStats is the -stats-json document: the input graph's shape plus one
// row per preservation ratio.
type shedStats struct {
	// Input is the input edge-list path.
	Input string `json:"input"`
	// Method is the reducer's name (e.g. "CRR").
	Method string `json:"method"`
	// Nodes and Edges are the input graph's size.
	Nodes int `json:"nodes"`
	// Edges is |E| of the input graph.
	Edges int `json:"edges"`
	// Seed is the run's random seed.
	Seed int64 `json:"seed"`
	// Rows holds one entry per requested ratio, aligned with -p order.
	Rows []shedStatsRow `json:"rows"`
}

// shedStatsRow is one ratio's outcome in a shedStats document.
type shedStatsRow struct {
	// P is the requested preservation ratio.
	P float64 `json:"p"`
	// KeptEdges is |E'| of the reduction.
	KeptEdges int `json:"kept_edges"`
	// KeptFraction is |E'| / |E|.
	KeptFraction float64 `json:"kept_fraction"`
	// Delta is the total degree discrepancy Δ = Σ_u |dis(u)|.
	Delta float64 `json:"delta"`
	// AvgDisPerNode is Δ / |V|.
	AvgDisPerNode float64 `json:"avg_dis_per_node"`
	// BoundName names the theorem bound in Bound, when the method has one.
	BoundName string `json:"bound_name,omitempty"`
	// Bound is the theorem's bound on avg |dis| (CRR: Theorem 1, BM2:
	// Theorem 2); 0 and absent for other methods.
	Bound float64 `json:"bound,omitempty"`
	// Headroom is Bound − AvgDisPerNode, the margin by which the run beat
	// its theorem; 0 and absent without a bound.
	Headroom float64 `json:"headroom,omitempty"`
}

// statsRow builds one -stats-json row from a reduction's quality summary.
// The summary is the same core.QualityOf derivation the kernels record
// onto the manifest's quality timeline, so the two outputs agree
// field-for-field by construction (pinned by TestStatsMatchManifestQuality).
func statsRow(q core.RatioQuality) shedStatsRow {
	return shedStatsRow{
		P:             q.P,
		KeptEdges:     q.KeptEdges,
		KeptFraction:  q.KeptFraction,
		Delta:         q.Delta,
		AvgDisPerNode: q.AvgDisPerNode,
		BoundName:     q.BoundName,
		Bound:         q.Bound,
		Headroom:      q.Headroom,
	}
}

func run(opt shedOpts, sess *obs.Session) error {
	if opt.in == "" {
		return fmt.Errorf("-in is required")
	}
	ps, err := parsePs(opt.ps)
	if err != nil {
		return err
	}
	load := sess.Root().Start("load")
	g, rm, err := graph.LoadFileObs(opt.in, load)
	load.End()
	if err != nil {
		return err
	}
	sess.SetGraph(g.NumNodes(), g.NumEdges())
	sess.SetSeed(opt.seed)
	sess.SetWorkers(opt.workers)
	sess.Logf("loaded %s: |V|=%d |E|=%d", opt.in, g.NumNodes(), g.NumEdges())

	var reducer core.Reducer
	bopt := centrality.Options{Samples: opt.samples, Seed: opt.seed + 1, Workers: opt.workers, Batch: opt.batch}
	switch strings.ToLower(opt.method) {
	case "crr":
		reducer = core.CRR{Seed: opt.seed, Steps: opt.steps, Betweenness: bopt, Workers: opt.workers, Obs: sess.Root()}
	case "bm2":
		reducer = core.BM2{Obs: sess.Root()}
	case "random":
		reducer = core.Random{Seed: opt.seed}
	case "forestfire":
		reducer = core.ForestFire{Seed: opt.seed}
	case "spanningforest":
		reducer = core.SpanningForest{Seed: opt.seed}
	case "weighted":
		reducer = core.WeightedSample{Seed: opt.seed}
	case "uds":
		reducer = uds.Reducer{
			Summarizer: uds.Summarizer{Betweenness: bopt, Seed: opt.seed},
			ExpandSeed: opt.seed + 2,
		}
	default:
		return fmt.Errorf("unknown method %q (want crr, bm2, random, uds, forestfire, spanningforest or weighted)", opt.method)
	}

	// Reduce at every requested ratio; CRR shares its Phase 1 betweenness
	// across the sweep.
	start := time.Now()
	var results []*core.Result
	if crr, ok := reducer.(core.CRR); ok && len(ps) > 1 {
		results, err = crr.Sweep(g, ps)
		if err != nil {
			return err
		}
	} else {
		for _, p := range ps {
			res, err := reducer.Reduce(g, p)
			if err != nil {
				return err
			}
			results = append(results, res)
		}
	}
	dur := time.Since(start)

	stats := &shedStats{
		Input:  opt.in,
		Method: reducer.Name(),
		Nodes:  g.NumNodes(),
		Edges:  g.NumEdges(),
		Seed:   opt.seed,
	}
	write := sess.Root().Start("write")
	for i, res := range results {
		p := ps[i]
		row := statsRow(core.QualityOf(res, reducer.Name()))
		sess.Logf("%s p=%.3f: |E'|=%d (%.1f%% of |E|), Δ=%.3f, avg |dis|=%.4f",
			reducer.Name(), p, row.KeptEdges, 100*row.KeptFraction, row.Delta, row.AvgDisPerNode)
		switch row.BoundName {
		case "theorem1":
			sess.Logf("Theorem 1 bound on avg |dis|: %.4f", row.Bound)
		case "theorem2":
			sess.Logf("Theorem 2 bound on avg |dis|: %.4f", row.Bound)
		}
		stats.Rows = append(stats.Rows, row)
		switch {
		case opt.out == "":
			if err := graph.WriteEdgeList(os.Stdout, res.Reduced, rm); err != nil {
				return err
			}
		default:
			if err := graph.SaveFile(outPath(opt.out, p, len(ps) > 1), res.Reduced, rm); err != nil {
				return err
			}
		}
	}
	write.End()
	if opt.statsJSON != "" {
		if err := writeStats(opt.statsJSON, stats); err != nil {
			return err
		}
	}
	sess.Logf("total time: %s", dur)
	return nil
}

// writeStats marshals the stats document to path, newline-terminated.
func writeStats(path string, stats *shedStats) error {
	data, err := json.MarshalIndent(stats, "", "  ")
	if err != nil {
		return fmt.Errorf("marshaling -stats-json: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// parsePs parses one or more comma-separated preservation ratios.
func parsePs(s string) ([]float64, error) {
	var ps []float64
	for _, part := range strings.Split(s, ",") {
		p, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -p entry %q: %v", part, err)
		}
		ps = append(ps, p)
	}
	return ps, nil
}

// outPath inserts a .pN.NN suffix before the extension when writing a
// multi-ratio sweep.
func outPath(out string, p float64, multi bool) string {
	if !multi {
		return out
	}
	ext := filepath.Ext(out)
	return fmt.Sprintf("%s.p%.2f%s", strings.TrimSuffix(out, ext), p, ext)
}
