// Command shed reduces an edge-list graph with one of the paper's methods.
//
// Usage:
//
//	shed -in graph.txt -out reduced.txt -method crr -p 0.5
//
// The input is a SNAP-style whitespace edge list ('#' comments allowed); the
// output preserves the original node labels. Reduction statistics (edge
// counts, Δ, the theorem bound) are printed to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"edgeshed/internal/centrality"
	"edgeshed/internal/core"
	"edgeshed/internal/graph"
	"edgeshed/internal/uds"
)

func main() {
	var (
		in      = flag.String("in", "", "input edge-list file (required)")
		out     = flag.String("out", "", "output edge-list file (default: stdout); with multiple -p values a .pN.NN suffix is inserted")
		method  = flag.String("method", "crr", "reduction method: crr, bm2, random, uds, forestfire, spanningforest, weighted")
		pFlag   = flag.String("p", "0.5", "edge preservation ratio(s) in (0,1), comma-separated; CRR sweeps share one betweenness computation")
		steps   = flag.Int("steps", 0, "CRR rewiring steps (0 = paper default [10*P], <0 = off)")
		samples = flag.Int("samples", 0, "betweenness source samples (0 = exact)")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "worker goroutines for the betweenness kernel and CRR multi-ratio sweeps (0 = GOMAXPROCS); output is identical at any count")
	)
	flag.Parse()
	if err := run(*in, *out, *method, *pFlag, *steps, *samples, *workers, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "shed:", err)
		os.Exit(1)
	}
}

func run(in, out, method, pFlag string, steps, samples, workers int, seed int64) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	ps, err := parsePs(pFlag)
	if err != nil {
		return err
	}
	g, rm, err := graph.LoadFile(in)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loaded %s: |V|=%d |E|=%d\n", in, g.NumNodes(), g.NumEdges())

	var reducer core.Reducer
	bopt := centrality.Options{Samples: samples, Seed: seed + 1, Workers: workers}
	switch strings.ToLower(method) {
	case "crr":
		reducer = core.CRR{Seed: seed, Steps: steps, Betweenness: bopt, Workers: workers}
	case "bm2":
		reducer = core.BM2{}
	case "random":
		reducer = core.Random{Seed: seed}
	case "forestfire":
		reducer = core.ForestFire{Seed: seed}
	case "spanningforest":
		reducer = core.SpanningForest{Seed: seed}
	case "weighted":
		reducer = core.WeightedSample{Seed: seed}
	case "uds":
		reducer = uds.Reducer{
			Summarizer: uds.Summarizer{Betweenness: bopt, Seed: seed},
			ExpandSeed: seed + 2,
		}
	default:
		return fmt.Errorf("unknown method %q (want crr, bm2, random, uds, forestfire, spanningforest or weighted)", method)
	}

	// Reduce at every requested ratio; CRR shares its Phase 1 betweenness
	// across the sweep.
	start := time.Now()
	var results []*core.Result
	if crr, ok := reducer.(core.CRR); ok && len(ps) > 1 {
		results, err = crr.Sweep(g, ps)
		if err != nil {
			return err
		}
	} else {
		for _, p := range ps {
			res, err := reducer.Reduce(g, p)
			if err != nil {
				return err
			}
			results = append(results, res)
		}
	}
	dur := time.Since(start)

	for i, res := range results {
		p := ps[i]
		fmt.Fprintf(os.Stderr, "%s p=%.3f: |E'|=%d (%.1f%% of |E|), Δ=%.3f, avg |dis|=%.4f\n",
			reducer.Name(), p, res.Reduced.NumEdges(),
			100*float64(res.Reduced.NumEdges())/float64(g.NumEdges()),
			res.Delta(), res.AvgDisPerNode())
		switch reducer.Name() {
		case "CRR":
			fmt.Fprintf(os.Stderr, "Theorem 1 bound on avg |dis|: %.4f\n", core.CRRBound(g, p))
		case "BM2":
			fmt.Fprintf(os.Stderr, "Theorem 2 bound on avg |dis|: %.4f\n", core.BM2Bound(g, p))
		}
		switch {
		case out == "":
			if err := graph.WriteEdgeList(os.Stdout, res.Reduced, rm); err != nil {
				return err
			}
		default:
			if err := graph.SaveFile(outPath(out, p, len(ps) > 1), res.Reduced, rm); err != nil {
				return err
			}
		}
	}
	fmt.Fprintf(os.Stderr, "total time: %s\n", dur)
	return nil
}

// parsePs parses one or more comma-separated preservation ratios.
func parsePs(s string) ([]float64, error) {
	var ps []float64
	for _, part := range strings.Split(s, ",") {
		p, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -p entry %q: %v", part, err)
		}
		ps = append(ps, p)
	}
	return ps, nil
}

// outPath inserts a .pN.NN suffix before the extension when writing a
// multi-ratio sweep.
func outPath(out string, p float64, multi bool) string {
	if !multi {
		return out
	}
	ext := filepath.Ext(out)
	return fmt.Sprintf("%s.p%.2f%s", strings.TrimSuffix(out, ext), p, ext)
}
