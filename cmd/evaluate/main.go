// Command evaluate runs the paper's seven evaluation tasks between an
// original graph and a reduced graph, printing each task's utility or
// error — the quality half of the paper's evaluation for any pair of
// edge-list files.
//
// Usage:
//
//	evaluate -orig graph.txt -reduced reduced.txt
//
// The reduced file must use the same node labels as the original (as
// written by cmd/shed). The shared observability flags apply (-metrics,
// -profile, -trace, -debug-addr for a live HTTP debug plane); see
// internal/obs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"edgeshed/internal/graph"
	"edgeshed/internal/obs"
	"edgeshed/internal/tasks"
)

func main() {
	var (
		origPath = flag.String("orig", "", "original edge-list file (required)")
		redPath  = flag.String("reduced", "", "reduced edge-list file (required)")
		sources  = flag.Int("sources", 0, "BFS/betweenness source samples (0 = exact)")
		maxPairs = flag.Int("maxpairs", 20000, "cap on 2-hop pairs for link prediction (0 = all)")
		seed     = flag.Int64("seed", 1, "sampling seed")
		workers  = flag.Int("workers", 0, "worker goroutines for parallel kernels (0 = GOMAXPROCS); results are identical at any count")
	)
	cli := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	sess, err := cli.Start("evaluate")
	if err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		os.Exit(1)
	}
	runErr := obs.Run(sess, func() error { return run(os.Stdout, *origPath, *redPath, *sources, *maxPairs, *workers, *seed, sess) })
	if cerr := sess.Close(); runErr == nil {
		runErr = cerr
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", runErr)
		os.Exit(1)
	}
}

func run(w io.Writer, origPath, redPath string, sources, maxPairs, workers int, seed int64, sess *obs.Session) error {
	if origPath == "" || redPath == "" {
		return fmt.Errorf("-orig and -reduced are required")
	}
	load := sess.Root().Start("load")
	orig, origRM, err := graph.LoadFileObs(origPath, load)
	if err != nil {
		load.End()
		return fmt.Errorf("reading original: %w", err)
	}
	redRaw, redRM, err := graph.LoadFileObs(redPath, load)
	if err != nil {
		load.End()
		return fmt.Errorf("reading reduced: %w", err)
	}
	red, err := alignNodeIDs(orig, origRM, redRaw, redRM)
	load.End()
	if err != nil {
		return err
	}
	sess.SetGraph(orig.NumNodes(), orig.NumEdges())
	sess.SetSeed(seed)
	sess.SetWorkers(workers)
	sess.Verbosef("evaluating %s against %s", redPath, origPath)
	fmt.Fprintf(w, "original: |V|=%d |E|=%d   reduced: |E|=%d (p ≈ %.3f)\n\n",
		orig.NumNodes(), orig.NumEdges(), red.NumEdges(),
		float64(red.NumEdges())/float64(orig.NumEdges()))

	suite := tasks.Suite{Sources: sources, MaxPairs: maxPairs, Seed: seed, Workers: workers, Obs: sess.Root()}
	fmt.Fprintf(w, "%-28s %10s   %s\n", "task", "value", "meaning")
	for _, m := range suite.Evaluate(orig, red) {
		fmt.Fprintf(w, "%-28s %10.4f   %s\n", m.Task, m.Value, m.Meaning)
	}
	return nil
}

// alignNodeIDs maps the reduced graph's dense ids back onto the original
// graph's id space via the shared external labels, so per-node comparisons
// line up. Labels present only in the reduced file are an error.
func alignNodeIDs(orig *graph.Graph, origRM *graph.Remapper, red *graph.Graph, redRM *graph.Remapper) (*graph.Graph, error) {
	b := graph.NewBuilder(orig.NumNodes())
	labelToOrig := make(map[int64]graph.NodeID, orig.NumNodes())
	for u := 0; u < orig.NumNodes(); u++ {
		labelToOrig[origRM.Label(graph.NodeID(u))] = graph.NodeID(u)
	}
	for _, e := range red.Edges() {
		lu, lv := redRM.Label(e.U), redRM.Label(e.V)
		u, ok := labelToOrig[lu]
		if !ok {
			return nil, fmt.Errorf("reduced graph has node %d absent from the original", lu)
		}
		v, ok := labelToOrig[lv]
		if !ok {
			return nil, fmt.Errorf("reduced graph has node %d absent from the original", lv)
		}
		b.TryAddEdge(u, v)
	}
	return b.Graph(), nil
}
