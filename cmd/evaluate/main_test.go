package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"edgeshed/internal/core"
	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

func writePair(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	g := gen.BarabasiAlbert(80, 3, 5)
	origPath := filepath.Join(dir, "orig.txt")
	if err := graph.WriteEdgeListFile(origPath, g, nil); err != nil {
		t.Fatal(err)
	}
	res, err := (core.BM2{}).Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	redPath := filepath.Join(dir, "red.txt")
	if err := graph.WriteEdgeListFile(redPath, res.Reduced, nil); err != nil {
		t.Fatal(err)
	}
	return origPath, redPath
}

func TestRunEvaluatesAllTasks(t *testing.T) {
	origPath, redPath := writePair(t)
	var buf bytes.Buffer
	if err := run(&buf, origPath, redPath, 0, 5000, 0, 1, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"vertex degree", "shortest-path distance", "betweenness centrality",
		"clustering coefficient", "hop-plot", "top-10% query",
		"link prediction (node2vec)", "link prediction (label prop)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// BM2 has no exact-count guarantee; just check the ratio line exists.
	if !strings.Contains(out, "p ≈ 0.4") && !strings.Contains(out, "p ≈ 0.5") {
		t.Errorf("missing ratio line:\n%s", out)
	}
}

func TestRunSelfComparisonIsPerfect(t *testing.T) {
	origPath, _ := writePair(t)
	var buf bytes.Buffer
	if err := run(&buf, origPath, origPath, 0, 5000, 0, 1, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	// Degree TVD of a graph against itself is zero; top-k utility is one.
	if !strings.Contains(out, "vertex degree                    0.0000") {
		t.Errorf("self degree TVD not zero:\n%s", out)
	}
	if !strings.Contains(out, "top-10% query                    1.0000") {
		t.Errorf("self top-k utility not one:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "", "", 0, 0, 0, 1, nil); err == nil {
		t.Error("missing paths accepted")
	}
	origPath, _ := writePair(t)
	if err := run(&buf, origPath, filepath.Join(t.TempDir(), "nope.txt"), 0, 0, 0, 1, nil); err == nil {
		t.Error("missing reduced file accepted")
	}
}

func TestRunRejectsForeignNodes(t *testing.T) {
	dir := t.TempDir()
	origPath := filepath.Join(dir, "orig.txt")
	if err := graph.WriteEdgeListFile(origPath, gen.Path(4), nil); err != nil {
		t.Fatal(err)
	}
	// Reduced graph mentions node 99, absent from the original.
	redPath := filepath.Join(dir, "red.txt")
	if err := graph.WriteEdgeListFile(redPath, gen.Path(100), nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, origPath, redPath, 0, 0, 0, 1, nil); err == nil {
		t.Error("reduced graph with foreign nodes accepted")
	}
}
