package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const passingResults = `Figure 4 (test): CRR steps sweep
x   avg delta  time (s)
-----------------------
1   0.6312     0.003
10  0.3395     0.007
`

const failingResults = `Figure 4 (test): CRR steps sweep
x   avg delta  time (s)
-----------------------
1   0.3395     0.003
10  0.6312     0.007
`

func write(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "r.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPassing(t *testing.T) {
	var buf bytes.Buffer
	code, err := run(&buf, write(t, passingResults), nil)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("exit code = %d, want 0\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "0 failed") {
		t.Errorf("summary missing:\n%s", buf.String())
	}
}

func TestRunFailing(t *testing.T) {
	var buf bytes.Buffer
	code, err := run(&buf, write(t, failingResults), nil)
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Errorf("exit code = %d, want 2\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "FAIL fig4-rewiring-improves") {
		t.Errorf("failure row missing:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run(&buf, "", nil); err == nil {
		t.Error("missing -in accepted")
	}
	if _, err := run(&buf, filepath.Join(t.TempDir(), "nope.txt"), nil); err == nil {
		t.Error("missing file accepted")
	}
}
