// Command checkclaims verifies the paper's qualitative claims against a
// results file produced by cmd/experiments, making the reproduction
// self-auditing:
//
//	experiments -run all -scale 32 -out results.txt
//	checkclaims -in results.txt
//
// It exits non-zero when any claim fails.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"edgeshed/internal/claims"
	"edgeshed/internal/obs"
)

func main() {
	in := flag.String("in", "", "results file from cmd/experiments (required)")
	cli := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	sess, err := cli.Start("checkclaims")
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkclaims:", err)
		os.Exit(1)
	}
	var code int
	err = obs.Run(sess, func() error {
		var rerr error
		code, rerr = run(os.Stdout, *in, sess)
		return rerr
	})
	if cerr := sess.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkclaims:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(w io.Writer, in string, sess *obs.Session) (int, error) {
	if in == "" {
		return 0, fmt.Errorf("-in is required")
	}
	data, err := os.ReadFile(in)
	if err != nil {
		return 0, err
	}
	outcomes := claims.Check(string(data))
	fails := 0
	for _, o := range outcomes {
		fmt.Fprintf(w, "%-4s %-28s %s\n", o.Status, o.ID, o.Description)
		if o.Detail != "" {
			fmt.Fprintf(w, "     %s\n", o.Detail)
		}
		if o.Status == claims.Fail {
			fails++
		}
	}
	if sess.Root().Enabled() {
		sess.Root().Counter("claims.checked").Add(int64(len(outcomes)))
		sess.Root().Counter("claims.failed").Add(int64(fails))
	}
	fmt.Fprintf(w, "\n%d claims, %d failed\n", len(outcomes), fails)
	if fails > 0 {
		return 2, nil
	}
	return 0, nil
}
