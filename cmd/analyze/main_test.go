package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := graph.WriteEdgeListFile(path, gen.BarabasiAlbert(60, 2, 7), nil); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllTasks(t *testing.T) {
	path := writeTestGraph(t)
	var buf bytes.Buffer
	err := run(&buf, path, "degree,sp,hopplot,cc,topk,components,betweenness,closeness,structure", 10, 0, 1, 0, 0, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"vertex degree distribution", "shortest paths", "hop-plot",
		"clustering coefficient", "top-10%", "connected components",
		"betweenness centrality", "closeness centrality", "assortativity",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "", "degree", 10, 0, 1, 0, 0, nil); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run(&buf, filepath.Join(t.TempDir(), "nope.txt"), "degree", 10, 0, 1, 0, 0, nil); err == nil {
		t.Error("missing file accepted")
	}
	path := writeTestGraph(t)
	if err := run(&buf, path, "no-such-task", 10, 0, 1, 0, 0, nil); err == nil {
		t.Error("unknown task accepted")
	}
}

func TestRunBinaryInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.esg")
	if err := graph.SaveFile(path, gen.BarabasiAlbert(50, 2, 8), nil); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, path, "degree,components", 10, 0, 1, 0, 0, nil); err != nil {
		t.Fatalf("binary input: %v", err)
	}
	if !strings.Contains(buf.String(), "|V|=50") {
		t.Errorf("binary graph not loaded:\n%s", buf.String())
	}
}

func TestRunSampledSources(t *testing.T) {
	path := writeTestGraph(t)
	var buf bytes.Buffer
	if err := run(&buf, path, "sp,betweenness", 10, 16, 3, 0, 0, nil); err != nil {
		t.Fatalf("sampled run: %v", err)
	}
	if !strings.Contains(buf.String(), "shortest paths") {
		t.Error("sampled output incomplete")
	}
}

// TestRunBatchBitIdentical pins the -batch contract end to end: the MS-BFS
// batch width is a performance knob, so the centrality task outputs must be
// byte-identical at every width — including the 0 default and out-of-range
// values, which clamp to the full 64-wide word.
func TestRunBatchBitIdentical(t *testing.T) {
	path := writeTestGraph(t)
	const tasks = "betweenness,closeness"
	var want bytes.Buffer
	if err := run(&want, path, tasks, 10, 0, 3, 2, 0, nil); err != nil {
		t.Fatalf("batch=0 run: %v", err)
	}
	for _, batch := range []int{1, 8, 64, 999} {
		var got bytes.Buffer
		if err := run(&got, path, tasks, 10, 0, 3, 2, batch, nil); err != nil {
			t.Fatalf("batch=%d run: %v", batch, err)
		}
		if got.String() != want.String() {
			t.Errorf("-batch %d output differs from -batch 0:\n%s\nvs\n%s", batch, got.String(), want.String())
		}
	}
}

// TestRunSampledCloseness pins that -sources reaches the closeness task:
// the sampled estimator must run, and its scores must differ from the exact
// run's (same graph, deterministic seed), while -sources >= |V| degenerates
// to the exact computation.
func TestRunSampledCloseness(t *testing.T) {
	path := writeTestGraph(t)
	var exact, sampled, over bytes.Buffer
	if err := run(&exact, path, "closeness", 10, 0, 3, 0, 0, nil); err != nil {
		t.Fatalf("exact run: %v", err)
	}
	if err := run(&sampled, path, "closeness", 10, 16, 3, 0, 0, nil); err != nil {
		t.Fatalf("sampled run: %v", err)
	}
	if err := run(&over, path, "closeness", 10, 60, 3, 0, 0, nil); err != nil {
		t.Fatalf("oversampled run: %v", err)
	}
	if !strings.Contains(sampled.String(), "closeness centrality") {
		t.Fatalf("sampled output incomplete:\n%s", sampled.String())
	}
	if sampled.String() == exact.String() {
		t.Error("-sources=16 produced byte-identical output to exact closeness; sampling not wired through")
	}
	if over.String() != exact.String() {
		t.Errorf("-sources=|V| should match exact closeness output\nexact:\n%s\nover:\n%s", exact.String(), over.String())
	}
}
