// Command analyze runs the paper's graph-analysis tasks on an edge-list
// file and prints their summaries: degree distribution, shortest-path
// profile, clustering, PageRank top-k, components, centralities and
// structural summaries.
//
// Usage:
//
//	analyze -in graph.txt -tasks degree,sp,cc,topk
//
// The shared observability flags apply (-metrics, -profile, -trace,
// -debug-addr for a live HTTP debug plane); see internal/obs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"edgeshed/internal/analysis"
	"edgeshed/internal/centrality"
	"edgeshed/internal/graph"
	"edgeshed/internal/obs"
)

func main() {
	var (
		in       = flag.String("in", "", "input graph file: edge list, .esg binary, or .esc packed CSR (required)")
		taskList = flag.String("tasks", "degree,sp,cc,topk,components", "comma-separated: degree, sp, hopplot, cc, topk, components, betweenness, closeness, structure")
		topPct   = flag.Float64("top", 10, "top-t%% for the topk task")
		sources  = flag.Int("sources", 0, "BFS/betweenness/closeness source samples (0 = exact)")
		seed     = flag.Int64("seed", 1, "sampling seed")
		workers  = flag.Int("workers", 0, "worker goroutines for parallel kernels (0 = GOMAXPROCS); results are identical at any count")
		batch    = flag.Int("batch", 0, "MS-BFS sources per batch for betweenness/closeness, 1..64 (0 or out of range = the full 64-wide word); results are identical at any width")
	)
	cli := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	sess, err := cli.Start("analyze")
	if err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
	runErr := obs.Run(sess, func() error { return run(os.Stdout, *in, *taskList, *topPct, *sources, *seed, *workers, *batch, sess) })
	if cerr := sess.Close(); runErr == nil {
		runErr = cerr
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "analyze:", runErr)
		os.Exit(1)
	}
}

func run(w io.Writer, in, taskList string, topPct float64, sources int, seed int64, workers, batch int, sess *obs.Session) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	load := sess.Root().Start("load")
	g, rm, err := graph.LoadFileObs(in, load)
	load.End()
	if err != nil {
		return err
	}
	sess.SetGraph(g.NumNodes(), g.NumEdges())
	sess.SetSeed(seed)
	sess.SetWorkers(workers)
	sess.Verbosef("loaded %s: |V|=%d |E|=%d", in, g.NumNodes(), g.NumEdges())
	fmt.Fprintf(w, "graph: |V|=%d |E|=%d avg degree=%.2f max degree=%d\n",
		g.NumNodes(), g.NumEdges(), g.AvgDegree(), g.MaxDegree())

	label := func(u graph.NodeID) int64 {
		if rm != nil {
			return rm.Label(u)
		}
		return int64(u)
	}
	root := sess.Root()
	for _, task := range strings.Split(taskList, ",") {
		name := strings.TrimSpace(task)
		var tsp *obs.Span
		if root.Enabled() {
			tsp = root.Start("task:" + name)
		}
		switch name {
		case "degree":
			dist := analysis.DegreeDistribution(g, 0)
			fmt.Fprintln(w, "\nvertex degree distribution (degree: fraction):")
			printed := 0
			for d, f := range dist {
				if f == 0 {
					continue
				}
				fmt.Fprintf(w, "  %4d: %.4f\n", d, f)
				printed++
				if printed >= 20 {
					fmt.Fprintf(w, "  ... (%d more degrees)\n", nonZero(dist[d+1:]))
					break
				}
			}
		case "sp":
			prof := analysis.NewDistanceProfile(g, analysis.ProfileOptions{Sources: sources, Seed: seed, Workers: workers, Obs: tsp})
			fmt.Fprintf(w, "\nshortest paths: diameter=%d mean distance=%.3f reachable pairs=%.0f\n",
				prof.Diameter, prof.MeanDistance(), prof.ReachablePairs)
			for d, f := range prof.Distribution() {
				if f > 0 {
					fmt.Fprintf(w, "  d=%2d: %.4f\n", d, f)
				}
			}
		case "hopplot":
			prof := analysis.NewDistanceProfile(g, analysis.ProfileOptions{Sources: sources, Seed: seed, Workers: workers, Obs: tsp})
			fmt.Fprintln(w, "\nhop-plot (k: cumulative fraction):")
			for k, f := range prof.HopPlot() {
				fmt.Fprintf(w, "  k=%2d: %.4f\n", k, f)
			}
		case "cc":
			fmt.Fprintf(w, "\naverage clustering coefficient: %.4f, triangles: %d\n",
				analysis.AverageClustering(g, workers), analysis.Triangles(g, workers))
		case "topk":
			pr := analysis.PageRank(g, analysis.PageRankOptions{Workers: workers, Obs: tsp})
			k := int(float64(g.NumNodes()) * topPct / 100)
			top := analysis.TopK(pr, k)
			fmt.Fprintf(w, "\ntop-%.0f%%: %d nodes by PageRank; first 10 (label: score):\n", topPct, len(top))
			for i, u := range top {
				if i >= 10 {
					break
				}
				fmt.Fprintf(w, "  %d: %.6f\n", label(u), pr[u])
			}
		case "components":
			_, count := analysis.ConnectedComponents(g)
			lc := analysis.LargestComponent(g)
			fmt.Fprintf(w, "\nconnected components: %d; largest: %d nodes (%.1f%%)\n",
				count, len(lc), 100*float64(len(lc))/float64(g.NumNodes()))
		case "betweenness":
			opt := centrality.Options{Samples: sources, Seed: seed, Workers: workers, Batch: batch, Obs: tsp}
			bc := centrality.NodeBetweenness(g, opt)
			fmt.Fprintln(w, "\ntop-10 nodes by betweenness centrality (label: score):")
			for _, u := range analysis.TopK(bc, 10) {
				fmt.Fprintf(w, "  %d: %.2f\n", label(u), bc[u])
			}
		case "closeness":
			cl := centrality.Closeness(g, centrality.Options{Samples: sources, Seed: seed, Workers: workers, Batch: batch, Obs: tsp})
			fmt.Fprintln(w, "\ntop-10 nodes by closeness centrality (label: score):")
			for _, u := range analysis.TopK(cl, 10) {
				fmt.Fprintf(w, "  %d: %.4f\n", label(u), cl[u])
			}
		case "structure":
			fmt.Fprintf(w, "\nstructure: assortativity=%.4f approx diameter=%d degeneracy=%d degree gini=%.4f\n",
				analysis.DegreeAssortativity(g), analysis.ApproxDiameter(g),
				analysis.MaxCore(g), analysis.GiniDegree(g))
		default:
			tsp.End()
			return fmt.Errorf("unknown task %q", task)
		}
		tsp.End()
	}
	return nil
}

func nonZero(xs []float64) int {
	n := 0
	for _, x := range xs {
		if x > 0 {
			n++
		}
	}
	return n
}
