package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edgeshed/internal/benchfmt"
	"edgeshed/internal/obs"
)

// writeJSON marshals v into dir/name and returns the path.
func writeJSON(t *testing.T, dir, name string, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// manifest builds a minimal shed run manifest with the given start stamp,
// commit and quality timeline, on a fixed machine identity.
func manifest(start, commit string, quality []obs.QualityPoint) *obs.Manifest {
	return &obs.Manifest{
		Command:   "shed",
		GoVersion: "go1.23.0",
		GOOS:      "linux",
		GOARCH:    "amd64",
		CPUs:      8,
		StartUTC:  start,
		GitCommit: commit,
		Quality:   quality,
	}
}

// qp is a quality-point literal helper.
func qp(metric string, ratio, value float64, better string) obs.QualityPoint {
	return obs.QualityPoint{Metric: metric, Ratio: ratio, Value: value, Better: better}
}

func TestReportTrendTable(t *testing.T) {
	dir := t.TempDir()
	writeJSON(t, dir, "run1.json", manifest("2026-01-01T10:00:00Z", "aaa1111", []obs.QualityPoint{
		qp("crr.delta", 0.5, 30, "lower"),
		qp("crr.delta", 0.5, 24.5, "lower"), // later point wins the column
		qp("crr.headroom.theorem1", 0.5, 2.5, "higher"),
	}))
	writeJSON(t, dir, "run2.json", manifest("2026-01-02T10:00:00Z", "bbb2222", []obs.QualityPoint{
		qp("crr.delta", 0.5, 24.5, "lower"),
		qp("crr.kept_edges", 0.5, 117, "info"), // only in run 2
	}))
	var out bytes.Buffer
	code, err := run(&out, reportOpts{maxRegress: "10%", args: []string{dir}}, nil)
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v\n%s", code, err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"## shed — go1.23.0 linux/amd64, 8 CPUs",
		"run 1: run1.json (2026-01-01T10:00:00Z) @aaa1111",
		"run 2: run2.json (2026-01-02T10:00:00Z) @bbb2222",
		"| crr.delta | 0.5 | lower | 24.5 | 24.5 |",
		"| crr.headroom.theorem1 | 0.5 | higher | 2.5 | — |",
		"| crr.kept_edges | 0.5 | info | — | 117 |",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestGateCatchesRegression(t *testing.T) {
	dir := t.TempDir()
	writeJSON(t, dir, "run1.json", manifest("2026-01-01T10:00:00Z", "", []obs.QualityPoint{
		qp("crr.delta", 0.5, 20, "lower"),
		qp("suite.top-10% query", 0, 0.9, "higher"),
	}))
	writeJSON(t, dir, "run2.json", manifest("2026-01-02T10:00:00Z", "", []obs.QualityPoint{
		qp("crr.delta", 0.5, 20, "lower"),           // unchanged: ok
		qp("suite.top-10% query", 0, 0.4, "higher"), // utility halved: breach
	}))
	var out bytes.Buffer
	code, err := run(&out, reportOpts{gate: true, maxRegress: "10%", args: []string{dir}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("code = %d, want 1 (gate breach)\n%s", code, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "BREACH") || !strings.Contains(got, "suite.top-10% query") {
		t.Errorf("breach report missing the regressed series:\n%s", got)
	}
	if strings.Contains(got, "crr.delta@") {
		t.Errorf("unchanged series reported as breach:\n%s", got)
	}
}

func TestGatePassesOnIdenticalAndSkipsInfo(t *testing.T) {
	dir := t.TempDir()
	pts := func(bound float64) []obs.QualityPoint {
		return []obs.QualityPoint{
			qp("crr.delta", 0.5, 24.5, "lower"),
			qp("crr.headroom.theorem1", 0.5, 2.5, "higher"),
			qp("crr.bound.theorem1", 0.5, bound, "info"), // info: moves freely
		}
	}
	writeJSON(t, dir, "run1.json", manifest("2026-01-01T10:00:00Z", "", pts(2.8)))
	writeJSON(t, dir, "run2.json", manifest("2026-01-02T10:00:00Z", "", pts(99)))
	var out bytes.Buffer
	code, err := run(&out, reportOpts{gate: true, maxRegress: "10%", args: []string{dir}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("code = %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "ok: no directional quality series regressed") {
		t.Errorf("missing gate ok line:\n%s", out.String())
	}
}

func TestDirtyCommitWarning(t *testing.T) {
	dir := t.TempDir()
	writeJSON(t, dir, "run1.json", manifest("2026-01-01T10:00:00Z", "abc1234-dirty", []obs.QualityPoint{
		qp("crr.delta", 0.5, 24.5, "lower"),
	}))
	var out bytes.Buffer
	code, err := run(&out, reportOpts{args: []string{dir}}, nil)
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), "dirty worktree") {
		t.Errorf("missing dirty-worktree warning:\n%s", out.String())
	}
}

// TestEnvGroupsSeparate pins the cross-machine rule: manifests from
// different machines never share a trend line, so a value shift across
// machines cannot breach the gate.
func TestEnvGroupsSeparate(t *testing.T) {
	dir := t.TempDir()
	m1 := manifest("2026-01-01T10:00:00Z", "", []obs.QualityPoint{qp("crr.delta", 0.5, 10, "lower")})
	m2 := manifest("2026-01-02T10:00:00Z", "", []obs.QualityPoint{qp("crr.delta", 0.5, 100, "lower")})
	m2.CPUs = 64 // different machine
	writeJSON(t, dir, "run1.json", m1)
	writeJSON(t, dir, "run2.json", m2)
	var out bytes.Buffer
	code, err := run(&out, reportOpts{gate: true, maxRegress: "10%", args: []string{dir}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("cross-machine shift breached the gate:\n%s", out.String())
	}
	if n := strings.Count(out.String(), "## shed —"); n != 2 {
		t.Errorf("%d shed groups, want 2 (one per machine):\n%s", n, out.String())
	}
}

func TestBenchBaselinesTrend(t *testing.T) {
	dir := t.TempDir()
	env := &obs.Env{GoVersion: "go1.23.0", GOOS: "linux", GOARCH: "amd64", CPUs: 8, GitCommit: "ccc3333-dirty"}
	writeJSON(t, dir, "BENCH_a.json", &benchfmt.Report{Env: env, Benchmarks: []benchfmt.Benchmark{
		{Name: "CRRReduce", Procs: 8, Iterations: 10, NsPerOp: 1000},
	}})
	writeJSON(t, dir, "BENCH_b.json", &benchfmt.Report{Env: env, Benchmarks: []benchfmt.Benchmark{
		{Name: "CRRReduce", Procs: 8, Iterations: 10, NsPerOp: 1200},
	}})
	var out bytes.Buffer
	code, err := run(&out, reportOpts{gate: true, maxRegress: "10%", args: []string{dir}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Bench series are report-only ("info"): the 20% ns/op growth trends but
	// never gates.
	if code != 0 {
		t.Fatalf("bench-only regression breached the quality gate:\n%s", out.String())
	}
	got := out.String()
	for _, want := range []string{
		"## benchmarks — go1.23.0 linux/amd64, 8 CPUs",
		"| CRRReduce ns/op | — | info | 1000 | 1200 |",
		"dirty worktree",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	dir := t.TempDir()
	writeJSON(t, dir, "run1.json", manifest("2026-01-01T10:00:00Z", "aaa1111", []obs.QualityPoint{
		qp("crr.delta", 0.5, 24.5, "lower"),
	}))
	jsonOut := filepath.Join(dir, "out", "trend.json")
	if err := os.Mkdir(filepath.Dir(jsonOut), 0o755); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := run(&out, reportOpts{jsonPath: jsonOut, args: []string{filepath.Join(dir, "run1.json")}}, nil)
	if err != nil || code != 0 {
		t.Fatalf("run: code=%d err=%v", code, err)
	}
	data, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("-json output is not a report: %v", err)
	}
	if len(rep.Groups) != 1 || len(rep.Groups[0].Series) != 1 {
		t.Fatalf("report = %+v, want 1 group with 1 series", rep)
	}
	s := rep.Groups[0].Series[0]
	if s.Metric != "crr.delta" || s.Ratio != 0.5 || len(s.Values) != 1 || s.Values[0] == nil || *s.Values[0] != 24.5 {
		t.Errorf("series = %+v", s)
	}
	if rep.Groups[0].Runs[0].GitCommit != "aaa1111" {
		t.Errorf("run commit = %+v", rep.Groups[0].Runs[0])
	}
}

func TestSkipsUnrecognizedFiles(t *testing.T) {
	dir := t.TempDir()
	writeJSON(t, dir, "run1.json", manifest("2026-01-01T10:00:00Z", "", []obs.QualityPoint{
		qp("crr.delta", 0.5, 24.5, "lower"),
	}))
	if err := os.WriteFile(filepath.Join(dir, "stray.json"), []byte(`{"neither": true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := run(&out, reportOpts{args: []string{dir}}, nil)
	if err != nil || code != 0 {
		t.Fatalf("stray files broke the report: code=%d err=%v", code, err)
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := run(&bytes.Buffer{}, reportOpts{args: []string{filepath.Join(dir, "nope")}}, nil); err == nil {
		t.Error("missing path accepted")
	}
	if _, err := run(&bytes.Buffer{}, reportOpts{args: []string{dir}}, nil); err == nil {
		t.Error("empty directory produced a report")
	}
	writeJSON(t, dir, "run1.json", manifest("", "", nil))
	if _, err := run(&bytes.Buffer{}, reportOpts{maxRegress: "banana", args: []string{dir}}, nil); err == nil {
		t.Error("malformed -max-regress accepted")
	}
}
