// Command obsreport aggregates observability artifacts from many runs —
// run manifests (-metrics output) and BENCH_*.json benchmark baselines
// (cmd/benchjson output) — into one cross-run trend report: the registry
// view of how algorithm quality and performance move over time.
//
//	obsreport results/
//	obsreport -json trend.json results/ BENCH_shedding.json
//	obsreport -gate -max-regress 10% results/
//
// Arguments are files or directories; a directory contributes every *.json
// file directly inside it. Files that are neither a manifest nor a
// benchmark baseline are skipped with a note, so a results directory can
// hold other artifacts. Manifests are grouped by command plus machine
// identity (Go version, GOOS/GOARCH, CPU count — see internal/obs.Env) so
// numbers from different machines never land in one trend line, ordered by
// start time within each group, and rendered as one markdown table per
// group: one row per (quality metric, preservation ratio) series from each
// manifest's quality_timeline, one column per run. Benchmark baselines get
// the same treatment keyed by benchmark name (ns/op, report-only). Runs
// whose git_commit carries the "-dirty" suffix are flagged: the commit does
// not identify the measured code.
//
// With -gate, obsreport becomes a quality regression gate: for every
// directional series ("better": "lower" or "higher" — tasks.Suite scores,
// theorem-bound headroom, Δ trajectories) with at least two runs, the
// latest value is compared against the previous one, and any move in the
// bad direction by more than -max-regress makes obsreport exit 1. "info"
// series (edge counts, bounds) trend but never gate. Exit codes: 0 no
// breach, 1 threshold breached, 2 unusable input.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"edgeshed/internal/benchfmt"
	"edgeshed/internal/obs"
)

func main() {
	var opt reportOpts
	flag.BoolVar(&opt.gate, "gate", false, "fail (exit 1) when a directional quality series regresses beyond -max-regress")
	flag.StringVar(&opt.maxRegress, "max-regress", "10%", "gate threshold, e.g. 10% or 0.1 (used with -gate)")
	flag.StringVar(&opt.jsonPath, "json", "", "also write the report machine-readable to this file")
	cli := obs.BindFlags(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: obsreport [flags] file-or-dir [file-or-dir...]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	opt.args = flag.Args()
	sess, err := cli.Start("obsreport")
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(2)
	}
	var code int
	runErr := obs.Run(sess, func() error {
		var rerr error
		code, rerr = run(os.Stdout, opt, sess)
		return rerr
	})
	if cerr := sess.Close(); runErr == nil && cerr != nil {
		runErr = cerr
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", runErr)
		os.Exit(2)
	}
	os.Exit(code)
}

// reportOpts carries the command's flag values into run.
type reportOpts struct {
	gate       bool
	maxRegress string
	jsonPath   string
	args       []string
}

// report is the whole trend document: the -json output and the source of
// both the markdown rendering and the gate verdict.
type report struct {
	// Groups holds one manifest trend group per (command, machine) pair.
	Groups []*runGroup `json:"groups,omitempty"`
	// BenchGroups holds one benchmark trend group per machine.
	BenchGroups []*benchGroup `json:"bench_groups,omitempty"`
	// Breaches lists the gate violations found (empty without -gate).
	Breaches []string `json:"breaches,omitempty"`
}

// runGroup is the trend of one command on one machine.
type runGroup struct {
	// Command is the manifests' command name (e.g. "shed").
	Command string `json:"command"`
	// Env is the shared machine identity of every run in the group.
	Env *obs.Env `json:"env"`
	// Runs are the group's manifests in start-time order.
	Runs []runInfo `json:"runs"`
	// Series holds one quality trend line per (metric, ratio) pair.
	Series []*series `json:"series,omitempty"`
}

// runInfo identifies one manifest column of a trend table.
type runInfo struct {
	// Path is the manifest file.
	Path string `json:"path"`
	// StartUTC is the run's start timestamp, the column sort key.
	StartUTC string `json:"start_utc"`
	// GitCommit is the code identity the run was measured at; a "-dirty"
	// suffix flags an unidentifiable worktree.
	GitCommit string `json:"git_commit,omitempty"`
}

// series is one trend line: a quality metric at one preservation ratio
// across a group's runs.
type series struct {
	// Metric is the probe name (e.g. "crr.headroom.theorem1").
	Metric string `json:"metric"`
	// Ratio is the preservation ratio; 0 for ratio-less metrics.
	Ratio float64 `json:"ratio,omitempty"`
	// Better is the good direction ("lower", "higher", "info"); only
	// directional series gate.
	Better string `json:"better,omitempty"`
	// Values is the final recorded value per run, aligned with the group's
	// Runs; nil where the run did not record the metric.
	Values []*float64 `json:"values"`
}

// benchGroup is the ns/op trend of the benchmark baselines measured on one
// machine, report-only.
type benchGroup struct {
	// Env is the shared machine identity.
	Env *obs.Env `json:"env"`
	// Files are the baseline paths in input order.
	Files []runInfo `json:"files"`
	// Series holds one ns/op trend line per benchmark name.
	Series []*series `json:"series,omitempty"`
}

// run builds and renders the trend report and returns the process exit
// code (0 ok, 1 gate breach). Errors mean the inputs were unusable (exit 2).
func run(w io.Writer, opt reportOpts, sess *obs.Session) (int, error) {
	gate, err := parseMaxRegress(opt.maxRegress)
	if err != nil {
		return 0, err
	}
	files, err := collectFiles(opt.args)
	if err != nil {
		return 0, err
	}
	var manifests []*obs.Manifest
	var manifestPaths []string
	var benches []*benchfmt.Report
	var benchPaths []string
	for _, path := range files {
		switch kind := sniffKind(path); kind {
		case kindManifest:
			m, err := obs.ReadManifest(path)
			if err != nil {
				return 0, err
			}
			manifests = append(manifests, m)
			manifestPaths = append(manifestPaths, path)
		case kindBench:
			b, err := benchfmt.ReadFile(path)
			if err != nil {
				return 0, err
			}
			benches = append(benches, b)
			benchPaths = append(benchPaths, path)
		default:
			sess.Verbosef("skipping %s: neither a run manifest nor a benchmark baseline", path)
		}
	}
	if len(manifests) == 0 && len(benches) == 0 {
		return 0, fmt.Errorf("no run manifests or benchmark baselines among %d file(s)", len(files))
	}
	sess.Verbosef("aggregating %d manifest(s), %d baseline(s)", len(manifests), len(benchPaths))

	rep := &report{
		Groups:      groupManifests(manifests, manifestPaths),
		BenchGroups: groupBenches(benches, benchPaths),
	}
	renderMarkdown(w, rep)
	if opt.gate {
		rep.Breaches = gateSeries(rep.Groups, gate)
	}
	if opt.jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return 0, err
		}
		if err := os.WriteFile(opt.jsonPath, append(data, '\n'), 0o644); err != nil {
			return 0, err
		}
	}
	if len(rep.Breaches) > 0 {
		fmt.Fprintf(w, "\nBREACH: %d quality series regressed beyond %s:\n", len(rep.Breaches), opt.maxRegress)
		for _, b := range rep.Breaches {
			fmt.Fprintf(w, "  %s\n", b)
		}
		return 1, nil
	}
	if opt.gate {
		fmt.Fprintf(w, "\nok: no directional quality series regressed beyond %s\n", opt.maxRegress)
	}
	return 0, nil
}

// collectFiles expands the positional arguments into a sorted list of
// candidate JSON files: a directory contributes every *.json directly
// inside it, a file contributes itself.
func collectFiles(args []string) ([]string, error) {
	var files []string
	for _, a := range args {
		st, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			files = append(files, a)
			continue
		}
		ents, err := os.ReadDir(a)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
				files = append(files, filepath.Join(a, e.Name()))
			}
		}
	}
	sort.Strings(files)
	return files, nil
}

type fileKind int

const (
	kindUnknown fileKind = iota
	kindManifest
	kindBench
)

// sniffKind decides what a JSON file is by its top-level keys, without
// committing to either schema; unreadable or unrecognized files are
// kindUnknown (skipped, not fatal — directories hold other artifacts too).
func sniffKind(path string) fileKind {
	data, err := os.ReadFile(path)
	if err != nil {
		return kindUnknown
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return kindUnknown
	}
	if _, ok := probe["benchmarks"]; ok {
		return kindBench
	}
	if _, ok := probe["command"]; ok {
		return kindManifest
	}
	return kindUnknown
}

// manifestEnv lifts a manifest's identity fields into an Env, the shared
// grouping and dirtiness vocabulary.
func manifestEnv(m *obs.Manifest) *obs.Env {
	return &obs.Env{GoVersion: m.GoVersion, GOOS: m.GOOS, GOARCH: m.GOARCH,
		CPUs: m.CPUs, GitCommit: m.GitCommit}
}

// envKey is the machine-identity half of a grouping key. GitCommit is
// deliberately excluded: commits vary along a trend line, machines must not.
func envKey(e *obs.Env) string {
	return fmt.Sprintf("%s|%s|%s|%d", e.GoVersion, e.GOOS, e.GOARCH, e.CPUs)
}

// groupManifests buckets manifests by (command, machine), orders each
// bucket by start time, and builds the per-(metric, ratio) series from the
// final quality_timeline entry each run recorded for that pair.
func groupManifests(ms []*obs.Manifest, paths []string) []*runGroup {
	type entry struct {
		m    *obs.Manifest
		path string
	}
	buckets := map[string][]entry{}
	for i, m := range ms {
		k := m.Command + "|" + envKey(manifestEnv(m))
		buckets[k] = append(buckets[k], entry{m, paths[i]})
	}
	var groups []*runGroup
	for _, k := range sortedKeys(buckets) {
		runs := buckets[k]
		sort.SliceStable(runs, func(i, j int) bool {
			if runs[i].m.StartUTC != runs[j].m.StartUTC {
				return runs[i].m.StartUTC < runs[j].m.StartUTC
			}
			return runs[i].path < runs[j].path
		})
		env := manifestEnv(runs[0].m)
		env.GitCommit = "" // per-run, not group identity
		g := &runGroup{Command: runs[0].m.Command, Env: env}
		type seriesKey struct {
			metric string
			ratio  float64
		}
		byKey := map[seriesKey]*series{}
		for _, r := range runs {
			g.Runs = append(g.Runs, runInfo{Path: r.path, StartUTC: r.m.StartUTC, GitCommit: r.m.GitCommit})
		}
		for i, r := range runs {
			// The timeline is offset-ordered; the last point per (metric,
			// ratio) is the run's final word on that series.
			for _, q := range r.m.Quality {
				sk := seriesKey{q.Metric, q.Ratio}
				s, ok := byKey[sk]
				if !ok {
					s = &series{Metric: q.Metric, Ratio: q.Ratio, Better: q.Better,
						Values: make([]*float64, len(runs))}
					byKey[sk] = s
					g.Series = append(g.Series, s)
				}
				v := q.Value
				s.Values[i] = &v
			}
		}
		sort.SliceStable(g.Series, func(i, j int) bool {
			if g.Series[i].Metric != g.Series[j].Metric {
				return g.Series[i].Metric < g.Series[j].Metric
			}
			return g.Series[i].Ratio < g.Series[j].Ratio
		})
		groups = append(groups, g)
	}
	return groups
}

// groupBenches buckets benchmark baselines by machine and builds one
// report-only ns/op series per benchmark name.
func groupBenches(bs []*benchfmt.Report, paths []string) []*benchGroup {
	type entry struct {
		b    *benchfmt.Report
		path string
	}
	buckets := map[string][]entry{}
	for i, b := range bs {
		k := ""
		if b.Env != nil {
			k = envKey(b.Env)
		}
		buckets[k] = append(buckets[k], entry{b, paths[i]})
	}
	var groups []*benchGroup
	for _, k := range sortedKeys(buckets) {
		files := buckets[k]
		g := &benchGroup{Env: files[0].b.Env}
		if g.Env != nil {
			env := *g.Env
			env.GitCommit = ""
			g.Env = &env
		}
		byName := map[string]*series{}
		for _, f := range files {
			commit := ""
			if f.b.Env != nil {
				commit = f.b.Env.GitCommit
			}
			g.Files = append(g.Files, runInfo{Path: f.path, GitCommit: commit})
		}
		for i, f := range files {
			for name, b := range f.b.ByName() {
				s, ok := byName[name]
				if !ok {
					s = &series{Metric: name + " ns/op", Better: "info",
						Values: make([]*float64, len(files))}
					byName[name] = s
					g.Series = append(g.Series, s)
				}
				v := b.NsPerOp
				s.Values[i] = &v
			}
		}
		sort.SliceStable(g.Series, func(i, j int) bool { return g.Series[i].Metric < g.Series[j].Metric })
		groups = append(groups, g)
	}
	return groups
}

// renderMarkdown writes the human half of the report: one section per
// group, a run legend, dirty-worktree warnings, and the trend table.
func renderMarkdown(w io.Writer, rep *report) {
	fmt.Fprintln(w, "# edgeshed cross-run trend report")
	for _, g := range rep.Groups {
		fmt.Fprintf(w, "\n## %s — %s %s/%s, %d CPUs\n\n", g.Command,
			g.Env.GoVersion, g.Env.GOOS, g.Env.GOARCH, g.Env.CPUs)
		renderLegend(w, g.Runs)
		renderSeries(w, g.Series, len(g.Runs))
	}
	for _, g := range rep.BenchGroups {
		if g.Env != nil {
			fmt.Fprintf(w, "\n## benchmarks — %s %s/%s, %d CPUs\n\n", g.Env.GoVersion, g.Env.GOOS, g.Env.GOARCH, g.Env.CPUs)
		} else {
			fmt.Fprintf(w, "\n## benchmarks — environment not recorded\n\n")
		}
		renderLegend(w, g.Files)
		renderSeries(w, g.Series, len(g.Files))
	}
}

// renderLegend prints the column key: run index, file, start time, commit,
// plus a warning line for every dirty-worktree measurement.
func renderLegend(w io.Writer, runs []runInfo) {
	for i, r := range runs {
		line := fmt.Sprintf("- run %d: %s", i+1, filepath.Base(r.Path))
		if r.StartUTC != "" {
			line += " (" + r.StartUTC + ")"
		}
		if r.GitCommit != "" {
			line += " @" + r.GitCommit
		}
		fmt.Fprintln(w, line)
		if obs.DirtyCommit(r.GitCommit) {
			fmt.Fprintf(w, "  warning: %s was measured on a dirty worktree — its commit does not identify the code\n", filepath.Base(r.Path))
		}
	}
	fmt.Fprintln(w)
}

// renderSeries prints the trend table: one row per series, one value
// column per run, "—" where a run did not record the metric.
func renderSeries(w io.Writer, ss []*series, nruns int) {
	if len(ss) == 0 {
		fmt.Fprintln(w, "(no quality series recorded)")
		return
	}
	fmt.Fprint(w, "| metric | p | better |")
	for i := 0; i < nruns; i++ {
		fmt.Fprintf(w, " run %d |", i+1)
	}
	fmt.Fprint(w, "\n|---|---|---|")
	for i := 0; i < nruns; i++ {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for _, s := range ss {
		ratio := "—"
		if s.Ratio != 0 {
			ratio = strconv.FormatFloat(s.Ratio, 'g', -1, 64)
		}
		fmt.Fprintf(w, "| %s | %s | %s |", s.Metric, ratio, s.Better)
		for _, v := range s.Values {
			if v == nil {
				fmt.Fprint(w, " — |")
			} else {
				fmt.Fprintf(w, " %.6g |", *v)
			}
		}
		fmt.Fprintln(w)
	}
}

// gateSeries applies the regression gate to every directional quality
// series: the latest recorded value against the previous one, regression
// measured relative to the previous value's magnitude. "info" series and
// series with fewer than two recorded runs never gate.
func gateSeries(groups []*runGroup, gate float64) []string {
	if gate < 0 {
		return nil
	}
	var breaches []string
	for _, g := range groups {
		for _, s := range g.Series {
			var present []float64
			for _, v := range s.Values {
				if v != nil {
					present = append(present, *v)
				}
			}
			if len(present) < 2 {
				continue
			}
			prev, latest := present[len(present)-2], present[len(present)-1]
			var regress float64
			switch s.Better {
			case "lower":
				regress = (latest - prev) / math.Max(math.Abs(prev), 1e-12)
			case "higher":
				regress = (prev - latest) / math.Max(math.Abs(prev), 1e-12)
			default:
				continue
			}
			if regress > gate {
				label := g.Command + " " + s.Metric
				if s.Ratio != 0 {
					label += fmt.Sprintf("@p=%g", s.Ratio)
				}
				breaches = append(breaches, fmt.Sprintf("%s: %g -> %g (%+.1f%% worse, limit %.1f%%, better=%s)",
					label, prev, latest, regress*100, gate*100, s.Better))
			}
		}
	}
	return breaches
}

// parseMaxRegress turns "10%" or "0.1" into the fraction 0.1.
func parseMaxRegress(s string) (float64, error) {
	if s == "" {
		return -1, nil
	}
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("bad -max-regress %q: %w", s, err)
	}
	if pct {
		v /= 100
	}
	if v < 0 {
		return 0, fmt.Errorf("bad -max-regress %q: negative threshold", s)
	}
	return v, nil
}

// sortedKeys returns m's keys in sorted order, for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
