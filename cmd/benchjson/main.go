// Command benchjson converts `go test -bench` text output into a JSON
// baseline file, so benchmark numbers can be committed and diffed across
// PRs:
//
//	go test -run xxx -bench Betweenness -benchtime 1x -benchmem ./internal/centrality/ | benchjson -out BENCH_betweenness.json
//
// Beyond the raw per-benchmark rows it derives speedup ratios for every
// old/new benchmark pair following a known naming convention:
// XxxMapIndexed / XxxCSRIndexed (the Brandes CSR migration) and
// XxxSerial / XxxParallel (the parallel analysis kernels).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"edgeshed/internal/obs"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix and the
	// -GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix, 1 if absent.
	Procs int `json:"procs"`
	// Iterations is the b.N the reported averages were taken over.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported ns/op.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem, else 0.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Report is the emitted JSON document.
type Report struct {
	// Benchmarks holds every parsed result line in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
	// Speedups maps a benchmark stem to old-ns / new-ns for every stem that
	// has both variants of a recognized pair (MapIndexed/CSRIndexed,
	// Serial/Parallel).
	Speedups map[string]float64 `json:"speedups,omitempty"`
}

func main() {
	out := flag.String("out", "", "output JSON path (default stdout)")
	cli := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	sess, err := cli.Start("benchjson")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	runErr := run(os.Stdin, *out, sess)
	if cerr := sess.Close(); runErr == nil {
		runErr = cerr
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", runErr)
		os.Exit(1)
	}
}

func run(in io.Reader, out string, sess *obs.Session) error {
	report, err := parse(in)
	if err != nil {
		return err
	}
	if len(report.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	sess.Verbosef("parsed %d benchmark lines", len(report.Benchmarks))
	if sess.Root().Enabled() {
		sess.Root().Counter("benchjson.lines").Add(int64(len(report.Benchmarks)))
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// parse scans bench output, ignoring non-result lines (goos/pkg/PASS/ok).
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Speedups: map[string]float64{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok := parseLine(line)
		if ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	deriveSpeedups(rep)
	return rep, nil
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8  10  123 ns/op  45 B/op  6 allocs/op
//
// reporting ok=false for lines that only look like results.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 1
	if i := strings.LastIndex(name, "-"); i >= 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	ns, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	return b, true
}

// speedupPairs are the recognized old/new benchmark suffix conventions:
// the old variant's ns/op divided by the new variant's becomes the stem's
// speedup.
var speedupPairs = [][2]string{
	{"MapIndexed", "CSRIndexed"},
	{"Serial", "Parallel"},
}

// deriveSpeedups fills Speedups from every benchmark pair matching a
// recognized suffix convention.
func deriveSpeedups(rep *Report) {
	byName := make(map[string]Benchmark, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		byName[b.Name] = b
	}
	for name, oldB := range byName {
		for _, pair := range speedupPairs {
			stem, ok := strings.CutSuffix(name, pair[0])
			if !ok {
				continue
			}
			newB, ok := byName[stem+pair[1]]
			if !ok || newB.NsPerOp == 0 {
				continue
			}
			rep.Speedups[stem] = oldB.NsPerOp / newB.NsPerOp
		}
	}
	if len(rep.Speedups) == 0 {
		rep.Speedups = nil
	}
}
