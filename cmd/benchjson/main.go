// Command benchjson converts `go test -bench` text output into a JSON
// baseline file, so benchmark numbers can be committed and diffed across
// PRs (the parsing model lives in internal/benchfmt; cmd/obsdiff is the
// consumer that gates regressions):
//
//	go test -run xxx -bench Betweenness -benchtime 1x -benchmem ./internal/centrality/ | benchjson -out BENCH_betweenness.json
//
// Beyond the raw per-benchmark rows it derives speedup ratios for every
// old/new benchmark pair following a known naming convention
// (XxxMapIndexed / XxxCSRIndexed, XxxSerial / XxxParallel), and stamps the
// measuring machine's identity (go version, GOOS/GOARCH, CPU count, git
// commit) so obsdiff can refuse cross-machine comparisons instead of
// reporting phantom regressions.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"edgeshed/internal/benchfmt"
	"edgeshed/internal/obs"
)

func main() {
	out := flag.String("out", "", "output JSON path (default stdout)")
	cli := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	sess, err := cli.Start("benchjson")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	runErr := obs.Run(sess, func() error { return run(os.Stdin, *out, sess) })
	if cerr := sess.Close(); runErr == nil {
		runErr = cerr
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", runErr)
		os.Exit(1)
	}
}

func run(in io.Reader, out string, sess *obs.Session) error {
	report, err := benchfmt.Parse(in)
	if err != nil {
		return err
	}
	if len(report.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	report.Env = obs.CaptureEnv()
	sess.Verbosef("parsed %d benchmark lines", len(report.Benchmarks))
	if sess.Root().Enabled() {
		sess.Root().Counter("benchjson.lines").Add(int64(len(report.Benchmarks)))
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}
