package main

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"edgeshed/internal/benchfmt"
)

const sample = `goos: linux
BenchmarkCRRReduceMapIndexed-4   	      10	  60000000 ns/op	  500000 B/op	    1200 allocs/op
BenchmarkCRRReduceCSRIndexed-4   	      10	  30000000 ns/op	  100000 B/op	      40 allocs/op
PASS
`

// TestRunEmbedsEnvMetadata pins the satellite contract: every emitted
// BENCH_*.json carries the measuring machine's identity, so obsdiff can
// refuse cross-machine comparisons.
func TestRunEmbedsEnvMetadata(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_x.json")
	if err := run(strings.NewReader(sample), out, nil); err != nil {
		t.Fatal(err)
	}
	rep, err := benchfmt.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Env == nil {
		t.Fatal("emitted report has no env block")
	}
	if rep.Env.GoVersion != runtime.Version() || rep.Env.GOOS != runtime.GOOS ||
		rep.Env.GOARCH != runtime.GOARCH || rep.Env.CPUs != runtime.NumCPU() {
		t.Errorf("env = %+v does not describe this machine", rep.Env)
	}
	if len(rep.Benchmarks) != 2 {
		t.Errorf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	if s := rep.Speedups["CRRReduce"]; s < 1.99 || s > 2.01 {
		t.Errorf("speedup = %v, want 2.0", s)
	}
}

// TestRunRejectsEmptyInput pins the no-benchmarks error.
func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(strings.NewReader("nothing here\n"), "", nil); err == nil {
		t.Fatal("benchmark-less input accepted")
	}
}

// TestRunWritesNewlineTerminatedJSON pins the file shape committed
// baselines rely on.
func TestRunWritesNewlineTerminatedJSON(t *testing.T) {
	out := filepath.Join(t.TempDir(), "b.json")
	if err := run(strings.NewReader(sample), out, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Error("output is not newline-terminated")
	}
}
