// Command obsdiff compares two observability artifacts of the same kind —
// two run manifests (-metrics output) or two BENCH_*.json baselines
// (cmd/benchjson output) — and reports what moved: counter and gauge
// deltas and per-span wall-time ratios for manifests, ns/op and allocs/op
// ratios for benchmark baselines.
//
//	obsdiff BENCH_shedding.json BENCH_new.json
//	obsdiff -max-regress 25% BENCH_shedding.json BENCH_new.json
//	obsdiff run_before.json run_after.json
//
// With -max-regress set (a percentage like "25%" or a fraction like
// "0.25"), obsdiff becomes a regression gate: any gated metric of the
// second (current) file that is worse than the first (baseline) by more
// than the threshold makes it exit 1, so CI can fail the build. Without
// it, obsdiff only reports. Exit codes: 0 no breach, 1 threshold breached,
// 2 unusable input (missing file, malformed JSON, mixed kinds, or
// baseline and current measured on different machines — see below).
//
// Benchmark baselines carry the measuring machine's identity (see
// internal/obs.Env); obsdiff refuses to compare baselines from different
// machines, because a hardware delta masquerades as a perf delta.
// -allow-env-mismatch downgrades that refusal to a warning for the rare
// deliberate cross-machine look.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"edgeshed/internal/benchfmt"
	"edgeshed/internal/obs"
)

func main() {
	maxRegress := flag.String("max-regress", "", "gate threshold, e.g. 25% or 0.25 (empty = report only)")
	allowEnv := flag.Bool("allow-env-mismatch", false, "compare baselines from different machines anyway (warning instead of refusal)")
	cli := obs.BindFlags(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: obsdiff [flags] baseline.json current.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	sess, err := cli.Start("obsdiff")
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsdiff:", err)
		os.Exit(2)
	}
	var code int
	runErr := obs.Run(sess, func() error {
		var rerr error
		code, rerr = run(os.Stdout, flag.Arg(0), flag.Arg(1), *maxRegress, *allowEnv, sess)
		return rerr
	})
	if cerr := sess.Close(); runErr == nil && cerr != nil {
		runErr = cerr
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "obsdiff:", runErr)
		os.Exit(2)
	}
	os.Exit(code)
}

// gateFloorNs is the baseline span duration below which wall-time ratios
// are reported but never gated: a 0.3ms span doubling is scheduler noise,
// not a regression.
const gateFloorNs = 1_000_000

// histogramGateFloors is the unit registry for histogram gating: a family
// whose name ends in a registered suffix gates when its baseline quantile
// clears the suffix's noise floor, expressed in the family's own unit.
// Durations (_ns) reuse the 1ms span floor; micro-scaled quality magnitudes
// (_micros, e.g. crr.delta_abs_micros, bm2.gain_micros) floor at 1e3 micros
// = one thousandth of a unit, below which a ratio is rounding noise, not a
// quality regression. Unregistered suffixes (occupancies, widths) report
// without ever gating — their shifts are semantic, not regressions.
var histogramGateFloors = []struct {
	suffix string
	floor  float64
}{
	{"_ns", gateFloorNs},
	{"_micros", 1e3},
}

// histogramGateFloor returns the gating noise floor for a histogram family
// and whether the family's unit is registered for gating at all.
func histogramGateFloor(name string) (floor float64, gated bool) {
	for _, f := range histogramGateFloors {
		if strings.HasSuffix(name, f.suffix) {
			return f.floor, true
		}
	}
	return 0, false
}

// run diffs baseline against current and returns the process exit code
// (0 ok, 1 breach). Errors mean the inputs were unusable (exit 2).
func run(w io.Writer, basePath, curPath, maxRegressStr string, allowEnv bool, sess *obs.Session) (int, error) {
	gate, err := parseMaxRegress(maxRegressStr)
	if err != nil {
		return 0, err
	}
	baseKind, err := detectKind(basePath)
	if err != nil {
		return 0, err
	}
	curKind, err := detectKind(curPath)
	if err != nil {
		return 0, err
	}
	if baseKind != curKind {
		return 0, fmt.Errorf("cannot diff a %s against a %s (%s vs %s)", baseKind, curKind, basePath, curPath)
	}
	sess.Verbosef("diffing %s files, gate=%v", baseKind, gate)
	var breaches []string
	switch baseKind {
	case kindBench:
		breaches, err = diffBench(w, basePath, curPath, gate, allowEnv)
	case kindManifest:
		breaches, err = diffManifest(w, basePath, curPath, gate, allowEnv)
	}
	if err != nil {
		return 0, err
	}
	if len(breaches) > 0 {
		fmt.Fprintf(w, "\nBREACH: %d metric(s) regressed beyond %s:\n", len(breaches), maxRegressStr)
		for _, b := range breaches {
			fmt.Fprintf(w, "  %s\n", b)
		}
		return 1, nil
	}
	if gate >= 0 {
		fmt.Fprintf(w, "\nok: no gated metric regressed beyond %s\n", maxRegressStr)
	}
	return 0, nil
}

// parseMaxRegress turns "25%" or "0.25" into the fraction 0.25; an empty
// string disables gating (returned as -1).
func parseMaxRegress(s string) (float64, error) {
	if s == "" {
		return -1, nil
	}
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("bad -max-regress %q: %w", s, err)
	}
	if pct {
		v /= 100
	}
	if v < 0 {
		return 0, fmt.Errorf("bad -max-regress %q: negative threshold", s)
	}
	return v, nil
}

type fileKind string

const (
	kindBench    fileKind = "benchmark baseline"
	kindManifest fileKind = "run manifest"
)

// detectKind sniffs whether path is a BENCH_*.json baseline (has a
// "benchmarks" array) or a run manifest (has a "command"), without
// committing to either schema yet.
func detectKind(path string) (fileKind, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", fmt.Errorf("parsing %s: %w", path, err)
	}
	if _, ok := probe["benchmarks"]; ok {
		return kindBench, nil
	}
	if _, ok := probe["command"]; ok {
		return kindManifest, nil
	}
	return "", fmt.Errorf("%s is neither a benchmark baseline nor a run manifest", path)
}

// checkEnv enforces the same-machine rule: an env error is fatal unless
// -allow-env-mismatch downgrades it, and warnings are always printed.
// Either side measured on a dirty worktree is flagged too — its commit
// stamp does not identify the code the numbers came from.
func checkEnv(w io.Writer, base, cur *obs.Env, allowEnv bool) error {
	for _, side := range []struct {
		name string
		env  *obs.Env
	}{{"baseline", base}, {"current", cur}} {
		if side.env.Dirty() {
			fmt.Fprintf(w, "warning: %s was measured on a dirty worktree (%s) — its commit does not identify the code\n",
				side.name, side.env.GitCommit)
		}
	}
	warning, err := base.Comparable(cur)
	if err != nil {
		if !allowEnv {
			return fmt.Errorf("%w (rerun with -allow-env-mismatch to compare anyway)", err)
		}
		fmt.Fprintf(w, "warning: %v (continuing: -allow-env-mismatch)\n", err)
	}
	if warning != "" {
		fmt.Fprintf(w, "warning: %s\n", warning)
	}
	return nil
}

// diffBench compares two benchmark baselines: per-benchmark ns/op and
// allocs/op ratios, both gated, plus notes for benchmarks present on only
// one side.
func diffBench(w io.Writer, basePath, curPath string, gate float64, allowEnv bool) ([]string, error) {
	base, err := benchfmt.ReadFile(basePath)
	if err != nil {
		return nil, err
	}
	cur, err := benchfmt.ReadFile(curPath)
	if err != nil {
		return nil, err
	}
	if err := checkEnv(w, base.Env, cur.Env, allowEnv); err != nil {
		return nil, err
	}
	baseBy, curBy := base.ByName(), cur.ByName()
	var breaches []string
	for _, name := range sortedKeys(baseBy) {
		b := baseBy[name]
		c, inCur := curBy[name]
		if !inCur {
			fmt.Fprintf(w, "%-40s only in baseline\n", name)
			continue
		}
		line, breach := ratioLine(name+" ns/op", b.NsPerOp, c.NsPerOp, gate)
		fmt.Fprintln(w, line)
		if breach != "" {
			breaches = append(breaches, breach)
		}
		if b.AllocsPerOp > 0 || c.AllocsPerOp > 0 {
			line, breach = ratioLine(name+" allocs/op", float64(b.AllocsPerOp), float64(c.AllocsPerOp), gate)
			fmt.Fprintln(w, line)
			if breach != "" {
				breaches = append(breaches, breach)
			}
		}
	}
	for _, name := range sortedKeys(curBy) {
		if _, ok := baseBy[name]; !ok {
			fmt.Fprintf(w, "%-40s only in current\n", name)
		}
	}
	return breaches, nil
}

// diffManifest compares two run manifests: counter and gauge deltas
// (report-only — counts are semantic, a delta has no regression
// percentage) and per-span wall-time ratios (gated, above the noise
// floor).
func diffManifest(w io.Writer, basePath, curPath string, gate float64, allowEnv bool) ([]string, error) {
	base, err := obs.ReadManifest(basePath)
	if err != nil {
		return nil, err
	}
	cur, err := obs.ReadManifest(curPath)
	if err != nil {
		return nil, err
	}
	if err := checkEnv(w, manifestEnv(base), manifestEnv(cur), allowEnv); err != nil {
		return nil, err
	}
	if base.Command != cur.Command {
		fmt.Fprintf(w, "warning: comparing different commands: %s vs %s\n", base.Command, cur.Command)
	}
	diffCountMaps(w, "counter", base.Counters, cur.Counters)
	diffCountMaps(w, "gauge", base.Gauges, cur.Gauges)
	var breaches []string
	breaches = append(breaches, diffHistograms(w, base.Histograms, cur.Histograms, gate)...)

	baseSpans := map[string]int64{}
	curSpans := map[string]int64{}
	flattenSpans(base.Spans, "", baseSpans)
	flattenSpans(cur.Spans, "", curSpans)
	for _, path := range sortedKeys(baseSpans) {
		bNs := baseSpans[path]
		cNs, ok := curSpans[path]
		if !ok {
			fmt.Fprintf(w, "span %-40s only in baseline\n", path)
			continue
		}
		spanGate := gate
		if bNs < gateFloorNs {
			spanGate = -1 // below the noise floor: report, never gate
		}
		line, breach := ratioLine("span "+path+" wall", float64(bNs), float64(cNs), spanGate)
		fmt.Fprintln(w, line)
		if breach != "" {
			breaches = append(breaches, breach)
		}
	}
	for _, path := range sortedKeys(curSpans) {
		if _, ok := baseSpans[path]; !ok {
			fmt.Fprintf(w, "span %-40s only in current\n", path)
		}
	}
	line, breach := ratioLine("total wall", float64(base.WallNs), float64(cur.WallNs), gate)
	fmt.Fprintln(w, line)
	if breach != "" {
		breaches = append(breaches, breach)
	}
	return breaches, nil
}

// manifestEnv lifts a manifest's identity fields into an Env so manifests
// and baselines share one comparability and dirtiness rule.
func manifestEnv(m *obs.Manifest) *obs.Env {
	if m.GoVersion == "" && m.GOOS == "" {
		return nil
	}
	return &obs.Env{GoVersion: m.GoVersion, GOOS: m.GOOS, GOARCH: m.GOARCH,
		CPUs: m.CPUs, GitCommit: m.GitCommit}
}

// diffCountMaps prints old → new (delta) for the union of two counter or
// gauge maps, flagging keys present on only one side.
func diffCountMaps(w io.Writer, kind string, base, cur map[string]int64) {
	keys := map[string]bool{}
	for k := range base {
		keys[k] = true
	}
	for k := range cur {
		keys[k] = true
	}
	for _, k := range sortedKeys(keys) {
		b, inBase := base[k]
		c, inCur := cur[k]
		switch {
		case !inBase:
			fmt.Fprintf(w, "%s %-40s only in current (%d)\n", kind, k, c)
		case !inCur:
			fmt.Fprintf(w, "%s %-40s only in baseline (%d)\n", kind, k, b)
		default:
			fmt.Fprintf(w, "%s %-40s %d -> %d (%+d)\n", kind, k, b, c, c-b)
		}
	}
}

// diffHistograms prints p50/p99 shifts for the union of two manifests'
// histogram maps and returns gate breaches. Only families with a
// registered unit suffix (see histogramGateFloors) whose baseline
// quantile clears that unit's noise floor can breach: unregistered
// families (occupancies, widths) shift legitimately with inputs, and
// near-floor quantiles are noise — both report without gating.
func diffHistograms(w io.Writer, base, cur map[string]*obs.HistogramSnapshot, gate float64) []string {
	keys := map[string]bool{}
	for k := range base {
		keys[k] = true
	}
	for k := range cur {
		keys[k] = true
	}
	var breaches []string
	for _, k := range sortedKeys(keys) {
		b, inBase := base[k]
		c, inCur := cur[k]
		switch {
		case !inBase:
			fmt.Fprintf(w, "histogram %-36s only in current (n=%d)\n", k, c.Count)
			continue
		case !inCur:
			fmt.Fprintf(w, "histogram %-36s only in baseline (n=%d)\n", k, b.Count)
			continue
		}
		for _, q := range []struct {
			name string
			q    float64
		}{{"p50", 0.50}, {"p99", 0.99}} {
			bq, cq := b.Quantile(q.q), c.Quantile(q.q)
			floor, gated := histogramGateFloor(k)
			qGate := gate
			if !gated || bq < floor {
				qGate = -1 // unregistered unit, or below its noise floor
			}
			line, breach := ratioLine("histogram "+k+" "+q.name, bq, cq, qGate)
			fmt.Fprintln(w, line)
			if breach != "" {
				breaches = append(breaches, breach)
			}
		}
	}
	return breaches
}

// flattenSpans accumulates every span's DurNs into out keyed by its
// slash-joined path from the root; repeated sibling names (e.g. one span
// per experiment cell) merge into one total.
func flattenSpans(n *obs.SpanNode, prefix string, out map[string]int64) {
	if n == nil {
		return
	}
	path := n.Name
	if prefix != "" {
		path = prefix + "/" + n.Name
	}
	out[path] += n.DurNs
	for _, c := range n.Children {
		flattenSpans(c, path, out)
	}
}

// ratioLine formats one gated metric comparison and, when the current
// value exceeds the baseline by more than gate, also returns a breach
// description. A zero baseline cannot yield a ratio: a zero→nonzero move
// breaches any configured gate (infinitely worse), zero→zero is a no-op.
func ratioLine(label string, base, cur, gate float64) (line, breach string) {
	if base == 0 {
		line = fmt.Sprintf("%-48s 0 -> %g", label, cur)
		if cur > 0 && gate >= 0 {
			breach = fmt.Sprintf("%s: 0 -> %g (no baseline to regress from)", label, cur)
		}
		return line, breach
	}
	ratio := cur / base
	pct := (ratio - 1) * 100
	line = fmt.Sprintf("%-48s %g -> %g (%+.1f%%)", label, base, cur, pct)
	if gate >= 0 && ratio > 1+gate {
		breach = fmt.Sprintf("%s: %+.1f%% (limit %+.1f%%)", label, pct, gate*100)
	}
	return line, breach
}

// sortedKeys returns m's keys in sorted order, for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
