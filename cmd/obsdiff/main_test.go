package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edgeshed/internal/benchfmt"
	"edgeshed/internal/obs"
)

func writeJSON(t *testing.T, dir, name string, v any) string {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func benchReport(nsPerOp float64, allocs int64) *benchfmt.Report {
	return &benchfmt.Report{
		Env: &obs.Env{GoVersion: "go1.99", GOOS: "linux", GOARCH: "amd64", CPUs: 8},
		Benchmarks: []benchfmt.Benchmark{
			{Name: "CRRSweep", Procs: 8, Iterations: 10, NsPerOp: nsPerOp, AllocsPerOp: allocs},
		},
	}
}

// TestSyntheticRegressionGate is the issue's acceptance check end to end:
// a ≥25% ns/op regression under -max-regress 25% exits 1, a smaller one
// and an identical pair exit 0.
func TestSyntheticRegressionGate(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", benchReport(100_000_000, 40))
	for _, tc := range []struct {
		name string
		cur  *benchfmt.Report
		want int
	}{
		{"regressed-30pct", benchReport(130_000_000, 40), 1},
		{"regressed-10pct", benchReport(110_000_000, 40), 0},
		{"identical", benchReport(100_000_000, 40), 0},
		{"improved", benchReport(70_000_000, 40), 0},
		{"allocs-regressed", benchReport(100_000_000, 60), 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cur := writeJSON(t, t.TempDir(), "cur.json", tc.cur)
			var out bytes.Buffer
			code, err := run(&out, base, cur, "25%", false, nil)
			if err != nil {
				t.Fatalf("unexpected error: %v\n%s", err, out.String())
			}
			if code != tc.want {
				t.Errorf("exit code = %d, want %d\n%s", code, tc.want, out.String())
			}
		})
	}
}

// TestReportOnlyWithoutGate pins that an empty -max-regress never breaches,
// even on a huge regression.
func TestReportOnlyWithoutGate(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", benchReport(100, 0))
	cur := writeJSON(t, dir, "cur.json", benchReport(1000, 0))
	var out bytes.Buffer
	code, err := run(&out, base, cur, "", false, nil)
	if err != nil || code != 0 {
		t.Fatalf("report-only run = (%d, %v), want (0, nil)", code, err)
	}
	if !strings.Contains(out.String(), "+900.0%") {
		t.Errorf("report does not show the ratio:\n%s", out.String())
	}
}

// TestEnvRefusal pins the cross-machine rule: differing platforms are an
// error unless -allow-env-mismatch, and an unrecorded env is a warning.
func TestEnvRefusal(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", benchReport(100, 0))
	other := benchReport(100, 0)
	other.Env.GOARCH = "arm64"
	cur := writeJSON(t, dir, "cur.json", other)

	var out bytes.Buffer
	if _, err := run(&out, base, cur, "25%", false, nil); err == nil {
		t.Error("cross-machine comparison accepted without -allow-env-mismatch")
	}
	out.Reset()
	code, err := run(&out, base, cur, "25%", true, nil)
	if err != nil || code != 0 {
		t.Fatalf("-allow-env-mismatch run = (%d, %v), want (0, nil)", code, err)
	}
	if !strings.Contains(out.String(), "warning:") {
		t.Errorf("downgraded mismatch not surfaced as warning:\n%s", out.String())
	}

	noEnv := benchReport(100, 0)
	noEnv.Env = nil
	curNoEnv := writeJSON(t, dir, "noenv.json", noEnv)
	out.Reset()
	code, err = run(&out, base, curNoEnv, "", false, nil)
	if err != nil || code != 0 {
		t.Fatalf("unrecorded-env run = (%d, %v), want (0, nil)", code, err)
	}
	if !strings.Contains(out.String(), "machine match unverified") {
		t.Errorf("unrecorded env not warned about:\n%s", out.String())
	}
}

func manifest(sweepNs int64, attempts int64) *obs.Manifest {
	return &obs.Manifest{
		Command: "shed", GoVersion: "go1.99", GOOS: "linux", GOARCH: "amd64", CPUs: 8,
		WallNs:   sweepNs + 5_000_000,
		Counters: map[string]int64{"crr.rewire.attempts": attempts},
		Spans: &obs.SpanNode{
			Name: "shed", DurNs: sweepNs + 5_000_000, Ended: true,
			Children: []*obs.SpanNode{
				{Name: "crr.sweep", DurNs: sweepNs, Ended: true},
				{Name: "load", DurNs: 200_000, Ended: true}, // below the gate floor
			},
		},
	}
}

// TestManifestDiff pins the manifest side: counter deltas are reported,
// span wall ratios are gated, and sub-floor spans never breach.
func TestManifestDiff(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", manifest(80_000_000, 1000))
	var out bytes.Buffer
	code, err := run(&out, base, writeJSON(t, dir, "same.json", manifest(80_000_000, 1000)), "25%", false, nil)
	if err != nil || code != 0 {
		t.Fatalf("identical manifests = (%d, %v), want (0, nil)\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "crr.rewire.attempts") {
		t.Errorf("counter delta missing from report:\n%s", out.String())
	}

	out.Reset()
	code, err = run(&out, base, writeJSON(t, dir, "slow.json", manifest(120_000_000, 1000)), "25%", false, nil)
	if err != nil || code != 1 {
		t.Fatalf("regressed sweep span = (%d, %v), want (1, nil)\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "shed/crr.sweep") {
		t.Errorf("breach does not name the regressed span path:\n%s", out.String())
	}

	// A 10x blowup of a sub-floor span is noise, not a breach.
	noisy := manifest(80_000_000, 1000)
	noisy.Spans.Children[1].DurNs = 2_000_000
	out.Reset()
	code, err = run(&out, base, writeJSON(t, dir, "noisy.json", noisy), "25%", false, nil)
	if err != nil || code != 0 {
		t.Fatalf("sub-floor span blowup = (%d, %v), want (0, nil)\n%s", code, err, out.String())
	}
}

// TestMixedKindsRefused pins that a manifest cannot be diffed against a
// benchmark baseline.
func TestMixedKindsRefused(t *testing.T) {
	dir := t.TempDir()
	b := writeJSON(t, dir, "bench.json", benchReport(100, 0))
	m := writeJSON(t, dir, "manifest.json", manifest(1_000_000, 1))
	var out bytes.Buffer
	if _, err := run(&out, b, m, "", false, nil); err == nil {
		t.Error("mixed kinds accepted")
	}
}

func TestParseMaxRegress(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
		bad  bool
	}{
		{"", -1, false},
		{"25%", 0.25, false},
		{"0.25", 0.25, false},
		{"100%", 1, false},
		{"-5%", 0, true},
		{"nope", 0, true},
	} {
		got, err := parseMaxRegress(tc.in)
		if tc.bad != (err != nil) {
			t.Errorf("parseMaxRegress(%q) err = %v, want bad=%v", tc.in, err, tc.bad)
		}
		if err == nil && got != tc.want {
			t.Errorf("parseMaxRegress(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestDetectKindErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := detectKind(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("absent file accepted")
	}
	other := filepath.Join(dir, "other.json")
	os.WriteFile(other, []byte(`{"hello": 1}`), 0o644)
	if _, err := detectKind(other); err == nil {
		t.Error("unrecognized document accepted")
	}
}

// histSnap builds a snapshot whose observations all sit in one power-of-two
// bucket, so quantiles land predictably near that bucket's range.
func histSnap(value int64, n int64) *obs.HistogramSnapshot {
	b := 0
	for v := value; v > 0; v >>= 1 {
		b++
	}
	buckets := make([]int64, b+1)
	buckets[b] = n
	return &obs.HistogramSnapshot{Count: n, Sum: value * n, Buckets: buckets}
}

// TestManifestDiffHistograms pins the histogram side of a manifest diff:
// p50/p99 are reported for every family, only *_ns families above the noise
// floor can gate, and one-sided families are surfaced without gating.
func TestManifestDiffHistograms(t *testing.T) {
	dir := t.TempDir()

	withHists := func(sweepValueNs int64) *obs.Manifest {
		m := manifest(80_000_000, 1000)
		m.Histograms = map[string]*obs.HistogramSnapshot{
			"crr.sweep.ratio_ns":    histSnap(sweepValueNs, 3),
			"msbfs.batch_occupancy": histSnap(64, 100),
		}
		return m
	}
	base := writeJSON(t, dir, "hbase.json", withHists(40_000_000))

	// Identical histograms: reported, no breach.
	var out bytes.Buffer
	code, err := run(&out, base, writeJSON(t, dir, "hsame.json", withHists(40_000_000)), "25%", false, nil)
	if err != nil || code != 0 {
		t.Fatalf("identical histograms = (%d, %v), want (0, nil)\n%s", code, err, out.String())
	}
	for _, want := range []string{
		"histogram crr.sweep.ratio_ns p50",
		"histogram crr.sweep.ratio_ns p99",
		"histogram msbfs.batch_occupancy p50",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}

	// A 4x p50/p99 blowup of a *_ns family above the floor breaches the gate.
	out.Reset()
	code, err = run(&out, base, writeJSON(t, dir, "hslow.json", withHists(160_000_000)), "25%", false, nil)
	if err != nil || code != 1 {
		t.Fatalf("regressed duration histogram = (%d, %v), want (1, nil)\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "crr.sweep.ratio_ns") {
		t.Errorf("breach does not name the regressed histogram:\n%s", out.String())
	}

	// Non-duration families never gate, however much they move.
	shifted := withHists(40_000_000)
	shifted.Histograms["msbfs.batch_occupancy"] = histSnap(1, 100)
	out.Reset()
	code, err = run(&out, base, writeJSON(t, dir, "hshift.json", shifted), "25%", false, nil)
	if err != nil || code != 0 {
		t.Fatalf("shifted occupancy histogram = (%d, %v), want (0, nil)\n%s", code, err, out.String())
	}

	// A family present on one side only is surfaced, not gated.
	extra := withHists(40_000_000)
	extra.Histograms["crr.delta_abs_micros"] = histSnap(500, 42)
	out.Reset()
	code, err = run(&out, base, writeJSON(t, dir, "hextra.json", extra), "25%", false, nil)
	if err != nil || code != 0 {
		t.Fatalf("one-sided histogram = (%d, %v), want (0, nil)\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "only in current") {
		t.Errorf("one-sided family not surfaced:\n%s", out.String())
	}
}

// TestHistogramGateFloorRegistry pins the unit registry: each registered
// suffix maps to its own noise floor, everything else is ungated.
func TestHistogramGateFloorRegistry(t *testing.T) {
	for _, tc := range []struct {
		name  string
		floor float64
		gated bool
	}{
		{"crr.sweep.ratio_ns", 1e6, true},
		{"bfs.level_ns", 1e6, true},
		{"crr.delta_abs_micros", 1e3, true},
		{"bm2.gain_micros", 1e3, true},
		{"msbfs.batch_occupancy", 0, false},
		{"flatpq.heap_size", 0, false},
	} {
		floor, gated := histogramGateFloor(tc.name)
		if floor != tc.floor || gated != tc.gated {
			t.Errorf("histogramGateFloor(%q) = (%v, %v), want (%v, %v)",
				tc.name, floor, gated, tc.floor, tc.gated)
		}
	}
}

// TestMicrosHistogramGating pins the quality-histogram half of the unit
// registry end to end: a _micros family above its 1e3 floor gates like a
// duration, while one whose baseline quantile sits under the floor reports
// without breaching, however much it moves.
func TestMicrosHistogramGating(t *testing.T) {
	dir := t.TempDir()
	withMicros := func(gain, tiny int64) *obs.Manifest {
		m := manifest(80_000_000, 1000)
		m.Histograms = map[string]*obs.HistogramSnapshot{
			"bm2.gain_micros":      histSnap(gain, 10),
			"crr.delta_abs_micros": histSnap(tiny, 10),
		}
		return m
	}
	base := writeJSON(t, dir, "mbase.json", withMicros(100_000, 100))

	// Identical: no breach.
	var out bytes.Buffer
	code, err := run(&out, base, writeJSON(t, dir, "msame.json", withMicros(100_000, 100)), "25%", false, nil)
	if err != nil || code != 0 {
		t.Fatalf("identical micros histograms = (%d, %v), want (0, nil)\n%s", code, err, out.String())
	}

	// 4x blowup of an above-floor _micros family breaches.
	out.Reset()
	code, err = run(&out, base, writeJSON(t, dir, "mworse.json", withMicros(400_000, 100)), "25%", false, nil)
	if err != nil || code != 1 {
		t.Fatalf("regressed micros histogram = (%d, %v), want (1, nil)\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "bm2.gain_micros") {
		t.Errorf("breach does not name the regressed family:\n%s", out.String())
	}

	// The sub-floor family (baseline quantile ~100 micros < 1e3) blowing up
	// 8x is rounding noise, never a breach.
	out.Reset()
	code, err = run(&out, base, writeJSON(t, dir, "mnoise.json", withMicros(100_000, 800)), "25%", false, nil)
	if err != nil || code != 0 {
		t.Fatalf("sub-floor micros blowup = (%d, %v), want (0, nil)\n%s", code, err, out.String())
	}
}

// TestDirtyCommitWarnings pins the forged-env satellite: baselines and
// manifests stamped with a "-dirty" commit are flagged on either side.
func TestDirtyCommitWarnings(t *testing.T) {
	dir := t.TempDir()

	dirty := benchReport(100, 0)
	dirty.Env.GitCommit = "abc1234-dirty"
	base := writeJSON(t, dir, "dirty.json", dirty)
	cur := writeJSON(t, dir, "clean.json", benchReport(100, 0))
	var out bytes.Buffer
	code, err := run(&out, base, cur, "", false, nil)
	if err != nil || code != 0 {
		t.Fatalf("bench diff = (%d, %v), want (0, nil)", code, err)
	}
	if !strings.Contains(out.String(), "baseline was measured on a dirty worktree (abc1234-dirty)") {
		t.Errorf("dirty baseline not flagged:\n%s", out.String())
	}

	dm := manifest(80_000_000, 1000)
	dm.GitCommit = "def5678-dirty"
	mbase := writeJSON(t, dir, "m.json", manifest(80_000_000, 1000))
	mcur := writeJSON(t, dir, "mdirty.json", dm)
	out.Reset()
	code, err = run(&out, mbase, mcur, "", false, nil)
	if err != nil || code != 0 {
		t.Fatalf("manifest diff = (%d, %v), want (0, nil)", code, err)
	}
	if !strings.Contains(out.String(), "current was measured on a dirty worktree (def5678-dirty)") {
		t.Errorf("dirty manifest not flagged:\n%s", out.String())
	}

	// Clean on both sides: no dirty warning.
	out.Reset()
	code, err = run(&out, mbase, writeJSON(t, dir, "mclean.json", manifest(80_000_000, 1000)), "", false, nil)
	if err != nil || code != 0 {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "dirty worktree") {
		t.Errorf("clean manifests flagged as dirty:\n%s", out.String())
	}
}
