// Command gpack converts graphs into the mmap-able ESC1 packed-CSR format
// (and between the repo's other formats), so SNAP-scale edge lists parse
// once and load in milliseconds ever after.
//
// Usage:
//
//	gpack -in com-lj.txt -out com-lj.esc
//	gpack -in com-lj.txt -out com-lj.esc -mem 256MiB   # out-of-core
//	gpack -in graph.esg -out graph.esc -order degree
//
// Without -mem the input graph is loaded in RAM and packed with
// graph.WritePackedFile. With -mem the edge list is streamed through the
// bounded-memory external-sort packer (graph.PackEdgeListFile): edge keys
// spill to sorted temp runs and the CSR arrays are filled through a
// read-write mapping of the output, so graphs larger than RAM can be
// packed. The shared observability flags apply (-metrics, -profile,
// -debug-addr serves live packing progress); see internal/obs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"edgeshed/internal/graph"
	"edgeshed/internal/obs"
)

func main() {
	var (
		in      = flag.String("in", "", "input graph: edge list, .esg binary, or .esc packed (required)")
		out     = flag.String("out", "", "output .esc file (required)")
		order   = flag.String("order", "keep", "dense-id order: keep (ids bit-identical to the text loader's) or degree (degree-descending relabel for locality)")
		mem     = flag.String("mem", "", "external-sort memory budget, e.g. 256MiB (suffixes K/M/G, binary); empty packs in RAM. Out-of-core packing reads text edge lists and implies -order keep")
		tmp     = flag.String("tmp", "", "spill directory for -mem runs (default: the system temp dir)")
		workers = flag.Int("workers", 0, "parse worker goroutines (0 = GOMAXPROCS); output is identical at any count")
		verify  = flag.Bool("verify", false, "re-open and fully validate the output after packing")
	)
	cli := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	sess, err := cli.Start("gpack")
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpack:", err)
		os.Exit(1)
	}
	runErr := obs.Run(sess, func() error { return run(*in, *out, *order, *mem, *tmp, *workers, *verify, sess) })
	if cerr := sess.Close(); runErr == nil {
		runErr = cerr
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "gpack:", runErr)
		os.Exit(1)
	}
}

func run(in, out, order, mem, tmp string, workers int, verify bool, sess *obs.Session) error {
	if in == "" || out == "" {
		return fmt.Errorf("-in and -out are required")
	}
	if !strings.HasSuffix(out, ".esc") {
		return fmt.Errorf("-out must end in .esc (got %q)", out)
	}
	var ord graph.Order
	switch order {
	case "keep":
		ord = graph.OrderKeep
	case "degree":
		ord = graph.OrderDegree
	default:
		return fmt.Errorf("unknown -order %q (want keep or degree)", order)
	}
	budget, err := parseBytes(mem)
	if err != nil {
		return fmt.Errorf("bad -mem: %w", err)
	}

	if budget > 0 {
		if ord != graph.OrderKeep {
			return fmt.Errorf("-mem (out-of-core) supports -order keep only: degree relabeling needs the whole graph in RAM")
		}
		if strings.HasSuffix(in, ".esc") || strings.HasSuffix(in, ".esg") {
			return fmt.Errorf("-mem (out-of-core) reads text edge lists; %q is already a parsed format", in)
		}
		stats, err := graph.PackEdgeListFile(in, out, graph.PackOptions{
			MemBudget: budget,
			TmpDir:    tmp,
			Workers:   workers,
			Obs:       sess.Root(),
		})
		if err != nil {
			return err
		}
		sess.SetGraph(stats.Nodes, stats.Edges)
		sess.Logf("packed %s → %s: |V|=%d |E|=%d, %d spill runs (%d keys), %d bytes out",
			in, out, stats.Nodes, stats.Edges, stats.SpillChunks, stats.SpilledKeys, stats.BytesOut)
	} else {
		load := sess.Root().Start("load")
		g, rm, err := graph.LoadFileObs(in, load)
		load.End()
		if err != nil {
			return err
		}
		sess.SetGraph(g.NumNodes(), g.NumEdges())
		pack := sess.Root().Start("pack")
		err = graph.WritePackedFile(out, g, rm, graph.PackWriteOptions{Order: ord})
		pack.End()
		if err != nil {
			return err
		}
		sess.Logf("packed %s → %s: |V|=%d |E|=%d, order=%s", in, out, g.NumNodes(), g.NumEdges(), order)
	}

	if verify {
		p, err := graph.OpenPacked(out)
		if err != nil {
			return fmt.Errorf("verifying %s: %w", out, err)
		}
		if err := p.Verify(); err != nil {
			p.Close()
			return fmt.Errorf("verifying %s: %w", out, err)
		}
		g := p.Graph()
		sess.Logf("verified %s: |V|=%d |E|=%d", out, g.NumNodes(), g.NumEdges())
		if err := p.Close(); err != nil {
			return err
		}
	}
	return nil
}

// parseBytes parses a human byte size: a plain integer is bytes, and the
// binary suffixes K/KB/KiB, M/MB/MiB, G/GB/GiB scale by 2^10, 2^20, 2^30.
// Empty means 0 (no budget).
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	upper := strings.ToUpper(s)
	mult := int64(1)
	for _, suf := range []struct {
		text  string
		scale int64
	}{
		{"KIB", 1 << 10}, {"KB", 1 << 10}, {"K", 1 << 10},
		{"MIB", 1 << 20}, {"MB", 1 << 20}, {"M", 1 << 20},
		{"GIB", 1 << 30}, {"GB", 1 << 30}, {"G", 1 << 30},
	} {
		if strings.HasSuffix(upper, suf.text) {
			mult = suf.scale
			upper = strings.TrimSuffix(upper, suf.text)
			break
		}
	}
	v, err := strconv.ParseInt(strings.TrimSpace(upper), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%q is not a byte size", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("byte size %q is negative", s)
	}
	return v * mult, nil
}
