package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

// writeSparseGraph writes a BA graph with sparse external labels as a text
// edge list and returns its path.
func writeSparseGraph(t *testing.T, dir string) string {
	t.Helper()
	g := gen.BarabasiAlbert(150, 3, 4)
	rm := graph.NewRemapper()
	for u := 0; u < g.NumNodes(); u++ {
		rm.ID(int64(u)*13 + 7)
	}
	path := filepath.Join(dir, "g.txt")
	if err := graph.WriteEdgeListFile(path, g, rm); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunInRAMAndOutOfCoreAgree(t *testing.T) {
	dir := t.TempDir()
	in := writeSparseGraph(t, dir)
	ram := filepath.Join(dir, "ram.esc")
	ext := filepath.Join(dir, "ext.esc")
	if err := run(in, ram, "keep", "", "", 0, true, nil); err != nil {
		t.Fatalf("in-RAM pack: %v", err)
	}
	if err := run(in, ext, "keep", "2KiB", dir, 2, true, nil); err != nil {
		t.Fatalf("out-of-core pack: %v", err)
	}
	a, err := os.ReadFile(ram)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(ext)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("in-RAM and out-of-core packs differ")
	}
	// The packed file must round-trip the text loader's graph exactly.
	g1, rm1, err := graph.LoadFile(in)
	if err != nil {
		t.Fatal(err)
	}
	g2, rm2, err := graph.LoadFile(ram)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("packed shape |V|=%d |E|=%d, text |V|=%d |E|=%d",
			g2.NumNodes(), g2.NumEdges(), g1.NumNodes(), g1.NumEdges())
	}
	for u := 0; u < rm1.Len(); u++ {
		if rm1.Label(graph.NodeID(u)) != rm2.Label(graph.NodeID(u)) {
			t.Fatalf("label of %d differs: text %d, packed %d", u, rm1.Label(graph.NodeID(u)), rm2.Label(graph.NodeID(u)))
		}
	}
}

func TestRunRepack(t *testing.T) {
	dir := t.TempDir()
	in := writeSparseGraph(t, dir)
	esc := filepath.Join(dir, "a.esc")
	if err := run(in, esc, "keep", "", "", 0, false, nil); err != nil {
		t.Fatal(err)
	}
	// .esc → .esc (repack) and .esc → degree order both go through LoadFile.
	re := filepath.Join(dir, "b.esc")
	if err := run(esc, re, "degree", "", "", 0, true, nil); err != nil {
		t.Fatalf("repack with degree order: %v", err)
	}
	p, err := graph.OpenPacked(re)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if !p.DegreeOrdered {
		t.Error("degree-ordered repack lost the flag")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	in := writeSparseGraph(t, dir)
	out := filepath.Join(dir, "o.esc")
	if err := run("", out, "keep", "", "", 0, false, nil); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run(in, "", "keep", "", "", 0, false, nil); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run(in, filepath.Join(dir, "o.txt"), "keep", "", "", 0, false, nil); err == nil {
		t.Error("non-.esc output accepted")
	}
	if err := run(in, out, "bogus", "", "", 0, false, nil); err == nil {
		t.Error("unknown order accepted")
	}
	if err := run(in, out, "keep", "lots", "", 0, false, nil); err == nil {
		t.Error("malformed -mem accepted")
	}
	if err := run(in, out, "degree", "1MiB", "", 0, false, nil); err == nil {
		t.Error("-mem with -order degree accepted")
	}
	esc := filepath.Join(dir, "in.esc")
	if err := run(in, esc, "keep", "", "", 0, false, nil); err != nil {
		t.Fatal(err)
	}
	if err := run(esc, out, "keep", "1MiB", "", 0, false, nil); err == nil {
		t.Error("out-of-core pack of an already-packed input accepted")
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"", 0, false},
		{"0", 0, false},
		{"1234", 1234, false},
		{"4K", 4 << 10, false},
		{"4KB", 4 << 10, false},
		{"4KiB", 4 << 10, false},
		{"2m", 2 << 20, false},
		{"256MiB", 256 << 20, false},
		{"1G", 1 << 30, false},
		{" 8 MiB ", 8 << 20, false},
		{"-1", 0, true},
		{"x", 0, true},
		{"1TiB", 0, true},
	}
	for _, c := range cases {
		got, err := parseBytes(c.in)
		if (err != nil) != c.err {
			t.Errorf("parseBytes(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("parseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}
