// Package edgeshed reproduces "Selective Edge Shedding in Large Graphs
// Under Resource Constraints" (Zeng, Song, Ge — ICDE 2021) as a pure-Go,
// stdlib-only library.
//
// The paper's contribution — the CRR and BM2 degree-preserving edge-shedding
// algorithms — lives in internal/core. Every substrate the evaluation needs
// is implemented from scratch: the graph representation (internal/graph),
// synthetic stand-ins for the SNAP datasets (internal/dataset), Brandes
// betweenness centrality (internal/centrality), b-matching and bipartite
// matching (internal/matching), the UDS comparator (internal/uds), the seven
// analysis tasks (internal/analysis, internal/tasks), node2vec embeddings
// (internal/embed), and a harness reproducing every table and figure
// (internal/experiments, cmd/experiments).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for the paper-vs-measured record.
// The benchmarks in bench_test.go regenerate each table and figure's
// measurements; run them with:
//
//	go test -bench=. -benchmem
package edgeshed
