// Community link-prediction study: on a planted-partition social graph,
// shed edges and test whether node2vec + K-means still recovers the same
// same-community predictions on 2-hop pairs — the paper's Table X task.
//
// Run with: go run ./examples/socialcommunity
package main

import (
	"fmt"
	"log"

	"edgeshed/internal/core"
	"edgeshed/internal/embed"
	"edgeshed/internal/graph/gen"
	"edgeshed/internal/tasks"
)

func main() {
	// Five communities of 60 nodes: dense inside, sparse across.
	g := gen.PlantedPartition(5, 60, 0.25, 0.01, 7)
	fmt.Printf("planted-partition graph: |V|=%d |E|=%d, 5 communities\n\n",
		g.NumNodes(), g.NumEdges())

	task := tasks.LinkPredictionTask{
		Clusters: 5, // the paper's K-means k
		Walk:     embed.WalkConfig{WalksPerNode: 8, WalkLength: 30, Seed: 8},
		SGNS:     embed.SGNSConfig{Dim: 32, Epochs: 2, Seed: 9},
		Seed:     10,
	}
	base := task.Predict(g)
	fmt.Printf("predictions on the original graph: %d same-community 2-hop pairs\n\n", len(base))

	fmt.Printf("%-5s  %-10s  %-10s  %-10s\n", "p", "CRR", "BM2", "Random")
	for _, p := range []float64{0.9, 0.7, 0.5, 0.3} {
		fmt.Printf("%-5.1f", p)
		for _, r := range []core.Reducer{core.CRR{Seed: 1}, core.BM2{}, core.Random{Seed: 2}} {
			res, err := r.Reduce(g, p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-10.3f", task.Utility(g, res.Reduced))
		}
		fmt.Println()
	}
	fmt.Println("\nDegree-preserving shedding keeps the community signal the embedding")
	fmt.Println("needs; the utility decays with p but stays well above chance.")
}
