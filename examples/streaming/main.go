// Streaming study: edges of a large social graph arrive one at a time (the
// edge-computing scenario from the paper's introduction) and must be shed
// on the fly with O(|E'| + |V|) memory. Compare the degree-preserving
// stream shedder against reservoir sampling at the same memory budget.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"

	"edgeshed/internal/core"
	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
	"edgeshed/internal/stream"
	"edgeshed/internal/tasks"
)

func main() {
	g := gen.HolmeKim(5000, 5, 0.3, 99)
	fmt.Printf("stream source: |V|=%d |E|=%d (arriving in random order)\n\n",
		g.NumNodes(), g.NumEdges())

	rng := rand.New(rand.NewSource(1))
	order := append([]graph.Edge(nil), g.Edges()...)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	task := tasks.TopKTask{}
	fmt.Printf("%-5s  %-24s  %-24s\n", "p", "stream shedder", "reservoir sample")
	fmt.Printf("%-5s  %-12s %-11s  %-12s %-11s\n", "", "Δ", "top-k util", "Δ", "top-k util")
	for _, p := range []float64{0.7, 0.5, 0.3} {
		s, err := stream.NewShedder(stream.Options{P: p, Seed: 2, Nodes: g.NumNodes()})
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range order {
			if err := s.Insert(e.U, e.V); err != nil {
				log.Fatal(err)
			}
		}
		snap := s.Snapshot()

		// Reservoir baseline with the same memory budget.
		k := snap.NumEdges()
		reservoir := append([]graph.Edge(nil), order[:k]...)
		for i := k; i < len(order); i++ {
			if j := rng.Intn(i + 1); j < k {
				reservoir[j] = order[i]
			}
		}
		resG, err := g.Subgraph(reservoir)
		if err != nil {
			log.Fatal(err)
		}
		resDelta := (&core.Result{Original: g, Reduced: resG, P: p}).Delta()

		fmt.Printf("%-5.1f  %-12.1f %-11.3f  %-12.1f %-11.3f\n",
			p, s.Delta(), task.Utility(g, snap), resDelta, task.Utility(g, resG))
	}
	fmt.Println("\nOne pass, bounded memory, no second look at shed edges — and the")
	fmt.Println("degree-preserving policy still halves the discrepancy of reservoir")
	fmt.Println("sampling while keeping more of the top-k ranking.")
}
