// Collaboration-network study: on a ca-GrQc-like co-authorship graph, track
// how clustering structure and shortest-path structure survive shedding as
// p falls — the scenario behind the paper's Figures 7 and 9.
//
// Run with: go run ./examples/collaboration
package main

import (
	"fmt"
	"log"

	"edgeshed/internal/analysis"
	"edgeshed/internal/core"
	"edgeshed/internal/dataset"
	"edgeshed/internal/tasks"
)

func main() {
	spec, err := dataset.ByName("ca-GrQc")
	if err != nil {
		log.Fatal(err)
	}
	// Scale 8: ~650 nodes, laptop-instant; drop to scale 1 for paper size.
	g := spec.MustBuild(8, spec.DefaultSeed)
	fmt.Printf("%s stand-in: |V|=%d |E|=%d avg clustering=%.3f\n\n",
		spec.Name, g.NumNodes(), g.NumEdges(), analysis.AverageClustering(g, 0))

	ccTask := tasks.ClusteringTask{}
	spTask := tasks.SPDistanceTask{}
	fmt.Printf("%-5s | %-22s | %-22s\n", "p", "clustering", "shortest paths")
	fmt.Printf("%-5s | %-10s %-11s | %-10s %-11s\n", "", "CRR err", "BM2 err", "CRR TVD", "BM2 TVD")
	fmt.Println("------+------------------------+-----------------------")
	for _, p := range []float64{0.9, 0.7, 0.5, 0.3, 0.1} {
		crr, err := (core.CRR{Seed: 1}).Reduce(g, p)
		if err != nil {
			log.Fatal(err)
		}
		bm2, err := (core.BM2{}).Reduce(g, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5.1f | %-10.4f %-11.4f | %-10.4f %-11.4f\n",
			p,
			ccTask.Error(g, crr.Reduced), ccTask.Error(g, bm2.Reduced),
			spTask.Error(g, crr.Reduced), spTask.Error(g, bm2.Reduced))
	}
	fmt.Println("\nSmall errors at large p, growing gracefully as the graph shrinks:")
	fmt.Println("the reduced graphs remain usable proxies for structural analysis")
	fmt.Println("even at a fraction of the original size.")
}
