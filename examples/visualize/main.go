// Visualization: one of the paper's four motivations for graph reduction is
// making visualization feasible. Shed a graph down to its essential
// skeleton, then emit Graphviz DOT with the kept edges bold inside the
// original — the style of the paper's own Figures 1-3.
//
// Run with: go run ./examples/visualize > reduced.dot
// Render with: dot -Tsvg reduced.dot -o reduced.svg  (if graphviz is installed)
package main

import (
	"fmt"
	"log"
	"os"

	"edgeshed/internal/core"
	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

func main() {
	// A graph small enough to draw but busy enough to need shedding.
	g := gen.HolmeKim(60, 3, 0.6, 17)
	fmt.Fprintf(os.Stderr, "original: %v — too dense to read when drawn\n", g)

	res, err := (core.CRR{Seed: 1}).Reduce(g, 0.35)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "reduced:  |E'|=%d, Δ=%.1f — drawable\n",
		res.Reduced.NumEdges(), res.Delta())

	// Bold the kept edges inside the original topology.
	err = graph.WriteDOT(os.Stdout, g, graph.DOTOptions{
		Name:      "edgeshed",
		Highlight: res.Reduced.EdgeSet(),
	})
	if err != nil {
		log.Fatal(err)
	}
}
