// Top-k query study: on an email-Enron-like communication graph, measure
// how much of the top-10% PageRank vertex set survives shedding — the
// paper's Tables VIII-IX scenario, where an analyst wants influential
// accounts from a graph too big for their laptop.
//
// Run with: go run ./examples/emailtopk
package main

import (
	"fmt"
	"log"
	"time"

	"edgeshed/internal/core"
	"edgeshed/internal/dataset"
	"edgeshed/internal/tasks"
	"edgeshed/internal/uds"
)

func main() {
	spec, err := dataset.ByName("email-Enron")
	if err != nil {
		log.Fatal(err)
	}
	g := spec.MustBuild(16, spec.DefaultSeed) // ~2300 nodes
	fmt.Printf("%s stand-in: |V|=%d |E|=%d\n\n", spec.Name, g.NumNodes(), g.NumEdges())

	task := tasks.TopKTask{} // top-10% by PageRank, the paper's setting
	reducers := []core.Reducer{
		uds.Reducer{},
		core.CRR{Seed: 1},
		core.BM2{},
	}
	fmt.Printf("%-5s", "p")
	for _, r := range reducers {
		fmt.Printf("  %8s (time)", r.Name())
	}
	fmt.Println()
	for _, p := range []float64{0.9, 0.7, 0.5, 0.3, 0.1} {
		fmt.Printf("%-5.1f", p)
		for _, r := range reducers {
			start := time.Now()
			var util float64
			if ur, ok := r.(uds.Reducer); ok {
				// UDS's own supernode processing for top-k, as in the paper.
				_, sum, err := ur.Summarize(g, p)
				if err != nil {
					log.Fatal(err)
				}
				util = task.UtilityWithScores(g, sum.PageRankScores(0.85, 50))
			} else {
				res, err := r.Reduce(g, p)
				if err != nil {
					log.Fatal(err)
				}
				util = task.Utility(g, res.Reduced)
			}
			fmt.Printf("  %8.3f (%5.2fs)", util, time.Since(start).Seconds())
		}
		fmt.Println()
	}
	fmt.Println("\nCRR keeps the most utility as p falls; BM2 trades a little utility")
	fmt.Println("for dramatic speed; UDS loses the ranking signal fastest — the")
	fmt.Println("ordering of the paper's Tables VIII-IX.")
}
