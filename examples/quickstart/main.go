// Quickstart: generate a small scale-free graph, shed half its edges with
// each method, and compare how well each preserves vertex degrees — the
// paper's core claim in thirty lines, written entirely against the public
// edgeshed API.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"edgeshed"
)

func main() {
	// A Barabási–Albert graph: heavy-tailed degrees, like the paper's
	// social and collaboration networks.
	g := edgeshed.BarabasiAlbert(2000, 4, 42)
	fmt.Printf("original graph: |V|=%d |E|=%d avg degree=%.2f\n\n",
		g.NumNodes(), g.NumEdges(), g.AvgDegree())

	p := 0.5
	reducers := []edgeshed.Reducer{
		edgeshed.CRR{Seed: 1},
		edgeshed.BM2{},
		edgeshed.Random{Seed: 2},
	}
	origDist := edgeshed.DegreeDistribution(g, 0)
	fmt.Printf("shedding to p = %.1f (keep ~%d edges):\n\n", p, int(p*float64(g.NumEdges())))
	fmt.Printf("%-8s %8s %10s %12s %14s\n", "method", "|E'|", "Δ", "avg |dis|", "degree TVD")
	for _, r := range reducers {
		res, err := r.Reduce(g, p)
		if err != nil {
			log.Fatal(err)
		}
		redDist := edgeshed.DegreeDistribution(res.Reduced, 0)
		fmt.Printf("%-8s %8d %10.2f %12.4f %14.4f\n",
			r.Name(), res.Reduced.NumEdges(), res.Delta(), res.AvgDisPerNode(),
			edgeshed.TVD(origDist, redDist))
	}

	fmt.Println("\nTheoretical bounds on avg |dis| at p = 0.5:")
	fmt.Printf("  CRR (Theorem 1): %.4f\n", edgeshed.CRRBound(g, p))
	fmt.Printf("  BM2 (Theorem 2): %.4f\n", edgeshed.BM2Bound(g, p))
	fmt.Println("\nBoth degree-preserving methods sit far below their bounds and far")
	fmt.Println("below uniform random shedding on Δ — the property every downstream")
	fmt.Println("task in the paper's evaluation builds on.")
}
