package edgeshed

// This file is the public facade: type aliases and thin wrappers over the
// internal packages, so downstream modules can use the library without
// touching internal import paths. The aliases are the same types — values
// flow freely between the facade and the internals.

import (
	"io"

	"edgeshed/internal/analysis"
	"edgeshed/internal/centrality"
	"edgeshed/internal/core"
	"edgeshed/internal/dataset"
	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
	"edgeshed/internal/stream"
	"edgeshed/internal/tasks"
	"edgeshed/internal/uds"
)

// Graph is an immutable undirected graph; see Builder for construction and
// LoadFile/ReadEdgeList for I/O.
type Graph = graph.Graph

// Builder accumulates edges into a Graph.
type Builder = graph.Builder

// Edge is an undirected edge between dense node ids.
type Edge = graph.Edge

// NodeID is a dense node identifier.
type NodeID = graph.NodeID

// Remapper translates external node labels to dense ids and back.
type Remapper = graph.Remapper

// NewBuilder returns a builder for a graph with n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// LoadFile reads a graph by file extension (text edge list or .esg binary).
func LoadFile(path string) (*Graph, *Remapper, error) { return graph.LoadFile(path) }

// SaveFile writes a graph by file extension (text, .esg binary, .dot).
func SaveFile(path string, g *Graph, rm *Remapper) error { return graph.SaveFile(path, g, rm) }

// ReadEdgeList parses a SNAP-style edge list stream.
func ReadEdgeList(r io.Reader) (*Graph, *Remapper, error) { return graph.ReadEdgeList(r) }

// Reducer is the interface every shedding algorithm implements.
type Reducer = core.Reducer

// Result is a reduced graph plus its quality metrics (Delta, AvgDelta, ...).
type Result = core.Result

// CRR is the paper's Centrality Ranking with Rewiring (Algorithm 1).
type CRR = core.CRR

// BM2 is the paper's B-Matching with Bipartite Matching (Algorithms 2-3).
type BM2 = core.BM2

// TargetedCRR is the deterministic-repair extension of CRR.
type TargetedCRR = core.TargetedCRR

// Random sheds edges by uniform sampling.
type Random = core.Random

// ForestFire, SpanningForest and WeightedSample are classic sampling
// baselines.
type (
	ForestFire     = core.ForestFire
	SpanningForest = core.SpanningForest
	WeightedSample = core.WeightedSample
)

// UDS is the paper's comparator, adapted to the Reducer interface.
type UDS = uds.Reducer

// CRRBound returns Theorem 1's bound on CRR's average degree discrepancy.
func CRRBound(g *Graph, p float64) float64 { return core.CRRBound(g, p) }

// BM2Bound returns Theorem 2's bound on BM2's average degree discrepancy.
func BM2Bound(g *Graph, p float64) float64 { return core.BM2Bound(g, p) }

// StreamShedder sheds a stream of edge insertions/deletions under bounded
// memory.
type StreamShedder = stream.Shedder

// StreamOptions configures NewStreamShedder.
type StreamOptions = stream.Options

// NewStreamShedder returns a one-pass streaming shedder.
func NewStreamShedder(opt StreamOptions) (*StreamShedder, error) { return stream.NewShedder(opt) }

// CentralityOptions configures betweenness computations (sampling,
// parallelism).
type CentralityOptions = centrality.Options

// NodeBetweenness returns per-node betweenness centrality.
func NodeBetweenness(g *Graph, opt CentralityOptions) []float64 {
	return centrality.NodeBetweenness(g, opt)
}

// PageRank returns the PageRank vector of an undirected graph.
func PageRank(g *Graph) []float64 {
	return analysis.PageRank(g, analysis.PageRankOptions{})
}

// DegreeDistribution returns the fraction of nodes per degree; cap > 0
// aggregates larger degrees into one bucket.
func DegreeDistribution(g *Graph, cap int) []float64 {
	return analysis.DegreeDistribution(g, cap)
}

// AverageClustering returns the mean local clustering coefficient.
func AverageClustering(g *Graph) float64 { return analysis.AverageClustering(g, 0) }

// TVD returns the total variation distance between two discrete
// distributions.
func TVD(p, q []float64) float64 { return tasks.TVD(p, q) }

// TaskSuite evaluates a reduction on the paper's seven analysis tasks.
type TaskSuite = tasks.Suite

// TaskMeasurement is one task's outcome from a TaskSuite evaluation.
type TaskMeasurement = tasks.Measurement

// Dataset describes a synthetic stand-in for one of the paper's SNAP
// datasets.
type Dataset = dataset.Spec

// Datasets returns the four stand-ins of the paper's Table II.
func Datasets() []Dataset { return dataset.Catalog() }

// DatasetByName looks up a stand-in ("ca-GrQc", "ca-HepPh", "email-Enron",
// "com-LiveJournal").
func DatasetByName(name string) (Dataset, error) { return dataset.ByName(name) }

// BarabasiAlbert, HolmeKim, ErdosRenyi and PlantedPartition generate the
// standard random graph models.
func BarabasiAlbert(n, mPer int, seed int64) *Graph { return gen.BarabasiAlbert(n, mPer, seed) }

// HolmeKim generates a Barabási–Albert graph with triad closure.
func HolmeKim(n, mPer int, pt float64, seed int64) *Graph { return gen.HolmeKim(n, mPer, pt, seed) }

// ErdosRenyi generates a uniform G(n, m) random graph.
func ErdosRenyi(n, m int, seed int64) *Graph { return gen.ErdosRenyi(n, m, seed) }

// PlantedPartition generates a stochastic block model with c communities of
// the given size.
func PlantedPartition(c, size int, pIn, pOut float64, seed int64) *Graph {
	return gen.PlantedPartition(c, size, pIn, pOut, seed)
}
