package edgeshed

// A documentation lint: every exported top-level declaration in the module
// must carry a doc comment. This enforces the "doc comments on every public
// item" guarantee mechanically.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestAllExportedDeclarationsDocumented(t *testing.T) {
	var missing []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "results" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			switch dd := decl.(type) {
			case *ast.FuncDecl:
				if dd.Name.IsExported() && dd.Doc == nil && !isMethodOfUnexported(dd) {
					missing = append(missing, pos(fset, dd.Pos())+" func "+dd.Name.Name)
				}
			case *ast.GenDecl:
				if dd.Tok != token.TYPE && dd.Tok != token.VAR && dd.Tok != token.CONST {
					continue
				}
				groupDoc := dd.Doc != nil
				for _, spec := range dd.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && !groupDoc && s.Doc == nil {
							missing = append(missing, pos(fset, s.Pos())+" type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
								missing = append(missing, pos(fset, s.Pos())+" value "+n.Name)
							}
						}
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range missing {
		t.Errorf("undocumented exported declaration: %s", m)
	}
}

// isMethodOfUnexported reports whether fn is a method on an unexported
// receiver type (effectively internal even if the method name is exported,
// e.g. interface satisfaction on private types).
func isMethodOfUnexported(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && !id.IsExported()
}

func pos(fset *token.FileSet, p token.Pos) string {
	position := fset.Position(p)
	return position.Filename + ":" + strconv.Itoa(position.Line)
}
