# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench bench-centrality bench-tasks bench-shedding bench-ingest bench-bfs bench-gate obsreport experiments claims profile fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/par/ ./internal/analysis/ ./internal/tasks/ \
		./internal/centrality/ ./internal/uds/ ./internal/stream/ \
		./internal/core/ ./internal/matching/ ./internal/obs/ ./internal/msbfs/

bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Refresh the betweenness perf baseline: map-indexed (oracle) vs CSR-indexed
# Brandes micro-benchmarks, plus the preserved per-source edge scorer vs the
# batched MS-BFS edge-dependency fold (this pair is CRR Phase 1 before and
# after batching), recorded as JSON so PRs can diff the trajectory.
bench-centrality:
	$(GO) test -run xxx -bench 'Betweenness(Map|CSR)Indexed|EdgeBetweennessScores(PerSource|MSBFS)$$' -benchtime 3x -benchmem ./internal/centrality/ \
		| $(GO) run ./cmd/benchjson -out BENCH_betweenness.json
	cat BENCH_betweenness.json

# Refresh the analysis-task perf baseline: seed serial kernels vs the
# parallel CSR kernels at 4 workers (distance profile and clustering),
# recorded as JSON. -benchtime 5x keeps the derived speedups stable.
bench-tasks:
	$(GO) test -run xxx -bench '(DistanceProfile|Clustering)(Serial|Parallel)' -benchtime 5x -benchmem ./internal/analysis/ \
		| $(GO) run ./cmd/benchjson -out BENCH_tasks.json
	cat BENCH_tasks.json

# Refresh the shedding-core perf baseline: map-indexed (seed-era oracle)
# reducers vs the edge-id-native CSR implementations, the serial vs
# parallel CRR sweep, and the end-to-end exact-betweenness CRR reduction
# with Phase 1 per-source vs batched MS-BFS, recorded as JSON.
# -benchtime 10x keeps the derived speedups stable.
bench-shedding:
	$(GO) test -run xxx -bench '(CRRReduce|BM2Reduce|GreedyBMatching|ShedderInsert)(Map|CSR)Indexed|CRRSweep(Serial|Parallel)|CRRReduceExact(PerSource|MSBFS)$$' -benchtime 10x -benchmem \
		./internal/core/ ./internal/matching/ ./internal/stream/ \
		| $(GO) run ./cmd/benchjson -out BENCH_shedding.json
	cat BENCH_shedding.json

# Refresh the ingestion perf baseline: parsing the text edge list from
# scratch vs mmap-loading the packed-CSR (.esc) file, plus the out-of-core
# external-sort packer, recorded as JSON. The derived Ingest speedup is the
# parse-once-load-forever payoff of the packed format.
bench-ingest:
	$(GO) test -run xxx -bench 'Ingest(TextLoad|PackedLoad|ExtsortPack)' -benchtime 5x -benchmem ./internal/graph/ \
		| $(GO) run ./cmd/benchjson -out BENCH_ingest.json
	cat BENCH_ingest.json

# Refresh the BFS-kernel perf baseline: the replaced one-BFS-per-source
# kernels vs the bit-parallel MS-BFS engine (closeness, distance profile,
# node betweenness), single worker so the derived PerSource/MSBFS speedups
# measure the batching alone. Recorded as JSON; gate with bench-gate.
bench-bfs:
	$(GO) test -run xxx -bench '(Closeness|NodeBetweenness|DistanceProfile)(PerSource|MSBFS)$$' -benchtime 5x -benchmem \
		./internal/centrality/ ./internal/analysis/ \
		| $(GO) run ./cmd/benchjson -out BENCH_bfs.json
	cat BENCH_bfs.json

# Gate a fresh benchmark run against a baseline with cmd/obsdiff: exits
# non-zero when any ns/op or allocs/op regressed beyond MAX_REGRESS, and
# refuses cross-machine comparisons (baselines embed the measuring
# machine's identity). Works on run manifests too.
#
#	make bench-shedding && cp BENCH_shedding.json base.json
#	... hack ...
#	make bench-shedding && make bench-gate BASE=base.json CUR=BENCH_shedding.json
BASE ?= BENCH_shedding.json
CUR ?= BENCH_shedding.json
MAX_REGRESS ?= 25%
bench-gate:
	$(GO) run ./cmd/obsdiff -max-regress $(MAX_REGRESS) $(BASE) $(CUR)

# Render the cross-run quality trend report over a directory of run
# manifests (-metrics output) and BENCH_*.json baselines. Add
# OBSREPORT_FLAGS="-gate -max-regress 10%" to fail on quality regressions.
#
#	make obsreport RUNS=results/quality
RUNS ?= results
OBSREPORT_FLAGS ?=
obsreport:
	$(GO) run ./cmd/obsreport $(OBSREPORT_FLAGS) $(RUNS)

# Reproduce every paper artifact at laptop scale and self-audit the shapes.
experiments:
	$(GO) run ./cmd/experiments -run all -scale 32 -out results/full_scale32.txt
	$(GO) run ./cmd/checkclaims -in results/full_scale32.txt

claims:
	$(GO) run ./cmd/checkclaims -in results/full_scale8.txt

# Capture a worked observability example (EXPERIMENTS.md): a CRR reduction
# of a scale-16 ca-HepPh stand-in with a JSON run manifest, CPU profile and
# execution trace, then summarize the profile.
profile:
	mkdir -p results/profile
	$(GO) run ./cmd/gengraph -dataset ca-HepPh -scale 16 -seed 1 -out results/profile/hepph.txt
	$(GO) run ./cmd/shed -in results/profile/hepph.txt -out results/profile/reduced.txt \
		-method crr -p 0.5 -seed 1 \
		-metrics results/profile/run.json -stats-json results/profile/stats.json \
		-profile cpu -profile-out results/profile/cpu.pprof -trace results/profile/trace.out
	$(GO) tool pprof -top -nodecount 15 results/profile/cpu.pprof

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	rm -f test_output.txt bench_output.txt
