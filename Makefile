# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench experiments claims fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/centrality/ ./internal/uds/ ./internal/stream/

bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Reproduce every paper artifact at laptop scale and self-audit the shapes.
experiments:
	$(GO) run ./cmd/experiments -run all -scale 32 -out results/full_scale32.txt
	$(GO) run ./cmd/checkclaims -in results/full_scale32.txt

claims:
	$(GO) run ./cmd/checkclaims -in results/full_scale8.txt

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	rm -f test_output.txt bench_output.txt
