package matching

import (
	"math/rand"
	"testing"
	"testing/quick"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

func unitCaps(n, c int) []int {
	caps := make([]int, n)
	for i := range caps {
		caps[i] = c
	}
	return caps
}

func TestGreedyBMatchingRespectsCapacities(t *testing.T) {
	g := gen.Complete(6)
	caps := []int{1, 2, 3, 0, 2, 1}
	m, err := GreedyBMatching(g, caps, InputOrder)
	if err != nil {
		t.Fatalf("GreedyBMatching: %v", err)
	}
	for u, d := range m.Degrees {
		if d > caps[u] {
			t.Errorf("node %d degree %d > capacity %d", u, d, caps[u])
		}
	}
	if m.Degrees[3] != 0 {
		t.Errorf("zero-capacity node matched: degree %d", m.Degrees[3])
	}
	if err := m.VerifyMaximal(g, caps); err != nil {
		t.Errorf("VerifyMaximal: %v", err)
	}
}

func TestGreedyBMatchingUnitIsMatching(t *testing.T) {
	// With all capacities 1 a b-matching is an ordinary matching.
	g := gen.Cycle(6)
	m, err := GreedyBMatching(g, unitCaps(6, 1), InputOrder)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Edges) != 3 {
		t.Errorf("matching size on C6 = %d, want 3", len(m.Edges))
	}
	if err := m.VerifyMaximal(g, unitCaps(6, 1)); err != nil {
		t.Errorf("VerifyMaximal: %v", err)
	}
}

func TestGreedyBMatchingFullCapacityKeepsAll(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, 4)
	caps := g.Degrees()
	m, err := GreedyBMatching(g, caps, InputOrder)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Edges) != g.NumEdges() {
		t.Errorf("full capacities kept %d of %d edges", len(m.Edges), g.NumEdges())
	}
}

func TestGreedyBMatchingErrors(t *testing.T) {
	g := gen.Path(3)
	if _, err := GreedyBMatching(g, []int{1, 1}, InputOrder); err == nil {
		t.Error("wrong capacity length accepted")
	}
	if _, err := GreedyBMatching(g, []int{1, -1, 1}, InputOrder); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestGreedyBMatchingOrders(t *testing.T) {
	g := gen.ErdosRenyi(60, 150, 8)
	caps := unitCaps(60, 2)
	for _, order := range []EdgeOrder{InputOrder, ScarceFirst, DenseFirst} {
		m, err := GreedyBMatching(g, caps, order)
		if err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		if err := m.VerifyMaximal(g, caps); err != nil {
			t.Errorf("%v: %v", order, err)
		}
	}
}

func TestEdgeOrderString(t *testing.T) {
	if InputOrder.String() != "input" || ScarceFirst.String() != "scarce-first" || DenseFirst.String() != "dense-first" {
		t.Error("EdgeOrder strings wrong")
	}
	if EdgeOrder(99).String() != "EdgeOrder(99)" {
		t.Errorf("unknown order string = %q", EdgeOrder(99).String())
	}
}

// TestGreedyBMatchingAlwaysMaximal property-checks maximality across random
// graphs and random capacity vectors.
func TestGreedyBMatchingAlwaysMaximal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(30, 60, seed)
		caps := make([]int, 30)
		for i := range caps {
			caps[i] = rng.Intn(4)
		}
		m, err := GreedyBMatching(g, caps, EdgeOrder(rng.Intn(3)))
		if err != nil {
			return false
		}
		return m.VerifyMaximal(g, caps) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestGreedyBMatchingHalfApprox checks Hougardy's 1/2-approximation
// guarantee against an exhaustive optimum on tiny graphs.
func TestGreedyBMatchingHalfApprox(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := gen.ErdosRenyi(8, 12, seed)
		caps := unitCaps(8, 1)
		m, err := GreedyBMatching(g, caps, InputOrder)
		if err != nil {
			t.Fatal(err)
		}
		opt := bruteMaxMatching(g)
		if 2*len(m.Edges) < opt {
			t.Errorf("seed %d: greedy %d < half of optimum %d", seed, len(m.Edges), opt)
		}
	}
}

// bruteMaxMatching finds the maximum cardinality matching by backtracking
// over edges (fine for |E| <= ~20).
func bruteMaxMatching(g *graph.Graph) int {
	return bruteMaxBMatching(g, unitCaps(g.NumNodes(), 1))
}

// bruteMaxBMatching finds the exact maximum b-matching size by backtracking
// over edges under arbitrary capacities — the test oracle for Hougardy's
// 1/2-approximation guarantee.
func bruteMaxBMatching(g *graph.Graph, caps []int) int {
	edges := g.Edges()
	slack := append([]int(nil), caps...)
	var rec func(i int) int
	rec = func(i int) int {
		if i == len(edges) {
			return 0
		}
		best := rec(i + 1)
		e := edges[i]
		if slack[e.U] > 0 && slack[e.V] > 0 {
			slack[e.U]--
			slack[e.V]--
			if v := 1 + rec(i+1); v > best {
				best = v
			}
			slack[e.U]++
			slack[e.V]++
		}
		return best
	}
	return rec(0)
}

// TestGreedyBMatchingHalfApproxGeneralCaps checks the 1/2 guarantee against
// the exhaustive optimum under random non-unit capacities.
func TestGreedyBMatchingHalfApproxGeneralCaps(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ErdosRenyi(7, 11, seed)
		caps := make([]int, 7)
		for i := range caps {
			caps[i] = rng.Intn(4)
		}
		m, err := GreedyBMatching(g, caps, InputOrder)
		if err != nil {
			t.Fatal(err)
		}
		opt := bruteMaxBMatching(g, caps)
		if 2*len(m.Edges) < opt {
			t.Errorf("seed %d: greedy %d < half of optimum %d (caps %v)", seed, len(m.Edges), opt, caps)
		}
	}
}

func TestGreedyBipartite(t *testing.T) {
	// A-side {0,1}, B-side {10,11}: weights force specific picks.
	edges := []WeightedEdge{
		{E: graph.Edge{U: 0, V: 10}, W: 5},
		{E: graph.Edge{U: 0, V: 11}, W: 4},
		{E: graph.Edge{U: 1, V: 10}, W: 3},
		{E: graph.Edge{U: 1, V: 11}, W: 1},
	}
	got := GreedyBipartite(edges)
	if len(got) != 2 {
		t.Fatalf("matched %d edges, want 2", len(got))
	}
	if got[0].W != 5 {
		t.Errorf("first pick weight = %v, want 5", got[0].W)
	}
	// 0 and 10 are used, so second pick must be (1, 11).
	if got[1].E != (graph.Edge{U: 1, V: 11}) {
		t.Errorf("second pick = %v, want (1,11)", got[1].E)
	}
}

func TestGreedyBipartiteNodeExclusive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var edges []WeightedEdge
		for i := 0; i < 40; i++ {
			edges = append(edges, WeightedEdge{
				E: graph.Edge{U: graph.NodeID(rng.Intn(10)), V: graph.NodeID(10 + rng.Intn(10))},
				W: rng.Float64(),
			})
		}
		out := GreedyBipartite(edges)
		seen := make(map[graph.NodeID]bool)
		for _, we := range out {
			if seen[we.E.U] || seen[we.E.V] {
				return false
			}
			seen[we.E.U], seen[we.E.V] = true, true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGreedyBipartiteEmptyInput(t *testing.T) {
	if got := GreedyBipartite(nil); len(got) != 0 {
		t.Errorf("GreedyBipartite(nil) = %v", got)
	}
}

// TestGreedyBMatchingIDsAligned pins the Edges/IDs contract across every
// scan order: IDs[i] is the position of Edges[i] in g.Edges(), so callers may
// mark matched edges in a []bool indexed by canonical edge id.
func TestGreedyBMatchingIDsAligned(t *testing.T) {
	g := gen.BarabasiAlbert(120, 3, 5)
	all := g.Edges()
	for _, order := range []EdgeOrder{InputOrder, ScarceFirst, DenseFirst} {
		m, err := GreedyBMatching(g, unitCaps(g.NumNodes(), 2), order)
		if err != nil {
			t.Fatalf("%v: %v", order, err)
		}
		if len(m.IDs) != len(m.Edges) {
			t.Fatalf("%v: %d ids for %d edges", order, len(m.IDs), len(m.Edges))
		}
		seen := make(map[int32]bool, len(m.IDs))
		for i, id := range m.IDs {
			if id < 0 || int(id) >= len(all) {
				t.Fatalf("%v: id %d outside [0,%d)", order, id, len(all))
			}
			if seen[id] {
				t.Fatalf("%v: duplicate edge id %d", order, id)
			}
			seen[id] = true
			if all[id] != m.Edges[i] {
				t.Fatalf("%v: IDs[%d]=%d names %v, Edges[%d]=%v", order, i, id, all[id], i, m.Edges[i])
			}
		}
	}
}
