// Package matching implements degree-constrained subgraph primitives: the
// linear-time greedy maximal b-matching of Hougardy (paper reference [25])
// used by BM2 Phase 1, a greedy maximum-weight bipartite matching, and the
// updatable max-priority queue that drives the paper's Algorithm 3.
package matching

// PQ is a max-priority queue with handle-based updates and removals, the
// structure Algorithm 3 needs: pop the highest-gain edge, re-weight edges
// adjacent to a node, discard edges that left the bipartite graph. The zero
// value is an empty queue.
type PQ[T any] struct {
	items []*Handle[T]
}

// Handle identifies an item inside a PQ for Update and Remove. A handle is
// invalidated once its item is popped or removed.
type Handle[T any] struct {
	Value    T
	priority float64
	index    int // position in the heap, -1 once detached
}

// Priority returns the handle's current priority.
func (h *Handle[T]) Priority() float64 { return h.priority }

// Valid reports whether the item is still queued.
func (h *Handle[T]) Valid() bool { return h.index >= 0 }

// Len returns the number of queued items.
func (q *PQ[T]) Len() int { return len(q.items) }

// Push inserts v with the given priority and returns its handle.
func (q *PQ[T]) Push(v T, priority float64) *Handle[T] {
	h := &Handle[T]{Value: v, priority: priority, index: len(q.items)}
	q.items = append(q.items, h)
	q.up(h.index)
	return h
}

// Pop removes and returns the highest-priority item. ok is false when the
// queue is empty.
func (q *PQ[T]) Pop() (v T, priority float64, ok bool) {
	if len(q.items) == 0 {
		return v, 0, false
	}
	h := q.items[0]
	q.detach(0)
	return h.Value, h.priority, true
}

// Peek returns the highest-priority item without removing it.
func (q *PQ[T]) Peek() (v T, priority float64, ok bool) {
	if len(q.items) == 0 {
		return v, 0, false
	}
	return q.items[0].Value, q.items[0].priority, true
}

// Update changes the priority of a queued item, restoring heap order. It
// panics on a detached handle, which indicates a use-after-pop bug.
func (q *PQ[T]) Update(h *Handle[T], priority float64) {
	if h.index < 0 {
		panic("matching: Update on detached handle")
	}
	old := h.priority
	h.priority = priority
	if priority > old {
		q.up(h.index)
	} else if priority < old {
		q.down(h.index)
	}
}

// Remove deletes a queued item. Removing an already-detached handle is a
// no-op so callers can discard edges without tracking pop state.
func (q *PQ[T]) Remove(h *Handle[T]) {
	if h.index < 0 {
		return
	}
	q.detach(h.index)
}

// detach removes the item at heap position i and restores heap order.
func (q *PQ[T]) detach(i int) {
	h := q.items[i]
	last := len(q.items) - 1
	if i != last {
		q.items[i] = q.items[last]
		q.items[i].index = i
	}
	q.items = q.items[:last]
	h.index = -1
	if i < len(q.items) {
		if !q.up(i) {
			q.down(i)
		}
	}
}

// up sifts position i toward the root; reports whether it moved.
func (q *PQ[T]) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if q.items[parent].priority >= q.items[i].priority {
			break
		}
		q.swap(parent, i)
		i = parent
		moved = true
	}
	return moved
}

// down sifts position i toward the leaves.
func (q *PQ[T]) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && q.items[l].priority > q.items[largest].priority {
			largest = l
		}
		if r < n && q.items[r].priority > q.items[largest].priority {
			largest = r
		}
		if largest == i {
			return
		}
		q.swap(i, largest)
		i = largest
	}
}

func (q *PQ[T]) swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].index = i
	q.items[j].index = j
}
