package matching

// Oracle test for the edge-id migration of GreedyBMatching: the seed
// implementation copied and stable-sorted []graph.Edge values, recomputing
// the capacity key inside every comparison; the production code now sorts
// int32 edge ids over precomputed keys. Both must select the identical edge
// sequence for any (graph, caps, order).

import (
	"math/rand"
	"sort"
	"testing"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

// seedGreedyBMatching is the pre-migration implementation, kept verbatim
// (minus the validation both share).
func seedGreedyBMatching(g *graph.Graph, caps []int, order EdgeOrder) *BMatching {
	edges := g.Edges()
	if order != InputOrder {
		edges = append([]graph.Edge(nil), edges...)
		key := func(e graph.Edge) int {
			cu, cv := caps[e.U], caps[e.V]
			if cu < cv {
				return cu
			}
			return cv
		}
		sort.SliceStable(edges, func(i, j int) bool {
			if order == ScarceFirst {
				return key(edges[i]) < key(edges[j])
			}
			return key(edges[i]) > key(edges[j])
		})
	}
	m := &BMatching{Degrees: make([]int, g.NumNodes())}
	for _, e := range edges {
		if m.Degrees[e.U] < caps[e.U] && m.Degrees[e.V] < caps[e.V] {
			m.Edges = append(m.Edges, e)
			m.Degrees[e.U]++
			m.Degrees[e.V]++
		}
	}
	return m
}

func TestGreedyBMatchingMatchesSeedImplementation(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"barabasi-albert":   gen.BarabasiAlbert(400, 3, 7),
		"erdos-renyi":       gen.ErdosRenyi(400, 900, 11),
		"planted-partition": gen.PlantedPartition(4, 100, 0.05, 0.005, 13),
	}
	for name, g := range graphs {
		rng := rand.New(rand.NewSource(17))
		caps := make([]int, g.NumNodes())
		for u := range caps {
			caps[u] = rng.Intn(1 + g.Degree(graph.NodeID(u)))
		}
		for _, order := range []EdgeOrder{InputOrder, ScarceFirst, DenseFirst} {
			got, err := GreedyBMatching(g, caps, order)
			if err != nil {
				t.Fatal(err)
			}
			want := seedGreedyBMatching(g, caps, order)
			if len(got.Edges) != len(want.Edges) {
				t.Fatalf("%s/%v: matched %d edges, oracle %d", name, order, len(got.Edges), len(want.Edges))
			}
			for i := range got.Edges {
				if got.Edges[i] != want.Edges[i] {
					t.Fatalf("%s/%v: edge %d = %v, oracle %v", name, order, i, got.Edges[i], want.Edges[i])
				}
			}
			for u := range got.Degrees {
				if got.Degrees[u] != want.Degrees[u] {
					t.Fatalf("%s/%v: degree[%d] = %d, oracle %d", name, order, u, got.Degrees[u], want.Degrees[u])
				}
			}
			// IDs must point back at the matched edges.
			all := g.Edges()
			for i, id := range got.IDs {
				if all[id] != got.Edges[i] {
					t.Fatalf("%s/%v: IDs[%d] = %d resolves to %v, edge is %v", name, order, i, id, all[id], got.Edges[i])
				}
			}
		}
	}
}
