package matching

// FlatPQ is the flat, index-addressed counterpart of PQ: items are dense
// int32 ids (canonical edge ids in practice), priorities and heap positions
// live in plain slices, and no per-item Handle is allocated. It exists for
// the shedding core's hot paths — BM2's Algorithm 3 above all — where the
// pointer-handle PQ pays an allocation per push and a cache miss per sift.
//
// FlatPQ deliberately replicates PQ's heap dynamics instruction for
// instruction (binary sift with the same comparison directions, detach by
// swap-with-last): an algorithm that issues the same Push/Pop/Update/Remove
// sequence with the same priorities pops the same ids in the same order,
// bit for bit. That equivalence — pinned by TestFlatPQMatchesPQ — is what
// lets BM2 swap data structures while keeping its output identical to the
// pre-flat implementation even when priorities tie. Determinism under ties
// therefore comes from the caller's fixed operation sequence (edges are
// scanned in ascending canonical id), not from an id tie-break inside the
// heap.
//
// The zero value is an empty queue. Ids may be sparse; internal arrays grow
// to the largest id ever pushed.
type FlatPQ struct {
	heap []int32   // item ids in heap order
	pos  []int32   // id -> heap position, -1 once detached
	pri  []float64 // id -> current priority

	// Stats, when non-nil, tallies the queue's operations. It never affects
	// the heap dynamics — the popped-id order is identical with Stats set or
	// nil — and the nil default costs one predictable branch per operation.
	Stats *PQStats
}

// PQStats counts FlatPQ operations for observability. Attach one via the
// Stats field before use; read the totals after the algorithm finishes.
type PQStats struct {
	// Pushes counts Push calls.
	Pushes int64
	// Pops counts successful Pop calls (an empty-queue Pop is not counted).
	Pops int64
	// Updates counts Update calls.
	Updates int64
	// Removes counts Remove calls that detached a queued id (no-op removes
	// of already-detached ids are not counted).
	Removes int64
}

// Len returns the number of queued items.
func (q *FlatPQ) Len() int { return len(q.heap) }

// Contains reports whether id is currently queued.
func (q *FlatPQ) Contains(id int32) bool {
	return int(id) < len(q.pos) && q.pos[id] >= 0
}

// Priority returns id's most recent priority; meaningful only for ids that
// have been pushed.
func (q *FlatPQ) Priority(id int32) float64 { return q.pri[id] }

// grow extends the id-indexed arrays to cover id.
func (q *FlatPQ) grow(id int32) {
	for int(id) >= len(q.pos) {
		q.pos = append(q.pos, -1)
		q.pri = append(q.pri, 0)
	}
}

// Push inserts id with the given priority. Pushing an id that is already
// queued panics, which indicates a bookkeeping bug in the caller; a popped
// or removed id may be pushed again.
func (q *FlatPQ) Push(id int32, priority float64) {
	q.grow(id)
	if q.pos[id] >= 0 {
		panic("matching: FlatPQ.Push of an already-queued id")
	}
	q.pri[id] = priority
	q.pos[id] = int32(len(q.heap))
	q.heap = append(q.heap, id)
	q.up(len(q.heap) - 1)
	if q.Stats != nil {
		q.Stats.Pushes++
	}
}

// Pop removes and returns the highest-priority id. ok is false when the
// queue is empty.
func (q *FlatPQ) Pop() (id int32, priority float64, ok bool) {
	if len(q.heap) == 0 {
		return 0, 0, false
	}
	id = q.heap[0]
	q.detach(0)
	if q.Stats != nil {
		q.Stats.Pops++
	}
	return id, q.pri[id], true
}

// Update changes the priority of a queued id, restoring heap order. It
// panics on a detached id, which indicates a use-after-pop bug.
func (q *FlatPQ) Update(id int32, priority float64) {
	if !q.Contains(id) {
		panic("matching: FlatPQ.Update on detached id")
	}
	old := q.pri[id]
	q.pri[id] = priority
	if priority > old {
		q.up(int(q.pos[id]))
	} else if priority < old {
		q.down(int(q.pos[id]))
	}
	if q.Stats != nil {
		q.Stats.Updates++
	}
}

// Remove deletes a queued id. Removing an already-detached id is a no-op so
// callers can discard edges without tracking pop state.
func (q *FlatPQ) Remove(id int32) {
	if !q.Contains(id) {
		return
	}
	q.detach(int(q.pos[id]))
	if q.Stats != nil {
		q.Stats.Removes++
	}
}

// detach removes the item at heap position i and restores heap order,
// mirroring PQ.detach exactly.
func (q *FlatPQ) detach(i int) {
	id := q.heap[i]
	last := len(q.heap) - 1
	if i != last {
		q.heap[i] = q.heap[last]
		q.pos[q.heap[i]] = int32(i)
	}
	q.heap = q.heap[:last]
	q.pos[id] = -1
	if i < len(q.heap) {
		if !q.up(i) {
			q.down(i)
		}
	}
}

// up sifts position i toward the root; reports whether it moved.
func (q *FlatPQ) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if q.pri[q.heap[parent]] >= q.pri[q.heap[i]] {
			break
		}
		q.swap(parent, i)
		i = parent
		moved = true
	}
	return moved
}

// down sifts position i toward the leaves.
func (q *FlatPQ) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && q.pri[q.heap[l]] > q.pri[q.heap[largest]] {
			largest = l
		}
		if r < n && q.pri[q.heap[r]] > q.pri[q.heap[largest]] {
			largest = r
		}
		if largest == i {
			return
		}
		q.swap(i, largest)
		i = largest
	}
}

func (q *FlatPQ) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.pos[q.heap[i]] = int32(i)
	q.pos[q.heap[j]] = int32(j)
}
