package matching

import (
	"math/rand"
	"sort"
	"testing"
)

func TestFlatPQBasicOrder(t *testing.T) {
	var q FlatPQ
	for id, pri := range []float64{3, 1, 4, 1.5, 9, 2.6} {
		q.Push(int32(id), pri)
	}
	if q.Len() != 6 {
		t.Fatalf("Len = %d, want 6", q.Len())
	}
	wantIDs := []int32{4, 2, 0, 5, 3, 1}
	for _, want := range wantIDs {
		id, _, ok := q.Pop()
		if !ok || id != want {
			t.Fatalf("Pop = %d (ok=%v), want %d", id, ok, want)
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue reported ok")
	}
}

func TestFlatPQUpdateRemoveContains(t *testing.T) {
	var q FlatPQ
	q.Push(0, 1)
	q.Push(1, 2)
	q.Push(2, 3)
	q.Update(0, 10)
	if id, pri, _ := q.Pop(); id != 0 || pri != 10 {
		t.Fatalf("after Update, Pop = (%d, %v), want (0, 10)", id, pri)
	}
	if q.Contains(0) {
		t.Error("popped id still Contains")
	}
	q.Remove(2)
	if q.Contains(2) {
		t.Error("removed id still Contains")
	}
	q.Remove(2) // no-op on detached id
	if id, _, _ := q.Pop(); id != 1 {
		t.Fatalf("Pop = %d, want 1", id)
	}
	// A popped id may be pushed again.
	q.Push(1, 5)
	if !q.Contains(1) || q.Priority(1) != 5 {
		t.Error("re-push of a popped id failed")
	}
}

func TestFlatPQPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	var q FlatPQ
	q.Push(3, 1)
	assertPanics("double Push", func() { q.Push(3, 2) })
	assertPanics("Update on detached id", func() { q.Update(7, 1) })
}

// TestFlatPQMatchesPQ pins the equivalence contract FlatPQ is built on: for
// any operation sequence, FlatPQ pops the same ids in the same order as the
// pointer-handle PQ — including among tied priorities, where the order is
// decided purely by the shared heap dynamics. BM2's bit-identical migration
// rests on this.
func TestFlatPQMatchesPQ(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		var flat FlatPQ
		var ref PQ[int32]
		handles := map[int32]*Handle[int32]{}
		next := int32(0)
		// Coarse priorities force frequent ties.
		randPri := func() float64 { return float64(rng.Intn(8)) / 2 }
		queued := func() []int32 {
			ids := make([]int32, 0, len(handles))
			for id, h := range handles {
				if h.Valid() {
					ids = append(ids, id)
				}
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			return ids
		}
		for op := 0; op < 400; op++ {
			switch r := rng.Intn(10); {
			case r < 4: // push
				pri := randPri()
				flat.Push(next, pri)
				handles[next] = ref.Push(next, pri)
				next++
			case r < 6: // pop
				fid, fpri, fok := flat.Pop()
				rid, rpri, rok := ref.Pop()
				if fok != rok || (fok && (fid != rid || fpri != rpri)) {
					t.Fatalf("trial %d op %d: flat Pop (%d,%v,%v) != ref (%d,%v,%v)",
						trial, op, fid, fpri, fok, rid, rpri, rok)
				}
				if fok {
					delete(handles, fid)
				}
			case r < 8: // update a random queued id
				ids := queued()
				if len(ids) == 0 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				pri := randPri()
				flat.Update(id, pri)
				ref.Update(handles[id], pri)
			default: // remove a random queued id
				ids := queued()
				if len(ids) == 0 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				flat.Remove(id)
				ref.Remove(handles[id])
				delete(handles, id)
			}
			if flat.Len() != ref.Len() {
				t.Fatalf("trial %d op %d: Len %d != %d", trial, op, flat.Len(), ref.Len())
			}
		}
		// Drain both completely.
		for {
			fid, fpri, fok := flat.Pop()
			rid, rpri, rok := ref.Pop()
			if fok != rok || fid != rid || fpri != rpri {
				t.Fatalf("trial %d drain: flat (%d,%v,%v) != ref (%d,%v,%v)",
					trial, fid, fpri, fok, rid, rpri, rok)
			}
			if !fok {
				break
			}
		}
	}
}
