package matching

import (
	"testing"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

// The MapIndexed/CSRIndexed pair compares the seed-era edge-struct sort
// (key recomputed per comparison) against the production id sort with
// precomputed keys; bench-shedding derives the speedup from the pair.

func benchCaps(g *graph.Graph, p float64) []int {
	caps := make([]int, g.NumNodes())
	for u := range caps {
		caps[u] = int(p * float64(g.Degree(graph.NodeID(u))))
	}
	return caps
}

func BenchmarkGreedyBMatchingMapIndexed(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 4, 1)
	caps := benchCaps(g, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seedGreedyBMatching(g, caps, ScarceFirst)
	}
}

func BenchmarkGreedyBMatchingCSRIndexed(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 4, 1)
	caps := benchCaps(g, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GreedyBMatching(g, caps, ScarceFirst); err != nil {
			b.Fatal(err)
		}
	}
}
