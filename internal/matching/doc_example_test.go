package matching_test

import (
	"fmt"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
	"edgeshed/internal/matching"
)

// ExampleGreedyBMatching computes a degree-constrained subgraph of a star:
// the hub's capacity limits how many spokes survive.
func ExampleGreedyBMatching() {
	g := gen.Star(6) // hub 0 with 5 spokes
	caps := []int{2, 1, 1, 1, 1, 1}
	m, err := matching.GreedyBMatching(g, caps, matching.InputOrder)
	if err != nil {
		panic(err)
	}
	fmt.Println("matched edges:", len(m.Edges))
	fmt.Println("hub degree:", m.Degrees[0])
	// Output:
	// matched edges: 2
	// hub degree: 2
}

// ExamplePQ shows the updatable max-priority queue that drives the paper's
// Algorithm 3.
func ExamplePQ() {
	var q matching.PQ[string]
	q.Push("low", 1)
	h := q.Push("mid", 5)
	q.Push("high", 9)
	q.Update(h, 20) // re-weighting, as when a node's discrepancy shifts
	for {
		v, _, ok := q.Pop()
		if !ok {
			break
		}
		fmt.Println(v)
	}
	// Output:
	// mid
	// high
	// low
}

// ExampleGreedyBipartite matches weighted bipartite edges greedily.
func ExampleGreedyBipartite() {
	edges := []matching.WeightedEdge{
		{E: graph.Edge{U: 0, V: 10}, W: 3},
		{E: graph.Edge{U: 0, V: 11}, W: 2},
		{E: graph.Edge{U: 1, V: 10}, W: 1},
	}
	for _, we := range matching.GreedyBipartite(edges) {
		fmt.Println(we.E, we.W)
	}
	// Output:
	// (0,10) 3
}
