package matching

import (
	"fmt"
	"sort"

	"edgeshed/internal/graph"
)

// EdgeOrder selects the scan order for the greedy b-matching. The paper's
// Algorithm 2 scans edges in input order; the alternatives exist for the
// ablation study in DESIGN.md §5.5.
type EdgeOrder int

const (
	// InputOrder scans g.Edges() as stored (sorted by endpoint ids), the
	// literal reading of Algorithm 2 lines 4-7.
	InputOrder EdgeOrder = iota
	// ScarceFirst scans edges by ascending minimum endpoint capacity, giving
	// constrained nodes first pick of their edges.
	ScarceFirst
	// DenseFirst scans edges by descending minimum endpoint capacity.
	DenseFirst
)

// String implements fmt.Stringer.
func (o EdgeOrder) String() string {
	switch o {
	case InputOrder:
		return "input"
	case ScarceFirst:
		return "scarce-first"
	case DenseFirst:
		return "dense-first"
	}
	return fmt.Sprintf("EdgeOrder(%d)", int(o))
}

// BMatching is the result of a greedy maximal b-matching.
type BMatching struct {
	// Edges are the matched edges, in selection order.
	Edges []graph.Edge
	// IDs are the matched edges' canonical ids — positions in g.Edges() —
	// aligned with Edges, so callers can mark membership in a []bool instead
	// of hashing edges into a map.
	IDs []int32
	// Degrees[u] is u's degree within the matching.
	Degrees []int
}

// GreedyBMatching computes a maximal b-matching of g under the capacity
// vector caps: it scans edges in the given order and keeps edge (u, v)
// whenever both endpoints are below capacity (Algorithm 2, lines 4-7;
// Hougardy's linear-time 1/2-approximation of maximum b-matching). caps must
// have one entry per node; negative capacities are rejected.
func GreedyBMatching(g *graph.Graph, caps []int, order EdgeOrder) (*BMatching, error) {
	if len(caps) != g.NumNodes() {
		return nil, fmt.Errorf("matching: %d capacities for %d nodes", len(caps), g.NumNodes())
	}
	for u, c := range caps {
		if c < 0 {
			return nil, fmt.Errorf("matching: negative capacity %d at node %d", c, u)
		}
	}
	// Scan a permutation of edge ids rather than copied edges, so each kept
	// edge's canonical id (its position in g.Edges()) rides along for free.
	edges := g.Edges()
	scan := make([]int32, len(edges))
	for i := range scan {
		scan[i] = int32(i)
	}
	if order != InputOrder {
		// Precompute each edge's key once: the stable sort performs
		// O(m log m) comparisons, and recomputing min(caps) per comparison
		// doubles its memory traffic.
		key := make([]int32, len(edges))
		for id, e := range edges {
			cu, cv := caps[e.U], caps[e.V]
			if cu > cv {
				cu = cv
			}
			key[id] = int32(cu)
		}
		sort.SliceStable(scan, func(i, j int) bool {
			if order == ScarceFirst {
				return key[scan[i]] < key[scan[j]]
			}
			return key[scan[i]] > key[scan[j]]
		})
	}
	m := &BMatching{Degrees: make([]int, g.NumNodes())}
	for _, id := range scan {
		e := edges[id]
		if m.Degrees[e.U] < caps[e.U] && m.Degrees[e.V] < caps[e.V] {
			m.Edges = append(m.Edges, e)
			m.IDs = append(m.IDs, id)
			m.Degrees[e.U]++
			m.Degrees[e.V]++
		}
	}
	return m, nil
}

// VerifyMaximal reports whether m is a maximal b-matching of g under caps:
// every matched edge exists in g and respects both capacities, and no
// unmatched edge of g could be added without violating one. Membership is
// tracked in a []bool over canonical edge ids (resolved through the CSR
// view) instead of a map[Edge] set. It is O(|E| log deg) and intended for
// tests.
func (m *BMatching) VerifyMaximal(g *graph.Graph, caps []int) error {
	csr := g.CSR()
	in := make([]bool, g.NumEdges())
	deg := make([]int, g.NumNodes())
	for _, e := range m.Edges {
		id := csr.EdgeIDOf(e.U, e.V)
		if id < 0 {
			return fmt.Errorf("matching: matched edge %v not present in graph", e)
		}
		in[id] = true
		deg[e.U]++
		deg[e.V]++
	}
	for u := range deg {
		if deg[u] != m.Degrees[u] {
			return fmt.Errorf("matching: recorded degree %d != actual %d at node %d", m.Degrees[u], deg[u], u)
		}
		if deg[u] > caps[u] {
			return fmt.Errorf("matching: node %d degree %d exceeds capacity %d", u, deg[u], caps[u])
		}
	}
	for i, e := range g.Edges() {
		if in[i] {
			continue
		}
		if deg[e.U] < caps[e.U] && deg[e.V] < caps[e.V] {
			return fmt.Errorf("matching: not maximal, edge %v is addable", e)
		}
	}
	return nil
}

// WeightedEdge is an edge with a weight, input to the bipartite matcher.
type WeightedEdge struct {
	E graph.Edge
	W float64
}

// GreedyBipartite computes a greedy maximum-weight matching of a bipartite
// edge set where every node may be matched at most once: edges are taken in
// non-increasing weight order, skipping edges with an already-matched
// endpoint. This is the classic 1/2-approximation; BM2's Algorithm 3 in
// internal/core extends it with capacity re-weighting on the A side.
func GreedyBipartite(edges []WeightedEdge) []WeightedEdge {
	sorted := append([]WeightedEdge(nil), edges...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].W > sorted[j].W })
	// Matched flags live in a []bool over the dense node-id range instead of
	// a map: ids are dense everywhere in this repository, so the flat array
	// is both smaller and branch-predictable.
	maxID := graph.NodeID(-1)
	for _, we := range edges {
		if we.E.U > maxID {
			maxID = we.E.U
		}
		if we.E.V > maxID {
			maxID = we.E.V
		}
	}
	used := make([]bool, maxID+1)
	var out []WeightedEdge
	for _, we := range sorted {
		if used[we.E.U] || used[we.E.V] {
			continue
		}
		used[we.E.U] = true
		used[we.E.V] = true
		out = append(out, we)
	}
	return out
}
