package matching

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPQBasicOrder(t *testing.T) {
	var q PQ[string]
	q.Push("low", 1)
	q.Push("high", 9)
	q.Push("mid", 5)
	want := []string{"high", "mid", "low"}
	for _, w := range want {
		v, _, ok := q.Pop()
		if !ok || v != w {
			t.Fatalf("Pop = %q (%v), want %q", v, ok, w)
		}
	}
	if _, _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue returned ok")
	}
}

func TestPQPeek(t *testing.T) {
	var q PQ[int]
	if _, _, ok := q.Peek(); ok {
		t.Error("Peek on empty returned ok")
	}
	q.Push(7, 3)
	q.Push(8, 4)
	v, pri, ok := q.Peek()
	if !ok || v != 8 || pri != 4 {
		t.Errorf("Peek = %d/%v/%v, want 8/4/true", v, pri, ok)
	}
	if q.Len() != 2 {
		t.Errorf("Peek consumed an item: Len = %d", q.Len())
	}
}

func TestPQUpdateRaise(t *testing.T) {
	var q PQ[int]
	q.Push(1, 1)
	h := q.Push(2, 2)
	q.Push(3, 3)
	q.Update(h, 10)
	v, pri, _ := q.Pop()
	if v != 2 || pri != 10 {
		t.Errorf("after raise, Pop = %d/%v, want 2/10", v, pri)
	}
}

func TestPQUpdateLower(t *testing.T) {
	var q PQ[int]
	h := q.Push(1, 10)
	q.Push(2, 5)
	q.Update(h, 0)
	v, _, _ := q.Pop()
	if v != 2 {
		t.Errorf("after lower, Pop = %d, want 2", v)
	}
}

func TestPQRemove(t *testing.T) {
	var q PQ[int]
	q.Push(1, 1)
	h := q.Push(2, 2)
	q.Push(3, 3)
	q.Remove(h)
	if q.Len() != 2 {
		t.Fatalf("Len after Remove = %d, want 2", q.Len())
	}
	if h.Valid() {
		t.Error("handle still valid after Remove")
	}
	q.Remove(h) // second remove is a no-op
	got := []int{}
	for {
		v, _, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, v)
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 1 {
		t.Errorf("remaining pops = %v, want [3 1]", got)
	}
}

func TestPQUpdateDetachedPanics(t *testing.T) {
	var q PQ[int]
	h := q.Push(1, 1)
	q.Pop()
	defer func() {
		if recover() == nil {
			t.Error("Update on popped handle did not panic")
		}
	}()
	q.Update(h, 5)
}

func TestPQHandlePriority(t *testing.T) {
	var q PQ[int]
	h := q.Push(1, 4.5)
	if h.Priority() != 4.5 {
		t.Errorf("Priority = %v, want 4.5", h.Priority())
	}
	q.Update(h, 2.5)
	if h.Priority() != 2.5 {
		t.Errorf("Priority after update = %v, want 2.5", h.Priority())
	}
}

// TestPQHeapProperty exercises random interleavings of push, pop, update and
// remove and checks pops come out in non-increasing priority order between
// mutations.
func TestPQHeapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q PQ[int]
		var handles []*Handle[int]
		for op := 0; op < 300; op++ {
			switch rng.Intn(4) {
			case 0, 1:
				handles = append(handles, q.Push(op, rng.Float64()*100))
			case 2:
				if len(handles) > 0 {
					h := handles[rng.Intn(len(handles))]
					if h.Valid() {
						q.Update(h, rng.Float64()*100)
					}
				}
			case 3:
				if len(handles) > 0 {
					q.Remove(handles[rng.Intn(len(handles))])
				}
			}
		}
		// Drain: priorities must be non-increasing.
		prev := 1e18
		for {
			_, pri, ok := q.Pop()
			if !ok {
				break
			}
			if pri > prev {
				return false
			}
			prev = pri
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPQDrainMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var q PQ[int]
	var want []float64
	for i := 0; i < 500; i++ {
		p := rng.Float64()
		q.Push(i, p)
		want = append(want, p)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(want)))
	for i, w := range want {
		_, pri, ok := q.Pop()
		if !ok || pri != w {
			t.Fatalf("pop %d: got %v/%v, want %v", i, pri, ok, w)
		}
	}
}
