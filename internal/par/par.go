// Package par provides the worker-count resolution and static work-sharding
// primitives shared by the repository's parallel kernels (centrality,
// analysis, tasks).
//
// Every kernel built on this package follows one determinism discipline, the
// one the Brandes rewrite established:
//
//   - Work is assigned to workers statically — by stride (worker w takes
//     items w, w+workers, …) or by contiguous Blocks — never through a
//     channel, so the partition is a pure function of (items, workers).
//   - Outputs that are per-item independent (one array slot per node or
//     edge) are written directly: the value of each slot does not depend on
//     the partition at all.
//   - Reductions over integers merge per-worker partials with exact
//     arithmetic, so any merge order gives the same bits.
//   - Reductions over floating point accumulate into a fixed number of
//     Shards keyed by item index, not by worker, and merge in shard order.
//     The summation tree is then a function of the item set alone, making
//     the result bit-identical at any worker count.
//
// Together these rules make every kernel's output a deterministic function
// of (input, options) — the worker count only changes wall-clock time.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Shards is the fixed accumulation-shard count for deterministic
// floating-point reductions: item i always accumulates into shard
// i mod Shards, whatever the worker count, and per-shard partials merge in
// shard index order. Kernels that shard this way cannot exploit more than
// Shards workers, and hold Shards copies of their accumulator arrays while
// running; 16 keeps that memory overhead moderate while covering common
// core counts.
const Shards = 16

// Workers resolves a requested worker count against an item count:
// requested <= 0 selects runtime.GOMAXPROCS(0), and the result is clamped
// to [1, max(items, 1)] so callers can launch exactly that many goroutines
// without spawning idle ones.
func Workers(requested, items int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// SlotObserver is how par reports worker-slot identity to an observability
// layer: SlotBegin(w, workers) fires when slot w of a workers-wide region
// starts and SlotEnd when it finishes, on the slot's own goroutine. par
// stays import-free of obs; obs installs its flight recorder here
// (DESIGN.md §11).
//
// Implementations must not feed back into worker scheduling or kernel
// state — the bit-identity discipline above depends on observation staying
// read-only.
type SlotObserver interface {
	SlotBegin(w, workers int)
	SlotEnd(w, workers int)
}

// slotObsBox wraps the observer so atomic.Value always stores one concrete
// type (a requirement of Value.Store), including the nil observer.
type slotObsBox struct{ o SlotObserver }

var slotObs atomic.Value // holds slotObsBox

// SetSlotObserver installs o (nil uninstalls) as the process-wide slot
// observer and returns the previous one, so a session can restore its
// predecessor on Close. The load on the hot path is one atomic read; with
// no observer installed Run and Blocks behave exactly as before.
func SetSlotObserver(o SlotObserver) (prev SlotObserver) {
	if b, ok := slotObs.Load().(slotObsBox); ok {
		prev = b.o
	}
	slotObs.Store(slotObsBox{o: o})
	return prev
}

// slotObserver returns the installed observer, or nil.
func slotObserver() SlotObserver {
	if b, ok := slotObs.Load().(slotObsBox); ok {
		return b.o
	}
	return nil
}

// Run invokes fn(w) for every worker index w in [0, workers) and waits for
// all of them. With workers == 1 it calls fn inline, so serial runs pay no
// goroutine or synchronization cost. fn receives only its worker index;
// sharding is the caller's business (stride over items, or use Blocks).
//
// If a SlotObserver is installed, each slot's run is bracketed with
// SlotBegin/SlotEnd on the slot's goroutine (the inline workers == 1 path
// included), which is how the obs trace export attributes time to workers.
func Run(workers int, fn func(w int)) {
	obs := slotObserver()
	if workers <= 1 {
		if obs != nil {
			obs.SlotBegin(0, 1)
			defer obs.SlotEnd(0, 1)
		}
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			if obs != nil {
				obs.SlotBegin(w, workers)
				defer obs.SlotEnd(w, workers)
			}
			fn(w)
		}(w)
	}
	wg.Wait()
}

// Block returns the half-open range [lo, hi) of the w-th of workers
// contiguous, near-equal blocks over n items. The first n mod workers
// blocks are one item larger; the union of all blocks is exactly [0, n).
func Block(n, workers, w int) (lo, hi int) {
	size := n / workers
	rem := n % workers
	lo = w*size + min(w, rem)
	hi = lo + size
	if w < rem {
		hi++
	}
	return lo, hi
}

// Blocks partitions n items into workers contiguous near-equal ranges and
// runs fn(w, lo, hi) on each concurrently, waiting for all. It is the
// sharding of choice for per-item-independent output arrays: each worker
// writes a disjoint contiguous slice, which is race-free and
// cache-friendly, and the values are partition-independent by construction.
// With workers <= 1 it calls fn(0, 0, n) inline — no goroutines, no
// closure allocation — so kernels that resolve to a single worker pay
// nothing for routing through Blocks.
func Blocks(n, workers int, fn func(w, lo, hi int)) {
	if workers <= 1 {
		if n > 0 {
			if obs := slotObserver(); obs != nil {
				obs.SlotBegin(0, 1)
				defer obs.SlotEnd(0, 1)
			}
			fn(0, 0, n)
		}
		return
	}
	Run(workers, func(w int) {
		lo, hi := Block(n, workers, w)
		if lo < hi {
			fn(w, lo, hi)
		}
	})
}
