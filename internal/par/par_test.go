package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	cases := []struct {
		requested, items, want int
	}{
		{0, 100, min(gmp, 100)},  // default: GOMAXPROCS
		{-3, 100, min(gmp, 100)}, // negative: GOMAXPROCS
		{4, 100, 4},              // explicit
		{8, 3, 3},                // clamped to items
		{5, 0, 1},                // never below 1
		{0, 0, 1},                // empty work, default workers
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.items); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.items, got, c.want)
		}
	}
}

func TestRunCoversAllWorkers(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		seen := make([]int32, workers)
		Run(workers, func(w int) {
			atomic.AddInt32(&seen[w], 1)
		})
		for w, c := range seen {
			if c != 1 {
				t.Errorf("workers=%d: fn(%d) called %d times, want 1", workers, w, c)
			}
		}
	}
}

func TestBlockPartitions(t *testing.T) {
	for _, n := range []int{0, 1, 5, 16, 17, 100} {
		for _, workers := range []int{1, 2, 3, 7, 16} {
			covered := make([]int, n)
			prevHi := 0
			for w := 0; w < workers; w++ {
				lo, hi := Block(n, workers, w)
				if lo != prevHi {
					t.Fatalf("n=%d workers=%d: block %d starts at %d, want %d", n, workers, w, lo, prevHi)
				}
				if hi < lo {
					t.Fatalf("n=%d workers=%d: block %d inverted [%d, %d)", n, workers, w, lo, hi)
				}
				for i := lo; i < hi; i++ {
					covered[i]++
				}
				prevHi = hi
			}
			if prevHi != n {
				t.Fatalf("n=%d workers=%d: blocks end at %d, want %d", n, workers, prevHi, n)
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: item %d covered %d times", n, workers, i, c)
				}
			}
		}
	}
}

func TestBlocksVisitsEveryItemOnce(t *testing.T) {
	const n = 103
	for _, workers := range []int{1, 2, 4, 7} {
		visits := make([]int32, n)
		Blocks(n, workers, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, c := range visits {
			if c != 1 {
				t.Errorf("workers=%d: item %d visited %d times, want 1", workers, i, c)
			}
		}
	}
}

// TestSerialPathsDoNotAllocate pins the workers==1 short circuits: a
// serial Run or Blocks must call fn inline with zero heap allocations —
// no WaitGroup, no goroutines, no per-worker closures.
func TestSerialPathsDoNotAllocate(t *testing.T) {
	var sink int
	fn := func(w int) { sink += w }
	if allocs := testing.AllocsPerRun(100, func() {
		Run(1, fn)
	}); allocs != 0 {
		t.Errorf("Run(1, fn): %v allocs per run, want 0", allocs)
	}
	bfn := func(w, lo, hi int) { sink += hi - lo }
	if allocs := testing.AllocsPerRun(100, func() {
		Blocks(103, 1, bfn)
	}); allocs != 0 {
		t.Errorf("Blocks(103, 1, fn): %v allocs per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		Blocks(0, 1, bfn)
	}); allocs != 0 {
		t.Errorf("Blocks(0, 1, fn): %v allocs per run, want 0", allocs)
	}
	_ = sink
}

// TestBlocksSerialCoversAllItems pins the inline path's range: one call,
// full [0, n), and no call at all for n == 0.
func TestBlocksSerialCoversAllItems(t *testing.T) {
	var calls, gotLo, gotHi int
	Blocks(57, 1, func(w, lo, hi int) {
		calls++
		gotLo, gotHi = lo, hi
		if w != 0 {
			t.Errorf("serial Blocks passed worker index %d, want 0", w)
		}
	})
	if calls != 1 || gotLo != 0 || gotHi != 57 {
		t.Errorf("Blocks(57, 1): %d calls covering [%d, %d), want 1 call covering [0, 57)", calls, gotLo, gotHi)
	}
	Blocks(0, 1, func(w, lo, hi int) {
		t.Errorf("Blocks(0, 1) invoked fn on empty range [%d, %d)", lo, hi)
	})
}

func TestBlocksSkipsEmptyRanges(t *testing.T) {
	calls := int32(0)
	Blocks(2, 7, func(w, lo, hi int) {
		atomic.AddInt32(&calls, 1)
		if lo >= hi {
			t.Errorf("empty range [%d, %d) passed to fn", lo, hi)
		}
	})
	if calls != 2 {
		t.Errorf("fn called %d times for 2 items, want 2", calls)
	}
}

// countingObserver records SlotBegin/SlotEnd calls per slot.
type countingObserver struct {
	begins, ends [64]int32
	workersSeen  int32
}

func (c *countingObserver) SlotBegin(w, workers int) {
	atomic.AddInt32(&c.begins[w], 1)
	atomic.StoreInt32(&c.workersSeen, int32(workers))
}

func (c *countingObserver) SlotEnd(w, workers int) {
	atomic.AddInt32(&c.ends[w], 1)
}

// TestSlotObserver pins the worker-slot identity seam: an installed
// observer sees exactly one SlotBegin/SlotEnd pair per slot carrying the
// region's worker count, on both the inline (workers=1) and goroutine
// paths, and SetSlotObserver returns the previous observer for restoring.
func TestSlotObserver(t *testing.T) {
	for _, workers := range []int{1, 4} {
		obs := &countingObserver{}
		prev := SetSlotObserver(obs)
		Run(workers, func(w int) {})
		SetSlotObserver(prev)
		for w := 0; w < workers; w++ {
			if obs.begins[w] != 1 || obs.ends[w] != 1 {
				t.Errorf("workers=%d slot %d: begins=%d ends=%d, want 1/1",
					workers, w, obs.begins[w], obs.ends[w])
			}
		}
		if obs.begins[workers] != 0 {
			t.Errorf("workers=%d: phantom slot %d observed", workers, workers)
		}
		if obs.workersSeen != int32(workers) {
			t.Errorf("workers=%d: observer told workers=%d", workers, obs.workersSeen)
		}
	}
}

// TestSlotObserverBlocks pins the Blocks-path bracketing and that an
// uninstalled observer stays silent.
func TestSlotObserverBlocks(t *testing.T) {
	obs := &countingObserver{}
	prev := SetSlotObserver(obs)
	Blocks(100, 4, func(w, lo, hi int) {})
	SetSlotObserver(prev)
	var total int32
	for w := 0; w < 4; w++ {
		total += obs.begins[w]
		if obs.begins[w] != obs.ends[w] {
			t.Errorf("slot %d: begins=%d ends=%d unbalanced", w, obs.begins[w], obs.ends[w])
		}
	}
	if total == 0 {
		t.Error("Blocks bracketed no slots")
	}
	// After restore, the old (nil) observer is back: no further counts.
	before := obs.begins[0]
	Run(2, func(w int) {})
	if obs.begins[0] != before {
		t.Error("uninstalled observer still sees slots")
	}
}

// TestSetSlotObserverReturnsPrev pins the save/restore contract used by
// obs.Session: install A, install B over it (getting A back), restore.
func TestSetSlotObserverReturnsPrev(t *testing.T) {
	a := &countingObserver{}
	orig := SetSlotObserver(a)
	b := &countingObserver{}
	if got := SetSlotObserver(b); got != SlotObserver(a) {
		t.Fatalf("SetSlotObserver returned %v, want the prior observer", got)
	}
	Run(2, func(w int) {})
	SetSlotObserver(orig)
	if a.begins[0] != 0 || b.begins[0] != 1 {
		t.Fatalf("replaced observer saw traffic: a=%d b=%d", a.begins[0], b.begins[0])
	}
}
