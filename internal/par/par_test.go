package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	cases := []struct {
		requested, items, want int
	}{
		{0, 100, min(gmp, 100)},  // default: GOMAXPROCS
		{-3, 100, min(gmp, 100)}, // negative: GOMAXPROCS
		{4, 100, 4},              // explicit
		{8, 3, 3},                // clamped to items
		{5, 0, 1},                // never below 1
		{0, 0, 1},                // empty work, default workers
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.items); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.items, got, c.want)
		}
	}
}

func TestRunCoversAllWorkers(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		seen := make([]int32, workers)
		Run(workers, func(w int) {
			atomic.AddInt32(&seen[w], 1)
		})
		for w, c := range seen {
			if c != 1 {
				t.Errorf("workers=%d: fn(%d) called %d times, want 1", workers, w, c)
			}
		}
	}
}

func TestBlockPartitions(t *testing.T) {
	for _, n := range []int{0, 1, 5, 16, 17, 100} {
		for _, workers := range []int{1, 2, 3, 7, 16} {
			covered := make([]int, n)
			prevHi := 0
			for w := 0; w < workers; w++ {
				lo, hi := Block(n, workers, w)
				if lo != prevHi {
					t.Fatalf("n=%d workers=%d: block %d starts at %d, want %d", n, workers, w, lo, prevHi)
				}
				if hi < lo {
					t.Fatalf("n=%d workers=%d: block %d inverted [%d, %d)", n, workers, w, lo, hi)
				}
				for i := lo; i < hi; i++ {
					covered[i]++
				}
				prevHi = hi
			}
			if prevHi != n {
				t.Fatalf("n=%d workers=%d: blocks end at %d, want %d", n, workers, prevHi, n)
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: item %d covered %d times", n, workers, i, c)
				}
			}
		}
	}
}

func TestBlocksVisitsEveryItemOnce(t *testing.T) {
	const n = 103
	for _, workers := range []int{1, 2, 4, 7} {
		visits := make([]int32, n)
		Blocks(n, workers, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, c := range visits {
			if c != 1 {
				t.Errorf("workers=%d: item %d visited %d times, want 1", workers, i, c)
			}
		}
	}
}

// TestSerialPathsDoNotAllocate pins the workers==1 short circuits: a
// serial Run or Blocks must call fn inline with zero heap allocations —
// no WaitGroup, no goroutines, no per-worker closures.
func TestSerialPathsDoNotAllocate(t *testing.T) {
	var sink int
	fn := func(w int) { sink += w }
	if allocs := testing.AllocsPerRun(100, func() {
		Run(1, fn)
	}); allocs != 0 {
		t.Errorf("Run(1, fn): %v allocs per run, want 0", allocs)
	}
	bfn := func(w, lo, hi int) { sink += hi - lo }
	if allocs := testing.AllocsPerRun(100, func() {
		Blocks(103, 1, bfn)
	}); allocs != 0 {
		t.Errorf("Blocks(103, 1, fn): %v allocs per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		Blocks(0, 1, bfn)
	}); allocs != 0 {
		t.Errorf("Blocks(0, 1, fn): %v allocs per run, want 0", allocs)
	}
	_ = sink
}

// TestBlocksSerialCoversAllItems pins the inline path's range: one call,
// full [0, n), and no call at all for n == 0.
func TestBlocksSerialCoversAllItems(t *testing.T) {
	var calls, gotLo, gotHi int
	Blocks(57, 1, func(w, lo, hi int) {
		calls++
		gotLo, gotHi = lo, hi
		if w != 0 {
			t.Errorf("serial Blocks passed worker index %d, want 0", w)
		}
	})
	if calls != 1 || gotLo != 0 || gotHi != 57 {
		t.Errorf("Blocks(57, 1): %d calls covering [%d, %d), want 1 call covering [0, 57)", calls, gotLo, gotHi)
	}
	Blocks(0, 1, func(w, lo, hi int) {
		t.Errorf("Blocks(0, 1) invoked fn on empty range [%d, %d)", lo, hi)
	})
}

func TestBlocksSkipsEmptyRanges(t *testing.T) {
	calls := int32(0)
	Blocks(2, 7, func(w, lo, hi int) {
		atomic.AddInt32(&calls, 1)
		if lo >= hi {
			t.Errorf("empty range [%d, %d) passed to fn", lo, hi)
		}
	})
	if calls != 2 {
		t.Errorf("fn called %d times for 2 items, want 2", calls)
	}
}
