package tasks

import (
	"testing"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
	"edgeshed/internal/obs"
	"edgeshed/internal/par"
)

// dropEveryThird builds a "reduced" graph by shedding every third edge of g,
// a deterministic stand-in for a reducer that keeps the suite's inputs fixed
// across worker counts without importing internal/core.
func dropEveryThird(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(g.NumNodes())
	for i, e := range g.Edges() {
		if i%3 == 2 {
			continue
		}
		b.TryAddEdge(e.U, e.V)
	}
	return b.Graph()
}

// TestSuiteBitIdenticalAcrossWorkerCounts is the cross-worker determinism
// property test: every measurement Suite.Evaluate produces — betweenness
// included, via the fixed-shard accumulation — must be bit-identical for
// Workers ∈ {1, 2, 4, 7} on both a scale-free and a community-structured
// graph.
func TestSuiteBitIdenticalAcrossWorkerCounts(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"BA", gen.BarabasiAlbert(300, 3, 11)},
		{"PP", gen.PlantedPartition(4, 75, 0.15, 0.01, 13)},
	}
	for _, tg := range graphs {
		red := dropEveryThird(tg.g)
		base := Suite{Sources: 64, MaxPairs: 2000, Seed: 5, SkipEmbedding: true, Workers: 1}
		want := base.Evaluate(tg.g, red)
		for _, workers := range []int{2, 4, 7} {
			s := base
			s.Workers = workers
			got := s.Evaluate(tg.g, red)
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: %d measurements, want %d", tg.name, workers, len(got), len(want))
			}
			for i := range want {
				if got[i].Task != want[i].Task {
					t.Fatalf("%s workers=%d row %d: task %q, want %q",
						tg.name, workers, i, got[i].Task, want[i].Task)
				}
				if got[i].Value != want[i].Value {
					t.Fatalf("%s workers=%d task %q: value %v != workers=1 value %v",
						tg.name, workers, got[i].Task, got[i].Value, want[i].Value)
				}
			}
		}
	}
}

// TestSuiteBitIdenticalWithObs pins the instrumentation non-perturbation
// guarantee for the evaluation suite: turning a live recorder on must not
// change a single measurement bit, at serial and parallel worker counts.
func TestSuiteBitIdenticalWithObs(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 11)
	red := dropEveryThird(g)
	for _, workers := range []int{1, 4} {
		s := Suite{Sources: 64, MaxPairs: 2000, Seed: 5, SkipEmbedding: true, Workers: workers}
		want := s.Evaluate(g, red)
		rec := obs.New("test")
		prev := par.SetSlotObserver(rec.Flight())
		s.Obs = rec.Root()
		got := s.Evaluate(g, red)
		par.SetSlotObserver(prev)
		rec.Root().End()
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d measurements with obs, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].Value != want[i].Value {
				t.Fatalf("workers=%d task %q: value %v with obs != %v without",
					workers, want[i].Task, got[i].Value, want[i].Value)
			}
		}
		// The recorder must actually have observed the run: the span tree
		// carries one task child per measurement and the kernels' counters
		// merged to non-zero totals.
		tree := rec.SpanTree()
		if len(tree.Children) != 1 || len(tree.Children[0].Children) != len(want) {
			t.Fatalf("workers=%d: span tree shape %+v", workers, tree)
		}
		vals := rec.CounterValues()
		if vals["bfs.sources_done"] == 0 || vals["betweenness.sources_done"] == 0 || vals["pagerank.iterations"] == 0 {
			t.Fatalf("workers=%d: kernel counters missing: %v", workers, vals)
		}
		// PR-9 surfaces: the MS-BFS kernels under the suite feed the batch
		// histograms and the flight ring records slot/batch traffic.
		hists := rec.HistogramValues()
		if hists["msbfs.batch_ns"] == nil || hists["msbfs.batch_ns"].Count == 0 {
			t.Fatalf("workers=%d: msbfs.batch_ns histogram missing or empty", workers)
		}
		if len(rec.Flight().Events()) == 0 {
			t.Fatalf("workers=%d: flight ring stayed empty", workers)
		}
	}
}
