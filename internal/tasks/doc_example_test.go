package tasks_test

import (
	"fmt"

	"edgeshed/internal/core"
	"edgeshed/internal/graph/gen"
	"edgeshed/internal/tasks"
)

// ExampleTopKTask measures how much of the top-10% PageRank set a reduction
// preserves — the paper's Tables VIII-IX metric.
func ExampleTopKTask() {
	g := gen.BarabasiAlbert(500, 3, 1)
	res, err := (core.CRR{Seed: 1}).Reduce(g, 0.9)
	if err != nil {
		panic(err)
	}
	u := (tasks.TopKTask{}).Utility(g, res.Reduced)
	fmt.Println("high utility at p=0.9:", u > 0.85)
	// Output:
	// high utility at p=0.9: true
}

// ExampleSuite evaluates a reduction on every task at once.
func ExampleSuite() {
	g := gen.BarabasiAlbert(200, 3, 2)
	res, err := (core.BM2{}).Reduce(g, 0.5)
	if err != nil {
		panic(err)
	}
	suite := tasks.Suite{SkipEmbedding: true, Seed: 3}
	ms := suite.Evaluate(g, res.Reduced)
	fmt.Println("tasks evaluated:", len(ms))
	fmt.Println("first task:", ms[0].Task)
	// Output:
	// tasks evaluated: 7
	// first task: vertex degree
}
