package tasks

import (
	"edgeshed/internal/analysis"
	"edgeshed/internal/centrality"
	"edgeshed/internal/community"
	"edgeshed/internal/embed"
	"edgeshed/internal/graph"
	"edgeshed/internal/obs"
)

// Suite bundles the paper's seven evaluation tasks (plus the
// label-propagation link-prediction variant) into one configurable runner,
// so harnesses and tools evaluate a reduction consistently.
type Suite struct {
	// Sources samples BFS/betweenness sources on large graphs; 0 = exact.
	Sources int
	// MaxPairs caps 2-hop candidate pairs for link prediction; 0 = all.
	MaxPairs int
	// Seed drives all sampling inside the suite.
	Seed int64
	// SkipEmbedding drops the node2vec link-prediction row (the most
	// expensive task) when speed matters.
	SkipEmbedding bool
	// Workers is the parallelism threaded through every task kernel
	// (profiles, clustering, betweenness, PageRank); 0 means GOMAXPROCS.
	// Every kernel follows the internal/par determinism discipline, so the
	// measurements are bit-identical at any worker count.
	Workers int
	// Obs is the parent observability span; nil (the zero value) records
	// nothing at no cost. When set, Evaluate reports a "suite.evaluate" span
	// with one "task:<name>" child per row, and threads the span into every
	// instrumented task kernel. Measurements stay bit-identical with Obs on
	// or off, at any worker count.
	Obs *obs.Span
}

// Measurement is one task's outcome.
type Measurement struct {
	// Task is the row name, e.g. "vertex degree".
	Task string
	// Value is the metric value.
	Value float64
	// HigherIsBetter tells renderers which direction is good: true for
	// utilities, false for errors/distances.
	HigherIsBetter bool
	// Meaning is a one-line description of the metric.
	Meaning string
}

// Evaluate runs every configured task between the original and reduced
// graphs (same node-id space) and returns the measurements in the paper's
// task order.
func (s Suite) Evaluate(orig, red *graph.Graph) []Measurement {
	sp := s.Obs.Start("suite.evaluate")
	defer sp.End()
	total := int64(8) // 6 fixed rows + node2vec + label-prop
	if s.SkipEmbedding {
		total--
	}
	sp.SetTotal(total)
	// task wraps one row in a "task:<name>" child span and advances the
	// suite's unit progress. The name concat runs only when recording, so
	// disabled evaluation allocates nothing here.
	task := func(name string, f func(p *obs.Span) Measurement) Measurement {
		var tsp *obs.Span
		if sp.Enabled() {
			tsp = sp.Start("task:" + name)
		}
		m := f(tsp)
		tsp.End()
		if sp.Enabled() {
			// Each row lands on the quality timeline as "suite.<task>" with
			// the measurement's own good direction, so cmd/obsreport can
			// trend and gate task fidelity across runs.
			dir := obs.DirLower
			if m.HigherIsBetter {
				dir = obs.DirHigher
			}
			sp.Quality("suite."+m.Task, dir).Record(0, m.Value)
		}
		sp.Done(1)
		return m
	}
	out := []Measurement{
		task("vertex degree", func(p *obs.Span) Measurement {
			return Measurement{"vertex degree", (DegreeTask{Cap: 300}).Error(orig, red), false, "TVD, lower is better"}
		}),
		task("shortest-path distance", func(p *obs.Span) Measurement {
			return Measurement{"shortest-path distance", (SPDistanceTask{Sources: s.Sources, Seed: s.Seed, Workers: s.Workers, Obs: p}).Error(orig, red), false, "TVD, lower is better"}
		}),
		task("betweenness centrality", func(p *obs.Span) Measurement {
			bopt := centrality.Options{Samples: s.Sources, Seed: s.Seed, Workers: s.Workers, Obs: p}
			return Measurement{"betweenness centrality", (BetweennessTask{Options: bopt}).Error(orig, red), false, "relative L1, lower is better"}
		}),
		task("clustering coefficient", func(p *obs.Span) Measurement {
			return Measurement{"clustering coefficient", (ClusteringTask{Workers: s.Workers}).Error(orig, red), false, "mean |gap|, lower is better"}
		}),
		task("hop-plot", func(p *obs.Span) Measurement {
			return Measurement{"hop-plot", (HopPlotTask{Sources: s.Sources, Seed: s.Seed, Workers: s.Workers, Obs: p}).Error(orig, red), false, "mean |gap|, lower is better"}
		}),
		task("top-10% query", func(p *obs.Span) Measurement {
			propt := analysis.PageRankOptions{Workers: s.Workers, Obs: p}
			return Measurement{"top-10% query", (TopKTask{PageRank: propt}).Utility(orig, red), true, "utility, higher is better"}
		}),
	}
	if !s.SkipEmbedding {
		out = append(out, task("link prediction (node2vec)", func(p *obs.Span) Measurement {
			return Measurement{
				"link prediction (node2vec)",
				(LinkPredictionTask{
					Walk:     embed.WalkConfig{WalksPerNode: 5, WalkLength: 20, Seed: s.Seed},
					SGNS:     embed.SGNSConfig{Dim: 32, Epochs: 1, Seed: s.Seed + 1},
					MaxPairs: s.MaxPairs,
					Seed:     s.Seed + 2,
				}).Utility(orig, red),
				true, "utility, higher is better",
			}
		}))
	}
	out = append(out, task("link prediction (label prop)", func(p *obs.Span) Measurement {
		return Measurement{
			"link prediction (label prop)",
			(LabelPropagationLinkTask{
				Propagation: community.LabelPropagationOptions{Seed: s.Seed + 3},
				MaxPairs:    s.MaxPairs,
				Seed:        s.Seed + 4,
			}).Utility(orig, red),
			true, "utility, higher is better",
		}
	}))
	return out
}
