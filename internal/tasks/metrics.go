// Package tasks implements the paper's seven evaluation tasks (Section V-A)
// and their utility metrics: five structural characteristics (vertex degree,
// shortest-path distance, betweenness centrality, clustering coefficient,
// hop-plot) and two applications (top-k PageRank queries and link prediction
// within communities).
package tasks

import (
	"math"

	"edgeshed/internal/graph"
)

// TVD returns the total variation distance between two discrete
// distributions indexed by bucket; missing tail buckets count as zero.
func TVD(p, q []float64) float64 {
	var sum float64
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	for i := 0; i < n; i++ {
		var pi, qi float64
		if i < len(p) {
			pi = p[i]
		}
		if i < len(q) {
			qi = q[i]
		}
		sum += math.Abs(pi - qi)
	}
	return sum / 2
}

// KS returns the Kolmogorov–Smirnov statistic (max CDF gap) between two
// discrete distributions indexed by bucket.
func KS(p, q []float64) float64 {
	var cp, cq, max float64
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	for i := 0; i < n; i++ {
		if i < len(p) {
			cp += p[i]
		}
		if i < len(q) {
			cq += q[i]
		}
		if d := math.Abs(cp - cq); d > max {
			max = d
		}
	}
	return max
}

// L1 returns the L1 distance between two bucketed series (not necessarily
// distributions), zero-padding the shorter.
func L1(p, q []float64) float64 {
	var sum float64
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	for i := 0; i < n; i++ {
		var pi, qi float64
		if i < len(p) {
			pi = p[i]
		}
		if i < len(q) {
			qi = q[i]
		}
		sum += math.Abs(pi - qi)
	}
	return sum
}

// Overlap returns |a ∩ b| / |a| for two node sets given as slices; it is the
// shape of both the top-k utility and the link-prediction utility. Returns 0
// for an empty a.
func Overlap(a, b []graph.NodeID) float64 {
	if len(a) == 0 {
		return 0
	}
	set := make(map[graph.NodeID]struct{}, len(b))
	for _, x := range b {
		set[x] = struct{}{}
	}
	inter := 0
	for _, x := range a {
		if _, ok := set[x]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(a))
}

// PairOverlap is Overlap for canonical node pairs: |a ∩ b| / |a|.
func PairOverlap(a, b []graph.Edge) float64 {
	if len(a) == 0 {
		return 0
	}
	set := make(map[graph.Edge]struct{}, len(b))
	for _, e := range b {
		set[e.Canonical()] = struct{}{}
	}
	inter := 0
	for _, e := range a {
		if _, ok := set[e.Canonical()]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(a))
}
