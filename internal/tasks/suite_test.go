package tasks

import (
	"testing"

	"edgeshed/internal/core"
	"edgeshed/internal/graph/gen"
)

func TestSuiteSelfEvaluation(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, 21)
	ms := (Suite{MaxPairs: 5000, Seed: 1}).Evaluate(g, g)
	if len(ms) != 8 {
		t.Fatalf("got %d measurements, want 8", len(ms))
	}
	for _, m := range ms {
		if m.Task == "" || m.Meaning == "" {
			t.Errorf("measurement missing labels: %+v", m)
		}
		if m.HigherIsBetter {
			if m.Value < 0.999 {
				t.Errorf("%s: self utility = %v, want 1", m.Task, m.Value)
			}
		} else if m.Value > 1e-9 {
			t.Errorf("%s: self error = %v, want 0", m.Task, m.Value)
		}
	}
}

func TestSuiteSkipEmbedding(t *testing.T) {
	g := gen.BarabasiAlbert(60, 2, 22)
	ms := (Suite{SkipEmbedding: true, Seed: 1}).Evaluate(g, g)
	if len(ms) != 7 {
		t.Fatalf("got %d measurements, want 7 without embedding", len(ms))
	}
	for _, m := range ms {
		if m.Task == "link prediction (node2vec)" {
			t.Error("embedding task present despite SkipEmbedding")
		}
	}
}

func TestSuiteOrdersReductionQuality(t *testing.T) {
	// The suite should score a gentle reduction (p=0.9) at least as well as
	// a harsh one (p=0.2) on the top-k utility row.
	g := gen.BarabasiAlbert(200, 3, 23)
	gentle, err := (core.CRR{Seed: 1}).Reduce(g, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	harsh, err := (core.CRR{Seed: 1}).Reduce(g, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	s := Suite{SkipEmbedding: true, MaxPairs: 2000, Seed: 2}
	find := func(ms []Measurement, task string) float64 {
		for _, m := range ms {
			if m.Task == task {
				return m.Value
			}
		}
		t.Fatalf("task %q missing", task)
		return 0
	}
	mg := s.Evaluate(g, gentle.Reduced)
	mh := s.Evaluate(g, harsh.Reduced)
	if find(mg, "top-10% query") < find(mh, "top-10% query") {
		t.Error("gentle reduction scored below harsh one on top-k")
	}
	if find(mg, "vertex degree") > find(mh, "vertex degree") {
		t.Error("gentle reduction has larger degree error than harsh one")
	}
}
