package tasks

import (
	"math"
	"testing"

	"edgeshed/internal/analysis"
	"edgeshed/internal/core"
	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

func TestTVD(t *testing.T) {
	if got := TVD([]float64{0.5, 0.5}, []float64{0.5, 0.5}); got != 0 {
		t.Errorf("TVD identical = %v, want 0", got)
	}
	if got := TVD([]float64{1, 0}, []float64{0, 1}); math.Abs(got-1) > 1e-9 {
		t.Errorf("TVD disjoint = %v, want 1", got)
	}
	// Length mismatch: tail treated as zero.
	if got := TVD([]float64{1}, []float64{0.5, 0.5}); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("TVD padded = %v, want 0.5", got)
	}
}

func TestKS(t *testing.T) {
	if got := KS([]float64{0.5, 0.5}, []float64{0.5, 0.5}); got != 0 {
		t.Errorf("KS identical = %v, want 0", got)
	}
	if got := KS([]float64{1, 0}, []float64{0, 1}); math.Abs(got-1) > 1e-9 {
		t.Errorf("KS opposite = %v, want 1", got)
	}
	if got := KS([]float64{0.6, 0.4}, []float64{0.4, 0.6}); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("KS = %v, want 0.2", got)
	}
}

func TestL1(t *testing.T) {
	if got := L1([]float64{1, 2}, []float64{0, 4, 1}); math.Abs(got-4) > 1e-9 {
		t.Errorf("L1 = %v, want 4", got)
	}
}

func TestOverlap(t *testing.T) {
	a := []graph.NodeID{1, 2, 3, 4}
	b := []graph.NodeID{3, 4, 5, 6}
	if got := Overlap(a, b); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Overlap = %v, want 0.5", got)
	}
	if got := Overlap(nil, b); got != 0 {
		t.Errorf("Overlap empty = %v, want 0", got)
	}
}

func TestPairOverlapOrientationInsensitive(t *testing.T) {
	a := []graph.Edge{{U: 1, V: 2}, {U: 3, V: 4}}
	b := []graph.Edge{{U: 2, V: 1}, {U: 5, V: 6}}
	if got := PairOverlap(a, b); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("PairOverlap = %v, want 0.5", got)
	}
}

func TestDegreeTaskIdenticalGraphs(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, 1)
	if got := (DegreeTask{}).Error(g, g); got != 0 {
		t.Errorf("degree error on identical graphs = %v, want 0", got)
	}
}

func TestDegreeTaskDetectsDistortion(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 2)
	good, err := (core.BM2{}).Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := (core.Random{Seed: 3}).Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	task := DegreeTask{}
	// Degree-preserving BM2 keeps degrees proportional; random shedding does
	// not track per-node expectations, so its degree distribution error is
	// at least as large in practice on heavy-tailed graphs.
	ge, be := task.Error(g, good.Reduced), task.Error(g, bad.Reduced)
	if ge > be+0.05 {
		t.Errorf("BM2 degree error %v much worse than random %v", ge, be)
	}
}

func TestSPDistanceTaskSelfZero(t *testing.T) {
	g := gen.BarabasiAlbert(120, 3, 4)
	if got := (SPDistanceTask{}).Error(g, g); got != 0 {
		t.Errorf("SP error on identical graphs = %v, want 0", got)
	}
}

func TestHopPlotTask(t *testing.T) {
	g := gen.BarabasiAlbert(120, 3, 5)
	task := HopPlotTask{}
	if got := task.Error(g, g); got != 0 {
		t.Errorf("hop-plot error on identical graphs = %v, want 0", got)
	}
	o, r := task.Series(g, g)
	if len(o) != len(r) {
		t.Error("series lengths differ on identical graphs")
	}
	if o[len(o)-1] < 0.999 {
		t.Errorf("hop-plot does not saturate: %v", o[len(o)-1])
	}
}

func TestBetweennessTaskIdentical(t *testing.T) {
	g := gen.BarabasiAlbert(80, 2, 6)
	if got := (BetweennessTask{}).Error(g, g); got > 1e-9 {
		t.Errorf("betweenness error on identical graphs = %v, want 0", got)
	}
}

func TestClusteringTaskIdentical(t *testing.T) {
	g := gen.HolmeKim(100, 3, 0.6, 7)
	if got := (ClusteringTask{}).Error(g, g); got > 1e-9 {
		t.Errorf("clustering error on identical graphs = %v, want 0", got)
	}
}

func TestTopKTaskIdenticalIsOne(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 8)
	if got := (TopKTask{}).Utility(g, g); math.Abs(got-1) > 1e-9 {
		t.Errorf("top-k utility of identical graphs = %v, want 1", got)
	}
}

func TestTopKUtilityOrdering(t *testing.T) {
	// CRR at large p should preserve top-k much better than at tiny p
	// (Table VIII rows).
	g := gen.BarabasiAlbert(400, 3, 9)
	task := TopKTask{}
	big, err := (core.CRR{Seed: 1}).Reduce(g, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	small, err := (core.CRR{Seed: 1}).Reduce(g, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ub, us := task.Utility(g, big.Reduced), task.Utility(g, small.Reduced)
	if ub <= us {
		t.Errorf("utility(p=0.9) = %v <= utility(p=0.1) = %v", ub, us)
	}
	if ub < 0.8 {
		t.Errorf("utility at p=0.9 = %v, expected > 0.8", ub)
	}
}

func TestTopKUtilityWithScoresHook(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, 10)
	task := TopKTask{}
	// Supplying the original graph's own PageRank as "reduced scores" must
	// give utility 1.
	if got := task.UtilityWithScores(g, pageRankOf(g)); math.Abs(got-1) > 1e-9 {
		t.Errorf("self scores utility = %v, want 1", got)
	}
	// Reversed scores should give low utility.
	rev := pageRankOf(g)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if got := task.UtilityWithScores(g, rev); got > 0.6 {
		t.Errorf("reversed scores utility = %v, expected low", got)
	}
}

func pageRankOf(g *graph.Graph) []float64 {
	return analysis.PageRank(g, analysis.PageRankOptions{})
}

func TestLinkPredictionIdenticalIsOne(t *testing.T) {
	g := gen.PlantedPartition(3, 15, 0.4, 0.02, 11)
	task := LinkPredictionTask{
		Clusters: 3,
		Seed:     12,
	}
	if got := task.Utility(g, g); math.Abs(got-1) > 1e-9 {
		t.Errorf("link prediction utility of identical graphs = %v, want 1", got)
	}
}

func TestLinkPredictionDegradesWithHeavyShedding(t *testing.T) {
	g := gen.PlantedPartition(3, 20, 0.4, 0.02, 13)
	task := LinkPredictionTask{Clusters: 3, Seed: 14}
	big, err := (core.CRR{Seed: 1}).Reduce(g, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	ub := task.Utility(g, big.Reduced)
	if ub <= 0.1 {
		t.Errorf("utility at p=0.8 = %v, expected substantial overlap", ub)
	}
}
