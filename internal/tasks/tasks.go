package tasks

import (
	"math"

	"edgeshed/internal/analysis"
	"edgeshed/internal/centrality"
	"edgeshed/internal/community"
	"edgeshed/internal/embed"
	"edgeshed/internal/graph"
	"edgeshed/internal/obs"
)

// DegreeTask compares vertex degree distributions (task 1, Figures 5(c)-(d)
// and 6). cap aggregates degrees above it, as the paper does with 300.
type DegreeTask struct {
	// Cap aggregates larger degrees into one bucket; 0 disables.
	Cap int
}

// Distributions returns the degree distributions of both graphs.
func (t DegreeTask) Distributions(orig, red *graph.Graph) (o, r []float64) {
	return analysis.DegreeDistribution(orig, t.Cap), analysis.DegreeDistribution(red, t.Cap)
}

// Error returns the total variation distance between the two distributions
// (lower is better).
func (t DegreeTask) Error(orig, red *graph.Graph) float64 {
	o, r := t.Distributions(orig, red)
	return TVD(o, r)
}

// SPDistanceTask compares shortest-path distance distributions (task 2,
// Figure 7).
type SPDistanceTask struct {
	// Sources samples BFS sources; 0 means exact.
	Sources int
	// Seed drives source sampling.
	Seed int64
	// Workers is the BFS parallelism; 0 means GOMAXPROCS. Results are
	// bit-identical at any worker count.
	Workers int
	// Obs is the parent observability span for the two profile kernels; nil
	// records nothing at no cost.
	Obs *obs.Span
}

// Distributions returns the distance distributions of both graphs.
func (t SPDistanceTask) Distributions(orig, red *graph.Graph) (o, r []float64) {
	opt := analysis.ProfileOptions{Sources: t.Sources, Seed: t.Seed, Workers: t.Workers, Obs: t.Obs}
	return analysis.NewDistanceProfile(orig, opt).Distribution(),
		analysis.NewDistanceProfile(red, opt).Distribution()
}

// Error returns the TVD between distance distributions.
func (t SPDistanceTask) Error(orig, red *graph.Graph) float64 {
	o, r := t.Distributions(orig, red)
	return TVD(o, r)
}

// HopPlotTask compares hop-plots (task 5, Figure 10).
type HopPlotTask struct {
	// Sources samples BFS sources; 0 means exact.
	Sources int
	// Seed drives source sampling.
	Seed int64
	// Workers is the BFS parallelism; 0 means GOMAXPROCS.
	Workers int
	// Obs is the parent observability span for the two profile kernels; nil
	// records nothing at no cost.
	Obs *obs.Span
}

// Series returns the cumulative reachable-pair fractions per hop.
func (t HopPlotTask) Series(orig, red *graph.Graph) (o, r []float64) {
	opt := analysis.ProfileOptions{Sources: t.Sources, Seed: t.Seed, Workers: t.Workers, Obs: t.Obs}
	return analysis.NewDistanceProfile(orig, opt).HopPlot(),
		analysis.NewDistanceProfile(red, opt).HopPlot()
}

// Error returns the mean absolute gap between hop-plots over the longer
// support.
func (t HopPlotTask) Error(orig, red *graph.Graph) float64 {
	o, r := t.Series(orig, red)
	n := len(o)
	if len(r) > n {
		n = len(r)
	}
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		var oi, ri float64 = 1, 1 // hop-plots saturate at 1 past their support
		if i < len(o) {
			oi = o[i]
		}
		if i < len(r) {
			ri = r[i]
		}
		sum += math.Abs(oi - ri)
	}
	return sum / float64(n)
}

// BetweennessTask compares node betweenness centrality aggregated by vertex
// degree (task 3, Figure 8).
type BetweennessTask struct {
	// Options configures the centrality computation (sampling for large
	// graphs).
	Options centrality.Options
}

// Series returns mean betweenness per degree for both graphs, aligned by the
// ORIGINAL graph's node degrees so the curves are comparable.
func (t BetweennessTask) Series(orig, red *graph.Graph) (o, r []float64) {
	ob := centrality.NodeBetweenness(orig, t.Options)
	rb := centrality.NodeBetweenness(red, t.Options)
	return analysis.MeanByDegree(orig, ob), analysis.MeanByDegree(orig, rb)
}

// Error returns the relative L1 gap between the two series.
func (t BetweennessTask) Error(orig, red *graph.Graph) float64 {
	o, r := t.Series(orig, red)
	denom := 0.0
	for _, x := range o {
		denom += math.Abs(x)
	}
	if denom == 0 {
		return 0
	}
	return L1(o, r) / denom
}

// ClusteringTask compares clustering coefficient by degree (task 4,
// Figure 9).
type ClusteringTask struct {
	// Workers is the triangle-counting parallelism; 0 means GOMAXPROCS.
	Workers int
}

// Series returns mean clustering coefficient per degree, aligned by the
// original graph's degrees.
func (t ClusteringTask) Series(orig, red *graph.Graph) (o, r []float64) {
	oc := analysis.LocalClustering(orig, t.Workers)
	rc := analysis.LocalClustering(red, t.Workers)
	return analysis.MeanByDegree(orig, oc), analysis.MeanByDegree(orig, rc)
}

// Error returns the mean absolute clustering gap across degrees present in
// the original graph.
func (t ClusteringTask) Error(orig, red *graph.Graph) float64 {
	o, r := t.Series(orig, red)
	hist := analysis.DegreeHistogram(orig)
	var sum float64
	var buckets int
	for d := range o {
		if d < len(hist) && hist[d] > 0 {
			sum += math.Abs(o[d] - r[d])
			buckets++
		}
	}
	if buckets == 0 {
		return 0
	}
	return sum / float64(buckets)
}

// TopKTask is the top-t% PageRank query (task 6, Tables VIII-IX): utility is
// the overlap between the top-k vertex sets of the original and reduced
// graphs, k = |V|·t%.
type TopKTask struct {
	// TPercent is t in "top-t%"; 0 means the paper's 10.
	TPercent float64
	// PageRank configures the ranking.
	PageRank analysis.PageRankOptions
}

func (t TopKTask) tPct() float64 {
	if t.TPercent <= 0 {
		return 10
	}
	return t.TPercent
}

// Utility computes |V_t% ∩ V'_t%| / k with PageRank run on both graphs.
func (t TopKTask) Utility(orig, red *graph.Graph) float64 {
	redScores := analysis.PageRank(red, t.PageRank)
	return t.UtilityWithScores(orig, redScores)
}

// UtilityWithScores computes the top-k utility against externally supplied
// reduced-graph scores — the hook for UDS's supernode PageRank ("we adopt
// its own processing method of supernodes").
func (t TopKTask) UtilityWithScores(orig *graph.Graph, redScores []float64) float64 {
	k := int(math.Round(float64(orig.NumNodes()) * t.tPct() / 100))
	if k == 0 {
		return 0
	}
	origScores := analysis.PageRank(orig, t.PageRank)
	return Overlap(analysis.TopK(origScores, k), analysis.TopK(redScores, k))
}

// LinkPredictionTask predicts whether 2-hop vertex pairs belong to the same
// community (task 7, Table X): node2vec embeddings (p = q = 1), K-means with
// k clusters, prediction = same-cluster. Utility is |L_s ∩ L| / |L| where L
// and L_s are the positive predictions on the original and reduced graph.
type LinkPredictionTask struct {
	// Clusters is the K-means k; 0 means the paper's 5.
	Clusters int
	// Walk and SGNS configure the embedding; zero values are sensible
	// defaults.
	Walk embed.WalkConfig
	SGNS embed.SGNSConfig
	// MaxPairs caps the 2-hop candidate pairs per graph (0 = all).
	MaxPairs int
	// Seed drives pair sampling and K-means.
	Seed int64
}

func (t LinkPredictionTask) clusters() int {
	if t.Clusters <= 0 {
		return 5
	}
	return t.Clusters
}

// Predict returns the positive predictions for one graph: its 2-hop pairs
// whose endpoints land in the same embedding cluster.
func (t LinkPredictionTask) Predict(g *graph.Graph) []graph.Edge {
	emb := embed.Node2Vec(g, t.Walk, t.SGNS)
	labels := embed.KMeans(emb, t.clusters(), 0, t.Seed)
	var out []graph.Edge
	for _, pair := range analysis.TwoHopPairs(g, t.MaxPairs, t.Seed) {
		if labels[pair.U] == labels[pair.V] {
			out = append(out, pair)
		}
	}
	return out
}

// Utility computes |L_s ∩ L| / |L|.
func (t LinkPredictionTask) Utility(orig, red *graph.Graph) float64 {
	l := t.Predict(orig)
	ls := t.Predict(red)
	return PairOverlap(l, ls)
}

// LabelPropagationLinkTask is an embedding-free variant of the
// link-prediction task: communities come from label propagation instead of
// node2vec + K-means. It is orders of magnitude cheaper and serves as a
// robustness check that the task-7 conclusions do not hinge on the
// embedding pipeline.
type LabelPropagationLinkTask struct {
	// Propagation configures detection.
	Propagation community.LabelPropagationOptions
	// MaxPairs caps the 2-hop candidate pairs per graph (0 = all).
	MaxPairs int
	// Seed drives pair sampling.
	Seed int64
}

// Predict returns the same-community 2-hop pairs of g under label
// propagation.
func (t LabelPropagationLinkTask) Predict(g *graph.Graph) []graph.Edge {
	labels := community.LabelPropagation(g, t.Propagation)
	return community.SameCommunityPairs(analysis.TwoHopPairs(g, t.MaxPairs, t.Seed), labels)
}

// Utility computes |L_s ∩ L| / |L| with label-propagation communities.
func (t LabelPropagationLinkTask) Utility(orig, red *graph.Graph) float64 {
	return PairOverlap(t.Predict(orig), t.Predict(red))
}
