package core

import (
	"math"
	"testing"
	"testing/quick"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
	"edgeshed/internal/matching"
)

func TestBM2IsSubgraph(t *testing.T) {
	g := gen.ErdosRenyi(120, 300, 4)
	res, err := BM2{}.Reduce(g, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Reduced.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("reduced edge %v not in original", e)
		}
	}
	if err := res.Reduced.Validate(); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestBM2EdgeCountNearTarget(t *testing.T) {
	// BM2 has no hard |E'| = [P] guarantee, but on well-behaved graphs the
	// rounded capacities put it within a narrow band of the target.
	g := gen.BarabasiAlbert(400, 4, 6)
	for _, p := range []float64{0.3, 0.5, 0.7} {
		res, err := BM2{}.Reduce(g, p)
		if err != nil {
			t.Fatal(err)
		}
		want := p * float64(g.NumEdges())
		got := float64(res.Reduced.NumEdges())
		if got < want*0.75 || got > want*1.25 {
			t.Errorf("p=%v: |E'| = %v, want within 25%% of %v", p, got, want)
		}
	}
}

func TestBM2UpperDiscrepancyInvariant(t *testing.T) {
	// No node ends a full edge above its expectation: rounding adds at most
	// 0.5 and Algorithm 3 stops adding to nodes whose dis passed −0.5 (B
	// side) or +∞... the A side caps below +0.5; B-side additions land
	// below +1.
	f := func(seed int64, pRaw uint8) bool {
		p := 0.1 + 0.8*float64(pRaw)/255
		g := gen.ErdosRenyi(60, 140, seed)
		res, err := BM2{}.Reduce(g, p)
		if err != nil {
			return false
		}
		for u := 0; u < g.NumNodes(); u++ {
			if res.Dis(graph.NodeID(u)) >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBM2Theorem2Bound(t *testing.T) {
	f := func(seed int64, pRaw uint8) bool {
		p := 0.1 + 0.8*float64(pRaw)/255
		g := gen.BarabasiAlbert(80, 3, seed)
		res, err := BM2{}.Reduce(g, p)
		if err != nil {
			return false
		}
		return res.AvgDisPerNode() < BM2Bound(g, p)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBM2Phase2Improves(t *testing.T) {
	// Phase 2 must not hurt: compare full BM2 against Phase 1 alone
	// (reconstructed via the same capacities and greedy matching).
	g := gen.BarabasiAlbert(200, 3, 8)
	p := 0.4
	caps := make([]int, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		caps[u] = int(math.Round(p * float64(g.Degree(graph.NodeID(u)))))
	}
	bm, err := matching.GreedyBMatching(g, caps, matching.InputOrder)
	if err != nil {
		t.Fatal(err)
	}
	phase1, err := g.Subgraph(bm.Edges)
	if err != nil {
		t.Fatal(err)
	}
	p1 := &Result{Original: g, Reduced: phase1, P: p}
	full, err := BM2{}.Reduce(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if full.Delta() > p1.Delta()+1e-9 {
		t.Errorf("Phase 2 increased Δ: %v > %v", full.Delta(), p1.Delta())
	}
	// And on this hub-heavy graph it should strictly help.
	if full.Delta() == p1.Delta() {
		t.Logf("warning: Phase 2 was a no-op (Δ = %v); acceptable but unusual", full.Delta())
	}
}

func TestBM2Deterministic(t *testing.T) {
	g := gen.ErdosRenyi(90, 220, 14)
	a, err := BM2{}.Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BM2{}.Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ae, be := a.Reduced.Edges(), b.Reduced.Edges()
	if len(ae) != len(be) {
		t.Fatal("sizes differ across identical runs")
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs across identical runs", i)
		}
	}
}

func TestBM2Variants(t *testing.T) {
	g := gen.BarabasiAlbert(150, 3, 19)
	for _, b := range []BM2{
		{},
		{Rounding: RoundHalfEven},
		{DropZeroGain: true},
		{Order: matching.ScarceFirst},
		{Order: matching.DenseFirst, Rounding: RoundHalfEven, DropZeroGain: true},
	} {
		res, err := b.Reduce(g, 0.5)
		if err != nil {
			t.Fatalf("%+v: %v", b, err)
		}
		if err := res.Reduced.Validate(); err != nil {
			t.Errorf("%+v: invalid: %v", b, err)
		}
		if res.AvgDisPerNode() >= BM2Bound(g, 0.5) {
			t.Errorf("%+v: broke Theorem 2 bound", b)
		}
	}
}

func TestBM2StarGraph(t *testing.T) {
	// Star K_{1,10} at p = 0.5: hub expects 5, leaves expect 0.5 each
	// (capacity 1 after rounding). A valid reduction keeps about 5 spokes.
	g := gen.Star(11)
	res, err := BM2{}.Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Reduced.NumEdges()
	if got < 4 || got > 6 {
		t.Errorf("|E'| = %d, want ~5", got)
	}
	if hubDis := res.Dis(0); math.Abs(hubDis) > 1.0 {
		t.Errorf("hub dis = %v, want within 1 of expectation", hubDis)
	}
}

func TestBM2BetterThanRandomOnHeavyTail(t *testing.T) {
	// The entire point of degree-aware shedding: on a heavy-tailed graph,
	// BM2's Δ beats uniform random shedding's.
	g := gen.ConfigurationModel(gen.PowerLawDegrees(500, 2.1, 1, 60, 44), 45)
	p := 0.5
	bm2Res, err := BM2{}.Reduce(g, p)
	if err != nil {
		t.Fatal(err)
	}
	rndRes, err := Random{Seed: 46}.Reduce(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if bm2Res.Delta() >= rndRes.Delta() {
		t.Errorf("BM2 Δ = %v not better than Random Δ = %v", bm2Res.Delta(), rndRes.Delta())
	}
}
