package core

import (
	"math"
	"testing"

	"edgeshed/internal/graph/gen"
	"edgeshed/internal/obs"
)

// TestQualityOfFields pins QualityOf against the Result accessors it
// summarizes — exact equality, since both read the same Result — and the
// per-method theorem-bound selection.
func TestQualityOfFields(t *testing.T) {
	g := gen.BarabasiAlbert(120, 3, 7)
	const p = 0.5
	for _, tc := range []struct {
		method    string
		reducer   Reducer
		boundName string
		bound     float64
	}{
		{"CRR", CRR{Seed: 1, Steps: 200}, "theorem1", CRRBound(g, p)},
		{"BM2", BM2{}, "theorem2", BM2Bound(g, p)},
		{"Random", Random{Seed: 1}, "", 0},
	} {
		res, err := tc.reducer.Reduce(g, p)
		if err != nil {
			t.Fatalf("%s: %v", tc.method, err)
		}
		q := QualityOf(res, tc.method)
		if q.P != p || q.KeptEdges != res.Reduced.NumEdges() {
			t.Errorf("%s: p=%v kept=%d, want p=%v kept=%d", tc.method, q.P, q.KeptEdges, p, res.Reduced.NumEdges())
		}
		if want := float64(res.Reduced.NumEdges()) / float64(g.NumEdges()); q.KeptFraction != want {
			t.Errorf("%s: kept_fraction = %v, want %v", tc.method, q.KeptFraction, want)
		}
		if q.Delta != res.Delta() || q.AvgDisPerNode != res.AvgDisPerNode() {
			t.Errorf("%s: Δ=%v avg=%v, want %v and %v", tc.method, q.Delta, q.AvgDisPerNode, res.Delta(), res.AvgDisPerNode())
		}
		if q.BoundName != tc.boundName || q.Bound != tc.bound {
			t.Errorf("%s: bound %q=%v, want %q=%v", tc.method, q.BoundName, q.Bound, tc.boundName, tc.bound)
		}
		wantHeadroom := 0.0
		if tc.boundName != "" {
			wantHeadroom = tc.bound - res.AvgDisPerNode()
		}
		if q.Headroom != wantHeadroom {
			t.Errorf("%s: headroom = %v, want %v", tc.method, q.Headroom, wantHeadroom)
		}
		// Two summaries of the same Result are identical bits — the property
		// the stats-vs-manifest agreement rests on.
		if q2 := QualityOf(res, tc.method); q != q2 {
			t.Errorf("%s: QualityOf not deterministic: %+v vs %+v", tc.method, q, q2)
		}
	}
}

// TestQualityRecordProbes pins the probe emission: record lands every field
// on a lowercase-prefixed probe with the right direction, and the latest
// gauge view matches the summary exactly.
func TestQualityRecordProbes(t *testing.T) {
	g := gen.BarabasiAlbert(120, 3, 7)
	res, err := (CRR{Seed: 1, Steps: 200}).Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	q := QualityOf(res, "CRR")
	rec := obs.New("test")
	q.record(rec.Root(), 0, "CRR")
	rec.Root().End()

	qv := rec.QualityValues()
	for metric, want := range map[string]float64{
		"crr.kept_edges":        float64(q.KeptEdges),
		"crr.kept_fraction":     q.KeptFraction,
		"crr.delta":             q.Delta,
		"crr.avg_dis":           q.AvgDisPerNode,
		"crr.bound.theorem1":    q.Bound,
		"crr.headroom.theorem1": q.Headroom,
	} {
		if got, ok := qv[metric]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", metric, got, ok, want)
		}
	}
	dirs := map[string]string{}
	for _, pt := range rec.QualityPoints() {
		dirs[pt.Metric] = pt.Better
		if pt.Ratio != 0.5 {
			t.Errorf("%s recorded at ratio %v, want 0.5", pt.Metric, pt.Ratio)
		}
	}
	for metric, want := range map[string]string{
		"crr.kept_edges":        "info",
		"crr.delta":             "lower",
		"crr.headroom.theorem1": "higher",
	} {
		if dirs[metric] != want {
			t.Errorf("%s direction = %q, want %q", metric, dirs[metric], want)
		}
	}

	// A bound-less method records only the four base metrics.
	rec2 := obs.New("test")
	QualityOf(res, "Random").record(rec2.Root(), 0, "Random")
	rec2.Root().End()
	qv2 := rec2.QualityValues()
	if len(qv2) != 4 {
		t.Errorf("bound-less record produced %d gauges, want 4: %v", len(qv2), qv2)
	}
	if _, ok := qv2["random.delta"]; !ok {
		t.Errorf("random.delta missing: %v", qv2)
	}
}

// TestQualityHeadroomNonNegative pins the acceptance-criteria invariant on
// a live reduction: CRR's achieved avg |dis| beats Theorem 1, so the
// recorded headroom is ≥ 0.
func TestQualityHeadroomNonNegative(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 9)
	for _, p := range []float64{0.3, 0.5, 0.8} {
		res, err := (CRR{Seed: 2, Steps: 1000}).Reduce(g, p)
		if err != nil {
			t.Fatal(err)
		}
		q := QualityOf(res, "CRR")
		if q.Headroom < 0 || math.IsNaN(q.Headroom) {
			t.Errorf("p=%v: theorem1 headroom = %v, want >= 0", p, q.Headroom)
		}
	}
}
