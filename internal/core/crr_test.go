package core

import (
	"math"
	"testing"
	"testing/quick"

	"edgeshed/internal/centrality"
	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

func TestCRRTargetEdgeCount(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 7)
	for _, p := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		res, err := CRR{Seed: 1, Steps: 10}.Reduce(g, p)
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		want := int(math.Round(p * float64(g.NumEdges())))
		if got := res.Reduced.NumEdges(); got != want {
			t.Errorf("p=%v: |E'| = %d, want [P] = %d", p, got, want)
		}
	}
}

func TestCRRIsSubgraph(t *testing.T) {
	g := gen.ErdosRenyi(100, 250, 5)
	res, err := CRR{Seed: 2}.Reduce(g, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Reduced.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("reduced edge %v not in original", e)
		}
	}
	if err := res.Reduced.Validate(); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestCRRMoreStepsNeverWorse(t *testing.T) {
	// With a shared seed, the rewiring trajectory of a longer run extends
	// the shorter one, and swaps only ever reduce Δ.
	g := gen.BarabasiAlbert(150, 3, 11)
	short, err := CRR{Seed: 9, Steps: 20}.Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	long, err := CRR{Seed: 9, Steps: 4000}.Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if long.Delta() > short.Delta()+1e-9 {
		t.Errorf("Δ(4000 steps) = %v > Δ(20 steps) = %v", long.Delta(), short.Delta())
	}
}

func TestCRRRewiringImprovesOverPhase1(t *testing.T) {
	// Phase 1 alone (Steps ≈ 0 is not expressible; use 1 step) should be
	// beaten by the default [10·P] steps on a hub-heavy graph, where pure
	// centrality ranking overloads hubs.
	g := gen.BarabasiAlbert(200, 4, 13)
	one, err := CRR{Seed: 3, Steps: 1}.Reduce(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	full, err := CRR{Seed: 3}.Reduce(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if full.Delta() >= one.Delta() {
		t.Errorf("default steps Δ = %v, not better than 1-step Δ = %v", full.Delta(), one.Delta())
	}
}

func TestCRRDeterministic(t *testing.T) {
	g := gen.ErdosRenyi(80, 200, 21)
	a, err := CRR{Seed: 5}.Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CRR{Seed: 5}.Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ae, be := a.Reduced.Edges(), b.Reduced.Edges()
	if len(ae) != len(be) {
		t.Fatal("sizes differ across identical runs")
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs across identical runs", i)
		}
	}
}

func TestCRRTheorem1Bound(t *testing.T) {
	// Theorem 1: the average absolute discrepancy is below 4p(1−p)|E|/|V|.
	f := func(seed int64, pRaw uint8) bool {
		p := 0.1 + 0.8*float64(pRaw)/255
		g := gen.BarabasiAlbert(80, 3, seed)
		res, err := CRR{Seed: seed, Steps: 200}.Reduce(g, p)
		if err != nil {
			return false
		}
		return res.AvgDisPerNode() < CRRBound(g, p)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCRRKeepsBridges(t *testing.T) {
	// Two K5 cliques joined by one bridge: the bridge has maximal edge
	// betweenness, so Phase 1 must keep it at any reasonable p.
	b := graph.NewBuilder(10)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			b.TryAddEdge(graph.NodeID(u), graph.NodeID(v))
			b.TryAddEdge(graph.NodeID(u+5), graph.NodeID(v+5))
		}
	}
	b.TryAddEdge(0, 5) // the bridge
	g := b.Graph()
	// Steps < 0 disables rewiring: Phase 1 ranks purely by betweenness, so
	// the bridge must survive. (Phase 2 may legitimately trade it away: Δ
	// does not reward connectivity.)
	res, err := CRR{Seed: 1, Steps: -1}.Reduce(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reduced.HasEdge(0, 5) {
		t.Error("CRR shed the bridge edge, the highest-betweenness edge in the graph")
	}
}

func TestCRRSampledCentrality(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 31)
	res, err := CRR{
		Seed:        7,
		Betweenness: centrality.Options{Samples: 60, Seed: 8},
	}.Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Round(0.5 * float64(g.NumEdges())))
	if got := res.Reduced.NumEdges(); got != want {
		t.Errorf("|E'| = %d, want %d", got, want)
	}
	// Sampled Phase 1 must still produce a sane reduction: Δ below the
	// theorem bound.
	if res.AvgDisPerNode() >= CRRBound(g, 0.5) {
		t.Errorf("sampled CRR broke Theorem 1: %v >= %v", res.AvgDisPerNode(), CRRBound(g, 0.5))
	}
}

func TestCRRStepsResolution(t *testing.T) {
	if got := (CRR{Steps: 42}).steps(100); got != 42 {
		t.Errorf("explicit steps = %d, want 42", got)
	}
	if got := (CRR{}).steps(100); got != 1000 {
		t.Errorf("default steps for P=100: %d, want 1000", got)
	}
	if got := (CRR{StepsFactor: 2.5}).steps(100); got != 250 {
		t.Errorf("factor 2.5 steps = %d, want 250", got)
	}
}

func TestCRRPNearOneKeepsEverything(t *testing.T) {
	g := gen.Cycle(10) // [0.99 * 10] = 10: keep all edges
	res, err := CRR{Seed: 1}.Reduce(g, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduced.NumEdges() != 10 {
		t.Errorf("|E'| = %d, want 10", res.Reduced.NumEdges())
	}
}

func TestCRRSweepMatchesIndividualRuns(t *testing.T) {
	// A sweep point must equal a standalone run with the same precomputed
	// scores and the same derived per-ratio seed (and, trivially, the same
	// target edge count as Reduce at that p).
	g := gen.BarabasiAlbert(150, 3, 51)
	ps := []float64{0.7, 0.4, 0.2}
	c := CRR{Seed: 9}
	swept, err := c.Sweep(g, ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(swept) != 3 {
		t.Fatalf("sweep returned %d results", len(swept))
	}
	for i, p := range ps {
		single, err := c.reduce(g, p, nil, sweepSeed(c.Seed, i), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		se, pe := single.Reduced.Edges(), swept[i].Reduced.Edges()
		if len(se) != len(pe) {
			t.Fatalf("p=%v: sweep |E'|=%d vs single %d", p, len(pe), len(se))
		}
		for j := range se {
			if se[j] != pe[j] {
				t.Fatalf("p=%v: edge %d differs between sweep and single run", p, j)
			}
		}
		plain, err := c.Reduce(g, p)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Reduced.NumEdges() != swept[i].Reduced.NumEdges() {
			t.Fatalf("p=%v: sweep |E'|=%d vs Reduce %d", p, swept[i].Reduced.NumEdges(), plain.Reduced.NumEdges())
		}
	}
}

func TestCRRSweepDistinctPerRatioRandomness(t *testing.T) {
	// Regression for the re-seeding bug: with all-equal importance scores
	// the kept set is decided purely by the tie-break permutation, so two
	// sweep points at the same ratio must differ — the seed code replayed
	// rand.NewSource(c.Seed) per ratio and made them identical.
	g := gen.ErdosRenyi(120, 400, 77)
	c := CRR{Seed: 5, Importance: ImportanceRandom, Steps: -1}
	swept, err := c.Sweep(g, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	a, b := swept[0].Reduced.Edges(), swept[1].Reduced.Edges()
	if len(a) != len(b) {
		t.Fatalf("|E'| differs across equal ratios: %d vs %d", len(a), len(b))
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("two sweep points with all-equal scores kept identical edge sets")
	}
	// The sweep itself stays reproducible for a fixed Seed.
	again, err := c.Sweep(g, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for k := range swept {
		ae, be := swept[k].Reduced.Edges(), again[k].Reduced.Edges()
		if len(ae) != len(be) {
			t.Fatalf("sweep point %d not reproducible", k)
		}
		for i := range ae {
			if ae[i] != be[i] {
				t.Fatalf("sweep point %d edge %d differs across identical sweeps", k, i)
			}
		}
	}
}

func TestCRRSweepRejectsBadP(t *testing.T) {
	g := gen.Cycle(10)
	if _, err := (CRR{}).Sweep(g, []float64{0.5, 1.5}); err == nil {
		t.Error("sweep accepted p > 1")
	}
}

func TestCRRAdaptiveStop(t *testing.T) {
	g := gen.BarabasiAlbert(400, 4, 35)
	fixed, err := (CRR{Seed: 3}).Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := (CRR{Seed: 3, AdaptiveStop: 0.02}).Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Early stopping may leave a little quality on the table but must stay
	// in the same ballpark (and far below Phase-1-only quality).
	phase1, err := (CRR{Seed: 3, Steps: -1}).Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Delta() > fixed.Delta()*1.5 {
		t.Errorf("adaptive Δ=%v much worse than fixed Δ=%v", adaptive.Delta(), fixed.Delta())
	}
	if adaptive.Delta() >= phase1.Delta() {
		t.Errorf("adaptive Δ=%v no better than Phase-1-only Δ=%v", adaptive.Delta(), phase1.Delta())
	}
	// |E'| guarantee unaffected.
	if adaptive.Reduced.NumEdges() != fixed.Reduced.NumEdges() {
		t.Errorf("adaptive |E'|=%d != fixed |E'|=%d", adaptive.Reduced.NumEdges(), fixed.Reduced.NumEdges())
	}
}

func TestCRRImportanceVariants(t *testing.T) {
	g := gen.BarabasiAlbert(150, 3, 33)
	for _, im := range []Importance{ImportanceBetweenness, ImportanceDegreeProduct, ImportanceRandom} {
		res, err := (CRR{Seed: 3, Importance: im}).Reduce(g, 0.4)
		if err != nil {
			t.Fatalf("%v: %v", im, err)
		}
		want := int(math.Round(0.4 * float64(g.NumEdges())))
		if got := res.Reduced.NumEdges(); got != want {
			t.Errorf("%v: |E'| = %d, want %d", im, got, want)
		}
		if res.AvgDisPerNode() >= CRRBound(g, 0.4) {
			t.Errorf("%v: broke Theorem 1 bound", im)
		}
	}
}

func TestImportanceString(t *testing.T) {
	if ImportanceBetweenness.String() != "betweenness" ||
		ImportanceDegreeProduct.String() != "degree-product" ||
		ImportanceRandom.String() != "random" {
		t.Error("Importance strings wrong")
	}
	if Importance(42).String() != "Importance(42)" {
		t.Errorf("unknown importance string = %q", Importance(42).String())
	}
}

func TestCRRDegreeProductKeepsHubEdges(t *testing.T) {
	// Phase 1 with degree-product importance must rank hub-hub edges first.
	g := gen.Star(20) // all edges hub-leaf with equal product: check no crash
	res, err := (CRR{Seed: 1, Steps: -1, Importance: ImportanceDegreeProduct}).Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduced.NumEdges() != 10 {
		t.Errorf("|E'| = %d, want 10", res.Reduced.NumEdges())
	}
}

func TestCRRTinyP(t *testing.T) {
	g := gen.Cycle(10) // [0.01 * 10] = 0 edges
	res, err := CRR{Seed: 1}.Reduce(g, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduced.NumEdges() != 0 {
		t.Errorf("|E'| = %d, want 0", res.Reduced.NumEdges())
	}
	if res.ActiveNodes() != 0 {
		t.Errorf("ActiveNodes = %d, want 0", res.ActiveNodes())
	}
}

// TestCRRSweepBitIdenticalAcrossWorkerCounts pins the parallel Sweep's
// determinism contract: every worker count — including counts that do not
// divide the ratio count — produces exactly the serial results. Runs under
// -race in CI, which also proves the per-ratio reductions share no mutable
// state.
func TestCRRSweepBitIdenticalAcrossWorkerCounts(t *testing.T) {
	ps := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	for name, g := range map[string]*graph.Graph{
		"barabasi-albert":   gen.BarabasiAlbert(300, 3, 5),
		"planted-partition": gen.PlantedPartition(3, 80, 0.08, 0.01, 6),
	} {
		base := CRR{Seed: 21, Importance: ImportanceDegreeProduct}
		base.Workers = 1
		want, err := base.Sweep(g, ps)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 7} {
			c := base
			c.Workers = workers
			got, err := c.Sweep(g, ps)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ps {
				ge, we := got[i].Reduced.Edges(), want[i].Reduced.Edges()
				if len(ge) != len(we) {
					t.Fatalf("%s workers=%d p=%v: %d edges, serial kept %d",
						name, workers, ps[i], len(ge), len(we))
				}
				for j := range ge {
					if ge[j] != we[j] {
						t.Fatalf("%s workers=%d p=%v: edge %d = %v, serial has %v",
							name, workers, ps[i], j, ge[j], we[j])
					}
				}
			}
		}
	}
}

// TestCRRReduceBitIdenticalAcrossWorkersAndBatch pins the end-to-end CRR
// determinism contract on the batched MS-BFS Phase 1: the kept edge set is a
// function of (graph, p, Seed, Steps) alone, so any Workers count and any
// MS-BFS Batch width of the betweenness kernel must reproduce the baseline
// reduction edge for edge — the knobs regroup Phase 1's traversals without
// moving one score bit, so the ranking, tie-breaks and Phase 2 rng stream
// are untouched.
func TestCRRReduceBitIdenticalAcrossWorkersAndBatch(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 31)
	base := CRR{Seed: 5, Steps: 200}
	want, err := base.Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	wantEdges := want.Reduced.Edges()
	for _, workers := range []int{1, 2, 4, 7} {
		for _, batch := range []int{1, 8, 64} {
			c := base
			c.Betweenness = centrality.Options{Workers: workers, Batch: batch}
			got, err := c.Reduce(g, 0.5)
			if err != nil {
				t.Fatalf("workers=%d batch=%d: %v", workers, batch, err)
			}
			gotEdges := got.Reduced.Edges()
			if len(gotEdges) != len(wantEdges) {
				t.Fatalf("workers=%d batch=%d: |E'| = %d, want %d",
					workers, batch, len(gotEdges), len(wantEdges))
			}
			for i := range wantEdges {
				if gotEdges[i] != wantEdges[i] {
					t.Fatalf("workers=%d batch=%d: kept edge %d = %v, want %v",
						workers, batch, i, gotEdges[i], wantEdges[i])
				}
			}
			if got.Delta() != want.Delta() {
				t.Fatalf("workers=%d batch=%d: Δ = %v, want %v",
					workers, batch, got.Delta(), want.Delta())
			}
		}
	}
}
