package core

import (
	"math"
	"testing"

	"edgeshed/internal/graph"
)

// paperExample reconstructs the 11-node, 11-edge running example of
// Figures 1-3 (u1..u11 mapped to ids 0..10): u7 is the hub adjacent to
// u1..u6 and u9; u9 also links u8, u10 and u11; u8-u10 closes the triangle.
// With p = 0.4 the expected degrees match the figure annotations
// (E(u7) = 2.8, E(u9) = 1.6, E(u8) = E(u10) = 0.8, leaves 0.4).
func paperExample() *graph.Graph {
	u := func(i int) graph.NodeID { return graph.NodeID(i - 1) }
	var edges []graph.Edge
	for i := 1; i <= 6; i++ {
		edges = append(edges, graph.Edge{U: u(i), V: u(7)})
	}
	edges = append(edges,
		graph.Edge{U: u(7), V: u(9)},
		graph.Edge{U: u(8), V: u(10)},
		graph.Edge{U: u(9), V: u(11)},
		graph.Edge{U: u(8), V: u(9)},
		graph.Edge{U: u(9), V: u(10)},
	)
	return graph.MustFromEdges(11, edges)
}

func TestPaperExampleShape(t *testing.T) {
	g := paperExample()
	if g.NumEdges() != 11 {
		t.Fatalf("|E| = %d, want 11", g.NumEdges())
	}
	wantDeg := map[int]int{7: 7, 9: 4, 8: 2, 10: 2, 11: 1, 1: 1, 2: 1, 3: 1, 4: 1, 5: 1, 6: 1}
	for ui, want := range wantDeg {
		if got := g.Degree(graph.NodeID(ui - 1)); got != want {
			t.Errorf("deg(u%d) = %d, want %d", ui, got, want)
		}
	}
}

func TestCRRPaperExample(t *testing.T) {
	g := paperExample()
	res, err := CRR{Seed: 3}.Reduce(g, 0.4)
	if err != nil {
		t.Fatalf("CRR: %v", err)
	}
	// [P] = [0.4·11] = 4 exactly (Example 1).
	if got := res.Reduced.NumEdges(); got != 4 {
		t.Errorf("|E'| = %d, want 4", got)
	}
	// The paper's final selection reaches Δ = 4.4; CRR should land at or
	// near that optimum on this tiny instance.
	if d := res.Delta(); d > 5.2+1e-9 {
		t.Errorf("Δ = %v, want <= 5.2 (paper reaches 4.4)", d)
	}
	if err := res.Reduced.Validate(); err != nil {
		t.Errorf("reduced graph invalid: %v", err)
	}
}

func TestBM2PaperExample(t *testing.T) {
	g := paperExample()
	res, err := BM2{}.Reduce(g, 0.4)
	if err != nil {
		t.Fatalf("BM2: %v", err)
	}
	// BM2's Phase 1 may find a different maximal b-matching than the figure,
	// but the quality and size must be comparable: the paper's run ends at
	// |E'| = 4, Δ = 4.4.
	if got := res.Reduced.NumEdges(); got < 3 || got > 5 {
		t.Errorf("|E'| = %d, want 3..5", got)
	}
	if d := res.Delta(); d > 5.5 {
		t.Errorf("Δ = %v, want <= 5.5 (paper reaches 4.4)", d)
	}
	// BM2 invariant: no node ends more than 1 above its expected degree
	// (capacity rounding adds at most 0.5; Algorithm 3 stops adding to a
	// node before its discrepancy passes +1).
	for ui := 0; ui < g.NumNodes(); ui++ {
		if dis := res.Dis(graph.NodeID(ui)); dis >= 1 {
			t.Errorf("dis(u%d) = %v, want < 1", ui+1, dis)
		}
	}
}

func TestPaperExampleExpectedDegrees(t *testing.T) {
	g := paperExample()
	res, err := Random{Seed: 1}.Reduce(g, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1(a) annotations.
	want := map[int]float64{7: 2.8, 9: 1.6, 8: 0.8, 10: 0.8, 1: 0.4, 11: 0.4}
	for ui, w := range want {
		if got := res.ExpectedDegree(graph.NodeID(ui - 1)); math.Abs(got-w) > 1e-9 {
			t.Errorf("E(deg(u%d)) = %v, want %v", ui, got, w)
		}
	}
}
