package core

import (
	"math"
	"testing"
	"testing/quick"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

func allBaselines() []Reducer {
	return []Reducer{
		ForestFire{Seed: 1},
		SpanningForest{Seed: 2},
		WeightedSample{Seed: 3},
	}
}

func TestBaselineNames(t *testing.T) {
	want := []string{"ForestFire", "SpanningForest", "WeightedSample"}
	for i, r := range allBaselines() {
		if r.Name() != want[i] {
			t.Errorf("baseline %d name = %q, want %q", i, r.Name(), want[i])
		}
	}
}

func TestBaselinesProduceValidSubgraphs(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 5)
	for _, r := range allBaselines() {
		for _, p := range []float64{0.2, 0.5, 0.8} {
			res, err := r.Reduce(g, p)
			if err != nil {
				t.Fatalf("%s p=%v: %v", r.Name(), p, err)
			}
			if err := res.Reduced.Validate(); err != nil {
				t.Errorf("%s p=%v: invalid: %v", r.Name(), p, err)
			}
			for _, e := range res.Reduced.Edges() {
				if !g.HasEdge(e.U, e.V) {
					t.Fatalf("%s: foreign edge %v", r.Name(), e)
				}
			}
		}
	}
}

func TestBaselinesRejectBadP(t *testing.T) {
	g := gen.Cycle(10)
	for _, r := range allBaselines() {
		for _, p := range []float64{0, 1, math.NaN()} {
			if _, err := r.Reduce(g, p); err == nil {
				t.Errorf("%s accepted p = %v", r.Name(), p)
			}
		}
	}
}

func TestBaselineEdgeCounts(t *testing.T) {
	// ForestFire, SpanningForest and WeightedSample all hit the exact [P]
	// budget on connected graphs.
	g := gen.BarabasiAlbert(150, 3, 7)
	for _, r := range allBaselines() {
		res, err := r.Reduce(g, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		want := int(math.Round(0.4 * float64(g.NumEdges())))
		if got := res.Reduced.NumEdges(); got != want {
			t.Errorf("%s: |E'| = %d, want %d", r.Name(), got, want)
		}
	}
}

func TestSpanningForestPreservesConnectivity(t *testing.T) {
	// With budget >= |V|-1 on a connected graph, the reduction must remain
	// connected.
	g := gen.BarabasiAlbert(100, 3, 9) // |E| ≈ 294, |V|-1 = 99
	res, err := (SpanningForest{Seed: 4}).Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !connected(res.Reduced) {
		t.Error("SpanningForest reduction disconnected despite sufficient budget")
	}
}

// connected reports whether all nodes are reachable from node 0.
func connected(g *graph.Graph) bool {
	if g.NumNodes() == 0 {
		return true
	}
	seen := make([]bool, g.NumNodes())
	queue := []graph.NodeID{0}
	seen[0] = true
	count := 1
	for head := 0; head < len(queue); head++ {
		for _, w := range g.Neighbors(queue[head]) {
			if !seen[w] {
				seen[w] = true
				count++
				queue = append(queue, w)
			}
		}
	}
	return count == g.NumNodes()
}

func TestSpanningForestTruncatedBudget(t *testing.T) {
	// Budget below |V|-1: the forest itself is truncated, count still exact.
	g := gen.Cycle(100) // 100 edges; p=0.5 -> 50 < 99
	res, err := (SpanningForest{Seed: 5}).Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduced.NumEdges() != 50 {
		t.Errorf("|E'| = %d, want 50", res.Reduced.NumEdges())
	}
}

func TestWeightedSampleProtectsLeaves(t *testing.T) {
	// A star with a clique attached: weighted sampling with high alpha keeps
	// more leaf edges (low degree product) than uniform sampling does on
	// average.
	b := graph.NewBuilder(40)
	for v := 1; v < 20; v++ {
		b.TryAddEdge(0, graph.NodeID(v)) // star: deg product 19*1
	}
	for u := 20; u < 40; u++ {
		for v := u + 1; v < 40; v++ {
			b.TryAddEdge(graph.NodeID(u), graph.NodeID(v)) // clique: high degrees
		}
	}
	g := b.Graph()
	leafEdges := func(res *Result) int {
		n := 0
		for _, e := range res.Reduced.Edges() {
			if e.U == 0 {
				n++
			}
		}
		return n
	}
	var weighted, uniform int
	for seed := int64(0); seed < 10; seed++ {
		wRes, err := (WeightedSample{Alpha: 1.5, Seed: seed}).Reduce(g, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		uRes, err := (Random{Seed: seed}).Reduce(g, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		weighted += leafEdges(wRes)
		uniform += leafEdges(uRes)
	}
	if weighted <= uniform {
		t.Errorf("weighted kept %d leaf edges vs uniform %d; want more", weighted, uniform)
	}
}

func TestForestFireLocality(t *testing.T) {
	// Forest fire burns locally: the edges it keeps should form far fewer
	// connected pieces than a uniform sample of the same size on a sparse
	// graph.
	g := gen.ErdosRenyi(400, 800, 11)
	ff, err := (ForestFire{Seed: 12}).Reduce(g, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := (Random{Seed: 12}).Reduce(g, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if cf, cr := activeComponents(ff.Reduced), activeComponents(rnd.Reduced); cf >= cr {
		t.Errorf("forest fire pieces = %d, uniform pieces = %d; want fewer", cf, cr)
	}
}

// activeComponents counts connected components among non-isolated nodes.
func activeComponents(g *graph.Graph) int {
	seen := make([]bool, g.NumNodes())
	count := 0
	var queue []graph.NodeID
	for s := 0; s < g.NumNodes(); s++ {
		if seen[s] || g.Degree(graph.NodeID(s)) == 0 {
			continue
		}
		count++
		seen[s] = true
		queue = append(queue[:0], graph.NodeID(s))
		for head := 0; head < len(queue); head++ {
			for _, w := range g.Neighbors(queue[head]) {
				if !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return count
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(6)
	if !uf.union(0, 1) || !uf.union(2, 3) {
		t.Fatal("fresh unions reported as duplicates")
	}
	if uf.union(1, 0) {
		t.Error("duplicate union reported as fresh")
	}
	if uf.find(0) != uf.find(1) {
		t.Error("0 and 1 not merged")
	}
	if uf.find(0) == uf.find(2) {
		t.Error("separate sets share a root")
	}
	uf.union(1, 3)
	if uf.find(0) != uf.find(2) {
		t.Error("transitive merge failed")
	}
	if uf.find(4) == uf.find(5) {
		t.Error("untouched elements merged")
	}
}

func TestBaselinesDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.BarabasiAlbert(80, 2, seed)
		for _, mk := range []func(int64) Reducer{
			func(s int64) Reducer { return ForestFire{Seed: s} },
			func(s int64) Reducer { return SpanningForest{Seed: s} },
			func(s int64) Reducer { return WeightedSample{Seed: s} },
		} {
			a, err := mk(seed).Reduce(g, 0.5)
			if err != nil {
				return false
			}
			b, err := mk(seed).Reduce(g, 0.5)
			if err != nil {
				return false
			}
			ae, be := a.Reduced.Edges(), b.Reduced.Edges()
			if len(ae) != len(be) {
				return false
			}
			for i := range ae {
				if ae[i] != be[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestDegreePreservingBeatsAllBaselinesOnDelta(t *testing.T) {
	// The paper's thesis extended: CRR and BM2 beat every simplification
	// baseline on the degree-discrepancy objective.
	g := gen.ConfigurationModel(gen.PowerLawDegrees(400, 2.2, 1, 50, 31), 32)
	p := 0.5
	crr, err := (CRR{Seed: 1}).Reduce(g, p)
	if err != nil {
		t.Fatal(err)
	}
	bm2, err := (BM2{}).Reduce(g, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range allBaselines() {
		res, err := r.Reduce(g, p)
		if err != nil {
			t.Fatal(err)
		}
		if crr.Delta() >= res.Delta() {
			t.Errorf("CRR Δ=%v not better than %s Δ=%v", crr.Delta(), r.Name(), res.Delta())
		}
		if bm2.Delta() >= res.Delta() {
			t.Errorf("BM2 Δ=%v not better than %s Δ=%v", bm2.Delta(), r.Name(), res.Delta())
		}
	}
}
