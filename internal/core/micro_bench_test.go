package core

import (
	"fmt"
	"testing"

	"edgeshed/internal/centrality"
	"edgeshed/internal/graph/gen"
)

func BenchmarkCRRReduce(b *testing.B) {
	g := gen.BarabasiAlbert(2000, 4, 1)
	for _, p := range []float64{0.5, 0.1} {
		b.Run(fmt.Sprintf("p=%.1f", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (CRR{Seed: 1, Betweenness: centrality.Options{Samples: 128, Seed: 2}}).Reduce(g, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBM2Reduce(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 4, 1)
	for _, p := range []float64{0.5, 0.1} {
		b.Run(fmt.Sprintf("p=%.1f", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (BM2{}).Reduce(g, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCRRPhase2Only(b *testing.B) {
	// Isolate the rewiring loop's throughput: random importance skips the
	// betweenness computation entirely.
	g := gen.BarabasiAlbert(5000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (CRR{Seed: 1, Importance: ImportanceRandom}).Reduce(g, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomReduce(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Random{Seed: 1}).Reduce(g, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResultDelta(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 4, 1)
	res, err := (Random{Seed: 1}).Reduce(g, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Delta()
	}
}
