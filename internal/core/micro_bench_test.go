package core

import (
	"fmt"
	"testing"

	"edgeshed/internal/centrality"
	"edgeshed/internal/graph/gen"
)

func BenchmarkCRRReduce(b *testing.B) {
	g := gen.BarabasiAlbert(2000, 4, 1)
	for _, p := range []float64{0.5, 0.1} {
		b.Run(fmt.Sprintf("p=%.1f", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (CRR{Seed: 1, Betweenness: centrality.Options{Samples: 128, Seed: 2}}).Reduce(g, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBM2Reduce(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 4, 1)
	for _, p := range []float64{0.5, 0.1} {
		b.Run(fmt.Sprintf("p=%.1f", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (BM2{}).Reduce(g, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// The MapIndexed/CSRIndexed and Serial/Parallel pairs below feed
// bench-shedding: the old variant runs the preserved pre-migration
// implementation from oracle_test.go (or Workers = 1 for the sweep), the new
// one the production code, and benchjson derives each stem's speedup.

func BenchmarkCRRReduceMapIndexed(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := seedCRRReduce(CRR{Seed: 1, Importance: ImportanceDegreeProduct}, g, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCRRReduceCSRIndexed(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (CRR{Seed: 1, Importance: ImportanceDegreeProduct}).Reduce(g, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBM2ReduceMapIndexed(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := seedBM2Reduce(BM2{}, g, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBM2ReduceCSRIndexed(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (BM2{}).Reduce(g, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCRRSweep runs the 9-point ratio sweep at the given worker count.
func benchCRRSweep(b *testing.B, workers int) {
	g := gen.BarabasiAlbert(5000, 4, 1)
	ps := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	c := CRR{Seed: 1, Importance: ImportanceRandom, Workers: workers}
	g.CSR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Sweep(g, ps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCRRSweepSerial(b *testing.B) { benchCRRSweep(b, 1) }

func BenchmarkCRRSweepParallel(b *testing.B) { benchCRRSweep(b, 0) }

func BenchmarkCRRPhase2Only(b *testing.B) {
	// Isolate the rewiring loop's throughput: random importance skips the
	// betweenness computation entirely.
	g := gen.BarabasiAlbert(5000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (CRR{Seed: 1, Importance: ImportanceRandom}).Reduce(g, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomReduce(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Random{Seed: 1}).Reduce(g, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResultDelta(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 4, 1)
	res, err := (Random{Seed: 1}).Reduce(g, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Delta()
	}
}

// The CRRReduceExact pair is the end-to-end half of PR 8's perf criterion,
// recorded in BENCH_shedding.json: a full exact-betweenness CRR reduction
// with Phase 1 on the preserved per-source scorer versus the batched MS-BFS
// edge-dependency fold, single worker, identical Phase 2. The gap between
// the two is the CRR speedup the batched scorer buys in practice.

func BenchmarkCRRReduceExactPerSource(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 4, 1)
	g.CSR()
	c := CRR{Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scores := centrality.PerSourceEdgeBetweennessScores(g, centrality.Options{Workers: 1, Seed: c.Seed + 1})
		if _, err := c.reduce(g, 0.5, scores, c.Seed, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCRRReduceExactMSBFS(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 4, 1)
	g.CSR()
	c := CRR{Seed: 1, Betweenness: centrality.Options{Workers: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Reduce(g, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}
