package core

import (
	"math"
	"math/rand"
	"sort"

	"edgeshed/internal/centrality"
	"edgeshed/internal/graph"
)

// TargetedCRR is an extension of CRR that replaces Phase 2's random swap
// attempts with targeted repair: it repeatedly visits the node with the
// largest positive discrepancy (too many kept edges) and the node with the
// most negative one (too few), and applies the single best swap incident to
// them. Each move is chosen greedily instead of sampled, so the same Δ
// reduction needs far fewer iterations than the paper's [10·P] random
// attempts — at the cost of maintaining per-node incidence lists.
//
// This is "future work" relative to the paper: Algorithm 1's Phase 2 is
// the random variant.
type TargetedCRR struct {
	// MaxRounds caps repair sweeps; 0 means 4·|V| visits, which saturates
	// in practice.
	MaxRounds int
	// Importance and Betweenness configure Phase 1 exactly as in CRR.
	Importance  Importance
	Betweenness centrality.Options
	// Seed drives Phase 1 tie-shuffling.
	Seed int64
}

// Name implements Reducer.
func (TargetedCRR) Name() string { return "TargetedCRR" }

// Reduce implements Reducer.
func (c TargetedCRR) Reduce(g *graph.Graph, p float64) (*Result, error) {
	if err := checkP(p); err != nil {
		return nil, err
	}
	tgt := targetEdges(g, p)
	m := g.NumEdges()
	if tgt >= m {
		return newResult(g, p, g.Edges())
	}
	// Phase 1: identical ranking to CRR.
	rng := rand.New(rand.NewSource(c.Seed))
	scores := (CRR{Seed: c.Seed, Importance: c.Importance, Betweenness: c.Betweenness}).edgeImportance(g)
	order := rng.Perm(m)
	sort.SliceStable(order, func(i, j int) bool {
		return scores[order[i]] > scores[order[j]]
	})
	st := newTargetedState(g, p)
	for i, oi := range order {
		st.setKept(g.Edges()[oi], i < tgt)
	}

	// Phase 2: targeted repair.
	rounds := c.MaxRounds
	if rounds <= 0 {
		rounds = 4 * g.NumNodes()
	}
	for i := 0; i < rounds; i++ {
		if !st.repairOnce() {
			break
		}
	}
	return newResult(g, p, st.keptEdges())
}

// targetedState maintains per-node incidence lists split into kept and shed
// edges, plus discrepancies.
type targetedState struct {
	g    *graph.Graph
	p    float64
	kept map[graph.Edge]bool
	dis  []float64
	// incident edges per node (all edges; kept-ness looked up in the map).
	incident [][]graph.Edge
}

func newTargetedState(g *graph.Graph, p float64) *targetedState {
	st := &targetedState{
		g:        g,
		p:        p,
		kept:     make(map[graph.Edge]bool, g.NumEdges()),
		dis:      make([]float64, g.NumNodes()),
		incident: make([][]graph.Edge, g.NumNodes()),
	}
	for u := 0; u < g.NumNodes(); u++ {
		st.dis[u] = -p * float64(g.Degree(graph.NodeID(u)))
	}
	for _, e := range g.Edges() {
		st.incident[e.U] = append(st.incident[e.U], e)
		st.incident[e.V] = append(st.incident[e.V], e)
	}
	return st
}

// setKept initializes an edge's kept flag, updating discrepancies.
func (st *targetedState) setKept(e graph.Edge, kept bool) {
	st.kept[e] = kept
	if kept {
		st.dis[e.U]++
		st.dis[e.V]++
	}
}

// repairOnce performs the best swap anchored at the most discrepant nodes;
// it reports whether any improving move was applied.
func (st *targetedState) repairOnce() bool {
	// Locate extremes.
	hi, lo := -1, -1
	for u := range st.dis {
		if st.dis[u] > 0.5 && (hi < 0 || st.dis[u] > st.dis[hi]) {
			hi = u
		}
		if st.dis[u] < -0.5 && (lo < 0 || st.dis[u] < st.dis[lo]) {
			lo = u
		}
	}
	if hi < 0 && lo < 0 {
		return false
	}
	// Candidate removal: hi's kept edge whose removal helps most.
	var remove, add graph.Edge
	removeGain := math.Inf(1)
	if hi >= 0 {
		for _, e := range st.incident[hi] {
			if !st.kept[e] {
				continue
			}
			d := st.pairChange(e, -1)
			if d < removeGain {
				removeGain = d
				remove = e
			}
		}
	}
	addGain := math.Inf(1)
	if lo >= 0 {
		for _, e := range st.incident[lo] {
			if st.kept[e] {
				continue
			}
			d := st.pairChange(e, +1)
			if d < addGain {
				addGain = d
				add = e
			}
		}
	}
	// A swap must keep |E'| fixed: need both a removal and an addition. If
	// either side is missing, fall back to the best removal+addition found
	// by scanning the other side's extremes too.
	if math.IsInf(removeGain, 1) || math.IsInf(addGain, 1) {
		return false
	}
	if remove == add {
		return false
	}
	total := swapChange(st, remove, add)
	if total >= 0 {
		return false
	}
	st.apply(remove, add)
	return true
}

// pairChange returns the Δ change of shifting both endpoints of e by delta.
func (st *targetedState) pairChange(e graph.Edge, delta int) float64 {
	d := float64(delta)
	return math.Abs(st.dis[e.U]+d) - math.Abs(st.dis[e.U]) +
		math.Abs(st.dis[e.V]+d) - math.Abs(st.dis[e.V])
}

// swapChange evaluates the exact Δ change of the remove+add pair, handling
// shared endpoints.
func swapChange(st *targetedState, remove, add graph.Edge) float64 {
	return deltaChange(func(u graph.NodeID) float64 { return st.dis[u] }, remove, add)
}

// apply commits the swap.
func (st *targetedState) apply(remove, add graph.Edge) {
	st.kept[remove] = false
	st.dis[remove.U]--
	st.dis[remove.V]--
	st.kept[add] = true
	st.dis[add.U]++
	st.dis[add.V]++
}

// keptEdges collects the kept edge set in canonical order.
func (st *targetedState) keptEdges() []graph.Edge {
	var out []graph.Edge
	for _, e := range st.g.Edges() {
		if st.kept[e] {
			out = append(out, e)
		}
	}
	return out
}
