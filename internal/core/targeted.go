package core

import (
	"math"

	"edgeshed/internal/centrality"
	"edgeshed/internal/graph"
	"edgeshed/internal/obs"
)

// TargetedCRR is an extension of CRR that replaces Phase 2's random swap
// attempts with targeted repair: it repeatedly visits the node with the
// largest positive discrepancy (too many kept edges) and the node with the
// most negative one (too few), and applies the single best swap incident to
// them. Each move is chosen greedily instead of sampled, so the same Δ
// reduction needs far fewer iterations than the paper's [10·P] random
// attempts — and the per-node incidence lists it needs come free from the
// CSR view's slot ranges, so the repair state is just two flat arrays.
//
// This is "future work" relative to the paper: Algorithm 1's Phase 2 is
// the random variant.
type TargetedCRR struct {
	// MaxRounds caps repair sweeps; 0 means 4·|V| visits, which saturates
	// in practice.
	MaxRounds int
	// Importance and Betweenness configure Phase 1 exactly as in CRR.
	Importance  Importance
	Betweenness centrality.Options
	// Seed drives Phase 1 tie-breaking.
	Seed int64
	// Obs is the parent observability span; nil (the zero value) records
	// nothing at no cost. When set, Reduce reports a "targeted.reduce" span
	// and a "targeted.repair.rounds" counter; results stay bit-identical
	// with Obs on or off.
	Obs *obs.Span
}

// Name implements Reducer.
func (TargetedCRR) Name() string { return "TargetedCRR" }

// Reduce implements Reducer.
func (c TargetedCRR) Reduce(g *graph.Graph, p float64) (*Result, error) {
	if err := checkP(p); err != nil {
		return nil, err
	}
	sp := c.Obs.Start("targeted.reduce")
	defer sp.End()
	tgt := targetEdges(g, p)
	m := g.NumEdges()
	if tgt >= m {
		return newResult(g, p, g.Edges())
	}
	// Phase 1: identical ranking to CRR.
	scores := (CRR{Seed: c.Seed, Importance: c.Importance, Betweenness: c.Betweenness}).edgeImportance(g, sp)
	order := rankEdges(scores, c.Seed)
	st := newTargetedState(g, p)
	for i, id := range order {
		st.setKept(id, i < tgt)
	}

	// Phase 2: targeted repair.
	rounds := c.MaxRounds
	if rounds <= 0 {
		rounds = 4 * g.NumNodes()
	}
	done := 0
	for i := 0; i < rounds; i++ {
		if !st.repairOnce() {
			break
		}
		done++
	}
	if sp.Enabled() {
		sp.Counter("targeted.repair.rounds").Add(int64(done))
	}
	return newResultIDs(g, p, st.keptIDs())
}

// targetedState maintains the kept flags (a []bool over canonical edge ids)
// and per-node discrepancies; incidence is read straight off the CSR view's
// slot ranges, which enumerate each node's edges in the same order the old
// per-node lists did.
type targetedState struct {
	g    *graph.Graph
	csr  *graph.CSR
	p    float64
	kept []bool
	dis  []float64
}

func newTargetedState(g *graph.Graph, p float64) *targetedState {
	st := &targetedState{
		g:    g,
		csr:  g.CSR(),
		p:    p,
		kept: make([]bool, g.NumEdges()),
		dis:  make([]float64, g.NumNodes()),
	}
	for u := 0; u < g.NumNodes(); u++ {
		st.dis[u] = -p * float64(g.Degree(graph.NodeID(u)))
	}
	return st
}

// setKept initializes an edge's kept flag, updating discrepancies.
func (st *targetedState) setKept(id int32, kept bool) {
	st.kept[id] = kept
	if kept {
		st.dis[st.csr.EdgeU[id]]++
		st.dis[st.csr.EdgeV[id]]++
	}
}

// repairOnce performs the best swap anchored at the most discrepant nodes;
// it reports whether any improving move was applied.
func (st *targetedState) repairOnce() bool {
	// Locate extremes.
	hi, lo := -1, -1
	for u := range st.dis {
		if st.dis[u] > 0.5 && (hi < 0 || st.dis[u] > st.dis[hi]) {
			hi = u
		}
		if st.dis[u] < -0.5 && (lo < 0 || st.dis[u] < st.dis[lo]) {
			lo = u
		}
	}
	if hi < 0 && lo < 0 {
		return false
	}
	// Candidate removal: hi's kept edge whose removal helps most.
	remove, add := int32(-1), int32(-1)
	removeGain := math.Inf(1)
	if hi >= 0 {
		for s := st.csr.Offsets[hi]; s < st.csr.Offsets[hi+1]; s++ {
			id := st.csr.EdgeID[s]
			if !st.kept[id] {
				continue
			}
			d := st.pairChange(id, -1)
			if d < removeGain {
				removeGain = d
				remove = id
			}
		}
	}
	addGain := math.Inf(1)
	if lo >= 0 {
		for s := st.csr.Offsets[lo]; s < st.csr.Offsets[lo+1]; s++ {
			id := st.csr.EdgeID[s]
			if st.kept[id] {
				continue
			}
			d := st.pairChange(id, +1)
			if d < addGain {
				addGain = d
				add = id
			}
		}
	}
	// A swap must keep |E'| fixed: need both a removal and an addition. If
	// either side is missing, fall back to the best removal+addition found
	// by scanning the other side's extremes too.
	if math.IsInf(removeGain, 1) || math.IsInf(addGain, 1) {
		return false
	}
	if remove == add {
		return false
	}
	total := swapChange(st, remove, add)
	if total >= 0 {
		return false
	}
	st.apply(remove, add)
	return true
}

// pairChange returns the Δ change of shifting both endpoints of edge id by
// delta.
func (st *targetedState) pairChange(id int32, delta int) float64 {
	u, v := st.csr.EdgeU[id], st.csr.EdgeV[id]
	d := float64(delta)
	return math.Abs(st.dis[u]+d) - math.Abs(st.dis[u]) +
		math.Abs(st.dis[v]+d) - math.Abs(st.dis[v])
}

// swapChange evaluates the exact Δ change of the remove+add pair, handling
// shared endpoints.
func swapChange(st *targetedState, remove, add int32) float64 {
	return deltaChange(func(u graph.NodeID) float64 { return st.dis[u] },
		st.csr.EdgeU[remove], st.csr.EdgeV[remove],
		st.csr.EdgeU[add], st.csr.EdgeV[add])
}

// apply commits the swap.
func (st *targetedState) apply(remove, add int32) {
	st.kept[remove] = false
	st.dis[st.csr.EdgeU[remove]]--
	st.dis[st.csr.EdgeV[remove]]--
	st.kept[add] = true
	st.dis[st.csr.EdgeU[add]]++
	st.dis[st.csr.EdgeV[add]]++
}

// keptIDs collects the kept edge ids in ascending order.
func (st *targetedState) keptIDs() []int32 {
	var out []int32
	for id, k := range st.kept {
		if k {
			out = append(out, int32(id))
		}
	}
	return out
}
