package core

// This file preserves the pre-flat shedding implementations — edge-struct
// CRR Phase 2, the map-adjacency pointer-handle BM2, the map-deduplicated
// ForestFire — verbatim as oracles, in the style the parallel analysis
// kernels established: the production code may change representation freely,
// but these tests pin its output bit-for-bit to what the simpler structures
// computed. They double as the "old" side of the bench-shedding pairs.
//
// CRR's Phase 1 ranking is the one deliberate behavior change of the flat
// migration (rng.Perm + stable sort → splitmix64 tie keys), so the CRR
// oracle shares the new ranking and pins Phase 2 + result assembly; BM2 and
// ForestFire have no such change and are pinned end to end.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"edgeshed/internal/centrality"
	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
	"edgeshed/internal/matching"
)

// seedCRRPhase2 is CRR.reduce as it stood before the edge-id migration —
// kept edges as graph.Edge values, discrepancies recomputed from
// g.Degree — except that Phase 1 uses the shared rankEdges order, so the
// comparison isolates the representation change.
func seedCRRPhase2(c CRR, g *graph.Graph, p float64, seed int64) (*Result, error) {
	if err := checkP(p); err != nil {
		return nil, err
	}
	tgt := targetEdges(g, p)
	m := g.NumEdges()
	if tgt >= m {
		return newResult(g, p, g.Edges())
	}
	scores := c.edgeImportance(g, nil)
	order := rankEdges(scores, seed)
	all := g.Edges()
	kept := make([]graph.Edge, m)
	for i, id := range order {
		kept[i] = all[id]
	}
	degKept := make([]int, g.NumNodes())
	for _, e := range kept[:tgt] {
		degKept[e.U]++
		degKept[e.V]++
	}
	dis := func(u graph.NodeID) float64 {
		return float64(degKept[u]) - p*float64(g.Degree(u))
	}
	if tgt > 0 && tgt < m {
		rng := rand.New(rand.NewSource(seed))
		steps := c.steps(tgt)
		accepted, window := 0, 0
		for i := 0; i < steps; i++ {
			ki := rng.Intn(tgt)
			si := tgt + rng.Intn(m-tgt)
			e1, e2 := kept[ki], kept[si]
			d := deltaChange(dis, e1.U, e1.V, e2.U, e2.V)
			if d < 0 {
				kept[ki], kept[si] = e2, e1
				degKept[e1.U]--
				degKept[e1.V]--
				degKept[e2.U]++
				degKept[e2.V]++
				accepted++
			}
			if c.AdaptiveStop > 0 {
				window++
				if window == adaptiveWindow {
					if float64(accepted)/float64(window) < c.AdaptiveStop {
						break
					}
					accepted, window = 0, 0
				}
			}
		}
	}
	return newResult(g, p, kept[:tgt])
}

// seedCRRReduce is the complete pre-migration CRR pipeline, including the
// rng.Perm + sort.SliceStable ranking. Its output differs from CRR.Reduce
// by the documented tie-break change; it exists as the "old" side of
// BenchmarkCRRReduceMapIndexed, not as an equality oracle.
func seedCRRReduce(c CRR, g *graph.Graph, p float64) (*Result, error) {
	if err := checkP(p); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	tgt := targetEdges(g, p)
	m := g.NumEdges()
	if tgt >= m {
		return newResult(g, p, g.Edges())
	}
	scores := c.edgeImportance(g, nil)
	order := rng.Perm(m)
	sort.SliceStable(order, func(i, j int) bool {
		return scores[order[i]] > scores[order[j]]
	})
	all := g.Edges()
	kept := make([]graph.Edge, m)
	for i, oi := range order {
		kept[i] = all[oi]
	}
	degKept := make([]int, g.NumNodes())
	for _, e := range kept[:tgt] {
		degKept[e.U]++
		degKept[e.V]++
	}
	dis := func(u graph.NodeID) float64 {
		return float64(degKept[u]) - p*float64(g.Degree(u))
	}
	if tgt > 0 && tgt < m {
		steps := c.steps(tgt)
		for i := 0; i < steps; i++ {
			ki := rng.Intn(tgt)
			si := tgt + rng.Intn(m-tgt)
			e1, e2 := kept[ki], kept[si]
			if deltaChange(dis, e1.U, e1.V, e2.U, e2.V) < 0 {
				kept[ki], kept[si] = e2, e1
				degKept[e1.U]--
				degKept[e1.V]--
				degKept[e2.U]++
				degKept[e2.V]++
			}
		}
	}
	return newResult(g, p, kept[:tgt])
}

// seedBM2Reduce is BM2.Reduce as it stood before the FlatPQ migration:
// pointer-handle priority queue, map-of-handle-slices adjacency.
func seedBM2Reduce(b BM2, g *graph.Graph, p float64) (*Result, error) {
	if err := checkP(p); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	caps := make([]int, n)
	for u := 0; u < n; u++ {
		caps[u] = b.Rounding.apply(p * float64(g.Degree(graph.NodeID(u))))
	}
	bm, err := matching.GreedyBMatching(g, caps, b.Order)
	if err != nil {
		return nil, err
	}
	selected := append([]graph.Edge(nil), bm.Edges...)
	inSelected := make([]bool, g.NumEdges())
	for _, id := range bm.IDs {
		inSelected[id] = true
	}
	dis := make([]float64, n)
	for u := 0; u < n; u++ {
		dis[u] = float64(bm.Degrees[u]) - p*float64(g.Degree(graph.NodeID(u)))
	}
	inA := func(u graph.NodeID) bool { return dis[u] <= -0.5 }
	inB := func(u graph.NodeID) bool { return dis[u] > -0.5 && dis[u] < 0 }
	gain := func(a, bb graph.NodeID) float64 {
		return math.Abs(dis[a]) + 2*math.Abs(dis[bb]) - math.Abs(dis[a]+1) - 1
	}
	type bpEdge struct{ a, b graph.NodeID }
	var q matching.PQ[bpEdge]
	adjA := make(map[graph.NodeID][]*matching.Handle[bpEdge])
	adjB := make(map[graph.NodeID][]*matching.Handle[bpEdge])
	for i, e := range g.Edges() {
		if inSelected[i] {
			continue
		}
		var a, bb graph.NodeID
		switch {
		case inA(e.U) && inB(e.V):
			a, bb = e.U, e.V
		case inA(e.V) && inB(e.U):
			a, bb = e.V, e.U
		default:
			continue
		}
		w := gain(a, bb)
		if w < 0 || (w == 0 && b.DropZeroGain) {
			continue
		}
		h := q.Push(bpEdge{a, bb}, w)
		adjA[a] = append(adjA[a], h)
		adjB[bb] = append(adjB[bb], h)
	}
	for {
		e, _, ok := q.Pop()
		if !ok {
			break
		}
		selected = append(selected, graph.Edge{U: e.a, V: e.b}.Canonical())
		dis[e.b]++
		for _, h := range adjB[e.b] {
			q.Remove(h)
		}
		delete(adjB, e.b)
		dis[e.a]++
		switch {
		case dis[e.a] <= -1:
		case dis[e.a] <= -0.5:
			live := adjA[e.a][:0]
			for _, h := range adjA[e.a] {
				if !h.Valid() {
					continue
				}
				w := gain(e.a, h.Value.b)
				if w > 0 {
					q.Update(h, w)
					live = append(live, h)
				} else {
					q.Remove(h)
				}
			}
			adjA[e.a] = live
		default:
			for _, h := range adjA[e.a] {
				q.Remove(h)
			}
			delete(adjA, e.a)
		}
	}
	return newResult(g, p, selected)
}

// seedForestFire is ForestFire.Reduce as it stood before the edge-id
// migration: collected edges deduplicated through a map[graph.Edge] set,
// incidence read from g.Neighbors.
func seedForestFire(f ForestFire, g *graph.Graph, p float64) (*Result, error) {
	if err := checkP(p); err != nil {
		return nil, err
	}
	tgt := targetEdges(g, p)
	if tgt >= g.NumEdges() {
		return newResult(g, p, g.Edges())
	}
	rng := rand.New(rand.NewSource(f.Seed))
	pf := f.burnProb()
	n := g.NumNodes()
	burned := make([]bool, n)
	taken := make(map[graph.Edge]struct{}, tgt)
	edges := make([]graph.Edge, 0, tgt)
	takeIncident := func(u graph.NodeID) {
		for _, v := range g.Neighbors(u) {
			if !burned[v] || len(edges) >= tgt {
				continue
			}
			e := graph.Edge{U: u, V: v}.Canonical()
			if _, dup := taken[e]; dup {
				continue
			}
			taken[e] = struct{}{}
			edges = append(edges, e)
		}
	}
	var queue []graph.NodeID
	for len(edges) < tgt {
		seed := graph.NodeID(rng.Intn(n))
		for tries := 0; burned[seed] && tries < 4*n; tries++ {
			seed = graph.NodeID(rng.Intn(n))
		}
		if burned[seed] {
			for i := range burned {
				burned[i] = false
			}
		}
		burned[seed] = true
		queue = append(queue[:0], seed)
		for head := 0; head < len(queue) && len(edges) < tgt; head++ {
			u := queue[head]
			takeIncident(u)
			burnCount := 0
			for rng.Float64() < pf {
				burnCount++
			}
			nb := g.Neighbors(u)
			for i := 0; i < burnCount && i < len(nb); i++ {
				v := nb[rng.Intn(len(nb))]
				if !burned[v] {
					burned[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	return newResult(g, p, edges)
}

// oracleGraphs are the shared test topologies: scale-free, uniform random,
// and community-structured.
func oracleGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"barabasi-albert":   gen.BarabasiAlbert(400, 3, 7),
		"erdos-renyi":       gen.ErdosRenyi(400, 900, 11),
		"planted-partition": gen.PlantedPartition(4, 100, 0.05, 0.005, 13),
	}
}

// sameReduction fails the test unless both results keep the identical edge
// sequence.
func sameReduction(t *testing.T, label string, got, want *Result) {
	t.Helper()
	ge, we := got.Reduced.Edges(), want.Reduced.Edges()
	if len(ge) != len(we) {
		t.Fatalf("%s: kept %d edges, oracle kept %d", label, len(ge), len(we))
	}
	for i := range ge {
		if ge[i] != we[i] {
			t.Fatalf("%s: edge %d = %v, oracle has %v", label, i, ge[i], we[i])
		}
	}
}

func TestCRRMatchesSeedPhase2(t *testing.T) {
	for name, g := range oracleGraphs() {
		for _, c := range []CRR{
			{Seed: 3, Importance: ImportanceDegreeProduct},
			{Seed: 5, Importance: ImportanceRandom},
			{Seed: 7, Importance: ImportanceDegreeProduct, AdaptiveStop: 0.02},
		} {
			for _, p := range []float64{0.2, 0.5, 0.8} {
				got, err := c.Reduce(g, p)
				if err != nil {
					t.Fatal(err)
				}
				want, err := seedCRRPhase2(c, g, p, c.Seed)
				if err != nil {
					t.Fatal(err)
				}
				sameReduction(t, fmt.Sprintf("%s %v p=%v", name, c.Importance, p), got, want)
			}
		}
	}
}

func TestCRRBetweennessMatchesSeedPhase2(t *testing.T) {
	g := gen.BarabasiAlbert(150, 3, 7)
	c := CRR{Seed: 9, Betweenness: centrality.Options{Samples: 64, Seed: 10}}
	for _, p := range []float64{0.3, 0.6} {
		got, err := c.Reduce(g, p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := seedCRRPhase2(c, g, p, c.Seed)
		if err != nil {
			t.Fatal(err)
		}
		sameReduction(t, fmt.Sprintf("betweenness p=%v", p), got, want)
	}
}

func TestBM2MatchesSeedImplementation(t *testing.T) {
	for name, g := range oracleGraphs() {
		for _, b := range []BM2{
			{},
			{DropZeroGain: true},
			{Rounding: RoundHalfEven},
			{Order: matching.ScarceFirst},
			{Order: matching.DenseFirst, DropZeroGain: true},
		} {
			for _, p := range []float64{0.2, 0.5, 0.8} {
				got, err := b.Reduce(g, p)
				if err != nil {
					t.Fatal(err)
				}
				want, err := seedBM2Reduce(b, g, p)
				if err != nil {
					t.Fatal(err)
				}
				sameReduction(t, fmt.Sprintf("%s %+v p=%v", name, b, p), got, want)
			}
		}
	}
}

func TestForestFireMatchesSeedImplementation(t *testing.T) {
	for name, g := range oracleGraphs() {
		for _, f := range []ForestFire{{Seed: 2}, {Seed: 4, BurnProb: 0.4}} {
			for _, p := range []float64{0.2, 0.5, 0.8} {
				got, err := f.Reduce(g, p)
				if err != nil {
					t.Fatal(err)
				}
				want, err := seedForestFire(f, g, p)
				if err != nil {
					t.Fatal(err)
				}
				sameReduction(t, fmt.Sprintf("%s burn=%v p=%v", name, f.BurnProb, p), got, want)
			}
		}
	}
}
