package core

import (
	"math"
	"testing"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

func TestCheckPRejectsBadRatios(t *testing.T) {
	g := gen.Cycle(10)
	for _, r := range []Reducer{CRR{}, BM2{}, Random{}} {
		for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
			if _, err := r.Reduce(g, p); err == nil {
				t.Errorf("%s accepted p = %v", r.Name(), p)
			}
		}
	}
}

func TestReducerNames(t *testing.T) {
	if (CRR{}).Name() != "CRR" || (BM2{}).Name() != "BM2" || (Random{}).Name() != "Random" {
		t.Error("reducer names do not match the paper's table headers")
	}
}

func TestResultMetricsOnKnownReduction(t *testing.T) {
	// P4: 0-1-2-3, keep only edge (1,2) at p = 0.5.
	g := gen.Path(4)
	sub, err := g.Subgraph([]graph.Edge{{U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	r := &Result{Original: g, Reduced: sub, P: 0.5}
	// Expected degrees: 0.5, 1, 1, 0.5. Actual: 0, 1, 1, 0.
	wantDis := []float64{-0.5, 0, 0, -0.5}
	for u, w := range wantDis {
		if got := r.Dis(graph.NodeID(u)); math.Abs(got-w) > 1e-9 {
			t.Errorf("dis(%d) = %v, want %v", u, got, w)
		}
	}
	if got := r.Delta(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("Δ = %v, want 1.0", got)
	}
	if got := r.ActiveNodes(); got != 2 {
		t.Errorf("ActiveNodes = %d, want 2", got)
	}
	if got := r.AvgDelta(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("AvgDelta = %v, want 0.5", got)
	}
	if got := r.AvgDisPerNode(); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("AvgDisPerNode = %v, want 0.25", got)
	}
}

func TestAvgDeltaEmptyReduction(t *testing.T) {
	g := gen.Path(4)
	sub, _ := g.Subgraph(nil)
	r := &Result{Original: g, Reduced: sub, P: 0.5}
	if got := r.AvgDelta(); got != 0 {
		t.Errorf("AvgDelta with no active nodes = %v, want 0", got)
	}
}

func TestBounds(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, 1)
	// CRR bound peaks at p = 0.5 and vanishes toward the endpoints.
	if CRRBound(g, 0.5) <= CRRBound(g, 0.1) {
		t.Error("CRR bound not peaked at p = 0.5")
	}
	if math.Abs(CRRBound(g, 0.5)-float64(g.NumEdges())/float64(g.NumNodes())) > 1e-9 {
		t.Errorf("CRRBound(0.5) = %v, want |E|/|V|", CRRBound(g, 0.5))
	}
	// BM2 bound decreases in p.
	if BM2Bound(g, 0.9) >= BM2Bound(g, 0.1) {
		t.Error("BM2 bound not decreasing in p")
	}
	var empty graph.Graph
	if CRRBound(&empty, 0.5) != 0 || BM2Bound(&empty, 0.5) != 0 {
		t.Error("bounds on the empty graph should be 0")
	}
}

func TestTheorem1BoundIsTight(t *testing.T) {
	// The proof of Theorem 1 constructs the worst case: a subset of nodes
	// keeps full degree while the rest drop to zero. Realize it exactly
	// with two disjoint cycles: keep all of cycle A (|E_A| = p|E|), shed
	// all of cycle B. The resulting Δ equals 4p(1-p)|E| — the bound is
	// attained, so it cannot be improved without more assumptions.
	nA, nB := 30, 70 // p = 30/100
	b := graph.NewBuilder(nA + nB)
	for i := 0; i < nA; i++ {
		b.TryAddEdge(graph.NodeID(i), graph.NodeID((i+1)%nA))
	}
	for i := 0; i < nB; i++ {
		b.TryAddEdge(graph.NodeID(nA+i), graph.NodeID(nA+(i+1)%nB))
	}
	g := b.Graph()
	p := float64(nA) / float64(nA+nB)
	var keepA []graph.Edge
	for _, e := range g.Edges() {
		if int(e.U) < nA && int(e.V) < nA {
			keepA = append(keepA, e)
		}
	}
	adversarial, err := g.Subgraph(keepA)
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{Original: g, Reduced: adversarial, P: p}
	wantDelta := 4 * p * (1 - p) * float64(g.NumEdges())
	if math.Abs(res.Delta()-wantDelta) > 1e-9 {
		t.Errorf("adversarial Δ = %v, want exactly 4p(1-p)|E| = %v", res.Delta(), wantDelta)
	}
	if math.Abs(res.AvgDisPerNode()-CRRBound(g, p)) > 1e-9 {
		t.Errorf("adversarial avg = %v, want the Theorem 1 bound %v", res.AvgDisPerNode(), CRRBound(g, p))
	}
	// The actual algorithms stay strictly below the adversarial extreme.
	crr, err := (CRR{Seed: 1}).Reduce(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if crr.Delta() >= wantDelta {
		t.Errorf("CRR Δ = %v not below the adversarial %v", crr.Delta(), wantDelta)
	}
}

func TestDeltaChangeMatchesBruteForce(t *testing.T) {
	// deltaChange must equal a full before/after Δ recomputation, including
	// when the swapped edges share endpoints.
	g := gen.Complete(5)
	p := 0.37
	cases := []struct{ e1, e2 graph.Edge }{
		{graph.Edge{U: 0, V: 1}, graph.Edge{U: 2, V: 3}}, // disjoint
		{graph.Edge{U: 0, V: 1}, graph.Edge{U: 1, V: 2}}, // share one node
		{graph.Edge{U: 0, V: 1}, graph.Edge{U: 0, V: 2}}, // share U
	}
	for _, c := range cases {
		degKept := []int{2, 1, 1, 2, 0} // arbitrary partial degrees
		dis := func(u graph.NodeID) float64 {
			return float64(degKept[u]) - p*float64(g.Degree(u))
		}
		got := deltaChange(dis, c.e1.U, c.e1.V, c.e2.U, c.e2.V)
		// Brute force: apply the swap, recompute Σ|dis| over all nodes.
		before := 0.0
		for u := 0; u < 5; u++ {
			before += math.Abs(dis(graph.NodeID(u)))
		}
		degKept[c.e1.U]--
		degKept[c.e1.V]--
		degKept[c.e2.U]++
		degKept[c.e2.V]++
		after := 0.0
		for u := 0; u < 5; u++ {
			after += math.Abs(dis(graph.NodeID(u)))
		}
		if want := after - before; math.Abs(got-want) > 1e-9 {
			t.Errorf("swap %v->%v: deltaChange = %v, want %v", c.e1, c.e2, got, want)
		}
	}
}

func TestRoundingModes(t *testing.T) {
	if RoundHalfUp.apply(0.5) != 1 || RoundHalfUp.apply(1.5) != 2 || RoundHalfUp.apply(0.4) != 0 {
		t.Error("RoundHalfUp wrong")
	}
	if RoundHalfEven.apply(0.5) != 0 || RoundHalfEven.apply(1.5) != 2 || RoundHalfEven.apply(2.5) != 2 {
		t.Error("RoundHalfEven wrong")
	}
}
