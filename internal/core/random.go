package core

import (
	"math/rand"

	"edgeshed/internal/graph"
)

// Random sheds edges by uniform sampling: it keeps a uniformly random subset
// of [p·|E|] edges. It ignores both edge importance and degree
// discrepancies, making it the natural floor any degree-preserving method
// must beat.
type Random struct {
	// Seed drives the sample; equal seeds give equal reductions.
	Seed int64
}

// Name implements Reducer.
func (Random) Name() string { return "Random" }

// Reduce implements Reducer.
func (r Random) Reduce(g *graph.Graph, p float64) (*Result, error) {
	if err := checkP(p); err != nil {
		return nil, err
	}
	tgt := targetEdges(g, p)
	m := g.NumEdges()
	if tgt >= m {
		return newResult(g, p, g.Edges())
	}
	rng := rand.New(rand.NewSource(r.Seed))
	perm := rng.Perm(m)[:tgt]
	edges := make([]graph.Edge, tgt)
	for i, pi := range perm {
		edges[i] = g.Edges()[pi]
	}
	return newResult(g, p, edges)
}
