package core

import (
	"math"
	"testing"

	"edgeshed/internal/graph/gen"
)

func TestRandomTargetEdgeCount(t *testing.T) {
	g := gen.ErdosRenyi(100, 300, 2)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		res, err := Random{Seed: 3}.Reduce(g, p)
		if err != nil {
			t.Fatal(err)
		}
		want := int(math.Round(p * 300))
		if got := res.Reduced.NumEdges(); got != want {
			t.Errorf("p=%v: |E'| = %d, want %d", p, got, want)
		}
	}
}

func TestRandomDeterministicAndSeedSensitive(t *testing.T) {
	g := gen.ErdosRenyi(60, 150, 7)
	a, _ := Random{Seed: 1}.Reduce(g, 0.5)
	b, _ := Random{Seed: 1}.Reduce(g, 0.5)
	c, _ := Random{Seed: 2}.Reduce(g, 0.5)
	same := func(x, y *Result) bool {
		xe, ye := x.Reduced.Edges(), y.Reduced.Edges()
		if len(xe) != len(ye) {
			return false
		}
		for i := range xe {
			if xe[i] != ye[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Error("same seed produced different samples")
	}
	if same(a, c) {
		t.Error("different seeds produced identical samples")
	}
}

func TestRandomIsSubgraph(t *testing.T) {
	g := gen.BarabasiAlbert(80, 3, 9)
	res, err := Random{Seed: 4}.Reduce(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Reduced.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v not in original", e)
		}
	}
}

func TestRandomExpectedDisNearZeroMean(t *testing.T) {
	// Uniform sampling keeps E[deg'] = p·deg exactly in expectation, so the
	// signed mean discrepancy across nodes is ~0 (though |dis| is not).
	g := gen.BarabasiAlbert(500, 4, 10)
	res, err := Random{Seed: 11}.Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var signed float64
	for u := 0; u < g.NumNodes(); u++ {
		signed += res.Dis(int32(u))
	}
	mean := signed / float64(g.NumNodes())
	if math.Abs(mean) > 0.05 {
		t.Errorf("mean signed dis = %v, want ~0", mean)
	}
}
