package core

import (
	"math"

	"edgeshed/internal/graph"
	"edgeshed/internal/matching"
	"edgeshed/internal/obs"
)

// Rounding selects how BM2 turns fractional expected degrees into integer
// b-matching capacities (Algorithm 2 line 3). The paper rounds to the
// nearest integer; the half-to-even variant exists for the ablation study.
type Rounding int

const (
	// RoundHalfUp rounds .5 away from zero (math.Round), the paper's rule:
	// an expected degree of 0.6 becomes capacity 1.
	RoundHalfUp Rounding = iota
	// RoundHalfEven rounds .5 to the nearest even integer, removing the
	// systematic upward bias of half-up on .5-heavy degree sequences.
	RoundHalfEven
)

// apply rounds x under the selected rule.
func (r Rounding) apply(x float64) int {
	if r == RoundHalfEven {
		return int(math.RoundToEven(x))
	}
	return int(math.Round(x))
}

// BM2 is B-Matching with Bipartite Matching (Algorithms 2 and 3).
//
// Phase 1 rounds each node's expected degree p·deg_G(u) to an integer
// capacity and greedily computes a maximal b-matching under those
// capacities. Phase 2 classifies nodes by their degree discrepancy into
// groups A (dis ≤ −0.5), B (−0.5 < dis < 0) and C (dis ≥ 0), builds a
// bipartite graph of still-shed A–B edges weighted by the Δ-gain of adding
// them (Lemma 1), and greedily matches it with dynamic re-weighting
// (Algorithm 3).
//
// The Algorithm 3 loop is edge-id native: the bipartite graph lives in a
// matching.FlatPQ keyed by canonical edge id plus two slice-indexed
// adjacency tables, with the A/B orientation of each queued edge recorded in
// flat arrays — no maps, no per-edge Handle allocations. FlatPQ mirrors the
// pointer-handle PQ's heap dynamics exactly, so the popped-edge order — and
// with it the selected edge set — is bit-identical to the map-based
// implementation this replaced (pinned by TestBM2MatchesSeedImplementation).
type BM2 struct {
	// Rounding is the capacity rounding rule; the zero value is the paper's
	// round-half-up.
	Rounding Rounding
	// DropZeroGain discards gain = 0 edges from the bipartite graph instead
	// of keeping them ("it can be selected or discarded according to user's
	// preference", Example 2). The default keeps them, matching Algorithm 2
	// line 20 (gain >= 0).
	DropZeroGain bool
	// Order is the edge scan order for Phase 1's greedy b-matching; the zero
	// value is the paper's input-order scan.
	Order matching.EdgeOrder
	// Obs is the parent observability span; nil (the zero value) records
	// nothing at no cost. When set, Reduce reports a "bm2.reduce" span with
	// "bm2.bmatching" and "bm2.bipartite" children plus FlatPQ operation
	// counters. Instrumentation never touches the heap dynamics, so the
	// selected edge set stays bit-identical with Obs on or off.
	Obs *obs.Span
}

// Name implements Reducer.
func (BM2) Name() string { return "BM2" }

// Reduce implements Reducer.
func (b BM2) Reduce(g *graph.Graph, p float64) (*Result, error) {
	if err := checkP(p); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	sp := b.Obs.Start("bm2.reduce")
	defer sp.End()

	// Phase 1 (Algorithm 2 lines 1-7): rounded capacities, greedy maximal
	// b-matching.
	phase1 := sp.Start("bm2.bmatching")
	caps := make([]int, n)
	for u := 0; u < n; u++ {
		caps[u] = b.Rounding.apply(p * float64(g.Degree(graph.NodeID(u))))
	}
	bm, err := matching.GreedyBMatching(g, caps, b.Order)
	phase1.End()
	if err != nil {
		return nil, err
	}
	selected := append([]int32(nil), bm.IDs...)
	inSelected := make([]bool, g.NumEdges())
	for _, id := range bm.IDs {
		inSelected[id] = true
	}

	// Degree discrepancies after Phase 1 (lines 8-16). Group membership is
	// implied by the dis value; only A and B matter below.
	dis := make([]float64, n)
	for u := 0; u < n; u++ {
		dis[u] = float64(bm.Degrees[u]) - p*float64(g.Degree(graph.NodeID(u)))
	}
	inA := func(u graph.NodeID) bool { return dis[u] <= -0.5 }
	inB := func(u graph.NodeID) bool { return dis[u] > -0.5 && dis[u] < 0 }

	// Build the weighted bipartite graph G* over still-shed A–B edges
	// (lines 17-24). Each queued edge is addressed by its canonical id; its
	// (a ∈ A, b ∈ B) orientation — fixed at build time, since dis drifts
	// during Algorithm 3 — lives in bpA/bpB.
	gain := func(a, bb graph.NodeID) float64 {
		return math.Abs(dis[a]) + 2*math.Abs(dis[bb]) - math.Abs(dis[a]+1) - 1
	}
	phase2 := sp.Start("bm2.bipartite")
	var q matching.FlatPQ
	if phase2.Enabled() {
		q.Stats = new(matching.PQStats)
	}
	bpA := make([]graph.NodeID, g.NumEdges())
	bpB := make([]graph.NodeID, g.NumEdges())
	adjA := make([][]int32, n)
	adjB := make([][]int32, n)
	for i, e := range g.Edges() {
		if inSelected[i] {
			continue
		}
		var a, bb graph.NodeID
		switch {
		case inA(e.U) && inB(e.V):
			a, bb = e.U, e.V
		case inA(e.V) && inB(e.U):
			a, bb = e.V, e.U
		default:
			continue
		}
		w := gain(a, bb)
		if w < 0 || (w == 0 && b.DropZeroGain) {
			continue
		}
		id := int32(i)
		q.Push(id, w)
		bpA[id], bpB[id] = a, bb
		adjA[a] = append(adjA[a], id)
		adjB[bb] = append(adjB[bb], id)
	}
	if q.Stats != nil {
		// The queue is fully built; stamp the build on the flight timeline
		// with its size.
		phase2.Marker(obs.EvPQBuild, "bm2.bipartite").Emit(0, q.Stats.Pushes)
	}

	// Quality probes (DESIGN.md §12): the matching-weight progression folds
	// the popped gains the loop already has in hand, recorded every
	// bm2WeightFlush pops and once at the end; the per-pop gain histogram
	// shares the micro-unit scaling of crr.delta_abs_micros.
	var qWeight *obs.Probe
	var gainHist *obs.Histogram
	var matchWeight float64
	pops := 0
	if phase2.Enabled() {
		qWeight = phase2.Quality("bm2.matching_weight", obs.DirHigher)
		gainHist = phase2.Histogram("bm2.gain_micros")
	}

	// Algorithm 3: pop best edges, update discrepancies, re-weight.
	for {
		eid, popW, ok := q.Pop()
		if !ok {
			break
		}
		a, bb := bpA[eid], bpB[eid]
		selected = append(selected, eid)
		if qWeight != nil {
			matchWeight += popW
			gainHist.Observe(int64(popW * 1e6))
			pops++
			if pops%bm2WeightFlush == 0 {
				qWeight.Record(p, matchWeight)
			}
		}
		// b joins group C (dis > 0): drop it and all its edges (line 6).
		dis[bb]++
		for _, id := range adjB[bb] {
			q.Remove(id)
		}
		adjB[bb] = nil
		// Update a (line 7) and branch on its new discrepancy.
		dis[a]++
		switch {
		case dis[a] <= -1:
			// Lemma 2 region: gains of a's edges are unchanged.
		case dis[a] <= -0.5:
			// a stays in group A but its gains shift (lines 8-14). The
			// algorithm states the open interval (−1, −0.5); at exactly
			// −0.5 the node is still in A per the group definition, so we
			// re-weight there too.
			live := adjA[a][:0]
			for _, id := range adjA[a] {
				if !q.Contains(id) {
					continue
				}
				w := gain(a, bpB[id])
				if w > 0 {
					q.Update(id, w)
					live = append(live, id)
				} else {
					q.Remove(id)
				}
			}
			adjA[a] = live
		default:
			// dis(a) > −0.5: a left group A; drop its edges (lines 15-17).
			for _, id := range adjA[a] {
				q.Remove(id)
			}
			adjA[a] = nil
		}
	}
	if qWeight != nil {
		qWeight.Record(p, matchWeight)
	}
	if q.Stats != nil {
		phase2.Counter("flatpq.pushes").Add(q.Stats.Pushes)
		phase2.Counter("flatpq.pops").Add(q.Stats.Pops)
		phase2.Counter("flatpq.updates").Add(q.Stats.Updates)
		phase2.Counter("flatpq.removes").Add(q.Stats.Removes)
	}
	phase2.End()
	res, err := newResultIDs(g, p, selected)
	if err == nil && sp.Enabled() {
		// End-of-reduce quality record: kept counts, exact Δ, and Theorem 2
		// bound headroom, the same derivation as cmd/shed's stats rows.
		QualityOf(res, "BM2").record(sp, 0, "BM2")
	}
	return res, err
}

// bm2WeightFlush is how many Algorithm 3 pops pass between recordings of
// the matching-weight progression probe.
const bm2WeightFlush = 1 << 10
