package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestRankEdgesScoreOrder(t *testing.T) {
	scores := []float64{0.5, 2, 0.5, 1, 2, 0}
	order := rankEdges(scores, 7)
	if len(order) != len(scores) {
		t.Fatalf("len = %d, want %d", len(order), len(scores))
	}
	seen := make([]bool, len(scores))
	for i, id := range order {
		if seen[id] {
			t.Fatalf("edge %d ranked twice", id)
		}
		seen[id] = true
		if i > 0 && scores[order[i-1]] < scores[id] {
			t.Fatalf("rank %d: score %v after %v", i, scores[id], scores[order[i-1]])
		}
	}
}

func TestRankEdgesReproducible(t *testing.T) {
	scores := make([]float64, 500)
	for i := range scores {
		scores[i] = float64(i % 7)
	}
	a := rankEdges(scores, 42)
	b := rankEdges(scores, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d differs across identical calls: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestRankEdgesMatchesFloatComparator pins the packed-key sort against a
// direct float comparator: the bit-twiddled key composition must order
// exactly like (score descending, tiebreak ascending), including negative,
// zero and duplicated scores.
func TestRankEdgesMatchesFloatComparator(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pool := []float64{-2.5, -1, math.Copysign(0, -1), 0, 0.5, 0.5, 1, 3, 1e-12, -1e-12, 1e300}
	for trial := 0; trial < 50; trial++ {
		scores := make([]float64, 200)
		for i := range scores {
			scores[i] = pool[rng.Intn(len(pool))]
		}
		seed := rng.Int63()
		ref := make([]int32, len(scores))
		for i := range ref {
			ref[i] = int32(i)
		}
		sort.SliceStable(ref, func(i, j int) bool {
			a, b := ref[i], ref[j]
			if scores[a] != scores[b] {
				return scores[a] > scores[b]
			}
			return tiebreak(seed, a) < tiebreak(seed, b)
		})
		got := rankEdges(scores, seed)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("trial %d rank %d: %d (score %v), reference %d (score %v)",
					trial, i, got[i], scores[got[i]], ref[i], scores[ref[i]])
			}
		}
	}
}

// TestRankEdgesTieRandomness checks the random-among-equals semantics: over
// many seeds, a block of equal-score edges lands in many distinct orders.
func TestRankEdgesTieRandomness(t *testing.T) {
	scores := make([]float64, 6) // all zero: one big tie group, 720 orders
	perms := map[string]bool{}
	for seed := int64(0); seed < 300; seed++ {
		perms[fmt.Sprint(rankEdges(scores, seed))] = true
	}
	// 300 draws from 720 permutations should hit far more than a handful;
	// a deterministic or near-deterministic tiebreak would collapse this.
	if len(perms) < 200 {
		t.Fatalf("only %d distinct tie orders across 300 seeds", len(perms))
	}
}
