package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"edgeshed/internal/centrality"
	"edgeshed/internal/graph"
)

// DefaultStepsFactor is the paper's recommended x in steps = [x·P]: Figure 4
// shows quality flattening past x = 10.
const DefaultStepsFactor = 10

// Importance selects the edge-importance function for CRR Phase 1. The
// paper argues for betweenness centrality; the alternatives exist for the
// DESIGN.md §5.6 ablation that tests that argument.
type Importance int

const (
	// ImportanceBetweenness ranks edges by betweenness centrality, the
	// paper's choice (Algorithm 1 line 3).
	ImportanceBetweenness Importance = iota
	// ImportanceDegreeProduct ranks edges by deg(u)·deg(v), a cheap local
	// proxy for structural importance.
	ImportanceDegreeProduct
	// ImportanceRandom ranks edges uniformly at random, isolating Phase 2's
	// contribution from any Phase 1 signal.
	ImportanceRandom
)

// String implements fmt.Stringer.
func (im Importance) String() string {
	switch im {
	case ImportanceBetweenness:
		return "betweenness"
	case ImportanceDegreeProduct:
		return "degree-product"
	case ImportanceRandom:
		return "random"
	}
	return fmt.Sprintf("Importance(%d)", int(im))
}

// CRR is Centrality Ranking with Rewiring (Algorithm 1).
//
// Phase 1 computes edge betweenness centrality, ranks all edges and keeps
// the top [p·|E|]. Phase 2 performs `steps` random edge-replacement attempts,
// each swapping a kept edge for a shed one when that strictly reduces the
// total degree discrepancy Δ.
type CRR struct {
	// Steps is the number of rewiring iterations. 0 means the paper default
	// [StepsFactor·P]; a negative value disables Phase 2 entirely (pure
	// centrality ranking).
	Steps int
	// StepsFactor is x in steps = [x·P], used only when Steps == 0. 0 means
	// DefaultStepsFactor.
	StepsFactor float64
	// Importance selects the Phase 1 edge-importance function; the zero
	// value is the paper's betweenness centrality.
	Importance Importance
	// Betweenness configures the Phase 1 centrality computation (used only
	// with ImportanceBetweenness); the zero value is exact Brandes on all
	// sources.
	Betweenness centrality.Options
	// Seed drives tie-shuffling of equal-centrality edges ("edges of the
	// same importance are selected randomly") and the Phase 2 edge picks.
	Seed int64
	// AdaptiveStop, when positive, ends Phase 2 early once the acceptance
	// rate over the trailing adaptiveWindow attempts falls below this
	// fraction — rewiring budget goes where it still helps. 0 keeps the
	// paper's fixed step count.
	AdaptiveStop float64
}

// adaptiveWindow is the trailing-attempt window for AdaptiveStop.
const adaptiveWindow = 256

// Name implements Reducer.
func (CRR) Name() string { return "CRR" }

// steps resolves the iteration count for a target of tgt kept edges.
func (c CRR) steps(tgt int) int {
	if c.Steps < 0 {
		return 0
	}
	if c.Steps > 0 {
		return c.Steps
	}
	factor := c.StepsFactor
	if factor <= 0 {
		factor = DefaultStepsFactor
	}
	return int(math.Round(factor * float64(tgt)))
}

// Reduce implements Reducer.
func (c CRR) Reduce(g *graph.Graph, p float64) (*Result, error) {
	return c.reduce(g, p, nil, c.Seed)
}

// Sweep reduces g at every ratio in ps, computing the Phase 1 edge
// importances once and reusing them — the expensive part of CRR is the
// betweenness computation, which does not depend on p. Results align with
// ps.
//
// Each sweep point runs with a seed derived from (Seed, ratio index), so the
// "edges of the same importance are selected randomly" tie-break and the
// Phase 2 pick sequence are independent across ratios instead of replaying
// one permutation for the whole Figure-4/5 sweep. The whole sweep remains
// reproducible for a fixed Seed.
func (c CRR) Sweep(g *graph.Graph, ps []float64) ([]*Result, error) {
	for _, p := range ps {
		if err := checkP(p); err != nil {
			return nil, err
		}
	}
	scores := c.edgeImportance(g)
	out := make([]*Result, len(ps))
	for i, p := range ps {
		res, err := c.reduce(g, p, scores, sweepSeed(c.Seed, i))
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

// sweepSeed derives the per-ratio seed for sweep point i with a
// splitmix64-style mix, so neighboring indices land on uncorrelated rng
// streams.
func sweepSeed(seed int64, i int) int64 {
	z := uint64(seed) + (uint64(i)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// reduce runs CRR with optionally precomputed Phase 1 scores and an explicit
// rng seed (c.Seed for single runs, a per-ratio derivation for sweeps).
func (c CRR) reduce(g *graph.Graph, p float64, scores []float64, seed int64) (*Result, error) {
	if err := checkP(p); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	tgt := targetEdges(g, p)
	m := g.NumEdges()
	if tgt >= m {
		return newResult(g, p, g.Edges())
	}

	// Phase 1 (lines 1-6): rank all edges by importance and keep the top
	// [P]. Shuffling before the stable sort realizes the paper's random
	// selection among equal-importance edges.
	if scores == nil {
		scores = c.edgeImportance(g)
	}
	order := rng.Perm(m)
	sort.SliceStable(order, func(i, j int) bool {
		return scores[order[i]] > scores[order[j]]
	})
	all := g.Edges()
	// kept[:tgt] is E', kept[tgt:] is E \ E'. Swaps exchange positions
	// across the boundary, keeping |E'| = [P] invariant (the paper's
	// expected-average-degree guarantee).
	kept := make([]graph.Edge, m)
	for i, oi := range order {
		kept[i] = all[oi]
	}

	// dis bookkeeping: dis(u) = degKept(u) − p·deg_G(u).
	degKept := make([]int, g.NumNodes())
	for _, e := range kept[:tgt] {
		degKept[e.U]++
		degKept[e.V]++
	}
	dis := func(u graph.NodeID) float64 {
		return float64(degKept[u]) - p*float64(g.Degree(u))
	}

	// Phase 2 (lines 7-13): random replacement attempts. For disjoint edge
	// pairs the criterion below equals the paper's d1 + d2; when e1 and e2
	// share an endpoint it evaluates the true Δ change, which the paper's
	// independent formulas slightly misstate.
	if tgt > 0 && tgt < m {
		steps := c.steps(tgt)
		accepted, window := 0, 0
		for i := 0; i < steps; i++ {
			ki := rng.Intn(tgt)          // e1 ∈ E'
			si := tgt + rng.Intn(m-tgt)  // e2 ∈ E \ E'
			e1, e2 := kept[ki], kept[si] // remove e1, add e2
			d := deltaChange(dis, e1, e2)
			if d < 0 {
				kept[ki], kept[si] = e2, e1
				degKept[e1.U]--
				degKept[e1.V]--
				degKept[e2.U]++
				degKept[e2.V]++
				accepted++
			}
			if c.AdaptiveStop > 0 {
				window++
				if window == adaptiveWindow {
					if float64(accepted)/float64(window) < c.AdaptiveStop {
						break
					}
					accepted, window = 0, 0
				}
			}
		}
	}
	return newResult(g, p, kept[:tgt])
}

// edgeImportance computes the Phase 1 ranking scores, aligned with
// g.Edges().
func (c CRR) edgeImportance(g *graph.Graph) []float64 {
	switch c.Importance {
	case ImportanceDegreeProduct:
		scores := make([]float64, g.NumEdges())
		for i, e := range g.Edges() {
			scores[i] = float64(g.Degree(e.U)) * float64(g.Degree(e.V))
		}
		return scores
	case ImportanceRandom:
		// All-equal scores: the pre-sort shuffle supplies the randomness.
		return make([]float64, g.NumEdges())
	default:
		bopt := c.Betweenness
		if bopt.Seed == 0 {
			bopt.Seed = c.Seed + 1
		}
		return centrality.EdgeBetweennessScores(g, bopt)
	}
}

// deltaChange returns the exact change in Δ caused by removing e1 and adding
// e2, accounting for shared endpoints.
func deltaChange(dis func(graph.NodeID) float64, e1, e2 graph.Edge) float64 {
	nodes := [4]graph.NodeID{e1.U, e1.V, e2.U, e2.V}
	deltas := [4]int{-1, -1, 1, 1}
	// Fold duplicate nodes into a single net delta.
	for i := 2; i < 4; i++ {
		for j := 0; j < i; j++ {
			if nodes[i] == nodes[j] && deltas[i] != 0 {
				deltas[j] += deltas[i]
				deltas[i] = 0
			}
		}
	}
	var d float64
	for i, u := range nodes {
		if deltas[i] == 0 {
			continue
		}
		du := dis(u)
		d += math.Abs(du+float64(deltas[i])) - math.Abs(du)
	}
	return d
}
