package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"edgeshed/internal/centrality"
	"edgeshed/internal/graph"
	"edgeshed/internal/obs"
	"edgeshed/internal/par"
)

// DefaultStepsFactor is the paper's recommended x in steps = [x·P]: Figure 4
// shows quality flattening past x = 10.
const DefaultStepsFactor = 10

// Importance selects the edge-importance function for CRR Phase 1. The
// paper argues for betweenness centrality; the alternatives exist for the
// DESIGN.md §5.6 ablation that tests that argument.
type Importance int

const (
	// ImportanceBetweenness ranks edges by betweenness centrality, the
	// paper's choice (Algorithm 1 line 3).
	ImportanceBetweenness Importance = iota
	// ImportanceDegreeProduct ranks edges by deg(u)·deg(v), a cheap local
	// proxy for structural importance.
	ImportanceDegreeProduct
	// ImportanceRandom ranks edges uniformly at random, isolating Phase 2's
	// contribution from any Phase 1 signal.
	ImportanceRandom
)

// String implements fmt.Stringer.
func (im Importance) String() string {
	switch im {
	case ImportanceBetweenness:
		return "betweenness"
	case ImportanceDegreeProduct:
		return "degree-product"
	case ImportanceRandom:
		return "random"
	}
	return fmt.Sprintf("Importance(%d)", int(im))
}

// CRR is Centrality Ranking with Rewiring (Algorithm 1).
//
// Phase 1 computes edge betweenness centrality, ranks all edges and keeps
// the top [p·|E|]. Phase 2 performs `steps` random edge-replacement attempts,
// each swapping a kept edge for a shed one when that strictly reduces the
// total degree discrepancy Δ.
type CRR struct {
	// Steps is the number of rewiring iterations. 0 means the paper default
	// [StepsFactor·P]; a negative value disables Phase 2 entirely (pure
	// centrality ranking).
	Steps int
	// StepsFactor is x in steps = [x·P], used only when Steps == 0. 0 means
	// DefaultStepsFactor.
	StepsFactor float64
	// Importance selects the Phase 1 edge-importance function; the zero
	// value is the paper's betweenness centrality.
	Importance Importance
	// Betweenness configures the Phase 1 centrality computation (used only
	// with ImportanceBetweenness); the zero value is exact Brandes on all
	// sources, batched 64 wide on the MS-BFS engine. Its Workers and Batch
	// fields are performance knobs only — the scores, and therefore the
	// reduction, are bit-identical at any setting.
	Betweenness centrality.Options
	// Seed drives tie-breaking of equal-importance edges ("edges of the
	// same importance are selected randomly") and the Phase 2 edge picks.
	Seed int64
	// AdaptiveStop, when positive, ends Phase 2 early once the acceptance
	// rate over the trailing adaptiveWindow attempts falls below this
	// fraction — rewiring budget goes where it still helps. 0 keeps the
	// paper's fixed step count.
	AdaptiveStop float64
	// Workers bounds the goroutines Sweep uses to run its per-ratio
	// reductions concurrently. <= 0 selects GOMAXPROCS. Sweep's output is
	// bit-identical at any worker count: each ratio's rng stream is derived
	// independently via sweepSeed, so the points never share mutable state.
	Workers int
	// Obs is the parent observability span; nil (the zero value) records
	// nothing at no cost. When set, Reduce reports a "crr.reduce" span with
	// "crr.phase1.rank" and "crr.phase2.rewire" children plus rewiring
	// attempt/accept counters, and Sweep wraps the points in a "crr.sweep"
	// span with per-worker busy time. Instrumentation never feeds back into
	// the rng streams or the swap decisions, so results stay bit-identical
	// with Obs on or off, at any worker count.
	Obs *obs.Span
}

// adaptiveWindow is the trailing-attempt window for AdaptiveStop.
const adaptiveWindow = 256

// rewireFlush is how many Phase 2 attempts pass between live flushes of
// the rewire counters and span progress. Large enough that the flush is
// invisible next to the per-attempt work, small enough that a debug-plane
// scrape of a multi-second rewire sees fresh numbers.
const rewireFlush = 1 << 20

// Name implements Reducer.
func (CRR) Name() string { return "CRR" }

// steps resolves the iteration count for a target of tgt kept edges.
func (c CRR) steps(tgt int) int {
	if c.Steps < 0 {
		return 0
	}
	if c.Steps > 0 {
		return c.Steps
	}
	factor := c.StepsFactor
	if factor <= 0 {
		factor = DefaultStepsFactor
	}
	return int(math.Round(factor * float64(tgt)))
}

// Reduce implements Reducer.
func (c CRR) Reduce(g *graph.Graph, p float64) (*Result, error) {
	return c.reduce(g, p, nil, c.Seed, c.Obs, 0)
}

// Sweep reduces g at every ratio in ps, computing the Phase 1 edge
// importances once and reusing them — the expensive part of CRR is the
// betweenness computation, which does not depend on p. Results align with
// ps.
//
// Each sweep point runs with a seed derived from (Seed, ratio index), so the
// "edges of the same importance are selected randomly" tie-break and the
// Phase 2 pick sequence are independent across ratios instead of replaying
// one permutation for the whole Figure-4/5 sweep. That independence also
// makes the points embarrassingly parallel: Sweep runs them across Workers
// goroutines with static striding, and the i-th result is the same bits
// whether the sweep runs serially or on any number of workers.
func (c CRR) Sweep(g *graph.Graph, ps []float64) ([]*Result, error) {
	for _, p := range ps {
		if err := checkP(p); err != nil {
			return nil, err
		}
	}
	sp := c.Obs.Start("crr.sweep")
	defer sp.End()
	sp.SetTotal(int64(len(ps)))
	scores := c.edgeImportance(g, sp)
	// Build the shared read-only views before the fan-out: CSR construction
	// is cached behind a sync.Once, but forcing it here keeps the workers'
	// critical path free of the one-time build.
	g.CSR()
	out := make([]*Result, len(ps))
	errs := make([]error, len(ps))
	workers := par.Workers(c.Workers, len(ps))
	ratioNs := sp.Histogram("crr.sweep.ratio_ns")
	par.Run(workers, func(w int) {
		var t0 time.Time
		if sp.Enabled() {
			t0 = time.Now()
		}
		for i := w; i < len(ps); i += workers {
			if sp.Enabled() {
				r0 := time.Now()
				out[i], errs[i] = c.reduce(g, ps[i], scores, sweepSeed(c.Seed, i), sp, w)
				ratioNs.ObserveAt(w, time.Since(r0).Nanoseconds())
			} else {
				out[i], errs[i] = c.reduce(g, ps[i], scores, sweepSeed(c.Seed, i), sp, w)
			}
			sp.Done(1)
		}
		if sp.Enabled() {
			sp.WorkerBusy(w, time.Since(t0))
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// sweepSeed derives the per-ratio seed for sweep point i with a
// splitmix64-style mix, so neighboring indices land on uncorrelated rng
// streams.
func sweepSeed(seed int64, i int) int64 {
	z := uint64(seed) + (uint64(i)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// reduce runs CRR with optionally precomputed Phase 1 scores, an explicit
// rng seed (c.Seed for single runs, a per-ratio derivation for sweeps), an
// explicit parent span (c.Obs for single runs, the sweep span for sweeps;
// nil is free), and the worker slot running it (0 for single runs, the
// sweep worker index for sweeps) so hot-loop histogram and flight-event
// writes land on the worker's own shard.
//
// The whole pipeline is edge-id native: Phase 1 ranks int32 edge ids, Phase 2
// swaps ids across the kept boundary and reads endpoints from the CSR view's
// EdgeU/EdgeV arrays, and edges materialize as graph.Edge values only when
// the Result is assembled. No step hashes an edge or touches a map.
func (c CRR) reduce(g *graph.Graph, p float64, scores []float64, seed int64, parent *obs.Span, slot int) (*Result, error) {
	if err := checkP(p); err != nil {
		return nil, err
	}
	sp := parent.Start("crr.reduce")
	defer sp.End()
	tgt := targetEdges(g, p)
	m := g.NumEdges()
	if tgt >= m {
		res, err := newResult(g, p, g.Edges())
		if err == nil && sp.Enabled() {
			QualityOf(res, "CRR").record(sp, slot, "CRR")
		}
		return res, err
	}

	// Phase 1 (lines 1-6): rank all edges by importance and keep the top
	// [P]. The splitmix64 tiebreak inside rankEdges realizes the paper's
	// random selection among equal-importance edges without consuming the
	// Phase 2 rng stream.
	rank := sp.Start("crr.phase1.rank")
	if scores == nil {
		scores = c.edgeImportance(g, rank)
	}
	// kept[:tgt] is E', kept[tgt:] is E \ E'. Swaps exchange positions
	// across the boundary, keeping |E'| = [P] invariant (the paper's
	// expected-average-degree guarantee).
	kept := rankEdges(scores, seed)
	rank.End()

	csr := g.CSR()
	eu, ev := csr.EdgeU, csr.EdgeV

	// dis bookkeeping: dis(u) = degKept(u) − p·deg_G(u). The expected-degree
	// term is constant per node, so precompute it once instead of multiplying
	// inside every Phase 2 evaluation.
	degKept := make([]int, g.NumNodes())
	for _, id := range kept[:tgt] {
		degKept[eu[id]]++
		degKept[ev[id]]++
	}
	exp := make([]float64, g.NumNodes())
	for u := range exp {
		exp[u] = p * float64(g.Degree(graph.NodeID(u)))
	}
	dis := func(u graph.NodeID) float64 {
		return float64(degKept[u]) - exp[u]
	}

	// Phase 2 (lines 7-13): random replacement attempts. For disjoint edge
	// pairs the criterion below equals the paper's d1 + d2; when e1 and e2
	// share an endpoint it evaluates the true Δ change, which the paper's
	// independent formulas slightly misstate.
	if tgt > 0 && tgt < m {
		rw := sp.Start("crr.phase2.rewire")
		rng := rand.New(rand.NewSource(seed))
		steps := c.steps(tgt)
		rw.SetTotal(int64(steps))
		// Live counters flush every rewireFlush attempts so a /metrics or
		// /progress scrape mid-run sees Phase 2 advancing; the loop itself only
		// pays a nil check per step when observability is off. The tallies stay
		// plain locals (accepted resets per AdaptiveStop window, so it cannot
		// serve as the run total) and the remainder folds in after the loop,
		// making the final counter values independent of scrape timing.
		var attCtr, accCtr *obs.Counter
		var deltaHist *obs.Histogram
		var flushMk *obs.Marker
		var qDelta, qRate, qLinf *obs.Probe
		var curDelta float64
		if rw.Enabled() {
			attCtr = rw.Counter("crr.rewire.attempts")
			accCtr = rw.Counter("crr.rewire.accepted")
			deltaHist = rw.Histogram("crr.delta_abs_micros")
			flushMk = rw.Marker(obs.EvRewireFlush, "crr.phase2.rewire")
			// Quality probes (DESIGN.md §12): the Δ trajectory is maintained
			// incrementally from the accepted swap deltas the loop already
			// computes, so its upkeep is one add per accepted swap; the L∞
			// error is a read-only O(|V|) scan run only at flush cadence.
			qDelta = rw.Quality("crr.delta", obs.DirLower)
			qRate = rw.Quality("crr.accept_rate", obs.DirInfo)
			qLinf = rw.Quality("crr.deg_err_linf", obs.DirLower)
			for u := range degKept {
				curDelta += math.Abs(float64(degKept[u]) - exp[u])
			}
		}
		accepted, window := 0, 0
		attempts, acceptedTotal := 0, 0
		flushedAtt, flushedAcc := 0, 0
		for i := 0; i < steps; i++ {
			attempts++
			if attCtr != nil && attempts%rewireFlush == 0 {
				attCtr.AddAt(slot, int64(attempts-flushedAtt))
				accCtr.AddAt(slot, int64(acceptedTotal-flushedAcc))
				rw.Done(int64(attempts - flushedAtt))
				qDelta.RecordAt(slot, p, curDelta)
				qRate.RecordAt(slot, p, float64(acceptedTotal-flushedAcc)/float64(attempts-flushedAtt))
				qLinf.RecordAt(slot, p, maxAbsDis(degKept, exp))
				flushedAtt, flushedAcc = attempts, acceptedTotal
				flushMk.Emit(slot, int64(attempts))
			}
			ki := rng.Intn(tgt)         // e1 ∈ E'
			si := tgt + rng.Intn(m-tgt) // e2 ∈ E \ E'
			e1, e2 := kept[ki], kept[si]
			// Remove e1, add e2.
			u1, v1, u2, v2 := eu[e1], ev[e1], eu[e2], ev[e2]
			var d float64
			if u1 != u2 && u1 != v2 && v1 != u2 && v1 != v2 {
				// Disjoint endpoints — the overwhelmingly common case on a
				// sparse graph. Evaluate the four independent shifts inline,
				// in deltaChange's exact accumulation order, skipping its
				// duplicate-folding pass and per-node closure calls.
				du1 := float64(degKept[u1]) - exp[u1]
				dv1 := float64(degKept[v1]) - exp[v1]
				du2 := float64(degKept[u2]) - exp[u2]
				dv2 := float64(degKept[v2]) - exp[v2]
				d = math.Abs(du1-1) - math.Abs(du1)
				d += math.Abs(dv1-1) - math.Abs(dv1)
				d += math.Abs(du2+1) - math.Abs(du2)
				d += math.Abs(dv2+1) - math.Abs(dv2)
			} else {
				d = deltaChange(dis, u1, v1, u2, v2)
			}
			if deltaHist != nil {
				deltaHist.ObserveAt(slot, int64(math.Abs(d)*1e6))
			}
			if d < 0 {
				kept[ki], kept[si] = e2, e1
				degKept[eu[e1]]--
				degKept[ev[e1]]--
				degKept[eu[e2]]++
				degKept[ev[e2]]++
				accepted++
				acceptedTotal++
				if qDelta != nil {
					curDelta += d
				}
			}
			if c.AdaptiveStop > 0 {
				window++
				if window == adaptiveWindow {
					if float64(accepted)/float64(window) < c.AdaptiveStop {
						break
					}
					accepted, window = 0, 0
				}
			}
		}
		if rw.Enabled() {
			attCtr.AddAt(slot, int64(attempts-flushedAtt))
			accCtr.AddAt(slot, int64(acceptedTotal-flushedAcc))
			rw.Done(int64(attempts - flushedAtt))
			if attempts > flushedAtt {
				qRate.RecordAt(slot, p, float64(acceptedTotal-flushedAcc)/float64(attempts-flushedAtt))
			}
			qDelta.RecordAt(slot, p, curDelta)
			qLinf.RecordAt(slot, p, maxAbsDis(degKept, exp))
			flushMk.Emit(slot, int64(attempts))
		}
		rw.End()
	}
	res, err := newResultIDs(g, p, kept[:tgt])
	if err == nil && sp.Enabled() {
		// The authoritative end-of-reduce quality record: kept counts, exact
		// Δ, and Theorem 1 bound headroom — the same derivation cmd/shed's
		// -stats-json rows use, so manifest and stats cannot drift.
		QualityOf(res, "CRR").record(sp, slot, "CRR")
	}
	return res, err
}

// maxAbsDis returns the L∞ degree-preservation error max_u |degKept(u) −
// exp(u)|.
func maxAbsDis(degKept []int, exp []float64) float64 {
	var worst float64
	for u := range degKept {
		if d := math.Abs(float64(degKept[u]) - exp[u]); d > worst {
			worst = d
		}
	}
	return worst
}

// edgeImportance computes the Phase 1 ranking scores, aligned with
// g.Edges(). The betweenness path nests its kernel span under sp (nil is
// free).
func (c CRR) edgeImportance(g *graph.Graph, sp *obs.Span) []float64 {
	switch c.Importance {
	case ImportanceDegreeProduct:
		scores := make([]float64, g.NumEdges())
		for i, e := range g.Edges() {
			scores[i] = float64(g.Degree(e.U)) * float64(g.Degree(e.V))
		}
		return scores
	case ImportanceRandom:
		// All-equal scores: the ranking tiebreak supplies the randomness.
		return make([]float64, g.NumEdges())
	default:
		bopt := c.Betweenness
		if bopt.Seed == 0 {
			bopt.Seed = c.Seed + 1
		}
		bopt.Obs = sp
		return centrality.EdgeBetweennessScores(g, bopt)
	}
}

// deltaChange returns the exact change in Δ caused by removing edge (u1, v1)
// and adding edge (u2, v2), accounting for shared endpoints.
func deltaChange(dis func(graph.NodeID) float64, u1, v1, u2, v2 graph.NodeID) float64 {
	nodes := [4]graph.NodeID{u1, v1, u2, v2}
	deltas := [4]int{-1, -1, 1, 1}
	// Fold duplicate nodes into a single net delta.
	for i := 2; i < 4; i++ {
		for j := 0; j < i; j++ {
			if nodes[i] == nodes[j] && deltas[i] != 0 {
				deltas[j] += deltas[i]
				deltas[i] = 0
			}
		}
	}
	var d float64
	for i, u := range nodes {
		if deltas[i] == 0 {
			continue
		}
		du := dis(u)
		d += math.Abs(du+float64(deltas[i])) - math.Abs(du)
	}
	return d
}
