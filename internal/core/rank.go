package core

import (
	"math"
	"slices"
)

// This file holds the shared Phase 1 ranking of CRR and TargetedCRR: order
// all edge ids by descending importance, breaking ties uniformly at random
// ("edges of the same importance are selected randomly", Algorithm 1).
//
// The seed implementation realized the random tie-break by materializing
// rng.Perm(|E|) and stable-sorting it by score — an extra |E|-sized
// allocation, a serial pass over the rng stream, and sort.SliceStable's
// merge overhead on top of a comparator that chases two levels of
// indirection per comparison. Here every edge carries a 24-byte record of
// (order-reversed score bits, splitmix64 tiebreak, id) and the sort
// compares those fields in place: no indirection, unique keys (so the
// faster unstable sort suffices), and equal-score edges still land in a
// uniformly random order that is independent across seeds — the same
// semantics, measurably less work per sweep point, and no shared rng
// stream to serialize a parallel Sweep.

// rankKey is one edge's composed sort key.
type rankKey struct {
	// inv orders descending by score: it is the monotone uint64 image of
	// the score with all bits flipped, so ascending inv = descending score.
	inv int64
	// tb is the random tie-break among equal scores.
	tb uint64
	id int32
}

// rankEdges returns all edge ids ordered by (scores[id] descending,
// splitmix64 tiebreak ascending). For a fixed seed the order is a pure
// function of the score vector; across seeds the relative order of
// equal-score edges is an independent uniform permutation.
func rankEdges(scores []float64, seed int64) []int32 {
	keys := make([]rankKey, len(scores))
	for i := range keys {
		keys[i] = rankKey{
			inv: ^orderedBits(scores[i]),
			tb:  tiebreak(seed, int32(i)),
			id:  int32(i),
		}
	}
	slices.SortFunc(keys, func(a, b rankKey) int {
		if a.inv != b.inv {
			if a.inv < b.inv {
				return -1
			}
			return 1
		}
		if a.tb != b.tb {
			if a.tb < b.tb {
				return -1
			}
			return 1
		}
		return int(a.id - b.id) // unreachable in practice: 64-bit tb collision
	})
	order := make([]int32, len(keys))
	for i, k := range keys {
		order[i] = k.id
	}
	return order
}

// orderedBits maps a float64 to an int64 whose natural order matches the
// float order, with -0 and +0 mapped to the same image (they compare equal
// as floats, so they must tie). NaN scores are not supported — no importance
// function produces them.
func orderedBits(x float64) int64 {
	b := int64(math.Float64bits(x + 0)) // x+0 normalizes -0 to +0
	if b < 0 {
		// Negative floats: flip the magnitude bits so bigger magnitude
		// orders lower, keeping the sign bit set (below all positives).
		return math.MinInt64 - b
	}
	return b
}

// tiebreak is a splitmix64 step keyed on (seed, id): sequential ids land on
// uncorrelated 64-bit keys, so sorting by the key realizes a uniform random
// permutation within every equal-score group.
func tiebreak(seed int64, id int32) uint64 {
	z := uint64(seed) + (uint64(uint32(id))+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
