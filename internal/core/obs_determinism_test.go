package core

import (
	"testing"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
	"edgeshed/internal/obs"
	"edgeshed/internal/par"
)

// sameEdges reports whether two graphs hold exactly the same edge set, the
// bit-identity criterion for a reducer's output.
func sameEdges(t *testing.T, label string, a, b *graph.Graph) {
	t.Helper()
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		t.Fatalf("%s: %d edges with obs, %d without", label, len(be), len(ae))
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("%s: edge %d differs: %v with obs, %v without", label, i, be[i], ae[i])
		}
	}
}

// TestCRRSweepBitIdenticalWithObs pins the instrumentation non-perturbation
// guarantee for the CRR sweep: attaching a live recorder must not change a
// single kept edge, at serial and parallel worker counts.
func TestCRRSweepBitIdenticalWithObs(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 7)
	ps := []float64{0.3, 0.5, 0.7}
	for _, workers := range []int{1, 4} {
		base := CRR{Seed: 3, Steps: 200, Workers: workers}
		want, err := base.Sweep(g, ps)
		if err != nil {
			t.Fatal(err)
		}
		rec := obs.New("test")
		prev := par.SetSlotObserver(rec.Flight())
		c := base
		c.Obs = rec.Root()
		got, err := c.Sweep(g, ps)
		par.SetSlotObserver(prev)
		rec.Root().End()
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			sameEdges(t, "crr.sweep", want[i].Reduced, got[i].Reduced)
		}
		// The recorder must actually have observed the run: one crr.sweep
		// span with a reduce child per ratio, plus rewiring counters.
		tree := rec.SpanTree()
		if len(tree.Children) != 1 || tree.Children[0].Name != "crr.sweep" {
			t.Fatalf("workers=%d: span tree shape %+v", workers, tree)
		}
		reduces := 0
		for _, c := range tree.Children[0].Children {
			if c.Name == "crr.reduce" {
				reduces++
			}
		}
		if reduces != len(ps) {
			t.Fatalf("workers=%d: %d crr.reduce spans, want %d", workers, reduces, len(ps))
		}
		vals := rec.CounterValues()
		if vals["crr.rewire.attempts"] == 0 {
			t.Fatalf("workers=%d: rewiring counters missing: %v", workers, vals)
		}
		// The PR-9 surfaces moved too: per-ratio sweep durations and
		// deltaChange magnitudes land in histograms, rewire-chunk flushes
		// and worker-slot brackets in the flight ring.
		hists := rec.HistogramValues()
		if hists["crr.sweep.ratio_ns"] == nil || hists["crr.sweep.ratio_ns"].Count != int64(len(ps)) {
			t.Fatalf("workers=%d: crr.sweep.ratio_ns = %+v, want count %d", workers, hists["crr.sweep.ratio_ns"], len(ps))
		}
		if hists["crr.delta_abs_micros"] == nil || hists["crr.delta_abs_micros"].Count == 0 {
			t.Fatalf("workers=%d: crr.delta_abs_micros missing or empty", workers)
		}
		var flushes, slots int
		for _, e := range rec.Flight().Events() {
			switch e.Kind {
			case "rewire_flush":
				flushes++
			case "slot_begin":
				slots++
			}
		}
		if flushes == 0 {
			t.Fatalf("workers=%d: no rewire_flush flight events", workers)
		}
		if workers > 1 && slots == 0 {
			t.Fatalf("workers=%d: no slot_begin flight events", workers)
		}
		// The quality plane recorded per ratio: the Phase 2 fold probes plus
		// the end-of-reduce summary, each tagged with its own ratio.
		perRatio := map[string]map[float64]bool{}
		for _, q := range rec.QualityPoints() {
			if perRatio[q.Metric] == nil {
				perRatio[q.Metric] = map[float64]bool{}
			}
			perRatio[q.Metric][q.Ratio] = true
		}
		for _, metric := range []string{"crr.delta", "crr.accept_rate", "crr.deg_err_linf", "crr.headroom.theorem1"} {
			for _, p := range ps {
				if !perRatio[metric][p] {
					t.Fatalf("workers=%d: quality metric %s missing at ratio %v: %v", workers, metric, p, perRatio[metric])
				}
			}
		}
	}
}

// TestBM2BitIdenticalWithObs pins the same guarantee for BM2.Reduce: the
// FlatPQ operation counters must not disturb the heap dynamics that pick the
// kept edge set.
func TestBM2BitIdenticalWithObs(t *testing.T) {
	g := gen.PlantedPartition(4, 50, 0.2, 0.02, 9)
	for _, p := range []float64{0.3, 0.6} {
		want, err := BM2{}.Reduce(g, p)
		if err != nil {
			t.Fatal(err)
		}
		rec := obs.New("test")
		got, err := BM2{Obs: rec.Root()}.Reduce(g, p)
		rec.Root().End()
		if err != nil {
			t.Fatal(err)
		}
		sameEdges(t, "bm2.reduce", want.Reduced, got.Reduced)
		vals := rec.CounterValues()
		if vals["flatpq.pushes"] == 0 || vals["flatpq.pops"] == 0 {
			t.Fatalf("p=%v: FlatPQ counters missing: %v", p, vals)
		}
		// The bipartite queue build announces itself in the flight ring.
		var pqBuilds int
		for _, e := range rec.Flight().Events() {
			if e.Kind == "pq_build" && e.Name == "bm2.bipartite" {
				pqBuilds++
			}
		}
		if pqBuilds == 0 {
			t.Fatalf("p=%v: no pq_build flight event", p)
		}
		// The quality plane recorded too: the Algorithm 3 matching-weight
		// progression and the Theorem 2 summary, each at this ratio.
		qv := rec.QualityValues()
		for _, metric := range []string{"bm2.matching_weight", "bm2.delta", "bm2.headroom.theorem2"} {
			if _, ok := qv[metric]; !ok {
				t.Fatalf("p=%v: quality metric %s missing: %v", p, metric, qv)
			}
		}
	}
}
