package core

import (
	"math"
	"math/rand"
	"sort"

	"edgeshed/internal/graph"
)

// This file provides the classic simplification-based reduction baselines
// from the graph-sampling literature the paper situates itself in (Hu & Lau
// survey, reference [13]). They give the evaluation a floor beyond uniform
// Random: a topology-biased sampler (ForestFire), a connectivity-first
// sampler (SpanningForest) and an importance-weighted sampler
// (WeightedSample).

// ForestFire sheds edges by Leskovec-style forest-fire node burning: random
// seeds ignite BFS fires whose spread is geometric with the forward-burning
// probability, and the reduced graph keeps edges between burned nodes until
// the edge budget [p·|E|] is filled.
type ForestFire struct {
	// BurnProb is the forward-burning probability in (0, 1); 0 means the
	// literature default 0.7.
	BurnProb float64
	// Seed drives seeding and spread.
	Seed int64
}

// Name implements Reducer.
func (ForestFire) Name() string { return "ForestFire" }

func (f ForestFire) burnProb() float64 {
	if f.BurnProb <= 0 || f.BurnProb >= 1 {
		return 0.7
	}
	return f.BurnProb
}

// Reduce implements Reducer.
func (f ForestFire) Reduce(g *graph.Graph, p float64) (*Result, error) {
	if err := checkP(p); err != nil {
		return nil, err
	}
	tgt := targetEdges(g, p)
	if tgt >= g.NumEdges() {
		return newResult(g, p, g.Edges())
	}
	rng := rand.New(rand.NewSource(f.Seed))
	pf := f.burnProb()
	n := g.NumNodes()
	csr := g.CSR()
	burned := make([]bool, n)
	// Already-collected edges are flagged in a []bool over canonical edge
	// ids, read off the CSR slots alongside each neighbor — the slot order
	// matches g.Neighbors, so the burn visits edges exactly as before.
	taken := make([]bool, g.NumEdges())
	ids := make([]int32, 0, tgt)
	takeIncident := func(u graph.NodeID) {
		for s := csr.Offsets[u]; s < csr.Offsets[u+1]; s++ {
			if !burned[csr.Targets[s]] || len(ids) >= tgt {
				continue
			}
			id := csr.EdgeID[s]
			if taken[id] {
				continue
			}
			taken[id] = true
			ids = append(ids, id)
		}
	}
	var queue []graph.NodeID
	for len(ids) < tgt {
		// Ignite a fresh unburned seed; if all nodes are burned, restart the
		// burn state but keep collected edges.
		seed := graph.NodeID(rng.Intn(n))
		for tries := 0; burned[seed] && tries < 4*n; tries++ {
			seed = graph.NodeID(rng.Intn(n))
		}
		if burned[seed] {
			for i := range burned {
				burned[i] = false
			}
		}
		burned[seed] = true
		queue = append(queue[:0], seed)
		for head := 0; head < len(queue) && len(ids) < tgt; head++ {
			u := queue[head]
			takeIncident(u)
			// Geometric number of neighbors to burn: mean pf/(1-pf).
			burnCount := 0
			for rng.Float64() < pf {
				burnCount++
			}
			nb := g.Neighbors(u)
			for i := 0; i < burnCount && i < len(nb); i++ {
				v := nb[rng.Intn(len(nb))]
				if !burned[v] {
					burned[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	return newResultIDs(g, p, ids)
}

// SpanningForest sheds edges while preserving connectivity first: it keeps
// a random spanning forest of every component (so reachability survives
// whenever the budget allows), then fills the remaining budget with uniform
// random extra edges. When the budget is below |V| − #components the forest
// itself is truncated at random.
type SpanningForest struct {
	// Seed drives both the forest and the filler sample.
	Seed int64
}

// Name implements Reducer.
func (SpanningForest) Name() string { return "SpanningForest" }

// Reduce implements Reducer.
func (s SpanningForest) Reduce(g *graph.Graph, p float64) (*Result, error) {
	if err := checkP(p); err != nil {
		return nil, err
	}
	tgt := targetEdges(g, p)
	m := g.NumEdges()
	if tgt >= m {
		return newResult(g, p, g.Edges())
	}
	rng := rand.New(rand.NewSource(s.Seed))
	perm := rng.Perm(m)
	uf := newUnionFind(g.NumNodes())
	var forest, rest []graph.Edge
	for _, i := range perm {
		e := g.Edges()[i]
		if uf.union(e.U, e.V) {
			forest = append(forest, e)
		} else {
			rest = append(rest, e)
		}
	}
	var edges []graph.Edge
	if tgt <= len(forest) {
		edges = forest[:tgt]
	} else {
		edges = append(edges, forest...)
		edges = append(edges, rest[:tgt-len(forest)]...)
	}
	return newResult(g, p, edges)
}

// unionFind is a path-compressing disjoint-set forest over dense node ids.
type unionFind struct {
	parent []graph.NodeID
	rank   []int8
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]graph.NodeID, n), rank: make([]int8, n)}
	for i := range uf.parent {
		uf.parent[i] = graph.NodeID(i)
	}
	return uf
}

func (uf *unionFind) find(x graph.NodeID) graph.NodeID {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// union merges the sets of a and b, reporting whether they were distinct.
func (uf *unionFind) union(a, b graph.NodeID) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	return true
}

// WeightedSample sheds edges by weighted sampling without replacement
// (Efraimidis–Spirakis keys): each edge's weight favors the edges of
// low-degree endpoints, protecting leaves that uniform sampling would
// orphan. With Alpha = 0 it degenerates to uniform Random.
type WeightedSample struct {
	// Alpha is the protection exponent: weight = (deg(u)·deg(v))^(−Alpha).
	// 0 means 0.5.
	Alpha float64
	// Seed drives the sample.
	Seed int64
}

// Name implements Reducer.
func (WeightedSample) Name() string { return "WeightedSample" }

func (w WeightedSample) alpha() float64 {
	if w.Alpha == 0 {
		return 0.5
	}
	return w.Alpha
}

// Reduce implements Reducer.
func (w WeightedSample) Reduce(g *graph.Graph, p float64) (*Result, error) {
	if err := checkP(p); err != nil {
		return nil, err
	}
	tgt := targetEdges(g, p)
	m := g.NumEdges()
	if tgt >= m {
		return newResult(g, p, g.Edges())
	}
	rng := rand.New(rand.NewSource(w.Seed))
	alpha := w.alpha()
	type keyed struct {
		e   graph.Edge
		key float64
	}
	keys := make([]keyed, m)
	for i, e := range g.Edges() {
		weight := math.Pow(float64(g.Degree(e.U))*float64(g.Degree(e.V)), -alpha)
		// Efraimidis–Spirakis: key = U^(1/w); larger keys win.
		keys[i] = keyed{e: e, key: math.Pow(rng.Float64(), 1/weight)}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].key > keys[j].key })
	edges := make([]graph.Edge, tgt)
	for i := 0; i < tgt; i++ {
		edges[i] = keys[i].e
	}
	return newResult(g, p, edges)
}
