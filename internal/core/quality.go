package core

import (
	"strings"

	"edgeshed/internal/obs"
)

// RatioQuality is the per-ratio quality summary of one reduction: the kept
// edge counts, the paper's Δ objective, and the Theorem 1/2 bound with its
// headroom. It is the single derivation behind both `cmd/shed -stats-json`
// rows and the end-of-reduce quality probes in the manifest, so the two
// outputs cannot drift (pinned by the stats-vs-manifest agreement test).
type RatioQuality struct {
	// P is the edge-preservation ratio.
	P float64
	// KeptEdges is |E'|, the reduced graph's edge count.
	KeptEdges int
	// KeptFraction is |E'| / |E|.
	KeptFraction float64
	// Delta is Δ = Σ_u |dis(u)| (Equation 4).
	Delta float64
	// AvgDisPerNode is Δ/|V|, the quantity Theorems 1 and 2 bound.
	AvgDisPerNode float64
	// BoundName names the theorem bounding this method ("theorem1" for CRR,
	// "theorem2" for BM2); empty when the method has no bound.
	BoundName string
	// Bound is the theorem's bound value; 0 without a bound.
	Bound float64
	// Headroom is Bound − AvgDisPerNode, the margin by which the run beats
	// its theorem (higher is better); 0 without a bound.
	Headroom float64
}

// QualityOf summarizes a reduction's quality. The method name selects the
// theorem bound ("CRR" → Theorem 1, "BM2" → Theorem 2, anything else →
// none); Delta is recomputed exactly from the reduced graph, so two calls
// on the same Result produce identical bits.
func QualityOf(res *Result, method string) RatioQuality {
	q := RatioQuality{
		P:             res.P,
		KeptEdges:     res.Reduced.NumEdges(),
		Delta:         res.Delta(),
		AvgDisPerNode: res.AvgDisPerNode(),
	}
	if m := res.Original.NumEdges(); m > 0 {
		q.KeptFraction = float64(q.KeptEdges) / float64(m)
	}
	switch method {
	case "CRR":
		q.BoundName = "theorem1"
		q.Bound = CRRBound(res.Original, res.P)
	case "BM2":
		q.BoundName = "theorem2"
		q.Bound = BM2Bound(res.Original, res.P)
	}
	if q.BoundName != "" {
		q.Headroom = q.Bound - q.AvgDisPerNode
	}
	return q
}

// record emits the summary onto sp's quality probes under the method's
// lowercase prefix ("crr.kept_edges", "bm2.headroom.theorem2", ...), from
// worker slot. Called once at the end of a reduce — never on the hot path —
// and free when sp is nil.
func (q RatioQuality) record(sp *obs.Span, slot int, method string) {
	if !sp.Enabled() {
		return
	}
	prefix := strings.ToLower(method) + "."
	sp.Quality(prefix+"kept_edges", obs.DirInfo).RecordAt(slot, q.P, float64(q.KeptEdges))
	sp.Quality(prefix+"kept_fraction", obs.DirInfo).RecordAt(slot, q.P, q.KeptFraction)
	sp.Quality(prefix+"delta", obs.DirLower).RecordAt(slot, q.P, q.Delta)
	sp.Quality(prefix+"avg_dis", obs.DirLower).RecordAt(slot, q.P, q.AvgDisPerNode)
	if q.BoundName != "" {
		sp.Quality(prefix+"bound."+q.BoundName, obs.DirInfo).RecordAt(slot, q.P, q.Bound)
		sp.Quality(prefix+"headroom."+q.BoundName, obs.DirHigher).RecordAt(slot, q.P, q.Headroom)
	}
}
