package core

import (
	"math"
	"testing"

	"edgeshed/internal/graph/gen"
)

func TestTargetedCRRKeepsEdgeBudget(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 41)
	for _, p := range []float64{0.2, 0.5, 0.8} {
		res, err := (TargetedCRR{Seed: 1}).Reduce(g, p)
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		want := int(math.Round(p * float64(g.NumEdges())))
		if got := res.Reduced.NumEdges(); got != want {
			t.Errorf("p=%v: |E'| = %d, want %d", p, got, want)
		}
		if err := res.Reduced.Validate(); err != nil {
			t.Errorf("p=%v: invalid: %v", p, err)
		}
	}
}

func TestTargetedCRRQualityAtLeastPhase1(t *testing.T) {
	g := gen.BarabasiAlbert(300, 4, 42)
	p := 0.4
	phase1, err := (CRR{Seed: 2, Steps: -1}).Reduce(g, p)
	if err != nil {
		t.Fatal(err)
	}
	targeted, err := (TargetedCRR{Seed: 2}).Reduce(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if targeted.Delta() >= phase1.Delta() {
		t.Errorf("targeted Δ=%v not below Phase-1-only Δ=%v", targeted.Delta(), phase1.Delta())
	}
	// And it must respect Theorem 1's bound like the original.
	if targeted.AvgDisPerNode() >= CRRBound(g, p) {
		t.Errorf("targeted broke the CRR bound: %v >= %v", targeted.AvgDisPerNode(), CRRBound(g, p))
	}
}

func TestTargetedCRRCompetitiveWithRandomRewiring(t *testing.T) {
	// The extension's selling point: with far fewer iterations than [10·P]
	// random attempts, targeted repair reaches comparable (or better) Δ.
	g := gen.ConfigurationModel(gen.PowerLawDegrees(400, 2.2, 1, 50, 43), 44)
	p := 0.5
	random, err := (CRR{Seed: 3}).Reduce(g, p)
	if err != nil {
		t.Fatal(err)
	}
	targeted, err := (TargetedCRR{Seed: 3}).Reduce(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if targeted.Delta() > random.Delta()*1.3 {
		t.Errorf("targeted Δ=%v much worse than random-rewiring Δ=%v", targeted.Delta(), random.Delta())
	}
}

func TestTargetedCRRDeterministic(t *testing.T) {
	g := gen.ErdosRenyi(100, 250, 45)
	a, err := (TargetedCRR{Seed: 4}).Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (TargetedCRR{Seed: 4}).Reduce(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ae, be := a.Reduced.Edges(), b.Reduced.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatal("same seed, different reductions")
		}
	}
}

func TestTargetedCRRTrivialCases(t *testing.T) {
	g := gen.Cycle(10)
	res, err := (TargetedCRR{Seed: 1}).Reduce(g, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduced.NumEdges() != 10 {
		t.Errorf("p≈1 |E'| = %d, want all 10", res.Reduced.NumEdges())
	}
	if _, err := (TargetedCRR{}).Reduce(g, 0); err == nil {
		t.Error("p=0 accepted")
	}
	var name Reducer = TargetedCRR{}
	if name.Name() != "TargetedCRR" {
		t.Errorf("Name = %q", name.Name())
	}
}

func TestTargetedCRRSubgraph(t *testing.T) {
	g := gen.HolmeKim(150, 3, 0.5, 46)
	res, err := (TargetedCRR{Seed: 5}).Reduce(g, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Reduced.Edges() {
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("foreign edge %v", e)
		}
	}
}
