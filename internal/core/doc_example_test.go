package core_test

import (
	"fmt"

	"edgeshed/internal/core"
	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

// ExampleCRR demonstrates the paper's primary algorithm on a small
// scale-free graph: shed half the edges while tracking expected degrees.
func ExampleCRR() {
	g := gen.BarabasiAlbert(100, 3, 1)
	res, err := (core.CRR{Seed: 1}).Reduce(g, 0.5)
	if err != nil {
		panic(err)
	}
	fmt.Println("kept edges:", res.Reduced.NumEdges())
	fmt.Printf("within Theorem 1 bound: %v\n", res.AvgDisPerNode() < core.CRRBound(g, 0.5))
	// Output:
	// kept edges: 147
	// within Theorem 1 bound: true
}

// ExampleBM2 shows the b-matching based variant, which trades a little
// accuracy for dramatic speed.
func ExampleBM2() {
	g := gen.BarabasiAlbert(100, 3, 1)
	res, err := (core.BM2{}).Reduce(g, 0.5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("within Theorem 2 bound: %v\n", res.AvgDisPerNode() < core.BM2Bound(g, 0.5))
	// No node ends a full edge above its expected degree.
	ok := true
	for u := 0; u < g.NumNodes(); u++ {
		if res.Dis(graph.NodeID(u)) >= 1 {
			ok = false
		}
	}
	fmt.Println("discrepancies below +1:", ok)
	// Output:
	// within Theorem 2 bound: true
	// discrepancies below +1: true
}

// ExampleResult_Delta computes the paper's quality objective for a manual
// reduction.
func ExampleResult_Delta() {
	g := gen.Path(4) // 0-1-2-3
	sub, _ := g.Subgraph([]graph.Edge{{U: 1, V: 2}})
	res := &core.Result{Original: g, Reduced: sub, P: 0.5}
	fmt.Printf("Δ = %.1f\n", res.Delta())
	// Output:
	// Δ = 1.0
}
