// Package core implements the paper's contribution: two vertex-degree
// preserving edge-shedding algorithms that reduce an undirected graph
// G = (V, E) to a subgraph with roughly p·|E| edges while minimizing the
// total degree discrepancy
//
//	Δ = Σ_{u ∈ V} |deg_G'(u) − p·deg_G(u)|.
//
// CRR (Centrality Ranking with Rewiring, Algorithm 1) keeps the
// highest-betweenness edges and then locally rewires to shrink Δ. BM2
// (B-Matching with Bipartite Matching, Algorithms 2–3) rounds the expected
// degrees into b-matching capacities and corrects the rounding error with a
// gain-weighted bipartite matching. Random uniform edge sampling is provided
// as the natural baseline.
package core

import (
	"fmt"
	"math"
	"slices"

	"edgeshed/internal/graph"
)

// Reducer reduces a graph to an edge-preservation ratio p ∈ (0, 1).
type Reducer interface {
	// Name returns the algorithm's short name as used in the paper's tables
	// ("CRR", "BM2", ...).
	Name() string
	// Reduce sheds edges from g, targeting |E'| ≈ p·|E|.
	Reduce(g *graph.Graph, p float64) (*Result, error)
}

// Result is a reduced graph along with everything needed to evaluate it.
type Result struct {
	// Original is the input graph G.
	Original *graph.Graph
	// Reduced is the reduced graph G' over the same node ids.
	Reduced *graph.Graph
	// P is the edge preservation ratio used.
	P float64
}

// checkP validates the edge-preservation ratio shared by all reducers.
func checkP(p float64) error {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		return fmt.Errorf("core: edge preservation ratio p = %v outside (0, 1)", p)
	}
	return nil
}

// targetEdges returns [P], the nearest integer to p·|E| (Algorithm 1 line 2;
// the paper writes [P] for rounding).
func targetEdges(g *graph.Graph, p float64) int {
	return int(math.Round(p * float64(g.NumEdges())))
}

// newResult assembles a Result from a selected edge set.
func newResult(g *graph.Graph, p float64, edges []graph.Edge) (*Result, error) {
	sub, err := g.Subgraph(edges)
	if err != nil {
		return nil, err
	}
	return &Result{Original: g, Reduced: sub, P: p}, nil
}

// newResultIDs assembles a Result from selected canonical edge ids, sorting
// them in place. It produces exactly the graph newResult would for the same
// edge set, through the id-native Graph.SubgraphByIDs fast path — no edge
// hashing or re-sorting.
func newResultIDs(g *graph.Graph, p float64, ids []int32) (*Result, error) {
	slices.Sort(ids)
	sub, err := g.SubgraphByIDs(ids)
	if err != nil {
		return nil, err
	}
	return &Result{Original: g, Reduced: sub, P: p}, nil
}

// ExpectedDegree returns E(deg_G'(u)) = p·deg_G(u) (Equation 1).
func (r *Result) ExpectedDegree(u graph.NodeID) float64 {
	return r.P * float64(r.Original.Degree(u))
}

// Dis returns dis(u) = deg_G'(u) − E(deg_G'(u)) (Equation 3).
func (r *Result) Dis(u graph.NodeID) float64 {
	return float64(r.Reduced.Degree(u)) - r.ExpectedDegree(u)
}

// Delta returns Δ = Σ_u |dis(u)| (Equation 4), the paper's reduction-quality
// objective.
func (r *Result) Delta() float64 {
	var sum float64
	for u := 0; u < r.Original.NumNodes(); u++ {
		sum += math.Abs(r.Dis(graph.NodeID(u)))
	}
	return sum
}

// ActiveNodes returns |V'|: the number of nodes with at least one incident
// edge in the reduced graph. The paper's figures normalize by this count.
func (r *Result) ActiveNodes() int {
	n := 0
	for u := 0; u < r.Reduced.NumNodes(); u++ {
		if r.Reduced.Degree(graph.NodeID(u)) > 0 {
			n++
		}
	}
	return n
}

// AvgDelta returns Δ/|V'| ("Average delta" in Figure 4), or 0 when the
// reduced graph has no active nodes.
func (r *Result) AvgDelta() float64 {
	a := r.ActiveNodes()
	if a == 0 {
		return 0
	}
	return r.Delta() / float64(a)
}

// AvgDisPerNode returns Δ/|V|: the average absolute degree discrepancy over
// the full node set, the quantity bounded by Theorems 1 and 2.
func (r *Result) AvgDisPerNode() float64 {
	if r.Original.NumNodes() == 0 {
		return 0
	}
	return r.Delta() / float64(r.Original.NumNodes())
}

// CRRBound returns Theorem 1's upper bound on the average absolute
// discrepancy for CRR: 4p(1−p)|E|/|V|.
func CRRBound(g *graph.Graph, p float64) float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	return 4 * p * (1 - p) * float64(g.NumEdges()) / float64(g.NumNodes())
}

// BM2Bound returns Theorem 2's upper bound on the average absolute
// discrepancy for BM2: 1/2 + (1−p)|E|/|V|.
func BM2Bound(g *graph.Graph, p float64) float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	return 0.5 + (1-p)*float64(g.NumEdges())/float64(g.NumNodes())
}
