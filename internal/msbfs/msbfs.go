// Package msbfs is the bit-parallel multi-source BFS engine behind the
// repository's BFS-shaped kernels (closeness, the distance profile, and
// sampled node betweenness).
//
// A Traversal runs up to 64 sources at once: every node carries one uint64
// word whose bit s means "source s of the current batch has reached this
// node". One shared level-synchronous sweep over the flat CSR arrays then
// advances all sources together — the adjacency is scanned once per level
// for the whole batch instead of once per source, and per-source relaunch
// overhead (re-zeroing O(|V|) state) is paid once per batch. Distances are
// implicit: bit s first appears in node u's word at level d(source s, u),
// so consumers read per-level (node, word) pairs and popcount.
//
// The direction-optimizing switch (Beamer, Asanović & Patterson, SC'12) is
// generalized to batch occupancy: a node counts as unexplored while ANY
// batch bit is still missing from its word, bottom-up passes probe only the
// missing bits and stop at the first neighbor set that covers them, and the
// unvisited list compacts away only fully-saturated nodes. With width 1 the
// engine degenerates to exactly the classic per-source heuristic.
//
// Determinism: which levels each bit appears at is a pure function of the
// graph and the batch (both expansion directions discover the true BFS
// levels), so integer consumers (popcount accumulations) are bit-identical
// at any batch width and worker count by exact arithmetic alone. Float
// consumers (the betweenness dependency fold) additionally need a canonical
// per-level node order; New's canonical flag sorts every level by node id
// ascending so their summation order is a function of the graph and source
// list alone. See DESIGN.md §10.
package msbfs

import (
	"fmt"
	"slices"

	"edgeshed/internal/graph"
)

// MaxWidth is the largest batch width: one source per bit of the uint64
// visited word.
const MaxWidth = 64

// Direction-optimizing BFS switch thresholds (Beamer, Asanović & Patterson,
// SC'12): go bottom-up when the frontier owns more than 1/bfsAlpha of the
// adjacency slots still owned by unsaturated nodes, return top-down when
// the frontier shrinks below 1/bfsBeta of the nodes. The classic constants
// work well on the low-diameter scale-free graphs the paper evaluates; on
// high-diameter graphs (paths, grids) the frontier never grows enough to
// trigger bottom-up and the traversal degenerates to plain top-down BFS.
const (
	bfsAlpha = 14
	bfsBeta  = 24
)

// Width clamps a requested batch width to [1, MaxWidth]; 0 or any
// out-of-range request selects MaxWidth, the full word. The width changes
// wall-clock time and scratch memory only — consumer output bits never
// depend on it.
func Width(requested int) int {
	if requested <= 0 || requested > MaxWidth {
		return MaxWidth
	}
	return requested
}

// Stats are the traversal's cumulative tallies across every Run, plain
// local counters the engine always maintains (two integer adds per level,
// nothing per edge) so reading them never perturbs a traversal. Consumers
// fold them into observability counters only when instrumentation is live.
type Stats struct {
	// Batches is the number of Run calls completed.
	Batches int64
	// TopDownLevels and BottomUpLevels count levels expanded in each
	// direction; Switches counts the flips between them (each Run starts
	// top-down).
	TopDownLevels, BottomUpLevels, Switches int64
	// WordsScanned counts adjacency slots examined: every frontier slot of a
	// top-down level plus every probe a bottom-up level issued before its
	// early exit. It is the engine's unit of traversal work.
	WordsScanned int64
}

// Traversal is the reusable per-worker state of the engine: allocate once
// with New, call Run per batch, and read the discovered levels between
// runs. After the first few runs on a graph the scratch has reached steady
// state and Run allocates nothing. Not safe for concurrent use — parallel
// kernels give each worker its own Traversal.
type Traversal struct {
	c         *graph.CSR
	width     int
	canonical bool

	// visit, front and nxt are the dense per-node bit words: bits that have
	// arrived at any level so far, bits that first arrived at the current
	// level, and bits accumulating for the next level. front and nxt are
	// fully zero between runs; visit holds the last run's reach (read via
	// Visited) and is cleared lazily at the start of the next Run.
	visit, front, nxt []uint64

	// nodes and words record every (node, first-arrival word) pair in level
	// order: level d occupies nodes[levelOff[d]:levelOff[d+1]]. A node
	// appears once per level at which at least one new bit reached it.
	nodes    []graph.NodeID
	words    []uint64
	levelOff []int32

	// frontier and nxtList are the compacted node lists behind front and
	// nxt, swapped every level.
	frontier, nxtList []graph.NodeID

	// unvisited is bottom-up scratch: nodes whose words are not yet
	// saturated, compacted as they fill. Rebuilt lazily per run at the
	// first bottom-up switch.
	unvisited []graph.NodeID

	stats Stats

	// OnSwitch, when non-nil, is called at every direction switch with the
	// level about to be expanded and the new direction (true = bottom-up).
	// It is an observation seam — msbfs stays import-free of obs; kernels
	// bind it to a flight-recorder marker when recording — and must not
	// mutate traversal state: the engine's outputs are bit-identical with
	// or without it.
	OnSwitch func(level int, bottomUp bool)
}

// New returns a Traversal over c running width sources per batch (clamped
// via Width). With canonical set, every level's (node, word) pairs are
// sorted by node id ascending, giving float consumers a summation order
// that depends only on the graph and the source list; integer consumers
// leave it off and skip the sort.
func New(c *graph.CSR, width int, canonical bool) *Traversal {
	n := c.NumNodes()
	return &Traversal{
		c:         c,
		width:     Width(width),
		canonical: canonical,
		visit:     make([]uint64, n),
		front:     make([]uint64, n),
		nxt:       make([]uint64, n),
		nodes:     make([]graph.NodeID, 0, n),
		words:     make([]uint64, 0, n),
		levelOff:  make([]int32, 0, 32),
		frontier:  make([]graph.NodeID, 0, n),
		nxtList:   make([]graph.NodeID, 0, n),
		unvisited: make([]graph.NodeID, 0, n),
	}
}

// Width returns the traversal's configured batch width.
func (t *Traversal) Width() int { return t.width }

// Stats returns the cumulative tallies across every Run so far.
func (t *Traversal) Stats() Stats { return t.stats }

// NumLevels returns the number of BFS levels the last Run discovered,
// counting level 0 (the sources themselves). Zero before the first Run.
func (t *Traversal) NumLevels() int {
	if len(t.levelOff) == 0 {
		return 0
	}
	return len(t.levelOff) - 1
}

// Level returns the nodes first reached at distance d by the last Run,
// paired index-for-index with the batch bits that arrived there. Both
// slices alias the traversal's scratch: read them before the next Run.
func (t *Traversal) Level(d int) ([]graph.NodeID, []uint64) {
	lo, hi := t.levelOff[d], t.levelOff[d+1]
	return t.nodes[lo:hi], t.words[lo:hi]
}

// Visited returns the batch bits that reached node u in the last Run.
func (t *Traversal) Visited(u graph.NodeID) uint64 { return t.visit[u] }

// Visit returns the dense per-node reach words of the last Run: element u
// holds the batch bits that reached node u (Visit()[u] == Visited(u)).
// Consumers that sweep every node or every CSR slot — the batched Brandes
// edge fold — read the slice directly instead of paying a method call per
// slot. The slice aliases the traversal's scratch: read it before the next
// Run, and do not write through it.
func (t *Traversal) Visit() []uint64 { return t.visit }

// Run traverses one batch: source srcs[i] travels as bit i. The batch may
// be ragged (shorter than the configured width, as a source list's tail
// batch is) but never longer. Duplicate source nodes are legal — their
// bits simply travel together. Levels from the previous Run are discarded.
func (t *Traversal) Run(srcs []graph.NodeID) {
	if len(srcs) == 0 || len(srcs) > t.width {
		panic(fmt.Sprintf("msbfs: batch of %d sources outside [1, %d]", len(srcs), t.width))
	}
	// Lazily clear the previous run's reach: only entries that run touched.
	for _, u := range t.nodes {
		t.visit[u] = 0
	}
	t.nodes = t.nodes[:0]
	t.words = t.words[:0]
	t.levelOff = append(t.levelOff[:0], 0)
	t.frontier = t.frontier[:0]
	t.nxtList = t.nxtList[:0]

	c := t.c
	offsets, targets := c.Offsets, c.Targets
	visit, front, nxt := t.visit, t.front, t.nxt
	n := c.NumNodes()
	// full is the saturation mask of this (possibly ragged) batch.
	full := ^uint64(0) >> (64 - uint(len(srcs)))

	// remSlots counts adjacency slots owned by unsaturated nodes — the
	// batch-occupancy generalization of "slots owned by unvisited nodes".
	remSlots := int64(c.NumSlots())

	// Seed level 0 through the ordinary accumulate-finalize path so
	// duplicate sources merge and canonical sorting applies.
	for i, s := range srcs {
		if nxt[s] == 0 {
			t.nxtList = append(t.nxtList, s)
		}
		nxt[s] |= uint64(1) << uint(i)
	}
	scoutSlots := t.finalize(full, &remSlots)

	bottomUp := false
	haveUnvisited := false
	for len(t.frontier) > 0 {
		if !bottomUp {
			if scoutSlots > remSlots/bfsAlpha {
				bottomUp = true
				t.stats.Switches++
				if t.OnSwitch != nil {
					t.OnSwitch(len(t.levelOff)-1, true)
				}
			}
		} else if len(t.frontier) < n/bfsBeta {
			bottomUp = false
			t.stats.Switches++
			if t.OnSwitch != nil {
				t.OnSwitch(len(t.levelOff)-1, false)
			}
		}
		if bottomUp {
			t.stats.BottomUpLevels++
			// Bottom-up: every unsaturated node probes its adjacency for
			// the bits it is missing, stopping as soon as the probes cover
			// them all. Bits claimed earlier in this same pass live in nxt,
			// not front, so the scan order within the level is irrelevant
			// to the outcome. The unvisited list is compacted in place so
			// later levels only scan survivors; nodes saturated by
			// intervening top-down levels fall out at the next compaction.
			var scanned int64
			if !haveUnvisited {
				// First bottom-up level of this run: scan every node
				// directly and collect the survivors as the unvisited list,
				// so no separate build pass is needed.
				live := t.unvisited[:0]
				for u := graph.NodeID(0); u < graph.NodeID(n); u++ {
					miss := full &^ visit[u]
					if miss == 0 {
						continue
					}
					var add uint64
					nbrs := targets[offsets[u]:offsets[u+1]]
					k := 0
					for ; k < len(nbrs); k++ {
						add |= front[nbrs[k]] & miss
						if add == miss {
							k++
							break
						}
					}
					scanned += int64(k)
					if add != 0 {
						nxt[u] = add
						t.nxtList = append(t.nxtList, u)
					}
					if visit[u]|add != full {
						live = append(live, u)
					}
				}
				t.unvisited = live
				haveUnvisited = true
			} else {
				live := t.unvisited[:0]
				for _, u := range t.unvisited {
					miss := full &^ visit[u]
					if miss == 0 {
						continue
					}
					var add uint64
					nbrs := targets[offsets[u]:offsets[u+1]]
					k := 0
					for ; k < len(nbrs); k++ {
						add |= front[nbrs[k]] & miss
						if add == miss {
							k++
							break
						}
					}
					scanned += int64(k)
					if add != 0 {
						nxt[u] = add
						t.nxtList = append(t.nxtList, u)
					}
					if visit[u]|add != full {
						live = append(live, u)
					}
				}
				t.unvisited = live
			}
			t.stats.WordsScanned += scanned
		} else {
			t.stats.TopDownLevels++
			t.stats.WordsScanned += scoutSlots
			for _, v := range t.frontier {
				wv := front[v]
				for _, nb := range targets[offsets[v]:offsets[v+1]] {
					if add := wv &^ visit[nb]; add != 0 {
						if nxt[nb] == 0 {
							t.nxtList = append(t.nxtList, nb)
						}
						nxt[nb] |= add
					}
				}
			}
		}
		scoutSlots = t.finalize(full, &remSlots)
	}
	t.stats.Batches++
}

// finalize installs the accumulated next frontier as the current one: it
// clears the old front words, commits nxt into visit and the level storage
// (sorted by node id first when canonical), swaps the node lists, and
// returns the new frontier's adjacency slot count for the direction
// heuristic. An empty next frontier records no level, leaving every dense
// word zeroed for the next Run.
func (t *Traversal) finalize(full uint64, remSlots *int64) int64 {
	offsets := t.c.Offsets
	for _, v := range t.frontier {
		t.front[v] = 0
	}
	if t.canonical {
		slices.Sort(t.nxtList)
	}
	var scout int64
	for _, u := range t.nxtList {
		w := t.nxt[u]
		t.nxt[u] = 0
		t.front[u] = w
		t.visit[u] |= w
		t.nodes = append(t.nodes, u)
		t.words = append(t.words, w)
		deg := int64(offsets[u+1] - offsets[u])
		if t.visit[u] == full {
			*remSlots -= deg
		}
		scout += deg
	}
	if len(t.nxtList) > 0 {
		t.levelOff = append(t.levelOff, int32(len(t.nodes)))
	}
	t.frontier, t.nxtList = t.nxtList, t.frontier[:0]
	return scout
}
