package msbfs

import (
	"math/bits"
	"testing"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

// bfsDist is the reference: one textbook queue BFS, -1 for unreachable.
func bfsDist(c *graph.CSR, s graph.NodeID) []int32 {
	dist := make([]int32, c.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []graph.NodeID{s}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range c.Targets[c.Offsets[v]:c.Offsets[v+1]] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// levelDists decodes the traversal's level storage into one distance array
// per batch bit, failing on any node/bit pair reported twice.
func levelDists(t *testing.T, tr *Traversal, nsrc, n int) [][]int32 {
	t.Helper()
	got := make([][]int32, nsrc)
	for s := range got {
		got[s] = make([]int32, n)
		for i := range got[s] {
			got[s][i] = -1
		}
	}
	for d := 0; d < tr.NumLevels(); d++ {
		nodes, words := tr.Level(d)
		for i, u := range nodes {
			w := words[i]
			if w == 0 {
				t.Fatalf("level %d entry %d (node %d) has empty word", d, i, u)
			}
			for w != 0 {
				s := bits.TrailingZeros64(w)
				w &= w - 1
				if s >= nsrc {
					t.Fatalf("level %d node %d carries bit %d beyond batch size %d", d, u, s, nsrc)
				}
				if got[s][u] >= 0 {
					t.Fatalf("bit %d reached node %d twice (levels %d and %d)", s, u, got[s][u], d)
				}
				got[s][u] = int32(d)
			}
		}
	}
	return got
}

func testGraphs() []struct {
	name string
	g    *graph.Graph
} {
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"BA", gen.BarabasiAlbert(300, 3, 7)},
		{"ER", gen.ErdosRenyi(300, 800, 11)},
		{"WS", gen.WattsStrogatz(300, 6, 0.1, 13)},
		{"Path", gen.Path(200)},
		{"Star", gen.Star(64)},
		{"Disconnected", graph.MustFromEdges(40, []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 5, V: 6}, {U: 6, V: 7}, {U: 7, V: 5},
		})},
	}
}

// TestRunMatchesPerSourceBFS pins the engine's per-bit levels to a plain
// per-source BFS across generators, widths, ragged batches, and both
// ordering modes.
func TestRunMatchesPerSourceBFS(t *testing.T) {
	for _, tg := range testGraphs() {
		c := tg.g.CSR()
		n := c.NumNodes()
		nsrc := min(70, n)
		srcs := make([]graph.NodeID, nsrc)
		for i := range srcs {
			srcs[i] = graph.NodeID((i * 13) % n)
		}
		want := make([][]int32, nsrc)
		for i, s := range srcs {
			want[i] = bfsDist(c, s)
		}
		for _, width := range []int{1, 8, 64} {
			for _, canonical := range []bool{false, true} {
				tr := New(c, width, canonical)
				for lo := 0; lo < nsrc; lo += width {
					hi := min(lo+width, nsrc)
					batch := srcs[lo:hi]
					tr.Run(batch)
					got := levelDists(t, tr, len(batch), n)
					for s := range batch {
						for u := 0; u < n; u++ {
							if got[s][u] != want[lo+s][u] {
								t.Fatalf("%s width=%d canonical=%v source %d node %d: level %d, BFS dist %d",
									tg.name, width, canonical, batch[s], u, got[s][u], want[lo+s][u])
							}
							w := tr.Visited(graph.NodeID(u))
							if reached := w>>uint(s)&1 == 1; reached != (want[lo+s][u] >= 0) {
								t.Fatalf("%s width=%d source %d node %d: Visited bit %v, reachable %v",
									tg.name, width, batch[s], u, reached, want[lo+s][u] >= 0)
							}
						}
					}
				}
			}
		}
	}
}

// TestCanonicalLevelsAscend pins the canonical contract: every level's node
// list strictly ascends, and the (node, word) multiset matches the
// unsorted mode exactly.
func TestCanonicalLevelsAscend(t *testing.T) {
	g := gen.BarabasiAlbert(400, 4, 3)
	c := g.CSR()
	srcs := make([]graph.NodeID, 64)
	for i := range srcs {
		srcs[i] = graph.NodeID(i * 5)
	}
	sorted := New(c, 64, true)
	plain := New(c, 64, false)
	sorted.Run(srcs)
	plain.Run(srcs)
	if sorted.NumLevels() != plain.NumLevels() {
		t.Fatalf("canonical %d levels, plain %d", sorted.NumLevels(), plain.NumLevels())
	}
	for d := 0; d < sorted.NumLevels(); d++ {
		nodes, words := sorted.Level(d)
		for i := 1; i < len(nodes); i++ {
			if nodes[i-1] >= nodes[i] {
				t.Fatalf("level %d not strictly ascending at %d: %d >= %d", d, i, nodes[i-1], nodes[i])
			}
		}
		pn, pw := plain.Level(d)
		if len(pn) != len(nodes) {
			t.Fatalf("level %d: canonical %d entries, plain %d", d, len(nodes), len(pn))
		}
		byNode := make(map[graph.NodeID]uint64, len(pn))
		for i, u := range pn {
			byNode[u] = pw[i]
		}
		for i, u := range nodes {
			if byNode[u] != words[i] {
				t.Fatalf("level %d node %d: canonical word %x, plain %x", d, u, words[i], byNode[u])
			}
		}
	}
}

// TestDuplicateSourcesShareAWord covers the documented duplicate-source
// case: both bits travel together through every level.
func TestDuplicateSourcesShareAWord(t *testing.T) {
	g := gen.Cycle(10)
	tr := New(g.CSR(), 8, true)
	tr.Run([]graph.NodeID{3, 3, 7})
	got := levelDists(t, tr, 3, 10)
	want0 := bfsDist(g.CSR(), 3)
	want2 := bfsDist(g.CSR(), 7)
	for u := 0; u < 10; u++ {
		if got[0][u] != want0[u] || got[1][u] != want0[u] {
			t.Fatalf("node %d: duplicate bits at levels %d/%d, want %d", u, got[0][u], got[1][u], want0[u])
		}
		if got[2][u] != want2[u] {
			t.Fatalf("node %d: bit 2 at level %d, want %d", u, got[2][u], want2[u])
		}
	}
}

// TestIsolatedSourceSingleLevel: a source with no edges yields exactly the
// level-0 self entry and a clean traversal end.
func TestIsolatedSourceSingleLevel(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 1, V: 2}})
	tr := New(g.CSR(), 4, false)
	tr.Run([]graph.NodeID{0})
	if tr.NumLevels() != 1 {
		t.Fatalf("isolated source: %d levels, want 1", tr.NumLevels())
	}
	nodes, words := tr.Level(0)
	if len(nodes) != 1 || nodes[0] != 0 || words[0] != 1 {
		t.Fatalf("level 0 = %v/%v, want [0]/[1]", nodes, words)
	}
}

// TestStatsAccumulate: the tallies move, levels split exactly between the
// two directions, and batches count Run calls.
func TestStatsAccumulate(t *testing.T) {
	g := gen.BarabasiAlbert(500, 4, 9)
	tr := New(g.CSR(), 64, false)
	srcs := make([]graph.NodeID, 64)
	for i := range srcs {
		srcs[i] = graph.NodeID(i)
	}
	var levels int64
	for r := 0; r < 3; r++ {
		tr.Run(srcs)
		levels += int64(tr.NumLevels())
	}
	st := tr.Stats()
	if st.Batches != 3 {
		t.Errorf("Batches = %d, want 3", st.Batches)
	}
	// Every level 0..NumLevels-1 serves once as a frontier, expanded in
	// exactly one direction.
	if st.TopDownLevels+st.BottomUpLevels != levels {
		t.Errorf("TopDown %d + BottomUp %d != %d frontier expansions",
			st.TopDownLevels, st.BottomUpLevels, levels)
	}
	if st.WordsScanned == 0 {
		t.Error("WordsScanned stayed 0 over a dense traversal")
	}
	// A 64-wide batch on a low-diameter BA graph must trigger bottom-up.
	if st.BottomUpLevels == 0 || st.Switches == 0 {
		t.Errorf("no direction optimization observed: %+v", st)
	}
}

// TestRunSteadyStateAllocs pins the zero-alloc steady state: after warmup
// on a fixed graph, Run allocates nothing, so per-batch cost is pure
// traversal (and the disabled-obs path of consumers adds nothing on top).
func TestRunSteadyStateAllocs(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 4, 1)
	c := g.CSR()
	for _, canonical := range []bool{false, true} {
		tr := New(c, 64, canonical)
		srcs := make([]graph.NodeID, 64)
		for i := range srcs {
			srcs[i] = graph.NodeID((i * 31) % 2000)
		}
		for i := 0; i < 3; i++ {
			tr.Run(srcs)
		}
		if allocs := testing.AllocsPerRun(10, func() { tr.Run(srcs) }); allocs != 0 {
			t.Errorf("canonical=%v: %v allocs per steady-state Run, want 0", canonical, allocs)
		}
	}
}

// TestWidthClamp pins the Width resolution rules.
func TestWidthClamp(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 64}, {-3, 64}, {65, 64}, {1000, 64}, {1, 1}, {8, 8}, {64, 64},
	}
	for _, c := range cases {
		if got := Width(c.in); got != c.want {
			t.Errorf("Width(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestRunRejectsBadBatches: empty and over-wide batches panic loudly
// instead of silently mis-masking.
func TestRunRejectsBadBatches(t *testing.T) {
	tr := New(gen.Path(4).CSR(), 2, false)
	for _, srcs := range [][]graph.NodeID{nil, {0, 1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Run(%v) with width 2 did not panic", srcs)
				}
			}()
			tr.Run(srcs)
		}()
	}
}

// TestOnSwitchCallback pins the observation seam: OnSwitch fires exactly
// once per recorded direction switch with the current level and direction,
// and a nil callback (the disabled-obs path) traverses identically.
func TestOnSwitchCallback(t *testing.T) {
	g := gen.BarabasiAlbert(500, 4, 9)
	c := g.CSR()
	srcs := make([]graph.NodeID, 64)
	for i := range srcs {
		srcs[i] = graph.NodeID(i)
	}

	plain := New(c, 64, false)
	plain.Run(srcs)
	want := levelDists(t, plain, len(srcs), c.NumNodes())

	tr := New(c, 64, false)
	type sw struct {
		level    int
		bottomUp bool
	}
	var calls []sw
	tr.OnSwitch = func(level int, bottomUp bool) {
		calls = append(calls, sw{level, bottomUp})
	}
	tr.Run(srcs)

	if int64(len(calls)) != tr.Stats().Switches {
		t.Fatalf("OnSwitch fired %d times, Stats().Switches = %d", len(calls), tr.Stats().Switches)
	}
	if len(calls) == 0 {
		t.Fatal("no switches on a dense 64-wide BA batch; the test exercises nothing")
	}
	// Directions alternate (each switch flips the mode) and the first one on
	// a fresh batch is into bottom-up.
	if !calls[0].bottomUp {
		t.Errorf("first switch direction = top-down, want bottom-up")
	}
	for i := 1; i < len(calls); i++ {
		if calls[i].bottomUp == calls[i-1].bottomUp {
			t.Errorf("switch %d repeats direction %v", i, calls[i].bottomUp)
		}
		if calls[i].level <= calls[i-1].level {
			t.Errorf("switch levels not increasing: %d then %d", calls[i-1].level, calls[i].level)
		}
	}
	for _, s := range calls {
		if s.level <= 0 || s.level >= tr.NumLevels() {
			t.Errorf("switch at level %d outside (0, %d)", s.level, tr.NumLevels())
		}
	}

	// The callback must not perturb the traversal: levels bit-identical to
	// the un-observed run.
	got := levelDists(t, tr, len(srcs), c.NumNodes())
	for s := range got {
		for u := range got[s] {
			if got[s][u] != want[s][u] {
				t.Fatalf("observed run diverged at source %d node %d: %d vs %d", s, u, got[s][u], want[s][u])
			}
		}
	}
}
