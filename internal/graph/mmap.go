package graph

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"unsafe"

	"edgeshed/internal/obs"
)

// Loading an ESC1 file is one mmap plus pointer fixups: every CSR array —
// Offsets, Targets, EdgeID, Mate, EdgeU, EdgeV — and the canonical []Edge
// list is a slice header pointed into the page-aligned mapping, so a
// billion-edge graph "loads" without per-edge work and pages in lazily as
// kernels touch it. The only full passes over the data are the CRC-32C
// verification and the structural validation, both straight-line integer
// sweeps that run at memory speed.
//
// Aliasing the mapping requires the file's little-endian layout to match
// the host; on a big-endian host every section is decoded into heap copies
// instead, preserving correctness at copy cost.

// hostLittleEndian reports whether the running machine stores integers
// little-endian, the precondition for aliasing file bytes as typed arrays.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// dataPtr returns the address of b's first byte for raw syscalls.
func dataPtr(b []byte) unsafe.Pointer {
	return unsafe.Pointer(unsafe.SliceData(b))
}

// PackedGraph is an ESC1 file opened for reading: the Graph view over the
// mapping, the label remapper, and the mapping's lifetime. The Graph (and
// its CSR, adjacency and edge slices) aliases the mapping — after Close
// those slices must not be touched. Callers that keep the graph for the
// process lifetime (every cmd binary) may simply never Close.
type PackedGraph struct {
	g       *Graph
	rm      *Remapper
	release func() error
	// DegreeOrdered reports whether the file was packed with OrderDegree:
	// dense ids are a degree-descending relabeling of the original input's.
	DegreeOrdered bool
}

// Graph returns the loaded graph. Valid until Close.
func (p *PackedGraph) Graph() *Graph { return p.g }

// Remapper returns the dense-id → external-label remapper stored in the
// file (the identity for dense inputs). Valid until Close.
func (p *PackedGraph) Remapper() *Remapper { return p.rm }

// Verify runs the deep structural cross-checks that loading skips for
// speed: slot↔edge-id agreement and the mate involution. Loading already
// checksummed the payload and bounds-checked every index; Verify
// additionally proves the adjacency structure is the one the canonical edge
// list describes. gpack -verify calls this.
func (p *PackedGraph) Verify() error {
	return verifyPacked(p.g.csr, p.g.edges)
}

// Close unmaps the file. The Graph and Remapper must not be used
// afterwards.
func (p *PackedGraph) Close() error {
	if p.release == nil {
		return nil
	}
	rel := p.release
	p.release = nil
	return rel()
}

// OpenPacked maps an ESC1 packed-CSR file and returns the graph view over
// it. The payload checksum and the structural CSR invariants are verified
// before the graph is handed out, so a truncated, bit-rotted or malformed
// file never becomes a Graph.
func OpenPacked(path string) (*PackedGraph, error) {
	return openPackedObs(path, nil)
}

// openPackedObs is OpenPacked with ingest instrumentation: a "map" span
// for the mmap + checksum + validation work and the ingest.bytes counter.
func openPackedObs(path string, sp *obs.Span) (*PackedGraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	span := sp.Start("map")
	defer span.End()
	data, release, err := mapFile(f, fi.Size(), false)
	if err != nil {
		return nil, err
	}
	p, err := loadPacked(data, fi.Size())
	if err != nil {
		release()
		return nil, err
	}
	p.release = release
	sp.Counter("ingest.bytes").Add(fi.Size())
	sp.Counter("ingest.edges").Add(int64(p.g.NumEdges()))
	return p, nil
}

// LoadPackedFile is OpenPacked for callers that keep the graph for the
// process lifetime: the mapping is intentionally never unmapped.
func LoadPackedFile(path string) (*Graph, *Remapper, error) {
	p, err := OpenPacked(path)
	if err != nil {
		return nil, nil, err
	}
	return p.Graph(), p.Remapper(), nil
}

// loadPacked builds the graph view over a complete ESC1 image.
func loadPacked(data []byte, size int64) (*PackedGraph, error) {
	h, l, err := parsePackHeader(data, size)
	if err != nil {
		return nil, err
	}
	if sum := crc32.Checksum(data[packHeaderSize:], castagnoli); sum != h.checksum {
		return nil, fmt.Errorf("graph: packed payload checksum %08x does not match header %08x (corrupt file)", sum, h.checksum)
	}
	n, m := h.n, h.m
	c := &CSR{
		Offsets: viewInt32s(data, l.offsetsOff, n+1),
		Targets: viewInt32s(data, l.targetsOff, 2*m),
		EdgeID:  viewInt32s(data, l.edgeIDOff, 2*m),
		Mate:    viewInt32s(data, l.mateOff, 2*m),
		EdgeU:   viewInt32s(data, l.edgeUOff, m),
		EdgeV:   viewInt32s(data, l.edgeVOff, m),
	}
	edges := viewEdges(data, l.edgeUVOff, m)
	if err := validatePacked(c, edges); err != nil {
		return nil, err
	}
	g := &Graph{
		adj:   make([][]NodeID, n),
		edges: edges,
		csr:   c,
	}
	// Adjacency lists are sub-slices of the mapped Targets array — the
	// per-node views validatePacked just proved sorted and symmetric.
	for u := 0; u < n; u++ {
		lo, hi := c.Offsets[u], c.Offsets[u+1]
		g.adj[u] = c.Targets[lo:hi:hi]
	}
	// Mark the lazily-built CSR as already present so g.CSR() returns the
	// mapped view instead of rebuilding it.
	g.csrOnce.Do(func() {})

	var rm *Remapper
	if h.flags&packFlagIdentityLabels != 0 {
		rm = IdentityRemapper(n)
	} else {
		rm = RemapperFromLabels(viewInt64s(data, l.labelsOff, n))
	}
	return &PackedGraph{
		g:             g,
		rm:            rm,
		DegreeOrdered: h.flags&packFlagDegreeOrdered != 0,
	}, nil
}

// viewInt32s returns count int32s at byte offset off — aliasing the data
// on aligned little-endian hosts, decoding a copy otherwise.
func viewInt32s(data []byte, off int64, count int) []int32 {
	if count == 0 {
		return nil
	}
	b := data[off : off+int64(count)*4]
	if hostLittleEndian && uintptr(dataPtr(b))%4 == 0 {
		return unsafe.Slice((*int32)(dataPtr(b)), count)
	}
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// viewInt64s is viewInt32s for int64 sections.
func viewInt64s(data []byte, off int64, count int) []int64 {
	if count == 0 {
		return nil
	}
	b := data[off : off+int64(count)*8]
	if hostLittleEndian && uintptr(dataPtr(b))%8 == 0 {
		return unsafe.Slice((*int64)(dataPtr(b)), count)
	}
	out := make([]int64, count)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// viewEdges returns the interleaved EdgeUV section as []Edge. Edge is two
// int32 fields (U then V) with no padding, so on a little-endian host the
// struct's byte image is exactly the file's.
func viewEdges(data []byte, off int64, count int) []Edge {
	if count == 0 {
		return nil
	}
	b := data[off : off+int64(count)*8]
	if hostLittleEndian && uintptr(dataPtr(b))%4 == 0 {
		return unsafe.Slice((*Edge)(dataPtr(b)), count)
	}
	out := make([]Edge, count)
	for i := range out {
		out[i].U = NodeID(binary.LittleEndian.Uint32(b[i*8:]))
		out[i].V = NodeID(binary.LittleEndian.Uint32(b[i*8+4:]))
	}
	return out
}
