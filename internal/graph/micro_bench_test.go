package graph

import (
	"bytes"
	"math/rand"
	"testing"
)

// microGraph builds a reusable random benchmark graph.
func microGraph(b *testing.B, n, m int) *Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	bld := NewBuilder(n)
	for bld.NumEdges() < m {
		bld.TryAddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	return bld.Graph()
}

func BenchmarkBuilderGraph(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	edges := make([]Edge, 0, 50000)
	seen := map[Edge]struct{}{}
	for len(edges) < 50000 {
		e := Edge{NodeID(rng.Intn(10000)), NodeID(rng.Intn(10000))}.Canonical()
		if e.U == e.V {
			continue
		}
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		edges = append(edges, e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder(10000)
		for _, e := range edges {
			bld.TryAddEdge(e.U, e.V)
		}
		bld.Graph()
	}
}

func BenchmarkHasEdge(b *testing.B) {
	g := microGraph(b, 10000, 50000)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(NodeID(rng.Intn(10000)), NodeID(rng.Intn(10000)))
	}
}

func BenchmarkEdgeListWrite(b *testing.B) {
	g := microGraph(b, 5000, 25000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryRoundTrip(b *testing.B) {
	g := microGraph(b, 5000, 25000)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCSRBuild(b *testing.B) {
	g := microGraph(b, 10000, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buildCSR(g)
	}
}

// BenchmarkAdjTraversal vs BenchmarkCSRTraversal: full sweep over every
// adjacency entry through the slice-of-slices layout and the flat CSR view —
// the per-visit cost difference that the Brandes rewrite rides on.
func BenchmarkAdjTraversal(b *testing.B) {
	g := microGraph(b, 10000, 50000)
	b.ResetTimer()
	var sum int64
	for i := 0; i < b.N; i++ {
		for u := 0; u < g.NumNodes(); u++ {
			for _, w := range g.Neighbors(NodeID(u)) {
				sum += int64(w)
			}
		}
	}
	sinkCSR = sum
}

func BenchmarkCSRTraversal(b *testing.B) {
	g := microGraph(b, 10000, 50000)
	c := g.CSR()
	b.ResetTimer()
	var sum int64
	for i := 0; i < b.N; i++ {
		for s := range c.Targets {
			sum += int64(c.Targets[s])
		}
	}
	sinkCSR = sum
}

// sinkCSR defeats dead-code elimination in the traversal benchmarks.
var sinkCSR int64

func BenchmarkValidate(b *testing.B) {
	g := microGraph(b, 10000, 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}
