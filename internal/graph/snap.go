package graph

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"os"
	"slices"
	"strconv"

	"edgeshed/internal/obs"
	"edgeshed/internal/par"
)

// This file is the SNAP edge-list ingestion hot path. The seed-era loader
// ran every line through bufio.Scanner + strings.Fields + strconv.ParseInt
// and a map-backed Builder — several allocations and two hash probes per
// edge. The rewrite splits the work into what parallelizes and what must
// stay ordered:
//
//   - Chunking: the input is cut into ~4 MiB chunks aligned to line
//     boundaries, gathered into groups of one chunk per worker.
//   - Parsing (parallel): workers turn a chunk's bytes into flat (u, v)
//     int64 pairs with a byte-slice field splitter and a manual base-10
//     parser — no line strings, no Fields slices, no per-line allocation.
//   - Collection (ordered): parsed chunks are folded in strictly in input
//     order, so first-seen node remapping — which defines the dense id
//     space — is deterministic and identical to the serial loader's. Edges
//     are packed into canonical uint64 keys as they are remapped.
//   - Indexing: keys are sorted and deduplicated (dropping duplicate edges
//     in either orientation, as SNAP loaders do), then the Graph is built
//     directly with counting passes — no Builder map, no per-node sort.
//
// The result is bit-identical to the seed loader for every input, pinned by
// the oracle test in snap_test.go.

// ingestChunkSize is the target byte size of one parse chunk: big enough
// that per-chunk overhead vanishes, small enough that one group (a chunk
// per worker) stays memory-friendly.
const ingestChunkSize = 4 << 20

// EdgeListOptions tunes ReadEdgeListOpts. The zero value matches
// ReadEdgeList: GOMAXPROCS parse workers and no instrumentation.
type EdgeListOptions struct {
	// Workers is the parse worker count; <= 0 selects GOMAXPROCS. The
	// loaded graph is bit-identical at any worker count.
	Workers int
	// Obs, when non-nil, receives the ingest phase spans ("parse", "index")
	// and the ingest.bytes / ingest.lines / ingest.edges counters.
	Obs *obs.Span
	// TotalBytes, when positive, is the expected input size; it seeds the
	// parse span's progress total so live scrapes can report percentages
	// and ETAs. File loaders pass the stat size; stream callers may not
	// know it.
	TotalBytes int64
}

// ReadEdgeList parses a whitespace-separated edge-list stream in the SNAP
// style: one "u v" pair per line, '#' starting a comment line, blank lines
// ignored. External ids may be arbitrary 64-bit integers; they are remapped
// onto dense ids in first-seen order. Duplicate edges (in either orientation)
// and self-loops are dropped silently, matching how SNAP loaders treat raw
// crawl data.
//
// It returns the graph and the remapper that translates dense ids back to the
// original labels.
func ReadEdgeList(r io.Reader) (*Graph, *Remapper, error) {
	return ReadEdgeListOpts(r, EdgeListOptions{})
}

// ReadEdgeListOpts is ReadEdgeList with explicit worker-count and
// observability options.
func ReadEdgeListOpts(r io.Reader, opt EdgeListOptions) (*Graph, *Remapper, error) {
	rm, keys, err := collectEdgeList(r, opt)
	if err != nil {
		return nil, nil, err
	}
	index := opt.Obs.Start("index")
	g := graphFromKeys(rm.Len(), keys)
	index.End()
	opt.Obs.Counter("ingest.edges").Add(int64(g.NumEdges()))
	return g, rm, nil
}

// ReadEdgeListFile is ReadEdgeList over a file path.
func ReadEdgeListFile(path string) (*Graph, *Remapper, error) {
	return readEdgeListFileObs(path, nil)
}

// readEdgeListFileObs opens path and parses it, with the file's size
// seeding the parse span's progress total.
func readEdgeListFileObs(path string, sp *obs.Span) (*Graph, *Remapper, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	opt := EdgeListOptions{Obs: sp}
	if fi, err := f.Stat(); err == nil {
		opt.TotalBytes = fi.Size()
	}
	return ReadEdgeListOpts(f, opt)
}

// packKey packs a canonical edge into one orderable uint64: the smaller
// endpoint in the high 32 bits. Sorting keys therefore sorts edges by
// (U, V), exactly the Graph's canonical edge order.
func packKey(u, v NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// unpackKey inverts packKey.
func unpackKey(k uint64) Edge {
	return Edge{U: NodeID(uint32(k >> 32)), V: NodeID(uint32(k))}
}

// chunkResult is one parsed chunk: flat (u, v) pairs in line order, the
// chunk's total line count, and the first parse error (with its chunk-local
// 1-based line number) if any.
type chunkResult struct {
	pairs   []int64
	lines   int
	err     error
	errLine int
}

// collectEdgeList scans r and gathers every surviving edge key in memory —
// the in-RAM loading path. The external-sort packer uses scanEdgeList
// directly with a spilling emit instead.
func collectEdgeList(r io.Reader, opt EdgeListOptions) (*Remapper, []uint64, error) {
	var keys []uint64
	rm, err := scanEdgeList(r, opt, func(key uint64) error {
		keys = append(keys, key)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return rm, keys, nil
}

// scanEdgeList runs the chunk/parse/collect pipeline over r: it reads one
// line-aligned chunk per worker, parses the group in parallel, then folds
// the results in input order — so the first-seen remap is a pure function
// of the input bytes, independent of the worker count. Each remapped
// canonical edge key (self-loops already dropped, duplicates not) is
// passed to emit in input order.
func scanEdgeList(r io.Reader, opt EdgeListOptions, emit func(key uint64) error) (*Remapper, error) {
	parse := opt.Obs.Start("parse")
	defer parse.End()
	if opt.TotalBytes > 0 {
		parse.SetTotal(opt.TotalBytes)
	}
	bytesC := opt.Obs.Counter("ingest.bytes")
	linesC := opt.Obs.Counter("ingest.lines")

	workers := par.Workers(opt.Workers, 1<<30)
	rm := NewRemapper()
	lineBase := 0 // lines consumed before the chunk being collected

	br := bufio.NewReaderSize(r, 256<<10)
	group := make([][]byte, 0, workers)
	results := make([]chunkResult, workers)
	for {
		group = group[:0]
		var readErr error
		for len(group) < workers {
			chunk, err := readChunk(br)
			if len(chunk) > 0 {
				group = append(group, chunk)
			}
			if err != nil {
				readErr = err
				break
			}
		}
		if readErr == io.EOF {
			readErr = nil
		}
		if readErr != nil {
			return nil, fmt.Errorf("graph: reading edge list: %w", readErr)
		}
		if len(group) == 0 {
			break
		}
		// One chunk per worker: the group never exceeds the worker count.
		par.Run(len(group), func(w int) { results[w] = parseChunk(group[w]) })
		for i := range group {
			res := &results[i]
			if res.err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineBase+res.errLine, res.err)
			}
			for j := 0; j+1 < len(res.pairs); j += 2 {
				u, v := rm.ID(res.pairs[j]), rm.ID(res.pairs[j+1])
				if u == v {
					continue
				}
				if err := emit(packKey(u, v)); err != nil {
					return nil, err
				}
			}
			if rm.Len() > math.MaxInt32 {
				return nil, fmt.Errorf("graph: edge list has more than %d distinct nodes, exceeding the int32 id space", math.MaxInt32)
			}
			lineBase += res.lines
			parse.Done(int64(len(group[i])))
			bytesC.Add(int64(len(group[i])))
			linesC.Add(int64(res.lines))
			res.pairs = nil
		}
	}
	return rm, nil
}

// readChunk reads the next line-aligned chunk of about ingestChunkSize
// bytes: a chunk ends on a newline unless the input does. It returns io.EOF
// (possibly alongside a final chunk) when the input is exhausted.
func readChunk(br *bufio.Reader) ([]byte, error) {
	buf := make([]byte, ingestChunkSize)
	n, err := io.ReadFull(br, buf)
	buf = buf[:n]
	switch err {
	case nil:
	case io.EOF, io.ErrUnexpectedEOF:
		return buf, io.EOF
	default:
		return buf, err
	}
	if n > 0 && buf[n-1] != '\n' {
		// Extend to the end of the current line so no line straddles two
		// chunks.
		tail, terr := br.ReadBytes('\n')
		buf = append(buf, tail...)
		if terr == io.EOF {
			return buf, io.EOF
		}
		if terr != nil {
			return buf, terr
		}
	}
	return buf, nil
}

// isSpace reports whether c is ASCII whitespace — the separators SNAP edge
// lists use (space, tab, and the CR of CRLF line endings).
func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f'
}

// parseChunk parses one line-aligned chunk into flat (u, v) pairs. It
// allocates exactly once (the pairs slice); fields are split and integers
// parsed directly on the chunk's bytes.
func parseChunk(buf []byte) chunkResult {
	res := chunkResult{pairs: make([]int64, 0, 2*(len(buf)/8+1))}
	for len(buf) > 0 {
		line := buf
		if i := bytes.IndexByte(buf, '\n'); i >= 0 {
			line = buf[:i]
			buf = buf[i+1:]
		} else {
			buf = nil
		}
		res.lines++
		// Skip leading whitespace; ignore blank and comment lines.
		j := 0
		for j < len(line) && isSpace(line[j]) {
			j++
		}
		if j == len(line) || line[j] == '#' {
			continue
		}
		u, v, err := parsePair(line[j:])
		if err != nil {
			res.err = err
			res.errLine = res.lines
			return res
		}
		res.pairs = append(res.pairs, u, v)
	}
	return res
}

// parsePair parses the first two whitespace-separated int64 fields of a
// line (leading whitespace already skipped, never empty). Extra fields are
// ignored, matching the seed loader. Error messages mirror the seed
// loader's exactly, including strconv's phrasing for malformed ids.
func parsePair(line []byte) (u, v int64, err error) {
	tok1, rest := nextField(line)
	tok2, _ := nextField(rest)
	if len(tok2) == 0 {
		return 0, 0, fmt.Errorf("expected two fields, got %q", trimTrailingSpace(line))
	}
	u, ok := parseInt64(tok1)
	if !ok {
		_, serr := strconv.ParseInt(string(tok1), 10, 64)
		return 0, 0, fmt.Errorf("bad node id %q: %v", tok1, serr)
	}
	v, ok = parseInt64(tok2)
	if !ok {
		_, serr := strconv.ParseInt(string(tok2), 10, 64)
		return 0, 0, fmt.Errorf("bad node id %q: %v", tok2, serr)
	}
	return u, v, nil
}

// nextField returns the first whitespace-delimited token of b and the
// remainder after it.
func nextField(b []byte) (tok, rest []byte) {
	i := 0
	for i < len(b) && isSpace(b[i]) {
		i++
	}
	start := i
	for i < len(b) && !isSpace(b[i]) {
		i++
	}
	return b[start:i], b[i:]
}

// trimTrailingSpace drops trailing ASCII whitespace, matching what
// strings.TrimSpace produced in the seed loader's error messages.
func trimTrailingSpace(b []byte) []byte {
	end := len(b)
	for end > 0 && isSpace(b[end-1]) {
		end--
	}
	return b[:end]
}

// parseInt64 parses a base-10 signed integer with overflow checking — the
// allocation-free fast path for the two fields of every edge line. It
// accepts exactly what strconv.ParseInt(s, 10, 64) accepts in base 10.
func parseInt64(tok []byte) (int64, bool) {
	if len(tok) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	switch tok[0] {
	case '-':
		neg = true
		i++
	case '+':
		i++
	}
	if i == len(tok) {
		return 0, false
	}
	const cutoff = uint64(1) << 63
	var n uint64
	for ; i < len(tok); i++ {
		c := tok[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		if n >= cutoff/10+1 { // next multiply-add must overflow
			return 0, false
		}
		n = n*10 + uint64(c-'0')
		if n > cutoff {
			return 0, false
		}
	}
	if neg {
		return -int64(n), true
	}
	if n == cutoff {
		return 0, false
	}
	return int64(n), true
}

// graphFromKeys builds a Graph over n nodes from packed canonical edge
// keys, sorting and deduplicating in place. Construction is counting-based:
// one backing array holds all adjacency lists, and because keys sort in
// canonical (U, V) order, each node's neighbor list comes out sorted with
// no per-node sort — the same two-pass trick as SubgraphByIDs.
func graphFromKeys(n int, keys []uint64) *Graph {
	slices.Sort(keys)
	keys = slices.Compact(keys)
	g := &Graph{
		adj:   make([][]NodeID, n),
		edges: make([]Edge, len(keys)),
	}
	deg := make([]int32, n)
	for i, k := range keys {
		e := unpackKey(k)
		g.edges[i] = e
		deg[e.U]++
		deg[e.V]++
	}
	backing := make([]NodeID, 0, 2*len(keys))
	for u, d := range deg {
		if d > 0 {
			g.adj[u] = backing[len(backing) : len(backing) : len(backing)+int(d)]
			backing = backing[:len(backing)+int(d)]
		}
	}
	for _, e := range g.edges {
		g.adj[e.U] = append(g.adj[e.U], e.V)
		g.adj[e.V] = append(g.adj[e.V], e.U)
	}
	return g
}
