package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := MustFromEdges(5, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 0, V: 4}})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("shape: got %v, want %v", g2, g)
	}
	for i, e := range g.Edges() {
		if g2.Edges()[i] != e {
			t.Errorf("edge %d: got %v, want %v", i, g2.Edges()[i], e)
		}
	}
	if err := g2.Validate(); err != nil {
		t.Errorf("round-tripped graph invalid: %v", err)
	}
}

func TestBinaryEmptyGraph(t *testing.T) {
	var g Graph
	var buf bytes.Buffer
	if err := WriteBinary(&buf, &g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 0 || g2.NumEdges() != 0 {
		t.Errorf("empty round trip = %v", g2)
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	g := MustFromEdges(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		}},
		{"truncated header", func(b []byte) []byte { return b[:8] }},
		{"truncated edges", func(b []byte) []byte { return b[:len(b)-4] }},
		{"trailing garbage", func(b []byte) []byte { return append(append([]byte(nil), b...), 0xFF) }},
		{"empty", func(b []byte) []byte { return nil }},
		{"out-of-range endpoint", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			// First edge's u field: set to a huge id.
			c[12] = 0xFF
			c[13] = 0xFF
			c[14] = 0xFF
			c[15] = 0x0F
			return c
		}},
	}
	for _, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c.mutate(good))); err == nil {
			t.Errorf("%s: corrupted input accepted", c.name)
		}
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	g := MustFromEdges(4, []Edge{{U: 0, V: 3}, {U: 1, V: 2}})
	path := filepath.Join(t.TempDir(), "g.esg")
	if err := WriteBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 2 || !g2.HasEdge(0, 3) {
		t.Errorf("file round trip wrong: %v", g2)
	}
}

func TestBinaryFileMissing(t *testing.T) {
	if _, err := ReadBinaryFile(filepath.Join(t.TempDir(), "absent.esg")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBinaryRejectsTextFormat(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("# edge list\n1 2\n")); err == nil {
		t.Error("text edge list accepted as binary")
	}
}
