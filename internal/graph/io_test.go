package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const sampleEdgeList = `# Directed graph (each unordered pair of nodes is saved once)
# Nodes: 5 Edges: 4
100 200
200 300
# a comment in the middle
300 100

400	500
500 400
400 400
`

func TestReadEdgeList(t *testing.T) {
	g, rm, err := ReadEdgeList(strings.NewReader(sampleEdgeList))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumNodes() != 5 {
		t.Errorf("|V| = %d, want 5", g.NumNodes())
	}
	// 500-400 is a reversed duplicate and 400-400 a self-loop: both dropped.
	if g.NumEdges() != 4 {
		t.Errorf("|E| = %d, want 4", g.NumEdges())
	}
	u, v := rm.ID(100), rm.ID(200)
	if !g.HasEdge(u, v) {
		t.Error("edge 100-200 missing after remap")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("loaded graph invalid: %v", err)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, _, err := ReadEdgeList(strings.NewReader("1\n")); err == nil {
		t.Error("single-field line accepted")
	}
	if _, _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Error("non-numeric id accepted")
	}
	if _, _, err := ReadEdgeList(strings.NewReader("1 b\n")); err == nil {
		t.Error("non-numeric second id accepted")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g, nil); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	g2, rm2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip shape: got %v, want %v", g2, g)
	}
	// Dense ids are reassigned in first-seen order, so compare via labels.
	for _, e := range g.Edges() {
		if !g2.HasEdge(rm2.ID(int64(e.U)), rm2.ID(int64(e.V))) {
			t.Errorf("edge %v lost in round trip", e)
		}
	}
}

func TestEdgeListRoundTripWithRemapper(t *testing.T) {
	src := "7 9\n9 11\n"
	g, rm, err := ReadEdgeList(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g, rm); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "7 9") || !strings.Contains(out, "9 11") {
		t.Errorf("original labels not preserved:\n%s", out)
	}
}

func TestEdgeListFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	g := MustFromEdges(3, []Edge{{0, 1}, {1, 2}})
	if err := WriteEdgeListFile(path, g, nil); err != nil {
		t.Fatalf("WriteEdgeListFile: %v", err)
	}
	g2, _, err := ReadEdgeListFile(path)
	if err != nil {
		t.Fatalf("ReadEdgeListFile: %v", err)
	}
	if g2.NumEdges() != 2 {
		t.Errorf("|E| after file round trip = %d, want 2", g2.NumEdges())
	}
}

func TestReadEdgeListFileMissing(t *testing.T) {
	if _, _, err := ReadEdgeListFile(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadSaveFileFormats(t *testing.T) {
	g := MustFromEdges(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	dir := t.TempDir()
	for _, name := range []string{"g.txt", "g.esg"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, g, nil); err != nil {
			t.Fatalf("SaveFile(%s): %v", name, err)
		}
		g2, rm, err := LoadFile(path)
		if err != nil {
			t.Fatalf("LoadFile(%s): %v", name, err)
		}
		if g2.NumEdges() != 2 {
			t.Errorf("%s: |E| = %d, want 2", name, g2.NumEdges())
		}
		if rm == nil || rm.Len() != 3 {
			t.Errorf("%s: remapper missing or wrong size", name)
		}
		// Both formats yield an identity-usable remapper for dense inputs.
		if rm.Label(0) != 0 {
			t.Errorf("%s: label(0) = %d, want 0", name, rm.Label(0))
		}
	}
}
