package graph

import (
	"fmt"
	"sort"
)

// Validate checks the structural invariants of g and returns the first
// violation found, or nil. It is O(|V| + |E| log) and intended for tests and
// for verifying graphs deserialized from untrusted inputs.
//
// Invariants:
//   - every edge is canonical (U <= V), in-range and loop-free;
//   - the edge list is strictly sorted (hence duplicate-free);
//   - adjacency lists are strictly sorted and mutually consistent with the
//     edge list (same multiset of incidences, symmetric).
func (g *Graph) Validate() error {
	n := NodeID(len(g.adj))
	for i, e := range g.edges {
		if e.U > e.V {
			return fmt.Errorf("graph: edge %v not canonical", e)
		}
		if e.U == e.V {
			return fmt.Errorf("graph: self-loop %v", e)
		}
		if e.U < 0 || e.V >= n {
			return fmt.Errorf("graph: edge %v out of range [0,%d)", e, n)
		}
		if i > 0 {
			prev := g.edges[i-1]
			if prev.U > e.U || (prev.U == e.U && prev.V >= e.V) {
				return fmt.Errorf("graph: edge list not strictly sorted at %v after %v", e, prev)
			}
		}
	}
	deg := make([]int, n)
	for _, e := range g.edges {
		deg[e.U]++
		deg[e.V]++
	}
	for u, a := range g.adj {
		if len(a) != deg[u] {
			return fmt.Errorf("graph: node %d adjacency length %d != incidence count %d", u, len(a), deg[u])
		}
		if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i] < a[j] }) {
			return fmt.Errorf("graph: node %d adjacency not sorted", u)
		}
		for i := 1; i < len(a); i++ {
			if a[i] == a[i-1] {
				return fmt.Errorf("graph: node %d has duplicate neighbor %d", u, a[i])
			}
		}
		for _, v := range a {
			if !g.HasEdge(NodeID(u), v) {
				return fmt.Errorf("graph: adjacency (%d,%d) missing from edge index", u, v)
			}
		}
	}
	return nil
}
