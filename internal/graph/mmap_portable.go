//go:build !unix

package graph

import (
	"io"
	"os"
)

// mapFile is the no-mmap fallback for platforms without a unix mmap: the
// file's bytes are read into an ordinary heap buffer. Loads behave
// identically (at the cost of an upfront copy); read-write "mappings"
// buffer in memory and are written back by flushMap.
func mapFile(f *os.File, size int64, write bool) (data []byte, release func() error, err error) {
	buf := make([]byte, size)
	if !write {
		if _, err := io.ReadFull(f, buf); err != nil {
			return nil, nil, err
		}
	}
	return buf, func() error { return nil }, nil
}

// flushMap writes the in-memory buffer back to the file — the fallback's
// substitute for shared-mapping stores.
func flushMap(f *os.File, data []byte) error {
	_, err := f.WriteAt(data, 0)
	return err
}
