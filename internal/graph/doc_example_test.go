package graph_test

import (
	"fmt"
	"strings"

	"edgeshed/internal/graph"
)

// ExampleBuilder shows basic graph construction.
func ExampleBuilder() {
	b := graph.NewBuilder(4)
	b.TryAddEdge(0, 1)
	b.TryAddEdge(1, 2)
	b.TryAddEdge(1, 2) // duplicate, quietly ignored
	g := b.Graph()
	fmt.Println(g)
	fmt.Println("deg(1) =", g.Degree(1))
	// Output:
	// graph{|V|=4 |E|=2}
	// deg(1) = 2
}

// ExampleReadEdgeList parses the SNAP text format with arbitrary external
// ids.
func ExampleReadEdgeList() {
	const data = `# a comment
1000 2000
2000 3000
`
	g, rm, err := graph.ReadEdgeList(strings.NewReader(data))
	if err != nil {
		panic(err)
	}
	fmt.Println(g)
	fmt.Println("label of dense id 0:", rm.Label(0))
	// Output:
	// graph{|V|=3 |E|=2}
	// label of dense id 0: 1000
}

// ExampleGraph_Subgraph extracts an edge-subset subgraph over the same node
// set.
func ExampleGraph_Subgraph() {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	sub, err := g.Subgraph([]graph.Edge{{U: 1, V: 2}})
	if err != nil {
		panic(err)
	}
	fmt.Println(sub)
	// Output:
	// graph{|V|=4 |E|=1}
}
