package graph

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExternalSortPackMatchesInRAM is the format's strongest guarantee: the
// bounded-memory external-sort pack must produce a byte-identical file to
// the in-RAM pack, with the memory budget squeezed hard enough to force
// many spill runs.
func TestExternalSortPackMatchesInRAM(t *testing.T) {
	text := testEdgeListText(400, 5000, 21)
	dir := t.TempDir()
	inPath := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(inPath, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}

	// In-RAM reference.
	g, rm := loadTestGraph(t, text)
	ramPath := filepath.Join(dir, "ram.esc")
	if err := WritePackedFile(ramPath, g, rm, PackWriteOptions{}); err != nil {
		t.Fatalf("WritePackedFile: %v", err)
	}

	// External-sort with a budget of 512 keys per run — far below the
	// distinct edge count — so the spill/merge machinery genuinely runs.
	extPath := filepath.Join(dir, "ext.esc")
	stats, err := PackEdgeListFile(inPath, extPath, PackOptions{
		MemBudget: 512 * 8,
		TmpDir:    dir,
	})
	if err != nil {
		t.Fatalf("PackEdgeListFile: %v", err)
	}
	if stats.SpillChunks < 2 {
		t.Fatalf("budget did not force multiple spill runs: %d chunks for %d edges", stats.SpillChunks, stats.Edges)
	}
	if stats.Nodes != g.NumNodes() || stats.Edges != g.NumEdges() {
		t.Fatalf("stats |V|=%d |E|=%d, want |V|=%d |E|=%d", stats.Nodes, stats.Edges, g.NumNodes(), g.NumEdges())
	}
	// The budget must be far below what the in-RAM edge set costs.
	if keyBytes := int64(g.NumEdges()) * 8; stats.SpillChunks > 0 && 512*8 >= keyBytes {
		t.Fatalf("test misconfigured: budget %d not below key-set size %d", 512*8, keyBytes)
	}

	ramBytes, err := os.ReadFile(ramPath)
	if err != nil {
		t.Fatal(err)
	}
	extBytes, err := os.ReadFile(extPath)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BytesOut != int64(len(extBytes)) {
		t.Errorf("stats.BytesOut = %d, file is %d", stats.BytesOut, len(extBytes))
	}
	if len(ramBytes) != len(extBytes) {
		t.Fatalf("file sizes differ: ram %d, ext %d", len(ramBytes), len(extBytes))
	}
	for i := range ramBytes {
		if ramBytes[i] != extBytes[i] {
			t.Fatalf("files differ at byte %d: ram %#x, ext %#x", i, ramBytes[i], extBytes[i])
		}
	}

	// And the file must open and validate like any other pack.
	p, err := OpenPacked(extPath)
	if err != nil {
		t.Fatalf("OpenPacked: %v", err)
	}
	defer p.Close()
	requireSameGraph(t, p.Graph(), g, p.Remapper(), rm)
}

func TestExternalSortPackNoSpill(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(inPath, []byte("7 9\n9 11\n7 9\n11 11\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "g.esc")
	stats, err := PackEdgeListFile(inPath, outPath, PackOptions{})
	if err != nil {
		t.Fatalf("PackEdgeListFile: %v", err)
	}
	if stats.SpillChunks != 0 || stats.SpilledKeys != 0 {
		t.Errorf("tiny input spilled: %d chunks, %d keys", stats.SpillChunks, stats.SpilledKeys)
	}
	if stats.Nodes != 3 || stats.Edges != 2 {
		t.Errorf("stats |V|=%d |E|=%d, want 3 and 2", stats.Nodes, stats.Edges)
	}
	g, rm, err := LoadFile(outPath)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if g.NumEdges() != 2 || rm.Label(0) != 7 || rm.Label(2) != 11 {
		t.Errorf("loaded graph wrong: |E|=%d labels=%d,%d", g.NumEdges(), rm.Label(0), rm.Label(2))
	}
}

func TestExternalSortPackEmptyInput(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(inPath, []byte("# nothing\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "empty.esc")
	stats, err := PackEdgeListFile(inPath, outPath, PackOptions{})
	if err != nil {
		t.Fatalf("PackEdgeListFile: %v", err)
	}
	if stats.Nodes != 0 || stats.Edges != 0 {
		t.Errorf("empty input produced |V|=%d |E|=%d", stats.Nodes, stats.Edges)
	}
	g, _, err := LoadFile(outPath)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Errorf("loaded empty graph has |V|=%d |E|=%d", g.NumNodes(), g.NumEdges())
	}
}

func TestExternalSortPackRejectsDegreeOrder(t *testing.T) {
	_, err := PackEdgeListFile("in.txt", "out.esc", PackOptions{Order: OrderDegree})
	if err == nil || !strings.Contains(err.Error(), "OrderKeep") {
		t.Fatalf("OrderDegree accepted by the out-of-core packer: %v", err)
	}
}

func TestExternalSortPackBadInput(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(inPath, []byte("1 2\nnot numbers\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := PackEdgeListFile(inPath, filepath.Join(dir, "bad.esc"), PackOptions{})
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("parse error not propagated with its line: %v", err)
	}
	if _, err := PackEdgeListFile(filepath.Join(dir, "missing.txt"), filepath.Join(dir, "x.esc"), PackOptions{}); err == nil {
		t.Fatal("missing input accepted")
	}
}
