// Package gen generates synthetic graphs. It provides the classic random
// models (Erdős–Rényi, Barabási–Albert, Holme–Kim, Watts–Strogatz, planted
// partition, configuration model) plus deterministic toy shapes for tests.
//
// These generators stand in for the SNAP datasets in the paper's evaluation:
// the module is built offline, so real downloads are unavailable, and the
// evaluation only depends on structural properties (heavy-tailed degrees,
// clustering, community structure) that these models reproduce. All
// generators are deterministic given their seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"edgeshed/internal/graph"
)

// ErdosRenyi returns a uniform random graph with exactly n nodes and m edges
// (the G(n, m) model). It panics if m exceeds the number of distinct pairs.
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		panic(fmt.Sprintf("gen: %d edges requested but K_%d has only %d", m, n, maxEdges))
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for b.NumEdges() < m {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		b.TryAddEdge(u, v)
	}
	return b.Graph()
}

// BarabasiAlbert returns a preferential-attachment graph: it starts from a
// small seed clique and attaches each new node to mPer existing nodes with
// probability proportional to their degree. The result has roughly
// n*mPer edges and a power-law degree distribution, the signature of the
// collaboration and social networks in the paper's Table II.
func BarabasiAlbert(n, mPer int, seed int64) *graph.Graph {
	return baLike(n, mPer, 0, seed)
}

// HolmeKim returns a Barabási–Albert graph with triad closure: after each
// preferential attachment step, with probability pt the next link closes a
// triangle through the previous target. This yields the high clustering
// coefficients typical of co-authorship networks (ca-GrQc, ca-HepPh).
func HolmeKim(n, mPer int, pt float64, seed int64) *graph.Graph {
	return baLike(n, mPer, pt, seed)
}

// baLike implements BA (pt = 0) and Holme–Kim (pt > 0) attachment. The
// repeated-nodes list doubles as the preferential-attachment sampler: a node
// appears once per incident edge endpoint, so uniform sampling from it is
// degree-proportional.
func baLike(n, mPer int, pt float64, seed int64) *graph.Graph {
	if mPer < 1 {
		panic("gen: attachment count must be >= 1")
	}
	m0 := mPer + 1
	if n < m0 {
		panic(fmt.Sprintf("gen: need at least %d nodes for mPer=%d", m0, mPer))
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// adj mirrors the builder so triad closure can sample neighbors in O(1)
	// without finalizing the graph mid-build.
	adj := make([][]graph.NodeID, n)
	addEdge := func(u, v graph.NodeID) bool {
		if !b.TryAddEdge(u, v) {
			return false
		}
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
		return true
	}
	// Seed clique over the first m0 nodes. The repeated-endpoint list is the
	// degree-proportional sampler.
	repeated := make([]graph.NodeID, 0, 2*n*mPer)
	for u := 0; u < m0; u++ {
		for v := u + 1; v < m0; v++ {
			addEdge(graph.NodeID(u), graph.NodeID(v))
			repeated = append(repeated, graph.NodeID(u), graph.NodeID(v))
		}
	}
	for u := m0; u < n; u++ {
		added := 0
		var prev graph.NodeID = -1
		for attempts := 0; added < mPer && attempts < 50*mPer; attempts++ {
			var target graph.NodeID
			if prev >= 0 && pt > 0 && rng.Float64() < pt && len(adj[prev]) > 0 {
				// Triad closure: link to a random neighbor of the previous target.
				target = adj[prev][rng.Intn(len(adj[prev]))]
			} else {
				target = repeated[rng.Intn(len(repeated))]
			}
			if target == graph.NodeID(u) {
				continue
			}
			if addEdge(graph.NodeID(u), target) {
				repeated = append(repeated, graph.NodeID(u), target)
				prev = target
				added++
			}
		}
		// Degenerate corner (tiny graphs): fall back to uniform targets.
		for added < mPer {
			if addEdge(graph.NodeID(u), graph.NodeID(rng.Intn(u))) {
				added++
			}
		}
	}
	return b.Graph()
}

// WattsStrogatz returns a small-world ring lattice over n nodes where each
// node links to its k/2 nearest neighbors on each side and each edge is
// rewired to a random target with probability beta. k must be even and < n.
func WattsStrogatz(n, k int, beta float64, seed int64) *graph.Graph {
	if k%2 != 0 || k >= n || k < 2 {
		panic(fmt.Sprintf("gen: WattsStrogatz needs even k in [2, n); got n=%d k=%d", n, k))
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for j := 1; j <= k/2; j++ {
			v := (u + j) % n
			if rng.Float64() < beta {
				// Rewire to a uniform random target, keeping u fixed.
				for attempts := 0; attempts < 32; attempts++ {
					w := graph.NodeID(rng.Intn(n))
					if b.TryAddEdge(graph.NodeID(u), w) {
						v = -1
						break
					}
				}
				if v == -1 {
					continue
				}
			}
			b.TryAddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return b.Graph()
}

// PlantedPartition returns a stochastic block model with c communities of
// size per: within-community pairs are linked with probability pIn, and
// cross-community pairs with probability pOut. Community of node u is
// u / per. It models the community structure the link-prediction task needs.
func PlantedPartition(c, per int, pIn, pOut float64, seed int64) *graph.Graph {
	n := c * per
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if u/per == v/per {
				p = pIn
			}
			if rng.Float64() < p {
				b.TryAddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	return b.Graph()
}

// PowerLawDegrees samples n integer degrees from a discrete power law with
// exponent gamma on [minDeg, maxDeg], returning a sequence whose sum is even
// (the last entry is bumped if needed) so it is realizable as a graph.
func PowerLawDegrees(n int, gamma float64, minDeg, maxDeg int, seed int64) []int {
	if minDeg < 1 || maxDeg < minDeg {
		panic(fmt.Sprintf("gen: bad degree range [%d, %d]", minDeg, maxDeg))
	}
	rng := rand.New(rand.NewSource(seed))
	// Inverse-CDF sampling over the continuous power law, then floor.
	a := math.Pow(float64(minDeg), 1-gamma)
	bnd := math.Pow(float64(maxDeg)+1, 1-gamma)
	deg := make([]int, n)
	sum := 0
	for i := range deg {
		u := rng.Float64()
		x := math.Pow(a+(bnd-a)*u, 1/(1-gamma))
		d := int(x)
		if d < minDeg {
			d = minDeg
		}
		if d > maxDeg {
			d = maxDeg
		}
		deg[i] = d
		sum += d
	}
	if sum%2 == 1 {
		deg[n-1]++
	}
	return deg
}

// ConfigurationModel builds a simple graph approximately realizing the given
// degree sequence via stub matching with rejection (the "erased"
// configuration model): self-loops and parallel edges are dropped, so
// realized degrees can fall slightly short of the request for high-degree
// nodes. The degree-sequence sum must be even.
func ConfigurationModel(degrees []int, seed int64) *graph.Graph {
	sum := 0
	for _, d := range degrees {
		if d < 0 {
			panic("gen: negative degree")
		}
		sum += d
	}
	if sum%2 == 1 {
		panic("gen: degree sequence sum must be even")
	}
	rng := rand.New(rand.NewSource(seed))
	stubs := make([]graph.NodeID, 0, sum)
	for u, d := range degrees {
		for i := 0; i < d; i++ {
			stubs = append(stubs, graph.NodeID(u))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	b := graph.NewBuilder(len(degrees))
	for i := 0; i+1 < len(stubs); i += 2 {
		b.TryAddEdge(stubs[i], stubs[i+1])
	}
	return b.Graph()
}

// RMAT returns a recursive-matrix (R-MAT/Kronecker-style) graph over 2^scale
// nodes with roughly m edges: each edge lands in one of four quadrants of
// the adjacency matrix with probabilities (a, b, c, d), recursively. With
// the canonical skew (a ≈ 0.57) this produces the heavy-tailed,
// community-rich structure of large social networks like com-LiveJournal.
// Self-loops and duplicates are rejected and retried, so the realized edge
// count can fall slightly short of m on dense parameterizations.
func RMAT(scale, m int, a, b, c float64, seed int64) *graph.Graph {
	if scale < 1 || scale > 30 {
		panic(fmt.Sprintf("gen: RMAT scale %d outside [1, 30]", scale))
	}
	d := 1 - a - b - c
	if a < 0 || b < 0 || c < 0 || d < 0 {
		panic(fmt.Sprintf("gen: RMAT probabilities (%v, %v, %v, %v) invalid", a, b, c, d))
	}
	n := 1 << scale
	rng := rand.New(rand.NewSource(seed))
	bld := graph.NewBuilder(n)
	maxAttempts := 20 * m
	for attempts := 0; bld.NumEdges() < m && attempts < maxAttempts; attempts++ {
		var u, v int
		for bit := scale - 1; bit >= 0; bit-- {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: neither bit set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		bld.TryAddEdge(graph.NodeID(u), graph.NodeID(v))
	}
	return bld.Graph()
}

// Star returns the star graph K_{1,n-1} with node 0 as the hub.
func Star(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.TryAddEdge(0, graph.NodeID(v))
	}
	return b.Graph()
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.TryAddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return b.Graph()
}

// Cycle returns the cycle graph C_n.
func Cycle(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		b.TryAddEdge(graph.NodeID(u), graph.NodeID((u+1)%n))
	}
	return b.Graph()
}

// Path returns the path graph P_n (n nodes, n-1 edges).
func Path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u+1 < n; u++ {
		b.TryAddEdge(graph.NodeID(u), graph.NodeID(u+1))
	}
	return b.Graph()
}

// Grid returns the rows x cols king-free grid graph (4-neighborhood).
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.TryAddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.TryAddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Graph()
}
