package gen

import (
	"testing"
	"testing/quick"

	"edgeshed/internal/graph"
)

func TestErdosRenyiShape(t *testing.T) {
	g := ErdosRenyi(100, 300, 1)
	if g.NumNodes() != 100 {
		t.Errorf("|V| = %d, want 100", g.NumNodes())
	}
	if g.NumEdges() != 300 {
		t.Errorf("|E| = %d, want 300", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("invalid: %v", err)
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(50, 100, 7)
	b := ErdosRenyi(50, 100, 7)
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		t.Fatalf("edge counts differ: %d vs %d", len(ae), len(be))
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ae[i], be[i])
		}
	}
	c := ErdosRenyi(50, 100, 8)
	same := true
	ce := c.Edges()
	for i := range ae {
		if ae[i] != ce[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestErdosRenyiTooManyEdgesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for m > C(n,2)")
		}
	}()
	ErdosRenyi(4, 7, 1)
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(500, 3, 42)
	if g.NumNodes() != 500 {
		t.Errorf("|V| = %d, want 500", g.NumNodes())
	}
	// m0 clique (C(4,2)=6 edges) + 3 per subsequent node.
	want := 6 + 3*(500-4)
	if g.NumEdges() != want {
		t.Errorf("|E| = %d, want %d", g.NumEdges(), want)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("invalid: %v", err)
	}
	// Preferential attachment must create hubs: max degree far above average.
	if g.MaxDegree() < 3*int(g.AvgDegree()) {
		t.Errorf("no hubs: max degree %d vs avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
	// Minimum degree is the attachment count.
	for u := 0; u < g.NumNodes(); u++ {
		if g.Degree(graph.NodeID(u)) < 3 {
			t.Fatalf("node %d degree %d < mPer", u, g.Degree(graph.NodeID(u)))
		}
	}
}

func TestHolmeKimClustersMoreThanBA(t *testing.T) {
	// Triad closure should add triangles. Compare triangle counts directly.
	ba := BarabasiAlbert(400, 3, 9)
	hk := HolmeKim(400, 3, 0.8, 9)
	if tri(hk) <= tri(ba) {
		t.Errorf("HolmeKim triangles %d <= BA triangles %d", tri(hk), tri(ba))
	}
}

// tri counts triangles by iterating edges and intersecting sorted neighbor
// lists (test helper; the real implementation lives in internal/analysis).
func tri(g *graph.Graph) int {
	count := 0
	for _, e := range g.Edges() {
		a, b := g.Neighbors(e.U), g.Neighbors(e.V)
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] < b[j]:
				i++
			case a[i] > b[j]:
				j++
			default:
				count++
				i++
				j++
			}
		}
	}
	return count / 3
}

func TestWattsStrogatzNoRewire(t *testing.T) {
	g := WattsStrogatz(20, 4, 0, 1)
	if g.NumEdges() != 40 {
		t.Errorf("|E| = %d, want 40", g.NumEdges())
	}
	for u := 0; u < 20; u++ {
		if g.Degree(graph.NodeID(u)) != 4 {
			t.Errorf("degree(%d) = %d, want 4 on pure ring", u, g.Degree(graph.NodeID(u)))
		}
	}
}

func TestWattsStrogatzRewired(t *testing.T) {
	g := WattsStrogatz(200, 6, 0.3, 5)
	if err := g.Validate(); err != nil {
		t.Errorf("invalid: %v", err)
	}
	// Edge count is preserved by rewiring (modulo rare retry exhaustion).
	if g.NumEdges() < 580 || g.NumEdges() > 600 {
		t.Errorf("|E| = %d, want ~600", g.NumEdges())
	}
}

func TestWattsStrogatzBadParamsPanic(t *testing.T) {
	for _, c := range []struct{ n, k int }{{10, 3}, {10, 10}, {10, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for n=%d k=%d", c.n, c.k)
				}
			}()
			WattsStrogatz(c.n, c.k, 0.1, 1)
		}()
	}
}

func TestPlantedPartition(t *testing.T) {
	g := PlantedPartition(4, 25, 0.3, 0.01, 3)
	if g.NumNodes() != 100 {
		t.Fatalf("|V| = %d, want 100", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("invalid: %v", err)
	}
	within, across := 0, 0
	for _, e := range g.Edges() {
		if int(e.U)/25 == int(e.V)/25 {
			within++
		} else {
			across++
		}
	}
	// Expected within ≈ 4*C(25,2)*0.3 = 360, across ≈ (C(100,2)-4*300)*0.01 ≈ 38.
	if within <= across*3 {
		t.Errorf("community structure too weak: within=%d across=%d", within, across)
	}
}

func TestPowerLawDegrees(t *testing.T) {
	deg := PowerLawDegrees(1000, 2.5, 2, 100, 11)
	if len(deg) != 1000 {
		t.Fatalf("len = %d, want 1000", len(deg))
	}
	sum := 0
	for _, d := range deg {
		if d < 2 || d > 101 { // +1 allows the even-sum bump
			t.Fatalf("degree %d outside [2, 101]", d)
		}
		sum += d
	}
	if sum%2 != 0 {
		t.Error("degree sum is odd")
	}
	// Power law with gamma 2.5: most mass near the minimum.
	low := 0
	for _, d := range deg {
		if d <= 4 {
			low++
		}
	}
	if low < 500 {
		t.Errorf("only %d/1000 degrees <= 4; not heavy-tailed-with-small-mode", low)
	}
}

func TestConfigurationModel(t *testing.T) {
	deg := PowerLawDegrees(500, 2.3, 2, 50, 21)
	g := ConfigurationModel(deg, 22)
	if g.NumNodes() != 500 {
		t.Fatalf("|V| = %d, want 500", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("invalid: %v", err)
	}
	// Erased model: realized degree never exceeds requested.
	for u := 0; u < 500; u++ {
		if g.Degree(graph.NodeID(u)) > deg[u] {
			t.Errorf("node %d realized %d > requested %d", u, g.Degree(graph.NodeID(u)), deg[u])
		}
	}
	// And it should not fall far short in total.
	want := 0
	for _, d := range deg {
		want += d
	}
	if 2*g.NumEdges() < want*8/10 {
		t.Errorf("too many erased stubs: 2|E| = %d, requested %d", 2*g.NumEdges(), want)
	}
}

func TestConfigurationModelOddSumPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd degree sum accepted")
		}
	}()
	ConfigurationModel([]int{1, 1, 1}, 1)
}

func TestRMATShape(t *testing.T) {
	g := RMAT(10, 4000, 0.57, 0.19, 0.19, 5)
	if g.NumNodes() != 1024 {
		t.Fatalf("|V| = %d, want 1024", g.NumNodes())
	}
	if g.NumEdges() < 3500 {
		t.Errorf("|E| = %d, want close to 4000", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("invalid: %v", err)
	}
	// The canonical skew concentrates edges on low-id nodes: node 0's
	// quadrant dominates, so hubs exist.
	if g.MaxDegree() < 5*int(g.AvgDegree()) {
		t.Errorf("no hubs: max %d vs avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestRMATUniform(t *testing.T) {
	// a=b=c=d=0.25 degenerates to (near) uniform random pairs.
	g := RMAT(8, 500, 0.25, 0.25, 0.25, 6)
	if err := g.Validate(); err != nil {
		t.Errorf("invalid: %v", err)
	}
	// Degrees should be comparatively flat: max degree within ~6x average.
	if g.MaxDegree() > 6*int(g.AvgDegree()+1) {
		t.Errorf("uniform RMAT too skewed: max %d vs avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
}

func TestRMATPanics(t *testing.T) {
	for _, c := range []struct {
		scale   int
		a, b, c float64
	}{
		{0, 0.25, 0.25, 0.25},
		{31, 0.25, 0.25, 0.25},
		{8, 0.5, 0.4, 0.3}, // d < 0
		{8, -0.1, 0.5, 0.3},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for scale=%d a=%v b=%v c=%v", c.scale, c.a, c.b, c.c)
				}
			}()
			RMAT(c.scale, 100, c.a, c.b, c.c, 1)
		}()
	}
}

func TestToyShapes(t *testing.T) {
	if g := Star(6); g.NumEdges() != 5 || g.Degree(0) != 5 {
		t.Errorf("Star(6) wrong: %v, hub degree %d", g, g.Degree(0))
	}
	if g := Complete(5); g.NumEdges() != 10 {
		t.Errorf("Complete(5) |E| = %d, want 10", g.NumEdges())
	}
	if g := Cycle(7); g.NumEdges() != 7 || g.Degree(3) != 2 {
		t.Errorf("Cycle(7) wrong: %v", g)
	}
	if g := Path(4); g.NumEdges() != 3 {
		t.Errorf("Path(4) |E| = %d, want 3", g.NumEdges())
	}
	g := Grid(3, 4)
	if g.NumNodes() != 12 || g.NumEdges() != 17 {
		t.Errorf("Grid(3,4) = %v, want |V|=12 |E|=17", g)
	}
}

// TestGeneratorsAlwaysValid property-checks that each random generator
// produces structurally valid graphs across seeds.
func TestGeneratorsAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		if ErdosRenyi(40, 80, seed).Validate() != nil {
			return false
		}
		if BarabasiAlbert(60, 2, seed).Validate() != nil {
			return false
		}
		if HolmeKim(60, 2, 0.5, seed).Validate() != nil {
			return false
		}
		if WattsStrogatz(40, 4, 0.2, seed).Validate() != nil {
			return false
		}
		if PlantedPartition(3, 10, 0.4, 0.05, seed).Validate() != nil {
			return false
		}
		return ConfigurationModel(PowerLawDegrees(60, 2.5, 1, 20, seed), seed).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
