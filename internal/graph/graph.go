// Package graph provides the undirected-graph substrate used by every other
// package in this repository: a compact adjacency-list representation with a
// canonical edge list, a flat CSR view for traversal kernels, subgraph
// extraction, I/O and validation.
//
// Nodes are dense indices in [0, NumNodes). Loaders and builders remap
// arbitrary external identifiers onto this dense range. Edges are undirected
// and stored once in canonical (min, max) order; self-loops and parallel
// edges are rejected.
//
// # CSR view and edge ids
//
// Graph.Edges() defines a canonical edge numbering: edge i is Edges()[i].
// Graph.CSR() exposes the adjacency as flat compressed-sparse-row arrays
// whose every slot carries that edge id (CSR.EdgeID), so algorithms that
// accumulate per-edge quantities — Brandes edge betweenness above all — can
// write edgeAcc[EdgeID[slot]] with pure array indexing instead of hashing a
// map[Edge] key per visit. The view is built lazily once per graph, cached,
// and safe for concurrent readers like the Graph itself.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// NodeID identifies a node. Graphs built here always use dense ids in
// [0, NumNodes); 32 bits is enough for the billion-edge graphs the paper
// targets while halving adjacency memory versus int64.
type NodeID = int32

// Edge is an undirected edge. A canonical Edge has U <= V; use Canonical to
// normalize. Edge is comparable and therefore usable as a map key.
type Edge struct {
	U, V NodeID
}

// Canonical returns e with its endpoints ordered so that U <= V. Undirected
// edge equality is defined on canonical edges.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{e.V, e.U}
	}
	return e
}

// Other returns the endpoint of e that is not u. It panics if u is not an
// endpoint of e, which always indicates a programming error in the caller.
func (e Edge) Other(u NodeID) NodeID {
	switch u {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %v", u, e))
}

// String implements fmt.Stringer.
func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }

// Graph is an immutable undirected graph over dense node ids.
//
// Build one with a Builder, a generator from the gen subpackage, or a reader
// from io.go. The zero value is an empty graph with no nodes. Graph values
// are safe for concurrent readers; they are never mutated after construction.
type Graph struct {
	adj   [][]NodeID // adj[u] sorted ascending
	edges []Edge     // canonical, sorted by (U, V)

	csrOnce sync.Once // guards the lazily built CSR view
	csr     *CSR
}

// NewFromEdges constructs a graph with n nodes and the given edges. Edges may
// appear in any orientation and order; duplicates (including reversed
// duplicates) and self-loops cause an error, as does any endpoint outside
// [0, n).
func NewFromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return b.Graph(), nil
}

// MustFromEdges is NewFromEdges that panics on error; intended for tests and
// literals of known-good shape.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := NewFromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Degree returns the degree of node u.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// Neighbors returns the sorted neighbor list of u. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(u NodeID) []NodeID { return g.adj[u] }

// Edges returns the canonical edge list sorted by (U, V). The returned slice
// is owned by the graph and must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// HasEdge reports whether the undirected edge (u, v) exists. It runs in
// O(log deg) via binary search on the smaller adjacency list.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if u < 0 || v < 0 || int(u) >= len(g.adj) || int(v) >= len(g.adj) || u == v {
		return false
	}
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}

// AvgDegree returns the average degree 2|E|/|V|, or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(len(g.edges)) / float64(len(g.adj))
}

// MaxDegree returns the largest degree in the graph, or 0 if there are no
// nodes.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, a := range g.adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// Degrees returns a fresh slice d with d[u] = Degree(u).
func (g *Graph) Degrees() []int {
	d := make([]int, len(g.adj))
	for u, a := range g.adj {
		d[u] = len(a)
	}
	return d
}

// Clone returns a deep copy of g. Because graphs are immutable this is only
// needed when a caller wants to hand ownership across an API that might
// outlive g's backing arrays.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		adj:   make([][]NodeID, len(g.adj)),
		edges: make([]Edge, len(g.edges)),
	}
	copy(c.edges, g.edges)
	for u, a := range g.adj {
		c.adj[u] = append([]NodeID(nil), a...)
	}
	return c
}

// Subgraph returns a new graph over the same node set containing exactly the
// given edges. Each edge must exist in g; orientation is ignored. Duplicate
// edges in the input cause an error.
func (g *Graph) Subgraph(edges []Edge) (*Graph, error) {
	b := NewBuilder(g.NumNodes())
	for _, e := range edges {
		if !g.HasEdge(e.U, e.V) {
			return nil, fmt.Errorf("graph: subgraph edge %v not present in parent", e)
		}
		if err := b.AddEdge(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return b.Graph(), nil
}

// SubgraphByIDs returns a new graph over the same node set containing
// exactly the edges with the given canonical ids — positions in Edges() —
// which must be sorted ascending and duplicate-free. It is the id-native
// fast path behind the shedding reducers: because the canonical edge list is
// sorted by (U, V), selecting ascending ids yields the subgraph's edge list
// and adjacency already in order, so the whole construction is two linear
// passes with no hashing, no edge re-sort and a single backing allocation
// for all adjacency lists.
func (g *Graph) SubgraphByIDs(ids []int32) (*Graph, error) {
	sub := &Graph{
		adj:   make([][]NodeID, len(g.adj)),
		edges: make([]Edge, len(ids)),
	}
	deg := make([]int, len(g.adj))
	prev := int32(-1)
	for i, id := range ids {
		if id <= prev {
			return nil, fmt.Errorf("graph: subgraph edge ids not ascending at position %d (%d after %d)", i, id, prev)
		}
		if int(id) >= len(g.edges) {
			return nil, fmt.Errorf("graph: subgraph edge id %d outside [0,%d)", id, len(g.edges))
		}
		prev = id
		e := g.edges[id]
		sub.edges[i] = e
		deg[e.U]++
		deg[e.V]++
	}
	backing := make([]NodeID, 0, 2*len(ids))
	for u, d := range deg {
		if d > 0 {
			sub.adj[u] = backing[len(backing) : len(backing) : len(backing)+d]
			backing = backing[:len(backing)+d]
		}
	}
	for _, e := range sub.edges {
		sub.adj[e.U] = append(sub.adj[e.U], e.V)
		sub.adj[e.V] = append(sub.adj[e.V], e.U)
	}
	return sub, nil
}

// InducedSubgraph returns the subgraph induced by the given node set: the
// same node-id space with exactly the edges whose endpoints are both in the
// set. Duplicate nodes in the input are tolerated.
func (g *Graph) InducedSubgraph(nodes []NodeID) (*Graph, error) {
	in := make(map[NodeID]struct{}, len(nodes))
	for _, u := range nodes {
		if u < 0 || int(u) >= g.NumNodes() {
			return nil, fmt.Errorf("graph: induced node %d outside [0,%d)", u, g.NumNodes())
		}
		in[u] = struct{}{}
	}
	b := NewBuilder(g.NumNodes())
	for _, e := range g.edges {
		if _, ok := in[e.U]; !ok {
			continue
		}
		if _, ok := in[e.V]; !ok {
			continue
		}
		b.TryAddEdge(e.U, e.V)
	}
	return b.Graph(), nil
}

// Density returns |E| / C(|V|, 2), the fraction of possible edges present;
// 0 for graphs with fewer than two nodes.
func (g *Graph) Density() float64 {
	n := g.NumNodes()
	if n < 2 {
		return 0
	}
	return float64(g.NumEdges()) / (float64(n) * float64(n-1) / 2)
}

// EdgeSet returns the edges as a set keyed by canonical edge. The map is
// freshly allocated on every call.
func (g *Graph) EdgeSet() map[Edge]struct{} {
	s := make(map[Edge]struct{}, len(g.edges))
	for _, e := range g.edges {
		s[e] = struct{}{}
	}
	return s
}

// String implements fmt.Stringer with a short structural summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{|V|=%d |E|=%d}", g.NumNodes(), g.NumEdges())
}

// Bytes estimates the resident memory of the graph's data structures:
// adjacency lists (two 4-byte entries per edge), the canonical edge list
// (8 bytes per edge) and slice headers. It quantifies the storage saving of
// a reduction — the paper's first motivation — without depending on the
// runtime's allocator.
func (g *Graph) Bytes() int64 {
	const (
		sliceHeader = 24 // ptr + len + cap
		nodeIDSize  = 4
		edgeSize    = 8
	)
	total := int64(2*sliceHeader) + int64(len(g.adj))*sliceHeader
	total += int64(2*g.NumEdges()) * nodeIDSize // adjacency entries
	total += int64(g.NumEdges()) * edgeSize     // edge list
	return total
}
