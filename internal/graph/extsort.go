package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"slices"

	"edgeshed/internal/obs"
)

// External-sort packing: edge-list → ESC1 without ever holding the graph in
// memory. The canonical uint64 edge keys stream out of the parallel parser
// into a bounded buffer; each time the buffer fills it is sorted,
// deduplicated and spilled to a temp file, and the spill files are k-way
// merged twice — once to count degrees (pass 1), once to fill the CSR
// arrays through a read-write mapping of the output file (pass 2). Peak
// memory is the key buffer (MemBudget) plus two O(|V|) int32 arrays
// (degrees and fill cursors), never the O(|E|) edge set.
//
// The fill pass mirrors buildCSR statement for statement, so the packed
// file is byte-identical to WritePackedFile of the in-RAM graph — pinned by
// test. The remapper is the one in-memory structure proportional to |V|
// that cannot be avoided: first-seen dense-id assignment needs the id map.

// defaultMemBudget is the spill buffer size when PackOptions.MemBudget is
// unset: 256 MiB of keys, 32 Mi edges per spill chunk.
const defaultMemBudget = 256 << 20

// PackOptions tunes PackEdgeListFile.
type PackOptions struct {
	// Order must be OrderKeep: degree relabeling needs the whole graph and
	// therefore the in-RAM path (LoadFile + WritePackedFile).
	Order Order
	// MemBudget bounds the edge-key spill buffer, in bytes; <= 0 selects
	// defaultMemBudget. O(|V|) structures (remapper, degree counts, fill
	// cursors) are not charged against it.
	MemBudget int64
	// TmpDir is where spill chunks go; empty means the system temp dir.
	TmpDir string
	// Workers is the parse worker count; <= 0 selects GOMAXPROCS.
	Workers int
	// Obs, when non-nil, receives the phase spans ("parse", "merge.count",
	// "merge.fill") and pack.* counters.
	Obs *obs.Span
}

// PackStats summarizes one external-sort packing run.
type PackStats struct {
	// Nodes and Edges are the packed graph's |V| and |E|.
	Nodes, Edges int
	// SpillChunks is the number of sorted runs written to temp files; 0
	// means the whole key set fit in MemBudget.
	SpillChunks int
	// SpilledKeys counts keys written to spill files (pre-merge, so
	// duplicates across chunks are counted once per chunk).
	SpilledKeys int64
	// BytesOut is the packed file's size.
	BytesOut int64
}

// PackEdgeListFile streams the SNAP edge list at inPath into an ESC1
// packed-CSR file at outPath under a bounded memory budget, so graphs
// larger than RAM can be packed. The output is byte-identical to loading
// the list in RAM and calling WritePackedFile with OrderKeep.
func PackEdgeListFile(inPath, outPath string, opt PackOptions) (*PackStats, error) {
	if opt.Order != OrderKeep {
		return nil, fmt.Errorf("graph: external-sort packing supports OrderKeep only; degree ordering needs the in-RAM packer (LoadFile + WritePackedFile)")
	}
	if !hostLittleEndian {
		return nil, fmt.Errorf("graph: external-sort packing writes through a little-endian mapping and is unsupported on big-endian hosts; use the in-RAM packer")
	}
	budget := opt.MemBudget
	if budget <= 0 {
		budget = defaultMemBudget
	}
	capKeys := int(budget / 8)
	if capKeys < 16 {
		capKeys = 16
	}

	tmpDir, err := os.MkdirTemp(opt.TmpDir, "escpack-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmpDir)

	in, err := os.Open(inPath)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	elOpt := EdgeListOptions{Workers: opt.Workers, Obs: opt.Obs}
	if fi, err := in.Stat(); err == nil {
		elOpt.TotalBytes = fi.Size()
	}

	// Spill phase: buffer keys, and each time the budget fills, sort +
	// dedup + write one run. The residual buffer stays in memory as the
	// final (sorted) run.
	stats := &PackStats{}
	var chunkPaths []string
	buf := make([]uint64, 0, capKeys)
	spill := func() error {
		buf = sortedRun(buf)
		path := filepath.Join(tmpDir, fmt.Sprintf("run-%06d", len(chunkPaths)))
		if err := writeKeyFile(path, buf); err != nil {
			return err
		}
		chunkPaths = append(chunkPaths, path)
		stats.SpilledKeys += int64(len(buf))
		opt.Obs.Counter("pack.spill.chunks").Add(1)
		opt.Obs.Counter("pack.spill.keys").Add(int64(len(buf)))
		buf = buf[:0]
		return nil
	}
	rm, err := scanEdgeList(in, elOpt, func(key uint64) error {
		buf = append(buf, key)
		if len(buf) == cap(buf) {
			return spill()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	buf = sortedRun(buf)
	n := rm.Len()
	stats.Nodes = n

	openSources := func() ([]keySource, error) {
		srcs := make([]keySource, 0, len(chunkPaths)+1)
		for _, p := range chunkPaths {
			f, err := os.Open(p)
			if err != nil {
				closeSources(srcs)
				return nil, err
			}
			srcs = append(srcs, &fileKeys{f: f, br: bufio.NewReaderSize(f, 256<<10)})
		}
		if len(buf) > 0 {
			srcs = append(srcs, &memKeys{keys: buf})
		}
		return srcs, nil
	}

	// Pass 1: merge all runs to count per-node degrees and the deduplicated
	// edge total.
	count := opt.Obs.Start("merge.count")
	deg := make([]int32, n)
	m := 0
	{
		srcs, err := openSources()
		if err != nil {
			count.End()
			return nil, err
		}
		mg := newKeyMerger(srcs)
		for {
			k, ok, err := mg.next()
			if err != nil {
				closeSources(srcs)
				count.End()
				return nil, err
			}
			if !ok {
				break
			}
			if int64(m) >= int64(1)<<31/2 {
				closeSources(srcs)
				count.End()
				return nil, csrBounds(n, m+1)
			}
			e := unpackKey(k)
			deg[e.U]++
			deg[e.V]++
			m++
		}
		if err := closeSources(srcs); err != nil {
			count.End()
			return nil, err
		}
	}
	count.End()
	if err := csrBounds(n, m); err != nil {
		return nil, err
	}
	stats.Edges = m
	stats.SpillChunks = len(chunkPaths)

	// Lay out and create the output file, then fill it through a shared
	// read-write mapping: pass 2's CSR stores land directly in the page
	// cache and the kernel writes them back.
	identity := identityLabels(rm, n)
	l := newPackLayout(n, m, identity)
	out, err := os.Create(outPath)
	if err != nil {
		return nil, err
	}
	defer out.Close()
	if err := out.Truncate(l.total); err != nil {
		return nil, err
	}
	data, release, err := mapFile(out, l.total, true)
	if err != nil {
		return nil, err
	}
	released := false
	unmap := func() error {
		if released {
			return nil
		}
		released = true
		return release()
	}
	defer unmap()
	if uintptr(dataPtr(data))%8 != 0 {
		return nil, fmt.Errorf("graph: output mapping is not 8-byte aligned; cannot alias CSR arrays")
	}

	var flags uint64
	if identity {
		flags |= packFlagIdentityLabels
	} else {
		copy(viewInt64s(data, l.labelsOff, n), labelSlice(rm, n))
	}
	offsets := viewInt32s(data, l.offsetsOff, n+1)
	for u := 0; u < n; u++ {
		offsets[u+1] = offsets[u] + deg[u]
	}

	// Pass 2: merge again and fill the arrays exactly as buildCSR does, so
	// the file is byte-identical to the in-RAM pack.
	fill := opt.Obs.Start("merge.fill")
	fill.SetTotal(int64(m))
	targets := viewInt32s(data, l.targetsOff, 2*m)
	edgeID := viewInt32s(data, l.edgeIDOff, 2*m)
	mate := viewInt32s(data, l.mateOff, 2*m)
	edgeU := viewInt32s(data, l.edgeUOff, m)
	edgeV := viewInt32s(data, l.edgeVOff, m)
	edgeUV := viewInt32s(data, l.edgeUVOff, 2*m)
	cur := make([]int32, n)
	copy(cur, offsets[:n])
	{
		srcs, err := openSources()
		if err != nil {
			fill.End()
			return nil, err
		}
		mg := newKeyMerger(srcs)
		id := int32(0)
		for {
			k, ok, err := mg.next()
			if err != nil {
				closeSources(srcs)
				fill.End()
				return nil, err
			}
			if !ok {
				break
			}
			e := unpackKey(k)
			su, sv := cur[e.U], cur[e.V]
			cur[e.U]++
			cur[e.V]++
			targets[su] = int32(e.V)
			targets[sv] = int32(e.U)
			edgeID[su] = id
			edgeID[sv] = id
			mate[su] = sv
			mate[sv] = su
			edgeU[id] = int32(e.U)
			edgeV[id] = int32(e.V)
			edgeUV[2*id] = int32(e.U)
			edgeUV[2*id+1] = int32(e.V)
			id++
			fill.Done(1)
		}
		if err := closeSources(srcs); err != nil {
			fill.End()
			return nil, err
		}
		if int(id) != m {
			fill.End()
			return nil, fmt.Errorf("graph: merge passes disagree: counted %d edges, filled %d", m, id)
		}
	}
	fill.End()

	// Header last: the checksum covers the now-complete payload.
	copy(data[0:4], packMagic[:])
	binary.LittleEndian.PutUint32(data[4:8], packVersion)
	binary.LittleEndian.PutUint64(data[8:16], flags)
	binary.LittleEndian.PutUint64(data[16:24], uint64(n))
	binary.LittleEndian.PutUint64(data[24:32], uint64(m))
	binary.LittleEndian.PutUint64(data[32:40], uint64(crc32.Checksum(data[packHeaderSize:], castagnoli)))
	for i := 40; i < packHeaderSize; i++ {
		data[i] = 0
	}
	if err := flushMap(out, data); err != nil {
		return nil, err
	}
	if err := unmap(); err != nil {
		return nil, err
	}
	if err := out.Sync(); err != nil {
		return nil, err
	}
	if err := out.Close(); err != nil {
		return nil, err
	}
	stats.BytesOut = l.total
	opt.Obs.Counter("pack.bytes.out").Add(l.total)
	opt.Obs.Counter("ingest.edges").Add(int64(m))
	return stats, nil
}

// sortedRun sorts and deduplicates a key buffer in place, returning the
// shrunken slice (capacity preserved for reuse).
func sortedRun(keys []uint64) []uint64 {
	slices.Sort(keys)
	return slices.Compact(keys)
}

// writeKeyFile writes one sorted run as raw little-endian uint64s.
func writeKeyFile(path string, keys []uint64) error {
	return writeFileWith(path, func(w io.Writer) error {
		bw := bufio.NewWriterSize(w, 256<<10)
		var rec [8]byte
		for _, k := range keys {
			binary.LittleEndian.PutUint64(rec[:], k)
			if _, err := bw.Write(rec[:]); err != nil {
				return err
			}
		}
		return bw.Flush()
	})
}

// keySource is one sorted, internally-deduplicated run of edge keys.
type keySource interface {
	// next returns the run's next key; ok is false at end of run.
	next() (k uint64, ok bool, err error)
	// close releases the run's resources.
	close() error
}

// memKeys is the in-memory residual run (the spill buffer's tail).
type memKeys struct {
	keys []uint64
	i    int
}

// next implements keySource.
func (s *memKeys) next() (uint64, bool, error) {
	if s.i >= len(s.keys) {
		return 0, false, nil
	}
	k := s.keys[s.i]
	s.i++
	return k, true, nil
}

// close implements keySource.
func (s *memKeys) close() error { return nil }

// fileKeys reads a spill file written by writeKeyFile.
type fileKeys struct {
	f  *os.File
	br *bufio.Reader
}

// next implements keySource.
func (s *fileKeys) next() (uint64, bool, error) {
	var rec [8]byte
	if _, err := io.ReadFull(s.br, rec[:]); err != nil {
		if err == io.EOF {
			return 0, false, nil
		}
		return 0, false, fmt.Errorf("graph: reading spill run %s: %w", s.f.Name(), err)
	}
	return binary.LittleEndian.Uint64(rec[:]), true, nil
}

// close implements keySource.
func (s *fileKeys) close() error { return s.f.Close() }

// closeSources closes every source, returning the first error.
func closeSources(srcs []keySource) error {
	var first error
	for _, s := range srcs {
		if err := s.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// keyMerger merges sorted runs into one ascending deduplicated stream with
// a binary min-heap of (head key, source) pairs.
type keyMerger struct {
	srcs   []keySource
	heap   []mergeEntry
	last   uint64
	primed bool
	err    error
}

// mergeEntry is one heap element: a source's current head key.
type mergeEntry struct {
	key uint64
	src int
}

// newKeyMerger primes the heap with each source's first key.
func newKeyMerger(srcs []keySource) *keyMerger {
	m := &keyMerger{srcs: srcs}
	for i, s := range srcs {
		k, ok, err := s.next()
		if err != nil {
			m.err = err
			return m
		}
		if ok {
			m.heap = append(m.heap, mergeEntry{key: k, src: i})
		}
	}
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
	return m
}

// next returns the globally next distinct key across all runs.
func (m *keyMerger) next() (uint64, bool, error) {
	if m.err != nil {
		return 0, false, m.err
	}
	for len(m.heap) > 0 {
		top := m.heap[0]
		k, ok, err := m.srcs[top.src].next()
		if err != nil {
			m.err = err
			return 0, false, err
		}
		if ok {
			m.heap[0] = mergeEntry{key: k, src: top.src}
			m.siftDown(0)
		} else {
			last := len(m.heap) - 1
			m.heap[0] = m.heap[last]
			m.heap = m.heap[:last]
			if len(m.heap) > 0 {
				m.siftDown(0)
			}
		}
		// Runs are internally deduplicated; duplicates across runs surface
		// as consecutive equal keys here.
		if m.primed && top.key == m.last {
			continue
		}
		m.last, m.primed = top.key, true
		return top.key, true, nil
	}
	return 0, false, nil
}

// siftDown restores the min-heap property from index i.
func (m *keyMerger) siftDown(i int) {
	h := m.heap
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h[l].key < h[small].key {
			small = l
		}
		if r < len(h) && h[r].key < h[small].key {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}
