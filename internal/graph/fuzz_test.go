package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList asserts the text parser never panics and that any graph
// it accepts satisfies the package invariants.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("1 2\n2 3\n")
	f.Add("# comment\n\n10 20\n20 10\n10 10\n")
	f.Add("1")
	f.Add("a b")
	f.Add("9223372036854775807 -9223372036854775808\n")
	f.Add(strings.Repeat("1 2\n", 100))
	f.Fuzz(func(t *testing.T, data string) {
		g, rm, err := ReadEdgeList(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph invalid: %v", err)
		}
		if rm.Len() != g.NumNodes() {
			t.Fatalf("remapper has %d labels for %d nodes", rm.Len(), g.NumNodes())
		}
	})
}

// FuzzReadBinary asserts the binary parser never panics and that any graph
// it accepts round-trips identically.
func FuzzReadBinary(f *testing.F) {
	good := func(edges []Edge, n int) []byte {
		g := MustFromEdges(n, edges)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(good([]Edge{{U: 0, V: 1}, {U: 1, V: 2}}, 3))
	f.Add(good(nil, 0))
	f.Add([]byte("ESG1 garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph invalid: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %v vs %v", g2, g)
		}
	})
}
