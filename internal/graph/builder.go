package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph. It rejects
// self-loops, parallel edges and out-of-range endpoints at AddEdge time so
// that a finished Graph always satisfies the package invariants.
//
// The zero Builder is a builder for a zero-node graph; use NewBuilder or Grow
// to size it.
type Builder struct {
	n     int
	edges []Edge
	seen  map[Edge]struct{}
}

// NewBuilder returns a builder for a graph with n nodes (ids 0..n-1).
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n, seen: make(map[Edge]struct{})}
}

// Grow raises the node count to at least n. Shrinking is not supported;
// a smaller n is a no-op.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// NumNodes returns the current node count.
func (b *Builder) NumNodes() int { return b.n }

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// AddEdge adds the undirected edge (u, v). It returns an error for
// self-loops, endpoints outside [0, NumNodes) and edges already present
// (in either orientation).
func (b *Builder) AddEdge(u, v NodeID) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) outside node range [0,%d)", u, v, b.n)
	}
	e := Edge{u, v}.Canonical()
	if b.seen == nil {
		b.seen = make(map[Edge]struct{})
	}
	if _, dup := b.seen[e]; dup {
		return fmt.Errorf("graph: duplicate edge %v", e)
	}
	b.seen[e] = struct{}{}
	b.edges = append(b.edges, e)
	return nil
}

// TryAddEdge adds (u, v) and reports whether the edge was added. Unlike
// AddEdge it treats duplicates and self-loops as a quiet "no" — the shape
// generators use it to retry collisions — but still panics on out-of-range
// endpoints, which are always caller bugs.
func (b *Builder) TryAddEdge(u, v NodeID) bool {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) outside node range [0,%d)", u, v, b.n))
	}
	if u == v {
		return false
	}
	e := Edge{u, v}.Canonical()
	if b.seen == nil {
		b.seen = make(map[Edge]struct{})
	}
	if _, dup := b.seen[e]; dup {
		return false
	}
	b.seen[e] = struct{}{}
	b.edges = append(b.edges, e)
	return true
}

// HasEdge reports whether (u, v) has been added.
func (b *Builder) HasEdge(u, v NodeID) bool {
	_, ok := b.seen[Edge{u, v}.Canonical()]
	return ok
}

// Graph finalizes the builder into an immutable Graph. The builder remains
// usable afterwards; the produced graph does not alias builder memory.
func (b *Builder) Graph() *Graph {
	g := &Graph{
		adj:   make([][]NodeID, b.n),
		edges: make([]Edge, len(b.edges)),
	}
	copy(g.edges, b.edges)
	sort.Slice(g.edges, func(i, j int) bool {
		if g.edges[i].U != g.edges[j].U {
			return g.edges[i].U < g.edges[j].U
		}
		return g.edges[i].V < g.edges[j].V
	})
	deg := make([]int, b.n)
	for _, e := range g.edges {
		deg[e.U]++
		deg[e.V]++
	}
	for u := range g.adj {
		g.adj[u] = make([]NodeID, 0, deg[u])
	}
	for _, e := range g.edges {
		g.adj[e.U] = append(g.adj[e.U], e.V)
		g.adj[e.V] = append(g.adj[e.V], e.U)
	}
	for u := range g.adj {
		a := g.adj[u]
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	}
	return g
}

// Remapper maps sparse external node identifiers (as found in raw edge-list
// files) onto dense internal ids, remembering the original labels.
type Remapper struct {
	toDense map[int64]NodeID
	labels  []int64
}

// NewRemapper returns an empty remapper.
func NewRemapper() *Remapper {
	return &Remapper{toDense: make(map[int64]NodeID)}
}

// ID returns the dense id for external label x, assigning the next free id on
// first sight.
func (r *Remapper) ID(x int64) NodeID {
	if id, ok := r.toDense[x]; ok {
		return id
	}
	id := NodeID(len(r.labels))
	r.toDense[x] = id
	r.labels = append(r.labels, x)
	return id
}

// Len returns the number of distinct labels seen.
func (r *Remapper) Len() int { return len(r.labels) }

// Label returns the external label for dense id u.
func (r *Remapper) Label(u NodeID) int64 { return r.labels[u] }
