package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph. It rejects
// self-loops, parallel edges and out-of-range endpoints at AddEdge time so
// that a finished Graph always satisfies the package invariants.
//
// The zero Builder is a builder for a zero-node graph; use NewBuilder or Grow
// to size it.
type Builder struct {
	n     int
	edges []Edge
	seen  map[Edge]struct{}
}

// NewBuilder returns a builder for a graph with n nodes (ids 0..n-1).
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: n, seen: make(map[Edge]struct{})}
}

// Grow raises the node count to at least n. Shrinking is not supported;
// a smaller n is a no-op.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// NumNodes returns the current node count.
func (b *Builder) NumNodes() int { return b.n }

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// AddEdge adds the undirected edge (u, v). It returns an error for
// self-loops, endpoints outside [0, NumNodes) and edges already present
// (in either orientation).
func (b *Builder) AddEdge(u, v NodeID) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) outside node range [0,%d)", u, v, b.n)
	}
	e := Edge{u, v}.Canonical()
	if b.seen == nil {
		b.seen = make(map[Edge]struct{})
	}
	if _, dup := b.seen[e]; dup {
		return fmt.Errorf("graph: duplicate edge %v", e)
	}
	b.seen[e] = struct{}{}
	b.edges = append(b.edges, e)
	return nil
}

// TryAddEdge adds (u, v) and reports whether the edge was added. Unlike
// AddEdge it treats duplicates and self-loops as a quiet "no" — the shape
// generators use it to retry collisions — but still panics on out-of-range
// endpoints, which are always caller bugs.
func (b *Builder) TryAddEdge(u, v NodeID) bool {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) outside node range [0,%d)", u, v, b.n))
	}
	if u == v {
		return false
	}
	e := Edge{u, v}.Canonical()
	if b.seen == nil {
		b.seen = make(map[Edge]struct{})
	}
	if _, dup := b.seen[e]; dup {
		return false
	}
	b.seen[e] = struct{}{}
	b.edges = append(b.edges, e)
	return true
}

// HasEdge reports whether (u, v) has been added.
func (b *Builder) HasEdge(u, v NodeID) bool {
	_, ok := b.seen[Edge{u, v}.Canonical()]
	return ok
}

// Graph finalizes the builder into an immutable Graph. The builder remains
// usable afterwards; the produced graph does not alias builder memory.
func (b *Builder) Graph() *Graph {
	g := &Graph{
		adj:   make([][]NodeID, b.n),
		edges: make([]Edge, len(b.edges)),
	}
	copy(g.edges, b.edges)
	sort.Slice(g.edges, func(i, j int) bool {
		if g.edges[i].U != g.edges[j].U {
			return g.edges[i].U < g.edges[j].U
		}
		return g.edges[i].V < g.edges[j].V
	})
	deg := make([]int, b.n)
	for _, e := range g.edges {
		deg[e.U]++
		deg[e.V]++
	}
	for u := range g.adj {
		g.adj[u] = make([]NodeID, 0, deg[u])
	}
	for _, e := range g.edges {
		g.adj[e.U] = append(g.adj[e.U], e.V)
		g.adj[e.V] = append(g.adj[e.V], e.U)
	}
	for u := range g.adj {
		a := g.adj[u]
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	}
	return g
}

// Remapper maps sparse external node identifiers (as found in raw edge-list
// files) onto dense internal ids, remembering the original labels.
//
// Two lazy modes avoid the O(n) map a loader of an already-dense graph would
// otherwise materialize for nothing: IdentityRemapper labels dense id u with
// the integer u without storing anything, and RemapperFromLabels carries a
// label array (as read from a packed file) without building the reverse map.
// Both modes materialize the full map transparently if ID is ever asked to
// assign new labels.
type Remapper struct {
	toDense  map[int64]NodeID // nil in the lazy modes until ID needs it
	labels   []int64          // nil in identity mode
	identity int              // >0: identity over [0, identity), labels nil
}

// NewRemapper returns an empty remapper.
func NewRemapper() *Remapper {
	return &Remapper{toDense: make(map[int64]NodeID)}
}

// IdentityRemapper returns a remapper whose first n labels are the identity:
// dense id u carries label u. It allocates O(1) memory — no map, no label
// array — which is what binary and packed loads of million-node graphs want,
// since their node ids are already dense.
func IdentityRemapper(n int) *Remapper {
	if n < 0 {
		panic("graph: negative identity remapper size")
	}
	return &Remapper{identity: n}
}

// RemapperFromLabels returns a remapper over an existing dense-id → label
// table, as stored in a packed graph file. The slice is retained, not
// copied, and must not be modified afterwards. The reverse (label → id) map
// is only built if ID is called.
func RemapperFromLabels(labels []int64) *Remapper {
	return &Remapper{labels: labels}
}

// materialize converts a lazy remapper into the fully-mapped form, so ID can
// look up and assign labels.
func (r *Remapper) materialize() {
	if r.identity > 0 {
		r.labels = make([]int64, r.identity)
		for u := range r.labels {
			r.labels[u] = int64(u)
		}
		r.identity = 0
	}
	if r.toDense == nil {
		r.toDense = make(map[int64]NodeID, len(r.labels))
		for u, x := range r.labels {
			r.toDense[x] = NodeID(u)
		}
	}
}

// ID returns the dense id for external label x, assigning the next free id on
// first sight. On a lazy remapper the identity fast path answers in-range
// labels directly; anything else materializes the map first.
func (r *Remapper) ID(x int64) NodeID {
	if r.identity > 0 {
		if x >= 0 && x < int64(r.identity) {
			return NodeID(x)
		}
		r.materialize()
	}
	if r.toDense == nil {
		r.materialize()
	}
	if id, ok := r.toDense[x]; ok {
		return id
	}
	id := NodeID(len(r.labels))
	r.toDense[x] = id
	r.labels = append(r.labels, x)
	return id
}

// Len returns the number of distinct labels seen.
func (r *Remapper) Len() int {
	if r.identity > 0 {
		return r.identity
	}
	return len(r.labels)
}

// Label returns the external label for dense id u.
func (r *Remapper) Label(u NodeID) int64 {
	if r.identity > 0 {
		if u < 0 || int(u) >= r.identity {
			panic(fmt.Sprintf("graph: label lookup for id %d outside identity range [0,%d)", u, r.identity))
		}
		return int64(u)
	}
	return r.labels[u]
}
