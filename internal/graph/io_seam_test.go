package graph

import (
	"errors"
	"io"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

// failCloseWriter accepts all writes and fails on Close — the shape of a
// full disk announcing itself at flush time.
type failCloseWriter struct{ closeErr error }

// Write implements io.Writer, discarding p.
func (w *failCloseWriter) Write(p []byte) (int, error) { return len(p), nil }

// Close implements io.Closer, returning the injected error.
func (w *failCloseWriter) Close() error { return w.closeErr }

// withFailingClose swaps the createFile seam for one returning
// failCloseWriter, restoring it when the test ends.
func withFailingClose(t *testing.T, closeErr error) {
	t.Helper()
	orig := createFile
	createFile = func(string) (io.WriteCloser, error) { return &failCloseWriter{closeErr: closeErr}, nil }
	t.Cleanup(func() { createFile = orig })
}

// TestSaveFileCloseErrorPropagates is the regression test for the shadowed
// err in SaveFile's .dot branch: a Close error was silently dropped because
// the deferred handler assigned to an inner err that shadowed the named
// return. Every file-writing path must surface it.
func TestSaveFileCloseErrorPropagates(t *testing.T) {
	closeErr := errors.New("close failed: disk full")
	withFailingClose(t, closeErr)
	g := MustFromEdges(3, []Edge{{0, 1}, {1, 2}})
	for _, name := range []string{"g.dot", "g.txt", "g.esg", "g.esc"} {
		if err := SaveFile(name, g, nil); !errors.Is(err, closeErr) {
			t.Errorf("SaveFile(%s) = %v, want the close error", name, err)
		}
	}
	if err := WriteEdgeListFile("g.txt", g, nil); !errors.Is(err, closeErr) {
		t.Errorf("WriteEdgeListFile = %v, want the close error", err)
	}
	if err := WriteBinaryFile("g.esg", g); !errors.Is(err, closeErr) {
		t.Errorf("WriteBinaryFile = %v, want the close error", err)
	}
	if err := WritePackedFile("g.esc", g, nil, PackWriteOptions{}); !errors.Is(err, closeErr) {
		t.Errorf("WritePackedFile = %v, want the close error", err)
	}
}

// TestWriteFileWithWriteErrorWins pins the precedence: a write error is
// reported even when Close also fails.
func TestWriteFileWithWriteErrorWins(t *testing.T) {
	closeErr := errors.New("close failed")
	writeErr := errors.New("write failed")
	withFailingClose(t, closeErr)
	err := writeFileWith("x", func(io.Writer) error { return writeErr })
	if !errors.Is(err, writeErr) {
		t.Fatalf("writeFileWith = %v, want the write error", err)
	}
}

func TestWriteFileWithRealFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := writeFileWith(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "hello")
		return err
	}); err != nil {
		t.Fatalf("writeFileWith: %v", err)
	}
}

// TestBinaryBounds pins the uint32 overflow guard: counts past 2^32−1 were
// silently truncated by the uint32 header casts before the guard existed.
func TestBinaryBounds(t *testing.T) {
	if err := binaryBounds(10, 20); err != nil {
		t.Errorf("small counts rejected: %v", err)
	}
	if err := binaryBounds(math.MaxUint32, math.MaxUint32); err != nil {
		t.Errorf("boundary counts rejected: %v", err)
	}
	if err := binaryBounds(math.MaxUint32+1, 0); err == nil {
		t.Error("node count past uint32 accepted")
	} else if !strings.Contains(err.Error(), "node count") {
		t.Errorf("wrong error for node overflow: %v", err)
	}
	if err := binaryBounds(0, math.MaxUint32+1); err == nil {
		t.Error("edge count past uint32 accepted")
	} else if !strings.Contains(err.Error(), "edge count") {
		t.Errorf("wrong error for edge overflow: %v", err)
	}
}

// TestCSRBounds pins the int32 slot-index guard shared by buildCSR and the
// packed writers.
func TestCSRBounds(t *testing.T) {
	if err := csrBounds(10, 20); err != nil {
		t.Errorf("small counts rejected: %v", err)
	}
	if err := csrBounds(math.MaxInt32, math.MaxInt32/2); err != nil {
		t.Errorf("boundary counts rejected: %v", err)
	}
	if err := csrBounds(math.MaxInt32+1, 0); err == nil {
		t.Error("node count past int32 accepted")
	}
	if err := csrBounds(0, math.MaxInt32/2+1); err == nil {
		t.Error("edge count past int32/2 accepted")
	}
}

// TestIdentityRemapperLazy pins the O(1) identity mode: no map, labels on
// demand, transparent materialization when ID must assign something new.
func TestIdentityRemapperLazy(t *testing.T) {
	rm := IdentityRemapper(5)
	if rm.toDense != nil || rm.labels != nil {
		t.Fatal("identity remapper materialized eagerly")
	}
	if rm.Len() != 5 {
		t.Errorf("Len = %d, want 5", rm.Len())
	}
	for u := NodeID(0); u < 5; u++ {
		if rm.Label(u) != int64(u) {
			t.Errorf("Label(%d) = %d", u, rm.Label(u))
		}
		if rm.ID(int64(u)) != u {
			t.Errorf("ID(%d) = %d", u, rm.ID(int64(u)))
		}
	}
	if rm.toDense != nil {
		t.Fatal("in-range lookups materialized the map")
	}
	// An unseen label forces materialization and gets the next dense id.
	if id := rm.ID(99); id != 5 {
		t.Errorf("ID(99) = %d, want 5", id)
	}
	if rm.Len() != 6 || rm.Label(5) != 99 || rm.Label(2) != 2 {
		t.Errorf("post-materialize state wrong: Len=%d Label(5)=%d Label(2)=%d",
			rm.Len(), rm.Label(5), rm.Label(2))
	}
}

func TestIdentityRemapperLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Label outside the identity range did not panic")
		}
	}()
	IdentityRemapper(3).Label(3)
}

func TestRemapperFromLabelsLazy(t *testing.T) {
	rm := RemapperFromLabels([]int64{70, 50, 90})
	if rm.toDense != nil {
		t.Fatal("label-mode remapper built the reverse map eagerly")
	}
	if rm.Len() != 3 || rm.Label(1) != 50 {
		t.Errorf("Len=%d Label(1)=%d", rm.Len(), rm.Label(1))
	}
	if rm.toDense != nil {
		t.Fatal("Label materialized the map")
	}
	// ID needs the reverse map: existing labels resolve, new ones append.
	if id := rm.ID(90); id != 2 {
		t.Errorf("ID(90) = %d, want 2", id)
	}
	if id := rm.ID(33); id != 3 {
		t.Errorf("ID(33) = %d, want 3", id)
	}
	if rm.Len() != 4 || rm.Label(3) != 33 {
		t.Errorf("post-append state wrong: Len=%d Label(3)=%d", rm.Len(), rm.Label(3))
	}
}
