package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// The binary format is a fast-reload cache for large graphs (regenerating
// the com-LiveJournal stand-in takes far longer than re-reading it):
//
//	magic "ESG1" | uint32 |V| | uint32 |E| | |E| × (uint32 u, uint32 v)
//
// all little-endian, edges canonical and sorted as in Graph.Edges().

var binaryMagic = [4]byte{'E', 'S', 'G', '1'}

// binaryBounds reports whether n nodes and m edges fit the format's uint32
// header fields. Without it, counts one past 2^32−1 would silently truncate
// and write a structurally plausible but wrong file.
func binaryBounds(n, m int) error {
	if int64(n) > math.MaxUint32 {
		return fmt.Errorf("graph: %d nodes overflow the binary format's uint32 node count", n)
	}
	if int64(m) > math.MaxUint32 {
		return fmt.Errorf("graph: %d edges overflow the binary format's uint32 edge count", m)
	}
	return nil
}

// WriteBinary writes g in the edgeshed binary format. Graphs whose node or
// edge count exceeds the format's uint32 header fields are rejected with an
// error rather than silently truncated.
func WriteBinary(w io.Writer, g *Graph) error {
	if err := binaryBounds(g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(g.NumNodes()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(g.NumEdges()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [8]byte
	for _, e := range g.Edges() {
		binary.LittleEndian.PutUint32(rec[0:4], uint32(e.U))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(e.V))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the edgeshed binary format, validating structure as it
// goes (magic, node range, canonical order, duplicates).
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading binary magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q, want %q", magic, binaryMagic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading binary header: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:4]))
	m := int(binary.LittleEndian.Uint32(hdr[4:8]))
	b := NewBuilder(n)
	var rec [8]byte
	for i := 0; i < m; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d of %d: %w", i, m, err)
		}
		u := NodeID(binary.LittleEndian.Uint32(rec[0:4]))
		v := NodeID(binary.LittleEndian.Uint32(rec[4:8]))
		if err := b.AddEdge(u, v); err != nil {
			return nil, fmt.Errorf("graph: binary edge %d: %w", i, err)
		}
	}
	// Reject trailing garbage: a well-formed file ends exactly here.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("graph: trailing data after %d edges", m)
	}
	return b.Graph(), nil
}

// WriteBinaryFile writes g to path in the binary format.
func WriteBinaryFile(path string, g *Graph) error {
	return writeFileWith(path, func(w io.Writer) error { return WriteBinary(w, g) })
}

// ReadBinaryFile reads a binary-format graph from path.
func ReadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
