package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// The binary format is a fast-reload cache for large graphs (regenerating
// the com-LiveJournal stand-in takes far longer than re-reading it):
//
//	magic "ESG1" | uint32 |V| | uint32 |E| | |E| × (uint32 u, uint32 v)
//
// all little-endian, edges canonical and sorted as in Graph.Edges().

var binaryMagic = [4]byte{'E', 'S', 'G', '1'}

// WriteBinary writes g in the edgeshed binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(g.NumNodes()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(g.NumEdges()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [8]byte
	for _, e := range g.Edges() {
		binary.LittleEndian.PutUint32(rec[0:4], uint32(e.U))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(e.V))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the edgeshed binary format, validating structure as it
// goes (magic, node range, canonical order, duplicates).
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading binary magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q, want %q", magic, binaryMagic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading binary header: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:4]))
	m := int(binary.LittleEndian.Uint32(hdr[4:8]))
	b := NewBuilder(n)
	var rec [8]byte
	for i := 0; i < m; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d of %d: %w", i, m, err)
		}
		u := NodeID(binary.LittleEndian.Uint32(rec[0:4]))
		v := NodeID(binary.LittleEndian.Uint32(rec[4:8]))
		if err := b.AddEdge(u, v); err != nil {
			return nil, fmt.Errorf("graph: binary edge %d: %w", i, err)
		}
	}
	// Reject trailing garbage: a well-formed file ends exactly here.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("graph: trailing data after %d edges", m)
	}
	return b.Graph(), nil
}

// WriteBinaryFile writes g to path in the binary format.
func WriteBinaryFile(path string, g *Graph) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return WriteBinary(f, g)
}

// ReadBinaryFile reads a binary-format graph from path.
func ReadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
