package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"edgeshed/internal/obs"
)

// WriteEdgeList writes g in the SNAP edge-list format with a leading comment
// header. If rm is non-nil, dense ids are translated back to their original
// labels; otherwise dense ids are written directly.
func WriteEdgeList(w io.Writer, g *Graph, rm *Remapper) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# Undirected graph: |V|=%d |E|=%d\n# u v\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		var u, v int64
		if rm != nil {
			u, v = rm.Label(e.U), rm.Label(e.V)
		} else {
			u, v = int64(e.U), int64(e.V)
		}
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// createFile is the file-creation seam used by writeFileWith; tests swap it
// to inject writers whose Close fails, pinning that close errors propagate.
var createFile = func(path string) (io.WriteCloser, error) { return os.Create(path) }

// writeFileWith creates (or truncates) path and runs write against it,
// reporting the first of the write error and the close error. Every
// file-writing helper in this package funnels through here so a failed
// flush-on-close — the way a full disk usually announces itself — is never
// silently dropped.
func writeFileWith(path string, write func(w io.Writer) error) error {
	f, err := createFile(path)
	if err != nil {
		return err
	}
	werr := write(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// LoadFile reads a graph from path, selecting the format by extension:
// ".esc" is the mmap-able packed-CSR format, ".esg" the binary format, and
// anything else the text edge list. Binary files carry no external labels,
// so their remapper is the identity over dense ids; packed files store the
// original labels (or an identity flag).
func LoadFile(path string) (*Graph, *Remapper, error) {
	return LoadFileObs(path, nil)
}

// LoadFileObs is LoadFile with ingest instrumentation: the format-specific
// loader's phase spans and counters are recorded under sp. A ".esc" load
// keeps its file mapping for the process lifetime.
func LoadFileObs(path string, sp *obs.Span) (*Graph, *Remapper, error) {
	switch {
	case strings.HasSuffix(path, ".esc"):
		p, err := openPackedObs(path, sp)
		if err != nil {
			return nil, nil, err
		}
		// The mapping is intentionally never unmapped: callers of LoadFile
		// keep the graph for the process lifetime.
		return p.Graph(), p.Remapper(), nil
	case strings.HasSuffix(path, ".esg"):
		g, err := ReadBinaryFile(path)
		if err != nil {
			return nil, nil, err
		}
		return g, IdentityRemapper(g.NumNodes()), nil
	}
	return readEdgeListFileObs(path, sp)
}

// SaveFile writes a graph to path, selecting the format by extension as in
// LoadFile, plus ".dot" for Graphviz rendering. The remapper is stored in
// ".esc" output and used to translate text output; it is ignored for binary
// and DOT output (those formats store dense ids).
func SaveFile(path string, g *Graph, rm *Remapper) error {
	switch {
	case strings.HasSuffix(path, ".esc"):
		return WritePackedFile(path, g, rm, PackWriteOptions{})
	case strings.HasSuffix(path, ".esg"):
		return WriteBinaryFile(path, g)
	case strings.HasSuffix(path, ".dot"):
		return writeFileWith(path, func(w io.Writer) error {
			return WriteDOT(w, g, DOTOptions{DropIsolated: true})
		})
	}
	return WriteEdgeListFile(path, g, rm)
}

// WriteEdgeListFile is WriteEdgeList to a file path, creating or truncating
// the file.
func WriteEdgeListFile(path string, g *Graph, rm *Remapper) error {
	return writeFileWith(path, func(w io.Writer) error { return WriteEdgeList(w, g, rm) })
}
