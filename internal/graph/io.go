package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge-list stream in the SNAP
// style: one "u v" pair per line, '#' starting a comment line, blank lines
// ignored. External ids may be arbitrary 64-bit integers; they are remapped
// onto dense ids in first-seen order. Duplicate edges (in either orientation)
// and self-loops are dropped silently, matching how SNAP loaders treat raw
// crawl data.
//
// It returns the graph and the remapper that translates dense ids back to the
// original labels.
func ReadEdgeList(r io.Reader) (*Graph, *Remapper, error) {
	rm := NewRemapper()
	b := NewBuilder(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: expected two fields, got %q", lineNo, line)
		}
		x, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad node id %q: %v", lineNo, fields[0], err)
		}
		y, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad node id %q: %v", lineNo, fields[1], err)
		}
		u, v := rm.ID(x), rm.ID(y)
		b.Grow(rm.Len())
		b.TryAddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return b.Graph(), rm, nil
}

// ReadEdgeListFile is ReadEdgeList over a file path.
func ReadEdgeListFile(path string) (*Graph, *Remapper, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// WriteEdgeList writes g in the SNAP edge-list format with a leading comment
// header. If rm is non-nil, dense ids are translated back to their original
// labels; otherwise dense ids are written directly.
func WriteEdgeList(w io.Writer, g *Graph, rm *Remapper) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# Undirected graph: |V|=%d |E|=%d\n# u v\n", g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		var u, v int64
		if rm != nil {
			u, v = rm.Label(e.U), rm.Label(e.V)
		} else {
			u, v = int64(e.U), int64(e.V)
		}
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadFile reads a graph from path, selecting the format by extension:
// ".esg" is the binary format, anything else the text edge list. Binary
// files carry no external labels, so their remapper is the identity over
// dense ids.
func LoadFile(path string) (*Graph, *Remapper, error) {
	if strings.HasSuffix(path, ".esg") {
		g, err := ReadBinaryFile(path)
		if err != nil {
			return nil, nil, err
		}
		return g, identityRemapper(g.NumNodes()), nil
	}
	return ReadEdgeListFile(path)
}

// SaveFile writes a graph to path, selecting the format by extension as in
// LoadFile, plus ".dot" for Graphviz rendering. The remapper is ignored for
// binary and DOT output (those formats store dense ids).
func SaveFile(path string, g *Graph, rm *Remapper) (err error) {
	switch {
	case strings.HasSuffix(path, ".esg"):
		return WriteBinaryFile(path, g)
	case strings.HasSuffix(path, ".dot"):
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}()
		return WriteDOT(f, g, DOTOptions{DropIsolated: true})
	}
	return WriteEdgeListFile(path, g, rm)
}

// identityRemapper labels dense id u with the integer u.
func identityRemapper(n int) *Remapper {
	rm := NewRemapper()
	for u := 0; u < n; u++ {
		rm.ID(int64(u))
	}
	return rm
}

// WriteEdgeListFile is WriteEdgeList to a file path, creating or truncating
// the file.
func WriteEdgeListFile(path string, g *Graph, rm *Remapper) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return WriteEdgeList(f, g, rm)
}
