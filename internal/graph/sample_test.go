package graph

import (
	"math/rand"
	"testing"
)

// TestSampleNodeIDsMatchesPerm: the partial draw must reproduce the prefix
// of a full Fisher–Yates pass with the same rng, i.e. sampling is exactly
// "first k of a permutation" without the O(n) cost.
func TestSampleNodeIDsMatchesPerm(t *testing.T) {
	const n, k = 500, 40
	for seed := int64(0); seed < 5; seed++ {
		got := SampleNodeIDs(n, k, seed)
		// Reference: a literal full Fisher–Yates with the same draw rule.
		rng := rand.New(rand.NewSource(seed))
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		for i := 0; i < k; i++ {
			j := i + rng.Intn(n-i)
			perm[i], perm[j] = perm[j], perm[i]
		}
		for i := 0; i < k; i++ {
			if int(got[i]) != perm[i] {
				t.Fatalf("seed %d: sample[%d] = %d, want %d", seed, i, got[i], perm[i])
			}
		}
	}
}

func TestSampleNodeIDsDistinctAndInRange(t *testing.T) {
	const n, k = 200, 64
	got := SampleNodeIDs(n, k, 9)
	if len(got) != k {
		t.Fatalf("len = %d, want %d", len(got), k)
	}
	seen := make(map[NodeID]bool, k)
	for _, u := range got {
		if u < 0 || int(u) >= n {
			t.Fatalf("sampled id %d outside [0, %d)", u, n)
		}
		if seen[u] {
			t.Fatalf("duplicate sampled id %d", u)
		}
		seen[u] = true
	}
}

// TestSampleNodeIDsPinned pins the exact draw for a fixed seed, so any
// change to the sampling sequence (which silently re-randomizes every
// seeded experiment) fails loudly.
func TestSampleNodeIDsPinned(t *testing.T) {
	got := SampleNodeIDs(20, 5, 7)
	want := []NodeID{6, 14, 11, 8, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSampleNodeIDsEdgeCases(t *testing.T) {
	if got := SampleNodeIDs(10, 0, 1); got != nil {
		t.Errorf("k=0: got %v, want nil", got)
	}
	if got := SampleNodeIDs(10, -3, 1); got != nil {
		t.Errorf("k<0: got %v, want nil", got)
	}
	if got := SampleNodeIDs(0, 5, 1); got != nil {
		t.Errorf("n=0: got %v, want nil", got)
	}
	all := SampleNodeIDs(6, 99, 1)
	if len(all) != 6 {
		t.Fatalf("k>n: len = %d, want 6", len(all))
	}
	for i, u := range all {
		if int(u) != i {
			t.Errorf("k>n: identity order expected, got %v", all)
			break
		}
	}
}
