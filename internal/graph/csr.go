package graph

import (
	"fmt"
	"math"
)

// CSR is a compressed-sparse-row view of a Graph: the adjacency structure
// flattened into contiguous arrays so that traversal kernels (Brandes, BFS
// profiles, PageRank) index with integers instead of chasing per-node slices
// or hashing Edge keys. The paper's Phase 1 cost is dominated by exactly such
// kernels, and index-array adjacency is the SNAP-style substrate DESIGN.md §1
// promises for this package.
//
// Each undirected edge occupies two slots, one in each endpoint's range, so
// len(Targets) == 2·NumEdges(). A "slot" is an index into Targets/EdgeID/Mate.
// Node u owns slots Offsets[u] to Offsets[u+1] (exclusive), and within that
// range Targets is sorted ascending — the same order as Graph.Neighbors(u).
//
// The view is built once per graph, cached, and immutable; like the Graph it
// is derived from, it is safe for concurrent readers. All fields are exported
// for zero-overhead access in hot loops but must be treated as read-only.
type CSR struct {
	// Offsets has length NumNodes()+1. Node u's adjacency slots are
	// Offsets[u] .. Offsets[u+1]-1; Offsets[NumNodes()] == 2·NumEdges().
	Offsets []int32
	// Targets[s] is the neighbor occupying slot s.
	Targets []NodeID
	// EdgeID[s] is the canonical edge id of slot s: the position in
	// Graph.Edges() of the undirected edge the slot belongs to. The two
	// slots of an edge share one id, so per-edge accumulators indexed by
	// EdgeID are aligned with Graph.Edges() with no map lookup and no
	// Canonical() call.
	EdgeID []int32
	// Mate[s] is the reverse slot of s: if slot s sits in u's range and
	// targets w, then Mate[s] sits in w's range and targets u, with
	// EdgeID[s] == EdgeID[Mate[s]] and Mate[Mate[s]] == s.
	Mate []int32
	// EdgeU and EdgeV are the canonical endpoints of each edge, indexed by
	// edge id: EdgeU[i] <= EdgeV[i] and Graph.Edges()[i] == {EdgeU[i],
	// EdgeV[i]}. They are the structure-of-arrays twin of Graph.Edges() for
	// kernels whose inner loops index endpoints by edge id (the CRR swap
	// loop, targeted repair) and want no Edge struct values in flight.
	EdgeU, EdgeV []NodeID
}

// NumNodes returns the number of nodes in the underlying graph.
func (c *CSR) NumNodes() int { return len(c.Offsets) - 1 }

// NumSlots returns the number of adjacency slots, 2·NumEdges().
func (c *CSR) NumSlots() int { return len(c.Targets) }

// Degree returns the degree of node u.
func (c *CSR) Degree(u NodeID) int32 { return c.Offsets[u+1] - c.Offsets[u] }

// Neighbors returns u's slice of the Targets array (sorted ascending,
// identical contents to Graph.Neighbors(u)). Read-only.
func (c *CSR) Neighbors(u NodeID) []NodeID {
	return c.Targets[c.Offsets[u]:c.Offsets[u+1]]
}

// EdgeIDOf returns the canonical edge id of the undirected edge (u, v), or
// -1 when the edge (or either endpoint) is absent. It binary-searches the
// smaller endpoint's sorted slot range, so the lookup is O(log deg) over
// contiguous arrays — the flat replacement for hashing a map[Edge] key.
func (c *CSR) EdgeIDOf(u, v NodeID) int32 {
	if u < 0 || v < 0 || int(u) >= c.NumNodes() || int(v) >= c.NumNodes() || u == v {
		return -1
	}
	if c.Degree(u) > c.Degree(v) {
		u, v = v, u
	}
	lo, hi := int(c.Offsets[u]), int(c.Offsets[u+1])
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.Targets[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < int(c.Offsets[u+1]) && c.Targets[lo] == v {
		return c.EdgeID[lo]
	}
	return -1
}

// CSR returns the graph's compressed-sparse-row view, building it on first
// use and caching it for the graph's lifetime. Concurrent callers are safe:
// the build happens exactly once.
func (g *Graph) CSR() *CSR {
	g.csrOnce.Do(func() { g.csr = buildCSR(g) })
	return g.csr
}

// csrBounds reports whether a graph with n nodes and m edges fits the CSR's
// int32 index space: node ids must fit NodeID, and the 2m half-edge slots
// must be addressable by int32 (Offsets, EdgeID and Mate are all int32).
// Without this check a graph just over the limit would silently wrap slot
// indices and corrupt the view; with it, oversized graphs fail loudly here
// and in the writers that reuse the check (WriteBinary, WritePacked).
func csrBounds(n, m int) error {
	if int64(n) > math.MaxInt32 {
		return fmt.Errorf("graph: %d nodes overflow int32 node ids (max %d)", n, math.MaxInt32)
	}
	if int64(m) > math.MaxInt32/2 {
		return fmt.Errorf("graph: %d edges need %d CSR slots, overflowing int32 slot indices (max %d edges)",
			m, 2*int64(m), math.MaxInt32/2)
	}
	return nil
}

// buildCSR flattens g's adjacency in one pass over the sorted edge list.
//
// Because Edges() is sorted by (U, V) with U < V, scanning it in order
// appends each node's neighbors in ascending order: for node u, all partners
// a < u arrive first (from edges (a, u), globally sorted by a), then all
// partners b > u (from the contiguous (u, b) block, sorted by b). The
// resulting Targets ranges therefore match Neighbors() exactly, and the two
// slots of edge i are linked as mates as they are written.
func buildCSR(g *Graph) *CSR {
	n := g.NumNodes()
	m := g.NumEdges()
	if err := csrBounds(n, m); err != nil {
		// CSR() has no error path (the view is built lazily inside cached
		// accessors); corrupting indices silently is the one unacceptable
		// outcome, so overflow is a loud stop.
		panic(err)
	}
	c := &CSR{
		Offsets: make([]int32, n+1),
		Targets: make([]NodeID, 2*m),
		EdgeID:  make([]int32, 2*m),
		Mate:    make([]int32, 2*m),
		EdgeU:   make([]NodeID, m),
		EdgeV:   make([]NodeID, m),
	}
	for _, e := range g.edges {
		c.Offsets[e.U+1]++
		c.Offsets[e.V+1]++
	}
	for u := 0; u < n; u++ {
		c.Offsets[u+1] += c.Offsets[u]
	}
	// cur[u] is the next free slot in u's range during the fill pass.
	cur := make([]int32, n)
	copy(cur, c.Offsets[:n])
	for i, e := range g.edges {
		su, sv := cur[e.U], cur[e.V]
		cur[e.U]++
		cur[e.V]++
		c.Targets[su] = e.V
		c.Targets[sv] = e.U
		c.EdgeID[su] = int32(i)
		c.EdgeID[sv] = int32(i)
		c.Mate[su] = sv
		c.Mate[sv] = su
		c.EdgeU[i] = e.U
		c.EdgeV[i] = e.V
	}
	return c
}
