package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testEdgeListText builds a messy SNAP-style edge list with sparse 64-bit
// labels, duplicates, self-loops and comments, deterministic in seed.
func testEdgeListText(n, lines int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	sb.WriteString("# test graph\n")
	for i := 0; i < lines; i++ {
		u := rng.Int63n(int64(n))*1000 - 5000
		v := rng.Int63n(int64(n))*1000 - 5000
		fmt.Fprintf(&sb, "%d %d\n", u, v)
	}
	return sb.String()
}

// loadTestGraph parses a testEdgeListText input in RAM.
func loadTestGraph(t *testing.T, text string) (*Graph, *Remapper) {
	t.Helper()
	g, rm, err := ReadEdgeList(strings.NewReader(text))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	return g, rm
}

// packToFile writes g to a temp .esc file and returns the path.
func packToFile(t *testing.T, g *Graph, rm *Remapper, opt PackWriteOptions) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.esc")
	if err := WritePackedFile(path, g, rm, opt); err != nil {
		t.Fatalf("WritePackedFile: %v", err)
	}
	return path
}

// requireSameGraph asserts two graphs have identical CSR views and edge
// lists, and that their remappers agree on every label.
func requireSameGraph(t *testing.T, got, want *Graph, gotRM, wantRM *Remapper) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("shape: got |V|=%d |E|=%d, want |V|=%d |E|=%d",
			got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	ge, we := got.Edges(), want.Edges()
	for i := range we {
		if ge[i] != we[i] {
			t.Fatalf("edge %d: got %v, want %v", i, ge[i], we[i])
		}
	}
	gc, wc := got.CSR(), want.CSR()
	for name, pair := range map[string][2][]int32{
		"Offsets": {gc.Offsets, wc.Offsets},
		"Targets": {gc.Targets, wc.Targets},
		"EdgeID":  {gc.EdgeID, wc.EdgeID},
		"Mate":    {gc.Mate, wc.Mate},
		"EdgeU":   {gc.EdgeU, wc.EdgeU},
		"EdgeV":   {gc.EdgeV, wc.EdgeV},
	} {
		if len(pair[0]) != len(pair[1]) {
			t.Fatalf("CSR %s length: got %d, want %d", name, len(pair[0]), len(pair[1]))
		}
		for i := range pair[1] {
			if pair[0][i] != pair[1][i] {
				t.Fatalf("CSR %s[%d]: got %d, want %d", name, i, pair[0][i], pair[1][i])
			}
		}
	}
	if (gotRM == nil) != (wantRM == nil) {
		t.Fatalf("remapper presence: got %v, want %v", gotRM != nil, wantRM != nil)
	}
	if wantRM != nil {
		if gotRM.Len() != wantRM.Len() {
			t.Fatalf("remapper size: got %d, want %d", gotRM.Len(), wantRM.Len())
		}
		for u := 0; u < wantRM.Len(); u++ {
			if gotRM.Label(NodeID(u)) != wantRM.Label(NodeID(u)) {
				t.Fatalf("label of %d: got %d, want %d", u, gotRM.Label(NodeID(u)), wantRM.Label(NodeID(u)))
			}
		}
	}
}

func TestPackedRoundTrip(t *testing.T) {
	g, rm := loadTestGraph(t, testEdgeListText(300, 2000, 1))
	path := packToFile(t, g, rm, PackWriteOptions{})
	p, err := OpenPacked(path)
	if err != nil {
		t.Fatalf("OpenPacked: %v", err)
	}
	defer p.Close()
	if p.DegreeOrdered {
		t.Error("OrderKeep file claims DegreeOrdered")
	}
	requireSameGraph(t, p.Graph(), g, p.Remapper(), rm)
	if err := p.Graph().Validate(); err != nil {
		t.Errorf("packed graph invalid: %v", err)
	}
	// Neighbors must work through the aliased adjacency.
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		gn, wn := p.Graph().Neighbors(u), g.Neighbors(u)
		if len(gn) != len(wn) {
			t.Fatalf("node %d degree: got %d, want %d", u, len(gn), len(wn))
		}
	}
}

func TestPackedIdentityLabels(t *testing.T) {
	// Dense 0..n-1 input in order: labels are the identity and the Labels
	// section must be omitted.
	g := MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	dense := packToFile(t, g, nil, PackWriteOptions{})
	fi, err := os.Stat(dense)
	if err != nil {
		t.Fatal(err)
	}
	wantSize := newPackLayout(4, 3, true).total
	if fi.Size() != wantSize {
		t.Errorf("identity-labels file is %d bytes, want %d (Labels section should be omitted)", fi.Size(), wantSize)
	}
	p, err := OpenPacked(dense)
	if err != nil {
		t.Fatalf("OpenPacked: %v", err)
	}
	defer p.Close()
	for u := NodeID(0); u < 4; u++ {
		if p.Remapper().Label(u) != int64(u) {
			t.Errorf("identity label of %d = %d", u, p.Remapper().Label(u))
		}
	}
}

func TestPackedDegreeOrder(t *testing.T) {
	g, rm := loadTestGraph(t, testEdgeListText(100, 600, 3))
	path := packToFile(t, g, rm, PackWriteOptions{Order: OrderDegree})
	p, err := OpenPacked(path)
	if err != nil {
		t.Fatalf("OpenPacked: %v", err)
	}
	defer p.Close()
	if !p.DegreeOrdered {
		t.Error("OrderDegree file does not claim DegreeOrdered")
	}
	pg := p.Graph()
	if pg.NumNodes() != g.NumNodes() || pg.NumEdges() != g.NumEdges() {
		t.Fatalf("shape changed by relabel: |V|=%d |E|=%d", pg.NumNodes(), pg.NumEdges())
	}
	for u := 1; u < pg.NumNodes(); u++ {
		if pg.Degree(NodeID(u)) > pg.Degree(NodeID(u-1)) {
			t.Fatalf("degrees not descending: deg(%d)=%d > deg(%d)=%d",
				u, pg.Degree(NodeID(u)), u-1, pg.Degree(NodeID(u-1)))
		}
	}
	// The edge multiset under original labels must be preserved.
	want := make(map[[2]int64]bool, g.NumEdges())
	for _, e := range g.Edges() {
		a, b := rm.Label(e.U), rm.Label(e.V)
		if a > b {
			a, b = b, a
		}
		want[[2]int64{a, b}] = true
	}
	for _, e := range pg.Edges() {
		a, b := p.Remapper().Label(e.U), p.Remapper().Label(e.V)
		if a > b {
			a, b = b, a
		}
		if !want[[2]int64{a, b}] {
			t.Fatalf("edge (%d,%d) not in the original graph", a, b)
		}
		delete(want, [2]int64{a, b})
	}
	if len(want) != 0 {
		t.Fatalf("%d original edges missing after relabel", len(want))
	}
}

func TestSaveLoadFilePacked(t *testing.T) {
	g, rm := loadTestGraph(t, testEdgeListText(50, 200, 5))
	path := filepath.Join(t.TempDir(), "g.esc")
	if err := SaveFile(path, g, rm); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	g2, rm2, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	requireSameGraph(t, g2, g, rm2, rm)
}

// rewritePacked applies mutate to a packed file's bytes and rewrites it
// with a freshly recomputed payload checksum, so structural corruption
// reaches validatePacked rather than being caught by the CRC.
func rewritePacked(t *testing.T, path string, mutate func(data []byte)) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutate(data)
	binary.LittleEndian.PutUint64(data[32:40], uint64(crc32.Checksum(data[packHeaderSize:], castagnoli)))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestPackedCorruption(t *testing.T) {
	g, rm := loadTestGraph(t, testEdgeListText(60, 300, 7))
	pack := func(t *testing.T) string { return packToFile(t, g, rm, PackWriteOptions{}) }
	mustFail := func(t *testing.T, path, wantSub string) {
		t.Helper()
		if _, err := OpenPacked(path); err == nil {
			t.Fatalf("corrupt file opened cleanly (want error containing %q)", wantSub)
		} else if !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("error %q does not mention %q", err, wantSub)
		}
	}

	t.Run("truncated", func(t *testing.T) {
		path := pack(t)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)-16], 0o644); err != nil {
			t.Fatal(err)
		}
		mustFail(t, path, "truncated or corrupt")
	})
	t.Run("header-only", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "tiny.esc")
		if err := os.WriteFile(path, []byte("ESC1"), 0o644); err != nil {
			t.Fatal(err)
		}
		mustFail(t, path, "truncated")
	})
	t.Run("bad-magic", func(t *testing.T) {
		path := pack(t)
		rewritePacked(t, path, func(data []byte) { data[0] = 'X' })
		mustFail(t, path, "bad packed magic")
	})
	t.Run("bad-version", func(t *testing.T) {
		path := pack(t)
		rewritePacked(t, path, func(data []byte) {
			binary.LittleEndian.PutUint32(data[4:8], 99)
		})
		mustFail(t, path, "unsupported packed format version")
	})
	t.Run("checksum-mismatch", func(t *testing.T) {
		path := pack(t)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0x40 // flip payload bits, leave the header CRC
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		mustFail(t, path, "checksum")
	})
	t.Run("oversized-counts", func(t *testing.T) {
		path := pack(t)
		rewritePacked(t, path, func(data []byte) {
			binary.LittleEndian.PutUint64(data[16:24], uint64(1)<<40)
		})
		mustFail(t, path, "int32")
	})
	t.Run("non-canonical-edge-order", func(t *testing.T) {
		path := pack(t)
		l := newPackLayout(g.NumNodes(), g.NumEdges(), false)
		rewritePacked(t, path, func(data []byte) {
			// Swap edges 0 and 1 consistently across EdgeU, EdgeV, and the
			// interleaved EdgeUV section, so the per-edge sections still
			// agree and only the ordering invariant is violated.
			swap := func(off, width int64) {
				a := data[off : off+width]
				b := data[off+width : off+2*width]
				tmp := make([]byte, width)
				copy(tmp, a)
				copy(a, b)
				copy(b, tmp)
			}
			swap(l.edgeUOff, 4)
			swap(l.edgeVOff, 4)
			swap(l.edgeUVOff, 8)
		})
		mustFail(t, path, "canonical")
	})
	t.Run("broken-offsets", func(t *testing.T) {
		path := pack(t)
		l := newPackLayout(g.NumNodes(), g.NumEdges(), false)
		rewritePacked(t, path, func(data []byte) {
			// Offsets[1] beyond Offsets[2] breaks monotonicity.
			binary.LittleEndian.PutUint32(data[l.offsetsOff+4:], uint32(2*g.NumEdges())+7)
		})
		mustFail(t, path, "")
	})
	t.Run("broken-mate-involution", func(t *testing.T) {
		// An in-bounds but wrong mate pointer passes the load-time bounds
		// sweep (by design — the deep cross-checks are Verify's job) and is
		// caught by PackedGraph.Verify.
		path := pack(t)
		l := newPackLayout(g.NumNodes(), g.NumEdges(), false)
		rewritePacked(t, path, func(data []byte) {
			mate0 := binary.LittleEndian.Uint32(data[l.mateOff:])
			binary.LittleEndian.PutUint32(data[l.mateOff:], (mate0+1)%uint32(2*g.NumEdges()))
		})
		p, err := OpenPacked(path)
		if err != nil {
			t.Fatalf("bounds-clean mate corruption rejected at load: %v", err)
		}
		defer p.Close()
		if err := p.Verify(); err == nil {
			t.Fatal("Verify accepted a broken mate involution")
		}
	})
	t.Run("verify-clean", func(t *testing.T) {
		p, err := OpenPacked(pack(t))
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		if err := p.Verify(); err != nil {
			t.Errorf("Verify rejected a well-formed file: %v", err)
		}
	})
}

// TestWritePackedStreams pins that WritePacked works against a plain
// io.Writer (no Seek): the checksum pass runs before the emit pass.
func TestWritePackedStreams(t *testing.T) {
	g, rm := loadTestGraph(t, testEdgeListText(40, 150, 11))
	var buf bytes.Buffer
	if err := WritePacked(&buf, g, rm, PackWriteOptions{}); err != nil {
		t.Fatalf("WritePacked: %v", err)
	}
	p, err := loadPacked(buf.Bytes(), int64(buf.Len()))
	if err != nil {
		t.Fatalf("loadPacked of streamed bytes: %v", err)
	}
	requireSameGraph(t, p.Graph(), g, p.Remapper(), rm)
}
