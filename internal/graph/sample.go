package graph

import "math/rand"

// SampleNodeIDs draws k distinct node ids uniformly at random from [0, n)
// using a partial Fisher–Yates shuffle over a sparse swap map, so the draw
// costs O(k) time and memory rather than the O(n) of materializing a full
// permutation. The sequence is deterministic for a given seed: the first k
// entries equal those of rand.New(rand.NewSource(seed)).Perm(n) under the
// same swap rule. k <= 0 returns nil; k >= n returns the identity order
// 0..n-1 (every node, unshuffled).
func SampleNodeIDs(n, k int, seed int64) []NodeID {
	if k <= 0 || n <= 0 {
		return nil
	}
	if k >= n {
		all := make([]NodeID, n)
		for i := range all {
			all[i] = NodeID(i)
		}
		return all
	}
	rng := rand.New(rand.NewSource(seed))
	// swapped[j] holds the value a full Fisher–Yates pass would have left at
	// position j; absent keys still hold their identity value.
	swapped := make(map[int]int, k)
	out := make([]NodeID, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		vj, ok := swapped[j]
		if !ok {
			vj = j
		}
		vi, ok := swapped[i]
		if !ok {
			vi = i
		}
		out[i] = NodeID(vj)
		swapped[j] = vi
	}
	return out
}
