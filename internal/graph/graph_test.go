package graph

import (
	"math/rand"
	"testing"
)

// path5 returns the path graph 0-1-2-3-4.
func path5() *Graph {
	return MustFromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
}

func TestEdgeCanonical(t *testing.T) {
	if got := (Edge{3, 1}).Canonical(); got != (Edge{1, 3}) {
		t.Errorf("Canonical(3,1) = %v, want (1,3)", got)
	}
	if got := (Edge{1, 3}).Canonical(); got != (Edge{1, 3}) {
		t.Errorf("Canonical(1,3) = %v, want (1,3)", got)
	}
	if got := (Edge{2, 2}).Canonical(); got != (Edge{2, 2}) {
		t.Errorf("Canonical(2,2) = %v, want (2,2)", got)
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{2, 7}
	if got := e.Other(2); got != 7 {
		t.Errorf("Other(2) = %d, want 7", got)
	}
	if got := e.Other(7); got != 2 {
		t.Errorf("Other(7) = %d, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Other on non-endpoint did not panic")
		}
	}()
	e.Other(5)
}

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Errorf("zero Graph: |V|=%d |E|=%d, want 0, 0", g.NumNodes(), g.NumEdges())
	}
	if g.AvgDegree() != 0 {
		t.Errorf("zero Graph AvgDegree = %v, want 0", g.AvgDegree())
	}
	if g.MaxDegree() != 0 {
		t.Errorf("zero Graph MaxDegree = %v, want 0", g.MaxDegree())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("zero Graph invalid: %v", err)
	}
}

func TestPathGraphBasics(t *testing.T) {
	g := path5()
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4", g.NumEdges())
	}
	wantDeg := []int{1, 2, 2, 2, 1}
	for u, want := range wantDeg {
		if got := g.Degree(NodeID(u)); got != want {
			t.Errorf("Degree(%d) = %d, want %d", u, got, want)
		}
	}
	if got := g.AvgDegree(); got != 1.6 {
		t.Errorf("AvgDegree = %v, want 1.6", got)
	}
	if got := g.MaxDegree(); got != 2 {
		t.Errorf("MaxDegree = %v, want 2", got)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestHasEdge(t *testing.T) {
	g := path5()
	cases := []struct {
		u, v NodeID
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {2, 3, true},
		{0, 2, false}, {4, 0, false},
		{0, 0, false},         // self-loop never present
		{-1, 2, false},        // out of range low
		{0, 99, false},        // out of range high
		{NodeID(5), 0, false}, // just past end
		{3, NodeID(4), true},  // last edge
		{NodeID(4), 3, true},  // reversed last edge
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := MustFromEdges(4, []Edge{{3, 1}, {1, 0}, {2, 1}})
	got := g.Neighbors(1)
	want := []NodeID{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Neighbors(1) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors(1) = %v, want %v", got, want)
		}
	}
}

func TestNewFromEdgesErrors(t *testing.T) {
	if _, err := NewFromEdges(3, []Edge{{0, 0}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := NewFromEdges(3, []Edge{{0, 3}}); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if _, err := NewFromEdges(3, []Edge{{0, 1}, {1, 0}}); err == nil {
		t.Error("reversed duplicate accepted")
	}
	if _, err := NewFromEdges(3, []Edge{{0, 1}, {0, 1}}); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := path5()
	c := g.Clone()
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Fatalf("clone shape mismatch: %v vs %v", c, g)
	}
	// Mutate the clone's backing arrays; the original must be unaffected.
	c.adj[0][0] = 99
	c.edges[0] = Edge{9, 9}
	if g.adj[0][0] == 99 || g.edges[0] == (Edge{9, 9}) {
		t.Error("Clone shares memory with original")
	}
}

func TestSubgraph(t *testing.T) {
	g := path5()
	sub, err := g.Subgraph([]Edge{{1, 0}, {2, 3}})
	if err != nil {
		t.Fatalf("Subgraph: %v", err)
	}
	if sub.NumNodes() != 5 {
		t.Errorf("subgraph keeps node set: |V| = %d, want 5", sub.NumNodes())
	}
	if sub.NumEdges() != 2 {
		t.Errorf("subgraph |E| = %d, want 2", sub.NumEdges())
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(2, 3) || sub.HasEdge(1, 2) {
		t.Errorf("subgraph has wrong edges: %v", sub.Edges())
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("subgraph invalid: %v", err)
	}
}

func TestSubgraphRejectsForeignEdge(t *testing.T) {
	g := path5()
	if _, err := g.Subgraph([]Edge{{0, 4}}); err == nil {
		t.Error("foreign edge accepted into subgraph")
	}
}

func TestEdgeSet(t *testing.T) {
	g := path5()
	s := g.EdgeSet()
	if len(s) != 4 {
		t.Fatalf("EdgeSet size = %d, want 4", len(s))
	}
	for _, e := range g.Edges() {
		if _, ok := s[e]; !ok {
			t.Errorf("edge %v missing from set", e)
		}
	}
}

func TestDegreesMatchAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBuilder(50)
	for i := 0; i < 200; i++ {
		b.TryAddEdge(NodeID(rng.Intn(50)), NodeID(rng.Intn(50)))
	}
	g := b.Graph()
	d := g.Degrees()
	sum := 0
	for u, du := range d {
		if du != g.Degree(NodeID(u)) {
			t.Errorf("Degrees()[%d] = %d != Degree = %d", u, du, g.Degree(NodeID(u)))
		}
		sum += du
	}
	if sum != 2*g.NumEdges() {
		t.Errorf("handshake: sum deg = %d, want %d", sum, 2*g.NumEdges())
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := path5()
	sub, err := g.InducedSubgraph([]NodeID{0, 1, 2, 4})
	if err != nil {
		t.Fatalf("InducedSubgraph: %v", err)
	}
	// Edges fully inside {0,1,2,4}: (0,1) and (1,2); (3,4) drops out.
	if sub.NumEdges() != 2 || !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) {
		t.Errorf("induced edges = %v, want (0,1),(1,2)", sub.Edges())
	}
	if sub.HasEdge(3, 4) {
		t.Error("edge with excluded endpoint kept")
	}
	// Duplicates tolerated, out-of-range rejected.
	if _, err := g.InducedSubgraph([]NodeID{1, 1, 2}); err != nil {
		t.Errorf("duplicate nodes rejected: %v", err)
	}
	if _, err := g.InducedSubgraph([]NodeID{99}); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestDensity(t *testing.T) {
	if got := path5().Density(); got != 4.0/10.0 {
		t.Errorf("P5 density = %v, want 0.4", got)
	}
	var empty Graph
	if empty.Density() != 0 {
		t.Error("empty density != 0")
	}
	if got := MustFromEdges(1, nil).Density(); got != 0 {
		t.Errorf("singleton density = %v, want 0", got)
	}
}

func TestBytesScalesWithEdges(t *testing.T) {
	small := path5()
	big := MustFromEdges(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}, {2, 3}})
	if small.Bytes() >= big.Bytes() {
		t.Errorf("Bytes: %d-edge graph %d >= %d-edge graph %d",
			small.NumEdges(), small.Bytes(), big.NumEdges(), big.Bytes())
	}
	var empty Graph
	if empty.Bytes() <= 0 {
		t.Error("empty graph reports non-positive bytes")
	}
}

func TestGraphString(t *testing.T) {
	g := path5()
	if got, want := g.String(), "graph{|V|=5 |E|=4}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got, want := (Edge{1, 2}).String(), "(1,2)"; got != want {
		t.Errorf("Edge.String = %q, want %q", got, want)
	}
}

func TestSubgraphByIDsMatchesSubgraph(t *testing.T) {
	g := microTestGraph(t, 150, 500)
	rng := rand.New(rand.NewSource(3))
	all := g.Edges()
	for trial := 0; trial < 10; trial++ {
		var ids []int32
		var edges []Edge
		for i := range all {
			if rng.Intn(3) == 0 {
				ids = append(ids, int32(i))
				edges = append(edges, all[i])
			}
		}
		fast, err := g.SubgraphByIDs(ids)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := g.Subgraph(edges)
		if err != nil {
			t.Fatal(err)
		}
		if err := fast.Validate(); err != nil {
			t.Fatalf("SubgraphByIDs result invalid: %v", err)
		}
		if fast.NumNodes() != slow.NumNodes() || fast.NumEdges() != slow.NumEdges() {
			t.Fatalf("shape (%d,%d) != (%d,%d)", fast.NumNodes(), fast.NumEdges(), slow.NumNodes(), slow.NumEdges())
		}
		fe, se := fast.Edges(), slow.Edges()
		for i := range fe {
			if fe[i] != se[i] {
				t.Fatalf("edge %d: %v != %v", i, fe[i], se[i])
			}
		}
		for u := 0; u < fast.NumNodes(); u++ {
			fn, sn := fast.Neighbors(NodeID(u)), slow.Neighbors(NodeID(u))
			if len(fn) != len(sn) {
				t.Fatalf("node %d: degree %d != %d", u, len(fn), len(sn))
			}
			for i := range fn {
				if fn[i] != sn[i] {
					t.Fatalf("node %d neighbor %d: %d != %d", u, i, fn[i], sn[i])
				}
			}
		}
	}
}

func TestSubgraphByIDsRejectsBadInput(t *testing.T) {
	g := microTestGraph(t, 50, 120)
	for name, ids := range map[string][]int32{
		"descending":   {3, 1},
		"duplicate":    {2, 2},
		"negative":     {-1},
		"out-of-range": {0, int32(g.NumEdges())},
	} {
		if _, err := g.SubgraphByIDs(ids); err == nil {
			t.Errorf("%s ids accepted", name)
		}
	}
	empty, err := g.SubgraphByIDs(nil)
	if err != nil {
		t.Fatalf("empty id set rejected: %v", err)
	}
	if empty.NumEdges() != 0 || empty.NumNodes() != g.NumNodes() {
		t.Errorf("empty subgraph shape (%d,%d)", empty.NumNodes(), empty.NumEdges())
	}
}
