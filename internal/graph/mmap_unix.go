//go:build unix

package graph

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps size bytes of f into memory. With write set the mapping is
// shared read-write, so stores land in the file (the external-sort packer
// fills output arrays through such a mapping and lets the page cache absorb
// the random writes). The returned release func unmaps; for read-only
// graph loads callers may simply never call it — a mapping costs no heap
// and lives until process exit.
func mapFile(f *os.File, size int64, write bool) (data []byte, release func() error, err error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	prot := syscall.PROT_READ
	if write {
		prot |= syscall.PROT_WRITE
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), prot, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: mmap %s (%d bytes): %w", f.Name(), size, err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

// flushMap writes a read-write mapping's dirty pages back to the file. On
// unix the shared mapping already aliases the page cache, so this is msync
// for durability before the checksum re-read.
func flushMap(f *os.File, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	// msync(MS_SYNC) via RawSyscall keeps this file syscall-only; Sync on
	// the fd afterwards covers metadata.
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(dataPtr(data)), uintptr(len(data)), uintptr(syscall.MS_SYNC))
	if errno != 0 {
		return fmt.Errorf("graph: msync: %w", errno)
	}
	return nil
}
