package graph

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// seedReadEdgeList is the seed-era loader, kept verbatim as the oracle: the
// rewritten parallel loader must be bit-identical to it on every input —
// graph, remapper and error messages alike.
func seedReadEdgeList(r io.Reader) (*Graph, *Remapper, error) {
	rm := NewRemapper()
	b := NewBuilder(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: expected two fields, got %q", lineNo, line)
		}
		x, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad node id %q: %v", lineNo, fields[0], err)
		}
		y, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad node id %q: %v", lineNo, fields[1], err)
		}
		u, v := rm.ID(x), rm.ID(y)
		b.Grow(rm.Len())
		b.TryAddEdge(u, v)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return b.Graph(), rm, nil
}

// requireSameLoad asserts the new loader and the oracle agree exactly on
// input, at the given worker count.
func requireSameLoad(t *testing.T, input string, workers int) {
	t.Helper()
	wantG, wantRM, wantErr := seedReadEdgeList(strings.NewReader(input))
	gotG, gotRM, gotErr := ReadEdgeListOpts(strings.NewReader(input), EdgeListOptions{Workers: workers})
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("error mismatch: oracle=%v new=%v", wantErr, gotErr)
	}
	if wantErr != nil {
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("error text mismatch:\noracle: %s\nnew:    %s", wantErr, gotErr)
		}
		return
	}
	if gotG.NumNodes() != wantG.NumNodes() || gotG.NumEdges() != wantG.NumEdges() {
		t.Fatalf("shape mismatch: new |V|=%d |E|=%d, oracle |V|=%d |E|=%d",
			gotG.NumNodes(), gotG.NumEdges(), wantG.NumNodes(), wantG.NumEdges())
	}
	wantEdges, gotEdges := wantG.Edges(), gotG.Edges()
	for i := range wantEdges {
		if wantEdges[i] != gotEdges[i] {
			t.Fatalf("edge %d mismatch: new %v, oracle %v", i, gotEdges[i], wantEdges[i])
		}
	}
	if gotRM.Len() != wantRM.Len() {
		t.Fatalf("remapper size mismatch: new %d, oracle %d", gotRM.Len(), wantRM.Len())
	}
	for u := 0; u < wantRM.Len(); u++ {
		if gotRM.Label(NodeID(u)) != wantRM.Label(NodeID(u)) {
			t.Fatalf("label of id %d: new %d, oracle %d", u, gotRM.Label(NodeID(u)), wantRM.Label(NodeID(u)))
		}
	}
	if err := gotG.Validate(); err != nil {
		t.Fatalf("new loader's graph invalid: %v", err)
	}
}

func TestSnapLoaderOracleHandwritten(t *testing.T) {
	inputs := []string{
		"",
		"\n\n\n",
		"# only a comment\n",
		sampleEdgeList,
		"1 2\n2 3\n3 1\n",
		"1 2",                   // no trailing newline
		"1\t2\r\n2\t3\r\n",      // tabs and CRLF
		"  5   6  \n\t7\t8\t\n", // padded fields
		"1 2 99 extra fields ignored\n2 3\n",
		"9999999999 -123\n-123 0\n0 9999999999\n", // 64-bit and negative labels
		"5 5\n5 6\n6 5\n",                         // self-loop + reversed duplicate
		"# c\n\n1 2\n# c\n2 1\n\n",
	}
	for i, in := range inputs {
		for _, workers := range []int{1, 3} {
			t.Run(fmt.Sprintf("input%d/workers%d", i, workers), func(t *testing.T) {
				requireSameLoad(t, in, workers)
			})
		}
	}
}

func TestSnapLoaderOracleErrors(t *testing.T) {
	inputs := []string{
		"1 2\n3\n4 5\n",                 // too few fields, line 2
		"1 2\n\n# c\nx 5\n",             // bad first id after skipped lines, line 4
		"1 2\n3 y\n",                    // bad second id
		"1 2\n3 99999999999999999999\n", // out-of-range int64
		"1 2\n4 5.5\n",                  // float id
		"   \nonefield   \n",            // whitespace-padded single field
	}
	for i, in := range inputs {
		t.Run(fmt.Sprintf("input%d", i), func(t *testing.T) {
			requireSameLoad(t, in, 2)
		})
	}
}

// TestSnapLoaderOracleRandomLarge pushes a multi-chunk input (bigger than
// ingestChunkSize) through both loaders: chunk-boundary handling, the
// parallel group path and first-seen remap determinism all get exercised.
func TestSnapLoaderOracleRandomLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-MB input in -short mode")
	}
	rng := rand.New(rand.NewSource(42))
	var sb strings.Builder
	for sb.Len() < ingestChunkSize+ingestChunkSize/2 {
		switch rng.Intn(10) {
		case 0:
			sb.WriteString("# comment line\n")
		case 1:
			sb.WriteString("\n")
		default:
			// Labels from a small pool force duplicates and self-loops.
			fmt.Fprintf(&sb, "%d %d\n", rng.Int63n(50000)-1000, rng.Int63n(50000)-1000)
		}
	}
	in := sb.String()
	requireSameLoad(t, in, 4)

	// Worker count must not change the result.
	g1, rm1, err := ReadEdgeListOpts(strings.NewReader(in), EdgeListOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	g8, rm8, err := ReadEdgeListOpts(strings.NewReader(in), EdgeListOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumNodes() != g8.NumNodes() || g1.NumEdges() != g8.NumEdges() || rm1.Len() != rm8.Len() {
		t.Fatalf("worker count changed the load: w1 |V|=%d |E|=%d, w8 |V|=%d |E|=%d",
			g1.NumNodes(), g1.NumEdges(), g8.NumNodes(), g8.NumEdges())
	}
	e1, e8 := g1.Edges(), g8.Edges()
	for i := range e1 {
		if e1[i] != e8[i] {
			t.Fatalf("edge %d differs across worker counts", i)
		}
	}
}

// TestParseInt64MatchesStrconv pins the manual parser to
// strconv.ParseInt(s, 10, 64) on every edge case that matters.
func TestParseInt64MatchesStrconv(t *testing.T) {
	cases := []string{
		"0", "1", "-1", "+7", "007", "123456789",
		"9223372036854775807", "9223372036854775808",
		"-9223372036854775808", "-9223372036854775809",
		"18446744073709551616", "99999999999999999999999",
		"", "-", "+", "+-1", "--1", "1a", "a1", "1.5", " 1", "1 ",
	}
	for _, s := range cases {
		want, werr := strconv.ParseInt(s, 10, 64)
		got, ok := parseInt64([]byte(s))
		if ok != (werr == nil) {
			t.Errorf("parseInt64(%q) ok=%v, strconv err=%v", s, ok, werr)
			continue
		}
		if ok && got != want {
			t.Errorf("parseInt64(%q) = %d, strconv = %d", s, got, want)
		}
	}
}

// TestScanEdgeListEmitError pins that an emit error (a full spill disk, in
// the external-sort packer) aborts the scan immediately.
func TestScanEdgeListEmitError(t *testing.T) {
	wantErr := fmt.Errorf("spill failed")
	_, err := scanEdgeList(strings.NewReader("1 2\n3 4\n"), EdgeListOptions{}, func(uint64) error {
		return wantErr
	})
	if err != wantErr {
		t.Fatalf("scanEdgeList error = %v, want %v", err, wantErr)
	}
}
