package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(4)
	if err := b.AddEdge(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := b.AddEdge(-1, 2); err == nil {
		t.Error("negative endpoint accepted")
	}
	if err := b.AddEdge(0, 4); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if err := b.AddEdge(1, 0); err == nil {
		t.Error("reversed duplicate accepted")
	}
}

func TestBuilderTryAddEdge(t *testing.T) {
	b := NewBuilder(3)
	if !b.TryAddEdge(0, 1) {
		t.Error("first add refused")
	}
	if b.TryAddEdge(1, 0) {
		t.Error("reversed duplicate added")
	}
	if b.TryAddEdge(2, 2) {
		t.Error("self-loop added")
	}
	if b.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", b.NumEdges())
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range TryAddEdge did not panic")
		}
	}()
	b.TryAddEdge(0, 3)
}

func TestBuilderGrow(t *testing.T) {
	b := NewBuilder(2)
	b.Grow(5)
	if b.NumNodes() != 5 {
		t.Errorf("NumNodes after Grow = %d, want 5", b.NumNodes())
	}
	b.Grow(3) // shrink is a no-op
	if b.NumNodes() != 5 {
		t.Errorf("NumNodes after shrinking Grow = %d, want 5", b.NumNodes())
	}
	if err := b.AddEdge(0, 4); err != nil {
		t.Errorf("edge to grown node rejected: %v", err)
	}
}

func TestZeroBuilder(t *testing.T) {
	var b Builder
	g := b.Graph()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Errorf("zero builder graph = %v, want empty", g)
	}
	b.Grow(2)
	if !b.TryAddEdge(0, 1) {
		t.Error("zero builder unusable after Grow")
	}
}

func TestBuilderHasEdge(t *testing.T) {
	b := NewBuilder(3)
	b.TryAddEdge(2, 0)
	if !b.HasEdge(0, 2) || !b.HasEdge(2, 0) {
		t.Error("HasEdge misses added edge")
	}
	if b.HasEdge(0, 1) {
		t.Error("HasEdge reports absent edge")
	}
}

func TestBuilderReuseAfterGraph(t *testing.T) {
	b := NewBuilder(3)
	b.TryAddEdge(0, 1)
	g1 := b.Graph()
	b.TryAddEdge(1, 2)
	g2 := b.Graph()
	if g1.NumEdges() != 1 {
		t.Errorf("g1 mutated by later builds: |E| = %d, want 1", g1.NumEdges())
	}
	if g2.NumEdges() != 2 {
		t.Errorf("g2 |E| = %d, want 2", g2.NumEdges())
	}
}

// TestBuiltGraphAlwaysValid is the central property test: any sequence of
// TryAddEdge calls over any node count yields a graph satisfying Validate.
func TestBuiltGraphAlwaysValid(t *testing.T) {
	f := func(seed int64, nRaw uint8, mRaw uint16) bool {
		n := int(nRaw)%64 + 2
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(n)
		for i := 0; i < int(mRaw)%512; i++ {
			b.TryAddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g := b.Graph()
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRemapper(t *testing.T) {
	r := NewRemapper()
	a := r.ID(1000)
	bID := r.ID(-5)
	a2 := r.ID(1000)
	if a != a2 {
		t.Errorf("same label mapped to %d then %d", a, a2)
	}
	if a == bID {
		t.Error("distinct labels share a dense id")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
	if r.Label(a) != 1000 || r.Label(bID) != -5 {
		t.Errorf("labels round-trip wrong: %d, %d", r.Label(a), r.Label(bID))
	}
}

func TestNewBuilderNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBuilder(-1) did not panic")
		}
	}()
	NewBuilder(-1)
}
