package graph

import (
	"os"
	"path/filepath"
	"testing"
)

// The ingest trajectory pair (BENCH_ingest.json): parsing the text edge
// list from scratch versus mmap-loading the packed-CSR file. Same graph,
// same resulting in-memory view — the packed load skips all per-edge work,
// paying only the checksum and validation sweeps.

// benchIngestFixture writes the benchmark graph as both text and packed
// files under dir, returning the two paths.
func benchIngestFixture(b *testing.B, dir string) (txtPath, escPath string) {
	b.Helper()
	txtPath = filepath.Join(dir, "g.txt")
	escPath = filepath.Join(dir, "g.esc")
	text := testEdgeListText(20000, 200000, 17)
	if err := os.WriteFile(txtPath, []byte(text), 0o644); err != nil {
		b.Fatal(err)
	}
	g, rm, err := ReadEdgeListFile(txtPath)
	if err != nil {
		b.Fatal(err)
	}
	if err := WritePackedFile(escPath, g, rm, PackWriteOptions{}); err != nil {
		b.Fatal(err)
	}
	return txtPath, escPath
}

func BenchmarkIngestTextLoad(b *testing.B) {
	txtPath, _ := benchIngestFixture(b, b.TempDir())
	fi, err := os.Stat(txtPath)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fi.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, _, err := ReadEdgeListFile(txtPath)
		if err != nil {
			b.Fatal(err)
		}
		_ = g.NumEdges()
	}
}

func BenchmarkIngestPackedLoad(b *testing.B) {
	_, escPath := benchIngestFixture(b, b.TempDir())
	fi, err := os.Stat(escPath)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fi.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := OpenPacked(escPath)
		if err != nil {
			b.Fatal(err)
		}
		_ = p.Graph().NumEdges()
		if err := p.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngestExtsortPack tracks the out-of-core packer end to end with
// a budget that forces spilling.
func BenchmarkIngestExtsortPack(b *testing.B) {
	dir := b.TempDir()
	txtPath, _ := benchIngestFixture(b, dir)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := filepath.Join(dir, "bench.esc")
		if _, err := PackEdgeListFile(txtPath, out, PackOptions{MemBudget: 1 << 16, TmpDir: dir}); err != nil {
			b.Fatal(err)
		}
	}
}
