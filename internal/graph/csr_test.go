package graph

import (
	"math/rand"
	"sync"
	"testing"
)

func TestCSRMatchesAdjacency(t *testing.T) {
	g := microTestGraph(t, 200, 900)
	c := g.CSR()
	if c.NumNodes() != g.NumNodes() {
		t.Fatalf("CSR nodes = %d, want %d", c.NumNodes(), g.NumNodes())
	}
	if c.NumSlots() != 2*g.NumEdges() {
		t.Fatalf("CSR slots = %d, want %d", c.NumSlots(), 2*g.NumEdges())
	}
	if got := int(c.Offsets[g.NumNodes()]); got != 2*g.NumEdges() {
		t.Fatalf("final offset = %d, want %d", got, 2*g.NumEdges())
	}
	for u := 0; u < g.NumNodes(); u++ {
		adj := g.Neighbors(NodeID(u))
		csr := c.Neighbors(NodeID(u))
		if int(c.Degree(NodeID(u))) != len(adj) {
			t.Fatalf("node %d: CSR degree %d, want %d", u, c.Degree(NodeID(u)), len(adj))
		}
		if len(csr) != len(adj) {
			t.Fatalf("node %d: CSR range len %d, want %d", u, len(csr), len(adj))
		}
		for i := range adj {
			if csr[i] != adj[i] {
				t.Fatalf("node %d slot %d: CSR target %d, adj %d", u, i, csr[i], adj[i])
			}
		}
	}
}

func TestCSREdgeIDsAndMates(t *testing.T) {
	g := microTestGraph(t, 150, 600)
	c := g.CSR()
	edges := g.Edges()
	// Each edge id must appear on exactly two slots, mates of each other,
	// with endpoints matching the canonical edge.
	count := make([]int, g.NumEdges())
	for u := 0; u < g.NumNodes(); u++ {
		for s := c.Offsets[u]; s < c.Offsets[u+1]; s++ {
			id := c.EdgeID[s]
			count[id]++
			w := c.Targets[s]
			e := edges[id]
			if (Edge{NodeID(u), w}).Canonical() != e {
				t.Fatalf("slot %d: endpoints (%d,%d) do not match edge %v (id %d)", s, u, w, e, id)
			}
			m := c.Mate[s]
			if c.Mate[m] != s {
				t.Fatalf("slot %d: Mate not involutive (mate %d, its mate %d)", s, m, c.Mate[m])
			}
			if c.Targets[m] != NodeID(u) {
				t.Fatalf("slot %d: mate targets %d, want %d", s, c.Targets[m], u)
			}
			if c.EdgeID[m] != id {
				t.Fatalf("slot %d: mate edge id %d, want %d", s, c.EdgeID[m], id)
			}
		}
	}
	for id, n := range count {
		if n != 2 {
			t.Fatalf("edge %d appears on %d slots, want 2", id, n)
		}
	}
}

func TestCSREndpointArrays(t *testing.T) {
	g := microTestGraph(t, 150, 600)
	c := g.CSR()
	edges := g.Edges()
	if len(c.EdgeU) != len(edges) || len(c.EdgeV) != len(edges) {
		t.Fatalf("endpoint array lengths %d/%d, want %d", len(c.EdgeU), len(c.EdgeV), len(edges))
	}
	for i, e := range edges {
		if c.EdgeU[i] != e.U || c.EdgeV[i] != e.V {
			t.Fatalf("edge %d: endpoint arrays (%d,%d), want %v", i, c.EdgeU[i], c.EdgeV[i], e)
		}
	}
}

func TestCSREdgeIDOf(t *testing.T) {
	g := microTestGraph(t, 120, 400)
	c := g.CSR()
	// Every present edge resolves to its id, in both orientations.
	for i, e := range g.Edges() {
		if got := c.EdgeIDOf(e.U, e.V); got != int32(i) {
			t.Fatalf("EdgeIDOf(%v) = %d, want %d", e, got, i)
		}
		if got := c.EdgeIDOf(e.V, e.U); got != int32(i) {
			t.Fatalf("EdgeIDOf reversed (%v) = %d, want %d", e, got, i)
		}
	}
	// Absent pairs, self-loops and out-of-range endpoints return -1.
	rng := rand.New(rand.NewSource(9))
	for tries := 0; tries < 200; tries++ {
		u := NodeID(rng.Intn(g.NumNodes()))
		v := NodeID(rng.Intn(g.NumNodes()))
		if got, want := c.EdgeIDOf(u, v) >= 0, g.HasEdge(u, v); got != want {
			t.Fatalf("EdgeIDOf(%d,%d) found=%v, HasEdge=%v", u, v, got, want)
		}
	}
	for _, bad := range [][2]NodeID{{3, 3}, {-1, 2}, {2, -1}, {0, NodeID(g.NumNodes())}} {
		if got := c.EdgeIDOf(bad[0], bad[1]); got != -1 {
			t.Errorf("EdgeIDOf(%d,%d) = %d, want -1", bad[0], bad[1], got)
		}
	}
}

func TestCSRCachedAndConcurrent(t *testing.T) {
	g := microTestGraph(t, 100, 300)
	var wg sync.WaitGroup
	views := make([]*CSR, 8)
	for i := range views {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			views[i] = g.CSR()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(views); i++ {
		if views[i] != views[0] {
			t.Fatal("concurrent CSR() calls returned distinct views")
		}
	}
	if g.CSR() != views[0] {
		t.Fatal("CSR view not cached across calls")
	}
}

func TestCSREmptyAndEdgelessGraphs(t *testing.T) {
	var empty Graph
	c := empty.CSR()
	if c.NumNodes() != 0 || c.NumSlots() != 0 {
		t.Errorf("empty graph CSR: nodes=%d slots=%d", c.NumNodes(), c.NumSlots())
	}
	iso := MustFromEdges(3, nil)
	c = iso.CSR()
	if c.NumNodes() != 3 || c.NumSlots() != 0 {
		t.Errorf("edgeless graph CSR: nodes=%d slots=%d", c.NumNodes(), c.NumSlots())
	}
	for u := NodeID(0); u < 3; u++ {
		if c.Degree(u) != 0 || len(c.Neighbors(u)) != 0 {
			t.Errorf("isolated node %d: degree %d", u, c.Degree(u))
		}
	}
}

// TestCSRCloneIndependence checks a clone builds its own view (the cache is
// per-Graph, never aliased through Clone).
func TestCSRCloneIndependence(t *testing.T) {
	g := microTestGraph(t, 50, 120)
	orig := g.CSR()
	clone := g.Clone()
	if clone.CSR() == orig {
		t.Fatal("clone shares the parent's CSR view")
	}
}

// microTestGraph builds a reusable random test graph.
func microTestGraph(t *testing.T, n, m int) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n)*31 + int64(m)))
	bld := NewBuilder(n)
	for bld.NumEdges() < m {
		bld.TryAddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	return bld.Graph()
}
