package graph

import (
	"bufio"
	"fmt"
	"io"
)

// DOTOptions configures WriteDOT.
type DOTOptions struct {
	// Name is the graph name in the DOT header; empty means "G".
	Name string
	// Highlight marks a set of edges (canonical) to render in bold — the
	// natural way to show a reduced edge set inside its original graph,
	// the paper's visualization use case (Figures 1-3 are drawn this way).
	Highlight map[Edge]struct{}
	// DropIsolated omits nodes with no incident edges.
	DropIsolated bool
}

// WriteDOT renders g in Graphviz DOT format for visual inspection. One of
// the paper's four motivations for graph reduction is making visualization
// feasible; shed first, then render.
func WriteDOT(w io.Writer, g *Graph, opt DOTOptions) error {
	bw := bufio.NewWriter(w)
	name := opt.Name
	if name == "" {
		name = "G"
	}
	if _, err := fmt.Fprintf(bw, "graph %q {\n  node [shape=circle];\n", name); err != nil {
		return err
	}
	for u := 0; u < g.NumNodes(); u++ {
		if opt.DropIsolated && g.Degree(NodeID(u)) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(bw, "  %d;\n", u); err != nil {
			return err
		}
	}
	for _, e := range g.Edges() {
		attr := ""
		if opt.Highlight != nil {
			if _, ok := opt.Highlight[e]; ok {
				attr = " [penwidth=3]"
			}
		}
		if _, err := fmt.Fprintf(bw, "  %d -- %d%s;\n", e.U, e.V, attr); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}
