package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"slices"
	"sort"

	"edgeshed/internal/par"
)

// The ESC1 packed-CSR format is the out-of-core substrate for SNAP-scale
// graphs: the CSR view's arrays written to disk exactly as graph.CSR holds
// them in memory, so loading is one mmap plus slice-header fixups with zero
// per-edge parsing (see mmap.go). Where the .esg binary format is a
// fast-reload cache that still re-runs the Builder per edge, a .esc file
// *is* the graph.
//
// Layout, all little-endian:
//
//	header (64 bytes)
//	  [0:4)   magic "ESC1"
//	  [4:8)   uint32 format version (currently 1)
//	  [8:16)  uint64 flags (packFlagDegreeOrdered, packFlagIdentityLabels)
//	  [16:24) uint64 |V|
//	  [24:32) uint64 |E|
//	  [32:40) uint64 CRC-32C (Castagnoli) of the payload, in the low bits
//	  [40:64) reserved, zero
//	payload (sections back to back; the 8-byte section leads, so every
//	section is naturally aligned inside the page-aligned mapping)
//	  Labels  |V| × int64    original external node ids; omitted when the
//	                         identity-labels flag is set (dense inputs)
//	  Offsets (|V|+1) × int32
//	  Targets 2|E| × int32
//	  EdgeID  2|E| × int32
//	  Mate    2|E| × int32
//	  EdgeU   |E| × int32
//	  EdgeV   |E| × int32
//	  EdgeUV  |E| × (int32 U, int32 V)  the canonical edge list, interleaved
//	                                    so it aliases directly as []Edge
//
// The payload checksum makes bit rot and truncation loud; the structural
// validation on open (validatePacked) makes a well-checksummed but
// malformed file — non-canonical edge order above all — equally loud.

// packMagic identifies an ESC1 packed-CSR file.
var packMagic = [4]byte{'E', 'S', 'C', '1'}

// packVersion is the current ESC1 format version.
const packVersion = 1

// packHeaderSize is the fixed byte size of the ESC1 header.
const packHeaderSize = 64

// ESC1 header flag bits.
const (
	// packFlagDegreeOrdered marks a file whose dense ids were relabelled in
	// degree-descending order at pack time (OrderDegree).
	packFlagDegreeOrdered = 1 << 0
	// packFlagIdentityLabels marks a file with no Labels section: dense id
	// u carries external label u.
	packFlagIdentityLabels = 1 << 1
)

// castagnoli is the CRC-32C table used for payload checksums; the
// Castagnoli polynomial is hardware-accelerated on amd64 and arm64, so
// checksumming runs at memory speed.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Order selects the dense-id layout of a packed graph.
type Order int

// The supported packing orders.
const (
	// OrderKeep preserves the graph's existing dense ids, so a packed file
	// loads into the exact CSR the in-RAM build would produce — seeded
	// algorithms give bit-identical results from either path.
	OrderKeep Order = iota
	// OrderDegree relabels nodes in degree-descending order (ties by old
	// id) before packing. High-degree hubs land at the front of every
	// array, improving locality for traversal kernels — but the relabeling
	// changes edge ids and therefore seeded tie-breaks, so results are
	// equivalent, not bit-identical, to the unpacked graph's.
	OrderDegree
)

// packLayout computes the byte offsets of every ESC1 section for a graph
// with n nodes and m edges. Offsets are relative to the start of the file;
// the payload begins at packHeaderSize.
type packLayout struct {
	n, m       int
	identity   bool
	labelsOff  int64
	offsetsOff int64
	targetsOff int64
	edgeIDOff  int64
	mateOff    int64
	edgeUOff   int64
	edgeVOff   int64
	edgeUVOff  int64
	total      int64 // total file size
}

// newPackLayout lays out a file for n nodes and m edges.
func newPackLayout(n, m int, identity bool) packLayout {
	l := packLayout{n: n, m: m, identity: identity}
	off := int64(packHeaderSize)
	l.labelsOff = off
	if !identity {
		off += int64(n) * 8
	}
	l.offsetsOff = off
	off += int64(n+1) * 4
	l.targetsOff = off
	off += int64(2*m) * 4
	l.edgeIDOff = off
	off += int64(2*m) * 4
	l.mateOff = off
	off += int64(2*m) * 4
	l.edgeUOff = off
	off += int64(m) * 4
	l.edgeVOff = off
	off += int64(m) * 4
	l.edgeUVOff = off
	off += int64(2*m) * 4
	l.total = off
	return l
}

// payloadSize is the byte length of everything after the header.
func (l packLayout) payloadSize() int64 { return l.total - packHeaderSize }

// PackWriteOptions tunes WritePacked.
type PackWriteOptions struct {
	// Order selects the dense-id layout; the default OrderKeep preserves
	// the graph's ids bit-for-bit.
	Order Order
}

// identityLabels reports whether rm maps every dense id in [0, n) to
// itself — in which case the Labels section is omitted and the file carries
// the identity-labels flag. A nil remapper is identity by definition.
func identityLabels(rm *Remapper, n int) bool {
	if rm == nil || rm.identity > 0 {
		return true
	}
	for u := 0; u < n; u++ {
		if rm.labels[u] != int64(u) {
			return false
		}
	}
	return true
}

// WritePacked writes g in the ESC1 packed-CSR format. If rm is non-nil its
// labels are stored so the packed file round-trips the original external
// node ids; a nil rm stores identity labels. The write streams in two
// passes (one to checksum, one to emit), so w needs no seeking.
func WritePacked(w io.Writer, g *Graph, rm *Remapper, opt PackWriteOptions) error {
	if err := csrBounds(g.NumNodes(), g.NumEdges()); err != nil {
		return err
	}
	var flags uint64
	if opt.Order == OrderDegree {
		var err error
		g, rm, err = relabelByDegree(g, rm)
		if err != nil {
			return err
		}
		flags |= packFlagDegreeOrdered
	}
	n, m := g.NumNodes(), g.NumEdges()
	identity := identityLabels(rm, n)
	if identity {
		flags |= packFlagIdentityLabels
	}
	c := g.CSR()

	// payload streams every section in layout order to enc.
	payload := func(enc *sectionEncoder) {
		if !identity {
			enc.int64s(labelSlice(rm, n))
		}
		enc.int32s(c.Offsets)
		enc.int32s(c.Targets)
		enc.int32s(c.EdgeID)
		enc.int32s(c.Mate)
		enc.int32s(c.EdgeU)
		enc.int32s(c.EdgeV)
		enc.edges(g.Edges())
	}

	// Pass 1: checksum the payload without writing it.
	h := crc32.New(castagnoli)
	henc := &sectionEncoder{w: h}
	payload(henc)
	if henc.err != nil {
		return henc.err
	}

	// Pass 2: header, then the payload for real.
	var hdr [packHeaderSize]byte
	copy(hdr[0:4], packMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], packVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], flags)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(n))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(m))
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(h.Sum32()))
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	enc := &sectionEncoder{w: bw}
	payload(enc)
	if enc.err != nil {
		return enc.err
	}
	return bw.Flush()
}

// WritePackedFile writes g to path in the ESC1 format, creating or
// truncating the file.
func WritePackedFile(path string, g *Graph, rm *Remapper, opt PackWriteOptions) error {
	return writeFileWith(path, func(w io.Writer) error { return WritePacked(w, g, rm, opt) })
}

// labelSlice returns rm's first n labels as a contiguous slice,
// materializing lazy modes.
func labelSlice(rm *Remapper, n int) []int64 {
	if rm.identity > 0 || rm.labels == nil {
		out := make([]int64, n)
		for u := range out {
			out[u] = rm.Label(NodeID(u))
		}
		return out
	}
	return rm.labels[:n]
}

// relabelByDegree returns a copy of g with nodes renumbered in
// degree-descending order (ties broken by old id ascending) and a remapper
// carrying the original external labels under the new ids.
func relabelByDegree(g *Graph, rm *Remapper) (*Graph, *Remapper, error) {
	n := g.NumNodes()
	byDeg := make([]NodeID, n)
	for u := range byDeg {
		byDeg[u] = NodeID(u)
	}
	sort.Slice(byDeg, func(i, j int) bool {
		du, dv := g.Degree(byDeg[i]), g.Degree(byDeg[j])
		if du != dv {
			return du > dv
		}
		return byDeg[i] < byDeg[j]
	})
	newID := make([]NodeID, n)
	labels := make([]int64, n)
	for rank, old := range byDeg {
		newID[old] = NodeID(rank)
		if rm != nil {
			labels[rank] = rm.Label(old)
		} else {
			labels[rank] = int64(old)
		}
	}
	keys := make([]uint64, 0, g.NumEdges())
	for _, e := range g.Edges() {
		keys = append(keys, packKey(newID[e.U], newID[e.V]))
	}
	slices.Sort(keys)
	return graphFromKeys(n, keys), RemapperFromLabels(labels), nil
}

// sectionEncoder streams typed arrays as little-endian bytes through a
// reusable scratch buffer, remembering the first write error so callers
// check once at the end. hash.Hash32 and bufio.Writer both satisfy w.
type sectionEncoder struct {
	w   io.Writer
	buf [64 << 10]byte
	err error
}

// int32s encodes xs little-endian. []NodeID is []int32 (NodeID is an
// alias), so CSR sections pass through directly.
func (enc *sectionEncoder) int32s(xs []int32) {
	if enc.err != nil {
		return
	}
	i := 0
	for i < len(xs) {
		j := 0
		for i < len(xs) && j+4 <= len(enc.buf) {
			binary.LittleEndian.PutUint32(enc.buf[j:], uint32(xs[i]))
			i++
			j += 4
		}
		if _, err := enc.w.Write(enc.buf[:j]); err != nil {
			enc.err = err
			return
		}
	}
}

// int64s encodes xs little-endian.
func (enc *sectionEncoder) int64s(xs []int64) {
	if enc.err != nil {
		return
	}
	i := 0
	for i < len(xs) {
		j := 0
		for i < len(xs) && j+8 <= len(enc.buf) {
			binary.LittleEndian.PutUint64(enc.buf[j:], uint64(xs[i]))
			i++
			j += 8
		}
		if _, err := enc.w.Write(enc.buf[:j]); err != nil {
			enc.err = err
			return
		}
	}
}

// edges encodes the canonical edge list interleaved as (U, V) int32 pairs —
// the byte image of a []Edge on a little-endian machine.
func (enc *sectionEncoder) edges(es []Edge) {
	if enc.err != nil {
		return
	}
	i := 0
	for i < len(es) {
		j := 0
		for i < len(es) && j+8 <= len(enc.buf) {
			binary.LittleEndian.PutUint32(enc.buf[j:], uint32(es[i].U))
			binary.LittleEndian.PutUint32(enc.buf[j+4:], uint32(es[i].V))
			i++
			j += 8
		}
		if _, err := enc.w.Write(enc.buf[:j]); err != nil {
			enc.err = err
			return
		}
	}
}

// packHeader is the decoded ESC1 header.
type packHeader struct {
	flags    uint64
	n, m     int
	checksum uint32
}

// parsePackHeader decodes and sanity-checks an ESC1 header against the
// file's total size: magic, version, counts within CSR bounds, and the
// exact file length the layout implies (so truncation is detected before
// any array is touched).
func parsePackHeader(data []byte, size int64) (packHeader, packLayout, error) {
	var h packHeader
	if size < packHeaderSize || len(data) < packHeaderSize {
		return h, packLayout{}, fmt.Errorf("graph: packed file truncated: %d bytes, want at least the %d-byte header", size, packHeaderSize)
	}
	if [4]byte(data[0:4]) != packMagic {
		return h, packLayout{}, fmt.Errorf("graph: bad packed magic %q, want %q", data[0:4], packMagic)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != packVersion {
		return h, packLayout{}, fmt.Errorf("graph: unsupported packed format version %d (want %d)", v, packVersion)
	}
	h.flags = binary.LittleEndian.Uint64(data[8:16])
	un := binary.LittleEndian.Uint64(data[16:24])
	um := binary.LittleEndian.Uint64(data[24:32])
	h.checksum = uint32(binary.LittleEndian.Uint64(data[32:40]))
	if un > uint64(1)<<31-1 || um > (uint64(1)<<31-1)/2 {
		return h, packLayout{}, fmt.Errorf("graph: packed header counts |V|=%d |E|=%d exceed the int32 CSR index space", un, um)
	}
	h.n, h.m = int(un), int(um)
	l := newPackLayout(h.n, h.m, h.flags&packFlagIdentityLabels != 0)
	if size != l.total {
		return h, packLayout{}, fmt.Errorf("graph: packed file is %d bytes, want %d for |V|=%d |E|=%d (truncated or corrupt)", size, l.total, h.n, h.m)
	}
	return h, l, nil
}

// validatePacked checks the structural invariants of a decoded packed CSR
// that loading must not proceed without: monotone offsets covering exactly
// 2m slots, per-node target lists strictly ascending and in range, a
// strictly ascending canonical edge list agreeing with EdgeU/EdgeV, and
// every EdgeID/Mate entry inside its array's bounds so no kernel indexing
// through them can fault. Everything is a sequential O(|V|+|E|) sweep over
// the mapped arrays, sharded across GOMAXPROCS workers (the sweeps are
// read-only and blocks are contiguous, so cross-block lookbacks like
// edges[i-1] stay valid). The checksum catches bit rot; this catches
// well-summed but malformed files — a non-canonical edge order above all.
// The random-access cross-checks (mate involution, slot↔edge-id agreement)
// live in verifyPacked, behind PackedGraph.Verify and gpack -verify,
// because they cost several times the rest of the load path combined.
func validatePacked(c *CSR, edges []Edge) error {
	n, m := c.NumNodes(), len(edges)
	if c.Offsets[0] != 0 {
		return fmt.Errorf("graph: packed offsets start at %d, want 0", c.Offsets[0])
	}
	if int(c.Offsets[n]) != 2*m {
		return fmt.Errorf("graph: packed offsets end at %d, want %d", c.Offsets[n], 2*m)
	}

	// Monotone offsets come first on their own: with the ends pinned at 0
	// and 2m, monotonicity is what proves every per-node [lo, hi) below is
	// in Targets' bounds, so the slot sweep must not start before the whole
	// offsets array has passed.
	workers := par.Workers(0, n+m)
	errs := make([]error, workers)
	par.Blocks(n, workers, func(w, blo, bhi int) {
		for ui := blo; ui < bhi; ui++ {
			if c.Offsets[ui] > c.Offsets[ui+1] {
				errs[w] = fmt.Errorf("graph: packed offsets decrease at node %d", ui)
				return
			}
		}
	})
	if err := firstErr(errs); err != nil {
		return err
	}

	par.Blocks(m, workers, func(w, blo, bhi int) {
		for i := blo; i < bhi; i++ {
			e := edges[i]
			if e.U < 0 || e.V >= NodeID(n) || e.U >= e.V {
				errs[w] = fmt.Errorf("graph: packed edge %d = %v not canonical in [0,%d)", i, e, n)
				return
			}
			if i > 0 {
				prev := edges[i-1]
				if prev.U > e.U || (prev.U == e.U && prev.V >= e.V) {
					errs[w] = fmt.Errorf("graph: packed edge list not in canonical order at edge %d (%v after %v)", i, e, prev)
					return
				}
			}
			if c.EdgeU[i] != e.U || c.EdgeV[i] != e.V {
				errs[w] = fmt.Errorf("graph: packed EdgeU/EdgeV disagree with edge %d = %v", i, e)
				return
			}
		}
	})
	if err := firstErr(errs); err != nil {
		return err
	}

	par.Blocks(n, workers, func(w, blo, bhi int) {
		for ui := blo; ui < bhi; ui++ {
			lo, hi := c.Offsets[ui], c.Offsets[ui+1]
			for s := lo; s < hi; s++ {
				v := c.Targets[s]
				if v < 0 || int(v) >= n {
					errs[w] = fmt.Errorf("graph: packed target %d at slot %d out of range [0,%d)", v, s, n)
					return
				}
				if s > lo && c.Targets[s-1] >= v {
					errs[w] = fmt.Errorf("graph: packed targets of node %d not strictly ascending at slot %d", ui, s)
					return
				}
				if id := c.EdgeID[s]; id < 0 || int(id) >= m {
					errs[w] = fmt.Errorf("graph: packed edge id %d at slot %d out of range [0,%d)", id, s, m)
					return
				}
				if mate := c.Mate[s]; mate < 0 || int(mate) >= 2*m {
					errs[w] = fmt.Errorf("graph: packed mate %d at slot %d out of range [0,%d)", mate, s, 2*m)
					return
				}
			}
		}
	})
	return firstErr(errs)
}

// verifyPacked runs the deep cross-checks validatePacked skips: every slot's
// edge id resolves to the canonical edge it targets, and the mate pointer is
// a true involution landing in the target node's range with matching edge
// id. These are random-access sweeps — several times the cost of the whole
// sequential load path — so they run only on explicit request
// (PackedGraph.Verify, gpack -verify), not on every load; validatePacked has
// already bounds-checked EdgeID and Mate, so kernels are memory-safe either
// way.
func verifyPacked(c *CSR, edges []Edge) error {
	n, m := c.NumNodes(), len(edges)
	workers := par.Workers(0, n+m)
	errs := make([]error, workers)
	par.Blocks(n, workers, func(w, blo, bhi int) {
		for ui := blo; ui < bhi; ui++ {
			u := NodeID(ui)
			lo, hi := c.Offsets[ui], c.Offsets[ui+1]
			for s := lo; s < hi; s++ {
				v := c.Targets[s]
				id := c.EdgeID[s]
				if e := (Edge{u, v}.Canonical()); c.EdgeU[id] != e.U || c.EdgeV[id] != e.V {
					errs[w] = fmt.Errorf("graph: packed slot %d claims edge id %d = (%d,%d), but targets %v", s, id, c.EdgeU[id], c.EdgeV[id], e)
					return
				}
				mate := c.Mate[s]
				if mate < c.Offsets[v] || mate >= c.Offsets[v+1] {
					errs[w] = fmt.Errorf("graph: packed mate %d of slot %d outside node %d's range", mate, s, v)
					return
				}
				if c.Targets[mate] != u || c.Mate[mate] != s || c.EdgeID[mate] != id {
					errs[w] = fmt.Errorf("graph: packed mate involution broken at slot %d", s)
					return
				}
			}
		}
	})
	return firstErr(errs)
}

// firstErr returns the first non-nil error in worker order: blocks are
// contiguous and each worker stops at its first failure, so this is the
// earliest-index failure of the earliest failing block.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
