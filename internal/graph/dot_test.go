package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := MustFromEdges(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	var buf bytes.Buffer
	err := WriteDOT(&buf, g, DOTOptions{
		Name:      "test",
		Highlight: map[Edge]struct{}{{U: 0, V: 1}: {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`graph "test"`, "0 -- 1 [penwidth=3];", "1 -- 2;", "3;"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTDropIsolated(t *testing.T) {
	g := MustFromEdges(4, []Edge{{U: 0, V: 1}})
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, DOTOptions{DropIsolated: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "  3;") || strings.Contains(out, "  2;") {
		t.Errorf("isolated nodes not dropped:\n%s", out)
	}
	if !strings.Contains(out, `graph "G"`) {
		t.Errorf("default name missing:\n%s", out)
	}
}
