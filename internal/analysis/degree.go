package analysis

import (
	"edgeshed/internal/graph"
)

// DegreeDistribution returns the fraction of nodes at each degree, indexed
// by degree. Degrees above cap are aggregated into the cap bucket, matching
// the paper's Figure 5(c)-(d) treatment ("vertex degrees larger than 300 are
// aggregated as 300"); cap <= 0 means no aggregation.
func DegreeDistribution(g *graph.Graph, cap int) []float64 {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	maxDeg := g.MaxDegree()
	if cap > 0 && maxDeg > cap {
		maxDeg = cap
	}
	dist := make([]float64, maxDeg+1)
	inc := 1 / float64(n)
	for u := 0; u < n; u++ {
		d := g.Degree(graph.NodeID(u))
		if cap > 0 && d > cap {
			d = cap
		}
		dist[d] += inc
	}
	return dist
}

// DegreeHistogram returns raw node counts per degree (no normalization, no
// cap).
func DegreeHistogram(g *graph.Graph) []int {
	hist := make([]int, g.MaxDegree()+1)
	for u := 0; u < g.NumNodes(); u++ {
		hist[g.Degree(graph.NodeID(u))]++
	}
	return hist
}

// MeanByDegree groups a per-node score by node degree and returns the mean
// score at each degree (NaN-free: degrees with no nodes get 0). It backs the
// paper's Figure 8 (betweenness vs degree) and Figure 9 (clustering
// coefficient vs degree).
func MeanByDegree(g *graph.Graph, score []float64) []float64 {
	sums := make([]float64, g.MaxDegree()+1)
	counts := make([]int, g.MaxDegree()+1)
	for u := 0; u < g.NumNodes(); u++ {
		d := g.Degree(graph.NodeID(u))
		sums[d] += score[u]
		counts[d]++
	}
	for d := range sums {
		if counts[d] > 0 {
			sums[d] /= float64(counts[d])
		}
	}
	return sums
}
