package analysis

import (
	"math/rand"

	"edgeshed/internal/graph"
)

// TwoHopPairs returns non-adjacent node pairs at distance exactly two (u < v
// with at least one common neighbor), the candidate set for the paper's
// link-prediction task. maxPairs > 0 caps the output by uniform reservoir
// sampling with the given seed; maxPairs <= 0 returns all pairs.
func TwoHopPairs(g *graph.Graph, maxPairs int, seed int64) []graph.Edge {
	var out []graph.Edge
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	mark := make([]bool, n)
	seen := 0
	for u := 0; u < n; u++ {
		uid := graph.NodeID(u)
		for _, v := range g.Neighbors(uid) {
			mark[v] = true
		}
		// Walk two hops; emit each (u, w) with w > u once via a dedup set
		// local to u (the emitted flag doubles as visited-this-u).
		for _, v := range g.Neighbors(uid) {
			for _, w := range g.Neighbors(v) {
				if w <= uid || mark[w] {
					continue
				}
				mark[w] = true // dedup further common neighbors
				pair := graph.Edge{U: uid, V: w}
				seen++
				if maxPairs <= 0 || len(out) < maxPairs {
					out = append(out, pair)
				} else if j := rng.Intn(seen); j < maxPairs {
					out[j] = pair // reservoir replacement
				}
			}
		}
		// Clear marks: direct neighbors plus emitted two-hop nodes.
		for _, v := range g.Neighbors(uid) {
			mark[v] = false
			for _, w := range g.Neighbors(v) {
				mark[w] = false
			}
		}
	}
	return out
}
