package analysis

import (
	"math"
	"testing"

	"edgeshed/internal/core"
	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

func TestDegreeAssortativity(t *testing.T) {
	// Star: maximal disassortativity (hubs link only to leaves) → -1.
	if got := DegreeAssortativity(gen.Star(10)); math.Abs(got-(-1)) > 1e-9 {
		t.Errorf("star assortativity = %v, want -1", got)
	}
	// Regular graph: no degree variance → 0 by convention.
	if got := DegreeAssortativity(gen.Cycle(10)); got != 0 {
		t.Errorf("cycle assortativity = %v, want 0", got)
	}
	// Empty graph.
	var empty graph.Graph
	if got := DegreeAssortativity(&empty); got != 0 {
		t.Errorf("empty assortativity = %v, want 0", got)
	}
	// BA graphs are famously close to neutral/disassortative; just check
	// the range.
	if got := DegreeAssortativity(gen.BarabasiAlbert(500, 3, 1)); got < -1 || got > 1 {
		t.Errorf("BA assortativity = %v outside [-1, 1]", got)
	}
}

func TestApproxDiameter(t *testing.T) {
	if got := ApproxDiameter(gen.Path(10)); got != 9 {
		t.Errorf("path diameter = %d, want 9 (double sweep is exact on trees)", got)
	}
	if got := ApproxDiameter(gen.Cycle(10)); got < 5 || got > 10 {
		t.Errorf("C10 diameter = %d, want ~5", got)
	}
	if got := ApproxDiameter(gen.Complete(6)); got != 1 {
		t.Errorf("K6 diameter = %d, want 1", got)
	}
	var empty graph.Graph
	if got := ApproxDiameter(&empty); got != 0 {
		t.Errorf("empty diameter = %d, want 0", got)
	}
	// Disconnected: measures the largest component.
	g := graph.MustFromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 4, V: 5}})
	if got := ApproxDiameter(g); got != 3 {
		t.Errorf("disconnected diameter = %d, want 3", got)
	}
}

func TestKCoreKnownValues(t *testing.T) {
	// K4 plus a pendant chain: clique nodes are 3-core, chain degrades.
	b := graph.NewBuilder(6)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.TryAddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	b.TryAddEdge(3, 4)
	b.TryAddEdge(4, 5)
	g := b.Graph()
	core := KCore(g)
	want := []int{3, 3, 3, 3, 1, 1}
	for u, w := range want {
		if core[u] != w {
			t.Errorf("core[%d] = %d, want %d", u, core[u], w)
		}
	}
	if MaxCore(g) != 3 {
		t.Errorf("MaxCore = %d, want 3", MaxCore(g))
	}
}

func TestKCoreShapes(t *testing.T) {
	// Cycle: every node 2-core. Tree: every non-isolated node 1-core.
	for _, c := range KCore(gen.Cycle(8)) {
		if c != 2 {
			t.Fatalf("cycle core = %d, want 2", c)
		}
	}
	for _, c := range KCore(gen.Path(8)) {
		if c != 1 {
			t.Fatalf("path core = %d, want 1", c)
		}
	}
	for _, c := range KCore(gen.Complete(5)) {
		if c != 4 {
			t.Fatalf("K5 core = %d, want 4", c)
		}
	}
	// Isolated nodes have core 0.
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}})
	if KCore(g)[2] != 0 {
		t.Error("isolated node core != 0")
	}
}

func TestKCoreInvariant(t *testing.T) {
	// Every node's core number is at most its degree, and the k-core
	// induced subgraph really has min degree >= k for k = MaxCore.
	g := gen.BarabasiAlbert(300, 3, 7)
	core := KCore(g)
	for u := 0; u < g.NumNodes(); u++ {
		if core[u] > g.Degree(graph.NodeID(u)) {
			t.Fatalf("core[%d] = %d > degree %d", u, core[u], g.Degree(graph.NodeID(u)))
		}
	}
	k := MaxCore(g)
	inCore := make(map[graph.NodeID]bool)
	for u, c := range core {
		if c >= k {
			inCore[graph.NodeID(u)] = true
		}
	}
	for u := range inCore {
		d := 0
		for _, v := range g.Neighbors(u) {
			if inCore[v] {
				d++
			}
		}
		if d < k {
			t.Fatalf("node %d has only %d neighbors in the %d-core", u, d, k)
		}
	}
}

func TestCoreSizes(t *testing.T) {
	g := gen.Complete(4)
	sizes := CoreSizes(g)
	// All 4 nodes are in cores 0..3.
	if len(sizes) != 4 {
		t.Fatalf("len(sizes) = %d, want 4", len(sizes))
	}
	for k, s := range sizes {
		if s != 4 {
			t.Errorf("sizes[%d] = %d, want 4", k, s)
		}
	}
}

func TestRichClub(t *testing.T) {
	// Two K3 hubs joined, each with pendant leaves: high-degree nodes are
	// densely interconnected, so φ rises with k.
	b := graph.NewBuilder(9)
	// Core triangle 0-1-2.
	b.TryAddEdge(0, 1)
	b.TryAddEdge(1, 2)
	b.TryAddEdge(0, 2)
	// Two leaves per core node.
	for i := 0; i < 3; i++ {
		b.TryAddEdge(graph.NodeID(i), graph.NodeID(3+2*i))
		b.TryAddEdge(graph.NodeID(i), graph.NodeID(4+2*i))
	}
	g := b.Graph()
	phi := RichClub(g)
	// Above degree 1: only core nodes (degree 4) remain → density 1.
	if math.Abs(phi[1]-1) > 1e-9 {
		t.Errorf("φ(1) = %v, want 1 (core is a clique)", phi[1])
	}
	// Above degree 0: all 9 nodes, 9 edges, density 9/36.
	if math.Abs(phi[0]-0.25) > 1e-9 {
		t.Errorf("φ(0) = %v, want 0.25", phi[0])
	}
	// Thresholds beyond the max degree have no club.
	if phi[4] != 0 {
		t.Errorf("φ(4) = %v, want 0", phi[4])
	}
}

func TestRichClubEmptyAndRegular(t *testing.T) {
	var empty graph.Graph
	if got := RichClub(&empty); len(got) != 1 || got[0] != 0 {
		t.Errorf("empty rich club = %v", got)
	}
	// Cycle: above degree 1 everything remains; above 2 nothing.
	phi := RichClub(gen.Cycle(6))
	if math.Abs(phi[1]-6.0/15.0) > 1e-9 {
		t.Errorf("C6 φ(1) = %v, want 0.4", phi[1])
	}
	if phi[2] != 0 {
		t.Errorf("C6 φ(2) = %v, want 0", phi[2])
	}
}

func TestGiniDegree(t *testing.T) {
	// Regular graph: perfect equality → 0.
	if got := GiniDegree(gen.Cycle(10)); math.Abs(got) > 1e-9 {
		t.Errorf("cycle gini = %v, want 0", got)
	}
	// Star(20): degrees are nineteen 1s and one 19, whose Gini is exactly
	// 342/(20·38) = 0.45.
	if star := GiniDegree(gen.Star(20)); math.Abs(star-0.45) > 1e-9 {
		t.Errorf("star gini = %v, want 0.45", star)
	}
	// Heavy-tailed beats uniform random on inequality.
	ba := GiniDegree(gen.BarabasiAlbert(500, 3, 1))
	er := GiniDegree(gen.ErdosRenyi(500, 1491, 1))
	if ba <= er {
		t.Errorf("BA gini %v <= ER gini %v", ba, er)
	}
	var empty graph.Graph
	if GiniDegree(&empty) != 0 {
		t.Error("empty gini != 0")
	}
}

func TestSheddingPreservesDegreeInequality(t *testing.T) {
	// A structural check beyond the paper's seven tasks: BM2's reduction
	// keeps degree inequality (Gini) closer to the original than uniform
	// sampling does on a heavy-tailed graph, because it tracks per-node
	// expectations instead of thinning independently.
	g := gen.ConfigurationModel(gen.PowerLawDegrees(600, 2.1, 1, 80, 3), 4)
	origGini := GiniDegree(g)
	if origGini <= 0 {
		t.Fatal("degenerate test graph")
	}
	p := 0.5
	bm2Res, err := (core.BM2{}).Reduce(g, p)
	if err != nil {
		t.Fatal(err)
	}
	rndRes, err := (core.Random{Seed: 5}).Reduce(g, p)
	if err != nil {
		t.Fatal(err)
	}
	bm2Gap := math.Abs(GiniDegree(bm2Res.Reduced) - origGini)
	rndGap := math.Abs(GiniDegree(rndRes.Reduced) - origGini)
	if bm2Gap >= rndGap {
		t.Errorf("BM2 gini gap %v not smaller than random's %v", bm2Gap, rndGap)
	}
}
