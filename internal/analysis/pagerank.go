package analysis

import (
	"sort"

	"edgeshed/internal/graph"
	"edgeshed/internal/obs"
	"edgeshed/internal/par"
)

// PageRankOptions configures PageRank. The zero value selects the
// conventional damping 0.85 and 50 iterations. Out-of-range values are
// clamped to the defaults rather than rejected, matching the
// centrality.Options convention — callers wanting validation should check
// before constructing the options.
type PageRankOptions struct {
	// Damping is the restart-complement factor. Only values strictly inside
	// (0, 1) are meaningful; anything else — the zero value, negatives, and
	// Damping >= 1 (which would drop the restart mass entirely and break
	// convergence on disconnected graphs) — selects the conventional 0.85.
	Damping float64
	// Iterations is the power-iteration count; 0 selects 50, and a negative
	// value is likewise treated as 0, i.e. the default 50.
	Iterations int
	// Workers is the parallelism across nodes; 0 (or negative) means
	// GOMAXPROCS. Each node's rank is pulled over its CSR adjacency in a
	// fixed order and the dangling mass is summed serially, so the vector
	// is bit-identical at any worker count.
	Workers int
	// Obs is the parent observability span; nil (the zero value) records
	// nothing at no cost. When set, the kernel reports a "pagerank" span and
	// a "pagerank.iterations" counter. The vector stays bit-identical with
	// Obs on or off, at any worker count.
	Obs *obs.Span
}

// damping resolves the damping factor; values outside (0, 1) mean 0.85.
func (o PageRankOptions) damping() float64 {
	if o.Damping <= 0 || o.Damping >= 1 {
		return 0.85
	}
	return o.Damping
}

// iterations resolves the iteration count; non-positive means 50.
func (o PageRankOptions) iterations() int {
	if o.Iterations <= 0 {
		return 50
	}
	return o.Iterations
}

// PageRank returns the PageRank vector of the undirected graph (each edge
// treated as two directed links). Dangling (isolated) nodes redistribute
// their mass uniformly. Scores sum to 1 for any non-empty graph.
//
// The iteration is pull-based over the graph's CSR view:
//
//	next[u] = (1-d)/n + d·(Σ_{v∈N(u)} pr[v]/deg[v] + dangling/n)
//
// Each node's sum runs over its CSR slots in a fixed order regardless of
// how nodes are partitioned across workers, and the dangling mass is summed
// serially over a precomputed node list, so the result does not depend on
// Workers.
func PageRank(g *graph.Graph, opt PageRankOptions) []float64 {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	c := g.CSR()
	d := opt.damping()
	iters := opt.iterations()
	workers := par.Workers(opt.Workers, n)
	sp := opt.Obs.Start("pagerank")
	defer sp.End()
	sp.Counter("pagerank.iterations").Add(int64(iters))

	pr := make([]float64, n)
	next := make([]float64, n)
	contrib := make([]float64, n) // contrib[v] = pr[v]/deg[v] this iteration
	invDeg := make([]float64, n)
	var dangling []int32
	for u := 0; u < n; u++ {
		if deg := c.Degree(graph.NodeID(u)); deg > 0 {
			invDeg[u] = 1 / float64(deg)
		} else {
			dangling = append(dangling, int32(u))
		}
	}
	inv := 1 / float64(n)
	for i := range pr {
		pr[i] = inv
	}
	base := (1 - d) * inv
	offsets, targets := c.Offsets, c.Targets
	for it := 0; it < iters; it++ {
		par.Blocks(n, workers, func(_, lo, hi int) {
			for v := lo; v < hi; v++ {
				contrib[v] = pr[v] * invDeg[v]
			}
		})
		var danglingMass float64
		for _, u := range dangling {
			danglingMass += pr[u]
		}
		danglingShare := danglingMass * inv
		par.Blocks(n, workers, func(_, lo, hi int) {
			for u := lo; u < hi; u++ {
				var sum float64
				for _, v := range targets[offsets[u]:offsets[u+1]] {
					sum += contrib[v]
				}
				next[u] = base + d*(sum+danglingShare)
			}
		})
		pr, next = next, pr
	}
	return pr
}

// TopK returns the indices of the k highest-scoring entries, ties broken by
// lower index, in descending score order. k is clamped to len(scores).
func TopK(scores []float64, k int) []graph.NodeID {
	if k > len(scores) {
		k = len(scores)
	}
	if k <= 0 {
		return nil
	}
	idx := make([]graph.NodeID, len(scores))
	for i := range idx {
		idx[i] = graph.NodeID(i)
	}
	sort.Slice(idx, func(i, j int) bool {
		a, b := idx[i], idx[j]
		if scores[a] != scores[b] {
			return scores[a] > scores[b]
		}
		return a < b
	})
	return idx[:k]
}
