package analysis

import (
	"sort"

	"edgeshed/internal/graph"
)

// PageRankOptions configures PageRank. The zero value selects the
// conventional damping 0.85 and 50 iterations.
type PageRankOptions struct {
	// Damping is the restart-complement factor; 0 means 0.85.
	Damping float64
	// Iterations is the power-iteration count; 0 means 50.
	Iterations int
}

func (o PageRankOptions) damping() float64 {
	if o.Damping <= 0 || o.Damping >= 1 {
		return 0.85
	}
	return o.Damping
}

func (o PageRankOptions) iterations() int {
	if o.Iterations <= 0 {
		return 50
	}
	return o.Iterations
}

// PageRank returns the PageRank vector of the undirected graph (each edge
// treated as two directed links). Dangling (isolated) nodes redistribute
// their mass uniformly. Scores sum to 1 for any non-empty graph.
func PageRank(g *graph.Graph, opt PageRankOptions) []float64 {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	d := opt.damping()
	iters := opt.iterations()
	pr := make([]float64, n)
	next := make([]float64, n)
	inv := 1 / float64(n)
	for i := range pr {
		pr[i] = inv
	}
	base := (1 - d) * inv
	for it := 0; it < iters; it++ {
		var dangling float64
		for u := 0; u < n; u++ {
			deg := g.Degree(graph.NodeID(u))
			if deg == 0 {
				dangling += pr[u]
				continue
			}
			share := pr[u] / float64(deg)
			for _, v := range g.Neighbors(graph.NodeID(u)) {
				next[v] += share
			}
		}
		danglingShare := dangling * inv
		for u := 0; u < n; u++ {
			pr[u] = base + d*(next[u]+danglingShare)
			next[u] = 0
		}
	}
	return pr
}

// TopK returns the indices of the k highest-scoring entries, ties broken by
// lower index, in descending score order. k is clamped to len(scores).
func TopK(scores []float64, k int) []graph.NodeID {
	if k > len(scores) {
		k = len(scores)
	}
	if k <= 0 {
		return nil
	}
	idx := make([]graph.NodeID, len(scores))
	for i := range idx {
		idx[i] = graph.NodeID(i)
	}
	sort.Slice(idx, func(i, j int) bool {
		a, b := idx[i], idx[j]
		if scores[a] != scores[b] {
			return scores[a] > scores[b]
		}
		return a < b
	})
	return idx[:k]
}
