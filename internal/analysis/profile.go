package analysis

import (
	"math/rand"

	"edgeshed/internal/graph"
)

// DistanceProfile summarizes the shortest-path structure of a graph: the
// distribution of pairwise distances (Figure 7) and the hop-plot (Figure
// 10), computed in one pass of BFS traversals.
type DistanceProfile struct {
	// DistCounts[d] is the number of ordered reachable (s, t) pairs, s != t,
	// at distance d (or the sampling-scaled estimate thereof).
	DistCounts []float64
	// ReachablePairs is the total ordered reachable pair count.
	ReachablePairs float64
	// Sources is how many BFS sources were used.
	Sources int
	// Diameter is the largest distance observed.
	Diameter int
}

// ProfileOptions configures NewDistanceProfile.
type ProfileOptions struct {
	// Sources caps the number of BFS sources; 0 (or >= |V|) means exact
	// all-sources computation. Sampled profiles estimate the full pair
	// counts by scaling with |V|/Sources.
	Sources int
	// Seed drives source sampling.
	Seed int64
}

// NewDistanceProfile computes the distance profile of g.
func NewDistanceProfile(g *graph.Graph, opt ProfileOptions) *DistanceProfile {
	n := g.NumNodes()
	srcs := make([]graph.NodeID, 0, n)
	scale := 1.0
	if opt.Sources > 0 && opt.Sources < n {
		rng := rand.New(rand.NewSource(opt.Seed))
		for _, i := range rng.Perm(n)[:opt.Sources] {
			srcs = append(srcs, graph.NodeID(i))
		}
		scale = float64(n) / float64(opt.Sources)
	} else {
		for i := 0; i < n; i++ {
			srcs = append(srcs, graph.NodeID(i))
		}
	}
	p := &DistanceProfile{Sources: len(srcs)}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]graph.NodeID, 0, n)
	for _, s := range srcs {
		visited := bfsInto(g, s, dist, queue)
		for _, v := range visited {
			d := int(dist[v])
			if d == 0 {
				continue
			}
			for d >= len(p.DistCounts) {
				p.DistCounts = append(p.DistCounts, 0)
			}
			p.DistCounts[d] += scale
			p.ReachablePairs += scale
			if d > p.Diameter {
				p.Diameter = d
			}
		}
		// Reset only touched entries.
		for _, v := range visited {
			dist[v] = -1
		}
		queue = visited[:0]
	}
	return p
}

// Distribution returns the fraction of reachable pairs at each distance
// (index = distance, starting at 0 with value 0), the series of Figure 7.
func (p *DistanceProfile) Distribution() []float64 {
	out := make([]float64, len(p.DistCounts))
	if p.ReachablePairs == 0 {
		return out
	}
	for d, c := range p.DistCounts {
		out[d] = c / p.ReachablePairs
	}
	return out
}

// HopPlot returns the cumulative fraction of reachable pairs within each
// hop count k (index = k), the series of Figure 10: HopPlot()[k] is the
// percentage of reachable pairs at distance <= k.
func (p *DistanceProfile) HopPlot() []float64 {
	out := make([]float64, len(p.DistCounts))
	if p.ReachablePairs == 0 {
		return out
	}
	cum := 0.0
	for d, c := range p.DistCounts {
		cum += c
		out[d] = cum / p.ReachablePairs
	}
	return out
}

// MeanDistance returns the average pairwise distance among reachable pairs.
func (p *DistanceProfile) MeanDistance() float64 {
	if p.ReachablePairs == 0 {
		return 0
	}
	var sum float64
	for d, c := range p.DistCounts {
		sum += float64(d) * c
	}
	return sum / p.ReachablePairs
}
