package analysis

import (
	"math/bits"
	"time"

	"edgeshed/internal/graph"
	"edgeshed/internal/msbfs"
	"edgeshed/internal/obs"
	"edgeshed/internal/par"
)

// DistanceProfile summarizes the shortest-path structure of a graph: the
// distribution of pairwise distances (Figure 7) and the hop-plot (Figure
// 10), computed in one pass of BFS traversals.
type DistanceProfile struct {
	// DistCounts[d] is the number of ordered reachable (s, t) pairs, s != t,
	// at distance d (or the sampling-scaled estimate thereof).
	DistCounts []float64
	// ReachablePairs is the total ordered reachable pair count.
	ReachablePairs float64
	// Sources is how many BFS sources were used.
	Sources int
	// Diameter is the largest distance observed.
	Diameter int
}

// ProfileOptions configures NewDistanceProfile.
type ProfileOptions struct {
	// Sources caps the number of BFS sources; 0 (or >= |V|) means exact
	// all-sources computation, and a negative value is likewise treated as
	// 0. Sampled profiles estimate the full pair counts by scaling with
	// |V|/Sources.
	Sources int
	// Seed drives source sampling.
	Seed int64
	// Workers is the parallelism across MS-BFS batches; 0 (or negative)
	// means GOMAXPROCS. Batches are strided statically over workers and the
	// per-distance pair counts accumulate as integers, merged exactly and
	// scaled once at the end — so the profile is bit-identical at any
	// worker count.
	Workers int
	// Batch is the MS-BFS batch width: how many sources share one
	// traversal, one bit of the per-node word each. 0 or any out-of-range
	// value selects the full 64-bit word. The width changes wall-clock time
	// only — the profile is bit-identical at any Batch.
	Batch int
	// Obs is the parent observability span; nil (the zero value) records
	// nothing at no cost. When set, the kernel reports a "distance_profile"
	// span with per-worker busy time plus counters for sources completed and
	// the direction-optimizing BFS's level/switch tallies. The profile stays
	// bit-identical with Obs on or off, at any worker count.
	Obs *obs.Span
}

// sources resolves the BFS source set and the pair-count scale factor.
// Sampling uses the shared O(Sources) partial Fisher–Yates draw.
func (o ProfileOptions) sources(n int) ([]graph.NodeID, float64) {
	if o.Sources > 0 && o.Sources < n {
		return graph.SampleNodeIDs(n, o.Sources, o.Seed), float64(n) / float64(o.Sources)
	}
	return graph.SampleNodeIDs(n, n, 0), 1
}

// NewDistanceProfile computes the distance profile of g on the bit-parallel
// MS-BFS engine: sources are grouped into batches of up to 64 (Batch bits
// of one uint64 word per node), every batch runs one shared
// direction-optimizing traversal, and each level's (source, target) pair
// count is the popcount of its arrival words. Batches stride statically
// across workers; the per-worker integer counts merge exactly and are
// scaled by |V|/Sources once at the end, so the profile is bit-identical at
// any Workers count and any Batch width.
func NewDistanceProfile(g *graph.Graph, opt ProfileOptions) *DistanceProfile {
	n := g.NumNodes()
	srcs, scale := opt.sources(n)
	p := &DistanceProfile{Sources: len(srcs)}
	if len(srcs) == 0 {
		return p
	}
	c := g.CSR()
	width := msbfs.Width(opt.Batch)
	numBatches := (len(srcs) + width - 1) / width
	workers := par.Workers(opt.Workers, numBatches)
	sp := opt.Obs.Start("distance_profile")
	defer sp.End()
	sp.SetTotal(int64(numBatches))
	srcCtr := sp.Counter("bfs.sources_done")
	tdCtr := sp.Counter("bfs.topdown_levels")
	buCtr := sp.Counter("bfs.bottomup_levels")
	swCtr := sp.Counter("bfs.direction_switches")
	batchCtr := sp.Counter("msbfs.batches_done")
	wordCtr := sp.Counter("msbfs.words_scanned")
	batchNs := sp.Histogram("msbfs.batch_ns")
	batchOcc := sp.Histogram("msbfs.batch_occupancy")
	levelWidth := sp.Histogram("msbfs.level_width")
	batchMk := sp.Marker(obs.EvBatch, "distance_profile")
	switchMk := sp.Marker(obs.EvDirSwitch, "distance_profile")
	type wstate struct {
		counts   []int64
		pairs    int64
		diameter int
	}
	states := make([]wstate, workers)
	par.Run(workers, func(w int) {
		var t0 time.Time
		if sp.Enabled() {
			t0 = time.Now()
		}
		tr := msbfs.New(c, width, false)
		if sp.Enabled() {
			tr.OnSwitch = func(level int, bottomUp bool) {
				dir := int64(0)
				if bottomUp {
					dir = 1
				}
				switchMk.Emit(w, int64(level)<<1|dir)
			}
		}
		var st wstate
		var done int64
		for bi := w; bi < numBatches; bi += workers {
			lo := bi * width
			hi := min(lo+width, len(srcs))
			if sp.Enabled() {
				b0 := time.Now()
				tr.Run(srcs[lo:hi])
				batchNs.ObserveAt(w, time.Since(b0).Nanoseconds())
				batchOcc.ObserveAt(w, int64(hi-lo))
				batchMk.Emit(w, int64(hi-lo))
				for d := 0; d < tr.NumLevels(); d++ {
					nodes, _ := tr.Level(d)
					levelWidth.ObserveAt(w, int64(len(nodes)))
				}
			} else {
				tr.Run(srcs[lo:hi])
			}
			for d := 1; d < tr.NumLevels(); d++ {
				_, words := tr.Level(d)
				var cnt int64
				for _, wd := range words {
					cnt += int64(bits.OnesCount64(wd))
				}
				for d >= len(st.counts) {
					st.counts = append(st.counts, 0)
				}
				st.counts[d] += cnt
				st.pairs += cnt
				if d > st.diameter {
					st.diameter = d
				}
			}
			done += int64(hi - lo)
			sp.Done(1)
		}
		states[w] = st
		if sp.Enabled() {
			s := tr.Stats()
			srcCtr.AddAt(w, done)
			tdCtr.AddAt(w, s.TopDownLevels)
			buCtr.AddAt(w, s.BottomUpLevels)
			swCtr.AddAt(w, s.Switches)
			batchCtr.AddAt(w, s.Batches)
			wordCtr.AddAt(w, s.WordsScanned)
			sp.WorkerBusy(w, time.Since(t0))
		}
	})
	var counts []int64
	var pairs int64
	for _, st := range states {
		for d, cnt := range st.counts {
			for d >= len(counts) {
				counts = append(counts, 0)
			}
			counts[d] += cnt
		}
		pairs += st.pairs
		if st.diameter > p.Diameter {
			p.Diameter = st.diameter
		}
	}
	p.DistCounts = make([]float64, len(counts))
	for d, cnt := range counts {
		p.DistCounts[d] = float64(cnt) * scale
	}
	p.ReachablePairs = float64(pairs) * scale
	return p
}

// Distribution returns the fraction of reachable pairs at each distance
// (index = distance, starting at 0 with value 0), the series of Figure 7.
func (p *DistanceProfile) Distribution() []float64 {
	out := make([]float64, len(p.DistCounts))
	if p.ReachablePairs == 0 {
		return out
	}
	for d, c := range p.DistCounts {
		out[d] = c / p.ReachablePairs
	}
	return out
}

// HopPlot returns the cumulative fraction of reachable pairs within each
// hop count k (index = k), the series of Figure 10: HopPlot()[k] is the
// percentage of reachable pairs at distance <= k.
func (p *DistanceProfile) HopPlot() []float64 {
	out := make([]float64, len(p.DistCounts))
	if p.ReachablePairs == 0 {
		return out
	}
	cum := 0.0
	for d, c := range p.DistCounts {
		cum += c
		out[d] = cum / p.ReachablePairs
	}
	return out
}

// MeanDistance returns the average pairwise distance among reachable pairs.
func (p *DistanceProfile) MeanDistance() float64 {
	if p.ReachablePairs == 0 {
		return 0
	}
	var sum float64
	for d, c := range p.DistCounts {
		sum += float64(d) * c
	}
	return sum / p.ReachablePairs
}
