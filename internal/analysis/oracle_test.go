package analysis

// This file preserves the seed (pre-parallel) analysis kernels as test
// oracles and benchmark baselines. The production paths run the
// direction-optimizing BFS and the forward triangle algorithm across
// workers; the oracles run one plain BFS per source and the marking-based
// neighborhood scan, serially, exactly as the seed did. Both sides count as
// integers and scale once, so every comparison below is bit-exact.

import (
	"math"
	"testing"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

// serialDistanceProfile is the seed kernel: one textbook queue BFS per
// source over g.Neighbors, touched-entry distance reset, integer pair
// counts scaled once at the end.
func serialDistanceProfile(g *graph.Graph, opt ProfileOptions) *DistanceProfile {
	n := g.NumNodes()
	srcs, scale := opt.sources(n)
	p := &DistanceProfile{Sources: len(srcs)}
	if len(srcs) == 0 {
		return p
	}
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]graph.NodeID, 0, n)
	var counts []int64
	var pairs int64
	for _, s := range srcs {
		queue = queue[:0]
		dist[s] = 0
		queue = append(queue, s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w := range g.Neighbors(v) {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
			}
		}
		for _, v := range queue {
			d := int(dist[v])
			dist[v] = -1
			if d == 0 {
				continue
			}
			for d >= len(counts) {
				counts = append(counts, 0)
			}
			counts[d]++
			pairs++
			if d > p.Diameter {
				p.Diameter = d
			}
		}
	}
	p.DistCounts = make([]float64, len(counts))
	for d, c := range counts {
		p.DistCounts[d] = float64(c) * scale
	}
	p.ReachablePairs = float64(pairs) * scale
	return p
}

// serialLocalClustering is the seed kernel: mark each node's neighborhood,
// count neighbor-neighbor edges by scanning each neighbor's adjacency.
func serialLocalClustering(g *graph.Graph) []float64 {
	n := g.NumNodes()
	cc := make([]float64, n)
	mark := make([]bool, n)
	for u := 0; u < n; u++ {
		nb := g.Neighbors(graph.NodeID(u))
		d := len(nb)
		if d < 2 {
			continue
		}
		for _, v := range nb {
			mark[v] = true
		}
		links := 0
		for _, v := range nb {
			for _, w := range g.Neighbors(v) {
				if w > v && mark[w] {
					links++
				}
			}
		}
		for _, v := range nb {
			mark[v] = false
		}
		cc[u] = 2 * float64(links) / float64(d*(d-1))
	}
	return cc
}

// TestDistanceProfileMatchesSerialOracle pins the direction-optimizing
// parallel profile to the seed BFS bit for bit, across generators, exact and
// sampled modes, and worker counts.
func TestDistanceProfileMatchesSerialOracle(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"BA", gen.BarabasiAlbert(400, 3, 7)},
		{"ER", gen.ErdosRenyi(400, 900, 11)},
		{"WS", gen.WattsStrogatz(400, 6, 0.1, 13)},
	}
	modes := []ProfileOptions{
		{},
		{Sources: 60, Seed: 3},
	}
	for _, tg := range graphs {
		for _, mode := range modes {
			want := serialDistanceProfile(tg.g, mode)
			for _, workers := range []int{1, 2, 4} {
				opt := mode
				opt.Workers = workers
				got := NewDistanceProfile(tg.g, opt)
				if got.Sources != want.Sources || got.Diameter != want.Diameter {
					t.Fatalf("%s sources=%d workers=%d: sources/diameter %d/%d, want %d/%d",
						tg.name, mode.Sources, workers, got.Sources, got.Diameter, want.Sources, want.Diameter)
				}
				if got.ReachablePairs != want.ReachablePairs {
					t.Fatalf("%s sources=%d workers=%d: pairs %v, want %v",
						tg.name, mode.Sources, workers, got.ReachablePairs, want.ReachablePairs)
				}
				if len(got.DistCounts) != len(want.DistCounts) {
					t.Fatalf("%s sources=%d workers=%d: %d distances, want %d",
						tg.name, mode.Sources, workers, len(got.DistCounts), len(want.DistCounts))
				}
				for d := range want.DistCounts {
					if got.DistCounts[d] != want.DistCounts[d] {
						t.Fatalf("%s sources=%d workers=%d: count[%d] = %v, want %v",
							tg.name, mode.Sources, workers, d, got.DistCounts[d], want.DistCounts[d])
					}
				}
			}
		}
	}
}

// TestClusteringMatchesSerialOracle pins the forward-algorithm parallel
// clustering to the seed marking-based scan bit for bit: both compute the
// same integer triangle count per node and divide by the same degree term.
func TestClusteringMatchesSerialOracle(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"BA", gen.BarabasiAlbert(300, 3, 5)},
		{"HK", gen.HolmeKim(300, 4, 0.3, 9)},
		{"ER", gen.ErdosRenyi(300, 800, 17)},
	}
	for _, tg := range graphs {
		want := serialLocalClustering(tg.g)
		for _, workers := range []int{1, 3} {
			got := LocalClustering(tg.g, workers)
			for u := range want {
				if got[u] != want[u] {
					t.Fatalf("%s workers=%d node %d: %v, want %v", tg.name, workers, u, got[u], want[u])
				}
			}
		}
	}
}

// TestTrianglesWorkerCountIndependent pins the total triangle count across
// worker counts and against the per-node forward counts.
func TestTrianglesWorkerCountIndependent(t *testing.T) {
	g := gen.HolmeKim(500, 4, 0.4, 21)
	want := Triangles(g, 1)
	for _, workers := range []int{2, 4, 7} {
		if got := Triangles(g, workers); got != want {
			t.Fatalf("workers=%d: %d triangles, want %d", workers, got, want)
		}
	}
	var sum int64
	for _, c := range triangleCounts(g, 3) {
		sum += c
	}
	if int(sum/3) != want {
		t.Fatalf("forward per-node counts sum to %d triangles, edge scan says %d", sum/3, want)
	}
}

// TestPageRankClampsOutOfRangeOptions pins the documented clamping: Damping
// outside (0, 1) and non-positive Iterations select the defaults, so those
// calls are bit-identical to the zero-value options.
func TestPageRankClampsOutOfRangeOptions(t *testing.T) {
	g := gen.BarabasiAlbert(120, 3, 1)
	want := PageRank(g, PageRankOptions{})
	for _, opt := range []PageRankOptions{
		{Damping: 1.5},
		{Damping: -0.3},
		{Damping: 1},
		{Iterations: -3},
		{Damping: 2.5, Iterations: -1},
	} {
		got := PageRank(g, opt)
		for u := range want {
			if got[u] != want[u] {
				t.Fatalf("%+v node %d: %v, want default-equivalent %v", opt, u, got[u], want[u])
			}
		}
	}
}

// TestPageRankSumsToOneWithIsolatedNodes covers the dangling-mass handling:
// isolated nodes redistribute uniformly and the vector stays a distribution,
// identically at any worker count.
func TestPageRankSumsToOneWithIsolatedNodes(t *testing.T) {
	// Nodes 0..5 form a path plus a chord; nodes 6..9 are isolated.
	b := graph.NewBuilder(10)
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {1, 4}} {
		b.TryAddEdge(e[0], e[1])
	}
	g := b.Graph()
	pr := PageRank(g, PageRankOptions{Workers: 1})
	var sum float64
	for _, x := range pr {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PageRank sums to %v, want 1", sum)
	}
	for u := 6; u < 10; u++ {
		if pr[u] <= 0 {
			t.Fatalf("isolated node %d has rank %v, want > 0", u, pr[u])
		}
		if pr[u] != pr[6] {
			t.Fatalf("isolated nodes differ: pr[%d]=%v, pr[6]=%v", u, pr[u], pr[6])
		}
	}
	for _, workers := range []int{2, 5} {
		got := PageRank(g, PageRankOptions{Workers: workers})
		for u := range pr {
			if got[u] != pr[u] {
				t.Fatalf("workers=%d node %d: %v != %v", workers, u, got[u], pr[u])
			}
		}
	}
}

// TestProfileSampledSourcesPinned pins the sampled source set for a fixed
// seed: the profile must draw through the shared partial Fisher–Yates
// sampler, not a fresh Perm.
func TestProfileSampledSourcesPinned(t *testing.T) {
	srcs, scale := ProfileOptions{Sources: 5, Seed: 7}.sources(20)
	want := []graph.NodeID{6, 14, 11, 8, 3}
	if len(srcs) != len(want) {
		t.Fatalf("sampled %d sources, want %d", len(srcs), len(want))
	}
	for i := range want {
		if srcs[i] != want[i] {
			t.Fatalf("sources = %v, want %v", srcs, want)
		}
	}
	if scale != 4 {
		t.Errorf("scale = %v, want 4", scale)
	}
	// Exact modes: Sources <= 0 and Sources >= n both enumerate every node.
	for _, s := range []int{0, -3, 20, 99} {
		srcs, scale := ProfileOptions{Sources: s, Seed: 7}.sources(20)
		if len(srcs) != 20 || scale != 1 {
			t.Fatalf("Sources=%d: %d sources scale %v, want 20 and 1", s, len(srcs), scale)
		}
		for i, u := range srcs {
			if int(u) != i {
				t.Fatalf("Sources=%d: exact sources not identity at %d: %v", s, i, u)
			}
		}
	}
}
