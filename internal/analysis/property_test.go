package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

// TestPageRankMassConservation: PageRank sums to 1 on any graph, including
// ones with isolated nodes.
func TestPageRankMassConservation(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		g := gen.ErdosRenyi(40, int(mRaw)%120+1, seed)
		pr := PageRank(g, PageRankOptions{})
		var sum float64
		for _, s := range pr {
			if s < 0 {
				return false
			}
			sum += s
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDistanceProfilePairCountsEven: ordered reachable pair counts are
// symmetric, so the exact profile's total is always even.
func TestDistanceProfilePairCountsEven(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(30, 45, seed)
		p := NewDistanceProfile(g, ProfileOptions{})
		total := int64(math.Round(p.ReachablePairs))
		return total%2 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestKCoreMatchesIterativePeel cross-checks the bucket implementation
// against a naive repeated-peel oracle.
func TestKCoreMatchesIterativePeel(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(25, 50, seed)
		fast := KCore(g)
		slow := naiveKCore(g)
		for u := range fast {
			if fast[u] != slow[u] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// naiveKCore computes core numbers by repeatedly deleting sub-k nodes.
func naiveKCore(g *graph.Graph) []int {
	n := g.NumNodes()
	core := make([]int, n)
	for k := 1; ; k++ {
		// Compute the k-core by repeated peeling.
		alive := make([]bool, n)
		deg := make([]int, n)
		for u := 0; u < n; u++ {
			alive[u] = true
			deg[u] = g.Degree(graph.NodeID(u))
		}
		for changed := true; changed; {
			changed = false
			for u := 0; u < n; u++ {
				if alive[u] && deg[u] < k {
					alive[u] = false
					changed = true
					for _, v := range g.Neighbors(graph.NodeID(u)) {
						if alive[v] {
							deg[v]--
						}
					}
				}
			}
		}
		any := false
		for u := 0; u < n; u++ {
			if alive[u] {
				core[u] = k
				any = true
			}
		}
		if !any {
			return core
		}
	}
}

// TestDegreeDistributionSumsToOne: distributions are probability vectors.
func TestDegreeDistributionSumsToOne(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		g := gen.BarabasiAlbert(60, 2, seed)
		cap := int(capRaw) % 20 // 0 disables
		dist := DegreeDistribution(g, cap)
		var sum float64
		for _, x := range dist {
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestComponentsPartition: component labels partition the node set and
// respect edges.
func TestComponentsPartition(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(40, 30, seed) // sparse: multiple components
		labels, count := ConnectedComponents(g)
		for _, l := range labels {
			if l < 0 || int(l) >= count {
				return false
			}
		}
		for _, e := range g.Edges() {
			if labels[e.U] != labels[e.V] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
