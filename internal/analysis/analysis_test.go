package analysis

import (
	"math"
	"testing"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

func TestBFSPath(t *testing.T) {
	g := gen.Path(5)
	dist := BFS(g, 0)
	want := []int32{0, 1, 2, 3, 4}
	for u, w := range want {
		if dist[u] != w {
			t.Errorf("dist[%d] = %d, want %d", u, dist[u], w)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}})
	dist := BFS(g, 0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Errorf("unreachable distances = %d, %d, want -1, -1", dist[2], dist[3])
	}
}

func TestConnectedComponents(t *testing.T) {
	g := graph.MustFromEdges(7, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
	labels, count := ConnectedComponents(g)
	if count != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("count = %d, want 4", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("first component split")
	}
	if labels[3] != labels[4] {
		t.Error("second component split")
	}
	if labels[0] == labels[3] || labels[5] == labels[6] {
		t.Error("distinct components merged")
	}
}

func TestLargestComponent(t *testing.T) {
	g := graph.MustFromEdges(7, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
	lc := LargestComponent(g)
	if len(lc) != 3 {
		t.Fatalf("largest component size = %d, want 3", len(lc))
	}
	want := map[graph.NodeID]bool{0: true, 1: true, 2: true}
	for _, u := range lc {
		if !want[u] {
			t.Errorf("unexpected member %d", u)
		}
	}
}

func TestDegreeDistribution(t *testing.T) {
	g := gen.Star(5) // hub degree 4, four leaves degree 1
	dist := DegreeDistribution(g, 0)
	if len(dist) != 5 {
		t.Fatalf("len = %d, want 5", len(dist))
	}
	if math.Abs(dist[1]-0.8) > 1e-9 || math.Abs(dist[4]-0.2) > 1e-9 {
		t.Errorf("dist = %v, want 0.8 at degree 1 and 0.2 at degree 4", dist)
	}
	// With cap 2, the hub aggregates into bucket 2.
	capped := DegreeDistribution(g, 2)
	if len(capped) != 3 || math.Abs(capped[2]-0.2) > 1e-9 {
		t.Errorf("capped dist = %v, want hub mass at index 2", capped)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := gen.Star(5)
	h := DegreeHistogram(g)
	if h[1] != 4 || h[4] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestMeanByDegree(t *testing.T) {
	g := gen.Star(5)
	score := []float64{10, 1, 2, 3, 4} // hub 10; leaves 1..4 (mean 2.5)
	m := MeanByDegree(g, score)
	if math.Abs(m[4]-10) > 1e-9 {
		t.Errorf("mean at degree 4 = %v, want 10", m[4])
	}
	if math.Abs(m[1]-2.5) > 1e-9 {
		t.Errorf("mean at degree 1 = %v, want 2.5", m[1])
	}
}

func TestLocalClusteringTriangle(t *testing.T) {
	// Triangle plus a pendant: nodes 0,1,2 form K3; 3 hangs off 0.
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 0, V: 3}})
	cc := LocalClustering(g, 1)
	// Node 0 has neighbors {1,2,3}: one edge (1,2) of three pairs.
	if math.Abs(cc[0]-1.0/3) > 1e-9 {
		t.Errorf("cc[0] = %v, want 1/3", cc[0])
	}
	if math.Abs(cc[1]-1) > 1e-9 || math.Abs(cc[2]-1) > 1e-9 {
		t.Errorf("cc[1], cc[2] = %v, %v, want 1, 1", cc[1], cc[2])
	}
	if cc[3] != 0 {
		t.Errorf("pendant cc = %v, want 0", cc[3])
	}
}

func TestAverageClustering(t *testing.T) {
	if got := AverageClustering(gen.Complete(5), 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("K5 average clustering = %v, want 1", got)
	}
	if got := AverageClustering(gen.Cycle(6), 1); got != 0 {
		t.Errorf("C6 average clustering = %v, want 0", got)
	}
}

func TestTriangles(t *testing.T) {
	if got := Triangles(gen.Complete(4), 1); got != 4 {
		t.Errorf("K4 triangles = %d, want 4", got)
	}
	if got := Triangles(gen.Cycle(5), 1); got != 0 {
		t.Errorf("C5 triangles = %d, want 0", got)
	}
	if got := Triangles(gen.Complete(5), 1); got != 10 {
		t.Errorf("K5 triangles = %d, want 10", got)
	}
}

func TestClusteringByDegree(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 0, V: 3}})
	byDeg := ClusteringByDegree(g, 1)
	if math.Abs(byDeg[2]-1) > 1e-9 { // nodes 1 and 2, both cc = 1
		t.Errorf("mean cc at degree 2 = %v, want 1", byDeg[2])
	}
	if math.Abs(byDeg[3]-1.0/3) > 1e-9 { // node 0
		t.Errorf("mean cc at degree 3 = %v, want 1/3", byDeg[3])
	}
}

func TestDistanceProfilePath(t *testing.T) {
	g := gen.Path(4) // distances: six ordered pairs each way
	p := NewDistanceProfile(g, ProfileOptions{})
	// Ordered pairs: d=1: 6, d=2: 4, d=3: 2; total 12.
	if p.ReachablePairs != 12 {
		t.Errorf("reachable pairs = %v, want 12", p.ReachablePairs)
	}
	if p.Diameter != 3 {
		t.Errorf("diameter = %d, want 3", p.Diameter)
	}
	dist := p.Distribution()
	want := []float64{0, 0.5, 1.0 / 3, 1.0 / 6}
	for d, w := range want {
		if math.Abs(dist[d]-w) > 1e-9 {
			t.Errorf("dist[%d] = %v, want %v", d, dist[d], w)
		}
	}
	hop := p.HopPlot()
	if math.Abs(hop[1]-0.5) > 1e-9 || math.Abs(hop[3]-1) > 1e-9 {
		t.Errorf("hop-plot = %v", hop)
	}
	if got, want := p.MeanDistance(), (6.0+8+6)/12; math.Abs(got-want) > 1e-9 {
		t.Errorf("mean distance = %v, want %v", got, want)
	}
}

func TestDistanceProfileSampledApproximates(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, 12)
	exact := NewDistanceProfile(g, ProfileOptions{})
	sampled := NewDistanceProfile(g, ProfileOptions{Sources: 100, Seed: 3})
	ed, sd := exact.Distribution(), sampled.Distribution()
	for d := 0; d < len(ed) && d < len(sd); d++ {
		if math.Abs(ed[d]-sd[d]) > 0.08 {
			t.Errorf("distance %d: exact %v vs sampled %v", d, ed[d], sd[d])
		}
	}
	if math.Abs(exact.MeanDistance()-sampled.MeanDistance()) > 0.3 {
		t.Errorf("mean distance: exact %v vs sampled %v", exact.MeanDistance(), sampled.MeanDistance())
	}
}

func TestDistanceProfileDisconnected(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	p := NewDistanceProfile(g, ProfileOptions{})
	if p.ReachablePairs != 4 { // (0,1),(1,0),(2,3),(3,2)
		t.Errorf("reachable pairs = %v, want 4", p.ReachablePairs)
	}
}

func TestPageRankUniformOnRegular(t *testing.T) {
	g := gen.Cycle(10)
	pr := PageRank(g, PageRankOptions{})
	for u, s := range pr {
		if math.Abs(s-0.1) > 1e-6 {
			t.Errorf("pr[%d] = %v, want 0.1 on a regular graph", u, s)
		}
	}
}

func TestPageRankStar(t *testing.T) {
	g := gen.Star(11)
	pr := PageRank(g, PageRankOptions{})
	var total float64
	for _, s := range pr {
		total += s
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("mass = %v, want 1", total)
	}
	if pr[0] <= pr[1] {
		t.Errorf("hub %v not above leaf %v", pr[0], pr[1])
	}
	for u := 2; u < 11; u++ {
		if math.Abs(pr[u]-pr[1]) > 1e-9 {
			t.Errorf("leaves differ: pr[%d]=%v pr[1]=%v", u, pr[u], pr[1])
		}
	}
}

func TestPageRankDangling(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}}) // node 2 isolated
	pr := PageRank(g, PageRankOptions{})
	var total float64
	for _, s := range pr {
		total += s
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("mass with dangling node = %v, want 1", total)
	}
	if pr[2] <= 0 {
		t.Error("isolated node got no mass")
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.1, 0.5, 0.3, 0.5, 0.2}
	got := TopK(scores, 3)
	want := []graph.NodeID{1, 3, 2} // ties broken by lower index
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
	if len(TopK(scores, 99)) != 5 {
		t.Error("k > len not clamped")
	}
	if TopK(scores, 0) != nil {
		t.Error("k = 0 should give nil")
	}
}

func TestTwoHopPairsPath(t *testing.T) {
	g := gen.Path(4)
	pairs := TwoHopPairs(g, 0, 1)
	// Distance-2 pairs: (0,2), (1,3).
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v, want 2 pairs", pairs)
	}
	set := map[graph.Edge]bool{}
	for _, p := range pairs {
		set[p] = true
	}
	if !set[graph.Edge{U: 0, V: 2}] || !set[graph.Edge{U: 1, V: 3}] {
		t.Errorf("pairs = %v, want (0,2) and (1,3)", pairs)
	}
}

func TestTwoHopPairsExcludesAdjacentAndFar(t *testing.T) {
	g := gen.Path(5)
	for _, p := range TwoHopPairs(g, 0, 1) {
		if g.HasEdge(p.U, p.V) {
			t.Errorf("adjacent pair %v emitted", p)
		}
		if d := BFS(g, p.U)[p.V]; d != 2 {
			t.Errorf("pair %v at distance %d, want 2", p, d)
		}
	}
}

func TestTwoHopPairsCap(t *testing.T) {
	g := gen.Complete(20) // no 2-hop pairs at all: everything adjacent
	if got := TwoHopPairs(g, 5, 1); len(got) != 0 {
		t.Errorf("K20 two-hop pairs = %v, want none", got)
	}
	g2 := gen.Star(50) // every leaf pair is a 2-hop pair: C(49,2) = 1176
	capped := TwoHopPairs(g2, 100, 2)
	if len(capped) != 100 {
		t.Errorf("capped pairs = %d, want 100", len(capped))
	}
	all := TwoHopPairs(g2, 0, 1)
	if len(all) != 1176 {
		t.Errorf("uncapped pairs = %d, want 1176", len(all))
	}
}
