package analysis

import (
	"math"
	"sort"

	"edgeshed/internal/graph"
)

// DegreeAssortativity returns the Pearson correlation of endpoint degrees
// over edges (Newman's assortativity coefficient): positive when hubs link
// to hubs, negative when hubs link to leaves. Returns 0 for graphs with no
// degree variance across edge endpoints.
func DegreeAssortativity(g *graph.Graph) float64 {
	m := g.NumEdges()
	if m == 0 {
		return 0
	}
	// Standard formulation over edges, symmetrized: each edge contributes
	// both (deg u, deg v) and (deg v, deg u).
	var sumXY, sumX, sumX2 float64
	for _, e := range g.Edges() {
		du := float64(g.Degree(e.U))
		dv := float64(g.Degree(e.V))
		sumXY += 2 * du * dv
		sumX += du + dv
		sumX2 += du*du + dv*dv
	}
	n := float64(2 * m)
	num := sumXY/n - (sumX/n)*(sumX/n)
	den := sumX2/n - (sumX/n)*(sumX/n)
	if den == 0 {
		return 0
	}
	return num / den
}

// ApproxDiameter lower-bounds the diameter with the classic double-sweep:
// BFS from an arbitrary node of the largest component, then BFS again from
// the farthest node found. Exact on trees; within a factor ~2 in general
// and usually exact on real networks.
func ApproxDiameter(g *graph.Graph) int {
	lc := LargestComponent(g)
	if len(lc) == 0 {
		return 0
	}
	far := func(s graph.NodeID) (graph.NodeID, int32) {
		dist := BFS(g, s)
		best, bestD := s, int32(0)
		for u, d := range dist {
			if d > bestD {
				best, bestD = graph.NodeID(u), d
			}
		}
		return best, bestD
	}
	a, _ := far(lc[0])
	_, d := far(a)
	return int(d)
}

// KCore returns each node's core number: the largest k such that the node
// survives in the k-core (the maximal subgraph with all degrees >= k).
// Computed with the linear-time bucket peeling of Batagelj–Zaveršnik.
func KCore(g *graph.Graph) []int {
	n := g.NumNodes()
	core := make([]int, n)
	if n == 0 {
		return core
	}
	deg := g.Degrees()
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	// Bucket-sort nodes by degree.
	binStart := make([]int, maxDeg+2)
	for _, d := range deg {
		binStart[d+1]++
	}
	for d := 1; d <= maxDeg+1; d++ {
		binStart[d] += binStart[d-1]
	}
	pos := make([]int, n)    // node -> index in vert
	vert := make([]int32, n) // sorted nodes
	next := append([]int(nil), binStart[:maxDeg+1]...)
	for u := 0; u < n; u++ {
		pos[u] = next[deg[u]]
		vert[pos[u]] = int32(u)
		next[deg[u]]++
	}
	// Peel in degree order, demoting neighbors as they lose support.
	curDeg := append([]int(nil), deg...)
	for i := 0; i < n; i++ {
		u := vert[i]
		core[u] = curDeg[u]
		for _, v := range g.Neighbors(u) {
			if curDeg[v] <= curDeg[u] {
				continue
			}
			// Swap v to the front of its bucket, then shrink its degree.
			dv := curDeg[v]
			pw := binStart[dv]
			w := vert[pw]
			if v != w {
				vert[pos[v]], vert[pw] = w, v
				pos[w], pos[v] = pos[v], pw
			}
			binStart[dv]++
			curDeg[v]--
		}
	}
	return core
}

// MaxCore returns the largest core number in g (the degeneracy).
func MaxCore(g *graph.Graph) int {
	max := 0
	for _, c := range KCore(g) {
		if c > max {
			max = c
		}
	}
	return max
}

// CoreSizes returns, for k = 0..MaxCore, how many nodes have core number
// >= k (the k-core size profile).
func CoreSizes(g *graph.Graph) []int {
	core := KCore(g)
	max := 0
	for _, c := range core {
		if c > max {
			max = c
		}
	}
	sizes := make([]int, max+1)
	for _, c := range core {
		for k := 0; k <= c; k++ {
			sizes[k]++
		}
	}
	return sizes
}

// RichClub returns the rich-club coefficient φ(k) for each degree threshold
// k: the density among nodes of degree > k. A rising φ(k) means hubs
// preferentially interconnect — the structure CRR's centrality ranking
// tends to preserve. Thresholds with fewer than two qualifying nodes get 0.
func RichClub(g *graph.Graph) []float64 {
	maxDeg := g.MaxDegree()
	phi := make([]float64, maxDeg+1)
	if maxDeg == 0 {
		return phi
	}
	// For each k: N_k = #nodes with degree > k, E_k = #edges with both
	// endpoints of degree > k. Computed by sorting thresholds implicitly:
	// count per exact degree, then suffix sums.
	nodesAbove := make([]int, maxDeg+2)
	for u := 0; u < g.NumNodes(); u++ {
		nodesAbove[g.Degree(graph.NodeID(u))]++
	}
	for k := maxDeg - 1; k >= 0; k-- {
		nodesAbove[k] += nodesAbove[k+1]
	}
	// edgesAbove[k] = edges whose min endpoint degree > k: bucket each edge
	// at its min endpoint degree, then suffix-sum.
	edgesAbove := make([]int, maxDeg+2)
	for _, e := range g.Edges() {
		du, dv := g.Degree(e.U), g.Degree(e.V)
		if dv < du {
			du = dv
		}
		edgesAbove[du]++
	}
	for k := maxDeg - 1; k >= 0; k-- {
		edgesAbove[k] += edgesAbove[k+1]
	}
	for k := 0; k <= maxDeg; k++ {
		n := nodesAbove[k+1]
		if n < 2 {
			continue
		}
		phi[k] = float64(edgesAbove[k+1]) / (float64(n) * float64(n-1) / 2)
	}
	return phi
}

// GiniDegree returns the Gini coefficient of the degree sequence, a scalar
// summary of degree inequality useful for checking that shedding preserved
// the heavy tail. Returns 0 for empty or degree-uniform graphs.
func GiniDegree(g *graph.Graph) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	deg := g.Degrees()
	// Gini = Σ_i Σ_j |d_i - d_j| / (2 n² mean). Use the sorted form to stay
	// O(n log n).
	sorted := append([]int(nil), deg...)
	sort.Ints(sorted)
	var cum, total float64
	for i, d := range sorted {
		cum += float64(d) * float64(2*(i+1)-n-1)
		total += float64(d)
	}
	if total == 0 {
		return 0
	}
	return math.Abs(cum / (float64(n) * total))
}
