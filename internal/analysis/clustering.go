package analysis

import (
	"edgeshed/internal/graph"
)

// LocalClustering returns each node's local clustering coefficient: the
// fraction of its neighbor pairs that are themselves connected. Nodes of
// degree < 2 get 0.
func LocalClustering(g *graph.Graph) []float64 {
	n := g.NumNodes()
	cc := make([]float64, n)
	mark := make([]bool, n)
	for u := 0; u < n; u++ {
		nb := g.Neighbors(graph.NodeID(u))
		d := len(nb)
		if d < 2 {
			continue
		}
		// Mark u's neighborhood, then count neighbor-neighbor edges by
		// scanning each neighbor's adjacency once: O(Σ_{v∈N(u)} deg v)
		// instead of the quadratic pairwise probe.
		for _, v := range nb {
			mark[v] = true
		}
		links := 0
		for _, v := range nb {
			for _, w := range g.Neighbors(v) {
				if w > v && mark[w] {
					links++
				}
			}
		}
		for _, v := range nb {
			mark[v] = false
		}
		cc[u] = 2 * float64(links) / float64(d*(d-1))
	}
	return cc
}

// AverageClustering returns the mean local clustering coefficient over all
// nodes (the network average clustering coefficient).
func AverageClustering(g *graph.Graph) float64 {
	cc := LocalClustering(g)
	if len(cc) == 0 {
		return 0
	}
	var sum float64
	for _, c := range cc {
		sum += c
	}
	return sum / float64(len(cc))
}

// ClusteringByDegree returns the mean local clustering coefficient at each
// degree, the series plotted in the paper's Figure 9.
func ClusteringByDegree(g *graph.Graph) []float64 {
	return MeanByDegree(g, LocalClustering(g))
}

// Triangles returns the total number of triangles in g.
func Triangles(g *graph.Graph) int {
	count := 0
	for _, e := range g.Edges() {
		a, b := g.Neighbors(e.U), g.Neighbors(e.V)
		i, j := 0, 0
		for i < len(a) && j < len(b) {
			switch {
			case a[i] < b[j]:
				i++
			case a[i] > b[j]:
				j++
			default:
				count++
				i++
				j++
			}
		}
	}
	return count / 3
}
