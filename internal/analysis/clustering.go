package analysis

import (
	"edgeshed/internal/graph"
	"edgeshed/internal/par"
)

// forwardAdj is the degree-ordered "forward" adjacency used for triangle
// counting (Schank & Wagner's forward algorithm, the same orientation trick
// SNAP uses): nodes are ranked by (degree, id) ascending and each edge is
// kept only in its lower-ranked endpoint's list. Every triangle then appears
// exactly once, closing two forward edges with a third forward edge, and
// each list has length O(sqrt(m)) on the graphs that make the naive
// neighborhood scan quadratic — hub adjacency never gets rescanned per
// neighbor.
type forwardAdj struct {
	node    []graph.NodeID // node[r] is the node with rank r
	offsets []int32        // rank r's forward list is targets[offsets[r]:offsets[r+1]]
	targets []int32        // forward neighbors as ranks, in no particular order
}

// buildForwardAdj ranks nodes and orients the edges in O(|V| + |E|): a
// counting sort for the ranks, then two passes over the flat edge list —
// count, prefix-sum, fill. Ranks are a permutation, so the two endpoint
// ranks of an edge never tie.
func buildForwardAdj(g *graph.Graph) *forwardAdj {
	n := g.NumNodes()
	f := &forwardAdj{
		node:    make([]graph.NodeID, n),
		offsets: make([]int32, n+1),
	}
	// Counting sort by degree gives the rank order; ties break by node id
	// because nodes are scanned in id order within each degree bucket.
	maxDeg := g.MaxDegree()
	binStart := make([]int32, maxDeg+2)
	for u := 0; u < n; u++ {
		binStart[g.Degree(graph.NodeID(u))+1]++
	}
	for d := 1; d <= maxDeg+1; d++ {
		binStart[d] += binStart[d-1]
	}
	rank := make([]int32, n)
	for u := 0; u < n; u++ {
		d := g.Degree(graph.NodeID(u))
		r := binStart[d]
		binStart[d]++
		rank[u] = r
		f.node[r] = graph.NodeID(u)
	}
	edges := g.Edges()
	for _, e := range edges {
		ru, rv := rank[e.U], rank[e.V]
		if rv < ru {
			ru = rv
		}
		f.offsets[ru+1]++
	}
	for r := 0; r < n; r++ {
		f.offsets[r+1] += f.offsets[r]
	}
	f.targets = make([]int32, len(edges))
	cur := make([]int32, n)
	copy(cur, f.offsets[:n])
	for _, e := range edges {
		ru, rv := rank[e.U], rank[e.V]
		if ru < rv {
			f.targets[cur[ru]] = rv
			cur[ru]++
		} else {
			f.targets[cur[rv]] = ru
			cur[rv]++
		}
	}
	return f
}

// triangleCounts returns the number of triangles through each node,
// computed rank-parallel over the forward adjacency: each worker closes
// forward wedges for a stride of ranks into its own integer accumulator, and
// the per-worker counts merge exactly — the result is identical at any
// worker count. workers follows the par.Workers convention (<= 0 means
// GOMAXPROCS).
func triangleCounts(g *graph.Graph, workers int) []int64 {
	n := g.NumNodes()
	f := buildForwardAdj(g)
	w := par.Workers(workers, n)
	parts := make([][]int64, w)
	par.Run(w, func(id int) {
		tri := make([]int64, n)
		// stamp[rv] == r+1 marks rv as a forward neighbor of the rank r
		// currently being processed; versioned stamps avoid clearing.
		stamp := make([]int32, n)
		offsets, targets := f.offsets, f.targets
		for r := int32(id); r < int32(n); r += int32(w) {
			lo, hi := offsets[r], offsets[r+1]
			if hi-lo < 2 {
				continue
			}
			mark := r + 1
			for _, rv := range targets[lo:hi] {
				stamp[rv] = mark
			}
			// A triangle with ranks r < rv < rw is found exactly once: edge
			// r→rv is scanned, rv's forward list supplies rw, and the stamp
			// confirms the closing edge r→rw. The r and rv counts batch in
			// locals so the hot loop issues one array write per triangle.
			var triR int64
			for _, rv := range targets[lo:hi] {
				var triRV int64
				for _, rw := range targets[offsets[rv]:offsets[rv+1]] {
					if stamp[rw] == mark {
						triRV++
						tri[f.node[rw]]++
					}
				}
				if triRV != 0 {
					tri[f.node[rv]] += triRV
					triR += triRV
				}
			}
			if triR != 0 {
				tri[f.node[r]] += triR
			}
		}
		parts[id] = tri
	})
	total := parts[0]
	for _, p := range parts[1:] {
		for u, c := range p {
			total[u] += c
		}
	}
	return total
}

// LocalClustering returns each node's local clustering coefficient: the
// fraction of its neighbor pairs that are themselves connected. Nodes of
// degree < 2 get 0. workers is the parallelism across nodes; 0 (or
// negative) means GOMAXPROCS, and the result is bit-identical at any worker
// count because the per-node triangle counts are integers.
func LocalClustering(g *graph.Graph, workers int) []float64 {
	n := g.NumNodes()
	cc := make([]float64, n)
	if n == 0 {
		return cc
	}
	tri := triangleCounts(g, workers)
	for u := 0; u < n; u++ {
		d := g.Degree(graph.NodeID(u))
		if d < 2 {
			continue
		}
		cc[u] = 2 * float64(tri[u]) / float64(d*(d-1))
	}
	return cc
}

// AverageClustering returns the mean local clustering coefficient over all
// nodes (the network average clustering coefficient). workers follows the
// LocalClustering convention.
func AverageClustering(g *graph.Graph, workers int) float64 {
	cc := LocalClustering(g, workers)
	if len(cc) == 0 {
		return 0
	}
	var sum float64
	for _, c := range cc {
		sum += c
	}
	return sum / float64(len(cc))
}

// ClusteringByDegree returns the mean local clustering coefficient at each
// degree, the series plotted in the paper's Figure 9. workers follows the
// LocalClustering convention.
func ClusteringByDegree(g *graph.Graph, workers int) []float64 {
	return MeanByDegree(g, LocalClustering(g, workers))
}

// Triangles returns the total number of triangles in g, counted in parallel
// over static edge ranges: each worker intersects the (sorted) endpoint
// adjacencies of its edge block into an integer subtotal, and subtotals
// merge exactly, so the count is identical at any worker count. workers
// follows the par.Workers convention (<= 0 means GOMAXPROCS).
func Triangles(g *graph.Graph, workers int) int {
	edges := g.Edges()
	w := par.Workers(workers, len(edges))
	sums := make([]int64, w)
	par.Blocks(len(edges), w, func(id, lo, hi int) {
		var count int64
		for _, e := range edges[lo:hi] {
			a, b := g.Neighbors(e.U), g.Neighbors(e.V)
			i, j := 0, 0
			for i < len(a) && j < len(b) {
				switch {
				case a[i] < b[j]:
					i++
				case a[i] > b[j]:
					j++
				default:
					count++
					i++
					j++
				}
			}
		}
		sums[id] = count
	})
	var total int64
	for _, s := range sums {
		total += s
	}
	return int(total / 3)
}
