package analysis

import (
	"testing"

	"edgeshed/internal/graph/gen"
)

func BenchmarkBFS(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BFS(g, 0)
	}
}

func BenchmarkPageRank(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PageRank(g, PageRankOptions{})
	}
}

func BenchmarkLocalClustering(b *testing.B) {
	g := gen.HolmeKim(10000, 5, 0.5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LocalClustering(g, 1)
	}
}

func BenchmarkDistanceProfileSampled(b *testing.B) {
	g := gen.BarabasiAlbert(10000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewDistanceProfile(g, ProfileOptions{Sources: 128, Seed: 2})
	}
}

// The Serial/Parallel pairs below feed BENCH_tasks.json (make bench-tasks):
// benchjson divides Serial ns/op by Parallel ns/op per stem. Serial is the
// seed kernel preserved in oracle_test.go; Parallel is the production kernel
// at 4 workers.

// The profile pair uses m = 8 (average degree 16), in the density range of
// the paper's datasets (email-Enron ~10, ca-HepPh ~21), where the
// direction-optimizing traversal earns its keep.

func BenchmarkDistanceProfileSerial(b *testing.B) {
	g := gen.BarabasiAlbert(10000, 8, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serialDistanceProfile(g, ProfileOptions{Sources: 128, Seed: 2})
	}
}

func BenchmarkDistanceProfileParallel(b *testing.B) {
	g := gen.BarabasiAlbert(10000, 8, 1)
	g.CSR() // build the cached view outside the timed region
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewDistanceProfile(g, ProfileOptions{Sources: 128, Seed: 2, Workers: 4})
	}
}

// The PerSource/MSBFS pair (PR 7, recorded in BENCH_bfs.json by `make
// bench-bfs`) compares the replaced per-source direction-optimizing kernel
// against the bit-parallel batched engine, single worker, same graph and
// source sample as the Serial/Parallel pair above.

func BenchmarkDistanceProfilePerSource(b *testing.B) {
	g := gen.BarabasiAlbert(10000, 8, 1)
	g.CSR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perSourceDistanceProfile(g, ProfileOptions{Sources: 128, Seed: 2})
	}
}

func BenchmarkDistanceProfileMSBFS(b *testing.B) {
	g := gen.BarabasiAlbert(10000, 8, 1)
	g.CSR()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewDistanceProfile(g, ProfileOptions{Sources: 128, Seed: 2, Workers: 1})
	}
}

func BenchmarkClusteringSerial(b *testing.B) {
	g := gen.HolmeKim(10000, 5, 0.5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serialLocalClustering(g)
	}
}

func BenchmarkClusteringParallel(b *testing.B) {
	g := gen.HolmeKim(10000, 5, 0.5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LocalClustering(g, 4)
	}
}

func BenchmarkKCore(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KCore(g)
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	g := gen.ErdosRenyi(20000, 30000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConnectedComponents(g)
	}
}

func BenchmarkTwoHopPairsCapped(b *testing.B) {
	g := gen.BarabasiAlbert(5000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TwoHopPairs(g, 10000, 2)
	}
}
