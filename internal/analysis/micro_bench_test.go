package analysis

import (
	"testing"

	"edgeshed/internal/graph/gen"
)

func BenchmarkBFS(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BFS(g, 0)
	}
}

func BenchmarkPageRank(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PageRank(g, PageRankOptions{})
	}
}

func BenchmarkLocalClustering(b *testing.B) {
	g := gen.HolmeKim(10000, 5, 0.5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LocalClustering(g)
	}
}

func BenchmarkDistanceProfileSampled(b *testing.B) {
	g := gen.BarabasiAlbert(10000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewDistanceProfile(g, ProfileOptions{Sources: 128, Seed: 2})
	}
}

func BenchmarkKCore(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KCore(g)
	}
}

func BenchmarkConnectedComponents(b *testing.B) {
	g := gen.ErdosRenyi(20000, 30000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConnectedComponents(g)
	}
}

func BenchmarkTwoHopPairsCapped(b *testing.B) {
	g := gen.BarabasiAlbert(5000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TwoHopPairs(g, 10000, 2)
	}
}
