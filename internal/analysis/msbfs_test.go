package analysis

// Property tests for the MS-BFS distance profile: bit-identity across
// worker counts and batch widths against the preserved per-source kernel
// (persource_test.go), and non-perturbation under a live obs recorder.

import (
	"testing"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
	"edgeshed/internal/obs"
	"edgeshed/internal/par"
)

func profilesEqual(t *testing.T, label string, got, want *DistanceProfile) {
	t.Helper()
	if got.Sources != want.Sources || got.Diameter != want.Diameter {
		t.Fatalf("%s: sources/diameter %d/%d != oracle %d/%d",
			label, got.Sources, got.Diameter, want.Sources, want.Diameter)
	}
	if got.ReachablePairs != want.ReachablePairs {
		t.Fatalf("%s: pairs %v != oracle %v", label, got.ReachablePairs, want.ReachablePairs)
	}
	if len(got.DistCounts) != len(want.DistCounts) {
		t.Fatalf("%s: %d distances != oracle %d", label, len(got.DistCounts), len(want.DistCounts))
	}
	for d := range want.DistCounts {
		if got.DistCounts[d] != want.DistCounts[d] {
			t.Fatalf("%s: DistCounts[%d] = %v != oracle %v", label, d, got.DistCounts[d], want.DistCounts[d])
		}
	}
}

// TestProfileBitIdenticalAcrossWorkersAndBatch pins NewDistanceProfile
// bit-exactly to the replaced per-source direction-optimizing kernel across
// graphs, exact and sampled source sets, worker counts and batch widths:
// every configuration counts the same integers.
func TestProfileBitIdenticalAcrossWorkersAndBatch(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"BA", gen.BarabasiAlbert(250, 3, 7)},
		{"ER", gen.ErdosRenyi(250, 700, 11)},
		{"Disconnected", graph.MustFromEdges(60, []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 10, V: 11}, {U: 11, V: 12}, {U: 12, V: 13},
		})},
	}
	modes := []ProfileOptions{{}, {Sources: 64, Seed: 5}}
	for _, tg := range graphs {
		for _, mode := range modes {
			want := perSourceDistanceProfile(tg.g, mode)
			for _, workers := range []int{1, 2, 4, 7} {
				for _, batch := range []int{1, 8, 64} {
					opt := mode
					opt.Workers = workers
					opt.Batch = batch
					got := NewDistanceProfile(tg.g, opt)
					label := tg.name
					if mode.Sources > 0 {
						label += "/sampled"
					}
					profilesEqual(t, label, got, want)
				}
			}
		}
	}
}

// TestProfileBitIdenticalWithObs pins the instrumentation non-perturbation
// guarantee: a live recorder must not change one profile bit, and both the
// legacy bfs.* counters and the msbfs.* counters must move.
func TestProfileBitIdenticalWithObs(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 11)
	for _, workers := range []int{1, 4} {
		for _, batch := range []int{1, 64} {
			opt := ProfileOptions{Sources: 96, Seed: 5, Workers: workers, Batch: batch}
			want := NewDistanceProfile(g, opt)
			rec := obs.New("test")
			prev := par.SetSlotObserver(rec.Flight())
			o := opt
			o.Obs = rec.Root()
			got := NewDistanceProfile(g, o)
			par.SetSlotObserver(prev)
			rec.Root().End()
			profilesEqual(t, "obs", got, want)
			vals := rec.CounterValues()
			for _, name := range []string{
				"bfs.sources_done", "msbfs.batches_done", "msbfs.words_scanned",
			} {
				if vals[name] == 0 {
					t.Fatalf("workers=%d batch=%d: counter %q missing or zero: %v", workers, batch, name, vals)
				}
			}
			// Wide batches can saturate occupancy at level 1 and run every
			// level bottom-up, so assert on the direction tallies jointly.
			if vals["bfs.topdown_levels"]+vals["bfs.bottomup_levels"] == 0 {
				t.Fatalf("workers=%d batch=%d: no BFS levels recorded: %v", workers, batch, vals)
			}
			hists := rec.HistogramValues()
			for _, name := range []string{"msbfs.batch_ns", "msbfs.batch_occupancy", "msbfs.level_width"} {
				if hists[name] == nil || hists[name].Count == 0 {
					t.Fatalf("workers=%d batch=%d: histogram %q missing or empty", workers, batch, name)
				}
			}
		}
	}
}
