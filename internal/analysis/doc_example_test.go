package analysis_test

import (
	"fmt"

	"edgeshed/internal/analysis"
	"edgeshed/internal/graph/gen"
)

// ExamplePageRank ranks the hub of a star graph first.
func ExamplePageRank() {
	g := gen.Star(10)
	pr := analysis.PageRank(g, analysis.PageRankOptions{})
	top := analysis.TopK(pr, 1)
	fmt.Println("top node:", top[0])
	// Output:
	// top node: 0
}

// ExampleNewDistanceProfile summarizes a path graph's distances.
func ExampleNewDistanceProfile() {
	g := gen.Path(5)
	p := analysis.NewDistanceProfile(g, analysis.ProfileOptions{})
	fmt.Println("diameter:", p.Diameter)
	fmt.Printf("mean distance: %.1f\n", p.MeanDistance())
	// Output:
	// diameter: 4
	// mean distance: 2.0
}

// ExampleKCore peels a clique with a pendant tail.
func ExampleKCore() {
	g := gen.Complete(4)
	core := analysis.KCore(g)
	fmt.Println("K4 core numbers:", core)
	// Output:
	// K4 core numbers: [3 3 3 3]
}
