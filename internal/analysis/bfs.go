// Package analysis implements the graph-analysis algorithms behind the
// paper's seven evaluation tasks: BFS shortest paths, degree distributions,
// shortest-path distance distributions, hop-plots, clustering coefficients,
// PageRank and connected components.
package analysis

import (
	"edgeshed/internal/graph"
)

// BFS returns the hop distances from src to every node; unreachable nodes
// get -1.
func BFS(g *graph.Graph, src graph.NodeID) []int32 {
	dist := make([]int32, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	bfsInto(g, src, dist, make([]graph.NodeID, 0, g.NumNodes()))
	return dist
}

// bfsInto runs BFS from src using the caller's dist array (pre-filled with
// -1) and queue buffer; it returns the visited nodes in BFS order so callers
// can cheaply reset only the touched entries.
func bfsInto(g *graph.Graph, src graph.NodeID, dist []int32, queue []graph.NodeID) []graph.NodeID {
	dist[src] = 0
	queue = append(queue[:0], src)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.Neighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return queue
}

// ConnectedComponents labels each node with a component id in [0, count) and
// returns the labels with the component count. Isolated nodes form their own
// components.
func ConnectedComponents(g *graph.Graph) (labels []int32, count int) {
	n := g.NumNodes()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]graph.NodeID, 0, n)
	for s := 0; s < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		id := int32(count)
		count++
		labels[s] = id
		queue = append(queue[:0], graph.NodeID(s))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w := range g.Neighbors(v) {
				if labels[w] < 0 {
					labels[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	return labels, count
}

// LargestComponent returns the node set of the largest connected component.
func LargestComponent(g *graph.Graph) []graph.NodeID {
	labels, count := ConnectedComponents(g)
	if count == 0 {
		return nil
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for i, s := range sizes {
		if s > sizes[best] {
			best = i
		}
	}
	var nodes []graph.NodeID
	for u, l := range labels {
		if l == int32(best) {
			nodes = append(nodes, graph.NodeID(u))
		}
	}
	return nodes
}
