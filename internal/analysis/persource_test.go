package analysis

// This file preserves the per-source direction-optimizing BFS kernel
// (levelBFS, the PR-2 production path that internal/msbfs replaced) as a
// test oracle and as the PerSource benchmark baseline of the
// PerSource/MSBFS pairs recorded in BENCH_bfs.json. The MS-BFS profile
// counts the same integer pairs per distance, so comparisons are bit-exact.

import (
	"edgeshed/internal/graph"
)

// Per-source direction-optimizing BFS switch thresholds (Beamer, Asanović &
// Patterson, SC'12), as the replaced kernel used them; internal/msbfs keeps
// the same constants for its batch-occupancy generalization.
const (
	perSourceAlpha = 14
	perSourceBeta  = 24
)

// levelBFS is per-worker scratch for level-synchronous BFS traversals. It is
// reused across sources: allocate once per worker, call run per source. All
// bookkeeping is integer, so pair counts derived from it are exact and any
// merge order across workers yields the same bits.
type levelBFS struct {
	dist []int32 // -1 = unvisited; reset lazily via order
	// order holds visited nodes in level order: level d occupies
	// order[levelStart[d] : levelStart[d+1]] during a run.
	order []graph.NodeID
	// unvisited is bottom-up scratch: the ids not yet claimed, compacted as
	// levels claim them, so each bottom-up pass scans survivors instead of
	// all n nodes. Rebuilt lazily per run at the first bottom-up switch.
	unvisited []int32
	// counts[d] accumulates, across every source this worker has processed,
	// the number of nodes first reached at distance d >= 1.
	counts []int64
	// pairs accumulates the total reachable ordered pair count.
	pairs int64
	// diameter is the largest distance observed by this worker.
	diameter int
	// topDown, bottomUp and switches count levels expanded in each direction
	// and the flips between them (each traversal starts top-down).
	topDown, bottomUp, switches int64
}

// newLevelBFS returns scratch sized for an n-node graph.
func newLevelBFS(n int) *levelBFS {
	st := &levelBFS{
		dist:  make([]int32, n),
		order: make([]graph.NodeID, 0, n),
	}
	for i := range st.dist {
		st.dist[i] = -1
	}
	return st
}

// run performs one direction-optimizing BFS from src over the CSR view,
// folding the per-level visit counts into st.counts/st.pairs/st.diameter.
func (st *levelBFS) run(c *graph.CSR, src graph.NodeID) {
	offsets, targets := c.Offsets, c.Targets
	dist := st.dist
	order := st.order[:0]
	n := c.NumNodes()

	dist[src] = 0
	order = append(order, src)
	// remSlots counts adjacency slots owned by still-unvisited nodes;
	// scoutSlots counts slots owned by the current frontier.
	remSlots := int64(c.NumSlots())
	scoutSlots := int64(offsets[src+1] - offsets[src])
	remSlots -= scoutSlots

	frontStart := 0
	bottomUp := false
	haveUnvisited := false
	for d := int32(1); frontStart < len(order); d++ {
		frontEnd := len(order)
		frontier := order[frontStart:frontEnd]
		// Direction choice for this level.
		if !bottomUp {
			if scoutSlots > remSlots/perSourceAlpha {
				bottomUp = true
				st.switches++
			}
		} else if len(frontier) < n/perSourceBeta {
			bottomUp = false
			st.switches++
		}
		if bottomUp {
			st.bottomUp++
			prev := d - 1
			if !haveUnvisited {
				live := st.unvisited[:0]
				for u := int32(0); u < int32(n); u++ {
					if dist[u] >= 0 {
						continue
					}
					claimed := false
					for _, w := range targets[offsets[u]:offsets[u+1]] {
						if dist[w] == prev {
							dist[u] = d
							order = append(order, graph.NodeID(u))
							claimed = true
							break
						}
					}
					if !claimed {
						live = append(live, u)
					}
				}
				st.unvisited = live
				haveUnvisited = true
			} else {
				live := st.unvisited[:0]
				for _, u := range st.unvisited {
					if dist[u] >= 0 {
						continue
					}
					claimed := false
					for _, w := range targets[offsets[u]:offsets[u+1]] {
						if dist[w] == prev {
							dist[u] = d
							order = append(order, graph.NodeID(u))
							claimed = true
							break
						}
					}
					if !claimed {
						live = append(live, u)
					}
				}
				st.unvisited = live
			}
		} else {
			st.topDown++
			for _, v := range frontier {
				for _, w := range targets[offsets[v]:offsets[v+1]] {
					if dist[w] < 0 {
						dist[w] = d
						order = append(order, w)
					}
				}
			}
		}
		level := order[frontEnd:]
		if len(level) > 0 {
			scoutSlots = 0
			for _, v := range level {
				scoutSlots += int64(offsets[v+1] - offsets[v])
			}
			remSlots -= scoutSlots
			for int(d) >= len(st.counts) {
				st.counts = append(st.counts, 0)
			}
			st.counts[d] += int64(len(level))
			st.pairs += int64(len(level))
			if int(d) > st.diameter {
				st.diameter = int(d)
			}
		}
		frontStart = frontEnd
	}
	// Reset only the entries this traversal touched.
	for _, v := range order {
		dist[v] = -1
	}
	st.order = order
}

// perSourceDistanceProfile is the replaced production driver: one
// direction-optimizing BFS per source, serially. It is the PerSource half
// of the DistanceProfile PerSource/MSBFS benchmark pair and an additional
// bit-exact oracle for the MS-BFS profile.
func perSourceDistanceProfile(g *graph.Graph, opt ProfileOptions) *DistanceProfile {
	n := g.NumNodes()
	srcs, scale := opt.sources(n)
	p := &DistanceProfile{Sources: len(srcs)}
	if len(srcs) == 0 {
		return p
	}
	c := g.CSR()
	st := newLevelBFS(n)
	for _, s := range srcs {
		st.run(c, s)
	}
	p.Diameter = st.diameter
	p.DistCounts = make([]float64, len(st.counts))
	for d, cnt := range st.counts {
		p.DistCounts[d] = float64(cnt) * scale
	}
	p.ReachablePairs = float64(st.pairs) * scale
	return p
}
