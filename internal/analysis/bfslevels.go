package analysis

import (
	"edgeshed/internal/graph"
)

// Direction-optimizing BFS switch thresholds (Beamer, Asanović & Patterson,
// SC'12): go bottom-up when the frontier owns more than 1/bfsAlpha of the
// still-unexplored adjacency slots, return top-down when the frontier
// shrinks below 1/bfsBeta of the nodes. The classic constants work well on
// the low-diameter scale-free graphs the paper evaluates; on high-diameter
// graphs (paths, grids) the frontier never grows enough to trigger
// bottom-up and the kernel degenerates to plain top-down BFS.
const (
	bfsAlpha = 14
	bfsBeta  = 24
)

// levelBFS is per-worker scratch for level-synchronous BFS traversals. It is
// reused across sources: allocate once per worker, call run per source. All
// bookkeeping is integer, so pair counts derived from it are exact and any
// merge order across workers yields the same bits.
type levelBFS struct {
	dist []int32 // -1 = unvisited; reset lazily via order
	// order holds visited nodes in level order: level d occupies
	// order[levelStart[d] : levelStart[d+1]] during a run.
	order []graph.NodeID
	// unvisited is bottom-up scratch: the ids not yet claimed, compacted as
	// levels claim them, so each bottom-up pass scans survivors instead of
	// all n nodes. Rebuilt lazily per run at the first bottom-up switch.
	unvisited []int32
	// counts[d] accumulates, across every source this worker has processed,
	// the number of nodes first reached at distance d >= 1.
	counts []int64
	// pairs accumulates the total reachable ordered pair count.
	pairs int64
	// diameter is the largest distance observed by this worker.
	diameter int
	// topDown, bottomUp and switches count, across every source this worker
	// has processed, the levels expanded in each direction and the flips
	// between them (each traversal starts top-down). They are plain local
	// tallies — folded into observability counters only when a caller asks —
	// so counting them never perturbs the traversal.
	topDown, bottomUp, switches int64
}

// newLevelBFS returns scratch sized for an n-node graph.
func newLevelBFS(n int) *levelBFS {
	st := &levelBFS{
		dist:  make([]int32, n),
		order: make([]graph.NodeID, 0, n),
	}
	for i := range st.dist {
		st.dist[i] = -1
	}
	return st
}

// run performs one direction-optimizing BFS from src over the CSR view,
// folding the per-level visit counts into st.counts/st.pairs/st.diameter.
// The traversal is level-synchronous: within a level it expands either
// top-down (scan the frontier's adjacency) or bottom-up (scan unvisited
// nodes for a parent in the previous level), switching by the Beamer
// heuristic. Both directions discover exactly the true BFS levels, so the
// counts are independent of the strategy actually chosen.
func (st *levelBFS) run(c *graph.CSR, src graph.NodeID) {
	offsets, targets := c.Offsets, c.Targets
	dist := st.dist
	order := st.order[:0]
	n := c.NumNodes()

	dist[src] = 0
	order = append(order, src)
	// remSlots counts adjacency slots owned by still-unvisited nodes;
	// scoutSlots counts slots owned by the current frontier.
	remSlots := int64(c.NumSlots())
	scoutSlots := int64(offsets[src+1] - offsets[src])
	remSlots -= scoutSlots

	frontStart := 0
	bottomUp := false
	haveUnvisited := false
	for d := int32(1); frontStart < len(order); d++ {
		frontEnd := len(order)
		frontier := order[frontStart:frontEnd]
		// Direction choice for this level.
		if !bottomUp {
			if scoutSlots > remSlots/bfsAlpha {
				bottomUp = true
				st.switches++
			}
		} else if len(frontier) < n/bfsBeta {
			bottomUp = false
			st.switches++
		}
		if bottomUp {
			st.bottomUp++
			// Bottom-up: every unvisited node probes its adjacency for a
			// parent at distance d-1 and stops at the first hit. Nodes
			// claimed earlier in this same pass get distance d, which can
			// never match d-1, so the scan order within the level is
			// irrelevant to the outcome. The unvisited list is compacted in
			// place so later levels only scan survivors; nodes visited by
			// intervening top-down levels fall out at the next compaction.
			prev := d - 1
			if !haveUnvisited {
				// First bottom-up level: scan every node directly and collect
				// the survivors as the unvisited list for later levels, so no
				// separate build pass is needed.
				live := st.unvisited[:0]
				for u := int32(0); u < int32(n); u++ {
					if dist[u] >= 0 {
						continue
					}
					claimed := false
					for _, w := range targets[offsets[u]:offsets[u+1]] {
						if dist[w] == prev {
							dist[u] = d
							order = append(order, graph.NodeID(u))
							claimed = true
							break
						}
					}
					if !claimed {
						live = append(live, u)
					}
				}
				st.unvisited = live
				haveUnvisited = true
			} else {
				live := st.unvisited[:0]
				for _, u := range st.unvisited {
					if dist[u] >= 0 {
						continue
					}
					claimed := false
					for _, w := range targets[offsets[u]:offsets[u+1]] {
						if dist[w] == prev {
							dist[u] = d
							order = append(order, graph.NodeID(u))
							claimed = true
							break
						}
					}
					if !claimed {
						live = append(live, u)
					}
				}
				st.unvisited = live
			}
		} else {
			st.topDown++
			for _, v := range frontier {
				for _, w := range targets[offsets[v]:offsets[v+1]] {
					if dist[w] < 0 {
						dist[w] = d
						order = append(order, w)
					}
				}
			}
		}
		level := order[frontEnd:]
		if len(level) > 0 {
			scoutSlots = 0
			for _, v := range level {
				scoutSlots += int64(offsets[v+1] - offsets[v])
			}
			remSlots -= scoutSlots
			for int(d) >= len(st.counts) {
				st.counts = append(st.counts, 0)
			}
			st.counts[d] += int64(len(level))
			st.pairs += int64(len(level))
			if int(d) > st.diameter {
				st.diameter = int(d)
			}
		}
		frontStart = frontEnd
	}
	// Reset only the entries this traversal touched.
	for _, v := range order {
		dist[v] = -1
	}
	st.order = order
}
