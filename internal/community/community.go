// Package community detects communities with asynchronous label propagation
// and scores partitions with Newman modularity. It provides a cheap,
// embedding-free alternative predictor for the paper's link-prediction task
// (task 7): two nodes are predicted to be in the same community when label
// propagation assigns them the same label.
package community

import (
	"math/rand"

	"edgeshed/internal/graph"
)

// LabelPropagationOptions configures detection.
type LabelPropagationOptions struct {
	// MaxRounds caps the sweeps over all nodes; 0 means 32. Propagation
	// usually converges in far fewer.
	MaxRounds int
	// Seed drives the node visiting order and tie-breaking.
	Seed int64
}

func (o LabelPropagationOptions) maxRounds() int {
	if o.MaxRounds <= 0 {
		return 32
	}
	return o.MaxRounds
}

// LabelPropagation returns a community label per node. Labels are arbitrary
// ints; isolated nodes keep singleton labels. The algorithm is the
// asynchronous variant of Raghavan et al.: each node repeatedly adopts its
// neighborhood's most frequent label until no label changes.
func LabelPropagation(g *graph.Graph, opt LabelPropagationOptions) []int {
	n := g.NumNodes()
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i
	}
	if n == 0 {
		return labels
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	order := rng.Perm(n)
	counts := make(map[int]int)
	for round := 0; round < opt.maxRounds(); round++ {
		changed := false
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, u := range order {
			nb := g.Neighbors(graph.NodeID(u))
			if len(nb) == 0 {
				continue
			}
			for k := range counts {
				delete(counts, k)
			}
			best, bestCount := labels[u], 0
			for _, v := range nb {
				l := labels[v]
				counts[l]++
				c := counts[l]
				// Prefer strictly more frequent labels; break count ties
				// toward the current label for stability, then randomly.
				if c > bestCount || (c == bestCount && l == labels[u]) {
					best, bestCount = l, c
				} else if c == bestCount && best != labels[u] && rng.Intn(2) == 0 {
					best = l
				}
			}
			if best != labels[u] {
				labels[u] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return compactLabels(labels)
}

// compactLabels renumbers labels densely from 0 in first-seen order.
func compactLabels(labels []int) []int {
	remap := make(map[int]int)
	out := make([]int, len(labels))
	for i, l := range labels {
		id, ok := remap[l]
		if !ok {
			id = len(remap)
			remap[l] = id
		}
		out[i] = id
	}
	return out
}

// NumCommunities returns the number of distinct labels.
func NumCommunities(labels []int) int {
	seen := make(map[int]struct{})
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}

// Modularity returns Newman modularity Q of the partition: the fraction of
// edges inside communities minus the expectation under the configuration
// model. Q ranges in [-1/2, 1); higher means stronger community structure.
func Modularity(g *graph.Graph, labels []int) float64 {
	m := float64(g.NumEdges())
	if m == 0 {
		return 0
	}
	// Sum of degrees per community and internal edge count per community.
	degSum := make(map[int]float64)
	internal := make(map[int]float64)
	for u := 0; u < g.NumNodes(); u++ {
		degSum[labels[u]] += float64(g.Degree(graph.NodeID(u)))
	}
	for _, e := range g.Edges() {
		if labels[e.U] == labels[e.V] {
			internal[labels[e.U]]++
		}
	}
	var q float64
	for l, ds := range degSum {
		q += internal[l]/m - (ds/(2*m))*(ds/(2*m))
	}
	return q
}

// SameCommunityPairs filters candidate pairs down to those whose endpoints
// share a label — the label-propagation analogue of the embedding-based
// prediction in internal/tasks.
func SameCommunityPairs(pairs []graph.Edge, labels []int) []graph.Edge {
	var out []graph.Edge
	for _, p := range pairs {
		if labels[p.U] == labels[p.V] {
			out = append(out, p)
		}
	}
	return out
}
