package community_test

import (
	"fmt"

	"edgeshed/internal/community"
	"edgeshed/internal/graph"
)

// ExampleLabelPropagation detects the two cliques of a barbell graph.
func ExampleLabelPropagation() {
	b := graph.NewBuilder(8)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.TryAddEdge(graph.NodeID(u), graph.NodeID(v))
			b.TryAddEdge(graph.NodeID(u+4), graph.NodeID(v+4))
		}
	}
	b.TryAddEdge(0, 4) // the bar
	g := b.Graph()
	labels := community.LabelPropagation(g, community.LabelPropagationOptions{Seed: 1})
	fmt.Println("communities:", community.NumCommunities(labels))
	fmt.Printf("modularity: %.2f\n", community.Modularity(g, labels))
	// Output:
	// communities: 2
	// modularity: 0.42
}
