package community

import (
	"math"
	"testing"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

func TestLabelPropagationTwoCliques(t *testing.T) {
	// Two K6 cliques joined by one bridge: propagation must find exactly
	// the two cliques (the bridge cannot outvote five internal neighbors).
	b := graph.NewBuilder(12)
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			b.TryAddEdge(graph.NodeID(u), graph.NodeID(v))
			b.TryAddEdge(graph.NodeID(u+6), graph.NodeID(v+6))
		}
	}
	b.TryAddEdge(0, 6)
	g := b.Graph()
	labels := LabelPropagation(g, LabelPropagationOptions{Seed: 1})
	for u := 1; u < 6; u++ {
		if labels[u] != labels[0] {
			t.Errorf("clique A split: labels[%d]=%d labels[0]=%d", u, labels[u], labels[0])
		}
	}
	for u := 7; u < 12; u++ {
		if labels[u] != labels[6] {
			t.Errorf("clique B split: labels[%d]=%d labels[6]=%d", u, labels[u], labels[6])
		}
	}
	if labels[0] == labels[6] {
		t.Error("cliques merged into one community")
	}
}

func TestLabelPropagationPlantedPartition(t *testing.T) {
	g := gen.PlantedPartition(4, 25, 0.4, 0.01, 3)
	labels := LabelPropagation(g, LabelPropagationOptions{Seed: 4})
	// Most within-block pairs should share labels; most across-block pairs
	// should not.
	agreeWithin, within, agreeAcross, across := 0, 0, 0, 0
	for u := 0; u < 100; u++ {
		for v := u + 1; v < 100; v++ {
			same := labels[u] == labels[v]
			if u/25 == v/25 {
				within++
				if same {
					agreeWithin++
				}
			} else {
				across++
				if same {
					agreeAcross++
				}
			}
		}
	}
	if frac := float64(agreeWithin) / float64(within); frac < 0.8 {
		t.Errorf("within-block agreement = %.2f, want >= 0.8", frac)
	}
	if frac := float64(agreeAcross) / float64(across); frac > 0.3 {
		t.Errorf("across-block agreement = %.2f, want <= 0.3", frac)
	}
}

func TestLabelPropagationIsolatedNodes(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}})
	labels := LabelPropagation(g, LabelPropagationOptions{Seed: 1})
	if labels[0] != labels[1] {
		t.Error("connected pair split")
	}
	if labels[2] == labels[3] || labels[2] == labels[0] {
		t.Error("isolated nodes share labels")
	}
}

func TestLabelPropagationEmpty(t *testing.T) {
	var g graph.Graph
	if got := LabelPropagation(&g, LabelPropagationOptions{}); len(got) != 0 {
		t.Errorf("empty graph labels = %v", got)
	}
}

func TestCompactLabels(t *testing.T) {
	got := compactLabels([]int{7, 7, 3, 7, 3, 9})
	want := []int{0, 0, 1, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("compactLabels = %v, want %v", got, want)
		}
	}
}

func TestNumCommunities(t *testing.T) {
	if got := NumCommunities([]int{0, 1, 0, 2}); got != 3 {
		t.Errorf("NumCommunities = %d, want 3", got)
	}
	if got := NumCommunities(nil); got != 0 {
		t.Errorf("NumCommunities(nil) = %d, want 0", got)
	}
}

func TestModularityKnownValues(t *testing.T) {
	// Two disjoint K3s with the perfect partition: Q = 1 - 2·(1/2)² = 0.5.
	b := graph.NewBuilder(6)
	for u := 0; u < 3; u++ {
		for v := u + 1; v < 3; v++ {
			b.TryAddEdge(graph.NodeID(u), graph.NodeID(v))
			b.TryAddEdge(graph.NodeID(u+3), graph.NodeID(v+3))
		}
	}
	g := b.Graph()
	perfect := []int{0, 0, 0, 1, 1, 1}
	if got := Modularity(g, perfect); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("perfect partition Q = %v, want 0.5", got)
	}
	// One community holding everything: Q = 0.
	all := []int{0, 0, 0, 0, 0, 0}
	if got := Modularity(g, all); math.Abs(got) > 1e-9 {
		t.Errorf("single community Q = %v, want 0", got)
	}
	// Empty graph.
	var empty graph.Graph
	if got := Modularity(&empty, nil); got != 0 {
		t.Errorf("empty Q = %v, want 0", got)
	}
}

func TestModularityPrefersTrueStructure(t *testing.T) {
	g := gen.PlantedPartition(3, 20, 0.4, 0.02, 5)
	truth := make([]int, 60)
	for u := range truth {
		truth[u] = u / 20
	}
	scrambled := make([]int, 60)
	for u := range scrambled {
		scrambled[u] = u % 3
	}
	if qt, qs := Modularity(g, truth), Modularity(g, scrambled); qt <= qs {
		t.Errorf("true partition Q = %v not above scrambled Q = %v", qt, qs)
	}
}

func TestSameCommunityPairs(t *testing.T) {
	pairs := []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 3}}
	labels := []int{0, 0, 1, 0}
	got := SameCommunityPairs(pairs, labels)
	if len(got) != 2 {
		t.Fatalf("got %v, want 2 pairs", got)
	}
	if got[0] != (graph.Edge{U: 0, V: 1}) || got[1] != (graph.Edge{U: 0, V: 3}) {
		t.Errorf("wrong pairs: %v", got)
	}
}

func TestLabelPropagationDeterministic(t *testing.T) {
	g := gen.PlantedPartition(3, 15, 0.4, 0.02, 9)
	a := LabelPropagation(g, LabelPropagationOptions{Seed: 10})
	b := LabelPropagation(g, LabelPropagationOptions{Seed: 10})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different labels")
		}
	}
}
