// Package experiments reproduces every table and figure of the paper's
// evaluation (Section V) on the synthetic SNAP stand-ins. Each experiment is
// addressable by the paper artifact id ("t3" for Table III, "fig7" for
// Figure 7, ...) and prints the same rows or series the paper reports.
//
// Absolute numbers differ from the paper — substrate, hardware and datasets
// are all stand-ins — but the comparisons the paper draws (who wins, by
// what order of magnitude, where quality collapses) are reproduced. See
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"edgeshed/internal/centrality"
	"edgeshed/internal/core"
	"edgeshed/internal/dataset"
	"edgeshed/internal/graph"
	"edgeshed/internal/uds"
)

// Config controls dataset sizing and output for all experiments.
type Config struct {
	// Out receives the printed tables and series.
	Out io.Writer
	// Scale divides every dataset's node count; 0 means 16 (laptop-friendly).
	// com-LiveJournal always gets 16x this divisor on top, as even the paper
	// treats it separately.
	Scale int
	// Seed offsets all dataset and algorithm seeds for replication studies.
	Seed int64
	// Ps are the edge-preservation ratios; nil means 0.9 down to 0.1.
	Ps []float64
	// SkipUDS drops the UDS comparator (it dominates runtime at small p,
	// exactly as in the paper).
	SkipUDS bool
	// Markdown renders tables as GitHub-flavored Markdown instead of
	// aligned plain text.
	Markdown bool
	// Workers is the parallelism for analysis and centrality kernels; 0
	// means GOMAXPROCS. Every kernel follows the internal/par determinism
	// discipline, so measured values are identical at any worker count
	// (timings, of course, are not).
	Workers int
	// Batch is the MS-BFS sources-per-batch width for the centrality
	// kernels, 1..64; 0 or out of range selects the engine's full 64-wide
	// word. Like Workers it is a performance knob only — measured values
	// are identical at any width.
	Batch int
	// Progress, when non-nil, receives one printf-style line per completed
	// unit of experiment work — a (dataset, p, method) cell, a figure
	// series, a sweep point — so long sweeps show signs of life instead of
	// printing nothing until the final table. cmd/experiments wires it to
	// the -v logger; nil drops the lines at no cost.
	Progress func(format string, args ...any)
}

// progress reports one completed unit of work to the configured sink.
func (c Config) progress(format string, args ...any) {
	if c.Progress != nil {
		c.Progress(format, args...)
	}
}

// PsOrDefault exposes the effective preservation ratios (the default sweep
// when none are configured), for provenance headers.
func (c Config) PsOrDefault() []float64 { return c.ps() }

// render writes a table in the configured format.
func (c Config) render(t *table) error {
	if c.Markdown {
		return t.renderMarkdown(c.Out)
	}
	return t.render(c.Out)
}

func (c Config) scale() int {
	if c.Scale <= 0 {
		return 16
	}
	return c.Scale
}

func (c Config) ps() []float64 {
	if len(c.Ps) > 0 {
		return c.Ps
	}
	return []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1}
}

// build constructs the stand-in for the named dataset at the configured
// scale.
func (c Config) build(name string) (*graph.Graph, error) {
	spec, err := dataset.ByName(name)
	if err != nil {
		return nil, err
	}
	scale := c.scale()
	if name == "com-LiveJournal" {
		scale *= 16
	}
	return spec.Build(scale, spec.DefaultSeed+c.Seed)
}

// betweennessOptions picks exact Brandes for small graphs and source
// sampling for larger ones, mirroring the paper's resource-constraint
// premise.
func betweennessOptions(g *graph.Graph, seed int64, workers, batch int) centrality.Options {
	if g.NumNodes() <= 2048 {
		return centrality.Options{Workers: workers, Batch: batch}
	}
	samples := 256
	if g.NumNodes() < 8*samples {
		samples = g.NumNodes() / 8
	}
	return centrality.Options{Samples: samples, Seed: seed, Workers: workers, Batch: batch}
}

// reducerSet returns the paper's three methods configured for graph g, in
// table order (UDS, CRR, BM2). The UDS entry is nil when skipped.
func (c Config) reducerSet(g *graph.Graph) []core.Reducer {
	bopt := betweennessOptions(g, c.Seed+77, c.Workers, c.Batch)
	set := []core.Reducer{
		nil,
		core.CRR{Seed: c.Seed + 1, Betweenness: bopt, Workers: c.Workers},
		core.BM2{},
	}
	if !c.SkipUDS {
		set[0] = uds.Reducer{
			Summarizer: uds.Summarizer{Betweenness: bopt, Seed: c.Seed + 2},
			ExpandSeed: c.Seed + 3,
		}
	}
	return set
}

// timed runs fn and returns its duration.
func timed(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the paper artifact id: "fig4" ... "fig10", "t3" ... "t10", or an
	// ablation id "ab1" ... "ab5".
	ID string
	// Title describes the artifact as the paper captions it.
	Title string
	// Run executes the experiment, writing to cfg.Out.
	Run func(cfg Config) error
}

// All returns every experiment in paper order: figures, tables, ablations.
func All() []Experiment {
	return []Experiment{
		{"fig4", "Figure 4: CRR steps sweep (quality and time vs x)", runFig4},
		{"fig5ab", "Figure 5(a)-(b): measured error vs theoretical bounds", runFig5ab},
		{"fig5cd", "Figure 5(c)-(d) + Figure 6: vertex degree distribution", runFig5cd},
		{"fig7", "Figure 7: shortest-path distance distribution", runFig7},
		{"fig8", "Figure 8: betweenness centrality vs vertex degree", runFig8},
		{"fig9", "Figure 9: clustering coefficient vs vertex degree", runFig9},
		{"fig10", "Figure 10: hop-plot", runFig10},
		{"t3", "Table III: graph reduction time", runT3},
		{"t4", "Table IV: total processing time on ca-GrQc (heavy tasks)", runT4},
		{"t5", "Table V: total processing time on ca-GrQc (light tasks)", runT5},
		{"t6", "Table VI: analysis time on reduced email-Enron (heavy tasks)", runT6},
		{"t7", "Table VII: analysis time on reduced email-Enron (light tasks)", runT7},
		{"t8", "Table VIII: utility of top-10% queries I", runT8},
		{"t9", "Table IX: utility of top-10% queries II", runT9},
		{"t10", "Table X: utility of link prediction", runT10},
		{"ab1", "Ablation: exact vs sampled betweenness inside CRR", runAblationSampling},
		{"ab2", "Ablation: BM2 rounding rule (half-up vs half-even)", runAblationRounding},
		{"ab3", "Ablation: BM2 zero-gain bipartite edges (keep vs drop)", runAblationZeroGain},
		{"ab4", "Ablation: BM2 Phase-1 b-matching edge order", runAblationOrder},
		{"ab5", "Ablation: CRR rewiring on vs off across p", runAblationRewiring},
		{"ab6", "Ablation: CRR Phase-1 importance (betweenness vs proxies)", runAblationImportance},
		{"ab7", "Ablation: CRR adaptive rewiring stop vs fixed budget", runAblationAdaptive},
		{"ab8", "Ablation: UDS 2-hop candidate cap (memoization knob)", runAblationUDSCap},
		{"noise", "Extension: noise filtering — do reducers shed spurious edges first?", runNoise},
		{"headline", "Headline: abstract's accuracy-gain and time-ratio claims", runHeadline},
		{"quality", "Quality suite: all tasks × all methods in one table", runQuality},
		{"memory", "Memory footprint of reduced graphs across p", runMemory},
		{"baselines", "Extension: CRR/BM2 vs classic sampling baselines", runBaselines},
		{"stream", "Extension: one-pass streaming shedder vs reservoir and offline BM2", runStream},
	}
}

// ByID looks an experiment up by its paper artifact id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}
