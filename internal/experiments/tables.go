package experiments

import (
	"fmt"

	"edgeshed/internal/analysis"
	"edgeshed/internal/centrality"
	"edgeshed/internal/embed"
	"edgeshed/internal/graph"
	"edgeshed/internal/tasks"
	"edgeshed/internal/uds"
)

// runT3 reproduces Table III: graph reduction time for UDS, CRR and BM2 at
// every p on all four datasets. As in the paper, UDS is skipped on
// com-LiveJournal (its cost is prohibitive there).
func runT3(cfg Config) error {
	for _, name := range []string{"ca-GrQc", "ca-HepPh", "email-Enron", "com-LiveJournal"} {
		g, err := cfg.build(name)
		if err != nil {
			return err
		}
		tbl := newTable(
			fmt.Sprintf("Table III (%s stand-in, |V|=%d |E|=%d): reduction time (s)", name, g.NumNodes(), g.NumEdges()),
			"p", "UDS", "CRR", "BM2")
		skipUDS := cfg.SkipUDS || name == "com-LiveJournal"
		for _, p := range cfg.ps() {
			row := []string{f3(p)}
			for _, r := range cfg.reducerSet(g) {
				if r == nil || (skipUDS && r.Name() == "UDS") {
					row = append(row, "-")
					continue
				}
				dur, err := timed(func() error {
					_, rerr := r.Reduce(g, p)
					return rerr
				})
				if err != nil {
					return err
				}
				row = append(row, fsec(dur))
				cfg.progress("t3 %s: %s p=%s in %s", name, r.Name(), f3(p), fsec(dur))
			}
			tbl.addRow(row...)
		}
		if err := cfg.render(tbl); err != nil {
			return err
		}
	}
	return nil
}

// taskSpec names an analysis task and its runner over a single graph; the
// runner must do the full work the paper times.
type taskSpec struct {
	name string
	run  func(cfg Config, g *graph.Graph) error
}

// heavyTasks are the four high-complexity tasks of Tables IV and VI.
func heavyTasks() []taskSpec {
	return []taskSpec{
		{"Link prediction", func(cfg Config, g *graph.Graph) error {
			linkTask(cfg).Predict(g)
			return nil
		}},
		{"SP distance", func(cfg Config, g *graph.Graph) error {
			opt := analysis.ProfileOptions{Sources: profileSources(g), Seed: cfg.Seed + 5, Workers: cfg.Workers}
			analysis.NewDistanceProfile(g, opt)
			return nil
		}},
		{"Betweenness", func(cfg Config, g *graph.Graph) error {
			centrality.NodeBetweenness(g, betweennessOptions(g, cfg.Seed+6, cfg.Workers, cfg.Batch))
			return nil
		}},
		{"Hop-plot", func(cfg Config, g *graph.Graph) error {
			opt := analysis.ProfileOptions{Sources: profileSources(g), Seed: cfg.Seed + 5, Workers: cfg.Workers}
			analysis.NewDistanceProfile(g, opt).HopPlot()
			return nil
		}},
	}
}

// lightTasks are the three low-complexity tasks of Tables V and VII.
func lightTasks() []taskSpec {
	return []taskSpec{
		{"Top-k", func(cfg Config, g *graph.Graph) error {
			analysis.TopK(analysis.PageRank(g, analysis.PageRankOptions{Workers: cfg.Workers}), g.NumNodes()/10)
			return nil
		}},
		{"Vertex degree", func(cfg Config, g *graph.Graph) error {
			analysis.DegreeDistribution(g, 300)
			return nil
		}},
		{"Clustering coef", func(cfg Config, g *graph.Graph) error {
			analysis.LocalClustering(g, cfg.Workers)
			return nil
		}},
	}
}

// linkTask sizes the link-prediction pipeline for harness scale: lighter
// walks and a smaller embedding than production defaults, capped candidate
// pairs.
func linkTask(cfg Config) tasks.LinkPredictionTask {
	return tasks.LinkPredictionTask{
		Walk:     embed.WalkConfig{WalksPerNode: 5, WalkLength: 20, Seed: cfg.Seed + 8},
		SGNS:     embed.SGNSConfig{Dim: 32, Epochs: 1, Seed: cfg.Seed + 9},
		MaxPairs: 20000,
		Seed:     cfg.Seed + 10,
	}
}

// totalTimeTable implements the shared shape of Tables IV and V: the "T"
// line times each task on the original graph; each p row times reduction
// plus the task on the reduced graph.
func totalTimeTable(cfg Config, caption, datasetName string, specs []taskSpec, ps []float64) error {
	g, err := cfg.build(datasetName)
	if err != nil {
		return err
	}
	for _, spec := range specs {
		tbl := newTable(
			fmt.Sprintf("%s — %s (%s stand-in, |V|=%d |E|=%d): total time (s)", caption, spec.name, datasetName, g.NumNodes(), g.NumEdges()),
			"p", "UDS", "CRR", "BM2")
		tDur, err := timed(func() error { return spec.run(cfg, g) })
		if err != nil {
			return err
		}
		tbl.addRow("T", fsec(tDur), "", "")
		for _, p := range ps {
			row := []string{f3(p)}
			for _, r := range cfg.reducerSet(g) {
				if r == nil {
					row = append(row, "-")
					continue
				}
				var reduced *graph.Graph
				dur, err := timed(func() error {
					res, rerr := r.Reduce(g, p)
					if rerr != nil {
						return rerr
					}
					reduced = res.Reduced
					return spec.run(cfg, reduced)
				})
				if err != nil {
					return err
				}
				row = append(row, fsec(dur))
				cfg.progress("%s %s/%s: %s p=%s in %s", caption, datasetName, spec.name, r.Name(), f3(p), fsec(dur))
			}
			tbl.addRow(row...)
		}
		if err := cfg.render(tbl); err != nil {
			return err
		}
	}
	return nil
}

// analysisTimeTable implements Tables VI and VII: time of the analysis task
// alone on the reduced graphs (reduction excluded), with the T line for the
// original.
func analysisTimeTable(cfg Config, caption, datasetName string, specs []taskSpec, ps []float64) error {
	g, err := cfg.build(datasetName)
	if err != nil {
		return err
	}
	// Reduce once per (method, p) and reuse across tasks, like the paper's
	// "the reduced graph can be reused after being generated".
	type key struct {
		method string
		p      float64
	}
	reduced := make(map[key]*graph.Graph)
	for _, p := range ps {
		for _, r := range cfg.reducerSet(g) {
			if r == nil {
				continue
			}
			res, err := r.Reduce(g, p)
			if err != nil {
				return err
			}
			reduced[key{r.Name(), p}] = res.Reduced
			cfg.progress("%s %s: reduced with %s p=%s", caption, datasetName, r.Name(), f3(p))
		}
	}
	for _, spec := range specs {
		tbl := newTable(
			fmt.Sprintf("%s — %s (%s stand-in, |V|=%d |E|=%d): analysis time on reduced graphs (s)", caption, spec.name, datasetName, g.NumNodes(), g.NumEdges()),
			"p", "UDS", "CRR", "BM2")
		tDur, err := timed(func() error { return spec.run(cfg, g) })
		if err != nil {
			return err
		}
		tbl.addRow("T", fsec(tDur), "", "")
		for _, p := range ps {
			row := []string{f3(p)}
			for _, r := range cfg.reducerSet(g) {
				if r == nil {
					row = append(row, "-")
					continue
				}
				rg := reduced[key{r.Name(), p}]
				dur, err := timed(func() error { return spec.run(cfg, rg) })
				if err != nil {
					return err
				}
				row = append(row, fsec(dur))
				cfg.progress("%s %s/%s: %s p=%s in %s", caption, datasetName, spec.name, r.Name(), f3(p), fsec(dur))
			}
			tbl.addRow(row...)
		}
		if err := cfg.render(tbl); err != nil {
			return err
		}
	}
	return nil
}

var tablePs = []float64{0.9, 0.5, 0.1}

func runT4(cfg Config) error {
	return totalTimeTable(cfg, "Table IV", "ca-GrQc", heavyTasks(), tablePs)
}

func runT5(cfg Config) error {
	return totalTimeTable(cfg, "Table V", "ca-GrQc", lightTasks(), tablePs)
}

func runT6(cfg Config) error {
	return analysisTimeTable(cfg, "Table VI", "email-Enron", heavyTasks(), tablePs)
}

func runT7(cfg Config) error {
	return analysisTimeTable(cfg, "Table VII", "email-Enron", lightTasks(), tablePs)
}

// topKTable implements Tables VIII and IX: top-10% query utility per method
// and p. UDS uses its supernode PageRank, the paper's "own processing
// method".
func topKTable(cfg Config, caption string, datasets []string, skipUDSFor map[string]bool) error {
	task := tasks.TopKTask{}
	for _, name := range datasets {
		g, err := cfg.build(name)
		if err != nil {
			return err
		}
		tbl := newTable(
			fmt.Sprintf("%s (%s stand-in, |V|=%d |E|=%d): utility of top-10%%", caption, name, g.NumNodes(), g.NumEdges()),
			"p", "UDS", "CRR", "BM2")
		for _, p := range cfg.ps() {
			row := []string{f3(p)}
			for _, r := range cfg.reducerSet(g) {
				if r == nil || (skipUDSFor[name] && r.Name() == "UDS") {
					row = append(row, "-")
					continue
				}
				var util float64
				if ur, ok := r.(uds.Reducer); ok {
					_, sum, err := ur.Summarize(g, p)
					if err != nil {
						return err
					}
					util = task.UtilityWithScores(g, sum.PageRankScores(0.85, 50))
				} else {
					res, err := r.Reduce(g, p)
					if err != nil {
						return err
					}
					util = task.Utility(g, res.Reduced)
				}
				row = append(row, f3(util))
				cfg.progress("%s %s: %s p=%s utility=%s", caption, name, r.Name(), f3(p), f3(util))
			}
			tbl.addRow(row...)
		}
		if err := cfg.render(tbl); err != nil {
			return err
		}
	}
	return nil
}

func runT8(cfg Config) error {
	return topKTable(cfg, "Table VIII", []string{"ca-GrQc", "ca-HepPh"}, nil)
}

func runT9(cfg Config) error {
	return topKTable(cfg, "Table IX", []string{"email-Enron", "com-LiveJournal"},
		map[string]bool{"com-LiveJournal": true})
}

// runT10 reproduces Table X: link prediction utility (node2vec p=q=1,
// K-means k=5, 2-hop pairs) for each method across p on the three small
// datasets.
func runT10(cfg Config) error {
	for _, name := range smallDatasets {
		g, err := cfg.build(name)
		if err != nil {
			return err
		}
		task := linkTask(cfg)
		tbl := newTable(
			fmt.Sprintf("Table X (%s stand-in, |V|=%d |E|=%d): utility of link prediction", name, g.NumNodes(), g.NumEdges()),
			"p", "UDS", "CRR", "BM2")
		for _, p := range cfg.ps() {
			row := []string{f3(p)}
			for _, r := range cfg.reducerSet(g) {
				if r == nil {
					row = append(row, "-")
					continue
				}
				res, err := r.Reduce(g, p)
				if err != nil {
					return err
				}
				row = append(row, f3(task.Utility(g, res.Reduced)))
				cfg.progress("t10 %s: %s p=%s", name, r.Name(), f3(p))
			}
			tbl.addRow(row...)
		}
		if err := cfg.render(tbl); err != nil {
			return err
		}
	}
	return nil
}
