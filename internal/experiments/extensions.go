package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"edgeshed/internal/core"
	"edgeshed/internal/graph"
	"edgeshed/internal/stream"
	"edgeshed/internal/tasks"
	"edgeshed/internal/uds"
)

// runHeadline quantifies the paper's abstract claims on the stand-ins:
// "up to 65% higher accuracy ... while consuming only 26%-57% running
// time". It reports, per dataset, the largest top-k accuracy gain of
// CRR/BM2 over UDS across p, and the reduction-time ratio at p = 0.5.
func runHeadline(cfg Config) error {
	task := tasks.TopKTask{}
	tbl := newTable(
		"Headline claims (abstract): accuracy gain over UDS and time ratio",
		"dataset", "max CRR-UDS gain", "max BM2-UDS gain", "CRR/UDS time", "BM2/UDS time")
	for _, name := range smallDatasets {
		g, err := cfg.build(name)
		if err != nil {
			return err
		}
		reducers := cfg.reducerSet(g)
		udsR, crrR, bm2R := reducers[0], reducers[1], reducers[2]
		if udsR == nil {
			return fmt.Errorf("headline experiment needs the UDS comparator (unset SkipUDS)")
		}
		var gainCRR, gainBM2 float64
		for _, p := range cfg.ps() {
			var utils [3]float64
			ur := udsR.(uds.Reducer)
			_, sum, err := ur.Summarize(g, p)
			if err != nil {
				return err
			}
			utils[0] = task.UtilityWithScores(g, sum.PageRankScores(0.85, 50))
			for i, r := range []core.Reducer{crrR, bm2R} {
				res, err := r.Reduce(g, p)
				if err != nil {
					return err
				}
				utils[i+1] = task.Utility(g, res.Reduced)
			}
			if d := utils[1] - utils[0]; d > gainCRR {
				gainCRR = d
			}
			if d := utils[2] - utils[0]; d > gainBM2 {
				gainBM2 = d
			}
		}
		timeOf := func(r core.Reducer) time.Duration {
			d, _ := timed(func() error {
				_, err := r.Reduce(g, 0.5)
				return err
			})
			return d
		}
		udsT := timeOf(udsR)
		tbl.addRow(name,
			fmt.Sprintf("+%.0f%%", 100*gainCRR),
			fmt.Sprintf("+%.0f%%", 100*gainBM2),
			fmt.Sprintf("%.0f%%", 100*timeOf(crrR).Seconds()/udsT.Seconds()),
			fmt.Sprintf("%.0f%%", 100*timeOf(bm2R).Seconds()/udsT.Seconds()))
	}
	return cfg.render(tbl)
}

// runBaselines compares CRR and BM2 against the simplification baselines
// (uniform Random, ForestFire, SpanningForest, WeightedSample) on Δ and
// top-k utility at p = 0.5 and 0.3.
func runBaselines(cfg Config) error {
	task := tasks.TopKTask{}
	g, err := cfg.build("ca-GrQc")
	if err != nil {
		return err
	}
	reducers := []core.Reducer{
		core.CRR{Seed: cfg.Seed + 1, Betweenness: betweennessOptions(g, cfg.Seed+77, cfg.Workers, cfg.Batch)},
		core.TargetedCRR{Seed: cfg.Seed + 1, Betweenness: betweennessOptions(g, cfg.Seed+77, cfg.Workers, cfg.Batch)},
		core.BM2{},
		core.Random{Seed: cfg.Seed + 2},
		core.ForestFire{Seed: cfg.Seed + 3},
		core.SpanningForest{Seed: cfg.Seed + 4},
		core.WeightedSample{Seed: cfg.Seed + 5},
	}
	for _, p := range []float64{0.5, 0.3} {
		tbl := newTable(
			fmt.Sprintf("Baselines (ca-GrQc stand-in, |V|=%d, p=%.1f): degree-preserving vs sampling", g.NumNodes(), p),
			"method", "|E'|", "delta", "avg |dis|", "top-k utility")
		for _, r := range reducers {
			res, err := r.Reduce(g, p)
			if err != nil {
				return err
			}
			tbl.addRow(r.Name(),
				fmt.Sprint(res.Reduced.NumEdges()),
				f4(res.Delta()), f4(res.AvgDisPerNode()),
				f3(task.Utility(g, res.Reduced)))
		}
		if err := cfg.render(tbl); err != nil {
			return err
		}
	}
	return nil
}

// runMemory quantifies the paper's first motivation — storage saving — by
// measuring the in-memory footprint of each reduced graph against its
// original across p.
func runMemory(cfg Config) error {
	for _, name := range []string{"email-Enron", "com-LiveJournal"} {
		g, err := cfg.build(name)
		if err != nil {
			return err
		}
		tbl := newTable(
			fmt.Sprintf("Memory footprint (%s stand-in, |V|=%d |E|=%d, original %s)", name, g.NumNodes(), g.NumEdges(), fmtBytes(g.Bytes())),
			"p", "CRR bytes", "CRR saving", "BM2 bytes", "BM2 saving")
		for _, p := range []float64{0.5, 0.3, 0.1} {
			crrRes, err := (core.CRR{Seed: cfg.Seed + 1, Betweenness: betweennessOptions(g, cfg.Seed+77, cfg.Workers, cfg.Batch)}).Reduce(g, p)
			if err != nil {
				return err
			}
			bm2Res, err := (core.BM2{}).Reduce(g, p)
			if err != nil {
				return err
			}
			saving := func(r *core.Result) string {
				return fmt.Sprintf("%.0f%%", 100*(1-float64(r.Reduced.Bytes())/float64(g.Bytes())))
			}
			tbl.addRow(f3(p),
				fmtBytes(crrRes.Reduced.Bytes()), saving(crrRes),
				fmtBytes(bm2Res.Reduced.Bytes()), saving(bm2Res))
		}
		if err := cfg.render(tbl); err != nil {
			return err
		}
	}
	return nil
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// runQuality evaluates every task of the suite for each method at one
// glance: the whole quality half of the evaluation in a single table per p.
func runQuality(cfg Config) error {
	g, err := cfg.build("ca-GrQc")
	if err != nil {
		return err
	}
	suite := tasks.Suite{MaxPairs: 20000, Seed: cfg.Seed + 41, Workers: cfg.Workers}
	for _, p := range []float64{0.5, 0.3} {
		reds, err := cfg.reduceAll(g, p)
		if err != nil {
			return err
		}
		headers := []string{"task"}
		for _, rd := range reds {
			headers = append(headers, rd.name)
		}
		headers = append(headers, "direction")
		tbl := newTable(
			fmt.Sprintf("Quality suite (ca-GrQc stand-in, |V|=%d, p=%.1f): all tasks × all methods", g.NumNodes(), p),
			headers...)
		var rows [][]tasks.Measurement
		for _, rd := range reds {
			rows = append(rows, suite.Evaluate(g, rd.g))
		}
		for i := range rows[0] {
			cells := []string{rows[0][i].Task}
			for _, ms := range rows {
				cells = append(cells, f4(ms[i].Value))
			}
			dir := "lower better"
			if rows[0][i].HigherIsBetter {
				dir = "higher better"
			}
			cells = append(cells, dir)
			tbl.addRow(cells...)
		}
		if err := cfg.render(tbl); err != nil {
			return err
		}
	}
	return nil
}

// runStream evaluates the streaming extension: edges of the email-Enron
// stand-in arrive in random order; the stream shedder's Δ and top-k utility
// are compared against offline BM2 (full-graph access) and reservoir
// sampling (same memory).
func runStream(cfg Config) error {
	g, err := cfg.build("email-Enron")
	if err != nil {
		return err
	}
	task := tasks.TopKTask{}
	tbl := newTable(
		fmt.Sprintf("Streaming extension (email-Enron stand-in, |V|=%d |E|=%d): one-pass shedding", g.NumNodes(), g.NumEdges()),
		"p", "method", "delta", "top-k utility", "time (s)")
	rng := rand.New(rand.NewSource(cfg.Seed + 31))
	order := append([]graph.Edge(nil), g.Edges()...)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	for _, p := range []float64{0.5, 0.3} {
		// Stream shedder.
		var snap *graph.Graph
		var delta float64
		dur, err := timed(func() error {
			s, err := stream.NewShedder(stream.Options{P: p, Seed: cfg.Seed + 32, Nodes: g.NumNodes(), Base: g})
			if err != nil {
				return err
			}
			for _, e := range order {
				if err := s.Insert(e.U, e.V); err != nil {
					return err
				}
			}
			snap = s.Snapshot()
			delta = s.Delta()
			return nil
		})
		if err != nil {
			return err
		}
		tbl.addRow(f3(p), "stream", f4(delta), f3(task.Utility(g, snap)), fsec(dur))

		// Reservoir baseline: uniform sample of the same size.
		k := snap.NumEdges()
		reservoir := append([]graph.Edge(nil), order[:k]...)
		for i := k; i < len(order); i++ {
			if j := rng.Intn(i + 1); j < k {
				reservoir[j] = order[i]
			}
		}
		resG, err := g.Subgraph(reservoir)
		if err != nil {
			return err
		}
		resRes := core.Result{Original: g, Reduced: resG, P: p}
		tbl.addRow(f3(p), "reservoir", f4(resRes.Delta()), f3(task.Utility(g, resG)), "-")

		// Offline BM2 for reference.
		bm2Res, err := (core.BM2{}).Reduce(g, p)
		if err != nil {
			return err
		}
		tbl.addRow(f3(p), "BM2 (offline)", f4(bm2Res.Delta()), f3(task.Utility(g, bm2Res.Reduced)), "-")
	}
	return cfg.render(tbl)
}
