package experiments

import (
	"fmt"

	"edgeshed/internal/analysis"
	"edgeshed/internal/centrality"
	"edgeshed/internal/core"
	"edgeshed/internal/graph"
	"edgeshed/internal/tasks"
)

// runFig4 sweeps the CRR rewiring budget x (steps = [x·P]) on the two small
// collaboration stand-ins at p = 0.5, reporting graph reduction quality
// (average delta, lower is better) and reduction time — the trade-off of
// Figure 4.
func runFig4(cfg Config) error {
	for _, name := range []string{"ca-GrQc", "ca-HepPh"} {
		g, err := cfg.build(name)
		if err != nil {
			return err
		}
		tbl := newTable(
			fmt.Sprintf("Figure 4 (%s, |V|=%d |E|=%d, p=0.5): CRR steps sweep", name, g.NumNodes(), g.NumEdges()),
			"x", "avg delta", "time (s)")
		for _, x := range []float64{1, 2, 4, 6, 8, 10, 12, 14} {
			var res *core.Result
			dur, err := timed(func() error {
				var rerr error
				res, rerr = core.CRR{
					Seed:        cfg.Seed + 1,
					StepsFactor: x,
					Betweenness: betweennessOptions(g, cfg.Seed+77, cfg.Workers, cfg.Batch),
				}.Reduce(g, 0.5)
				return rerr
			})
			if err != nil {
				return err
			}
			tbl.addRow(fmt.Sprintf("%.0f", x), f4(res.AvgDelta()), fsec(dur))
			cfg.progress("fig4 %s: x=%.0f in %s", name, x, fsec(dur))
		}
		if err := cfg.render(tbl); err != nil {
			return err
		}
	}
	return nil
}

// runFig5ab compares the measured average absolute degree discrepancy of CRR
// and BM2 against the Theorem 1 and 2 bounds on ca-GrQc across p.
func runFig5ab(cfg Config) error {
	g, err := cfg.build("ca-GrQc")
	if err != nil {
		return err
	}
	tbl := newTable(
		fmt.Sprintf("Figure 5(a)-(b) (ca-GrQc stand-in, |V|=%d |E|=%d): error vs bound", g.NumNodes(), g.NumEdges()),
		"p", "CRR err", "CRR bound", "BM2 err", "BM2 bound")
	for _, p := range cfg.ps() {
		crrRes, err := (core.CRR{Seed: cfg.Seed + 1, Betweenness: betweennessOptions(g, cfg.Seed+77, cfg.Workers, cfg.Batch)}).Reduce(g, p)
		if err != nil {
			return err
		}
		bm2Res, err := (core.BM2{}).Reduce(g, p)
		if err != nil {
			return err
		}
		tbl.addRow(f3(p),
			f4(crrRes.AvgDisPerNode()), f4(core.CRRBound(g, p)),
			f4(bm2Res.AvgDisPerNode()), f4(core.BM2Bound(g, p)))
		cfg.progress("fig5ab: p=%s done", f3(p))
	}
	return cfg.render(tbl)
}

// reducedGraphs runs every configured reducer at ratio p and returns the
// reduced graphs keyed by method name, in table order.
type reduction struct {
	name string
	g    *graph.Graph
}

func (c Config) reduceAll(g *graph.Graph, p float64) ([]reduction, error) {
	var out []reduction
	for _, r := range c.reducerSet(g) {
		if r == nil {
			continue
		}
		res, err := r.Reduce(g, p)
		if err != nil {
			return nil, fmt.Errorf("%s at p=%v: %w", r.Name(), p, err)
		}
		out = append(out, reduction{name: r.Name(), g: res.Reduced})
		c.progress("reduced with %s p=%s: |E| %d -> %d", r.Name(), f3(p), g.NumEdges(), res.Reduced.NumEdges())
	}
	return out, nil
}

// runFig5cd prints the vertex degree distributions of the original
// email-Enron stand-in and its reductions, including the paper's Figure 6
// zoom on degrees 1-18, plus a TVD summary.
func runFig5cd(cfg Config) error {
	g, err := cfg.build("email-Enron")
	if err != nil {
		return err
	}
	const cap = 300
	for _, p := range []float64{0.5, 0.3} {
		reds, err := cfg.reduceAll(g, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(cfg.Out, "Figure 5(c)-(d)/6 (email-Enron stand-in, p=%.1f): degree distribution, buckets 0..18\n", p)
		orig := analysis.DegreeDistribution(g, cap)
		if err := seriesLine(cfg.Out, "original", orig, 19); err != nil {
			return err
		}
		tbl := newTable("", "method", "TVD vs original (degree dist)")
		for _, rd := range reds {
			dist := analysis.DegreeDistribution(rd.g, cap)
			if err := seriesLine(cfg.Out, rd.name, dist, 19); err != nil {
				return err
			}
			tbl.addRow(rd.name, f4(tasks.TVD(orig, dist)))
		}
		fmt.Fprintln(cfg.Out)
		if err := cfg.render(tbl); err != nil {
			return err
		}
	}
	return nil
}

// distributionFigure factors the shared shape of Figures 7, 9 and 10: a
// per-dataset, per-method series plus a scalar error against the original.
func (c Config) distributionFigure(caption string, datasets []string, p float64,
	series func(g *graph.Graph) []float64, maxLen int) error {
	for _, name := range datasets {
		g, err := c.build(name)
		if err != nil {
			return err
		}
		reds, err := c.reduceAll(g, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(c.Out, "%s (%s stand-in, p=%.1f)\n", caption, name, p)
		orig := series(g)
		if err := seriesLine(c.Out, "original", orig, maxLen); err != nil {
			return err
		}
		tbl := newTable("", "method", "TVD/L1 vs original")
		for _, rd := range reds {
			s := series(rd.g)
			if err := seriesLine(c.Out, rd.name, s, maxLen); err != nil {
				return err
			}
			tbl.addRow(rd.name, f4(tasks.TVD(orig, s)))
		}
		fmt.Fprintln(c.Out)
		if err := c.render(tbl); err != nil {
			return err
		}
	}
	return nil
}

var smallDatasets = []string{"ca-GrQc", "ca-HepPh", "email-Enron"}

// runFig7 prints shortest-path distance distributions (fractions of
// reachable pairs per distance).
func runFig7(cfg Config) error {
	return cfg.distributionFigure("Figure 7: shortest-path distance distribution",
		smallDatasets, 0.3,
		func(g *graph.Graph) []float64 {
			opt := analysis.ProfileOptions{Sources: profileSources(g), Seed: cfg.Seed + 5, Workers: cfg.Workers}
			return analysis.NewDistanceProfile(g, opt).Distribution()
		}, 12)
}

// runFig10 prints hop-plots (cumulative reachable-pair fraction per hop).
func runFig10(cfg Config) error {
	return cfg.distributionFigure("Figure 10: hop-plot",
		smallDatasets, 0.3,
		func(g *graph.Graph) []float64 {
			opt := analysis.ProfileOptions{Sources: profileSources(g), Seed: cfg.Seed + 5, Workers: cfg.Workers}
			return analysis.NewDistanceProfile(g, opt).HopPlot()
		}, 12)
}

// profileSources bounds BFS sources for distance profiles on larger graphs.
func profileSources(g *graph.Graph) int {
	if g.NumNodes() <= 2048 {
		return 0 // exact
	}
	return 512
}

// runFig8 prints mean node betweenness by vertex degree and the relative
// error of each method.
func runFig8(cfg Config) error {
	for _, name := range smallDatasets {
		g, err := cfg.build(name)
		if err != nil {
			return err
		}
		reds, err := cfg.reduceAll(g, 0.3)
		if err != nil {
			return err
		}
		bopt := betweennessOptions(g, cfg.Seed+6, cfg.Workers, cfg.Batch)
		fmt.Fprintf(cfg.Out, "Figure 8: betweenness vs degree (%s stand-in, p=0.3), buckets deg 0..15\n", name)
		origBC := analysis.MeanByDegree(g, centrality.NodeBetweenness(g, bopt))
		if err := seriesLine(cfg.Out, "original", normalizeSeries(origBC), 16); err != nil {
			return err
		}
		var origMass float64
		for _, x := range origBC {
			origMass += x
		}
		tbl := newTable("", "method", "relative L1 error vs original")
		for _, rd := range reds {
			redBC := analysis.MeanByDegree(g, centrality.NodeBetweenness(rd.g, bopt))
			if err := seriesLine(cfg.Out, rd.name, normalizeSeries(redBC), 16); err != nil {
				return err
			}
			relErr := 0.0
			if origMass > 0 {
				relErr = tasks.L1(origBC, redBC) / origMass
			}
			tbl.addRow(rd.name, f4(relErr))
		}
		if err := cfg.render(tbl); err != nil {
			return err
		}
	}
	return nil
}

// normalizeSeries scales a series to unit sum for readable printing.
func normalizeSeries(xs []float64) []float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	if sum == 0 {
		return xs
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / sum
	}
	return out
}

// runFig9 prints mean clustering coefficient by degree per method.
func runFig9(cfg Config) error {
	for _, name := range smallDatasets {
		g, err := cfg.build(name)
		if err != nil {
			return err
		}
		reds, err := cfg.reduceAll(g, 0.3)
		if err != nil {
			return err
		}
		task := tasks.ClusteringTask{}
		fmt.Fprintf(cfg.Out, "Figure 9: clustering coefficient vs degree (%s stand-in, p=0.3), buckets deg 0..15\n", name)
		orig := analysis.ClusteringByDegree(g, cfg.Workers)
		if err := seriesLine(cfg.Out, "original", orig, 16); err != nil {
			return err
		}
		tbl := newTable("", "method", "mean |cc gap| across degrees")
		for _, rd := range reds {
			_, r := task.Series(g, rd.g)
			if err := seriesLine(cfg.Out, rd.name, r, 16); err != nil {
				return err
			}
			tbl.addRow(rd.name, f4(task.Error(g, rd.g)))
		}
		if err := cfg.render(tbl); err != nil {
			return err
		}
	}
	return nil
}
