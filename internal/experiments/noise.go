package experiments

import (
	"fmt"
	"math/rand"

	"edgeshed/internal/core"
	"edgeshed/internal/graph"
	"edgeshed/internal/uds"
)

// runNoise quantifies the paper's fourth motivation: "real datasets often
// have many hidden or wrong links ... graph reduction can filter noises".
// It injects spurious random edges into a clean stand-in, sheds the noisy
// graph, and measures what fraction of the shed edges were noise (precision
// of the filter) and what fraction of the noise got shed (recall).
// Importance-driven shedding should discard noise preferentially: random
// cross links carry little betweenness and connect nodes already at their
// expected degrees.
func runNoise(cfg Config) error {
	g, err := cfg.build("ca-GrQc")
	if err != nil {
		return err
	}
	for _, noiseFrac := range []float64{0.1, 0.3} {
		noisy, injected, err := injectNoise(g, noiseFrac, cfg.Seed+51)
		if err != nil {
			return err
		}
		// Shed back down to the clean size: p = |E| / |E_noisy|.
		p := float64(g.NumEdges()) / float64(noisy.NumEdges())
		tbl := newTable(
			fmt.Sprintf("Noise filtering (ca-GrQc stand-in + %.0f%% spurious edges, shed to p=%.3f)", 100*noiseFrac, p),
			"method", "noise shed", "noise kept", "recall", "precision vs chance")
		reducers := []core.Reducer{
			core.CRR{Seed: cfg.Seed + 1, Betweenness: betweennessOptions(noisy, cfg.Seed+77, cfg.Workers, cfg.Batch)},
			core.BM2{},
			core.Random{Seed: cfg.Seed + 2},
		}
		chance := 1 - p // fraction of edges shed by a blind filter
		for _, r := range reducers {
			res, err := r.Reduce(noisy, p)
			if err != nil {
				return err
			}
			keptNoise := 0
			for e := range injected {
				if res.Reduced.HasEdge(e.U, e.V) {
					keptNoise++
				}
			}
			shedNoise := len(injected) - keptNoise
			recall := float64(shedNoise) / float64(len(injected))
			tbl.addRow(r.Name(),
				fmt.Sprint(shedNoise), fmt.Sprint(keptNoise),
				f3(recall), f3(recall/chance))
		}
		if err := cfg.render(tbl); err != nil {
			return err
		}
	}
	return nil
}

// injectNoise adds frac·|E| uniform random spurious edges to g, returning
// the noisy graph and the injected set.
func injectNoise(g *graph.Graph, frac float64, seed int64) (*graph.Graph, map[graph.Edge]struct{}, error) {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(g.NumNodes())
	for _, e := range g.Edges() {
		b.TryAddEdge(e.U, e.V)
	}
	injected := make(map[graph.Edge]struct{})
	want := int(frac * float64(g.NumEdges()))
	for len(injected) < want {
		u := graph.NodeID(rng.Intn(g.NumNodes()))
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if b.TryAddEdge(u, v) {
			injected[graph.Edge{U: u, V: v}.Canonical()] = struct{}{}
		}
	}
	return b.Graph(), injected, nil
}

// runAblationUDSCap varies UDS's 2-hop candidate cap — its
// memoization/scalability knob — measuring summarization time and top-k
// utility (DESIGN.md "memorization technique" discussion).
func runAblationUDSCap(cfg Config) error {
	g, err := cfg.build("ca-GrQc")
	if err != nil {
		return err
	}
	tbl := newTable(
		fmt.Sprintf("Ablation 8 (ca-GrQc stand-in, |V|=%d, τ_U=0.3): UDS candidate cap", g.NumNodes()),
		"cap", "supernodes", "utility kept", "time (s)")
	for _, cap := range []int{4, 16, 64} {
		var sum *uds.Summary
		dur, err := timed(func() error {
			var rerr error
			sum, rerr = uds.Summarizer{
				Tau:                  0.3,
				MaxCandidatesPerNode: cap,
				Betweenness:          betweennessOptions(g, cfg.Seed+77, cfg.Workers, cfg.Batch),
			}.Summarize(g)
			return rerr
		})
		if err != nil {
			return err
		}
		tbl.addRow(fmt.Sprint(cap), fmt.Sprint(sum.NumSupernodes()), f3(sum.Utility), fsec(dur))
	}
	return cfg.render(tbl)
}
