package experiments

import (
	"fmt"

	"edgeshed/internal/centrality"
	"edgeshed/internal/core"
	"edgeshed/internal/matching"
	"edgeshed/internal/tasks"
)

// runAblationSampling compares exact Brandes against source-sampled
// betweenness inside CRR Phase 1: reduction quality (Δ), top-k utility and
// time (DESIGN.md §5.1).
func runAblationSampling(cfg Config) error {
	g, err := cfg.build("ca-GrQc")
	if err != nil {
		return err
	}
	task := tasks.TopKTask{}
	tbl := newTable(
		fmt.Sprintf("Ablation 1 (ca-GrQc stand-in, |V|=%d, p=0.3): CRR betweenness sampling", g.NumNodes()),
		"variant", "avg delta", "top-k utility", "time (s)")
	variants := []struct {
		name string
		opt  centrality.Options
	}{
		{"exact", centrality.Options{}},
		{"samples=256", centrality.Options{Samples: 256, Seed: cfg.Seed + 20}},
		{"samples=64", centrality.Options{Samples: 64, Seed: cfg.Seed + 20}},
		{"samples=16", centrality.Options{Samples: 16, Seed: cfg.Seed + 20}},
	}
	for _, v := range variants {
		var res *core.Result
		dur, err := timed(func() error {
			var rerr error
			res, rerr = core.CRR{Seed: cfg.Seed + 1, Betweenness: v.opt}.Reduce(g, 0.3)
			return rerr
		})
		if err != nil {
			return err
		}
		tbl.addRow(v.name, f4(res.AvgDelta()), f3(task.Utility(g, res.Reduced)), fsec(dur))
	}
	return cfg.render(tbl)
}

// runAblationRounding compares BM2's capacity rounding rules (DESIGN.md
// §5.3).
func runAblationRounding(cfg Config) error {
	g, err := cfg.build("ca-GrQc")
	if err != nil {
		return err
	}
	tbl := newTable(
		fmt.Sprintf("Ablation 2 (ca-GrQc stand-in, |V|=%d): BM2 rounding rule", g.NumNodes()),
		"p", "half-up |E'|", "half-up delta", "half-even |E'|", "half-even delta")
	for _, p := range []float64{0.7, 0.5, 0.3} {
		up, err := (core.BM2{Rounding: core.RoundHalfUp}).Reduce(g, p)
		if err != nil {
			return err
		}
		even, err := (core.BM2{Rounding: core.RoundHalfEven}).Reduce(g, p)
		if err != nil {
			return err
		}
		tbl.addRow(f3(p),
			fmt.Sprint(up.Reduced.NumEdges()), f4(up.Delta()),
			fmt.Sprint(even.Reduced.NumEdges()), f4(even.Delta()))
	}
	return cfg.render(tbl)
}

// runAblationZeroGain compares keeping vs dropping gain = 0 bipartite edges
// in BM2 Phase 2 (Example 2's "user preference"; DESIGN.md §5.4).
func runAblationZeroGain(cfg Config) error {
	g, err := cfg.build("ca-GrQc")
	if err != nil {
		return err
	}
	tbl := newTable(
		fmt.Sprintf("Ablation 3 (ca-GrQc stand-in, |V|=%d): BM2 zero-gain edges", g.NumNodes()),
		"p", "keep |E'|", "keep delta", "drop |E'|", "drop delta")
	for _, p := range []float64{0.7, 0.5, 0.3} {
		keep, err := (core.BM2{}).Reduce(g, p)
		if err != nil {
			return err
		}
		drop, err := (core.BM2{DropZeroGain: true}).Reduce(g, p)
		if err != nil {
			return err
		}
		tbl.addRow(f3(p),
			fmt.Sprint(keep.Reduced.NumEdges()), f4(keep.Delta()),
			fmt.Sprint(drop.Reduced.NumEdges()), f4(drop.Delta()))
	}
	return cfg.render(tbl)
}

// runAblationOrder compares BM2 Phase-1 edge scan orders (DESIGN.md §5.5).
func runAblationOrder(cfg Config) error {
	g, err := cfg.build("ca-GrQc")
	if err != nil {
		return err
	}
	tbl := newTable(
		fmt.Sprintf("Ablation 4 (ca-GrQc stand-in, |V|=%d): BM2 b-matching edge order", g.NumNodes()),
		"p", "input delta", "scarce-first delta", "dense-first delta")
	for _, p := range []float64{0.7, 0.5, 0.3} {
		row := []string{f3(p)}
		for _, o := range []matching.EdgeOrder{matching.InputOrder, matching.ScarceFirst, matching.DenseFirst} {
			res, err := (core.BM2{Order: o}).Reduce(g, p)
			if err != nil {
				return err
			}
			row = append(row, f4(res.Delta()))
		}
		tbl.addRow(row...)
	}
	return cfg.render(tbl)
}

// runAblationImportance tests the paper's argument for betweenness as the
// Phase 1 ranking: compare it with a degree-product proxy and pure random
// ranking (DESIGN.md §5.6).
func runAblationImportance(cfg Config) error {
	g, err := cfg.build("ca-GrQc")
	if err != nil {
		return err
	}
	task := tasks.TopKTask{}
	tbl := newTable(
		fmt.Sprintf("Ablation 6 (ca-GrQc stand-in, |V|=%d, p=0.3): CRR Phase-1 importance", g.NumNodes()),
		"importance", "avg delta", "top-k utility", "SP-dist TVD", "time (s)")
	sp := tasks.SPDistanceTask{Seed: cfg.Seed + 21}
	for _, im := range []core.Importance{core.ImportanceBetweenness, core.ImportanceDegreeProduct, core.ImportanceRandom} {
		var res *core.Result
		dur, err := timed(func() error {
			var rerr error
			res, rerr = core.CRR{
				Seed:        cfg.Seed + 1,
				Importance:  im,
				Betweenness: betweennessOptions(g, cfg.Seed+77, cfg.Workers, cfg.Batch),
			}.Reduce(g, 0.3)
			return rerr
		})
		if err != nil {
			return err
		}
		tbl.addRow(im.String(), f4(res.AvgDelta()),
			f3(task.Utility(g, res.Reduced)),
			f4(sp.Error(g, res.Reduced)), fsec(dur))
	}
	return cfg.render(tbl)
}

// runAblationAdaptive compares the fixed [10·P]-step rewiring budget with
// the adaptive early stop across thresholds (DESIGN.md §5.7).
func runAblationAdaptive(cfg Config) error {
	g, err := cfg.build("ca-HepPh")
	if err != nil {
		return err
	}
	bopt := betweennessOptions(g, cfg.Seed+77, cfg.Workers, cfg.Batch)
	tbl := newTable(
		fmt.Sprintf("Ablation 7 (ca-HepPh stand-in, |V|=%d, p=0.5): CRR adaptive stop", g.NumNodes()),
		"variant", "avg delta", "time (s)")
	variants := []struct {
		name string
		stop float64
	}{
		{"fixed [10*P]", 0},
		{"adaptive 10%", 0.10},
		{"adaptive 3%", 0.03},
		{"adaptive 1%", 0.01},
	}
	for _, v := range variants {
		var res *core.Result
		dur, err := timed(func() error {
			var rerr error
			res, rerr = core.CRR{Seed: cfg.Seed + 1, Betweenness: bopt, AdaptiveStop: v.stop}.Reduce(g, 0.5)
			return rerr
		})
		if err != nil {
			return err
		}
		tbl.addRow(v.name, f4(res.AvgDelta()), fsec(dur))
	}
	return cfg.render(tbl)
}

// runAblationRewiring isolates the value of CRR Phase 2 across p: pure
// centrality ranking (Steps < 0) vs the default [10·P] rewiring budget.
func runAblationRewiring(cfg Config) error {
	g, err := cfg.build("ca-GrQc")
	if err != nil {
		return err
	}
	bopt := betweennessOptions(g, cfg.Seed+77, cfg.Workers, cfg.Batch)
	tbl := newTable(
		fmt.Sprintf("Ablation 5 (ca-GrQc stand-in, |V|=%d): CRR rewiring on/off", g.NumNodes()),
		"p", "phase1-only delta", "full CRR delta", "improvement")
	for _, p := range cfg.ps() {
		off, err := (core.CRR{Seed: cfg.Seed + 1, Steps: -1, Betweenness: bopt}).Reduce(g, p)
		if err != nil {
			return err
		}
		on, err := (core.CRR{Seed: cfg.Seed + 1, Betweenness: bopt}).Reduce(g, p)
		if err != nil {
			return err
		}
		improvement := 0.0
		if off.Delta() > 0 {
			improvement = 1 - on.Delta()/off.Delta()
		}
		tbl.addRow(f3(p), f4(off.Delta()), f4(on.Delta()), f3(improvement))
	}
	return cfg.render(tbl)
}
