package experiments

import (
	"testing"

	"edgeshed/internal/graph/gen"
)

func TestBetweennessOptionsSizing(t *testing.T) {
	small := gen.Cycle(100)
	if opt := betweennessOptions(small, 1, 0, 0); opt.Samples != 0 {
		t.Errorf("small graph got sampled betweenness: %+v", opt)
	}
	big := gen.BarabasiAlbert(5000, 2, 1)
	opt := betweennessOptions(big, 1, 0, 0)
	if opt.Samples == 0 {
		t.Error("large graph got exact betweenness")
	}
	if opt.Samples > big.NumNodes() {
		t.Errorf("samples %d exceed |V|", opt.Samples)
	}
}

func TestReducerSetOrderAndSkip(t *testing.T) {
	g := gen.Cycle(50)
	full := (Config{}).reducerSet(g)
	if len(full) != 3 {
		t.Fatalf("reducer set size = %d, want 3", len(full))
	}
	if full[0] == nil || full[0].Name() != "UDS" {
		t.Error("first slot should be UDS")
	}
	if full[1].Name() != "CRR" || full[2].Name() != "BM2" {
		t.Error("table order must be UDS, CRR, BM2")
	}
	skipped := (Config{SkipUDS: true}).reducerSet(g)
	if skipped[0] != nil {
		t.Error("SkipUDS did not clear the UDS slot")
	}
}

func TestReduceAllSkipsNil(t *testing.T) {
	g := gen.BarabasiAlbert(60, 2, 1)
	reds, err := (Config{SkipUDS: true}).reduceAll(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(reds) != 2 {
		t.Fatalf("reduceAll returned %d reductions, want 2 with UDS skipped", len(reds))
	}
	for _, rd := range reds {
		if rd.g.NumEdges() == 0 {
			t.Errorf("%s produced an empty reduction", rd.name)
		}
	}
}

func TestBuildScalesLiveJournalExtra(t *testing.T) {
	cfg := Config{Scale: 64}
	lj, err := cfg.build("com-LiveJournal")
	if err != nil {
		t.Fatal(err)
	}
	grqc, err := cfg.build("ca-GrQc")
	if err != nil {
		t.Fatal(err)
	}
	// LiveJournal gets a 16x extra divisor: 3997962/(64*16) vs 5242/64.
	if lj.NumNodes() != 3997962/(64*16) {
		t.Errorf("LJ |V| = %d", lj.NumNodes())
	}
	if grqc.NumNodes() != 5242/64 {
		t.Errorf("GrQc |V| = %d", grqc.NumNodes())
	}
	if _, err := cfg.build("no-such"); err == nil {
		t.Error("unknown dataset accepted")
	}
}
