package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig shrinks every dataset far enough that each experiment finishes
// in test time while still exercising the full pipeline.
func tinyConfig(buf *bytes.Buffer) Config {
	return Config{
		Out:   buf,
		Scale: 128,
		Ps:    []float64{0.7, 0.3},
	}
}

func TestRegistryCompleteAndUnique(t *testing.T) {
	all := All()
	wantIDs := []string{
		"fig4", "fig5ab", "fig5cd", "fig7", "fig8", "fig9", "fig10",
		"t3", "t4", "t5", "t6", "t7", "t8", "t9", "t10",
		"ab1", "ab2", "ab3", "ab4", "ab5", "ab6", "ab7", "ab8", "noise",
		"headline", "quality", "memory", "baselines", "stream",
	}
	if len(all) != len(wantIDs) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(wantIDs))
	}
	seen := map[string]bool{}
	for i, e := range all {
		if e.ID != wantIDs[i] {
			t.Errorf("registry[%d] = %q, want %q", i, e.ID, wantIDs[i])
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q missing title or runner", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("t3")
	if err != nil {
		t.Fatalf("ByID(t3): %v", err)
	}
	if !strings.Contains(e.Title, "Table III") {
		t.Errorf("t3 title = %q", e.Title)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.scale() != 16 {
		t.Errorf("default scale = %d, want 16", c.scale())
	}
	if got := c.ps(); len(got) != 9 || got[0] != 0.9 || got[8] != 0.1 {
		t.Errorf("default ps = %v", got)
	}
}

func TestTablePrinter(t *testing.T) {
	var buf bytes.Buffer
	tbl := newTable("Title", "a", "bb")
	tbl.addRow("1", "2")
	tbl.addRow("333", "4")
	if err := tbl.render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Title", "a", "bb", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestEachExperimentRuns smoke-tests every registered experiment at tiny
// scale: it must complete without error and produce non-empty output.
func TestEachExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			cfg := tinyConfig(&buf)
			if err := e.Run(cfg); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestT3SkipsUDSOnLiveJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("not short")
	}
	var buf bytes.Buffer
	cfg := tinyConfig(&buf)
	cfg.Ps = []float64{0.5}
	if err := runT3(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	idx := strings.Index(out, "com-LiveJournal")
	if idx < 0 {
		t.Fatal("no LiveJournal section")
	}
	if !strings.Contains(out[idx:], "-") {
		t.Error("LiveJournal rows should mark UDS as skipped with '-'")
	}
}
