package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// table accumulates rows and renders them with aligned columns, in the
// plain-text style of the paper's tables.
type table struct {
	title   string
	headers []string
	rows    [][]string
}

func newTable(title string, headers ...string) *table {
	return &table{title: title, headers: headers}
}

func (t *table) addRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// renderMarkdown writes the table as GitHub-flavored Markdown, for pasting
// measured results into EXPERIMENTS.md.
func (t *table) renderMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.title)
	}
	b.WriteString("| " + strings.Join(t.headers, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.headers)) + "\n")
	for _, row := range t.rows {
		cells := make([]string, len(t.headers))
		for i := range cells {
			if i < len(row) {
				cells[i] = row[i]
			}
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// render writes the table with per-column alignment.
func (t *table) render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := len(t.headers)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// fsec formats a duration as seconds with millisecond precision, the unit of
// the paper's timing tables.
func fsec(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// f3 formats a float with three decimals, the precision of the paper's
// utility tables.
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

// f4 formats a float with four decimals, for small distribution masses.
func f4(x float64) string { return fmt.Sprintf("%.4f", x) }

// series prints a named numeric series on one line, capped at n entries.
func seriesLine(w io.Writer, name string, xs []float64, n int) error {
	if n > 0 && len(xs) > n {
		xs = xs[:n]
	}
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = f4(x)
	}
	_, err := fmt.Fprintf(w, "%-10s %s\n", name, strings.Join(parts, " "))
	return err
}
