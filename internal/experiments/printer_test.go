package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestFormattersStable(t *testing.T) {
	if got := fsec(1500 * time.Millisecond); got != "1.500" {
		t.Errorf("fsec = %q, want 1.500", got)
	}
	if got := f3(0.12345); got != "0.123" {
		t.Errorf("f3 = %q", got)
	}
	if got := f4(0.12345); got != "0.1235" { // %.4f rounds
		t.Errorf("f4 = %q", got)
	}
}

func TestFmtBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.00 KiB"},
		{3 << 20, "3.00 MiB"},
		{5 << 30, "5.00 GiB"},
	}
	for _, c := range cases {
		if got := fmtBytes(c.in); got != c.want {
			t.Errorf("fmtBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSeriesLineCapping(t *testing.T) {
	var buf bytes.Buffer
	if err := seriesLine(&buf, "name", []float64{1, 2, 3, 4}, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "1.0000") != 1 || strings.Contains(out, "3.0000") {
		t.Errorf("capping wrong: %q", out)
	}
}

func TestRenderMarkdown(t *testing.T) {
	tbl := newTable("My Caption", "a", "b")
	tbl.addRow("1", "2")
	tbl.addRow("3") // ragged row: padded
	var buf bytes.Buffer
	if err := tbl.renderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"**My Caption**", "| a | b |", "|---|---|", "| 1 | 2 |", "| 3 |  |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestConfigRenderDispatch(t *testing.T) {
	tbl := newTable("T", "x")
	tbl.addRow("1")
	var plain, md bytes.Buffer
	if err := (Config{Out: &plain}).render(tbl); err != nil {
		t.Fatal(err)
	}
	if err := (Config{Out: &md, Markdown: true}).render(tbl); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "|") {
		t.Error("plain output contains markdown pipes")
	}
	if !strings.Contains(md.String(), "|") {
		t.Error("markdown output lacks pipes")
	}
}
