package obs

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// newTestCLI builds a parsed CLI over a fresh FlagSet with the given
// arguments.
func newTestCLI(t *testing.T, args ...string) *CLI {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.Int("workers", 0, "test flag riding along")
	c := BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSessionDisabledByDefault pins the zero-overhead-when-off switch: with
// no capture flags, the session's Recorder and Root are nil, exactly what
// kernels need to take their free path.
func TestSessionDisabledByDefault(t *testing.T) {
	c := newTestCLI(t)
	s, err := c.Start("test")
	if err != nil {
		t.Fatal(err)
	}
	if s.Recorder() != nil || s.Root() != nil {
		t.Error("session without -metrics has a live recorder")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionWritesManifest drives a full metrics session — spans,
// counters, graph/seed/workers annotations — and validates the written
// manifest through ReadManifest.
func TestSessionWritesManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	c := newTestCLI(t, "-metrics", path, "-workers", "3")
	s, err := c.Start("testcmd")
	if err != nil {
		t.Fatal(err)
	}
	sp := s.Root().Start("load")
	sp.End()
	s.Root().Counter("events").Add(7)
	s.Root().Gauge("level").Set(11)
	s.SetGraph(100, 250)
	s.SetSeed(42)
	s.SetWorkers(3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	m, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Command != "testcmd" {
		t.Errorf("command = %q", m.Command)
	}
	if m.GoVersion == "" || m.CPUs <= 0 || m.GoMaxProcs <= 0 || m.StartUTC == "" {
		t.Errorf("host fields incomplete: %+v", m)
	}
	if m.Graph == nil || m.Graph.Nodes != 100 || m.Graph.Edges != 250 {
		t.Errorf("graph = %+v", m.Graph)
	}
	if m.Seed != 42 || m.Workers != 3 {
		t.Errorf("seed/workers = %d/%d", m.Seed, m.Workers)
	}
	if m.Spans == nil || m.Spans.Name != "testcmd" || len(m.Spans.Children) != 1 || m.Spans.Children[0].Name != "load" {
		t.Errorf("span tree = %+v", m.Spans)
	}
	if m.Counters["events"] != 7 || m.Gauges["level"] != 11 {
		t.Errorf("counters/gauges = %v / %v", m.Counters, m.Gauges)
	}
	if m.Options["workers"] != "3" || m.Options["metrics"] != path {
		t.Errorf("options = %v", m.Options)
	}
	if m.Mem == nil || m.Mem.PeakHeapSysBytes == 0 {
		t.Errorf("mem snapshot = %+v", m.Mem)
	}
	if m.WallNs <= 0 {
		t.Errorf("wall = %d", m.WallNs)
	}
	if len(m.RuntimeMetrics) == 0 {
		t.Errorf("no runtime metrics captured")
	}
}

// TestSessionCPUProfileAndTrace checks the capture hooks produce non-empty
// files.
func TestSessionCPUProfileAndTrace(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	tr := filepath.Join(dir, "trace.out")
	c := newTestCLI(t, "-profile", "cpu", "-profile-out", cpu, "-trace", tr)
	s, err := c.Start("test")
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to encode.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, tr} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// TestSessionMemAndBlockProfiles checks the profiles written at Close.
func TestSessionMemAndBlockProfiles(t *testing.T) {
	for _, mode := range []string{"mem", "block"} {
		path := filepath.Join(t.TempDir(), mode+".pprof")
		c := newTestCLI(t, "-profile", mode, "-profile-out", path)
		s, err := c.Start("test")
		if err != nil {
			t.Fatal(err)
		}
		_ = make([]byte, 1<<20)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s profile is empty", mode)
		}
	}
}

// TestStartRejectsUnknownProfile pins the -profile validation.
func TestStartRejectsUnknownProfile(t *testing.T) {
	c := newTestCLI(t, "-profile", "goroutine")
	if _, err := c.Start("test"); err == nil {
		t.Fatal("unknown profile mode accepted")
	}
}

// TestDefaultProfilePath pins the "<mode>.pprof" default.
func TestDefaultProfilePath(t *testing.T) {
	c := newTestCLI(t, "-profile", "cpu")
	if got := c.profilePath(); got != "cpu.pprof" {
		t.Fatalf("profilePath = %q", got)
	}
}

// TestReadManifestRejectsBadFiles covers the consumer-side validation the
// CI smoke check relies on.
func TestReadManifestRejectsBadFiles(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(empty); err == nil {
		t.Error("empty manifest accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(bad); err == nil {
		t.Error("malformed manifest accepted")
	}
	noCmd := filepath.Join(dir, "nocmd.json")
	if err := os.WriteFile(noCmd, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(noCmd); err == nil {
		t.Error("command-less manifest accepted")
	}
	if _, err := ReadManifest(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("absent manifest accepted")
	}
}

// TestNilSessionMethods pins Session's nil-safety for helpers exercised
// without a session.
func TestNilSessionMethods(t *testing.T) {
	var s *Session
	if s.Recorder() != nil || s.Root() != nil {
		t.Error("nil session exposes a recorder")
	}
	s.SetGraph(1, 2)
	s.SetSeed(3)
	s.SetWorkers(4)
	s.Verbosef("dropped %d", 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
