package obs

import (
	"fmt"
	"os/exec"
	"runtime"
	"strings"
)

// Env identifies the machine and toolchain a measurement was taken on. It
// is embedded in BENCH_*.json baselines (cmd/benchjson) so consumers like
// cmd/obsdiff can refuse to compare numbers from different machines instead
// of reporting phantom regressions.
type Env struct {
	// GoVersion is runtime.Version() of the measuring process.
	GoVersion string `json:"go_version"`
	// GOOS and GOARCH identify the platform.
	GOOS string `json:"goos"`
	// GOARCH is the architecture half of the platform pair.
	GOARCH string `json:"goarch"`
	// CPUs is runtime.NumCPU of the measuring machine.
	CPUs int `json:"cpus"`
	// GitCommit is the repository HEAD at measurement time, when the
	// measuring process ran inside a git checkout; empty otherwise. A
	// "-dirty" suffix means the worktree had uncommitted modifications, so
	// the commit does not fully identify the measured code.
	GitCommit string `json:"git_commit,omitempty"`
}

// CaptureEnv records the current process's environment identity. The git
// commit is best-effort: a missing git binary or a non-repository working
// directory leaves it empty rather than failing.
func CaptureEnv() *Env {
	return &Env{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		GitCommit: gitCommit(),
	}
}

// gitCommit returns the short HEAD hash with a "-dirty" suffix when the
// worktree has uncommitted modifications, or "" when unavailable. The
// dirtiness check is best-effort too: if `git status` fails, the bare hash
// is returned rather than nothing.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	c := strings.TrimSpace(string(out))
	if c == "" {
		return ""
	}
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(strings.TrimSpace(string(st))) > 0 {
		c += dirtySuffix
	}
	return c
}

// dirtySuffix marks a commit stamp taken from a modified worktree.
const dirtySuffix = "-dirty"

// DirtyCommit reports whether a git_commit stamp (from an Env or a
// Manifest) was taken from a modified worktree. Trend consumers warn on
// such baselines: the commit does not identify the measured code.
func DirtyCommit(commit string) bool {
	return strings.HasSuffix(commit, dirtySuffix)
}

// Dirty reports whether the env's commit stamp came from a modified
// worktree. Nil-safe: an unrecorded env is not dirty.
func (e *Env) Dirty() bool {
	return e != nil && DirtyCommit(e.GitCommit)
}

// Comparable reports whether perf numbers measured under e and other can be
// meaningfully compared: same OS, architecture and CPU count. A differing
// Go toolchain shifts numbers too, but PRs bump toolchains on purpose, so
// that difference is returned as a warning string rather than an error.
// Either side nil means the environment is unrecorded (a pre-env baseline);
// that is not an error — the caller cannot verify, and should say so.
func (e *Env) Comparable(other *Env) (warning string, err error) {
	if e == nil || other == nil {
		return "environment not recorded on both sides; machine match unverified", nil
	}
	if e.GOOS != other.GOOS || e.GOARCH != other.GOARCH {
		return "", fmt.Errorf("platform mismatch: %s/%s vs %s/%s", e.GOOS, e.GOARCH, other.GOOS, other.GOARCH)
	}
	if e.CPUs != other.CPUs {
		return "", fmt.Errorf("cpu count mismatch: %d vs %d", e.CPUs, other.CPUs)
	}
	if e.GoVersion != other.GoVersion {
		return fmt.Sprintf("go toolchain differs: %s vs %s", e.GoVersion, other.GoVersion), nil
	}
	return "", nil
}
