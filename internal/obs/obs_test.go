package obs

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"edgeshed/internal/par"
)

// TestNilReceiversNoOp pins the disabled-state contract: every method on a
// nil Recorder, Span, Counter and Gauge is a safe no-op, and handles
// derived from nil receivers are themselves nil.
func TestNilReceiversNoOp(t *testing.T) {
	var r *Recorder
	if r.Root() != nil {
		t.Error("nil Recorder.Root() != nil")
	}
	if r.Counter("x") != nil {
		t.Error("nil Recorder.Counter() != nil")
	}
	if r.Gauge("x") != nil {
		t.Error("nil Recorder.Gauge() != nil")
	}
	if r.Histogram("x") != nil {
		t.Error("nil Recorder.Histogram() != nil")
	}
	if r.Flight() != nil {
		t.Error("nil Recorder.Flight() != nil")
	}
	if r.CounterValues() != nil || r.GaugeValues() != nil || r.HistogramValues() != nil || r.SpanTree() != nil {
		t.Error("nil Recorder snapshots != nil")
	}
	if r.Quality("x", DirLower) != nil {
		t.Error("nil Recorder.Quality() != nil")
	}
	if r.QualityValues() != nil || r.QualityPoints() != nil {
		t.Error("nil Recorder quality snapshots != nil")
	}

	var sp *Span
	if sp.Enabled() {
		t.Error("nil Span.Enabled() = true")
	}
	if child := sp.Start("phase"); child != nil {
		t.Error("nil Span.Start() != nil")
	}
	sp.End()
	sp.WorkerBusy(3, time.Second)
	if sp.Counter("x") != nil || sp.Gauge("x") != nil || sp.Histogram("x") != nil {
		t.Error("nil Span handle != nil")
	}
	if sp.Marker(EvBatch, "x") != nil {
		t.Error("nil Span.Marker() != nil")
	}
	if sp.Quality("x", DirHigher) != nil {
		t.Error("nil Span.Quality() != nil")
	}

	var p *Probe
	p.Record(0.5, 1.5)
	p.RecordAt(3, 0.5, 1.5)
	if v, ok := p.Value(); ok || v != 0 {
		t.Error("nil Probe.Value() != (0, false)")
	}

	var c *Counter
	c.Add(5)
	c.AddAt(7, 5)
	if c.Value() != 0 {
		t.Error("nil Counter.Value() != 0")
	}

	var g *Gauge
	g.Set(5)
	g.SetMax(9)
	if g.Value() != 0 {
		t.Error("nil Gauge.Value() != 0")
	}

	var h *Histogram
	h.Observe(5)
	h.ObserveAt(3, 5)
	if h.Snapshot() != nil {
		t.Error("nil Histogram.Snapshot() != nil")
	}

	var f *Flight
	f.SlotBegin(0, 4)
	f.SlotEnd(0, 4)
	if f.Marker(EvBatch, "x") != nil {
		t.Error("nil Flight.Marker() != nil")
	}
	if f.Events() != nil {
		t.Error("nil Flight.Events() != nil")
	}

	var mk *Marker
	mk.Emit(0, 1)
}

// disabledKernelPath exercises the exact call shape an instrumented kernel
// runs when observation is off: derive a child span, fetch counters,
// histograms and markers, add/observe/emit, record worker busy time, end.
func disabledKernelPath(parent *Span) {
	sp := parent.Start("phase")
	sp.SetTotal(100)
	ctr := sp.Counter("events")
	hist := sp.Histogram("batch_ns")
	mk := sp.Marker(EvBatch, "phase")
	for i := 0; i < 8; i++ {
		ctr.AddAt(i, 1)
		hist.ObserveAt(i, int64(i)*100)
		mk.Emit(i, int64(i))
		sp.Done(1)
	}
	ctr.Add(1)
	hist.Observe(7)
	if d, tot := sp.Progress(); d != 0 || tot != 0 {
		panic("nil span reported progress")
	}
	sp.Gauge("level").SetMax(42)
	q := sp.Quality("delta", DirLower)
	q.RecordAt(0, 0.5, 1.5)
	q.Record(0.5, 2.5)
	if _, ok := q.Value(); ok {
		panic("nil probe reported a value")
	}
	sp.WorkerBusy(0, time.Millisecond)
	sp.End()
}

// TestDisabledPathAllocatesNothing is the hard tentpole requirement:
// instrumentation through nil handles must not allocate, so kernels can
// carry it unconditionally.
func TestDisabledPathAllocatesNothing(t *testing.T) {
	var parent *Span
	if allocs := testing.AllocsPerRun(100, func() { disabledKernelPath(parent) }); allocs != 0 {
		t.Fatalf("disabled instrumentation path allocates %.1f objects per run, want 0", allocs)
	}
}

// TestCounterShardsMatchPar pins the shard-count discipline shared with
// internal/par (DESIGN.md §7): the constants must stay equal so worker
// indices map onto counter cells the same way they map onto accumulation
// shards.
func TestCounterShardsMatchPar(t *testing.T) {
	if CounterShards != par.Shards {
		t.Fatalf("obs.CounterShards = %d, par.Shards = %d; the disciplines must agree", CounterShards, par.Shards)
	}
	if CounterShards&(CounterShards-1) != 0 {
		t.Fatalf("CounterShards = %d is not a power of two", CounterShards)
	}
}

// TestCounterConcurrentAdds drives a counter from many workers through
// par.Run — the exact usage pattern of the instrumented kernels — and
// checks the merged value. Run under -race in CI (make race).
func TestCounterConcurrentAdds(t *testing.T) {
	r := New("test")
	ctr := r.Counter("events")
	gauge := r.Gauge("peak")
	const workers, perWorker = 8, 10000
	par.Run(workers, func(w int) {
		for i := 0; i < perWorker; i++ {
			ctr.AddAt(w, 1)
		}
		gauge.SetMax(int64(w))
	})
	if got := ctr.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := gauge.Value(); got != workers-1 {
		t.Fatalf("gauge max = %d, want %d", got, workers-1)
	}
	if vals := r.CounterValues(); vals["events"] != workers*perWorker {
		t.Fatalf("CounterValues = %v", vals)
	}
}

// TestCounterSameNameSharedInstance pins that concurrent Counter lookups of
// one name share cells: adds through either handle merge.
func TestCounterSameNameSharedInstance(t *testing.T) {
	r := New("test")
	par.Run(4, func(w int) {
		r.Counter("shared").AddAt(w, 1)
	})
	if got := r.Counter("shared").Value(); got != 4 {
		t.Fatalf("shared counter = %d, want 4", got)
	}
}

// TestConcurrentChildSpans starts children from parallel workers — the
// CRR.Sweep shape — and checks they all land in the tree. Run under -race.
func TestConcurrentChildSpans(t *testing.T) {
	r := New("test")
	sweep := r.Root().Start("sweep")
	par.Run(8, func(w int) {
		sp := sweep.Start("reduce")
		sp.WorkerBusy(w, time.Duration(w))
		sp.End()
	})
	sweep.End()
	tree := r.SpanTree()
	if len(tree.Children) != 1 || len(tree.Children[0].Children) != 8 {
		t.Fatalf("span tree shape: root has %d children", len(tree.Children))
	}
}

// TestSpanTreeJSONRoundTrip pins that a span tree survives
// marshal/unmarshal bit-exactly, the property manifests rely on.
func TestSpanTreeJSONRoundTrip(t *testing.T) {
	r := New("root")
	p1 := r.Root().Start("phase1")
	p1.WorkerBusy(0, 5*time.Millisecond)
	p1.WorkerBusy(2, 7*time.Millisecond)
	inner := p1.Start("inner")
	inner.End()
	p1.End()
	p2 := r.Root().Start("phase2")
	p2.End()
	r.Root().End()

	tree := r.SpanTree()
	data, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	var back SpanNode
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tree, &back) {
		t.Fatalf("span tree did not round-trip:\n  out: %+v\n  back: %+v", tree, &back)
	}
	if back.Name != "root" || len(back.Children) != 2 || back.Children[0].Name != "phase1" {
		t.Fatalf("unexpected tree shape: %+v", back)
	}
	if got := back.Children[0].WorkerBusyNs; len(got) != 3 || got[0] != 5e6 || got[2] != 7e6 {
		t.Fatalf("worker busy = %v", got)
	}
}

// TestSpanDurations checks the basic timing invariants: an ended span's
// duration is fixed, non-negative, and a child starts at or after its
// parent (offsets are relative to the recorder start).
func TestSpanDurations(t *testing.T) {
	r := New("root")
	sp := r.Root().Start("work")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	before := r.SpanTree()
	time.Sleep(2 * time.Millisecond)
	after := r.SpanTree()
	w1, w2 := before.Children[0], after.Children[0]
	if w1.DurNs != w2.DurNs {
		t.Errorf("ended span duration drifted: %d != %d", w1.DurNs, w2.DurNs)
	}
	if w1.DurNs < (1 * time.Millisecond).Nanoseconds() {
		t.Errorf("span duration %dns shorter than the sleep", w1.DurNs)
	}
	if w1.StartNs < 0 {
		t.Errorf("child start offset %d negative", w1.StartNs)
	}
	// The never-ended root keeps growing until ended.
	if after.DurNs <= before.DurNs {
		t.Errorf("open root span did not advance: %d then %d", before.DurNs, after.DurNs)
	}
}

// TestSpanProgressAndETA pins the unit-progress contract: SetTotal/Done
// surface as done/total on the snapshot node, an open span with partial
// progress extrapolates a positive ETA, and ending the span freezes the
// numbers with no ETA.
func TestSpanProgressAndETA(t *testing.T) {
	r := New("root")
	sp := r.Root().Start("sweep")
	sp.SetTotal(4)
	sp.Done(1)
	time.Sleep(2 * time.Millisecond)
	sp.Done(1)
	n := r.SpanTree().Children[0]
	if n.Done != 2 || n.Total != 4 {
		t.Fatalf("progress = %d/%d, want 2/4", n.Done, n.Total)
	}
	if n.Ended {
		t.Fatal("open span snapshot marked ended")
	}
	if n.EtaNs <= 0 {
		t.Fatalf("open span at 2/4 has eta %d, want > 0", n.EtaNs)
	}
	if d, tot := sp.Progress(); d != 2 || tot != 4 {
		t.Fatalf("Progress() = %d/%d, want 2/4", d, tot)
	}
	sp.End()
	n = r.SpanTree().Children[0]
	if !n.Ended || n.EtaNs != 0 {
		t.Fatalf("ended span: ended=%v eta=%d, want true/0", n.Ended, n.EtaNs)
	}
}

// TestCounterNamesSorted pins the stable debug iteration order.
func TestCounterNamesSorted(t *testing.T) {
	r := New("test")
	r.Counter("zeta")
	r.Counter("alpha")
	got := r.counterNames()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("counterNames = %v", got)
	}
}
