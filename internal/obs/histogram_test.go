package obs

import (
	"math"
	"testing"

	"edgeshed/internal/par"
)

// TestHistogramBucketBoundaries pins the power-of-two bucketing rule:
// bucket k holds v ∈ [2^(k−1), 2^k − 1], bucket 0 holds v ≤ 0.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{-5, 0, 1, 2, 3, 4, 7, 8, 1023, 1024} {
		h.Observe(v)
	}
	snap := h.Snapshot()
	if snap.Count != 10 || snap.Sum != -5+0+1+2+3+4+7+8+1023+1024 {
		t.Fatalf("count=%d sum=%d", snap.Count, snap.Sum)
	}
	want := map[int]int64{
		0:  2, // -5, 0
		1:  1, // 1
		2:  2, // 2, 3
		3:  2, // 4, 7
		4:  1, // 8
		10: 1, // 1023
		11: 1, // 1024
	}
	for b, n := range want {
		if snap.Buckets[b] != n {
			t.Errorf("bucket %d = %d, want %d (buckets: %v)", b, snap.Buckets[b], n, snap.Buckets)
		}
	}
	if len(snap.Buckets) != 12 {
		t.Errorf("trailing zeros not trimmed: len = %d, want 12", len(snap.Buckets))
	}
}

// TestHistogramBucketUpper pins the exposition bucket bounds, including the
// int64 saturation of the top buckets.
func TestHistogramBucketUpper(t *testing.T) {
	for b, want := range map[int]int64{0: 0, 1: 1, 2: 3, 3: 7, 10: 1023, 63: math.MaxInt64, 64: math.MaxInt64} {
		if got := BucketUpper(b); got != want {
			t.Errorf("BucketUpper(%d) = %d, want %d", b, got, want)
		}
	}
	// The extreme value lands in the top bucket rather than overflowing.
	h := &Histogram{}
	h.Observe(math.MaxInt64)
	snap := h.Snapshot()
	if snap.Buckets[63] != 1 {
		t.Fatalf("MaxInt64 not in bucket 63: %v", snap.Buckets)
	}
}

// TestHistogramConcurrentObserve drives a histogram from parallel workers
// through the AddAt-style sharding and checks the exact merged count and
// sum. Run under -race in CI (make race).
func TestHistogramConcurrentObserve(t *testing.T) {
	r := New("test")
	h := r.Histogram("lat")
	const workers, per = 8, 10000
	par.Run(workers, func(w int) {
		for i := 0; i < per; i++ {
			h.ObserveAt(w, int64(i))
		}
	})
	snap := h.Snapshot()
	if snap.Count != workers*per {
		t.Fatalf("count = %d, want %d", snap.Count, workers*per)
	}
	wantSum := int64(workers) * int64(per) * int64(per-1) / 2
	if snap.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", snap.Sum, wantSum)
	}
	if vals := r.HistogramValues(); vals["lat"].Count != workers*per {
		t.Fatalf("HistogramValues = %+v", vals["lat"])
	}
}

// TestHistogramQuantile pins the interpolated quantile estimator on a known
// distribution: 100 observations of 100 each all land in bucket 7
// ([64, 127]), so every quantile interpolates within that bucket.
func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 100; i++ {
		h.Observe(100)
	}
	snap := h.Snapshot()
	for _, q := range []float64{0.5, 0.99} {
		got := snap.Quantile(q)
		if got < 64 || got > 128 {
			t.Errorf("Quantile(%g) = %g, outside bucket [64, 128]", q, got)
		}
	}
	// p50 of a two-bucket split: 50 ones (bucket 1) and 50 thousands
	// (bucket 10); the median must sit at the bucket boundary region and
	// p99 well into the top bucket.
	h2 := &Histogram{}
	for i := 0; i < 50; i++ {
		h2.Observe(1)
		h2.Observe(1000)
	}
	s2 := h2.Snapshot()
	if p50, p99 := s2.Quantile(0.5), s2.Quantile(0.99); p50 > 4 || p99 < 512 {
		t.Errorf("p50=%g p99=%g for the 1/1000 split, want small/large", p50, p99)
	}
	var nilSnap *HistogramSnapshot
	if nilSnap.Quantile(0.5) != 0 {
		t.Error("nil snapshot quantile != 0")
	}
}

// TestHistogramSameNameSharedInstance mirrors the counter contract: one
// name, one histogram.
func TestHistogramSameNameSharedInstance(t *testing.T) {
	r := New("test")
	par.Run(4, func(w int) {
		r.Histogram("shared").ObserveAt(w, 1)
	})
	if got := r.Histogram("shared").Snapshot().Count; got != 4 {
		t.Fatalf("shared histogram count = %d, want 4", got)
	}
}
