package obs

import (
	"strings"
	"testing"
	"time"

	"edgeshed/internal/par"
)

// TestFlightRecordsSpanEvents pins the automatic span instrumentation:
// Start/End emit span_begin/span_end with the span's name, in timestamp
// order.
func TestFlightRecordsSpanEvents(t *testing.T) {
	r := New("root")
	sp := r.Root().Start("phase")
	sp.WorkerBusy(2, 5*time.Millisecond)
	sp.End()
	events := r.Flight().Events()
	var begins, ends, busy int
	for _, e := range events {
		switch {
		case e.Kind == "span_begin" && e.Name == "phase":
			begins++
		case e.Kind == "span_end" && e.Name == "phase":
			ends++
			if e.Arg <= 0 {
				t.Errorf("span_end arg (duration) = %d, want > 0", e.Arg)
			}
		case e.Kind == "worker_busy":
			busy++
			if e.Slot != 2 || e.Name != "phase" || e.Arg != (5*time.Millisecond).Nanoseconds() {
				t.Errorf("worker_busy event = %+v", e)
			}
		}
	}
	if begins != 1 || ends != 1 || busy != 1 {
		t.Fatalf("begins=%d ends=%d busy=%d, want 1/1/1 (events: %+v)", begins, ends, busy, events)
	}
	for i := 1; i < len(events); i++ {
		if events[i].TSNs < events[i-1].TSNs {
			t.Fatalf("events not in timestamp order at %d: %d then %d", i, events[i-1].TSNs, events[i].TSNs)
		}
	}
}

// TestFlightMarkerEmit pins Marker round-trips: kind, name, slot and arg
// all come back decoded.
func TestFlightMarkerEmit(t *testing.T) {
	r := New("root")
	mk := r.Flight().Marker(EvDirSwitch, "closeness")
	mk.Emit(3, 42)
	mk.Emit(-1, 7)
	var got []Event
	for _, e := range r.Flight().Events() {
		if e.Kind == "dir_switch" {
			got = append(got, e)
		}
	}
	if len(got) != 2 {
		t.Fatalf("got %d dir_switch events, want 2", len(got))
	}
	for _, e := range got {
		if e.Name != "closeness" {
			t.Errorf("event name = %q, want closeness", e.Name)
		}
	}
	if got[0].Slot == got[1].Slot {
		t.Errorf("slots not preserved: %+v", got)
	}
	for _, e := range got {
		if e.Slot == 3 && e.Arg != 42 {
			t.Errorf("slot-3 arg = %d, want 42", e.Arg)
		}
		if e.Slot == -1 && e.Arg != 7 {
			t.Errorf("control arg = %d, want 7", e.Arg)
		}
	}
}

// TestFlightRingWraps pins the fixed-capacity contract: a ring holds the
// LAST flightRingCap events of its slot, dropping the oldest.
func TestFlightRingWraps(t *testing.T) {
	r := New("root")
	mk := r.Flight().Marker(EvBatch, "wrap")
	const total = flightRingCap + 100
	for i := 0; i < total; i++ {
		mk.Emit(0, int64(i))
	}
	var batch []Event
	for _, e := range r.Flight().Events() {
		if e.Kind == "batch" {
			batch = append(batch, e)
		}
	}
	if len(batch) != flightRingCap {
		t.Fatalf("wrapped ring returned %d events, want %d", len(batch), flightRingCap)
	}
	// The survivors are the newest `flightRingCap` args: [100, total).
	seen := map[int64]bool{}
	for _, e := range batch {
		seen[e.Arg] = true
	}
	if seen[0] || seen[99] {
		t.Error("oldest events survived the wrap")
	}
	if !seen[100] || !seen[total-1] {
		t.Error("newest events missing after the wrap")
	}
}

// TestFlightConcurrentEmitAndRead hammers the rings from parallel workers
// while a reader concurrently snapshots — the live /events shape. Run under
// -race in CI (make race); correctness here is "no torn events": every
// decoded event must be one that some worker actually wrote.
func TestFlightConcurrentEmitAndRead(t *testing.T) {
	r := New("root")
	mk := r.Flight().Marker(EvBatch, "hammer")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			for _, e := range r.Flight().Events() {
				if e.Kind == "batch" && (e.Arg < 0 || e.Arg >= 1000) {
					panic("torn event arg")
				}
			}
		}
	}()
	par.Run(8, func(w int) {
		for i := 0; i < 1000; i++ {
			mk.Emit(w, int64(i))
		}
	})
	<-done
	// After the writers stop, every surviving event decodes consistently.
	for _, e := range r.Flight().Events() {
		if e.Kind == "batch" && e.Name != "hammer" {
			t.Fatalf("event kind/name mismatch: %+v", e)
		}
	}
}

// TestFlightSlotObserver pins the par seam end to end: installing the
// flight recorder as the slot observer records one slot_begin/slot_end pair
// per worker slot with the region's worker count.
func TestFlightSlotObserver(t *testing.T) {
	r := New("root")
	prev := par.SetSlotObserver(r.Flight())
	defer par.SetSlotObserver(prev)
	const workers = 4
	par.Run(workers, func(w int) { time.Sleep(time.Millisecond) })
	begins := map[int]int{}
	ends := map[int]int{}
	for _, e := range r.Flight().Events() {
		switch e.Kind {
		case "slot_begin":
			begins[e.Slot]++
			if e.Arg != workers {
				t.Errorf("slot_begin arg = %d, want %d", e.Arg, workers)
			}
		case "slot_end":
			ends[e.Slot]++
		}
	}
	for w := 0; w < workers; w++ {
		if begins[w] != 1 || ends[w] != 1 {
			t.Fatalf("slot %d: begins=%d ends=%d, want 1/1", w, begins[w], ends[w])
		}
	}
}

// TestEventKindStrings pins the manifest spelling of every kind.
func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvSpanBegin, EvSpanEnd, EvWorkerBusy, EvSlotBegin, EvSlotEnd,
		EvDirSwitch, EvBatch, EvRewireFlush, EvPQBuild, EvSamplerTick, EvPanic}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || s == "" {
			t.Errorf("kind %d has no spelling", k)
		}
		if seen[s] {
			t.Errorf("kind spelling %q duplicated", s)
		}
		seen[s] = true
	}
	if EventKind(0).String() != "unknown" || EventKind(200).String() != "unknown" {
		t.Error("out-of-range kinds should spell unknown")
	}
}

// TestPanicDumpManifest is the flight recorder's reason to exist: a panic
// inside a span must leave behind a manifest carrying the panic value, the
// stack, and the tail of the event ring — the events leading up to the
// crash. Run's recover hook re-raises, so the panic is observed here too.
func TestPanicDumpManifest(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/panic_run.json"
	cli := &CLI{MetricsPath: path}
	s, err := cli.Start("paniccmd")
	if err != nil {
		t.Fatal(err)
	}
	mk := s.Recorder().Flight().Marker(EvBatch, "doomed")
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Run swallowed the panic")
			}
		}()
		obsRunErr := Run(s, func() error {
			sp := s.Root().Start("doomed.phase")
			defer sp.End()
			for i := 0; i < 5; i++ {
				mk.Emit(0, int64(i))
			}
			panic("kernel exploded")
		})
		_ = obsRunErr
	}()
	m, err := ReadManifest(path)
	if err != nil {
		t.Fatalf("panic manifest unreadable: %v", err)
	}
	if m.Panic != "kernel exploded" {
		t.Fatalf("manifest.Panic = %q", m.Panic)
	}
	if !strings.Contains(m.PanicStack, "flight_test") {
		t.Errorf("panic stack does not mention the panicking test:\n%s", m.PanicStack)
	}
	var batches, panics int
	var sawSpanBegin bool
	for _, e := range m.FlightEvents {
		switch e.Kind {
		case "batch":
			batches++
		case "panic":
			panics++
			if e.Name != "kernel exploded" {
				t.Errorf("panic event name = %q", e.Name)
			}
		case "span_begin":
			if e.Name == "doomed.phase" {
				sawSpanBegin = true
			}
		}
	}
	if batches != 5 || panics != 1 || !sawSpanBegin {
		t.Fatalf("flight tail: batches=%d panics=%d spanBegin=%v, want 5/1/true", batches, panics, sawSpanBegin)
	}
	// The still-open span must appear in the dumped tree: a panic dump
	// snapshots mid-flight.
	if m.Spans == nil || len(m.Spans.Children) == 0 || m.Spans.Children[0].Name != "doomed.phase" {
		t.Fatalf("panic manifest span tree missing the open span: %+v", m.Spans)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close after panic dump: %v", err)
	}
}
