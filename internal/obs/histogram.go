package obs

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of power-of-two buckets per histogram shard.
// Bucket 0 holds values ≤ 0; bucket k (1 ≤ k ≤ 63) holds values whose bit
// length is k, i.e. v ∈ [2^(k−1), 2^k−1]. 64 buckets cover the full int64
// range, so no overflow bucket is needed.
const histBuckets = 64

// histShard is one worker's accumulation cells: a bucket array plus exact
// count and sum. Unlike counterCell there is no padding between the bucket
// words — a shard is written by one worker only (the AddAt discipline), so
// the contention to avoid is *between* shards, and each shard is already
// several cache lines long.
type histShard struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Histogram records a distribution in power-of-two buckets, sharded across
// CounterShards cells like Counter so parallel workers never contend
// (DESIGN.md §8, §11). The bucket of a value is its bit length —
// bits.Len64 — so bucketing costs one instruction and no branches beyond
// the sign check; count and sum are exact int64s, so merged snapshots are
// deterministic (no float accumulation order to worry about).
//
// A nil Histogram is the disabled state: Observe and ObserveAt no-op
// without allocating, pinned by TestDisabledPathAllocatesNothing.
type Histogram struct {
	shards [CounterShards]histShard
}

// Observe records v into shard 0. Nil-safe.
func (h *Histogram) Observe(v int64) { h.ObserveAt(0, v) }

// ObserveAt records v into worker w's shard (w mod CounterShards; negative
// w is treated as 0). Nil-safe and wait-free: three atomic adds.
func (h *Histogram) ObserveAt(w int, v int64) {
	if h == nil {
		return
	}
	if w < 0 {
		w = 0
	}
	s := &h.shards[w&(CounterShards-1)]
	var b int
	if v > 0 {
		b = bits.Len64(uint64(v))
	}
	s.buckets[b].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
}

// HistogramSnapshot is a merged, serializable histogram: exact count and
// sum, and per-bucket counts with trailing empty buckets trimmed. Bucket k
// holds values in [2^(k−1), 2^k−1] (bucket 0: v ≤ 0).
type HistogramSnapshot struct {
	// Count is the number of observations.
	Count int64 `json:"count"`
	// Sum is the exact sum of observed values.
	Sum int64 `json:"sum"`
	// Buckets are per-bucket observation counts, trailing zeros trimmed.
	Buckets []int64 `json:"buckets"`
}

// Snapshot merges the shards in shard order. Safe concurrently with
// writers: the result is every observation that completed before the call
// plus an arbitrary subset of concurrent ones. A nil Histogram returns nil.
func (h *Histogram) Snapshot() *HistogramSnapshot {
	if h == nil {
		return nil
	}
	snap := &HistogramSnapshot{Buckets: make([]int64, histBuckets)}
	for i := range h.shards {
		s := &h.shards[i]
		snap.Count += s.count.Load()
		snap.Sum += s.sum.Load()
		for b := range s.buckets {
			snap.Buckets[b] += s.buckets[b].Load()
		}
	}
	hi := len(snap.Buckets)
	for hi > 0 && snap.Buckets[hi-1] == 0 {
		hi--
	}
	snap.Buckets = snap.Buckets[:hi]
	return snap
}

// BucketUpper returns bucket b's inclusive upper bound: 0 for bucket 0,
// 2^b − 1 otherwise (saturating at MaxInt64).
func BucketUpper(b int) int64 {
	if b <= 0 {
		return 0
	}
	if b >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return int64(1)<<b - 1
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts,
// interpolating linearly inside the containing bucket. A nil or empty
// snapshot reports 0.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s == nil || s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for b, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := float64(0)
			if b > 0 {
				lo = float64(int64(1) << (b - 1))
			}
			hi := float64(BucketUpper(b)) + 1
			frac := (rank - float64(cum)) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return float64(BucketUpper(len(s.Buckets) - 1))
}
