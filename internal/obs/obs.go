// Package obs is the repository's observability layer: phase spans with
// monotonic timings, sharded counters and gauges, runtime profile/trace
// capture, and JSON run manifests — stdlib only, threaded through every
// kernel and cmd binary.
//
// The package is built around one hard rule, the one that lets
// instrumentation live inside hot kernels: **disabled instrumentation is
// free**. A nil *Recorder, nil *Span and nil *Counter are all valid
// receivers whose methods no-op without allocating (pinned by
// TestDisabledPathAllocatesNothing), so kernels carry instrumentation
// unconditionally and pay only a nil check when nothing is recording.
// Instrumentation never feeds back into algorithm state — no rng draws, no
// data-dependent branches — so kernel outputs are bit-identical with
// observation on or off, at any worker count (pinned per kernel by the
// obs on/off determinism regressions in core, tasks and stream).
//
// The vocabulary, and when to use which (DESIGN.md §8):
//
//   - A Span times a phase — something that happens once or a few times per
//     run (CRR Phase 1 vs Phase 2, a BFS sweep, one evaluation task). Spans
//     nest, carry per-worker busy time for parallel regions, and serialize
//     as a tree.
//   - A Counter counts events — something that happens per item (sources
//     completed, rewiring attempts accepted, queue operations). Counters
//     are sharded so parallel workers never contend.
//   - A Gauge records a level — a value observed, not accumulated (peak
//     heap bytes, resolved worker count).
//   - A Histogram records a distribution — per-item values whose spread
//     matters, not just their sum (per-batch BFS times, MS-BFS level
//     widths, CRR delta magnitudes). Power-of-two buckets, sharded like
//     counters.
//   - The Flight recorder remembers the last few thousand individual
//     events (span boundaries, direction switches, rewire flushes) in
//     per-worker rings, the raw material of the trace-event export and the
//     panic dump (DESIGN.md §11).
//
// A Recorder owns one run's root span, counters and gauges, and snapshots
// into a Manifest — the diffable JSON document every cmd binary can emit
// via its -metrics flag (see CLI).
package obs

import (
	"sort"
	"sync"
	"time"
)

// Recorder owns the instrumentation state of one run: the root span, the
// counter and gauge registries, and the start time every span offset is
// relative to. A nil Recorder is the disabled state: every method no-ops
// (or returns a nil handle whose methods no-op) without allocating.
type Recorder struct {
	start  time.Time
	root   *Span
	flight *Flight

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	probes     map[string]*Probe

	// The quality timeline has its own mutex so probe recordings (rare,
	// flush-point cadence) never contend with registry lookups.
	qmu     sync.Mutex
	quality []QualityPoint
}

// New returns an enabled Recorder whose root span, named after the command
// or operation being observed, starts now. An enabled Recorder always
// carries a flight recorder (~0.5 MB of rings); the free-when-disabled rule
// is carried by nil receivers, not by partially-enabled recorders.
func New(name string) *Recorder {
	r := &Recorder{
		start:      time.Now(),
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		probes:     make(map[string]*Probe),
	}
	r.flight = newFlight(r.start)
	r.root = &Span{rec: r, name: name, start: r.start, nameID: r.flight.intern(name)}
	r.flight.emit(-1, EvSpanBegin, r.root.nameID, 0)
	return r
}

// Root returns the run's root span, the parent every top-level phase span
// should be started from. Nil-safe: a nil Recorder returns a nil Span.
func (r *Recorder) Root() *Span {
	if r == nil {
		return nil
	}
	return r.root
}

// Counter returns the named counter, creating it on first use. The same
// name always returns the same counter, so concurrent callers accumulate
// into shared cells. Nil-safe: a nil Recorder returns a nil Counter, whose
// Add methods no-op.
//
// The lookup takes a mutex: fetch the handle once before a hot loop and
// Add through the handle, never per item.
func (r *Recorder) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use. The
// same name always returns the same histogram. Nil-safe: a nil Recorder
// returns a nil Histogram, whose Observe methods no-op.
//
// Like Counter, the lookup takes a mutex: fetch the handle once before a
// hot loop and Observe through the handle, never per item.
func (r *Recorder) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Gauge returns the named gauge, creating it on first use. Nil-safe like
// Counter.
func (r *Recorder) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// CounterValues snapshots every registered counter as a name → merged-value
// map. A nil or counter-less Recorder returns nil.
func (r *Recorder) CounterValues() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) == 0 {
		return nil
	}
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// GaugeValues snapshots every registered gauge as a name → value map. A nil
// or gauge-less Recorder returns nil.
func (r *Recorder) GaugeValues() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.gauges) == 0 {
		return nil
	}
	out := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// HistogramValues snapshots every registered histogram as a name →
// snapshot map. A nil or histogram-less Recorder returns nil.
func (r *Recorder) HistogramValues() map[string]*HistogramSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.histograms) == 0 {
		return nil
	}
	out := make(map[string]*HistogramSnapshot, len(r.histograms))
	for name, h := range r.histograms {
		out[name] = h.Snapshot()
	}
	return out
}

// SpanTree snapshots the span tree as serializable nodes with start offsets
// relative to the Recorder's start. Spans still running are reported with
// their duration so far. A nil Recorder returns nil.
func (r *Recorder) SpanTree() *SpanNode {
	if r == nil {
		return nil
	}
	return r.root.node(r.start, time.Now())
}

// counterNames returns the registered counter names in sorted order; used
// by tests and debug output that want stable iteration.
func (r *Recorder) counterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
