package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// The live debug plane: an opt-in stdlib HTTP server (bound via the
// -debug-addr flag, see CLI) that exposes the run's Recorder while it is
// still running — the counterpart of the post-mortem manifest. Endpoints:
//
//	/metrics        live counters, gauges and runtime/metrics in Prometheus
//	                text exposition format
//	/progress       the live span tree as JSON, with elapsed times, unit
//	                progress and ETAs
//	/healthz        liveness probe, always "ok"
//	/debug/pprof/   the standard net/http/pprof profile handlers
//
// The server holds no state of its own: every scrape snapshots the Recorder
// (counters merge shards, the span tree copies under the span mutexes), so
// scraping is safe at any moment of a parallel kernel and never perturbs
// results — pinned by the concurrent-scrape race test.

// NewDebugHandler returns the debug plane's HTTP handler over rec. A nil
// Recorder is served gracefully (empty metric set, null span tree), so the
// handler can be constructed before recording starts.
func NewDebugHandler(rec *Recorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, rec)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(progressSnapshot(rec))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ProgressSnapshot is the /progress response: one consistent view of the
// run's live span tree.
type ProgressSnapshot struct {
	// Command is the root span's name, identifying the observed binary.
	Command string `json:"command"`
	// ElapsedNs is the wall time since the Recorder started.
	ElapsedNs int64 `json:"elapsed_ns"`
	// Spans is the live span tree; open spans report their duration so far,
	// and spans with unit progress carry done/total/eta_ns.
	Spans *SpanNode `json:"spans"`
}

// progressSnapshot builds the /progress document; a nil Recorder yields an
// empty snapshot.
func progressSnapshot(rec *Recorder) *ProgressSnapshot {
	if rec == nil {
		return &ProgressSnapshot{}
	}
	tree := rec.SpanTree()
	return &ProgressSnapshot{
		Command:   tree.Name,
		ElapsedNs: time.Since(rec.start).Nanoseconds(),
		Spans:     tree,
	}
}

// writeMetrics renders the Prometheus text exposition: every Recorder
// counter as an edgeshed_*_total counter, every gauge as an edgeshed_*
// gauge, and the curated runtime/metrics set as go_* gauges. Families are
// emitted in sorted name order so consecutive scrapes diff cleanly.
func writeMetrics(w http.ResponseWriter, rec *Recorder) {
	if rec != nil {
		fmt.Fprintf(w, "# TYPE edgeshed_run_info gauge\nedgeshed_run_info{command=%q} 1\n", rec.root.name)
		counters := rec.CounterValues()
		for _, name := range sortedKeys(counters) {
			m := "edgeshed_" + sanitizeMetricName(name) + "_total"
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m, m, counters[name])
		}
		gauges := rec.GaugeValues()
		for _, name := range sortedKeys(gauges) {
			m := "edgeshed_" + sanitizeMetricName(name)
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", m, m, gauges[name])
		}
	}
	rm := captureRuntimeMetrics()
	for _, name := range sortedFloatKeys(rm) {
		m := "go_" + sanitizeMetricName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %v\n", m, m, rm[name])
	}
}

// sanitizeMetricName maps an internal dotted or runtime/metrics-style name
// onto the Prometheus charset [a-zA-Z0-9_]: every other rune becomes '_',
// runs collapse, and edges are trimmed ("crr.rewire.attempts" →
// "crr_rewire_attempts", "/memory/classes/heap/objects:bytes" →
// "memory_classes_heap_objects_bytes").
func sanitizeMetricName(name string) string {
	var b strings.Builder
	lastUnderscore := true // trims a leading separator
	for _, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			r = '_'
		}
		if r == '_' {
			if lastUnderscore {
				continue
			}
			lastUnderscore = true
		} else {
			lastUnderscore = false
		}
		b.WriteRune(r)
	}
	return strings.TrimSuffix(b.String(), "_")
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedFloatKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// debugServer is one live debug plane: the listener and the goroutine
// serving it, owned by a Session.
type debugServer struct {
	l   net.Listener
	srv *http.Server
}

// startDebugServer binds addr and serves the debug plane for rec in a
// background goroutine until stopped.
func startDebugServer(addr string, rec *Recorder) (*debugServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: binding -debug-addr %s: %w", addr, err)
	}
	d := &debugServer{l: l, srv: &http.Server{Handler: NewDebugHandler(rec)}}
	go d.srv.Serve(l)
	return d, nil
}

// Addr returns the server's bound address (useful with ":0").
func (d *debugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.l.Addr().String()
}

// stop closes the listener and the server; in-flight scrapes are cut off —
// the plane exists for the duration of the run only.
func (d *debugServer) stop() {
	if d == nil {
		return
	}
	d.srv.Close()
}
