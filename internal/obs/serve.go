package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"
)

// The live debug plane: an opt-in stdlib HTTP server (bound via the
// -debug-addr flag, see CLI) that exposes the run's Recorder while it is
// still running — the counterpart of the post-mortem manifest. Endpoints:
//
//	/metrics        live counters, gauges, histograms and runtime/metrics
//	                in Prometheus text exposition format
//	/progress       the live span tree as JSON, with elapsed times, unit
//	                progress and ETAs
//	/events         the flight recorder's tail as JSON (?n= limits to the
//	                last n events)
//	/healthz        liveness probe, always "ok"
//	/debug/pprof/   the standard net/http/pprof profile handlers
//
// The server holds no state of its own: every scrape snapshots the Recorder
// (counters merge shards, the span tree copies under the span mutexes), so
// scraping is safe at any moment of a parallel kernel and never perturbs
// results — pinned by the concurrent-scrape race test.

// NewDebugHandler returns the debug plane's HTTP handler over rec. A nil
// Recorder is served gracefully (empty metric set, null span tree), so the
// handler can be constructed before recording starts.
func NewDebugHandler(rec *Recorder) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, rec)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(progressSnapshot(rec))
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		events := rec.Flight().Events()
		if nStr := r.URL.Query().Get("n"); nStr != "" {
			if n, err := strconv.Atoi(nStr); err == nil && n >= 0 && n < len(events) {
				events = events[len(events)-n:]
			}
		}
		enc := json.NewEncoder(w)
		enc.Encode(struct {
			Events []Event `json:"events"`
		}{Events: events})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ProgressSnapshot is the /progress response: one consistent view of the
// run's live span tree.
type ProgressSnapshot struct {
	// Command is the root span's name, identifying the observed binary.
	Command string `json:"command"`
	// ElapsedNs is the wall time since the Recorder started.
	ElapsedNs int64 `json:"elapsed_ns"`
	// Spans is the live span tree; open spans report their duration so far,
	// and spans with unit progress carry done/total/eta_ns.
	Spans *SpanNode `json:"spans"`
}

// progressSnapshot builds the /progress document; a nil Recorder yields an
// empty snapshot.
func progressSnapshot(rec *Recorder) *ProgressSnapshot {
	if rec == nil {
		return &ProgressSnapshot{}
	}
	tree := rec.SpanTree()
	return &ProgressSnapshot{
		Command:   tree.Name,
		ElapsedNs: time.Since(rec.start).Nanoseconds(),
		Spans:     tree,
	}
}

// metricHelp maps internal metric names (counter/gauge/histogram registry
// keys) to their # HELP text. Metrics not listed fall back to a generic
// line; keeping the registry here — not at every call site — means one
// place to scan for the exposition vocabulary.
var metricHelp = map[string]string{
	"benchjson.lines":            "Benchmark output lines parsed.",
	"betweenness.sources_done":   "Brandes/MS-BFS betweenness source vertices completed.",
	"bm2.avg_dis":                "BM2 achieved average degree discrepancy per node.",
	"bm2.bound.theorem2":         "Theorem 2 bound on BM2 average discrepancy per node.",
	"bm2.delta":                  "BM2 final objective Δ (total degree discrepancy).",
	"bm2.gain_micros":            "Per-pop BM2 Phase 2 gain, in micro-units.",
	"bm2.headroom.theorem2":      "Theorem 2 bound minus achieved BM2 discrepancy (higher is better).",
	"bm2.kept_edges":             "Edges kept by the BM2 reduction.",
	"bm2.kept_fraction":          "Fraction of input edges kept by the BM2 reduction.",
	"bm2.matching_weight":        "Cumulative BM2 Phase 2 matching weight popped so far.",
	"bfs.bottomup_levels":        "BFS levels expanded bottom-up.",
	"bfs.direction_switches":     "BFS direction-optimizing switches.",
	"bfs.sources_done":           "BFS source vertices completed.",
	"bfs.topdown_levels":         "BFS levels expanded top-down.",
	"brandes.edge_folds":         "Edge-dependency fold operations in batched Brandes.",
	"claims.checked":             "Paper claims checked.",
	"claims.failed":              "Paper claims that failed verification.",
	"closeness.sources_done":     "Closeness centrality source vertices completed.",
	"crr.accept_rate":            "CRR Phase 2 swap acceptance rate over the last flush window.",
	"crr.avg_dis":                "CRR achieved average degree discrepancy per node.",
	"crr.bound.theorem1":         "Theorem 1 bound on CRR average discrepancy per node.",
	"crr.deg_err_linf":           "Maximum per-node degree discrepancy (L∞) at the last flush.",
	"crr.delta":                  "CRR Phase 2 objective Δ (total degree discrepancy), live trajectory.",
	"crr.delta_abs_micros":       "Absolute CRR deltaChange per rewiring attempt, in micro-units.",
	"crr.headroom.theorem1":      "Theorem 1 bound minus achieved CRR discrepancy (higher is better).",
	"crr.kept_edges":             "Edges kept by the CRR reduction.",
	"crr.kept_fraction":          "Fraction of input edges kept by the CRR reduction.",
	"crr.rewire.accepted":        "CRR Phase 2 rewiring attempts accepted.",
	"crr.rewire.attempts":        "CRR Phase 2 rewiring attempts examined.",
	"crr.sweep.ratio_ns":         "Wall time per CRR sweep ratio, in nanoseconds.",
	"flatpq.pops":                "Flat priority-queue pop operations.",
	"flatpq.pushes":              "Flat priority-queue push operations.",
	"flatpq.removes":             "Flat priority-queue remove operations.",
	"flatpq.updates":             "Flat priority-queue update operations.",
	"graph.edges":                "Input graph edge count.",
	"heap_alloc_bytes":           "Live heap bytes at sample time.",
	"ingest.bytes":               "Input bytes ingested.",
	"ingest.edges":               "Edges ingested.",
	"ingest.lines":               "Input lines ingested.",
	"msbfs.batch_ns":             "Wall time per MS-BFS source batch, in nanoseconds.",
	"msbfs.batch_occupancy":      "Source bits carried per MS-BFS batch.",
	"msbfs.batches_done":         "MS-BFS source batches traversed.",
	"msbfs.direction_switches":   "MS-BFS direction switches.",
	"msbfs.level_width":          "Frontier words scanned per MS-BFS level.",
	"msbfs.words_scanned":        "MS-BFS frontier words scanned.",
	"pack.bytes.out":             "Packed CSR bytes written.",
	"pack.spill.chunks":          "External-sort spill chunks written.",
	"pack.spill.keys":            "External-sort keys spilled.",
	"pagerank.iterations":        "PageRank power iterations.",
	"run_info":                   "Constant 1, labeled with the observed command.",
	"stream.deletes":             "Streaming edge deletions applied.",
	"stream.epoch.delta":         "Stream shedder objective Δ at the last insert epoch.",
	"stream.epoch.kept_fraction": "Fraction of seen edges kept at the last insert epoch.",
	"stream.epoch.swap_rate":     "Reservoir swaps accepted per insert over the last epoch.",
	"stream.inserts":             "Streaming edge insertions applied.",
	"stream.novel_kept":          "Streaming novel edges kept.",
	"stream.swaps_accepted":      "Streaming reservoir swaps accepted.",
	"targeted.repair.rounds":     "Targeted-repair rounds executed.",
}

// helpFor returns the HELP text for an internal metric name, with a
// generic fallback so every family always carries a HELP line.
func helpFor(name string) string {
	if h, ok := metricHelp[name]; ok {
		return h
	}
	return "edgeshed metric " + name + "."
}

// uniqueMetricNames maps internal names to unique exposition family names:
// prefix + sanitizeMetricName(name) + suffix, with "_2", "_3", … appended
// when sanitization collapses distinct internal names (e.g. "a.b" vs
// "a_b") onto one family — Prometheus treats duplicate families as
// corrupt, so collisions must disambiguate rather than silently merge.
// Names are processed in sorted order, so the assignment is deterministic.
func uniqueMetricNames(names []string, prefix, suffix string) map[string]string {
	sorted := make([]string, len(names))
	copy(sorted, names)
	sort.Strings(sorted)
	taken := make(map[string]bool, len(sorted))
	out := make(map[string]string, len(sorted))
	for _, name := range sorted {
		m := prefix + sanitizeMetricName(name) + suffix
		for i := 2; taken[m]; i++ {
			m = fmt.Sprintf("%s%s_%d%s", prefix, sanitizeMetricName(name), i, suffix)
		}
		taken[m] = true
		out[name] = m
	}
	return out
}

// writeMetrics renders the Prometheus text exposition: every Recorder
// counter as an edgeshed_*_total counter, every gauge as an edgeshed_*
// gauge, every histogram as an edgeshed_* histogram family (cumulative
// power-of-two buckets), and the curated runtime/metrics set as go_*
// gauges — each family with # HELP and # TYPE lines. Families are emitted
// in sorted name order so consecutive scrapes diff cleanly.
func writeMetrics(w http.ResponseWriter, rec *Recorder) {
	if rec != nil {
		fmt.Fprintf(w, "# HELP edgeshed_run_info %s\n", helpFor("run_info"))
		fmt.Fprintf(w, "# TYPE edgeshed_run_info gauge\nedgeshed_run_info{command=%q} 1\n", rec.root.name)
		counters := rec.CounterValues()
		counterFams := uniqueMetricNames(sortedKeys(counters), "edgeshed_", "_total")
		for _, name := range sortedKeys(counters) {
			m := counterFams[name]
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", m, helpFor(name), m, m, counters[name])
		}
		gauges := rec.GaugeValues()
		gaugeFams := uniqueMetricNames(sortedKeys(gauges), "edgeshed_", "")
		for _, name := range sortedKeys(gauges) {
			m := gaugeFams[name]
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", m, helpFor(name), m, m, gauges[name])
		}
		quals := rec.QualityValues()
		qualFams := uniqueMetricNames(sortedFloatKeys(quals), "edgeshed_quality_", "")
		for _, name := range sortedFloatKeys(quals) {
			m := qualFams[name]
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", m, helpFor(name), m, m, quals[name])
		}
		hists := rec.HistogramValues()
		histNames := make([]string, 0, len(hists))
		for name := range hists {
			histNames = append(histNames, name)
		}
		sort.Strings(histNames)
		histFams := uniqueMetricNames(histNames, "edgeshed_", "")
		for _, name := range histNames {
			writeHistogram(w, histFams[name], name, hists[name])
		}
	}
	rm := captureRuntimeMetrics()
	rmFams := uniqueMetricNames(sortedFloatKeys(rm), "go_", "")
	for _, name := range sortedFloatKeys(rm) {
		m := rmFams[name]
		fmt.Fprintf(w, "# HELP %s runtime/metrics %s\n# TYPE %s gauge\n%s %v\n", m, name, m, m, rm[name])
	}
}

// writeHistogram renders one histogram family in Prometheus exposition:
// cumulative power-of-two buckets (le = each bucket's inclusive upper
// bound), the +Inf bucket, exact sum and count.
func writeHistogram(w http.ResponseWriter, fam, name string, snap *HistogramSnapshot) {
	if snap == nil {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", fam, helpFor(name), fam)
	var cum int64
	for b, n := range snap.Buckets {
		cum += n
		fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", fam, BucketUpper(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", fam, snap.Count)
	fmt.Fprintf(w, "%s_sum %d\n", fam, snap.Sum)
	fmt.Fprintf(w, "%s_count %d\n", fam, snap.Count)
}

// sanitizeMetricName maps an internal dotted or runtime/metrics-style name
// onto the Prometheus charset [a-zA-Z0-9_]: every other rune becomes '_',
// runs collapse, and edges are trimmed ("crr.rewire.attempts" →
// "crr_rewire_attempts", "/memory/classes/heap/objects:bytes" →
// "memory_classes_heap_objects_bytes").
func sanitizeMetricName(name string) string {
	var b strings.Builder
	lastUnderscore := true // trims a leading separator
	for _, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if !ok {
			r = '_'
		}
		if r == '_' {
			if lastUnderscore {
				continue
			}
			lastUnderscore = true
		} else {
			lastUnderscore = false
		}
		b.WriteRune(r)
	}
	return strings.TrimSuffix(b.String(), "_")
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedFloatKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// debugServer is one live debug plane: the listener and the goroutine
// serving it, owned by a Session.
type debugServer struct {
	l   net.Listener
	srv *http.Server
}

// startDebugServer binds addr and serves the debug plane for rec in a
// background goroutine until stopped.
func startDebugServer(addr string, rec *Recorder) (*debugServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: binding -debug-addr %s: %w", addr, err)
	}
	d := &debugServer{l: l, srv: &http.Server{Handler: NewDebugHandler(rec)}}
	go d.srv.Serve(l)
	return d, nil
}

// Addr returns the server's bound address (useful with ":0").
func (d *debugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.l.Addr().String()
}

// debugShutdownTimeout bounds how long stop waits for in-flight scrapes; a
// variable so the regression test can tighten it.
var debugShutdownTimeout = 2 * time.Second

// stop shuts the server down gracefully: new connections stop being
// accepted immediately, but an in-flight scrape — say a final /metrics pull
// racing Session.Close — gets up to debugShutdownTimeout to finish its
// response body instead of being cut mid-line. Only if the deadline passes
// is the server torn down hard.
func (d *debugServer) stop() {
	if d == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), debugShutdownTimeout)
	defer cancel()
	if err := d.srv.Shutdown(ctx); err != nil {
		d.srv.Close()
	}
}
