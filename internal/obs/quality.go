package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// The quality plane is the fourth obs tier (DESIGN.md §12): where spans,
// counters and the flight recorder make a run legible in *time*, quality
// probes make it legible in *quality* — the paper's actual claims. A Probe
// is a named, direction-tagged gauge of an algorithm-quality signal (the
// CRR Phase 2 objective Δ, theorem-bound headroom, BM2 matching weight,
// per-epoch stream swap rates, tasks.Suite scores) whose recordings land on
// three surfaces at once:
//
//   - the latest value as a float gauge family on /metrics
//     (edgeshed_quality_*), so a live scrape sees quality converging;
//   - a timestamped QualityPoint in the manifest's quality_timeline array,
//     the raw material of cmd/obsreport's cross-run trend registry;
//   - an EvQuality flight event, so quality inflections line up with the
//     per-worker tracks of the Perfetto export.
//
// The discipline is the same as every other tier: kernels accumulate in
// plain per-worker locals on the hot path and fold into a Probe only at
// the existing coarse flush points (CRR's 2^20-attempt rewire flush, BM2's
// pop-loop chunks, the stream shedder's insert epochs) and at span ends —
// so Record may take a mutex, the hot loops never do. A nil Probe (from a
// nil Recorder or Span) no-ops without allocating, pinned by
// TestDisabledPathAllocatesNothing, and recording never reads back into
// algorithm state, so kernel outputs stay bit-identical with quality
// probes on or off (pinned by the obs on/off determinism regressions).

// QualityDir tags which direction of a quality metric is good, so trend
// consumers (cmd/obsreport's gate) know what counts as a regression.
type QualityDir uint8

const (
	// DirInfo marks a tracked-but-ungated metric (edge counts, bounds,
	// rates that shift legitimately with inputs). The zero value.
	DirInfo QualityDir = iota
	// DirLower marks a metric where lower is better (Δ, degree errors).
	DirLower
	// DirHigher marks a metric where higher is better (bound headroom,
	// task utilities, matching weight).
	DirHigher
)

// String returns the direction's manifest spelling ("info", "lower",
// "higher"), the vocabulary of QualityPoint.Better.
func (d QualityDir) String() string {
	switch d {
	case DirLower:
		return "lower"
	case DirHigher:
		return "higher"
	}
	return "info"
}

// QualityPoint is one recorded quality observation, as serialized in the
// manifest's quality_timeline array.
type QualityPoint struct {
	// OffsetNs is the recording's offset from the run's start.
	OffsetNs int64 `json:"offset_ns"`
	// Metric is the probe name (e.g. "crr.headroom.theorem1").
	Metric string `json:"metric"`
	// Ratio is the edge-preservation ratio the observation belongs to; 0
	// (omitted) for metrics without a ratio notion (suite scores).
	Ratio float64 `json:"ratio,omitempty"`
	// Value is the observed quality value.
	Value float64 `json:"value"`
	// Better is the good direction: "lower", "higher" or "info" (see
	// QualityDir); consumers gate only lower/higher metrics.
	Better string `json:"better,omitempty"`
}

// Probe is one named quality gauge: the latest value as float bits for
// /metrics, plus an append into the Recorder's quality timeline and an
// EvQuality flight event per recording. Fetch the handle once (the
// registry lookup takes the Recorder mutex) and Record at flush points
// only. A nil Probe is the disabled state: Record no-ops without
// allocating.
type Probe struct {
	rec  *Recorder
	name string
	dir  QualityDir
	mk   *Marker

	latest   atomic.Uint64 // math.Float64bits of the last recorded value
	recorded atomic.Bool
}

// Quality returns the named probe, creating it on first use with the given
// direction (the first registration's direction wins). Nil-safe: a nil
// Recorder returns a nil Probe.
func (r *Recorder) Quality(name string, dir QualityDir) *Probe {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.probes[name]
	if !ok {
		p = &Probe{rec: r, name: name, dir: dir, mk: r.flight.Marker(EvQuality, name)}
		r.probes[name] = p
	}
	return p
}

// Quality returns the named probe of the span's Recorder. Nil-safe: a nil
// Span returns a nil Probe.
func (s *Span) Quality(name string, dir QualityDir) *Probe {
	if s == nil {
		return nil
	}
	return s.rec.Quality(name, dir)
}

// Record records one observation of the metric at the given preservation
// ratio (0 for ratio-less metrics), from off the worker pool. Nil-safe.
func (p *Probe) Record(ratio, v float64) {
	p.RecordAt(-1, ratio, v)
}

// RecordAt records one observation from worker slot (so the flight event
// lands on the worker's own ring). Takes the timeline mutex — call at
// coarse flush points and span ends, never per item. Nil-safe.
func (p *Probe) RecordAt(slot int, ratio, v float64) {
	if p == nil {
		return
	}
	p.latest.Store(math.Float64bits(v))
	p.recorded.Store(true)
	// The flight payload is the value in micro-units, the same int64
	// scaling as the crr.delta_abs_micros histogram.
	p.mk.Emit(slot, int64(math.Round(v*1e6)))
	pt := QualityPoint{
		OffsetNs: time.Since(p.rec.start).Nanoseconds(),
		Metric:   p.name,
		Ratio:    ratio,
		Value:    v,
		Better:   p.dir.String(),
	}
	p.rec.qmu.Lock()
	p.rec.quality = append(p.rec.quality, pt)
	p.rec.qmu.Unlock()
}

// Value returns the probe's latest recorded value and whether anything has
// been recorded yet. A nil Probe reads (0, false).
func (p *Probe) Value() (float64, bool) {
	if p == nil {
		return 0, false
	}
	if !p.recorded.Load() {
		return 0, false
	}
	return math.Float64frombits(p.latest.Load()), true
}

// QualityValues snapshots the latest value of every probe that has
// recorded at least once, as a name → value map — the /metrics gauge view.
// A nil or probe-less Recorder returns nil.
func (r *Recorder) QualityValues() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out map[string]float64
	for name, p := range r.probes {
		if v, ok := p.Value(); ok {
			if out == nil {
				out = make(map[string]float64, len(r.probes))
			}
			out[name] = v
		}
	}
	return out
}

// QualityPoints snapshots the quality timeline in recording order (stable-
// sorted by offset, so concurrent ratio sweeps serialize deterministically
// enough to diff). A nil Recorder or an empty timeline returns nil.
func (r *Recorder) QualityPoints() []QualityPoint {
	if r == nil {
		return nil
	}
	r.qmu.Lock()
	out := append([]QualityPoint(nil), r.quality...)
	r.qmu.Unlock()
	if len(out) == 0 {
		return nil
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].OffsetNs < out[j].OffsetNs })
	return out
}
