package obs

// Unit tests for the live telemetry plane's unexported pieces: metric name
// sanitization, the runtime sampler, env comparability, heartbeat
// rendering, JSON logging, and the full -debug-addr/-sample-interval
// session lifecycle. The HTTP handler surface and the concurrent-scrape
// race test live in serve_test.go (external package).

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSanitizeMetricName(t *testing.T) {
	for _, tc := range [][2]string{
		{"crr.rewire.attempts", "crr_rewire_attempts"},
		{"/memory/classes/heap/objects:bytes", "memory_classes_heap_objects_bytes"},
		{"already_fine_123", "already_fine_123"},
		{"..weird..name..", "weird_name"},
		{"", ""},
	} {
		if got := sanitizeMetricName(tc[0]); got != tc[1] {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", tc[0], got, tc[1])
		}
	}
}

// TestSamplerCollectsTimeline pins the sampler contract: an immediate
// first sample, monotone non-decreasing offsets, a final sample on Stop,
// and plausible runtime observations.
func TestSamplerCollectsTimeline(t *testing.T) {
	origin := time.Now()
	s := startSampler(2*time.Millisecond, origin, nil)
	time.Sleep(10 * time.Millisecond)
	timeline := s.Stop()
	if len(timeline) < 3 {
		t.Fatalf("timeline has %d samples after 10ms at 2ms interval, want >= 3", len(timeline))
	}
	for i, p := range timeline {
		if p.HeapAllocBytes == 0 || p.Goroutines <= 0 {
			t.Errorf("sample %d implausible: %+v", i, p)
		}
		if i > 0 && p.OffsetNs < timeline[i-1].OffsetNs {
			t.Errorf("offsets not monotone at %d: %d then %d", i, timeline[i-1].OffsetNs, p.OffsetNs)
		}
	}
	var nilSampler *sampler
	if nilSampler.Stop() != nil || nilSampler.Samples() != nil {
		t.Error("nil sampler returned samples")
	}
}

func TestEnvComparable(t *testing.T) {
	a := &Env{GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", CPUs: 8}
	if w, err := a.Comparable(a); w != "" || err != nil {
		t.Errorf("identical envs = (%q, %v)", w, err)
	}
	arch := *a
	arch.GOARCH = "arm64"
	if _, err := a.Comparable(&arch); err == nil {
		t.Error("platform mismatch accepted")
	}
	cpus := *a
	cpus.CPUs = 4
	if _, err := a.Comparable(&cpus); err == nil {
		t.Error("cpu count mismatch accepted")
	}
	tc := *a
	tc.GoVersion = "go1.25.0"
	if w, err := a.Comparable(&tc); err != nil || !strings.Contains(w, "toolchain") {
		t.Errorf("toolchain drift = (%q, %v), want warning", w, err)
	}
	if w, err := a.Comparable(nil); err != nil || !strings.Contains(w, "unverified") {
		t.Errorf("nil side = (%q, %v), want unverified warning", w, err)
	}
	var nilEnv *Env
	if w, err := nilEnv.Comparable(a); err != nil || w == "" {
		t.Errorf("nil receiver = (%q, %v), want unverified warning", w, err)
	}
}

func TestCaptureEnvDescribesProcess(t *testing.T) {
	e := CaptureEnv()
	if e.GoVersion == "" || e.GOOS == "" || e.GOARCH == "" || e.CPUs <= 0 {
		t.Fatalf("CaptureEnv() = %+v", e)
	}
}

func TestHeartbeatLine(t *testing.T) {
	if got := heartbeatLine(nil); got != "" {
		t.Errorf("nil tree = %q", got)
	}
	// Open span with progress: the summary names it with counts and ETA.
	tree := &SpanNode{Name: "shed", DurNs: 1e9, Children: []*SpanNode{
		{Name: "crr.sweep", DurNs: 8e8, Done: 3, Total: 9, EtaNs: 16e8},
	}}
	got := heartbeatLine(tree)
	if !strings.Contains(got, "crr.sweep 3/9 (33%)") || !strings.Contains(got, "eta 2s") {
		t.Errorf("progress heartbeat = %q", got)
	}
	// No progress anywhere: fall back to the deepest open span.
	tree = &SpanNode{Name: "shed", DurNs: 3e9, Children: []*SpanNode{
		{Name: "load", DurNs: 1e9, Ended: true},
		{Name: "betweenness", DurNs: 2e9},
	}}
	got = heartbeatLine(tree)
	if !strings.Contains(got, "in betweenness for 2s") {
		t.Errorf("fallback heartbeat = %q", got)
	}
	// Everything ended: silence.
	tree = &SpanNode{Name: "shed", DurNs: 1e9, Ended: true, Children: []*SpanNode{
		{Name: "load", DurNs: 1e9, Ended: true},
	}}
	if got = heartbeatLine(tree); got != "" {
		t.Errorf("all-ended tree = %q, want empty", got)
	}
}

// captureStderr runs fn with os.Stderr redirected to a pipe and returns
// what it wrote.
func captureStderr(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = w
	defer func() { os.Stderr = old }()
	fn()
	w.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestLogJSON pins the -log-json line shape: one JSON object per line with
// ts, level and msg — and that messages with quotes stay valid JSON.
func TestLogJSON(t *testing.T) {
	cli := &CLI{Verbose: true, LogJSON: true}
	s := &Session{cli: cli}
	out := captureStderr(t, func() {
		s.Logf("loaded %q with %d edges", "graph.txt", 42)
		s.Verbosef("fine-grained detail")
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2:\n%s", len(lines), out)
	}
	var rec struct {
		TS    string `json:"ts"`
		Level string `json:"level"`
		Msg   string `json:"msg"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, lines[0])
	}
	if rec.Level != "info" || rec.Msg != `loaded "graph.txt" with 42 edges` {
		t.Errorf("info line = %+v", rec)
	}
	if _, err := time.Parse(time.RFC3339Nano, rec.TS); err != nil {
		t.Errorf("ts %q is not RFC3339Nano: %v", rec.TS, err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Level != "debug" || rec.Msg != "fine-grained detail" {
		t.Errorf("debug line = %+v", rec)
	}
}

// TestLogPlainTextByDefault pins that without -log-json the lines stay
// human plain text.
func TestLogPlainTextByDefault(t *testing.T) {
	s := &Session{cli: &CLI{}}
	out := captureStderr(t, func() { s.Logf("plain %d", 7) })
	if strings.TrimSpace(out) != "plain 7" {
		t.Errorf("plain log = %q", out)
	}
}

// TestSessionDebugPlaneLifecycle is the in-process end-to-end: a session
// started with -debug-addr :0 and -sample-interval serves live scrapes
// that include kernel counters, then Close tears the plane down and
// embeds the sampled timeline in the manifest.
func TestSessionDebugPlaneLifecycle(t *testing.T) {
	dir := t.TempDir()
	manifestPath := filepath.Join(dir, "run.json")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cli := BindFlags(fs)
	if err := fs.Parse([]string{
		"-debug-addr", "127.0.0.1:0",
		"-sample-interval", "2ms",
		"-metrics", manifestPath,
	}); err != nil {
		t.Fatal(err)
	}
	sess, err := cli.Start("livetest")
	if err != nil {
		t.Fatal(err)
	}
	addr := sess.DebugServerAddr()
	if addr == "" || strings.HasSuffix(addr, ":0") {
		t.Fatalf("DebugServerAddr = %q, want a bound port", addr)
	}
	sess.Recorder().Counter("crr.rewire.attempts").Add(77)

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "edgeshed_crr_rewire_attempts_total 77") {
		t.Fatalf("live /metrics missing counter:\n%s", body)
	}

	time.Sleep(5 * time.Millisecond) // let the sampler tick
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("debug plane still serving after Close")
	}
	m, err := ReadManifest(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Timeline) < 2 {
		t.Fatalf("manifest timeline has %d samples, want >= 2", len(m.Timeline))
	}
	if m.Counters["crr.rewire.attempts"] != 77 {
		t.Errorf("manifest counters = %v", m.Counters)
	}
	if m.Options["debug-addr"] != "127.0.0.1:0" {
		t.Errorf("manifest options missing debug-addr: %v", m.Options)
	}
}

// TestDebugAddrWithoutMetricsEnablesRecorder pins the flag semantics:
// -debug-addr alone creates a Recorder (live scrapes need data) but writes
// no manifest.
func TestDebugAddrWithoutMetricsEnablesRecorder(t *testing.T) {
	cli := &CLI{DebugAddr: "127.0.0.1:0"}
	sess, err := cli.Start("livetest")
	if err != nil {
		t.Fatal(err)
	}
	if sess.Recorder() == nil {
		t.Error("-debug-addr did not enable the recorder")
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBusyDebugAddrFailsStart pins that an unbindable -debug-addr is a
// startup error, not a silent no-plane run.
func TestBusyDebugAddrFailsStart(t *testing.T) {
	first := &CLI{DebugAddr: "127.0.0.1:0"}
	sess, err := first.Start("livetest")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	second := &CLI{DebugAddr: sess.DebugServerAddr()}
	if s2, err := second.Start("livetest"); err == nil {
		s2.Close()
		t.Fatal("second bind of one address succeeded")
	}
}

// TestHeartbeatEmitsProgressLines drives the heartbeat at test speed and
// checks it reports a progressing span.
func TestHeartbeatEmitsProgressLines(t *testing.T) {
	cli := &CLI{DebugAddr: "127.0.0.1:0", Verbose: true}
	out := captureStderr(t, func() {
		sess, err := cli.Start("livetest")
		if err != nil {
			t.Fatal(err)
		}
		// Restart the heartbeat at test cadence.
		sess.stopHeartbeat()
		sp := sess.Root().Start("crr.sweep")
		sp.SetTotal(10)
		sp.Done(4)
		sess.startHeartbeat(2 * time.Millisecond)
		time.Sleep(10 * time.Millisecond)
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
	})
	if !strings.Contains(out, "heartbeat: crr.sweep 4/10 (40%)") {
		t.Errorf("no heartbeat line in stderr:\n%s", out)
	}
}
