package obs_test

// External test package: the concurrent-scrape test drives a real kernel
// (core.CRR) under the debug plane, and core already imports obs.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"edgeshed/internal/core"
	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
	"edgeshed/internal/obs"
	"edgeshed/internal/par"
	"edgeshed/internal/stream"
)

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

// TestDebugHandlerEndpoints pins the debug plane's surface: /healthz
// liveness, /metrics in Prometheus text exposition with sanitized names,
// /progress as a span-tree JSON document, and the pprof index.
func TestDebugHandlerEndpoints(t *testing.T) {
	rec := obs.New("shed")
	rec.Counter("crr.rewire.attempts").Add(123)
	rec.Gauge("graph.edges").Set(500)
	sp := rec.Root().Start("crr.sweep")
	sp.SetTotal(10)
	sp.Done(4)

	srv := httptest.NewServer(obs.NewDebugHandler(rec))
	defer srv.Close()

	body, resp := get(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}

	body, resp = get(t, srv.URL+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type = %q, want Prometheus text exposition", ct)
	}
	for _, want := range []string{
		"# TYPE edgeshed_crr_rewire_attempts_total counter",
		"edgeshed_crr_rewire_attempts_total 123",
		"# TYPE edgeshed_graph_edges gauge",
		"edgeshed_graph_edges 500",
		`edgeshed_run_info{command="shed"} 1`,
		"go_sched_gomaxprocs_threads",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	body, _ = get(t, srv.URL+"/progress")
	var snap obs.ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/progress is not JSON: %v\n%s", err, body)
	}
	if snap.Command != "shed" || snap.ElapsedNs <= 0 {
		t.Errorf("/progress header = %+v", snap)
	}
	if snap.Spans == nil || len(snap.Spans.Children) != 1 {
		t.Fatalf("/progress span tree = %+v", snap.Spans)
	}
	sweep := snap.Spans.Children[0]
	if sweep.Name != "crr.sweep" || sweep.Done != 4 || sweep.Total != 10 || sweep.EtaNs <= 0 {
		t.Errorf("open sweep span = %+v, want 4/10 with positive eta", sweep)
	}

	body, resp = get(t, srv.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", resp.StatusCode)
	}
}

// TestMetricsHelpAndHistograms pins the exposition satellites: every family
// carries a registry HELP line (curated text for known names, a generic
// fallback otherwise), histograms render as cumulative bucket families, and
// sanitization collisions ("a.b" vs "a_b") surface as distinct families
// instead of a corrupt duplicate.
func TestMetricsHelpAndHistograms(t *testing.T) {
	rec := obs.New("shed")
	rec.Counter("crr.rewire.attempts").Add(9)
	rec.Counter("made.up.name").Add(1)
	rec.Counter("a.b").Add(1)
	rec.Counter("a_b").Add(2)
	h := rec.Histogram("msbfs.batch_ns")
	for _, v := range []int64{100, 200, 400} {
		h.Observe(v)
	}

	srv := httptest.NewServer(obs.NewDebugHandler(rec))
	defer srv.Close()
	body, _ := get(t, srv.URL+"/metrics")

	for _, want := range []string{
		"# HELP edgeshed_crr_rewire_attempts_total CRR Phase 2 rewiring attempts examined.",
		"# HELP edgeshed_made_up_name_total edgeshed metric made.up.name.",
		"# HELP edgeshed_msbfs_batch_ns Wall time per MS-BFS source batch, in nanoseconds.",
		"# TYPE edgeshed_msbfs_batch_ns histogram",
		`edgeshed_msbfs_batch_ns_bucket{le="+Inf"} 3`,
		"edgeshed_msbfs_batch_ns_sum 700",
		"edgeshed_msbfs_batch_ns_count 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	// The collision pair: "a.b" sorts first and keeps the clean family,
	// "a_b" is disambiguated — both present, values distinguishable.
	if !strings.Contains(body, "edgeshed_a_b_total 1") || !strings.Contains(body, "edgeshed_a_b_2_total 2") {
		t.Errorf("sanitization collision not disambiguated:\n%s", body)
	}
	if strings.Count(body, "# TYPE edgeshed_a_b_total counter") != 1 {
		t.Errorf("duplicate family for edgeshed_a_b_total:\n%s", body)
	}
	// Cumulative buckets are non-decreasing and end at the count.
	var lastCum int64 = -1
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "edgeshed_msbfs_batch_ns_bucket") {
			continue
		}
		var cum int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &cum); err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if cum < lastCum {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, lastCum)
		}
		lastCum = cum
	}
	if lastCum != 3 {
		t.Fatalf("final cumulative bucket = %d, want 3", lastCum)
	}
}

// TestDebugHandlerEvents pins the /events endpoint: the flight recorder's
// tail as JSON, with ?n= limiting to the newest n events.
func TestDebugHandlerEvents(t *testing.T) {
	rec := obs.New("shed")
	mk := rec.Flight().Marker(obs.EvBatch, "serve")
	for i := 0; i < 10; i++ {
		mk.Emit(0, int64(i))
	}

	srv := httptest.NewServer(obs.NewDebugHandler(rec))
	defer srv.Close()

	var doc struct {
		Events []obs.Event `json:"events"`
	}
	body, resp := get(t, srv.URL+"/events")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("/events content type = %q", ct)
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/events is not JSON: %v\n%s", err, body)
	}
	var batches int
	for _, e := range doc.Events {
		if e.Kind == "batch" && e.Name == "serve" {
			batches++
		}
	}
	if batches != 10 {
		t.Fatalf("/events returned %d batch events, want 10", batches)
	}

	body, _ = get(t, srv.URL+"/events?n=3")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/events?n=3 is not JSON: %v", err)
	}
	if len(doc.Events) != 3 {
		t.Fatalf("/events?n=3 returned %d events", len(doc.Events))
	}
	// The tail keeps the newest: the last emitted args.
	if doc.Events[2].Arg != 9 {
		t.Errorf("tail not the newest events: %+v", doc.Events)
	}

	// Without a recorder, /events degrades to an empty list.
	nilSrv := httptest.NewServer(obs.NewDebugHandler(nil))
	defer nilSrv.Close()
	body, resp = get(t, nilSrv.URL+"/events")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/events without recorder = %d", resp.StatusCode)
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/events without recorder is not JSON: %v", err)
	}
	if len(doc.Events) != 0 {
		t.Fatalf("/events without recorder returned events: %+v", doc.Events)
	}
}

// TestDebugHandlerNilRecorder pins that the plane degrades gracefully with
// no recorder: runtime metrics still flow, progress is an empty document.
func TestDebugHandlerNilRecorder(t *testing.T) {
	srv := httptest.NewServer(obs.NewDebugHandler(nil))
	defer srv.Close()
	body, resp := get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "go_") {
		t.Errorf("/metrics without recorder = %d:\n%s", resp.StatusCode, body)
	}
	if strings.Contains(body, "edgeshed_") {
		t.Errorf("/metrics without recorder emits app metrics:\n%s", body)
	}
	body, resp = get(t, srv.URL+"/progress")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/progress without recorder = %d", resp.StatusCode)
	}
	var snap obs.ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/progress is not JSON: %v", err)
	}
}

// TestConcurrentScrapeDuringSweep is the issue's race check: /metrics,
// /progress and /events are hammered from a goroutine while CRR.Sweep runs
// at Workers=4 with the flight recorder installed as the par slot observer,
// under -race in CI (make race), and the swept edge sets must be
// bit-identical to an unobserved, unscraped run.
func TestConcurrentScrapeDuringSweep(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 7)
	ps := []float64{0.7, 0.5, 0.3}
	base := core.CRR{Seed: 11, Steps: 4000, Workers: 4}
	want, err := base.Sweep(g, ps)
	if err != nil {
		t.Fatal(err)
	}

	rec := obs.New("scrape-test")
	prev := par.SetSlotObserver(rec.Flight())
	defer par.SetSlotObserver(prev)
	srv := httptest.NewServer(obs.NewDebugHandler(rec))
	defer srv.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, path := range []string{"/metrics", "/progress", "/events"} {
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()

	observed := base
	observed.Obs = rec.Root()
	got, err := observed.Sweep(g, ps)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		assertSameEdges(t, want[i].Reduced, got[i].Reduced)
	}
	// The observed run recorded real flight traffic and histograms.
	if len(rec.Flight().Events()) == 0 {
		t.Error("observed sweep emitted no flight events")
	}
	if hv := rec.HistogramValues(); hv["crr.sweep.ratio_ns"] == nil || hv["crr.sweep.ratio_ns"].Count != int64(len(ps)) {
		t.Errorf("crr.sweep.ratio_ns histogram = %+v, want count %d", hv["crr.sweep.ratio_ns"], len(ps))
	}
	// The quality plane recorded under concurrent scraping too: the sweep's
	// per-ratio probes landed, and the final theorem headroom is coherent.
	qv := rec.QualityValues()
	for _, metric := range []string{"crr.delta", "crr.headroom.theorem1", "crr.kept_edges"} {
		if _, ok := qv[metric]; !ok {
			t.Errorf("quality gauge %s missing after scraped sweep: %v", metric, qv)
		}
	}
	// A final scrape of the settled recorder exposes the quality families.
	body, _ := get(t, srv.URL+"/metrics")
	if !strings.Contains(body, "edgeshed_quality_crr_delta") {
		t.Errorf("/metrics missing edgeshed_quality_crr_delta:\n%.400s", body)
	}
}

// TestConcurrentScrapeDuringStreamIngest extends the scrape-during-work
// bit-identity pin to the stream shedder: hammering /metrics and /progress
// while a multi-epoch ingestion folds its quality probes must not change a
// single kept edge, and the settled exposition carries the epoch families.
func TestConcurrentScrapeDuringStreamIngest(t *testing.T) {
	g := gen.BarabasiAlbert(12_000, 3, 11) // ~36k inserts: > 2 epochs
	ingest := func(sp *obs.Span) *stream.Shedder {
		s, err := stream.NewShedder(stream.Options{P: 0.5, Seed: 5, Nodes: g.NumNodes(), Obs: sp})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range g.Edges() {
			if err := s.Insert(e.U, e.V); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	want := ingest(nil)
	if want.Seen() < 2*stream.StreamEpoch {
		t.Fatalf("stream too short to cross two epochs: %d inserts", want.Seen())
	}

	rec := obs.New("scrape-stream-test")
	srv := httptest.NewServer(obs.NewDebugHandler(rec))
	defer srv.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, path := range []string{"/metrics", "/progress"} {
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	got := ingest(rec.Root())
	close(stop)
	wg.Wait()

	we, ge := want.Edges(), got.Edges()
	if len(we) != len(ge) {
		t.Fatalf("kept counts differ under scraping: %d vs %d", len(we), len(ge))
	}
	for i := range we {
		if we[i] != ge[i] {
			t.Fatalf("kept edge %d differs under scraping: %v vs %v", i, we[i], ge[i])
		}
	}
	body, _ := get(t, srv.URL+"/metrics")
	if !strings.Contains(body, "edgeshed_quality_stream_epoch_delta") {
		t.Errorf("/metrics missing edgeshed_quality_stream_epoch_delta:\n%.400s", body)
	}
}

// assertSameEdges is the bit-identity criterion: the exact same edge list.
func assertSameEdges(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		t.Fatalf("edge counts differ under scraping: %d vs %d", len(ae), len(be))
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs under scraping: %v vs %v", i, ae[i], be[i])
		}
	}
}
