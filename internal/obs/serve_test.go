package obs_test

// External test package: the concurrent-scrape test drives a real kernel
// (core.CRR) under the debug plane, and core already imports obs.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"edgeshed/internal/core"
	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
	"edgeshed/internal/obs"
)

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp
}

// TestDebugHandlerEndpoints pins the debug plane's surface: /healthz
// liveness, /metrics in Prometheus text exposition with sanitized names,
// /progress as a span-tree JSON document, and the pprof index.
func TestDebugHandlerEndpoints(t *testing.T) {
	rec := obs.New("shed")
	rec.Counter("crr.rewire.attempts").Add(123)
	rec.Gauge("graph.edges").Set(500)
	sp := rec.Root().Start("crr.sweep")
	sp.SetTotal(10)
	sp.Done(4)

	srv := httptest.NewServer(obs.NewDebugHandler(rec))
	defer srv.Close()

	body, resp := get(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", resp.StatusCode, body)
	}

	body, resp = get(t, srv.URL+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type = %q, want Prometheus text exposition", ct)
	}
	for _, want := range []string{
		"# TYPE edgeshed_crr_rewire_attempts_total counter",
		"edgeshed_crr_rewire_attempts_total 123",
		"# TYPE edgeshed_graph_edges gauge",
		"edgeshed_graph_edges 500",
		`edgeshed_run_info{command="shed"} 1`,
		"go_sched_gomaxprocs_threads",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	body, _ = get(t, srv.URL+"/progress")
	var snap obs.ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/progress is not JSON: %v\n%s", err, body)
	}
	if snap.Command != "shed" || snap.ElapsedNs <= 0 {
		t.Errorf("/progress header = %+v", snap)
	}
	if snap.Spans == nil || len(snap.Spans.Children) != 1 {
		t.Fatalf("/progress span tree = %+v", snap.Spans)
	}
	sweep := snap.Spans.Children[0]
	if sweep.Name != "crr.sweep" || sweep.Done != 4 || sweep.Total != 10 || sweep.EtaNs <= 0 {
		t.Errorf("open sweep span = %+v, want 4/10 with positive eta", sweep)
	}

	body, resp = get(t, srv.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", resp.StatusCode)
	}
}

// TestDebugHandlerNilRecorder pins that the plane degrades gracefully with
// no recorder: runtime metrics still flow, progress is an empty document.
func TestDebugHandlerNilRecorder(t *testing.T) {
	srv := httptest.NewServer(obs.NewDebugHandler(nil))
	defer srv.Close()
	body, resp := get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "go_") {
		t.Errorf("/metrics without recorder = %d:\n%s", resp.StatusCode, body)
	}
	if strings.Contains(body, "edgeshed_") {
		t.Errorf("/metrics without recorder emits app metrics:\n%s", body)
	}
	body, resp = get(t, srv.URL+"/progress")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/progress without recorder = %d", resp.StatusCode)
	}
	var snap obs.ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/progress is not JSON: %v", err)
	}
}

// TestConcurrentScrapeDuringSweep is the issue's race check: /metrics and
// /progress are hammered from a goroutine while CRR.Sweep runs at
// Workers=4, under -race in CI (make race), and the swept edge sets must
// be bit-identical to an unobserved, unscraped run.
func TestConcurrentScrapeDuringSweep(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 7)
	ps := []float64{0.7, 0.5, 0.3}
	base := core.CRR{Seed: 11, Steps: 4000, Workers: 4}
	want, err := base.Sweep(g, ps)
	if err != nil {
		t.Fatal(err)
	}

	rec := obs.New("scrape-test")
	srv := httptest.NewServer(obs.NewDebugHandler(rec))
	defer srv.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, path := range []string{"/metrics", "/progress"} {
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()

	observed := base
	observed.Obs = rec.Root()
	got, err := observed.Sweep(g, ps)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		assertSameEdges(t, want[i].Reduced, got[i].Reduced)
	}
}

// assertSameEdges is the bit-identity criterion: the exact same edge list.
func assertSameEdges(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		t.Fatalf("edge counts differ under scraping: %d vs %d", len(ae), len(be))
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs under scraping: %v vs %v", i, ae[i], be[i])
		}
	}
}
