package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"edgeshed/internal/par"
)

// buildTracedManifest runs a small observed workload — spans, a parallel
// region with slot identity, markers — and snapshots it like Session.Close
// would.
func buildTracedManifest(t *testing.T, workers int) *Manifest {
	t.Helper()
	r := New("tracecmd")
	prev := par.SetSlotObserver(r.Flight())
	defer par.SetSlotObserver(prev)
	sp := r.Root().Start("kernel")
	mk := sp.Marker(EvBatch, "kernel")
	par.Run(workers, func(w int) {
		t0 := time.Now()
		for i := 0; i < 3; i++ {
			mk.Emit(w, int64(i))
		}
		time.Sleep(time.Millisecond)
		sp.WorkerBusy(w, time.Since(t0))
	})
	sp.End()
	r.Counter("events").Add(9)
	r.Root().End()
	return &Manifest{
		Command:      "tracecmd",
		Spans:        r.SpanTree(),
		Counters:     r.CounterValues(),
		FlightEvents: r.Flight().Events(),
	}
}

// decodeTrace parses an exported trace back into its event list.
func decodeTrace(t *testing.T, buf *bytes.Buffer) []traceEvent {
	t.Helper()
	var doc traceFile
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	return doc.TraceEvents
}

// TestTraceEventsSchema pins the exported document's schema invariants:
// valid JSON, monotone non-decreasing ts, balanced B/E pairs per thread,
// one named track per worker slot plus main.
func TestTraceEventsSchema(t *testing.T) {
	const workers = 4
	m := buildTracedManifest(t, workers)
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, m); err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, &buf)
	if len(evs) == 0 {
		t.Fatal("no trace events")
	}
	lastTS := -1.0
	depth := map[int]int{}
	threadNames := map[int]string{}
	for _, e := range evs {
		if e.Ph == "M" {
			if e.Name == "thread_name" {
				threadNames[e.TID] = e.Args["name"].(string)
			}
			continue
		}
		if e.TS < lastTS {
			t.Fatalf("ts not monotone: %v after %v", e.TS, lastTS)
		}
		lastTS = e.TS
		switch e.Ph {
		case "B":
			depth[e.TID]++
		case "E":
			depth[e.TID]--
			if depth[e.TID] < 0 {
				t.Fatalf("E without B on tid %d", e.TID)
			}
		case "X", "i", "C":
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Fatalf("unbalanced B/E on tid %d: depth %d", tid, d)
		}
	}
	if threadNames[0] != "main" {
		t.Fatalf("tid 0 named %q, want main", threadNames[0])
	}
	workerTracks := 0
	for tid, name := range threadNames {
		if tid > 0 && name != "" {
			workerTracks++
		}
	}
	if workerTracks < workers {
		t.Fatalf("%d worker tracks, want >= %d (names: %v)", workerTracks, workers, threadNames)
	}
}

// TestTraceEventsContent pins the span/slot/counter mapping: the span tree
// appears as X events on tid 0, each worker's slot run as a B/E pair on its
// own tid, markers as instants, and final counters as C samples.
func TestTraceEventsContent(t *testing.T) {
	m := buildTracedManifest(t, 2)
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, m); err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, &buf)
	var kernelX, slotB, batchI, counterC int
	for _, e := range evs {
		switch {
		case e.Ph == "X" && e.Name == "kernel" && e.TID == 0:
			kernelX++
		case e.Ph == "B" && e.Name == "par.slot" && e.TID > 0:
			slotB++
		case e.Ph == "i" && e.Name == "batch":
			batchI++
		case e.Ph == "C" && e.Name == "events":
			counterC++
			if v, ok := e.Args["value"].(float64); !ok || v != 9 {
				t.Errorf("counter C args = %v", e.Args)
			}
		}
	}
	if kernelX != 1 {
		t.Errorf("kernel X events = %d, want 1", kernelX)
	}
	if slotB != 2 {
		t.Errorf("slot B events = %d, want 2", slotB)
	}
	if batchI != 6 {
		t.Errorf("batch instants = %d, want 6", batchI)
	}
	if counterC != 1 {
		t.Errorf("counter samples = %d, want 1", counterC)
	}
}

// TestTraceEventsNilManifest pins the error path.
func TestTraceEventsNilManifest(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, nil); err == nil {
		t.Fatal("nil manifest exported without error")
	}
}
