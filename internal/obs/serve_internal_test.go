package obs

import (
	"io"
	"net"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestUniqueMetricNamesCollision pins the satellite contract: distinct
// internal names whose sanitized forms collide ("a.b" vs "a_b") must map to
// distinct exposition families, deterministically.
func TestUniqueMetricNamesCollision(t *testing.T) {
	names := []string{"a_b", "a.b", "a-b", "plain"}
	got := uniqueMetricNames(names, "edgeshed_", "_total")
	// Sorted order decides who keeps the clean family: '-' < '.' < '_'.
	want := map[string]string{
		"a-b":   "edgeshed_a_b_total",
		"a.b":   "edgeshed_a_b_2_total",
		"a_b":   "edgeshed_a_b_3_total",
		"plain": "edgeshed_plain_total",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("uniqueMetricNames = %v, want %v", got, want)
	}
	// Determinism: input order must not matter (assignment is by sorted name).
	reversed := []string{"plain", "a-b", "a.b", "a_b"}
	if got2 := uniqueMetricNames(reversed, "edgeshed_", "_total"); !reflect.DeepEqual(got2, want) {
		t.Fatalf("uniqueMetricNames order-sensitive: %v vs %v", got2, want)
	}
	// No collision, no suffix.
	if m := uniqueMetricNames([]string{"x.y"}, "p_", ""); m["x.y"] != "p_x_y" {
		t.Fatalf("singleton name mangled: %v", m)
	}
}

// slowServer builds a debugServer over a handler that signals when a request
// is in flight and then takes `delay` to finish its body — the shape of a
// scrape racing Session.Close.
func slowServer(t *testing.T, started chan<- struct{}, delay time.Duration) *debugServer {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		time.Sleep(delay)
		io.WriteString(w, "full-body")
	})
	d := &debugServer{l: l, srv: &http.Server{Handler: h}}
	go d.srv.Serve(l)
	return d
}

// TestDebugServerGracefulStop is the regression test for the stop()
// rewrite: an in-flight scrape must receive its complete response body even
// when stop() is called mid-request — srv.Close() would cut it mid-line.
func TestDebugServerGracefulStop(t *testing.T) {
	started := make(chan struct{}, 1)
	d := slowServer(t, started, 50*time.Millisecond)

	var wg sync.WaitGroup
	wg.Add(1)
	var body string
	var getErr error
	go func() {
		defer wg.Done()
		resp, err := http.Get("http://" + d.Addr() + "/metrics")
		if err != nil {
			getErr = err
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			getErr = err
			return
		}
		body = string(b)
	}()

	<-started // the request is in the handler; now race the shutdown
	t0 := time.Now()
	d.stop()
	wg.Wait()
	if getErr != nil {
		t.Fatalf("in-flight scrape failed across stop(): %v", getErr)
	}
	if body != "full-body" {
		t.Fatalf("scrape truncated across stop(): %q", body)
	}
	if elapsed := time.Since(t0); elapsed > debugShutdownTimeout {
		t.Fatalf("stop() took %v, beyond the %v deadline", elapsed, debugShutdownTimeout)
	}
	// After stop, new connections are refused.
	if _, err := http.Get("http://" + d.Addr() + "/metrics"); err == nil {
		t.Fatal("server accepted a connection after stop()")
	}
}

// TestDebugServerStopDeadline pins the fallback: a handler that outlives
// debugShutdownTimeout must not wedge stop() — the hard Close kicks in.
func TestDebugServerStopDeadline(t *testing.T) {
	defer func(old time.Duration) { debugShutdownTimeout = old }(debugShutdownTimeout)
	debugShutdownTimeout = 20 * time.Millisecond

	started := make(chan struct{}, 1)
	d := slowServer(t, started, 10*time.Second)
	go http.Get("http://" + d.Addr() + "/metrics")
	<-started

	done := make(chan struct{})
	go func() {
		d.stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stop() wedged on a handler that ignores the deadline")
	}
}

// TestDebugServerStopNil pins nil-safety: stop on a nil server (no
// -debug-addr) is a no-op.
func TestDebugServerStopNil(t *testing.T) {
	var d *debugServer
	d.stop() // must not panic
	if d.Addr() != "" {
		t.Fatal("nil debugServer has an address")
	}
}
