package obs

import (
	"runtime"
	"sync"
	"time"
)

// RuntimeSample is one point of the run's runtime timeline: a timestamped
// observation of heap size, GC effort and scheduler width. A timeline of
// these (manifest field "runtime_timeline", captured by the -sample-interval
// background sampler) shows *when* a run's memory peaked or its GC churned —
// the before/after MemSnapshot only shows that it did.
type RuntimeSample struct {
	// OffsetNs is the sample's offset from the session start.
	OffsetNs int64 `json:"offset_ns"`
	// HeapAllocBytes is the live heap at sample time.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	// HeapSysBytes is the heap memory obtained from the OS at sample time.
	HeapSysBytes uint64 `json:"heap_sys_bytes"`
	// GCPauseTotalNs is the cumulative stop-the-world pause time since
	// process start.
	GCPauseTotalNs uint64 `json:"gc_pause_total_ns"`
	// NumGC is the completed GC cycle count since process start.
	NumGC uint32 `json:"num_gc"`
	// Goroutines is the live goroutine count.
	Goroutines int `json:"goroutines"`
}

// sampler is the background runtime-timeline collector: one goroutine
// sampling on a fixed interval until stopped. Samples accumulate under a
// mutex so a live /progress consumer or the closing session can read them
// while the goroutine still runs.
type sampler struct {
	origin time.Time
	// tick mirrors each sample into the flight recorder (EvSamplerTick,
	// arg = live heap bytes) so sampler observations land on the trace
	// timeline; nil when no recorder is live.
	tick *Marker

	mu      sync.Mutex
	samples []RuntimeSample

	stop chan struct{}
	done chan struct{}
}

// startSampler begins sampling every interval, with offsets relative to
// origin; tick (possibly nil) receives one flight event per sample. One
// sample is taken immediately so even sessions shorter than the interval
// record a point.
func startSampler(interval time.Duration, origin time.Time, tick *Marker) *sampler {
	s := &sampler{origin: origin, tick: tick, stop: make(chan struct{}), done: make(chan struct{})}
	s.sample()
	go func() {
		defer close(s.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.sample()
			}
		}
	}()
	return s
}

// sample appends one observation. runtime.ReadMemStats briefly stops the
// world, which is why the sampler is opt-in and interval-driven rather than
// always on.
func (s *sampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p := RuntimeSample{
		OffsetNs:       time.Since(s.origin).Nanoseconds(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		GCPauseTotalNs: ms.PauseTotalNs,
		NumGC:          ms.NumGC,
		Goroutines:     runtime.NumGoroutine(),
	}
	s.mu.Lock()
	s.samples = append(s.samples, p)
	s.mu.Unlock()
	s.tick.Emit(-1, int64(ms.HeapAlloc))
}

// Samples snapshots the timeline collected so far.
func (s *sampler) Samples() []RuntimeSample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RuntimeSample, len(s.samples))
	copy(out, s.samples)
	return out
}

// Stop takes one final sample, halts the goroutine and returns the full
// timeline. Nil-safe; safe to call once.
func (s *sampler) Stop() []RuntimeSample {
	if s == nil {
		return nil
	}
	close(s.stop)
	<-s.done
	s.sample()
	return s.Samples()
}
