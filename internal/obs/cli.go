package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"time"
)

// CLI holds the shared observability flags every cmd binary registers
// through BindFlags: capture hooks (-profile, -profile-out, -trace,
// -metrics) and the stderr progress logger's verbosity (-quiet, -v).
// After flag parsing, Start turns the requested captures on and returns
// the run's Session.
type CLI struct {
	// Profile selects a runtime profile to capture: "cpu", "mem" or
	// "block"; empty captures none.
	Profile string
	// ProfileOut is the profile output path; empty means "<mode>.pprof".
	ProfileOut string
	// TracePath, when non-empty, captures a runtime execution trace there.
	TracePath string
	// MetricsPath, when non-empty, writes the JSON run manifest there and
	// enables the Recorder the kernels report spans and counters into.
	MetricsPath string
	// Quiet suppresses progress output on stderr.
	Quiet bool
	// Verbose enables extra progress output on stderr.
	Verbose bool

	fs *flag.FlagSet
}

// BindFlags registers the shared observability flags on fs and returns the
// CLI that will receive their values. Call before fs is parsed.
func BindFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{fs: fs}
	fs.StringVar(&c.Profile, "profile", "", "capture a runtime profile: cpu, mem or block")
	fs.StringVar(&c.ProfileOut, "profile-out", "", "profile output path (default <mode>.pprof)")
	fs.StringVar(&c.TracePath, "trace", "", "capture a runtime execution trace to this file")
	fs.StringVar(&c.MetricsPath, "metrics", "", "write a JSON run manifest to this file")
	fs.BoolVar(&c.Quiet, "quiet", false, "suppress progress output on stderr")
	fs.BoolVar(&c.Verbose, "v", false, "verbose progress output on stderr")
	return c
}

// profilePath resolves the profile output path.
func (c *CLI) profilePath() string {
	if c.ProfileOut != "" {
		return c.ProfileOut
	}
	return c.Profile + ".pprof"
}

// Start begins the run's observability session for the named command:
// starts the CPU profile and execution trace if requested, arms block
// profiling, snapshots memory, and — when a manifest was requested —
// creates the Recorder whose root span times the whole run. Call exactly
// once, after flag parsing; pair with Session.Close.
func (c *CLI) Start(command string) (*Session, error) {
	s := &Session{cli: c, command: command, startWall: time.Now()}
	runtime.ReadMemStats(&s.memBefore)
	switch c.Profile {
	case "":
	case "cpu":
		f, err := os.Create(c.profilePath())
		if err != nil {
			return nil, fmt.Errorf("creating cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("starting cpu profile: %w", err)
		}
		s.cpuFile = f
	case "mem":
		// Heap profiling is always on; the profile is written at Close.
	case "block":
		runtime.SetBlockProfileRate(1)
	default:
		return nil, fmt.Errorf("unknown -profile mode %q (want cpu, mem or block)", c.Profile)
	}
	if c.TracePath != "" {
		f, err := os.Create(c.TracePath)
		if err != nil {
			s.stopCaptures()
			return nil, fmt.Errorf("creating trace: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			s.stopCaptures()
			return nil, fmt.Errorf("starting trace: %w", err)
		}
		s.traceFile = f
	}
	if c.MetricsPath != "" {
		s.rec = New(command)
	}
	return s, nil
}

// Session is one observed run of a cmd binary: the live Recorder (nil
// unless -metrics asked for one — the zero-overhead-when-off switch), the
// in-flight captures, and the manifest fields the command fills in as it
// learns them (graph size, seed, workers). All methods are nil-safe so
// helper functions can be exercised without a session.
type Session struct {
	cli       *CLI
	command   string
	rec       *Recorder
	startWall time.Time
	memBefore runtime.MemStats

	cpuFile   *os.File
	traceFile *os.File

	graph   *GraphInfo
	seed    int64
	workers int
}

// Recorder returns the session's recorder — nil unless -metrics enabled
// it, which is exactly the nil kernels should receive so disabled runs pay
// nothing.
func (s *Session) Recorder() *Recorder {
	if s == nil {
		return nil
	}
	return s.rec
}

// Root returns the session's root span (nil when recording is off), the
// parent to thread into kernels.
func (s *Session) Root() *Span {
	if s == nil {
		return nil
	}
	return s.rec.Root()
}

// SetGraph records the input graph's size for the manifest.
func (s *Session) SetGraph(nodes, edges int) {
	if s == nil {
		return
	}
	s.graph = &GraphInfo{Nodes: nodes, Edges: edges}
}

// SetSeed records the run's random seed for the manifest.
func (s *Session) SetSeed(seed int64) {
	if s == nil {
		return
	}
	s.seed = seed
}

// SetWorkers records the run's requested worker count for the manifest.
func (s *Session) SetWorkers(workers int) {
	if s == nil {
		return
	}
	s.workers = workers
}

// Logf prints one progress line to stderr unless -quiet. Progress always
// goes to stderr, never stdout, so machine output and human progress never
// interleave. A nil Session prints (a session-less helper still wants its
// progress seen).
func (s *Session) Logf(format string, args ...any) {
	if s != nil && s.cli != nil && s.cli.Quiet {
		return
	}
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// Verbosef prints one progress line to stderr only when -v was given.
func (s *Session) Verbosef(format string, args ...any) {
	if s == nil || s.cli == nil || !s.cli.Verbose || s.cli.Quiet {
		return
	}
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// stopCaptures halts the CPU profile and trace if running; safe to call
// more than once.
func (s *Session) stopCaptures() {
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		s.cpuFile.Close()
		s.cpuFile = nil
	}
	if s.traceFile != nil {
		trace.Stop()
		s.traceFile.Close()
		s.traceFile = nil
	}
}

// Close ends the session: stops the CPU profile and trace, writes the heap
// or block profile if one was requested, and — when -metrics asked for a
// manifest — ends the root span and writes the manifest (verifying it
// parses back). Call once, after the command's work finished; its error is
// the command's to report. Nil-safe.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	s.stopCaptures()
	var firstErr error
	switch {
	case s.cli == nil:
	case s.cli.Profile == "mem":
		if err := writeProfile("allocs", s.cli.profilePath()); err != nil {
			firstErr = err
		}
	case s.cli.Profile == "block":
		runtime.SetBlockProfileRate(0)
		if err := writeProfile("block", s.cli.profilePath()); err != nil {
			firstErr = err
		}
	}
	if s.rec != nil {
		s.rec.Root().End()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		m := &Manifest{
			Command:        s.command,
			GoVersion:      runtime.Version(),
			GOOS:           runtime.GOOS,
			GOARCH:         runtime.GOARCH,
			CPUs:           runtime.NumCPU(),
			GoMaxProcs:     runtime.GOMAXPROCS(0),
			StartUTC:       s.startWall.UTC().Format(time.RFC3339),
			WallNs:         time.Since(s.startWall).Nanoseconds(),
			Seed:           s.seed,
			Workers:        s.workers,
			Graph:          s.graph,
			Options:        flagValues(s.cli.fs),
			Spans:          s.rec.SpanTree(),
			Counters:       s.rec.CounterValues(),
			Gauges:         s.rec.GaugeValues(),
			Mem:            memDelta(&s.memBefore, &after),
			RuntimeMetrics: captureRuntimeMetrics(),
		}
		if err := m.WriteFile(s.cli.MetricsPath); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// writeProfile writes the named pprof profile to path.
func writeProfile(name, path string) error {
	p := pprof.Lookup(name)
	if p == nil {
		return fmt.Errorf("obs: no %s profile", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating %s profile: %w", name, err)
	}
	defer f.Close()
	if err := p.WriteTo(f, 0); err != nil {
		return fmt.Errorf("writing %s profile: %w", name, err)
	}
	return nil
}

// flagValues snapshots every flag's final value, so the manifest records
// the run's full option set (defaults included).
func flagValues(fs *flag.FlagSet) map[string]string {
	if fs == nil {
		return nil
	}
	out := make(map[string]string)
	fs.VisitAll(func(f *flag.Flag) {
		out[f.Name] = f.Value.String()
	})
	if len(out) == 0 {
		return nil
	}
	return out
}
