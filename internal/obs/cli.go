package obs

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	"edgeshed/internal/par"
)

// CLI holds the shared observability flags every cmd binary registers
// through BindFlags: capture hooks (-profile, -profile-out, -trace,
// -metrics), the live debug plane (-debug-addr), the background runtime
// sampler (-sample-interval) and the stderr progress logger's verbosity and
// format (-quiet, -v, -log-json). After flag parsing, Start turns the
// requested captures on and returns the run's Session.
type CLI struct {
	// Profile selects a runtime profile to capture: "cpu", "mem" or
	// "block"; empty captures none.
	Profile string
	// ProfileOut is the profile output path; empty means "<mode>.pprof".
	ProfileOut string
	// TracePath, when non-empty, captures a runtime execution trace there.
	TracePath string
	// MetricsPath, when non-empty, writes the JSON run manifest there and
	// enables the Recorder the kernels report spans and counters into.
	MetricsPath string
	// TraceEventsPath, when non-empty, writes a Chrome/Perfetto trace-event
	// JSON file there at Close: the span tree plus the flight recorder's
	// events as one track per worker slot, with counter tracks. Enables the
	// Recorder like -metrics.
	TraceEventsPath string
	// DebugAddr, when non-empty, serves the live debug plane there for the
	// run's duration: /metrics (Prometheus text exposition), /progress
	// (live span tree with ETAs), /healthz and /debug/pprof/*. Setting it
	// enables the Recorder even without -metrics, so live scrapes have
	// counters and spans to read.
	DebugAddr string
	// SampleInterval, when positive, runs the background runtime sampler:
	// a timestamped timeline of heap, GC and goroutine observations
	// recorded into the manifest's runtime_timeline.
	SampleInterval time.Duration
	// Quiet suppresses progress output on stderr.
	Quiet bool
	// Verbose enables extra progress output on stderr, including the
	// periodic span-progress heartbeat when a Recorder is live.
	Verbose bool
	// LogJSON emits every log line as a JSON object {ts, level, msg} for
	// machine consumption instead of plain text.
	LogJSON bool

	fs *flag.FlagSet
}

// BindFlags registers the shared observability flags on fs and returns the
// CLI that will receive their values. Call before fs is parsed.
func BindFlags(fs *flag.FlagSet) *CLI {
	c := &CLI{fs: fs}
	fs.StringVar(&c.Profile, "profile", "", "capture a runtime profile: cpu, mem or block")
	fs.StringVar(&c.ProfileOut, "profile-out", "", "profile output path (default <mode>.pprof)")
	fs.StringVar(&c.TracePath, "trace", "", "capture a runtime execution trace to this file")
	fs.StringVar(&c.MetricsPath, "metrics", "", "write a JSON run manifest to this file")
	fs.StringVar(&c.TraceEventsPath, "trace-events", "", "write a Chrome/Perfetto trace-event JSON timeline to this file (one track per worker)")
	fs.StringVar(&c.DebugAddr, "debug-addr", "", "serve the live debug plane (/metrics, /progress, /healthz, /debug/pprof) on this address for the run's duration")
	fs.DurationVar(&c.SampleInterval, "sample-interval", 0, "sample heap/GC/goroutine stats on this interval into the manifest's runtime timeline (0 = off)")
	fs.BoolVar(&c.Quiet, "quiet", false, "suppress progress output on stderr")
	fs.BoolVar(&c.Verbose, "v", false, "verbose progress output on stderr")
	fs.BoolVar(&c.LogJSON, "log-json", false, "emit log lines as JSON objects (ts, level, msg)")
	return c
}

// profilePath resolves the profile output path.
func (c *CLI) profilePath() string {
	if c.ProfileOut != "" {
		return c.ProfileOut
	}
	return c.Profile + ".pprof"
}

// Start begins the run's observability session for the named command:
// starts the CPU profile and execution trace if requested, arms block
// profiling, snapshots memory, creates the Recorder whose root span times
// the whole run when -metrics or -debug-addr asked for one, binds the live
// debug plane, and launches the background runtime sampler and the -v
// progress heartbeat. Call exactly once, after flag parsing; pair with
// Session.Close.
func (c *CLI) Start(command string) (*Session, error) {
	s := &Session{cli: c, command: command, startWall: time.Now()}
	runtime.ReadMemStats(&s.memBefore)
	switch c.Profile {
	case "":
	case "cpu":
		f, err := os.Create(c.profilePath())
		if err != nil {
			return nil, fmt.Errorf("creating cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("starting cpu profile: %w", err)
		}
		s.cpuFile = f
	case "mem":
		// Heap profiling is always on; the profile is written at Close.
	case "block":
		runtime.SetBlockProfileRate(1)
	default:
		return nil, fmt.Errorf("unknown -profile mode %q (want cpu, mem or block)", c.Profile)
	}
	if c.TracePath != "" {
		f, err := os.Create(c.TracePath)
		if err != nil {
			s.stopCaptures()
			return nil, fmt.Errorf("creating trace: %w", err)
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			s.stopCaptures()
			return nil, fmt.Errorf("starting trace: %w", err)
		}
		s.traceFile = f
	}
	if c.MetricsPath != "" || c.DebugAddr != "" || c.TraceEventsPath != "" {
		s.rec = New(command)
		// par reports worker-slot identity into the flight recorder for the
		// session's duration; Close restores whatever was installed before.
		s.prevSlotObs = par.SetSlotObserver(s.rec.Flight())
		s.slotObsSet = true
	}
	if c.DebugAddr != "" {
		d, err := startDebugServer(c.DebugAddr, s.rec)
		if err != nil {
			s.stopCaptures()
			return nil, err
		}
		s.debug = d
		s.Verbosef("debug plane listening on %s", d.Addr())
	}
	if c.SampleInterval > 0 {
		s.smp = startSampler(c.SampleInterval, s.startWall, s.rec.Flight().Marker(EvSamplerTick, "runtime"))
	}
	if c.Verbose && !c.Quiet && s.rec != nil {
		s.startHeartbeat(heartbeatInterval)
	}
	return s, nil
}

// Session is one observed run of a cmd binary: the live Recorder (nil
// unless -metrics asked for one — the zero-overhead-when-off switch), the
// in-flight captures, and the manifest fields the command fills in as it
// learns them (graph size, seed, workers). All methods are nil-safe so
// helper functions can be exercised without a session.
type Session struct {
	cli       *CLI
	command   string
	rec       *Recorder
	startWall time.Time
	memBefore runtime.MemStats

	cpuFile   *os.File
	traceFile *os.File

	debug         *debugServer
	smp           *sampler
	heartbeatStop chan struct{}
	heartbeatDone chan struct{}
	prevSlotObs   par.SlotObserver
	slotObsSet    bool

	graph   *GraphInfo
	seed    int64
	workers int
}

// DebugServerAddr returns the live debug plane's bound address ("" when
// -debug-addr is off). With "-debug-addr :0" this is how callers and tests
// learn the kernel-assigned port.
func (s *Session) DebugServerAddr() string {
	if s == nil {
		return ""
	}
	return s.debug.Addr()
}

// Recorder returns the session's recorder — nil unless -metrics or
// -debug-addr enabled it, which is exactly the nil kernels should receive
// so disabled runs pay nothing.
func (s *Session) Recorder() *Recorder {
	if s == nil {
		return nil
	}
	return s.rec
}

// Root returns the session's root span (nil when recording is off), the
// parent to thread into kernels.
func (s *Session) Root() *Span {
	if s == nil {
		return nil
	}
	return s.rec.Root()
}

// SetGraph records the input graph's size for the manifest.
func (s *Session) SetGraph(nodes, edges int) {
	if s == nil {
		return
	}
	s.graph = &GraphInfo{Nodes: nodes, Edges: edges}
}

// SetSeed records the run's random seed for the manifest.
func (s *Session) SetSeed(seed int64) {
	if s == nil {
		return
	}
	s.seed = seed
}

// SetWorkers records the run's requested worker count for the manifest.
func (s *Session) SetWorkers(workers int) {
	if s == nil {
		return
	}
	s.workers = workers
}

// Logf prints one progress line to stderr unless -quiet. Progress always
// goes to stderr, never stdout, so machine output and human progress never
// interleave. A nil Session prints (a session-less helper still wants its
// progress seen).
func (s *Session) Logf(format string, args ...any) {
	if s != nil && s.cli != nil && s.cli.Quiet {
		return
	}
	s.emitLog("info", format, args...)
}

// Verbosef prints one progress line to stderr only when -v was given.
func (s *Session) Verbosef(format string, args ...any) {
	if s == nil || s.cli == nil || !s.cli.Verbose || s.cli.Quiet {
		return
	}
	s.emitLog("debug", format, args...)
}

// emitLog writes one log line: plain text by default, or a JSON object
// {ts, level, msg} under -log-json. JSON lines are built with the encoder
// (not string concatenation), so messages with quotes or newlines stay
// valid JSON.
func (s *Session) emitLog(level, format string, args ...any) {
	if s == nil || s.cli == nil || !s.cli.LogJSON {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		return
	}
	line, err := json.Marshal(struct {
		TS    string `json:"ts"`
		Level string `json:"level"`
		Msg   string `json:"msg"`
	}{
		TS:    time.Now().UTC().Format(time.RFC3339Nano),
		Level: level,
		Msg:   fmt.Sprintf(format, args...),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		return
	}
	fmt.Fprintf(os.Stderr, "%s\n", line)
}

// heartbeatInterval paces the -v progress heartbeat; a variable so tests
// can tighten it.
var heartbeatInterval = 10 * time.Second

// startHeartbeat launches the periodic span-progress logger: every interval
// it snapshots the live span tree and prints one line summarizing every
// open span with unit progress (done/total, percent, ETA). Stopped by
// Close before the manifest is written.
func (s *Session) startHeartbeat(interval time.Duration) {
	s.heartbeatStop = make(chan struct{})
	s.heartbeatDone = make(chan struct{})
	go func() {
		defer close(s.heartbeatDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.heartbeatStop:
				return
			case <-t.C:
				if line := heartbeatLine(s.rec.SpanTree()); line != "" {
					s.Verbosef("heartbeat: %s", line)
				}
			}
		}
	}()
}

// stopHeartbeat halts the heartbeat goroutine and waits for it, so no log
// line can race the session teardown.
func (s *Session) stopHeartbeat() {
	if s.heartbeatStop == nil {
		return
	}
	close(s.heartbeatStop)
	<-s.heartbeatDone
	s.heartbeatStop = nil
}

// heartbeatLine renders one progress summary from a span-tree snapshot:
// every open span with unit progress as "name done/total (pp%) eta d",
// joined with "; ". With no progress-carrying span open it falls back to
// the deepest open span's name and elapsed time, so heartbeats never go
// silent mid-run; an all-ended tree yields "".
func heartbeatLine(t *SpanNode) string {
	if t == nil {
		return ""
	}
	var parts []string
	var walk func(n *SpanNode)
	var deepest *SpanNode
	var walkOpen func(n *SpanNode)
	walk = func(n *SpanNode) {
		if !n.Ended && n.Total > 0 {
			p := fmt.Sprintf("%s %d/%d (%.0f%%)", n.Name, n.Done, n.Total, 100*float64(n.Done)/float64(n.Total))
			if n.EtaNs > 0 {
				p += fmt.Sprintf(" eta %s", time.Duration(n.EtaNs).Round(time.Second))
			}
			parts = append(parts, p)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walkOpen = func(n *SpanNode) {
		if n.Ended {
			return
		}
		deepest = n
		for _, c := range n.Children {
			walkOpen(c)
		}
	}
	walk(t)
	if len(parts) > 0 {
		return strings.Join(parts, "; ")
	}
	walkOpen(t)
	if deepest == nil {
		return ""
	}
	return fmt.Sprintf("in %s for %s", deepest.Name, time.Duration(deepest.DurNs).Round(time.Second))
}

// stopCaptures halts the CPU profile and trace if running; safe to call
// more than once.
func (s *Session) stopCaptures() {
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		s.cpuFile.Close()
		s.cpuFile = nil
	}
	if s.traceFile != nil {
		trace.Stop()
		s.traceFile.Close()
		s.traceFile = nil
	}
}

// buildManifest snapshots the session's observed state into a Manifest.
// Shared by the clean Close path and Run's panic dump, so both produce the
// same document shape.
func (s *Session) buildManifest(timeline []RuntimeSample) *Manifest {
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	return &Manifest{
		Command:        s.command,
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		CPUs:           runtime.NumCPU(),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		StartUTC:       s.startWall.UTC().Format(time.RFC3339),
		WallNs:         time.Since(s.startWall).Nanoseconds(),
		Seed:           s.seed,
		Workers:        s.workers,
		Graph:          s.graph,
		Options:        flagValues(s.cliFlags()),
		Spans:          s.rec.SpanTree(),
		Counters:       s.rec.CounterValues(),
		Gauges:         s.rec.GaugeValues(),
		Histograms:     s.rec.HistogramValues(),
		FlightEvents:   s.rec.Flight().Events(),
		Mem:            memDelta(&s.memBefore, &after),
		RuntimeMetrics: captureRuntimeMetrics(),
		Timeline:       timeline,
		Quality:        s.rec.QualityPoints(),
		GitCommit:      gitCommit(),
	}
}

// cliFlags returns the session's flag set, nil without a CLI.
func (s *Session) cliFlags() *flag.FlagSet {
	if s.cli == nil {
		return nil
	}
	return s.cli.fs
}

// restoreSlotObserver hands par's slot-observer seam back to whatever was
// installed before Start; idempotent.
func (s *Session) restoreSlotObserver() {
	if s.slotObsSet {
		par.SetSlotObserver(s.prevSlotObs)
		s.slotObsSet = false
	}
}

// Close ends the session: stops the heartbeat, the runtime sampler and the
// debug plane, then the CPU profile and trace, writes the heap or block
// profile if one was requested, and — when -metrics or -trace-events asked
// for output files — ends the root span and writes the manifest (verifying
// it parses back) and the Chrome trace-event timeline. Call once, after the
// command's work finished; its error is the command's to report. Nil-safe.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	s.stopHeartbeat()
	timeline := s.smp.Stop()
	s.smp = nil
	s.debug.stop()
	s.debug = nil
	s.restoreSlotObserver()
	s.stopCaptures()
	var firstErr error
	switch {
	case s.cli == nil:
	case s.cli.Profile == "mem":
		if err := writeProfile("allocs", s.cli.profilePath()); err != nil {
			firstErr = err
		}
	case s.cli.Profile == "block":
		runtime.SetBlockProfileRate(0)
		if err := writeProfile("block", s.cli.profilePath()); err != nil {
			firstErr = err
		}
	}
	if s.rec != nil && s.cli != nil && (s.cli.MetricsPath != "" || s.cli.TraceEventsPath != "") {
		s.rec.Root().End()
		m := s.buildManifest(timeline)
		if s.cli.MetricsPath != "" {
			if err := m.WriteFile(s.cli.MetricsPath); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if s.cli.TraceEventsPath != "" {
			if err := writeTraceEventsFile(s.cli.TraceEventsPath, m); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Run executes the session's workload with a panic recovery hook: if fn
// panics while a Recorder is live, the session dumps a panic manifest —
// the ordinary manifest plus the panic value, the panicking stack, and the
// flight recorder's tail, the events leading up to the crash — to the
// -metrics path (or "<command>.panic.json" without one) before re-raising
// the panic. A run that returns normally passes its error through
// untouched; pair with Session.Close as usual. Nil-safe: without a session
// or recorder, Run is just fn().
func Run(s *Session, fn func() error) error {
	if s == nil || s.rec == nil {
		return fn()
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		stack := make([]byte, 64<<10)
		stack = stack[:runtime.Stack(stack, false)]
		s.rec.Flight().Marker(EvPanic, fmt.Sprint(r)).Emit(-1, 0)
		m := s.buildManifest(nil)
		m.Panic = fmt.Sprint(r)
		m.PanicStack = string(stack)
		path := s.command + ".panic.json"
		if s.cli != nil && s.cli.MetricsPath != "" {
			path = s.cli.MetricsPath
		}
		if err := m.WriteFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "obs: writing panic manifest: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "obs: panic manifest written to %s\n", path)
		}
		panic(r)
	}()
	return fn()
}

// writeProfile writes the named pprof profile to path.
func writeProfile(name, path string) error {
	p := pprof.Lookup(name)
	if p == nil {
		return fmt.Errorf("obs: no %s profile", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating %s profile: %w", name, err)
	}
	defer f.Close()
	if err := p.WriteTo(f, 0); err != nil {
		return fmt.Errorf("writing %s profile: %w", name, err)
	}
	return nil
}

// flagValues snapshots every flag's final value, so the manifest records
// the run's full option set (defaults included).
func flagValues(fs *flag.FlagSet) map[string]string {
	if fs == nil {
		return nil
	}
	out := make(map[string]string)
	fs.VisitAll(func(f *flag.Flag) {
		out[f.Name] = f.Value.String()
	})
	if len(out) == 0 {
		return nil
	}
	return out
}
