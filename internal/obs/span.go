package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span times one phase of a run: a monotonic start, a duration fixed by
// End, optional child spans, and — for parallel regions — per-worker busy
// time. Spans are created from a Recorder's Root or from a parent Span; a
// nil Span is the disabled state, whose methods no-op (Start returns nil)
// without allocating, so kernels thread a possibly-nil parent span through
// unconditionally.
//
// Start/End use time.Now, whose monotonic clock component makes durations
// immune to wall-clock adjustments. Concurrent children (a parallel sweep
// starting one child per ratio) are safe: the child list is mutex-guarded.
type Span struct {
	rec   *Recorder
	name  string
	start time.Time
	// nameID is the span name's flight-recorder intern id, resolved once at
	// Start so the begin/end/busy events End and WorkerBusy emit stay off
	// the intern mutex.
	nameID uint32

	// total and done are the span's optional unit-progress counts (BFS
	// sources completed, sweep ratios finished, suite tasks done). They are
	// plain atomics, not mutex-guarded: Done is called per completed work
	// unit, possibly from parallel workers, and must stay wait-free.
	total atomic.Int64
	done  atomic.Int64

	mu         sync.Mutex
	dur        time.Duration
	ended      bool
	children   []*Span
	workerBusy []time.Duration
}

// Enabled reports whether the span is recording. Use it to guard work that
// exists only to feed instrumentation (time.Now calls, stats scratch), so
// the disabled path stays free of even cheap side work.
func (s *Span) Enabled() bool { return s != nil }

// Start begins a child span. Nil-safe: on a nil Span it returns nil
// without allocating.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	child := &Span{rec: s.rec, name: name, start: time.Now()}
	child.nameID = s.rec.flight.intern(name)
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	s.rec.flight.emit(-1, EvSpanBegin, child.nameID, 0)
	return child
}

// End fixes the span's duration. Multiple Ends keep the first; a span never
// ended reports its duration as of snapshot time. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	first := !s.ended
	if first {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.mu.Unlock()
	if first {
		s.rec.flight.emit(-1, EvSpanEnd, s.nameID, s.dur.Nanoseconds())
	}
}

// WorkerBusy adds busy time observed by worker w inside this span, so a
// parallel region reports how evenly its work spread. Negative worker
// indices are ignored; the per-worker table grows to the largest index
// seen. Nil-safe.
func (s *Span) WorkerBusy(w int, d time.Duration) {
	if s == nil || w < 0 {
		return
	}
	s.mu.Lock()
	for w >= len(s.workerBusy) {
		s.workerBusy = append(s.workerBusy, 0)
	}
	s.workerBusy[w] += d
	s.mu.Unlock()
	// The busy stretch also lands in the flight recorder, stamped at its
	// end with its length as the payload — the trace export rebuilds the
	// per-worker busy slices from these.
	s.rec.flight.emit(w, EvWorkerBusy, s.nameID, d.Nanoseconds())
}

// SetTotal declares how many work units the span expects to complete, the
// denominator for /progress percentages, ETAs and -v heartbeat lines.
// Nil-safe; 0 (never set) means the span has no unit notion.
func (s *Span) SetTotal(n int64) {
	if s == nil {
		return
	}
	s.total.Store(n)
}

// Done records n more completed work units. Callers report progress from
// parallel workers directly (an atomic add per unit, not per item of inner
// loops), so live scrapes see the count move while the span runs. Progress
// never feeds back into algorithm state, preserving the bit-identity
// guarantee. Nil-safe.
func (s *Span) Done(n int64) {
	if s == nil {
		return
	}
	s.done.Add(n)
}

// Progress reports the span's completed and expected unit counts; both are
// 0 on a nil span or a span without unit progress.
func (s *Span) Progress() (done, total int64) {
	if s == nil {
		return 0, 0
	}
	return s.done.Load(), s.total.Load()
}

// Counter returns the named counter of the span's Recorder, the handle
// kernels use for item-granularity telemetry. Nil-safe: a nil Span returns
// a nil Counter.
func (s *Span) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.rec.Counter(name)
}

// Histogram returns the named histogram of the span's Recorder, the handle
// kernels use for distribution telemetry. Nil-safe: a nil Span returns a
// nil Histogram.
func (s *Span) Histogram(name string) *Histogram {
	if s == nil {
		return nil
	}
	return s.rec.Histogram(name)
}

// Gauge returns the named gauge of the span's Recorder. Nil-safe.
func (s *Span) Gauge(name string) *Gauge {
	if s == nil {
		return nil
	}
	return s.rec.Gauge(name)
}

// SpanNode is the serializable form of one span: offsets and durations in
// nanoseconds, per-worker busy time for parallel regions, and children in
// start order. The JSON encoding round-trips losslessly, so manifests can
// be re-read and diffed programmatically.
type SpanNode struct {
	// Name is the span's phase name.
	Name string `json:"name"`
	// StartNs is the span's start offset from the run's start.
	StartNs int64 `json:"start_ns"`
	// DurNs is the span's duration (or its duration so far, for spans still
	// open at snapshot time).
	DurNs int64 `json:"dur_ns"`
	// WorkerBusyNs is per-worker busy time inside the span, indexed by
	// worker; empty for serial spans.
	WorkerBusyNs []int64 `json:"worker_busy_ns,omitempty"`
	// Done and Total are the span's unit-progress counts (see Span.SetTotal);
	// both 0 when the span carries no unit notion.
	Done  int64 `json:"done,omitempty"`
	Total int64 `json:"total,omitempty"`
	// EtaNs linearly extrapolates the remaining wall time of a still-open
	// span from its progress so far (dur · (total−done)/done); 0 for ended
	// spans, spans without progress, or spans that have completed no units
	// yet.
	EtaNs int64 `json:"eta_ns,omitempty"`
	// Ended reports whether the span's duration is final (End was called) or
	// still growing at snapshot time.
	Ended bool `json:"ended,omitempty"`
	// Children are the nested spans in creation order.
	Children []*SpanNode `json:"children,omitempty"`
}

// node snapshots the span (and recursively its children) relative to the
// run start origin; now supplies the duration of still-open spans.
func (s *Span) node(origin, now time.Time) *SpanNode {
	s.mu.Lock()
	n := &SpanNode{
		Name:    s.name,
		StartNs: s.start.Sub(origin).Nanoseconds(),
		Ended:   s.ended,
	}
	if s.ended {
		n.DurNs = s.dur.Nanoseconds()
	} else {
		n.DurNs = now.Sub(s.start).Nanoseconds()
	}
	n.Done, n.Total = s.done.Load(), s.total.Load()
	if !s.ended && n.Done > 0 && n.Total > n.Done {
		n.EtaNs = int64(float64(n.DurNs) * float64(n.Total-n.Done) / float64(n.Done))
	}
	if len(s.workerBusy) > 0 {
		n.WorkerBusyNs = make([]int64, len(s.workerBusy))
		for i, d := range s.workerBusy {
			n.WorkerBusyNs[i] = d.Nanoseconds()
		}
	}
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, c := range children {
		n.Children = append(n.Children, c.node(origin, now))
	}
	return n
}
