package obs

import "sync/atomic"

// CounterShards is the fixed number of accumulation cells per counter —
// the same power-of-two shard discipline as internal/par's Shards
// (DESIGN.md §7): worker w adds into cell w mod CounterShards, so any
// worker count up to the shard count runs contention-free, and reads merge
// the cells. The constant is restated rather than aliased to par.Shards so
// the obs data structures read self-contained (obs imports par only for
// the SlotObserver seam in cli.go); a unit test pins the two equal.
const CounterShards = 16

// counterCell is one shard of a Counter, padded out to 128 bytes — two
// 64-byte cache lines, so adjacent cells never share a line even under the
// adjacent-line prefetcher — to keep concurrent workers from false
// sharing.
type counterCell struct {
	n atomic.Int64
	_ [120]byte
}

// Counter is a monotonic (well-behaved callers only add non-negative
// deltas, though negative deltas are not rejected) event counter sharded
// across CounterShards padded atomic cells. A nil Counter is the disabled
// state: Add and AddAt no-op; Value reports 0.
//
// Kernels running under par.Run should use AddAt with their worker index,
// which lands each worker on a stable cell; single-goroutine callers use
// Add, which is AddAt(0, n).
type Counter struct {
	cells [CounterShards]counterCell
}

// Add accumulates n into shard 0. Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.cells[0].n.Add(n)
}

// AddAt accumulates n into worker w's shard (w mod CounterShards; negative
// w is treated as 0). Nil-safe.
func (c *Counter) AddAt(w int, n int64) {
	if c == nil {
		return
	}
	if w < 0 {
		w = 0
	}
	c.cells[w&(CounterShards-1)].n.Add(n)
}

// Value merges the shards. It is safe to call concurrently with writers;
// the result is a consistent sum of everything that completed before the
// call and an arbitrary subset of concurrent adds. A nil Counter reads 0.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].n.Load()
	}
	return sum
}

// Gauge is an atomically-updated level: last write wins (Set), or a
// running maximum (SetMax). Gauges are for values observed occasionally —
// peak heap, resolved worker counts — so they are a single cell, not
// sharded. A nil Gauge is the disabled state.
type Gauge struct {
	n atomic.Int64
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.n.Store(v)
}

// SetMax raises the gauge to v if v is larger. Nil-safe.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.n.Load()
		if v <= cur || g.n.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the gauge; a nil Gauge reads 0.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.n.Load()
}
