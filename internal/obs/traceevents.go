package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// The Chrome trace-event exporter renders a manifest — span tree, flight
// events, final counters — as a JSON Array Format timeline that Perfetto
// and chrome://tracing load directly (-trace-events). The mapping
// (DESIGN.md §11):
//
//   - Spans become complete ("X") events on thread 0 ("main"). X events
//     carry their duration, so concurrent children (a parallel sweep's
//     per-ratio spans) need no B/E nesting discipline.
//   - Worker-slot runs (EvSlotBegin/EvSlotEnd, reported by par.Run and
//     par.Blocks) become duration B/E pairs on thread slot+1, one track
//     per worker slot — stride imbalance is visible as ragged track ends.
//   - Per-span worker busy stretches (EvWorkerBusy) become X events on the
//     worker's track, named after the span.
//   - Point events (direction switches, batch boundaries, rewire flushes,
//     PQ builds, sampler ticks, quality recordings, panics) become instant
//     ("i") events on their slot's track; rewire flushes, sampler ticks and
//     quality recordings additionally feed counter ("C") tracks.
//   - Final counter values land as one "C" sample each at the timeline's
//     end, and thread_name metadata labels every track.
//
// Timestamps are microseconds (the format's unit) relative to the run
// start.

// traceEvent is one Chrome trace-event record; the field subset the
// Perfetto JSON importer understands.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the exporter's top-level document (JSON Object Format).
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// usec converts a nanosecond offset to trace-event microseconds.
func usec(ns int64) float64 { return float64(ns) / 1e3 }

// spanXEvents flattens the span tree into X events on thread 0.
func spanXEvents(n *SpanNode, out []traceEvent) []traceEvent {
	if n == nil {
		return out
	}
	out = append(out, traceEvent{
		Name: n.Name,
		Ph:   "X",
		TS:   usec(n.StartNs),
		Dur:  usec(n.DurNs),
		PID:  1,
		TID:  0,
		Cat:  "span",
	})
	for _, c := range n.Children {
		out = spanXEvents(c, out)
	}
	return out
}

// WriteTraceEvents renders the manifest as a Chrome trace-event JSON
// document on w.
func WriteTraceEvents(w io.Writer, m *Manifest) error {
	if m == nil {
		return fmt.Errorf("obs: no manifest to export")
	}
	var evs []traceEvent
	evs = spanXEvents(m.Spans, evs)

	// Track which worker tids appear, for thread_name metadata.
	tids := map[int]bool{0: true}
	var endNs int64
	if m.Spans != nil {
		endNs = m.Spans.StartNs + m.Spans.DurNs
	}
	for _, e := range m.FlightEvents {
		if e.TSNs > endNs {
			endNs = e.TSNs
		}
		tid := 0
		if e.Slot >= 0 {
			tid = e.Slot + 1
		}
		tids[tid] = true
		switch e.Kind {
		case EvSpanBegin.String(), EvSpanEnd.String():
			// The span tree already rendered these as X events.
		case EvSlotBegin.String():
			evs = append(evs, traceEvent{
				Name: "par.slot", Ph: "B", TS: usec(e.TSNs), PID: 1, TID: tid, Cat: "slot",
				Args: map[string]any{"workers": e.Arg},
			})
		case EvSlotEnd.String():
			evs = append(evs, traceEvent{
				Name: "par.slot", Ph: "E", TS: usec(e.TSNs), PID: 1, TID: tid, Cat: "slot",
			})
		case EvWorkerBusy.String():
			// Stamped at the stretch's end with its length as the payload.
			start := e.TSNs - e.Arg
			if start < 0 {
				start = 0
			}
			evs = append(evs, traceEvent{
				Name: e.Name, Ph: "X", TS: usec(start), Dur: usec(e.Arg), PID: 1, TID: tid, Cat: "busy",
			})
		default:
			evs = append(evs, traceEvent{
				Name: e.Kind, Ph: "i", TS: usec(e.TSNs), PID: 1, TID: tid, Cat: "event", S: "t",
				Args: map[string]any{"name": e.Name, "arg": e.Arg},
			})
			switch e.Kind {
			case EvRewireFlush.String():
				evs = append(evs, traceEvent{
					Name: "crr.rewire_attempts", Ph: "C", TS: usec(e.TSNs), PID: 1, TID: 0,
					Args: map[string]any{"attempts": e.Arg},
				})
			case EvSamplerTick.String():
				evs = append(evs, traceEvent{
					Name: "heap_alloc_bytes", Ph: "C", TS: usec(e.TSNs), PID: 1, TID: 0,
					Args: map[string]any{"bytes": e.Arg},
				})
			case EvQuality.String():
				// One counter track per quality metric, so quality
				// inflections line up with the worker tracks. The flight
				// payload is micro-units; render natural units.
				evs = append(evs, traceEvent{
					Name: "quality." + e.Name, Ph: "C", TS: usec(e.TSNs), PID: 1, TID: 0,
					Args: map[string]any{"value": float64(e.Arg) / 1e6},
				})
			}
		}
	}

	// Final counter values, one C sample each at the end of the timeline so
	// the run's totals are readable off the counter tracks.
	counterNames := make([]string, 0, len(m.Counters))
	for name := range m.Counters {
		counterNames = append(counterNames, name)
	}
	sort.Strings(counterNames)
	for _, name := range counterNames {
		evs = append(evs, traceEvent{
			Name: name, Ph: "C", TS: usec(endNs), PID: 1, TID: 0,
			Args: map[string]any{"value": m.Counters[name]},
		})
	}

	// Stable timestamp order: the trace-event spec wants non-decreasing ts,
	// and a stable sort keeps each track's B/E pairs ordered.
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })

	// Balance B/E pairs per track: a wrapped flight ring can drop a begin
	// whose end survived (or vice versa), and importers reject unbalanced
	// duration events. Drop orphan Es, close dangling Bs at the timeline end.
	depth := map[int]int{}
	balanced := evs[:0]
	for _, e := range evs {
		switch e.Ph {
		case "B":
			depth[e.TID]++
		case "E":
			if depth[e.TID] == 0 {
				continue
			}
			depth[e.TID]--
		}
		balanced = append(balanced, e)
	}
	evs = balanced
	for tid, d := range depth {
		for ; d > 0; d-- {
			evs = append(evs, traceEvent{Name: "par.slot", Ph: "E", TS: usec(endNs), PID: 1, TID: tid, Cat: "slot"})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })

	// Metadata events name the tracks (ts-less, prepended after the sort so
	// they stay first).
	meta := make([]traceEvent, 0, len(tids))
	tidList := make([]int, 0, len(tids))
	for tid := range tids {
		tidList = append(tidList, tid)
	}
	sort.Ints(tidList)
	for _, tid := range tidList {
		name := "main"
		if tid > 0 {
			name = fmt.Sprintf("worker %d", tid-1)
		}
		meta = append(meta, traceEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": name},
		})
	}
	evs = append(meta, evs...)

	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// writeTraceEventsFile writes the manifest's trace-event rendering to path,
// the Session.Close half of -trace-events.
func writeTraceEventsFile(path string, m *Manifest) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: creating trace-events file: %w", err)
	}
	if err := WriteTraceEvents(f, m); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: writing trace-events file: %w", err)
	}
	return nil
}
