package obs

import (
	"io"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"edgeshed/internal/par"
)

// TestQualityProbeRecord pins the probe surface: latest-value gauge,
// direction spelling, timeline accumulation, and the zero-ratio omission.
func TestQualityProbeRecord(t *testing.T) {
	r := New("test")
	d := r.Quality("crr.delta", DirLower)
	h := r.Root().Quality("crr.headroom.theorem1", DirHigher)
	i := r.Quality("crr.kept_edges", DirInfo)

	if _, ok := d.Value(); ok {
		t.Error("unrecorded probe reports a value")
	}
	if r.QualityValues() != nil {
		t.Errorf("QualityValues before any record = %v, want nil", r.QualityValues())
	}

	d.Record(0.5, 120)
	d.RecordAt(3, 0.5, 80)
	h.Record(0.5, 2.25)
	i.Record(0, 4096)

	if v, ok := d.Value(); !ok || v != 80 {
		t.Errorf("delta probe Value = (%v, %v), want (80, true)", v, ok)
	}
	want := map[string]float64{
		"crr.delta":             80,
		"crr.headroom.theorem1": 2.25,
		"crr.kept_edges":        4096,
	}
	if got := r.QualityValues(); !reflect.DeepEqual(got, want) {
		t.Errorf("QualityValues = %v, want %v", got, want)
	}

	pts := r.QualityPoints()
	if len(pts) != 4 {
		t.Fatalf("QualityPoints length = %d, want 4", len(pts))
	}
	for _, pt := range pts {
		switch pt.Metric {
		case "crr.delta":
			if pt.Better != "lower" || pt.Ratio != 0.5 {
				t.Errorf("delta point = %+v", pt)
			}
		case "crr.headroom.theorem1":
			if pt.Better != "higher" {
				t.Errorf("headroom point = %+v", pt)
			}
		case "crr.kept_edges":
			if pt.Better != "info" || pt.Ratio != 0 {
				t.Errorf("info point = %+v", pt)
			}
		default:
			t.Errorf("unexpected metric %q", pt.Metric)
		}
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].OffsetNs < pts[i-1].OffsetNs {
			t.Errorf("timeline not offset-ordered: %+v after %+v", pts[i], pts[i-1])
		}
	}
}

// TestQualityProbeSameNameShared pins that repeated lookups of one metric
// return the same probe, so recordings merge, and that the first
// registration's direction wins.
func TestQualityProbeSameNameShared(t *testing.T) {
	r := New("test")
	a := r.Quality("m", DirLower)
	b := r.Quality("m", DirHigher)
	if a != b {
		t.Fatal("same-name probes are distinct instances")
	}
	b.Record(0, 7)
	if pts := r.QualityPoints(); len(pts) != 1 || pts[0].Better != "lower" {
		t.Errorf("points = %+v, want one 'lower' point", pts)
	}
}

// TestQualityFlightEvents pins the third emission surface: every recording
// lands an EvQuality event carrying the metric name and the micro-scaled
// value.
func TestQualityFlightEvents(t *testing.T) {
	r := New("test")
	r.Quality("bm2.matching_weight", DirHigher).RecordAt(2, 0.3, 1.5)
	var got []Event
	for _, e := range r.Flight().Events() {
		if e.Kind == "quality" {
			got = append(got, e)
		}
	}
	if len(got) != 1 {
		t.Fatalf("quality flight events = %d, want 1", len(got))
	}
	if got[0].Name != "bm2.matching_weight" || got[0].Arg != 1_500_000 || got[0].Slot != 2 {
		t.Errorf("quality event = %+v, want name=bm2.matching_weight arg=1500000 slot=2", got[0])
	}
}

// TestQualityConcurrentRecords drives probes from parallel workers — the
// Sweep shape — under -race (make race), checking nothing tears and every
// recording lands in the timeline.
func TestQualityConcurrentRecords(t *testing.T) {
	r := New("test")
	const workers, per = 8, 50
	par.Run(workers, func(w int) {
		p := r.Quality("m", DirLower)
		for i := 0; i < per; i++ {
			p.RecordAt(w, 0.5, float64(i))
		}
	})
	if pts := r.QualityPoints(); len(pts) != workers*per {
		t.Fatalf("timeline length = %d, want %d", len(pts), workers*per)
	}
	if _, ok := r.Quality("m", DirLower).Value(); !ok {
		t.Fatal("no latest value after concurrent records")
	}
}

// TestQualityMetricsExposition pins the /metrics rendering: quality gauges
// as edgeshed_quality_* families with HELP and TYPE lines.
func TestQualityMetricsExposition(t *testing.T) {
	r := New("test")
	r.Quality("crr.headroom.theorem1", DirHigher).Record(0.5, 2.5)
	srv := httptest.NewServer(NewDebugHandler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"# HELP edgeshed_quality_crr_headroom_theorem1 ",
		"# TYPE edgeshed_quality_crr_headroom_theorem1 gauge",
		"edgeshed_quality_crr_headroom_theorem1 2.5",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestQualityManifestRoundTrip pins the manifest serialization of the
// quality timeline and the git_commit stamp.
func TestQualityManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		Command:   "shed",
		GitCommit: "abc1234",
		Quality: []QualityPoint{
			{OffsetNs: 10, Metric: "crr.delta", Ratio: 0.5, Value: 80, Better: "lower"},
			{OffsetNs: 20, Metric: "crr.headroom.theorem1", Ratio: 0.5, Value: 2.25, Better: "higher"},
		},
	}
	path := filepath.Join(t.TempDir(), "m.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.GitCommit != "abc1234" {
		t.Errorf("GitCommit = %q", got.GitCommit)
	}
	if !reflect.DeepEqual(got.Quality, m.Quality) {
		t.Errorf("quality timeline did not round-trip:\n got %+v\nwant %+v", got.Quality, m.Quality)
	}
}

// TestDirtyCommit pins the dirty-worktree stamp vocabulary on forged envs,
// the satellite's cross-run hygiene check.
func TestDirtyCommit(t *testing.T) {
	if !DirtyCommit("abc1234-dirty") || DirtyCommit("abc1234") || DirtyCommit("") {
		t.Error("DirtyCommit misclassifies")
	}
	dirty := &Env{GitCommit: "abc1234-dirty"}
	clean := &Env{GitCommit: "abc1234"}
	var unrecorded *Env
	if !dirty.Dirty() || clean.Dirty() || unrecorded.Dirty() {
		t.Error("Env.Dirty misclassifies")
	}
}

// TestQualityDirString pins the manifest spelling of each direction.
func TestQualityDirString(t *testing.T) {
	for dir, want := range map[QualityDir]string{DirInfo: "info", DirLower: "lower", DirHigher: "higher", QualityDir(99): "info"} {
		if got := dir.String(); got != want {
			t.Errorf("QualityDir(%d).String() = %q, want %q", dir, got, want)
		}
	}
}

// TestTraceEventsQualityCounterTrack pins the Perfetto rendering: an
// EvQuality flight event becomes both an instant event and a quality.*
// counter-track sample in natural units.
func TestTraceEventsQualityCounterTrack(t *testing.T) {
	m := &Manifest{
		Command: "shed",
		Spans:   &SpanNode{Name: "shed", DurNs: 1000, Ended: true},
		FlightEvents: []Event{
			{TSNs: 500, Slot: 1, Kind: "quality", Name: "crr.delta", Arg: 2_500_000},
		},
	}
	var sb strings.Builder
	if err := WriteTraceEvents(&sb, m); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"quality.crr.delta"`) {
		t.Errorf("trace export missing the quality counter track:\n%s", out)
	}
	if !strings.Contains(out, `"value":2.5`) {
		t.Errorf("trace export did not rescale micro-units:\n%s", out)
	}
}
