package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/metrics"
)

// Manifest is the JSON run document a cmd binary emits with -metrics: the
// run's identity (command, toolchain, host shape), its inputs (graph
// size, options, seed, workers), and its observed behaviour (span tree,
// counters, gauges, memory deltas, selected runtime metrics). Manifests
// are written next to the existing BENCH_*.json trajectory files so
// experiment runs become diffable artifacts.
type Manifest struct {
	// Command is the emitting binary's name (e.g. "shed").
	Command string `json:"command"`
	// GoVersion is runtime.Version() of the emitting binary.
	GoVersion string `json:"go_version"`
	// GOOS and GOARCH identify the platform.
	GOOS string `json:"goos"`
	// GOARCH is the architecture half of the platform pair.
	GOARCH string `json:"goarch"`
	// CPUs is runtime.NumCPU at start.
	CPUs int `json:"cpus"`
	// GoMaxProcs is runtime.GOMAXPROCS at start.
	GoMaxProcs int `json:"gomaxprocs"`
	// StartUTC is the run's wall-clock start in RFC 3339 form.
	StartUTC string `json:"start_utc"`
	// WallNs is the run's total wall-clock duration.
	WallNs int64 `json:"wall_ns"`
	// Seed is the run's random seed, when the command has one.
	Seed int64 `json:"seed"`
	// Workers is the requested worker count, when the command has one
	// (0 = GOMAXPROCS, matching the -workers flag convention).
	Workers int `json:"workers"`
	// Graph records the input graph's size, when the command loads or
	// generates one.
	Graph *GraphInfo `json:"graph,omitempty"`
	// Options maps every flag of the run to its final value, so a manifest
	// fully identifies how to reproduce the run.
	Options map[string]string `json:"options,omitempty"`
	// Spans is the run's phase-span tree.
	Spans *SpanNode `json:"spans,omitempty"`
	// Counters holds every counter's merged final value.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Gauges holds every gauge's final value.
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// Histograms holds every histogram's merged bucket snapshot, the
	// distributions cmd/obsdiff compares by p50/p99.
	Histograms map[string]*HistogramSnapshot `json:"histograms,omitempty"`
	// FlightEvents is the flight recorder's tail — the last few thousand
	// structured events in timestamp order (DESIGN.md §11). Present whenever
	// a Recorder was live, and the payload of a panic dump.
	FlightEvents []Event `json:"flight_events,omitempty"`
	// Panic carries the panic value's rendering when the manifest was dumped
	// by Run's recover hook rather than a clean Session.Close.
	Panic string `json:"panic,omitempty"`
	// PanicStack is the panicking goroutine's stack, alongside Panic.
	PanicStack string `json:"panic_stack,omitempty"`
	// Mem is the before/after memory accounting of the run.
	Mem *MemSnapshot `json:"mem,omitempty"`
	// RuntimeMetrics holds a curated set of runtime/metrics samples taken
	// at the end of the run, keyed by metric name.
	RuntimeMetrics map[string]float64 `json:"runtime_metrics,omitempty"`
	// Timeline is the background runtime sampler's timestamped series of
	// heap/GC/goroutine observations (-sample-interval); absent when the
	// sampler was off. Where Mem says how much a run allocated, the timeline
	// says when.
	Timeline []RuntimeSample `json:"runtime_timeline,omitempty"`
	// Quality is the run's quality-probe timeline (DESIGN.md §12): every
	// Probe recording in offset order, the raw material of cmd/obsreport's
	// cross-run trend registry. Absent when no probe recorded.
	Quality []QualityPoint `json:"quality_timeline,omitempty"`
	// GitCommit is the repository HEAD the emitting binary ran from, with a
	// "-dirty" suffix when the worktree was modified; empty outside a git
	// checkout.
	GitCommit string `json:"git_commit,omitempty"`
}

// GraphInfo is the input graph's size as recorded in a Manifest.
type GraphInfo struct {
	// Nodes is |V|.
	Nodes int `json:"nodes"`
	// Edges is |E|.
	Edges int `json:"edges"`
}

// MemSnapshot is the before/after GC-level memory accounting of one run,
// taken from runtime.ReadMemStats at session start and close.
type MemSnapshot struct {
	// HeapAllocStartBytes is the live heap at session start.
	HeapAllocStartBytes uint64 `json:"heap_alloc_start_bytes"`
	// HeapAllocEndBytes is the live heap at session close.
	HeapAllocEndBytes uint64 `json:"heap_alloc_end_bytes"`
	// PeakHeapSysBytes is the high-water heap reservation (MemStats.HeapSys
	// at close; the runtime never shrinks it, so it is the run's peak).
	PeakHeapSysBytes uint64 `json:"peak_heap_sys_bytes"`
	// TotalAllocBytes is the bytes allocated during the session (delta of
	// MemStats.TotalAlloc).
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	// Mallocs is the heap objects allocated during the session.
	Mallocs uint64 `json:"mallocs"`
	// GCCycles is the completed GC cycles during the session.
	GCCycles uint32 `json:"gc_cycles"`
	// GCPauseTotalNs is the stop-the-world pause time accumulated during
	// the session.
	GCPauseTotalNs uint64 `json:"gc_pause_total_ns"`
}

// memDelta builds the snapshot from the session's start and end MemStats.
func memDelta(before, after *runtime.MemStats) *MemSnapshot {
	return &MemSnapshot{
		HeapAllocStartBytes: before.HeapAlloc,
		HeapAllocEndBytes:   after.HeapAlloc,
		PeakHeapSysBytes:    after.HeapSys,
		TotalAllocBytes:     after.TotalAlloc - before.TotalAlloc,
		Mallocs:             after.Mallocs - before.Mallocs,
		GCCycles:            after.NumGC - before.NumGC,
		GCPauseTotalNs:      after.PauseTotalNs - before.PauseTotalNs,
	}
}

// runtimeMetricNames is the curated runtime/metrics set recorded in
// manifests: heap shape, allocation volume, GC effort and scheduler
// width. Metrics a toolchain does not expose are silently skipped, so the
// list can name newer metrics without breaking older toolchains.
var runtimeMetricNames = []string{
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/heap/allocs:bytes",
	"/gc/heap/goal:bytes",
	"/gc/cycles/total:gc-cycles",
	"/sched/gomaxprocs:threads",
	"/sched/goroutines:goroutines",
}

// captureRuntimeMetrics samples the curated metric set, converting uint64
// and float64 kinds to float64; unsupported kinds and absent metrics are
// skipped.
func captureRuntimeMetrics() map[string]float64 {
	samples := make([]metrics.Sample, len(runtimeMetricNames))
	for i, name := range runtimeMetricNames {
		samples[i].Name = name
	}
	metrics.Read(samples)
	out := make(map[string]float64, len(samples))
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			out[s.Name] = float64(s.Value.Uint64())
		case metrics.KindFloat64:
			out[s.Name] = s.Value.Float64()
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// WriteFile marshals the manifest with indentation, verifies the result
// parses back (so a malformed manifest fails the producing run instead of
// a later consumer), and writes it to path.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshaling manifest: %w", err)
	}
	data = append(data, '\n')
	var check Manifest
	if err := json.Unmarshal(data, &check); err != nil {
		return fmt.Errorf("obs: manifest does not round-trip: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadManifest parses a manifest file, the consumer-side counterpart of
// WriteFile used by tests and the CI smoke check.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("obs: manifest %s is empty", path)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: parsing manifest %s: %w", path, err)
	}
	if m.Command == "" {
		return nil, fmt.Errorf("obs: manifest %s has no command", path)
	}
	return &m, nil
}
