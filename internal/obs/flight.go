package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder is the third obs tier (DESIGN.md §11): where spans
// time phases and counters total events, the flight recorder remembers the
// *last few thousand individual events* — span begins and ends, MS-BFS
// direction switches and batch boundaries, CRR rewire-chunk flushes, PQ
// builds, sampler ticks, worker-slot lifecycles — each timestamped and
// tagged with the worker slot that produced it. The tail of that stream is
// what explains a slow run after the fact: which worker stalled, when the
// direction switch happened, how the rewire chunks spaced out.
//
// Design constraints, in order:
//
//   - Wait-free on the hot path. Events land in fixed-capacity per-slot
//     rings; a write is one atomic fetch-add to claim a cell plus plain
//     atomic stores into it (a seqlock per cell, no CAS loops, no mutexes).
//     Workers on different slots never touch the same cache lines.
//   - Free when disabled. A nil *Flight and nil *Marker no-op without
//     allocating, pinned by TestDisabledPathAllocatesNothing alongside the
//     span/counter/histogram paths.
//   - Never perturbs results. Recording reads kernel state, never feeds it;
//     the obs-on/off bit-identity regressions cover the recorder too.
//
// Readers (the manifest dump, the /events tail endpoint, the panic hook in
// Run) snapshot cells seqlock-style: a cell whose sequence word changed
// mid-read is simply dropped, so concurrent dumps are race-free and
// lock-free both ways.

// EventKind enumerates the flight-recorder event vocabulary.
type EventKind uint8

const (
	// EvSpanBegin and EvSpanEnd bracket a phase span's lifetime; Name is the
	// span name. Emitted automatically by Span.Start/End.
	EvSpanBegin EventKind = 1 + iota
	// EvSpanEnd closes the span opened by the matching EvSpanBegin.
	EvSpanEnd
	// EvWorkerBusy records one worker's busy stretch inside a span: emitted
	// at the stretch's end with Arg = busy nanoseconds, Name = span name.
	EvWorkerBusy
	// EvSlotBegin and EvSlotEnd bracket one worker slot's run inside a
	// par.Run/par.Blocks region (Arg = the region's worker count). They are
	// how par reports slot identity to obs — the per-worker tracks of the
	// trace-event export are built from them.
	EvSlotBegin
	// EvSlotEnd closes the slot run opened by the matching EvSlotBegin.
	EvSlotEnd
	// EvDirSwitch is an MS-BFS direction switch (Arg = the level at which
	// the traversal flipped).
	EvDirSwitch
	// EvBatch is an MS-BFS batch boundary (Arg = the batch's occupancy:
	// how many source bits it carried).
	EvBatch
	// EvRewireFlush is a CRR Phase 2 counter flush (Arg = cumulative
	// attempts in the flushing reduction so far).
	EvRewireFlush
	// EvPQBuild is a priority-queue (re)build (Arg = entries pushed).
	EvPQBuild
	// EvSamplerTick is one background runtime-sampler observation (Arg =
	// live heap bytes).
	EvSamplerTick
	// EvPanic is recorded by Run's recover hook just before the panic
	// manifest is dumped; Name carries the panic value's rendering.
	EvPanic
	// EvQuality is one quality-probe recording (Name = the probe's metric
	// name, Arg = the value in micro-units), so quality inflections line up
	// with the per-worker tracks of the trace export.
	EvQuality
)

// String returns the kind's manifest/JSON spelling.
func (k EventKind) String() string {
	switch k {
	case EvSpanBegin:
		return "span_begin"
	case EvSpanEnd:
		return "span_end"
	case EvWorkerBusy:
		return "worker_busy"
	case EvSlotBegin:
		return "slot_begin"
	case EvSlotEnd:
		return "slot_end"
	case EvDirSwitch:
		return "dir_switch"
	case EvBatch:
		return "batch"
	case EvRewireFlush:
		return "rewire_flush"
	case EvPQBuild:
		return "pq_build"
	case EvSamplerTick:
		return "sampler_tick"
	case EvPanic:
		return "panic"
	case EvQuality:
		return "quality"
	}
	return "unknown"
}

const (
	// FlightSlots is the number of per-worker rings, matching the
	// CounterShards/par.Shards discipline: worker w records into ring
	// w mod FlightSlots, so any worker count up to the shard count writes
	// contention-free. One extra ring (index FlightSlots) holds control-
	// plane events — spans, sampler ticks, panics — recorded with slot -1.
	FlightSlots = CounterShards

	// flightRingCap is each ring's fixed capacity (a power of two). With 17
	// rings of 1024 cells at 32 bytes each, an enabled recorder holds about
	// half a megabyte of ring memory and remembers the last ~17k events.
	flightRingCap = 1 << 10
)

// Event is the serialized form of one flight-recorder event, as embedded in
// manifests ("flight_events") and served by /events.
type Event struct {
	// TSNs is the event's offset from the recorder's start, from the
	// monotonic clock.
	TSNs int64 `json:"ts_ns"`
	// Slot is the worker slot that recorded the event; -1 for control-plane
	// events (spans, sampler ticks, panics).
	Slot int `json:"slot"`
	// Kind is the EventKind spelling ("span_begin", "dir_switch", ...).
	Kind string `json:"kind"`
	// Name is the event's interned label (span name, kernel name); empty
	// for events that need none.
	Name string `json:"name,omitempty"`
	// Arg is the event's kind-specific payload (see the EventKind docs).
	Arg int64 `json:"arg,omitempty"`
}

// flightCell is one ring cell: a seqlock-style sequence word plus the event
// payload, all plain atomics so writers stay wait-free and concurrent
// readers are race-free. seq holds the absolute 1-based claim index while
// the cell is valid and 0 while it is being rewritten; a reader that sees
// either a mismatched or changed seq drops the cell.
type flightCell struct {
	seq  atomic.Uint64
	ts   atomic.Int64
	meta atomic.Uint64 // kind<<48 | (slot+1)<<32 | nameID
	arg  atomic.Int64
}

// flightRing is one slot's fixed-capacity event ring.
type flightRing struct {
	pos   atomic.Uint64
	cells []flightCell
}

// record claims the next cell and fills it. Wait-free: one fetch-add, five
// stores.
func (r *flightRing) record(ts int64, meta uint64, arg int64) {
	idx := r.pos.Add(1)
	c := &r.cells[(idx-1)&(flightRingCap-1)]
	c.seq.Store(0)
	c.ts.Store(ts)
	c.meta.Store(meta)
	c.arg.Store(arg)
	c.seq.Store(idx)
}

// Flight is one run's flight recorder: FlightSlots per-worker rings plus a
// control ring, and the name-intern table Markers resolve against. A nil
// Flight is the disabled state — every method no-ops without allocating.
type Flight struct {
	origin time.Time

	mu    sync.Mutex
	names []string
	ids   map[string]uint32

	rings [FlightSlots + 1]flightRing
}

// newFlight builds an enabled recorder's flight rings, timestamping events
// relative to origin.
func newFlight(origin time.Time) *Flight {
	f := &Flight{origin: origin, ids: make(map[string]uint32)}
	// nameID 0 is the empty name, so markers without a label skip interning.
	f.names = append(f.names, "")
	f.ids[""] = 0
	for i := range f.rings {
		f.rings[i].cells = make([]flightCell, flightRingCap)
	}
	return f
}

// Flight returns the recorder's flight recorder; nil on a nil Recorder, the
// handle whose no-op methods disabled kernels call for free.
func (r *Recorder) Flight() *Flight {
	if r == nil {
		return nil
	}
	return r.flight
}

// intern resolves a label to its stable id, registering it on first use.
// Takes the intern mutex: call once per Marker or Span, never per event.
func (f *Flight) intern(name string) uint32 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if id, ok := f.ids[name]; ok {
		return id
	}
	id := uint32(len(f.names))
	f.names = append(f.names, name)
	f.ids[name] = id
	return id
}

// lookupName resolves an interned id back to its label.
func (f *Flight) lookupName(id uint32) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if int(id) < len(f.names) {
		return f.names[id]
	}
	return ""
}

// ringFor maps a worker slot onto its ring: slot s writes ring
// s mod FlightSlots, negative slots write the control ring.
func (f *Flight) ringFor(slot int) *flightRing {
	if slot < 0 {
		return &f.rings[FlightSlots]
	}
	return &f.rings[slot&(FlightSlots-1)]
}

// packMeta folds an event's kind, slot and name id into one atomic word.
// The slot is stored biased by one in 16 bits so -1 (control) packs as 0.
func packMeta(kind EventKind, slot int, nameID uint32) uint64 {
	return uint64(kind)<<48 | uint64(uint16(slot+1))<<32 | uint64(nameID)
}

// unpackMeta is packMeta's inverse.
func unpackMeta(meta uint64) (kind EventKind, slot int, nameID uint32) {
	return EventKind(meta >> 48), int(uint16(meta>>32)) - 1, uint32(meta)
}

// emit records one event. Nil-safe and wait-free; time.Since reads the
// monotonic clock without allocating.
func (f *Flight) emit(slot int, kind EventKind, nameID uint32, arg int64) {
	if f == nil {
		return
	}
	f.ringFor(slot).record(time.Since(f.origin).Nanoseconds(), packMeta(kind, slot, nameID), arg)
}

// Marker is a prepared event template: kind and interned name resolved up
// front (the mutex-taking half), leaving Emit wait-free for hot loops — the
// same fetch-the-handle-then-add discipline as Counter. A nil Marker (from
// a nil Flight or Span) no-ops without allocating.
type Marker struct {
	f      *Flight
	kind   EventKind
	nameID uint32
}

// Marker prepares an event template for kind with the given label. Nil-safe:
// a nil Flight returns a nil Marker.
func (f *Flight) Marker(kind EventKind, name string) *Marker {
	if f == nil {
		return nil
	}
	return &Marker{f: f, kind: kind, nameID: f.intern(name)}
}

// Emit records one event from worker slot (use -1 off the worker pool) with
// the kind-specific payload arg. Wait-free and nil-safe.
func (m *Marker) Emit(slot int, arg int64) {
	if m == nil {
		return
	}
	m.f.emit(slot, m.kind, m.nameID, arg)
}

// Marker returns an event template bound to the span's recorder, the handle
// kernels fetch before hot loops. Nil-safe: a nil Span returns a nil Marker.
func (s *Span) Marker(kind EventKind, name string) *Marker {
	if s == nil {
		return nil
	}
	return s.rec.Flight().Marker(kind, name)
}

// SlotBegin implements par.SlotObserver: par.Run and par.Blocks report each
// worker slot's start here, stamping the per-worker tracks of the trace
// export. Nil-safe so an uninstalled or disabled observer costs nothing.
func (f *Flight) SlotBegin(w, workers int) {
	f.emit(w, EvSlotBegin, 0, int64(workers))
}

// SlotEnd implements par.SlotObserver, closing the slot run SlotBegin
// opened.
func (f *Flight) SlotEnd(w, workers int) {
	f.emit(w, EvSlotEnd, 0, int64(workers))
}

// Events snapshots every ring's currently-valid cells, decoded and merged
// in timestamp order — the flight recorder's tail, at most
// (FlightSlots+1)·flightRingCap events. Safe to call while writers are
// still emitting: cells overwritten mid-read fail their seqlock check and
// are dropped rather than returned torn. A nil Flight returns nil.
func (f *Flight) Events() []Event {
	if f == nil {
		return nil
	}
	var out []Event
	for ri := range f.rings {
		r := &f.rings[ri]
		pos := r.pos.Load()
		lo := uint64(1)
		if pos > flightRingCap {
			lo = pos - flightRingCap + 1
		}
		for idx := lo; idx <= pos; idx++ {
			c := &r.cells[(idx-1)&(flightRingCap-1)]
			if c.seq.Load() != idx {
				continue // empty, torn, or already lapped
			}
			ts, meta, arg := c.ts.Load(), c.meta.Load(), c.arg.Load()
			if c.seq.Load() != idx {
				continue // overwritten while reading
			}
			kind, slot, nameID := unpackMeta(meta)
			out = append(out, Event{
				TSNs: ts,
				Slot: slot,
				Kind: kind.String(),
				Name: f.lookupName(nameID),
				Arg:  arg,
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TSNs < out[j].TSNs })
	return out
}
