// Package claims makes the reproduction self-verifying: it parses the
// plain-text results produced by cmd/experiments and checks the paper's
// qualitative claims against them — who wins, in which direction costs
// grow, whether theorem bounds hold. cmd/checkclaims turns any results file
// into a PASS/FAIL report.
package claims

import (
	"strconv"
	"strings"
)

// Table is one parsed results table.
type Table struct {
	// Title is the caption line(s) above the header, possibly empty.
	Title string
	// Headers are the column names.
	Headers []string
	// Rows are the data cells, aligned with Headers.
	Rows [][]string
}

// Cell returns the cell at (row, column name), with ok=false when the
// column is unknown or the row is ragged.
func (t *Table) Cell(row int, col string) (string, bool) {
	for i, h := range t.Headers {
		if h == col {
			if row < 0 || row >= len(t.Rows) || i >= len(t.Rows[row]) {
				return "", false
			}
			return t.Rows[row][i], true
		}
	}
	return "", false
}

// Float returns the cell parsed as a float; ok=false for missing cells and
// non-numeric markers like "-".
func (t *Table) Float(row int, col string) (float64, bool) {
	s, ok := t.Cell(row, col)
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// FindRow returns the index of the first row whose first cell equals key,
// or -1.
func (t *Table) FindRow(key string) int {
	for i, r := range t.Rows {
		if len(r) > 0 && r[0] == key {
			return i
		}
	}
	return -1
}

// Parse extracts all tables from a results file in the renderer's format:
// an optional title line, a header line, a full-width dashed rule, then one
// line per row, columns separated by runs of two or more spaces. Non-table
// content (series lines, prose) is ignored.
func Parse(text string) []Table {
	var tables []Table
	lines := strings.Split(text, "\n")
	for i := 0; i < len(lines); i++ {
		if !isRule(lines[i]) || i == 0 {
			continue
		}
		header := splitColumns(lines[i-1])
		if len(header) < 2 {
			continue
		}
		title := ""
		if i >= 2 && strings.TrimSpace(lines[i-2]) != "" && !isRule(lines[i-2]) {
			title = strings.TrimSpace(lines[i-2])
		}
		t := Table{Title: title, Headers: header}
		for j := i + 1; j < len(lines); j++ {
			row := strings.TrimRight(lines[j], " ")
			if strings.TrimSpace(row) == "" || isRule(row) {
				i = j
				break
			}
			cells := splitColumns(row)
			if len(cells) == 0 {
				i = j
				break
			}
			t.Rows = append(t.Rows, cells)
			i = j
		}
		if len(t.Rows) > 0 {
			tables = append(tables, t)
		}
	}
	return tables
}

// isRule reports whether a line is a dashed horizontal rule.
func isRule(line string) bool {
	line = strings.TrimSpace(line)
	if len(line) < 3 {
		return false
	}
	for _, r := range line {
		if r != '-' {
			return false
		}
	}
	return true
}

// splitColumns splits a rendered row on runs of two or more spaces.
func splitColumns(line string) []string {
	var cols []string
	for _, part := range strings.Split(line, "  ") {
		part = strings.TrimSpace(part)
		if part != "" {
			cols = append(cols, part)
		}
	}
	return cols
}

// TablesByTitle returns the tables whose title contains the substring.
func TablesByTitle(tables []Table, substr string) []Table {
	var out []Table
	for _, t := range tables {
		if strings.Contains(t.Title, substr) {
			out = append(out, t)
		}
	}
	return out
}
