package claims

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCommittedResultsSatisfyClaims re-checks every committed results file
// under results/: the repository's own records must never contradict the
// claims the README advertises.
func TestCommittedResultsSatisfyClaims(t *testing.T) {
	dir := filepath.Join("..", "..", "results")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("no committed results directory: %v", err)
	}
	checkedAny := false
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".txt" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		checkedAny = true
		for _, o := range Check(string(data)) {
			if o.Status == Fail {
				t.Errorf("%s: claim %s failed: %s", e.Name(), o.ID, o.Detail)
			}
		}
	}
	if !checkedAny {
		t.Skip("results directory empty")
	}
}
