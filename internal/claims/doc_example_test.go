package claims_test

import (
	"fmt"

	"edgeshed/internal/claims"
)

// ExampleCheck verifies a results fragment against the paper's claims.
func ExampleCheck() {
	const results = `Figure 4 (demo): CRR steps sweep
x   avg delta  time (s)
-----------------------
1   0.6312     0.003
10  0.3395     0.007
`
	for _, o := range claims.Check(results) {
		if o.ID == "fig4-rewiring-improves" {
			fmt.Println(o.Status, o.ID)
		}
	}
	// Output:
	// PASS fig4-rewiring-improves
}
