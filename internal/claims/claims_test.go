package claims

import (
	"strings"
	"testing"
)

const sampleResults = `Table III (ca-GrQc stand-in, |V|=163 |E|=483): reduction time (s)
p      UDS    CRR    BM2
--------------------------
0.900  0.008  0.003  0.000
0.500  0.013  0.003  0.000
0.100  0.016  0.003  0.000

Table VIII (ca-GrQc stand-in, |V|=163 |E|=483): utility of top-10%
p      UDS    CRR    BM2
--------------------------
0.900  0.938  1.000  1.000
0.300  0.312  0.938  0.750
0.100  0.125  0.688  0.562

Figure 4 (ca-GrQc, |V|=163 |E|=483, p=0.5): CRR steps sweep
x   avg delta  time (s)
-----------------------
1   0.6312     0.003
10  0.3395     0.007

Figure 5(a)-(b) (ca-GrQc stand-in): error vs bound
p      CRR err  CRR bound  BM2 err  BM2 bound
---------------------------------------------
0.500  0.3374   2.9632     0.5031   1.9816

method  TVD vs original (degree dist)
-------------------------------------
UDS     0.5061
CRR     0.2469
BM2     0.1815

Ablation 5 (ca-GrQc stand-in, |V|=163): CRR rewiring on/off
p      phase1-only delta  full CRR delta  improvement
-----------------------------------------------------
0.900  127.4000           59.8000         0.531

Headline claims (abstract): accuracy gain over UDS and time ratio
dataset      max CRR-UDS gain  max BM2-UDS gain  CRR/UDS time  BM2/UDS time
---------------------------------------------------------------------------
ca-GrQc      +62%              +44%              22%           1%

Streaming extension (email-Enron stand-in, |V|=1146 |E|=2215): one-pass shedding
p      method         delta     top-k utility  time (s)
-------------------------------------------------------
0.500  stream         474.0000  0.913          0.001
0.500  reservoir      787.0000  0.852          -
0.500  BM2 (offline)  477.0000  0.930          -
`

func TestParseSample(t *testing.T) {
	tables := Parse(sampleResults)
	if len(tables) != 8 {
		titles := make([]string, len(tables))
		for i, tb := range tables {
			titles[i] = tb.Title
		}
		t.Fatalf("parsed %d tables, want 8: %v", len(tables), titles)
	}
	t3 := TablesByTitle(tables, "Table III")
	if len(t3) != 1 {
		t.Fatalf("Table III not found")
	}
	if v, ok := t3[0].Float(t3[0].FindRow("0.900"), "UDS"); !ok || v != 0.008 {
		t.Errorf("Table III p=0.9 UDS = %v/%v, want 0.008", v, ok)
	}
	if _, ok := t3[0].Float(0, "NoSuchColumn"); ok {
		t.Error("unknown column returned ok")
	}
	if t3[0].FindRow("nope") != -1 {
		t.Error("FindRow found a missing key")
	}
}

func TestParseSkipsDashCells(t *testing.T) {
	tables := Parse(sampleResults)
	st := TablesByTitle(tables, "Streaming")
	if len(st) != 1 {
		t.Fatal("streaming table missing")
	}
	if _, ok := st[0].Float(1, "time (s)"); ok {
		t.Error(`"-" cell parsed as a float`)
	}
}

func TestCheckAllPassOnGoodResults(t *testing.T) {
	outcomes := Check(sampleResults)
	if len(outcomes) == 0 {
		t.Fatal("no outcomes")
	}
	for _, o := range outcomes {
		if o.Status == Fail {
			t.Errorf("%s failed on known-good results: %s", o.ID, o.Detail)
		}
		if o.Status == Skip && o.ID != "topk-degrades-with-p" {
			// All claims except none should find their data in the sample.
			t.Logf("note: %s skipped: %s", o.ID, o.Detail)
		}
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	// Corrupt the sample so UDS gets *faster* as p falls and CRR loses to
	// UDS at small p.
	bad := strings.Replace(sampleResults, "0.100  0.016  0.003  0.000", "0.100  0.001  0.003  0.000", 1)
	bad = strings.Replace(bad, "0.100  0.125  0.688  0.562", "0.100  0.925  0.688  0.562", 1)
	outcomes := Check(bad)
	wantFail := map[string]bool{"t3-uds-cost-grows": true, "topk-crr-beats-uds-small-p": true}
	for _, o := range outcomes {
		if wantFail[o.ID] && o.Status != Fail {
			t.Errorf("%s = %v, want FAIL", o.ID, o.Status)
		}
	}
}

const extensionResults = `Baselines (ca-GrQc stand-in, |V|=163, p=0.5): degree-preserving vs sampling
method          |E'|  delta     avg |dis|  top-k utility
--------------------------------------------------------
CRR             242   55.0000   0.3374     0.938
BM2             221   82.0000   0.5031     0.750
Random          242   153.0000  0.9387     0.938
ForestFire      242   314.0000  1.9264     0.750
SpanningForest  242   133.0000  0.8160     0.875
WeightedSample  242   170.0000  1.0429     0.812

Memory footprint (email-Enron stand-in, |V|=1146 |E|=2215, original 100.00 KiB)
p      CRR bytes  CRR saving  BM2 bytes  BM2 saving
---------------------------------------------------
0.500  55.00 KiB  47%         54.00 KiB  48%
0.100  15.00 KiB  86%         14.00 KiB  87%
`

func TestExtensionClaims(t *testing.T) {
	outcomes := Check(extensionResults)
	byID := map[string]Outcome{}
	for _, o := range outcomes {
		byID[o.ID] = o
	}
	for _, id := range []string{"baselines-degree-preserving-wins", "memory-savings-track-p"} {
		if got := byID[id].Status; got != Pass {
			t.Errorf("%s = %v (%s), want PASS", id, got, byID[id].Detail)
		}
	}
	// Corrupt the baselines so Random beats CRR.
	bad := strings.Replace(extensionResults, "CRR             242   55.0000", "CRR             242   255.0000", 1)
	for _, o := range Check(bad) {
		if o.ID == "baselines-degree-preserving-wins" && o.Status != Fail {
			t.Errorf("corrupted baselines not detected: %v", o.Status)
		}
	}
}

func TestParsePercent(t *testing.T) {
	tables := Parse(extensionResults)
	mem := TablesByTitle(tables, "Memory footprint")
	if len(mem) != 1 {
		t.Fatal("memory table missing")
	}
	if got := parsePercent(mem[0], mem[0].FindRow("0.500"), "CRR saving"); got != 47 {
		t.Errorf("parsePercent = %v, want 47", got)
	}
	if got := parsePercent(mem[0], -1, "CRR saving"); got != -1 {
		t.Errorf("parsePercent missing row = %v, want -1", got)
	}
}

func TestCheckSkipsOnEmptyInput(t *testing.T) {
	for _, o := range Check("") {
		if o.Status != Skip {
			t.Errorf("%s = %v on empty input, want SKIP", o.ID, o.Status)
		}
	}
}

func TestStatusString(t *testing.T) {
	if Pass.String() != "PASS" || Fail.String() != "FAIL" || Skip.String() != "SKIP" {
		t.Error("status strings wrong")
	}
	if Status(9).String() != "Status(9)" {
		t.Error("unknown status string wrong")
	}
}

func TestIsRule(t *testing.T) {
	if !isRule("-----") || isRule("--") || isRule("a---") || isRule("") {
		t.Error("isRule misclassifies")
	}
}
