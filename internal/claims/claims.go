package claims

import (
	"fmt"
	"strings"
)

// Status classifies a claim check.
type Status int

const (
	// Pass means the claim held in the parsed results.
	Pass Status = iota
	// Fail means the results contradict the claim.
	Fail
	// Skip means the results file lacks the tables the claim needs.
	Skip
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Pass:
		return "PASS"
	case Fail:
		return "FAIL"
	case Skip:
		return "SKIP"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Outcome is one checked claim.
type Outcome struct {
	// ID names the claim, e.g. "t3-uds-cost-grows".
	ID string
	// Description states the paper's claim being verified.
	Description string
	// Status is the verdict.
	Status Status
	// Detail explains failures and skips.
	Detail string
}

// Check parses a results file and verifies every registered claim.
func Check(text string) []Outcome {
	tables := Parse(text)
	var out []Outcome
	for _, c := range registry() {
		status, detail := c.check(tables)
		out = append(out, Outcome{ID: c.id, Description: c.desc, Status: status, Detail: detail})
	}
	return out
}

type claim struct {
	id    string
	desc  string
	check func([]Table) (Status, string)
}

func registry() []claim {
	return []claim{
		{
			"t3-uds-cost-grows",
			"Table III: UDS reduction time grows as p falls",
			func(ts []Table) (Status, string) {
				checked := 0
				for _, t := range TablesByTitle(ts, "Table III") {
					hi, okHi := t.Float(t.FindRow("0.900"), "UDS")
					lo, okLo := t.Float(t.FindRow("0.100"), "UDS")
					if !okHi || !okLo {
						continue // UDS skipped on this dataset
					}
					checked++
					if lo <= hi {
						return Fail, fmt.Sprintf("%s: UDS %.3fs at p=0.1 <= %.3fs at p=0.9", t.Title, lo, hi)
					}
				}
				if checked == 0 {
					return Skip, "no Table III with UDS columns"
				}
				return Pass, ""
			},
		},
		{
			"t3-bm2-fastest",
			"Table III: BM2 reduces faster than CRR at every p",
			func(ts []Table) (Status, string) {
				checked := 0
				for _, t := range TablesByTitle(ts, "Table III") {
					for row := range t.Rows {
						crr, ok1 := t.Float(row, "CRR")
						bm2, ok2 := t.Float(row, "BM2")
						if !ok1 || !ok2 {
							continue
						}
						checked++
						if bm2 > crr {
							return Fail, fmt.Sprintf("%s row %d: BM2 %.3fs > CRR %.3fs", t.Title, row, bm2, crr)
						}
					}
				}
				if checked == 0 {
					return Skip, "no Table III rows"
				}
				return Pass, ""
			},
		},
		{
			"topk-crr-beats-uds-small-p",
			"Tables VIII-IX: CRR's top-k utility beats UDS at p <= 0.3",
			func(ts []Table) (Status, string) {
				checked := 0
				for _, title := range []string{"Table VIII", "Table IX"} {
					for _, t := range TablesByTitle(ts, title) {
						for _, p := range []string{"0.300", "0.200", "0.100"} {
							row := t.FindRow(p)
							uds, ok1 := t.Float(row, "UDS")
							crr, ok2 := t.Float(row, "CRR")
							if !ok1 || !ok2 {
								continue
							}
							checked++
							if crr <= uds {
								return Fail, fmt.Sprintf("%s p=%s: CRR %.3f <= UDS %.3f", t.Title, p, crr, uds)
							}
						}
					}
				}
				if checked == 0 {
					return Skip, "no top-k tables with UDS"
				}
				return Pass, ""
			},
		},
		{
			"topk-degrades-with-p",
			"Tables VIII-IX: every method's top-k utility at p=0.9 beats its p=0.1",
			func(ts []Table) (Status, string) {
				checked := 0
				for _, title := range []string{"Table VIII", "Table IX"} {
					for _, t := range TablesByTitle(ts, title) {
						for _, method := range []string{"UDS", "CRR", "BM2"} {
							hi, ok1 := t.Float(t.FindRow("0.900"), method)
							lo, ok2 := t.Float(t.FindRow("0.100"), method)
							if !ok1 || !ok2 {
								continue
							}
							checked++
							if lo > hi {
								return Fail, fmt.Sprintf("%s %s: utility %.3f at p=0.1 > %.3f at p=0.9", t.Title, method, lo, hi)
							}
						}
					}
				}
				if checked == 0 {
					return Skip, "no top-k tables"
				}
				return Pass, ""
			},
		},
		{
			"fig4-rewiring-improves",
			"Figure 4: CRR quality at x=10 beats x=1",
			func(ts []Table) (Status, string) {
				checked := 0
				for _, t := range TablesByTitle(ts, "Figure 4") {
					one, ok1 := t.Float(t.FindRow("1"), "avg delta")
					ten, ok2 := t.Float(t.FindRow("10"), "avg delta")
					if !ok1 || !ok2 {
						continue
					}
					checked++
					if ten >= one {
						return Fail, fmt.Sprintf("%s: avg delta %.4f at x=10 >= %.4f at x=1", t.Title, ten, one)
					}
				}
				if checked == 0 {
					return Skip, "no Figure 4 tables"
				}
				return Pass, ""
			},
		},
		{
			"fig5-theorem-bounds-hold",
			"Figure 5(a)-(b): measured errors stay below the Theorem 1/2 bounds",
			func(ts []Table) (Status, string) {
				checked := 0
				for _, t := range TablesByTitle(ts, "Figure 5(a)-(b)") {
					for row := range t.Rows {
						for _, pair := range [][2]string{{"CRR err", "CRR bound"}, {"BM2 err", "BM2 bound"}} {
							err, ok1 := t.Float(row, pair[0])
							bound, ok2 := t.Float(row, pair[1])
							if !ok1 || !ok2 {
								continue
							}
							checked++
							if err >= bound {
								return Fail, fmt.Sprintf("%s row %d: %s %.4f >= %s %.4f", t.Title, row, pair[0], err, pair[1], bound)
							}
						}
					}
				}
				if checked == 0 {
					return Skip, "no Figure 5(a)-(b) tables"
				}
				return Pass, ""
			},
		},
		{
			"degree-dist-uds-worst",
			"Figures 5(c)-(d)/6: UDS's degree-distribution TVD exceeds CRR's and BM2's",
			func(ts []Table) (Status, string) {
				checked := 0
				for _, t := range tablesWithHeader(ts, "TVD vs original (degree dist)") {
					uds, ok1 := t.Float(t.FindRow("UDS"), "TVD vs original (degree dist)")
					crr, ok2 := t.Float(t.FindRow("CRR"), "TVD vs original (degree dist)")
					bm2, ok3 := t.Float(t.FindRow("BM2"), "TVD vs original (degree dist)")
					if !ok1 || !ok2 || !ok3 {
						continue
					}
					checked++
					if uds <= crr || uds <= bm2 {
						return Fail, fmt.Sprintf("degree TVD: UDS %.4f vs CRR %.4f / BM2 %.4f", uds, crr, bm2)
					}
				}
				if checked == 0 {
					return Skip, "no degree-distribution TVD tables"
				}
				return Pass, ""
			},
		},
		{
			"ab5-phase2-helps",
			"Ablation 5: CRR's rewiring phase improves Δ at every p",
			func(ts []Table) (Status, string) {
				checked := 0
				for _, t := range TablesByTitle(ts, "Ablation 5") {
					for row := range t.Rows {
						imp, ok := t.Float(row, "improvement")
						if !ok {
							continue
						}
						checked++
						if imp <= 0 {
							return Fail, fmt.Sprintf("%s row %d: improvement %.3f <= 0", t.Title, row, imp)
						}
					}
				}
				if checked == 0 {
					return Skip, "no Ablation 5 tables"
				}
				return Pass, ""
			},
		},
		{
			"headline-gains-positive",
			"Headline: CRR and BM2 gain accuracy over UDS and cost less time",
			func(ts []Table) (Status, string) {
				checked := 0
				for _, t := range TablesByTitle(ts, "Headline") {
					for row := range t.Rows {
						for _, col := range []string{"max CRR-UDS gain", "max BM2-UDS gain"} {
							cell, ok := t.Cell(row, col)
							if !ok {
								continue
							}
							checked++
							if !strings.HasPrefix(cell, "+") || cell == "+0%" {
								return Fail, fmt.Sprintf("%s: %s = %s", t.Title, col, cell)
							}
						}
					}
				}
				if checked == 0 {
					return Skip, "no Headline table"
				}
				return Pass, ""
			},
		},
		{
			"baselines-degree-preserving-wins",
			"Baselines: CRR and BM2 beat every sampling baseline on delta",
			func(ts []Table) (Status, string) {
				checked := 0
				for _, t := range TablesByTitle(ts, "Baselines") {
					crr, ok1 := t.Float(t.FindRow("CRR"), "delta")
					bm2, ok2 := t.Float(t.FindRow("BM2"), "delta")
					if !ok1 || !ok2 {
						continue
					}
					for _, base := range []string{"Random", "ForestFire", "SpanningForest", "WeightedSample"} {
						bd, ok := t.Float(t.FindRow(base), "delta")
						if !ok {
							continue
						}
						checked++
						if crr >= bd || bm2 >= bd {
							return Fail, fmt.Sprintf("%s: CRR %.1f / BM2 %.1f vs %s %.1f", t.Title, crr, bm2, base, bd)
						}
					}
				}
				if checked == 0 {
					return Skip, "no baselines tables"
				}
				return Pass, ""
			},
		},
		{
			"memory-savings-track-p",
			"Memory: reduced-graph footprint savings grow as p falls",
			func(ts []Table) (Status, string) {
				checked := 0
				for _, t := range TablesByTitle(ts, "Memory footprint") {
					hi := parsePercent(t, t.FindRow("0.500"), "CRR saving")
					lo := parsePercent(t, t.FindRow("0.100"), "CRR saving")
					if hi < 0 || lo < 0 {
						continue
					}
					checked++
					if lo <= hi {
						return Fail, fmt.Sprintf("%s: saving %.0f%% at p=0.1 <= %.0f%% at p=0.5", t.Title, lo, hi)
					}
				}
				if checked == 0 {
					return Skip, "no memory tables"
				}
				return Pass, ""
			},
		},
		{
			"stream-beats-reservoir",
			"Streaming extension: the shedder's Δ beats reservoir sampling",
			func(ts []Table) (Status, string) {
				checked := 0
				for _, t := range TablesByTitle(ts, "Streaming extension") {
					// Rows group by p: stream / reservoir / BM2 per p.
					for row := 0; row+1 < len(t.Rows); row++ {
						if m, _ := t.Cell(row, "method"); m != "stream" {
							continue
						}
						if m, _ := t.Cell(row+1, "method"); m != "reservoir" {
							continue
						}
						sd, ok1 := t.Float(row, "delta")
						rd, ok2 := t.Float(row+1, "delta")
						if !ok1 || !ok2 {
							continue
						}
						checked++
						if sd >= rd {
							return Fail, fmt.Sprintf("stream Δ %.1f >= reservoir Δ %.1f", sd, rd)
						}
					}
				}
				if checked == 0 {
					return Skip, "no streaming table"
				}
				return Pass, ""
			},
		},
	}
}

// parsePercent reads a "NN%" cell as a float, or -1 when absent/malformed.
func parsePercent(t Table, row int, col string) float64 {
	s, ok := t.Cell(row, col)
	if !ok || !strings.HasSuffix(s, "%") {
		return -1
	}
	var v float64
	if _, err := fmt.Sscanf(s, "%f%%", &v); err != nil {
		return -1
	}
	return v
}

// tablesWithHeader returns tables containing the given column header.
func tablesWithHeader(ts []Table, header string) []Table {
	var out []Table
	for _, t := range ts {
		for _, h := range t.Headers {
			if h == header {
				out = append(out, t)
				break
			}
		}
	}
	return out
}
