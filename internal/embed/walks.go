// Package embed provides node embeddings for the paper's link-prediction
// task (Section V, task 7): node2vec-style random walks with p = q = 1 (the
// paper's setting, equivalent to DeepWalk), a skip-gram-with-negative-
// sampling trainer, and K-means for community assignment.
package embed

import (
	"math/rand"

	"edgeshed/internal/graph"
)

// WalkConfig configures random-walk generation. Zero values select the
// conventional defaults (10 walks of length 40 per node).
type WalkConfig struct {
	// WalksPerNode is how many walks start from each node; 0 means 10.
	WalksPerNode int
	// WalkLength is the number of nodes per walk; 0 means 40.
	WalkLength int
	// Seed drives the walks.
	Seed int64
}

func (c WalkConfig) walksPerNode() int {
	if c.WalksPerNode <= 0 {
		return 10
	}
	return c.WalksPerNode
}

func (c WalkConfig) walkLength() int {
	if c.WalkLength <= 0 {
		return 40
	}
	return c.WalkLength
}

// RandomWalks generates uniform random walks from every node — node2vec
// with p = q = 1, exactly the paper's parameterization. Walks stop early at
// isolated nodes.
func RandomWalks(g *graph.Graph, cfg WalkConfig) [][]graph.NodeID {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := g.NumNodes()
	wpn, wl := cfg.walksPerNode(), cfg.walkLength()
	walks := make([][]graph.NodeID, 0, n*wpn)
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	for w := 0; w < wpn; w++ {
		// Shuffle start order each pass, as the reference implementation
		// does, so SGD sees nodes in varied order.
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, start := range order {
			if g.Degree(start) == 0 {
				continue
			}
			walk := make([]graph.NodeID, 1, wl)
			walk[0] = start
			cur := start
			for len(walk) < wl {
				nb := g.Neighbors(cur)
				if len(nb) == 0 {
					break
				}
				cur = nb[rng.Intn(len(nb))]
				walk = append(walk, cur)
			}
			walks = append(walks, walk)
		}
	}
	return walks
}
