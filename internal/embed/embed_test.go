package embed

import (
	"math"
	"testing"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

func TestRandomWalksShape(t *testing.T) {
	g := gen.Cycle(20)
	walks := RandomWalks(g, WalkConfig{WalksPerNode: 3, WalkLength: 10, Seed: 1})
	if len(walks) != 60 {
		t.Fatalf("walk count = %d, want 60", len(walks))
	}
	for _, w := range walks {
		if len(w) != 10 {
			t.Fatalf("walk length = %d, want 10", len(w))
		}
		for i := 1; i < len(w); i++ {
			if !g.HasEdge(w[i-1], w[i]) {
				t.Fatalf("walk step %d: %d -> %d not an edge", i, w[i-1], w[i])
			}
		}
	}
}

func TestRandomWalksSkipIsolated(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1}}) // node 2 isolated
	walks := RandomWalks(g, WalkConfig{WalksPerNode: 2, WalkLength: 5, Seed: 1})
	for _, w := range walks {
		if w[0] == 2 {
			t.Fatal("walk started at isolated node")
		}
	}
	if len(walks) != 4 { // 2 walks for each of the 2 connected nodes
		t.Errorf("walk count = %d, want 4", len(walks))
	}
}

func TestRandomWalksDeterministic(t *testing.T) {
	g := gen.BarabasiAlbert(50, 2, 3)
	a := RandomWalks(g, WalkConfig{Seed: 7})
	b := RandomWalks(g, WalkConfig{Seed: 7})
	if len(a) != len(b) {
		t.Fatal("walk counts differ")
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("walk %d step %d differs", i, j)
			}
		}
	}
}

func TestNoiseTableProportions(t *testing.T) {
	g := gen.Star(10) // hub degree 9, leaves degree 1
	table := buildNoiseTable(g, 10000)
	hub := 0
	for _, u := range table {
		if u == 0 {
			hub++
		}
	}
	// Hub weight 9^0.75 ≈ 5.2 vs 9 leaves at 1: hub share ≈ 5.2/14.2 ≈ 37%.
	frac := float64(hub) / float64(len(table))
	if frac < 0.25 || frac > 0.5 {
		t.Errorf("hub noise share = %v, want ~0.37", frac)
	}
}

func TestSGNSSeparatesCommunities(t *testing.T) {
	// Two dense communities with a thin bridge: embeddings of same-community
	// nodes should be closer than cross-community ones on average.
	g := gen.PlantedPartition(2, 20, 0.5, 0.02, 5)
	emb := Node2Vec(g, WalkConfig{WalksPerNode: 8, WalkLength: 20, Seed: 6},
		SGNSConfig{Dim: 16, Epochs: 3, Seed: 7})
	var within, across float64
	var wn, an int
	for u := 0; u < 40; u++ {
		for v := u + 1; v < 40; v++ {
			d := sqDist(emb[u], emb[v])
			if u/20 == v/20 {
				within += d
				wn++
			} else {
				across += d
				an++
			}
		}
	}
	within /= float64(wn)
	across /= float64(an)
	if within >= across {
		t.Errorf("mean within-community distance %v >= across %v", within, across)
	}
}

func TestSGNSShape(t *testing.T) {
	g := gen.Cycle(12)
	emb := Node2Vec(g, WalkConfig{WalksPerNode: 2, WalkLength: 8, Seed: 1}, SGNSConfig{Dim: 8, Seed: 2})
	if len(emb) != 12 {
		t.Fatalf("embeddings = %d, want 12", len(emb))
	}
	for u, vec := range emb {
		if len(vec) != 8 {
			t.Fatalf("dim of node %d = %d, want 8", u, len(vec))
		}
		for _, x := range vec {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("non-finite embedding component at node %d", u)
			}
		}
	}
}

func TestKMeansSeparatesClearClusters(t *testing.T) {
	// Two well-separated 2-D blobs.
	var pts [][]float64
	for i := 0; i < 20; i++ {
		pts = append(pts, []float64{0 + float64(i%5)*0.01, 0})
	}
	for i := 0; i < 20; i++ {
		pts = append(pts, []float64{10 + float64(i%5)*0.01, 10})
	}
	labels := KMeans(pts, 2, 50, 3)
	if len(labels) != 40 {
		t.Fatalf("labels = %d, want 40", len(labels))
	}
	for i := 1; i < 20; i++ {
		if labels[i] != labels[0] {
			t.Fatalf("first blob split: labels[%d]=%d labels[0]=%d", i, labels[i], labels[0])
		}
	}
	for i := 21; i < 40; i++ {
		if labels[i] != labels[20] {
			t.Fatalf("second blob split")
		}
	}
	if labels[0] == labels[20] {
		t.Fatal("blobs merged")
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if KMeans(nil, 3, 10, 1) != nil {
		t.Error("empty input should give nil")
	}
	if KMeans([][]float64{{1, 2}}, 0, 10, 1) != nil {
		t.Error("k = 0 should give nil")
	}
	// k > points: clamped, everything labeled within range.
	labels := KMeans([][]float64{{1}, {2}}, 5, 10, 1)
	for _, l := range labels {
		if l < 0 || l >= 2 {
			t.Errorf("label %d out of range", l)
		}
	}
	// Identical points: must terminate and label everything.
	same := [][]float64{{3, 3}, {3, 3}, {3, 3}, {3, 3}}
	if got := KMeans(same, 2, 10, 2); len(got) != 4 {
		t.Errorf("labels on identical points = %v", got)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	var pts [][]float64
	for i := 0; i < 30; i++ {
		pts = append(pts, []float64{float64(i), float64(i % 7)})
	}
	a := KMeans(pts, 3, 50, 9)
	b := KMeans(pts, 3, 50, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different clustering")
		}
	}
}
