package embed

import (
	"math"
	"math/rand"

	"edgeshed/internal/graph"
)

// SGNSConfig configures skip-gram-with-negative-sampling training. Zero
// values select word2vec-style defaults.
type SGNSConfig struct {
	// Dim is the embedding dimension; 0 means 64.
	Dim int
	// Window is the skip-gram context radius; 0 means 5.
	Window int
	// Negatives is the number of negative samples per positive pair; 0
	// means 5.
	Negatives int
	// Epochs is how many passes over the walk corpus; 0 means 2.
	Epochs int
	// LearningRate is the initial SGD step, decayed linearly to 1e-4 over
	// training; 0 means 0.025.
	LearningRate float64
	// Seed drives initialization and negative sampling.
	Seed int64
}

func (c SGNSConfig) dim() int {
	if c.Dim <= 0 {
		return 64
	}
	return c.Dim
}

func (c SGNSConfig) window() int {
	if c.Window <= 0 {
		return 5
	}
	return c.Window
}

func (c SGNSConfig) negatives() int {
	if c.Negatives <= 0 {
		return 5
	}
	return c.Negatives
}

func (c SGNSConfig) epochs() int {
	if c.Epochs <= 0 {
		return 2
	}
	return c.Epochs
}

func (c SGNSConfig) lr() float64 {
	if c.LearningRate <= 0 {
		return 0.025
	}
	return c.LearningRate
}

// TrainSGNS learns an embedding per node from the walk corpus. The noise
// distribution is degree^0.75, the word2vec unigram convention.
func TrainSGNS(g *graph.Graph, walks [][]graph.NodeID, cfg SGNSConfig) [][]float64 {
	n := g.NumNodes()
	dim, window, negs := cfg.dim(), cfg.window(), cfg.negatives()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Input and output vectors, initialized small-uniform as in word2vec.
	in := make([][]float64, n)
	out := make([][]float64, n)
	for u := 0; u < n; u++ {
		in[u] = make([]float64, dim)
		out[u] = make([]float64, dim)
		for d := range in[u] {
			in[u][d] = (rng.Float64() - 0.5) / float64(dim)
		}
	}

	// Negative-sampling table over degree^0.75.
	table := buildNoiseTable(g, 1<<17)
	if len(table) == 0 {
		return in
	}

	totalPairs := 0
	for _, w := range walks {
		totalPairs += len(w)
	}
	totalSteps := cfg.epochs() * totalPairs
	step := 0
	lr0 := cfg.lr()
	grad := make([]float64, dim)

	for epoch := 0; epoch < cfg.epochs(); epoch++ {
		for _, walk := range walks {
			for i, center := range walk {
				step++
				lr := lr0 * (1 - float64(step)/float64(totalSteps+1))
				if lr < 1e-4 {
					lr = 1e-4
				}
				lo := i - window
				if lo < 0 {
					lo = 0
				}
				hi := i + window
				if hi >= len(walk) {
					hi = len(walk) - 1
				}
				for j := lo; j <= hi; j++ {
					if j == i {
						continue
					}
					ctx := walk[j]
					// Positive update.
					sgdPair(in[center], out[ctx], 1, lr, grad)
					// Negative updates.
					for k := 0; k < negs; k++ {
						neg := table[rng.Intn(len(table))]
						if neg == ctx {
							continue
						}
						sgdPair(in[center], out[neg], 0, lr, grad)
					}
					// Apply the accumulated input gradient.
					for d := range grad {
						in[center][d] += grad[d]
						grad[d] = 0
					}
				}
			}
		}
	}
	return in
}

// sgdPair performs one logistic SGD step for (input, output) with the given
// label, updating output in place and accumulating the input gradient.
func sgdPair(inVec, outVec []float64, label float64, lr float64, grad []float64) {
	var dot float64
	for d := range inVec {
		dot += inVec[d] * outVec[d]
	}
	gld := (label - sigmoid(dot)) * lr
	for d := range inVec {
		grad[d] += gld * outVec[d]
		outVec[d] += gld * inVec[d]
	}
}

func sigmoid(x float64) float64 {
	// Clamp to avoid overflow; the gradient saturates anyway.
	if x > 8 {
		return 1
	}
	if x < -8 {
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

// buildNoiseTable fills a sampling table proportional to degree^0.75.
func buildNoiseTable(g *graph.Graph, size int) []graph.NodeID {
	n := g.NumNodes()
	weights := make([]float64, n)
	var total float64
	for u := 0; u < n; u++ {
		w := math.Pow(float64(g.Degree(graph.NodeID(u))), 0.75)
		weights[u] = w
		total += w
	}
	if total == 0 {
		return nil
	}
	table := make([]graph.NodeID, 0, size)
	for u := 0; u < n; u++ {
		count := int(weights[u] / total * float64(size))
		for i := 0; i < count; i++ {
			table = append(table, graph.NodeID(u))
		}
	}
	// Rounding may leave the table slightly short; pad with the densest
	// nodes to keep sampling O(1).
	for len(table) == 0 && n > 0 {
		table = append(table, 0)
	}
	return table
}

// Node2Vec runs walks and SGNS end to end with p = q = 1.
func Node2Vec(g *graph.Graph, wc WalkConfig, sc SGNSConfig) [][]float64 {
	return TrainSGNS(g, RandomWalks(g, wc), sc)
}
