package embed

import (
	"testing"

	"edgeshed/internal/graph/gen"
)

func BenchmarkRandomWalks(b *testing.B) {
	g := gen.BarabasiAlbert(5000, 4, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RandomWalks(g, WalkConfig{WalksPerNode: 5, WalkLength: 20, Seed: 2})
	}
}

func BenchmarkTrainSGNS(b *testing.B) {
	g := gen.BarabasiAlbert(1000, 4, 1)
	walks := RandomWalks(g, WalkConfig{WalksPerNode: 5, WalkLength: 20, Seed: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainSGNS(g, walks, SGNSConfig{Dim: 32, Epochs: 1, Seed: 3})
	}
}

func BenchmarkKMeans(b *testing.B) {
	g := gen.PlantedPartition(5, 100, 0.2, 0.01, 1)
	emb := Node2Vec(g, WalkConfig{WalksPerNode: 4, WalkLength: 15, Seed: 2},
		SGNSConfig{Dim: 32, Epochs: 1, Seed: 3})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMeans(emb, 5, 50, 4)
	}
}
