package embed

import (
	"math"
	"math/rand"
)

// KMeans clusters points into k groups with Lloyd's algorithm and k-means++
// seeding, returning a label per point. iters caps the Lloyd rounds; 0 means
// 50. Points must share a dimension; an empty input yields an empty result.
func KMeans(points [][]float64, k, iters int, seed int64) []int {
	if len(points) == 0 || k <= 0 {
		return nil
	}
	if iters <= 0 {
		iters = 50
	}
	if k > len(points) {
		k = len(points)
	}
	dim := len(points[0])
	rng := rand.New(rand.NewSource(seed))

	centers := kmeansPlusPlus(points, k, rng)
	labels := make([]int, len(points))
	counts := make([]int, k)
	for it := 0; it < iters; it++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if d := sqDist(p, centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		// Recompute centers.
		for c := range centers {
			counts[c] = 0
			for d := 0; d < dim; d++ {
				centers[c][d] = 0
			}
		}
		for i, p := range points {
			c := labels[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				centers[c][d] += p[d]
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(centers[c], points[rng.Intn(len(points))])
				continue
			}
			for d := 0; d < dim; d++ {
				centers[c][d] /= float64(counts[c])
			}
		}
	}
	return labels
}

// kmeansPlusPlus picks k initial centers with D² weighting.
func kmeansPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centers := make([][]float64, 0, k)
	first := points[rng.Intn(len(points))]
	centers = append(centers, append([]float64(nil), first...))
	dists := make([]float64, len(points))
	for len(centers) < k {
		var total float64
		for i, p := range points {
			d := math.Inf(1)
			for _, c := range centers {
				if v := sqDist(p, c); v < d {
					d = v
				}
			}
			dists[i] = d
			total += d
		}
		if total == 0 {
			// All points coincide with centers; duplicate one.
			centers = append(centers, append([]float64(nil), points[rng.Intn(len(points))]...))
			continue
		}
		r := rng.Float64() * total
		idx := 0
		for i, d := range dists {
			r -= d
			if r <= 0 {
				idx = i
				break
			}
		}
		centers = append(centers, append([]float64(nil), points[idx]...))
	}
	return centers
}

func sqDist(a, b []float64) float64 {
	var s float64
	for d := range a {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return s
}
