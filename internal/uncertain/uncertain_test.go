package uncertain

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
)

func TestNewValidation(t *testing.T) {
	ok := []Edge{{E: graph.Edge{U: 0, V: 1}, P: 0.5}}
	if _, err := New(2, ok); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	cases := []struct {
		name  string
		n     int
		edges []Edge
	}{
		{"self-loop", 2, []Edge{{E: graph.Edge{U: 1, V: 1}, P: 0.5}}},
		{"out of range", 2, []Edge{{E: graph.Edge{U: 0, V: 2}, P: 0.5}}},
		{"duplicate", 2, []Edge{{E: graph.Edge{U: 0, V: 1}, P: 0.5}, {E: graph.Edge{U: 1, V: 0}, P: 0.3}}},
		{"zero prob", 2, []Edge{{E: graph.Edge{U: 0, V: 1}, P: 0}}},
		{"prob above one", 2, []Edge{{E: graph.Edge{U: 0, V: 1}, P: 1.5}}},
		{"NaN prob", 2, []Edge{{E: graph.Edge{U: 0, V: 1}, P: math.NaN()}}},
		{"negative n", -1, nil},
	}
	for _, c := range cases {
		if _, err := New(c.n, c.edges); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestExpectedDegrees(t *testing.T) {
	g, err := New(3, []Edge{
		{E: graph.Edge{U: 0, V: 1}, P: 0.5},
		{E: graph.Edge{U: 1, V: 2}, P: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	deg := g.ExpectedDegrees()
	want := []float64{0.5, 0.75, 0.25}
	for u, w := range want {
		if math.Abs(deg[u]-w) > 1e-9 {
			t.Errorf("E[deg(%d)] = %v, want %v", u, deg[u], w)
		}
	}
	if math.Abs(g.ExpectedEdges()-0.75) > 1e-9 {
		t.Errorf("E[|E|] = %v, want 0.75", g.ExpectedEdges())
	}
}

func TestCertainGraphRepresentativeIsBackbone(t *testing.T) {
	// All probabilities 1: the representative must be the backbone itself.
	base := gen.BarabasiAlbert(60, 2, 3)
	var edges []Edge
	for _, e := range base.Edges() {
		edges = append(edges, Edge{E: e, P: 1})
	}
	ug, err := New(60, edges)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ug.Representative()
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumEdges() != base.NumEdges() {
		t.Errorf("certain representative |E| = %d, want %d", rep.NumEdges(), base.NumEdges())
	}
	if d := ug.Discrepancy(rep); d > 1e-9 {
		t.Errorf("certain representative discrepancy = %v, want 0", d)
	}
}

func TestRepresentativeBeatsBackboneAndEmpty(t *testing.T) {
	// With fractional probabilities, the representative's discrepancy must
	// beat both trivial instances: everything (backbone) and nothing.
	rng := rand.New(rand.NewSource(7))
	base := gen.ErdosRenyi(80, 300, 7)
	var edges []Edge
	for _, e := range base.Edges() {
		edges = append(edges, Edge{E: e, P: 0.1 + 0.8*rng.Float64()})
	}
	ug, err := New(80, edges)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ug.Representative()
	if err != nil {
		t.Fatal(err)
	}
	empty, err := base.Subgraph(nil)
	if err != nil {
		t.Fatal(err)
	}
	dRep := ug.Discrepancy(rep)
	if dBack := ug.Discrepancy(base); dRep >= dBack {
		t.Errorf("representative discrepancy %v >= backbone %v", dRep, dBack)
	}
	if dEmpty := ug.Discrepancy(empty); dRep >= dEmpty {
		t.Errorf("representative discrepancy %v >= empty %v", dRep, dEmpty)
	}
	if err := rep.Validate(); err != nil {
		t.Errorf("representative invalid: %v", err)
	}
}

func TestRepresentativeEdgeCountNearExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base := gen.BarabasiAlbert(100, 3, 9)
	var edges []Edge
	for _, e := range base.Edges() {
		edges = append(edges, Edge{E: e, P: 0.2 + 0.6*rng.Float64()})
	}
	ug, _ := New(100, edges)
	rep, err := ug.Representative()
	if err != nil {
		t.Fatal(err)
	}
	want := ug.ExpectedEdges()
	got := float64(rep.NumEdges())
	if got < want*0.8 || got > want*1.2 {
		t.Errorf("representative |E| = %v, want within 20%% of E[|E|] = %v", got, want)
	}
}

// TestRepresentativeInvariant property-checks validity and the
// discrepancy-vs-backbone ordering across random uncertain graphs.
func TestRepresentativeInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := gen.ErdosRenyi(30, 70, seed)
		var edges []Edge
		for _, e := range base.Edges() {
			edges = append(edges, Edge{E: e, P: 0.05 + 0.9*rng.Float64()})
		}
		ug, err := New(30, edges)
		if err != nil {
			return false
		}
		rep, err := ug.Representative()
		if err != nil {
			return false
		}
		return rep.Validate() == nil && ug.Discrepancy(rep) <= ug.Discrepancy(base)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBackboneShape(t *testing.T) {
	g, err := New(4, []Edge{
		{E: graph.Edge{U: 3, V: 0}, P: 0.9},
		{E: graph.Edge{U: 1, V: 2}, P: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := g.Backbone()
	if b.NumEdges() != 2 || !b.HasEdge(0, 3) || !b.HasEdge(1, 2) {
		t.Errorf("backbone wrong: %v", b.Edges())
	}
	if g.NumNodes() != 4 || g.NumEdges() != 2 {
		t.Errorf("shape accessors wrong: %d, %d", g.NumNodes(), g.NumEdges())
	}
}
