package uncertain_test

import (
	"fmt"

	"edgeshed/internal/graph"
	"edgeshed/internal/uncertain"
)

// ExampleGraph_Representative extracts a representative instance of a small
// uncertain triangle: the low-probability edge is shed.
func ExampleGraph_Representative() {
	ug, err := uncertain.New(3, []uncertain.Edge{
		{E: graph.Edge{U: 0, V: 1}, P: 0.9},
		{E: graph.Edge{U: 1, V: 2}, P: 0.9},
		{E: graph.Edge{U: 0, V: 2}, P: 0.1},
	})
	if err != nil {
		panic(err)
	}
	rep, err := ug.Representative()
	if err != nil {
		panic(err)
	}
	fmt.Println("kept edges:", rep.NumEdges())
	fmt.Println("has likely edge:", rep.HasEdge(0, 1))
	fmt.Println("has unlikely edge:", rep.HasEdge(0, 2))
	// Output:
	// kept edges: 2
	// has likely edge: true
	// has unlikely edge: false
}
