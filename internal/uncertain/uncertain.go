// Package uncertain implements the representative-instance extraction of
// Parchas et al. (SIGMOD'14, paper reference [22]) — the lineage BM2 builds
// on. An uncertain graph attaches an existence probability to every edge;
// a representative instance is a deterministic graph whose node degrees
// track the expected degrees Σ p(e). Section IV of the paper observes that
// a maximum b-matching with capacities round(expected degree) is a good
// constraint enforcer for exactly this problem, and BM2 transplants that
// idea to edge shedding (where p(e) = p for every edge).
package uncertain

import (
	"fmt"
	"math"
	"sort"

	"edgeshed/internal/graph"
)

// Edge is an edge with an existence probability.
type Edge struct {
	E graph.Edge
	P float64
}

// Graph is an uncertain undirected graph over dense node ids.
type Graph struct {
	n     int
	edges []Edge
}

// New builds an uncertain graph with n nodes. Edge probabilities must lie
// in (0, 1]; duplicates (either orientation) and self-loops are rejected.
func New(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("uncertain: negative node count")
	}
	seen := make(map[graph.Edge]struct{}, len(edges))
	out := make([]Edge, 0, len(edges))
	for _, ue := range edges {
		e := ue.E.Canonical()
		if e.U == e.V {
			return nil, fmt.Errorf("uncertain: self-loop %v", e)
		}
		if e.U < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("uncertain: edge %v outside [0,%d)", e, n)
		}
		if _, dup := seen[e]; dup {
			return nil, fmt.Errorf("uncertain: duplicate edge %v", e)
		}
		if math.IsNaN(ue.P) || ue.P <= 0 || ue.P > 1 {
			return nil, fmt.Errorf("uncertain: edge %v probability %v outside (0,1]", e, ue.P)
		}
		seen[e] = struct{}{}
		out = append(out, Edge{E: e, P: ue.P})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].E.U != out[j].E.U {
			return out[i].E.U < out[j].E.U
		}
		return out[i].E.V < out[j].E.V
	})
	return &Graph{n: n, edges: out}, nil
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of uncertain edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edges returns the probability-annotated edges sorted canonically. The
// slice is owned by the graph.
func (g *Graph) Edges() []Edge { return g.edges }

// ExpectedDegrees returns each node's expected degree Σ_{e ∋ u} p(e).
func (g *Graph) ExpectedDegrees() []float64 {
	deg := make([]float64, g.n)
	for _, ue := range g.edges {
		deg[ue.E.U] += ue.P
		deg[ue.E.V] += ue.P
	}
	return deg
}

// ExpectedEdges returns Σ p(e), the expected edge count.
func (g *Graph) ExpectedEdges() float64 {
	var sum float64
	for _, ue := range g.edges {
		sum += ue.P
	}
	return sum
}

// Backbone returns the deterministic graph over all possible edges
// (probabilities ignored).
func (g *Graph) Backbone() *graph.Graph {
	b := graph.NewBuilder(g.n)
	for _, ue := range g.edges {
		b.TryAddEdge(ue.E.U, ue.E.V)
	}
	return b.Graph()
}

// Representative extracts a representative instance: a deterministic
// subgraph whose node degrees approximate the expected degrees. Phase 1
// runs a greedy maximal b-matching with capacities round(expected degree),
// scanning edges in non-increasing probability order (most-likely edges
// claim capacity first); Phase 2 greedily adds remaining edges whose
// addition strictly reduces the total degree discrepancy, the ADR-style
// correction of Parchas et al.
func (g *Graph) Representative() (*graph.Graph, error) {
	expected := g.ExpectedDegrees()
	caps := make([]int, g.n)
	for u, x := range expected {
		caps[u] = int(math.Round(x))
	}
	backbone := g.Backbone()
	// Probability-ordered scan: build an explicit edge order by sorting a
	// copy of the uncertain edges by descending probability, then greedily
	// b-match by hand (matching.GreedyBMatching scans the backbone's own
	// canonical order, which would ignore probabilities).
	byProb := append([]Edge(nil), g.edges...)
	sort.SliceStable(byProb, func(i, j int) bool { return byProb[i].P > byProb[j].P })
	deg := make([]int, g.n)
	var chosen []graph.Edge
	inChosen := make(map[graph.Edge]struct{})
	for _, ue := range byProb {
		if deg[ue.E.U] < caps[ue.E.U] && deg[ue.E.V] < caps[ue.E.V] {
			chosen = append(chosen, ue.E)
			inChosen[ue.E] = struct{}{}
			deg[ue.E.U]++
			deg[ue.E.V]++
		}
	}
	// Phase 2: discrepancy-reducing additions among the skipped edges.
	dis := func(u graph.NodeID) float64 { return float64(deg[u]) - expected[u] }
	for _, ue := range byProb {
		if _, ok := inChosen[ue.E]; ok {
			continue
		}
		change := math.Abs(dis(ue.E.U)+1) - math.Abs(dis(ue.E.U)) +
			math.Abs(dis(ue.E.V)+1) - math.Abs(dis(ue.E.V))
		if change < 0 {
			chosen = append(chosen, ue.E)
			inChosen[ue.E] = struct{}{}
			deg[ue.E.U]++
			deg[ue.E.V]++
		}
	}
	return backbone.Subgraph(chosen)
}

// Discrepancy returns Σ_u |deg_H(u) − E[deg(u)]| for a candidate instance
// H of g — the objective Representative minimizes.
func (g *Graph) Discrepancy(h *graph.Graph) float64 {
	expected := g.ExpectedDegrees()
	var sum float64
	for u := 0; u < g.n; u++ {
		sum += math.Abs(float64(h.Degree(graph.NodeID(u))) - expected[u])
	}
	return sum
}
