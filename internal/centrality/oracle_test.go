package centrality

// This file preserves the pre-CSR (map-indexed) Brandes implementation as a
// test oracle. The preserved per-source path (persource.go) accumulates
// edge dependencies through graph.CSR edge ids; the oracle hashes a
// map[graph.Edge]int32 per predecessor visit, exactly as the seed
// implementation did. Both drivers assign sources to the same fixed
// accumulation shards (source i into shard i mod par.Shards) and merge
// partial sums in shard order, so the comparison is bit-exact, not
// approximate. The production MS-BFS path sums in a different canonical
// order and is pinned against this chain within float tolerance and
// against its own serial oracles bit-exactly (msbfs_oracle_test.go).

import (
	"testing"

	"edgeshed/internal/graph"
	"edgeshed/internal/graph/gen"
	"edgeshed/internal/par"
)

// edgeIndex builds the canonical-edge -> edge-list-position map the seed
// oracle accumulates through. Production code no longer builds this map —
// EdgeScores.Of binary-searches the CSR instead — so it lives with the
// oracle that still needs it.
func edgeIndex(g *graph.Graph) map[graph.Edge]int32 {
	idx := make(map[graph.Edge]int32, g.NumEdges())
	for i, e := range g.Edges() {
		idx[e] = int32(i)
	}
	return idx
}

// mapBrandesState is the seed per-source scratch space: per-node predecessor
// slices instead of flat CSR-slot storage.
type mapBrandesState struct {
	queue []graph.NodeID
	dist  []int32
	sigma []float64
	delta []float64
	preds [][]graph.NodeID
}

func newMapBrandesState(n int) *mapBrandesState {
	return &mapBrandesState{
		queue: make([]graph.NodeID, 0, n),
		dist:  make([]int32, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
		preds: make([][]graph.NodeID, n),
	}
}

// run is the seed accumulation loop: note the map lookup and Canonical()
// call per predecessor visit that the CSR path eliminates.
func (st *mapBrandesState) run(g *graph.Graph, s graph.NodeID, nodeAcc, edgeAcc []float64, eIdx map[graph.Edge]int32) {
	st.queue = st.queue[:0]
	for i := range st.dist {
		st.dist[i] = -1
		st.sigma[i] = 0
		st.delta[i] = 0
		st.preds[i] = st.preds[i][:0]
	}
	st.dist[s] = 0
	st.sigma[s] = 1
	st.queue = append(st.queue, s)
	for head := 0; head < len(st.queue); head++ {
		v := st.queue[head]
		dv := st.dist[v]
		for _, w := range g.Neighbors(v) {
			switch {
			case st.dist[w] < 0:
				st.dist[w] = dv + 1
				st.sigma[w] = st.sigma[v]
				st.preds[w] = append(st.preds[w], v)
				st.queue = append(st.queue, w)
			case st.dist[w] == dv+1:
				st.sigma[w] += st.sigma[v]
				st.preds[w] = append(st.preds[w], v)
			}
		}
	}
	for i := len(st.queue) - 1; i >= 0; i-- {
		w := st.queue[i]
		coeff := (1 + st.delta[w]) / st.sigma[w]
		for _, v := range st.preds[w] {
			c := st.sigma[v] * coeff
			st.delta[v] += c
			if edgeAcc != nil {
				edgeAcc[eIdx[graph.Edge{U: v, V: w}.Canonical()]] += c
			}
		}
		if w != s && nodeAcc != nil {
			nodeAcc[w] += st.delta[w]
		}
	}
}

// oracleBoth mirrors the production both() driver — same source selection,
// same fixed accumulation shards, same merge and scaling order — over the
// map-indexed oracle kernel. Shards run sequentially; since the shard
// assignment is a function of the source index alone and partials merge in
// shard order, the result is bit-identical to the concurrent production run
// at any worker count.
func oracleBoth(g *graph.Graph, opt Options, wantNodes, wantEdges bool) ([]float64, []float64) {
	n := g.NumNodes()
	var nodes, edges []float64
	if wantNodes {
		nodes = make([]float64, n)
	}
	if wantEdges {
		edges = make([]float64, g.NumEdges())
	}
	if n == 0 {
		return nodes, edges
	}
	srcs, scale := opt.sources(n)
	if len(srcs) == 0 {
		return nodes, edges
	}
	var eIdx map[graph.Edge]int32
	if wantEdges {
		eIdx = edgeIndex(g)
	}
	shards := par.Shards
	if shards > len(srcs) {
		shards = len(srcs)
	}
	type partial struct {
		nodes, edges []float64
	}
	parts := make([]partial, shards)
	st := newMapBrandesState(n)
	for s := 0; s < shards; s++ {
		var nodeAcc, edgeAcc []float64
		if wantNodes {
			nodeAcc = make([]float64, n)
		}
		if wantEdges {
			edgeAcc = make([]float64, g.NumEdges())
		}
		for i := s; i < len(srcs); i += shards {
			st.run(g, srcs[i], nodeAcc, edgeAcc, eIdx)
		}
		parts[s] = partial{nodes: nodeAcc, edges: edgeAcc}
	}
	if wantNodes {
		for _, p := range parts {
			for i, v := range p.nodes {
				nodes[i] += v
			}
		}
		for i := range nodes {
			nodes[i] *= scale / 2
		}
	}
	if wantEdges {
		for _, p := range parts {
			for i, v := range p.edges {
				edges[i] += v
			}
		}
		for i := range edges {
			edges[i] *= scale / 2
		}
	}
	return nodes, edges
}

// TestCSRBrandesBitIdenticalToMapOracle is the migration property test: the
// preserved CSR-indexed per-source path (persource.go) must reproduce the
// seed map-indexed results bit for bit across generators, exact and sampled
// modes, and worker counts. This keeps the oracle chain anchored — the
// MS-BFS production path is compared against both() at float tolerance in
// msbfs_oracle_test.go, and both() is pinned to the seed here.
func TestCSRBrandesBitIdenticalToMapOracle(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"BA", gen.BarabasiAlbert(250, 3, 7)},
		{"ER", gen.ErdosRenyi(250, 700, 11)},
		{"WS", gen.WattsStrogatz(250, 6, 0.1, 13)},
	}
	modes := []struct {
		name string
		opt  Options
	}{
		{"exact", Options{}},
		{"sampled", Options{Samples: 60, Seed: 3}},
	}
	for _, tg := range graphs {
		for _, mode := range modes {
			for _, workers := range []int{1, 4} {
				opt := mode.opt
				opt.Workers = workers
				name := tg.name + "/" + mode.name
				gotN, gotE := both(tg.g, opt, true, true)
				wantN, wantE := oracleBoth(tg.g, opt, true, true)
				for u := range wantN {
					if gotN[u] != wantN[u] {
						t.Fatalf("%s workers=%d node %d: CSR %v != oracle %v",
							name, workers, u, gotN[u], wantN[u])
					}
				}
				for i := range wantE {
					if gotE[i] != wantE[i] {
						t.Fatalf("%s workers=%d edge %d %v: CSR %v != oracle %v",
							name, workers, i, tg.g.Edges()[i], gotE[i], wantE[i])
					}
				}
			}
		}
	}
}

// TestBetweennessDeterministicAcrossRuns pins the static-striding guarantee:
// repeated runs with the same Options (including Workers > 1) are
// bit-identical — no channel-scheduling nondeterminism.
func TestBetweennessDeterministicAcrossRuns(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 19)
	opt := Options{Samples: 50, Seed: 9, Workers: 4}
	n1, e1 := Betweenness(g, opt)
	n2, e2 := Betweenness(g, opt)
	for u := range n1 {
		if n1[u] != n2[u] {
			t.Fatalf("node %d differs across identical runs: %v vs %v", u, n1[u], n2[u])
		}
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs across identical runs: %v vs %v", i, e1[i], e2[i])
		}
	}
}

// TestSourcesPartialFisherYates covers the O(Samples) sampler: fixed seed ⇒
// fixed sequence, no duplicate sources, all in range, correct scale.
func TestSourcesPartialFisherYates(t *testing.T) {
	const n, s = 1000, 64
	o := Options{Samples: s, Seed: 42}
	a, scaleA := o.sources(n)
	b, scaleB := o.sources(n)
	if len(a) != s || len(b) != s {
		t.Fatalf("got %d/%d sources, want %d", len(a), len(b), s)
	}
	if want := float64(n) / float64(s); scaleA != want || scaleB != want {
		t.Errorf("scale = %v/%v, want %v", scaleA, scaleB, want)
	}
	seen := make(map[graph.NodeID]struct{}, s)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("source %d differs across identical seeds: %v vs %v", i, a[i], b[i])
		}
		if a[i] < 0 || int(a[i]) >= n {
			t.Fatalf("source %d = %v outside [0,%d)", i, a[i], n)
		}
		if _, dup := seen[a[i]]; dup {
			t.Fatalf("duplicate sampled source %v", a[i])
		}
		seen[a[i]] = struct{}{}
	}
	// A different seed should give a different sequence (overwhelmingly).
	c, _ := Options{Samples: s, Seed: 43}.sources(n)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical source sequences")
	}
}

// TestNegativeOptionsClamped pins the documented handling of negative
// Samples (⇒ exact) and negative Workers (⇒ GOMAXPROCS).
func TestNegativeOptionsClamped(t *testing.T) {
	g := gen.BarabasiAlbert(120, 3, 29)
	exact := NodeBetweenness(g, Options{Workers: 1})
	negSamples := NodeBetweenness(g, Options{Samples: -7, Workers: 1})
	for u := range exact {
		if exact[u] != negSamples[u] {
			t.Fatalf("node %d: Samples=-7 %v != exact %v", u, negSamples[u], exact[u])
		}
	}
	// Negative workers must compute the same quantity (different partition,
	// so approximate comparison).
	negWorkers := NodeBetweenness(g, Options{Workers: -3})
	for u := range exact {
		if diff := exact[u] - negWorkers[u]; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("node %d: Workers=-3 %v != exact %v", u, negWorkers[u], exact[u])
		}
	}
}

// TestEmptyGraphPositiveSamples covers the Samples > 0 && |V| == 0 corner
// both() now guards explicitly.
func TestEmptyGraphPositiveSamples(t *testing.T) {
	var empty graph.Graph
	nodes, edges := both(&empty, Options{Samples: 5, Workers: 3}, true, true)
	if len(nodes) != 0 || len(edges) != 0 {
		t.Errorf("empty graph: nodes=%v edges=%v, want empty", nodes, edges)
	}
}
